#!/usr/bin/env bash
# The repo's one-command health check, in CI order:
#
#   1. tier-1: configure + build + full ctest in ./build
#   2. focused re-runs of the observability suites (ctest -L telemetry,
#      ctest -L trace), the incremental-evaluation equivalence suite
#      (ctest -L incremental), and the fleet control-plane suite
#      (ctest -L fleet) so a regression there is named, not buried
#   3. forced-scalar re-run of the full suite (SURFOS_SIMD=scalar): the
#      scalar SIMD backend is the bit-exact reference, so every test must
#      pass with vectorization disabled
#   4. TSan build of the thread-pool/tracing/incremental/fleet tests
#      (ctest -L "tsan|trace|incremental|fleet" in ./build-tsan); any
#      sanitizer report fails the run
#   5. UBSan build of the SIMD/geometry/channel tests (ctest -L simd plus
#      the dense-path suites in ./build-ubsan); undefined behavior in the
#      lane kernels fails the run
#
#   $ ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"

echo "== tier 1: build + full test suite (build/)"
cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo
echo "== focused: telemetry + trace + incremental + fleet labels"
ctest --test-dir build --output-on-failure -L telemetry
ctest --test-dir build --output-on-failure -L trace
ctest --test-dir build --output-on-failure -L incremental
ctest --test-dir build --output-on-failure -L fleet

echo
echo "== forced scalar: full suite with SURFOS_SIMD=scalar (vector dispatch off)"
SURFOS_SIMD=scalar ctest --test-dir build --output-on-failure -j"$JOBS"

echo
echo "== tsan: thread-pool / tracing / incremental tests under ThreadSanitizer (build-tsan/)"
cmake -B build-tsan -S . -DSURFOS_SANITIZE=thread
cmake --build build-tsan -j"$JOBS" --target \
  test_thread_pool test_parallel_determinism test_trace test_incremental \
  test_fleet test_admission
# TSan findings abort the test process (halt_on_error) so a data race can
# never hide behind a green assertion run. -L is a regex: the trace suite
# hammers the recorder from pool workers, the incremental cache fills
# per-RX entries from FD-probe workers, and the fleet suite steps sharded
# sites concurrently on the pool, so all three run under TSan too.
TSAN_OPTIONS="halt_on_error=1 exitcode=66" \
  ctest --test-dir build-tsan --output-on-failure -L "tsan|trace|incremental|fleet"

echo
echo "== ubsan: SIMD kernels + dense channel path under UBSan (build-ubsan/)"
cmake -B build-ubsan -S . -DSURFOS_SANITIZE=undefined
cmake --build build-ubsan -j"$JOBS" --target test_simd test_geom test_em test_sim
# halt_on_error turns any UB report into a test failure instead of a log
# line; the simd suite runs every available backend against the scalar
# reference, so lane-kernel UB (misaligned loads, bad masks) surfaces here.
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir build-ubsan --output-on-failure -R "Simd|Geom|Em|Channel"

echo
echo "ci/check.sh: all green"
