#!/usr/bin/env bash
# The repo's one-command health check, in CI order:
#
#   1. tier-1: configure + build + full ctest in ./build
#   2. focused re-runs of the observability suites (ctest -L telemetry,
#      ctest -L trace), the incremental-evaluation equivalence suite
#      (ctest -L incremental), the fleet control-plane suite (ctest -L
#      fleet), and the daemon/wire-protocol suite (ctest -L daemon) so a
#      regression there is named, not buried
#   3. forced-scalar re-run of the full suite (SURFOS_SIMD=scalar): the
#      scalar SIMD backend is the bit-exact reference, so every test must
#      pass with vectorization disabled
#   3b. forced-dense re-run of the full suite (SURFOS_PRECOMPUTE=0): the
#      content-addressed precompute store is a pure cache, so every test
#      must pass with sharing disabled and private dense artifacts
#   4. TSan build of the thread-pool/tracing/incremental/fleet/daemon/
#      precompute tests (ctest -L
#      "tsan|trace|incremental|fleet|daemon|precompute" in ./build-tsan);
#      any sanitizer report fails the run
#   5. UBSan build of the SIMD/geometry/channel tests (ctest -L simd plus
#      the dense-path suites in ./build-ubsan); undefined behavior in the
#      lane kernels fails the run
#   6. daemon smoke: spawn the real surfosd binary on a temp socket, drive
#      50 surfos-ctl requests through it, stream >= 20 epochs of kEvent
#      frames into a `surfos-ctl watch metrics` subscriber and kill it
#      mid-stream (the daemon must keep serving), render three surfos-top
#      frames, SIGTERM it, and check for a clean exit, a written snapshot,
#      and zero leaked fds while serving
#
#   $ ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"

echo "== tier 1: build + full test suite (build/)"
cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo
echo "== focused: telemetry + trace + incremental + fleet + daemon labels"
ctest --test-dir build --output-on-failure -L telemetry
ctest --test-dir build --output-on-failure -L trace
ctest --test-dir build --output-on-failure -L incremental
ctest --test-dir build --output-on-failure -L fleet
ctest --test-dir build --output-on-failure -L daemon
ctest --test-dir build --output-on-failure -L precompute

echo
echo "== forced scalar: full suite with SURFOS_SIMD=scalar (vector dispatch off)"
SURFOS_SIMD=scalar ctest --test-dir build --output-on-failure -j"$JOBS"

echo
echo "== forced dense: full suite with SURFOS_PRECOMPUTE=0 (artifact sharing off)"
SURFOS_PRECOMPUTE=0 ctest --test-dir build --output-on-failure -j"$JOBS"

echo
echo "== tsan: thread-pool / tracing / incremental / daemon tests under ThreadSanitizer (build-tsan/)"
cmake -B build-tsan -S . -DSURFOS_SANITIZE=thread
cmake --build build-tsan -j"$JOBS" --target \
  test_thread_pool test_parallel_determinism test_trace test_incremental \
  test_precompute test_fleet test_admission test_proto test_daemon \
  test_streaming
# TSan findings abort the test process (halt_on_error) so a data race can
# never hide behind a green assertion run. -L is a regex: the trace suite
# hammers the recorder from pool workers, the incremental cache fills
# per-RX entries from FD-probe workers, the fleet suite steps sharded
# sites concurrently on the pool, the daemon suite runs the ticker and
# poll() server threads against client connections, and the precompute
# suite exercises the mutex-guarded global artifact store from pool
# workers, so all of them run under TSan too.
TSAN_OPTIONS="halt_on_error=1 exitcode=66" \
  ctest --test-dir build-tsan --output-on-failure \
  -L "tsan|trace|incremental|fleet|daemon|precompute"

echo
echo "== ubsan: SIMD kernels + dense channel path under UBSan (build-ubsan/)"
cmake -B build-ubsan -S . -DSURFOS_SANITIZE=undefined
cmake --build build-ubsan -j"$JOBS" --target test_simd test_geom test_em test_sim
# halt_on_error turns any UB report into a test failure instead of a log
# line; the simd suite runs every available backend against the scalar
# reference, so lane-kernel UB (misaligned loads, bad masks) surfaces here.
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir build-ubsan --output-on-failure -R "Simd|Geom|Em|Channel"

echo
echo "== daemon smoke: live surfosd + 50 surfos-ctl requests + SIGTERM snapshot"
cmake --build build -j"$JOBS" --target surfosd surfos-ctl surfos-status surfos-top
SMOKE_SOCK="$(mktemp -u /tmp/surfosd_ci_XXXXXX.sock)"
SMOKE_SNAP="$(mktemp -u /tmp/surfosd_ci_XXXXXX.snap)"
WATCH_LOG="$(mktemp /tmp/surfosd_ci_watch_XXXXXX.log)"
./build/tools/surfosd --socket "$SMOKE_SOCK" --snapshot "$SMOKE_SNAP" --epoch-ms 5 &
SMOKE_PID=$!
trap 'kill -9 $SMOKE_PID 2>/dev/null || true; rm -f "$SMOKE_SOCK" "$SMOKE_SNAP" "$WATCH_LOG"' EXIT
for _ in $(seq 1 50); do
  [ -S "$SMOKE_SOCK" ] && break
  sleep 0.1
done
[ -S "$SMOKE_SOCK" ] || { echo "surfosd never bound its socket"; exit 1; }
CTL=(./build/tools/surfos-ctl --socket "$SMOKE_SOCK")
"${CTL[@]}" ping
sleep 0.3  # let the server reap the ping connection before sampling fds
FDS_BEFORE=$(ls /proc/$SMOKE_PID/fd | wc -l)
"${CTL[@]}" submit vr --class vr-gaming --endpoint headset --throughput 40
"${CTL[@]}" submit cam --class smart-home --endpoint cam0
for i in $(seq 1 20); do "${CTL[@]}" status > /dev/null; done
for i in $(seq 1 20); do "${CTL[@]}" metrics > /dev/null; done
"${CTL[@]}" set-knob SURFOS_PUMP_MAX 4
"${CTL[@]}" knobs > /dev/null
"${CTL[@]}" stop cam
"${CTL[@]}" resume cam
"${CTL[@]}" snapshot
"${CTL[@]}" traces > /dev/null
./build/tools/surfos-status --socket "$SMOKE_SOCK"
# Live streaming: a watch subscriber rides the 5 ms ticker for >= 20 epochs
# of kEvent frames, then dies mid-stream (SIGKILL: no unsubscribe, no
# orderly close). The daemon must drop the connection and keep serving.
"${CTL[@]}" watch metrics > "$WATCH_LOG" 2>/dev/null &
WATCH_PID=$!
for _ in $(seq 1 50); do
  [ "$(grep -c '^event topic=metrics' "$WATCH_LOG")" -ge 20 ] && break
  sleep 0.1
done
kill -9 $WATCH_PID 2>/dev/null || true
wait $WATCH_PID 2>/dev/null || true
WATCH_EVENTS=$(grep -c '^event topic=metrics' "$WATCH_LOG")
if [ "$WATCH_EVENTS" -lt 20 ]; then
  echo "watch subscriber saw only $WATCH_EVENTS metrics events"; exit 1
fi
"${CTL[@]}" ping  # still serving after the mid-stream kill
# And the dashboard renders: three frames over the same stream, then exits.
./build/tools/surfos-top --socket "$SMOKE_SOCK" --frames 3 > /dev/null
# Every connection above has been closed: the serving daemon must be back
# to its baseline fd table (no leaked client fds).
sleep 0.3
FDS_AFTER=$(ls /proc/$SMOKE_PID/fd | wc -l)
if [ "$FDS_AFTER" -ne "$FDS_BEFORE" ]; then
  echo "fd leak: $FDS_BEFORE fds before, $FDS_AFTER after"; exit 1
fi
kill -TERM $SMOKE_PID
wait $SMOKE_PID
trap - EXIT
[ -s "$SMOKE_SNAP" ] || { echo "SIGTERM did not write a snapshot"; exit 1; }
# Restart from the snapshot: the resumed daemon must serve the same session.
./build/tools/surfosd --socket "$SMOKE_SOCK" --snapshot "$SMOKE_SNAP" --restore &
SMOKE_PID=$!
trap 'kill -9 $SMOKE_PID 2>/dev/null || true; rm -f "$SMOKE_SOCK" "$SMOKE_SNAP"' EXIT
for _ in $(seq 1 50); do
  [ -S "$SMOKE_SOCK" ] && break
  sleep 0.1
done
"${CTL[@]}" status | grep -q "^vr " || { echo "restore lost the vr session"; exit 1; }
"${CTL[@]}" shutdown
wait $SMOKE_PID
trap - EXIT
rm -f "$SMOKE_SOCK" "$SMOKE_SNAP"

echo
echo "ci/check.sh: all green"
