// Optimizer substrate tests. Each algorithm is checked on convex and
// non-convex benchmarks plus the periodic (phase-like) landscape the real
// objectives live on; the suite is parameterized so every optimizer clears
// the same bar.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "opt/objective.hpp"
#include "opt/optimizer.hpp"
#include "util/units.hpp"

namespace surfos::opt {
namespace {

/// Convex quadratic centered at (1, -2, 3, ...).
class Quadratic final : public Objective {
 public:
  explicit Quadratic(std::size_t n) : n_(n) {}
  std::size_t dimension() const override { return n_; }
  double value(std::span<const double> x) const override {
    double sum = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      const double c = center(i);
      sum += (x[i] - c) * (x[i] - c);
    }
    return sum;
  }
  double value_and_gradient(std::span<const double> x,
                            std::span<double> g) const override {
    for (std::size_t i = 0; i < n_; ++i) g[i] = 2.0 * (x[i] - center(i));
    return value(x);
  }
  static double center(std::size_t i) {
    return (i % 2 == 0) ? 1.0 : -2.0;
  }

 private:
  std::size_t n_;
};

/// Periodic landscape f = sum (1 - cos(x_i - t_i)) — the shape of phase
/// alignment losses; global minima at t_i + 2*pi*k.
class PhaseAlignment final : public Objective {
 public:
  explicit PhaseAlignment(std::size_t n) : n_(n) {}
  std::size_t dimension() const override { return n_; }
  double value(std::span<const double> x) const override {
    double sum = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      sum += 1.0 - std::cos(x[i] - target(i));
    }
    return sum;
  }
  double value_and_gradient(std::span<const double> x,
                            std::span<double> g) const override {
    for (std::size_t i = 0; i < n_; ++i) g[i] = std::sin(x[i] - target(i));
    return value(x);
  }
  static double target(std::size_t i) {
    return 0.4 * static_cast<double>(i) - 1.0;
  }

 private:
  std::size_t n_;
};

// --- Objective plumbing -----------------------------------------------------------

TEST(Objective, FiniteDifferenceDefaultMatchesAnalytic) {
  const Quadratic quadratic(4);
  const FunctionObjective fd(4, [&](std::span<const double> x) {
    return quadratic.value(x);
  });
  const std::vector<double> x{0.5, 0.5, -1.0, 2.0};
  std::vector<double> g_fd(4), g_an(4);
  const double v_fd = fd.value_and_gradient(x, g_fd);
  const double v_an = quadratic.value_and_gradient(x, g_an);
  EXPECT_NEAR(v_fd, v_an, 1e-12);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(g_fd[i], g_an[i], 1e-6);
}

TEST(Objective, GradientSizeIsValidated) {
  // The base-class finite-difference implementation validates sizes.
  const FunctionObjective objective(3, [](std::span<const double>) {
    return 0.0;
  });
  std::vector<double> g(2);
  EXPECT_THROW(objective.value_and_gradient(std::vector<double>(3), g),
               std::invalid_argument);
}

TEST(WeightedSum, CombinesValuesAndGradients) {
  const Quadratic a(3);
  const PhaseAlignment b(3);
  WeightedSumObjective joint;
  joint.add_term(&a, 2.0);
  joint.add_term(&b, 0.5);
  const std::vector<double> x{0.1, 0.2, 0.3};
  std::vector<double> ga(3), gb(3), gj(3);
  const double va = a.value_and_gradient(x, ga);
  const double vb = b.value_and_gradient(x, gb);
  const double vj = joint.value_and_gradient(x, gj);
  EXPECT_NEAR(vj, 2.0 * va + 0.5 * vb, 1e-12);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(gj[i], 2.0 * ga[i] + 0.5 * gb[i], 1e-12);
  }
  EXPECT_NEAR(joint.value(x), vj, 1e-12);
}

TEST(WeightedSum, RejectsNullAndMismatchedTerms) {
  WeightedSumObjective joint;
  EXPECT_THROW(joint.add_term(nullptr, 1.0), std::invalid_argument);
  const Quadratic a(3);
  const Quadratic b(4);
  joint.add_term(&a, 1.0);
  EXPECT_THROW(joint.add_term(&b, 1.0), std::invalid_argument);
}

// --- All optimizers, same bar -------------------------------------------------------

std::vector<std::unique_ptr<Optimizer>> all_optimizers() {
  std::vector<std::unique_ptr<Optimizer>> out;
  out.push_back(std::make_unique<GradientDescent>());
  out.push_back(std::make_unique<Adam>());
  out.push_back(std::make_unique<Spsa>());
  RandomSearchOptions rs;
  rs.max_evaluations = 20000;
  rs.sigma = 0.5;
  out.push_back(std::make_unique<RandomSearch>(rs));
  AnnealingOptions an;
  an.max_evaluations = 30000;
  out.push_back(std::make_unique<SimulatedAnnealing>(an));
  CmaEsOptions cm;
  cm.max_evaluations = 20000;
  out.push_back(std::make_unique<CmaEs>(cm));
  return out;
}

class OptimizerTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Optimizer> optimizer() const {
    auto all = all_optimizers();
    return std::move(all[static_cast<std::size_t>(GetParam())]);
  }
};

TEST_P(OptimizerTest, SolvesQuadratic) {
  const Quadratic objective(6);
  const auto result =
      optimizer()->minimize(objective, std::vector<double>(6, 0.0));
  EXPECT_LT(result.value, 0.05) << optimizer()->name();
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(result.x[i], Quadratic::center(i), 0.25)
        << optimizer()->name() << " coord " << i;
  }
}

TEST_P(OptimizerTest, AlignsPhases) {
  const PhaseAlignment objective(8);
  const auto result =
      optimizer()->minimize(objective, std::vector<double>(8, 0.0));
  EXPECT_LT(result.value, 0.1) << optimizer()->name();
}

TEST_P(OptimizerTest, NeverWorsensInitialPoint) {
  const PhaseAlignment objective(5);
  std::vector<double> x0(5);
  for (std::size_t i = 0; i < 5; ++i) x0[i] = PhaseAlignment::target(i) + 0.05;
  const double v0 = objective.value(x0);
  const auto result = optimizer()->minimize(objective, x0);
  EXPECT_LE(result.value, v0 + 1e-12) << optimizer()->name();
}

TEST_P(OptimizerTest, RejectsDimensionMismatch) {
  const Quadratic objective(4);
  EXPECT_THROW(optimizer()->minimize(objective, std::vector<double>(3)),
               std::invalid_argument);
}

TEST_P(OptimizerTest, ReportsEvaluationCounts) {
  const Quadratic objective(3);
  const auto result =
      optimizer()->minimize(objective, std::vector<double>(3, 5.0));
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_GT(result.iterations, 0u);
}

std::string optimizer_case_name(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"GradientDescent", "Adam", "Spsa",
                                 "RandomSearch", "Annealing", "CmaEs"};
  return kNames[static_cast<std::size_t>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, OptimizerTest, ::testing::Range(0, 6),
                         optimizer_case_name);

// --- Algorithm-specific behaviours ---------------------------------------------------

TEST(GradientDescentTest, ConvergesFlagOnStall) {
  const Quadratic objective(2);
  GradientDescentOptions options;
  options.max_iterations = 500;
  const auto result = GradientDescent(options).minimize(
      objective, std::vector<double>{4.0, -4.0});
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.value, 1e-6);
}

TEST(GradientDescentTest, MonotoneDecrease) {
  // GD with line search never accepts a worse iterate: final <= initial.
  const PhaseAlignment objective(4);
  const std::vector<double> x0{2.0, 2.0, 2.0, 2.0};
  const double v0 = objective.value(x0);
  const auto result = GradientDescent().minimize(objective, x0);
  EXPECT_LE(result.value, v0);
}

TEST(SpsaTest, DeterministicForFixedSeed) {
  const PhaseAlignment objective(4);
  SpsaOptions options;
  options.seed = 99;
  const auto a = Spsa(options).minimize(objective, std::vector<double>(4, 1.0));
  const auto b = Spsa(options).minimize(objective, std::vector<double>(4, 1.0));
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.x, b.x);
}

TEST(RandomSearchTest, RespectsEvaluationBudget) {
  const Quadratic objective(3);
  RandomSearchOptions options;
  options.max_evaluations = 100;
  const auto result =
      RandomSearch(options).minimize(objective, std::vector<double>(3, 0.0));
  EXPECT_LE(result.evaluations, 100u);
}

TEST(CmaEsTest, DeterministicForFixedSeed) {
  const PhaseAlignment objective(5);
  CmaEsOptions options;
  options.seed = 123;
  options.max_evaluations = 3000;
  const auto a = CmaEs(options).minimize(objective, std::vector<double>(5, 1.0));
  const auto b = CmaEs(options).minimize(objective, std::vector<double>(5, 1.0));
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.x, b.x);
}

TEST(CmaEsTest, StepSizeCollapseReportsConvergence) {
  const Quadratic objective(3);
  CmaEsOptions options;
  options.max_evaluations = 50000;
  options.sigma_stop = 1e-6;
  const auto result = CmaEs(options).minimize(objective,
                                              std::vector<double>(3, 4.0));
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.value, 1e-3);
}

TEST(AnnealingTest, EscapesPoorStart) {
  // Start in the basin of a local minimum of a two-well function.
  const FunctionObjective objective(1, [](std::span<const double> x) {
    const double t = x[0];
    // Global min at t=3 (value -2), local min at t=-2 (value -1).
    return 0.05 * t * t - 2.0 * std::exp(-(t - 3.0) * (t - 3.0)) -
           1.0 * std::exp(-(t + 2.0) * (t + 2.0));
  });
  AnnealingOptions options;
  options.max_evaluations = 20000;
  options.sigma = 2.5;
  const auto result = SimulatedAnnealing(options).minimize(
      objective, std::vector<double>{-2.0});
  EXPECT_NEAR(result.x[0], 3.0, 0.5);
}

}  // namespace
}  // namespace surfos::opt
