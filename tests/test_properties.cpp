// Cross-cutting property suites (parameterized): invariants that must hold
// for every frequency band, every panel geometry, and randomized
// configurations — the fuzz layer on top of the per-module unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include "em/material.hpp"
#include "em/propagation.hpp"
#include "sense/aoa.hpp"
#include "sense/steering.hpp"
#include "sim/channel.hpp"
#include "surface/config.hpp"
#include "surface/panel.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace surfos {
namespace {

const em::Band kAllBands[] = {em::Band::kSub1GHz, em::Band::k2_4GHz,
                              em::Band::k5GHz, em::Band::k24GHz,
                              em::Band::k28GHz, em::Band::k60GHz};

std::string band_case_name(const ::testing::TestParamInfo<em::Band>& info) {
  std::string name{em::band_name(info.param)};
  std::string out;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
    else out.push_back('_');
  }
  return out;
}

// --- Per-band physics invariants ----------------------------------------------

class BandProperties : public ::testing::TestWithParam<em::Band> {};

TEST_P(BandProperties, WavelengthMatchesCenterFrequency) {
  const double f = em::band_center(GetParam());
  EXPECT_NEAR(em::wavelength(f) * f, em::kSpeedOfLight, 1.0);
  EXPECT_GT(em::band_bandwidth(GetParam()), 0.0);
}

TEST_P(BandProperties, MaterialsConserveEnergyAcrossBands) {
  const em::MaterialDb db = em::MaterialDb::standard();
  const double f = em::band_center(GetParam());
  for (int id = 0; id < static_cast<int>(db.size()); ++id) {
    for (const double angle : {0.0, 0.5, 1.2}) {
      const auto r = em::slab_response(db.get(id), f, angle);
      EXPECT_LE(r.reflection + r.transmission, 1.0 + 1e-9)
          << db.get(id).name << " band " << em::band_name(GetParam());
    }
  }
}

TEST_P(BandProperties, FocusGainScalesWithAperture) {
  // At every band, a focused 8x8 surface must beat a focused 4x4 by close
  // to the 12 dB aperture-squared law (blockage-free geometry).
  const double f = em::band_center(GetParam());
  sim::Environment env{em::MaterialDb::standard()};
  env.finalize();
  const geom::Vec3 tx{-1.5, -1.0, 0.0};
  const geom::Vec3 rx{1.5, -1.0, 0.0};
  double power[2] = {0.0, 0.0};
  const std::size_t sizes[2] = {4, 8};
  for (int i = 0; i < 2; ++i) {
    surface::ElementDesign d;
    d.spacing_m = em::wavelength(f) / 2.0;
    d.insertion_loss_db = 0.0;
    const surface::SurfacePanel panel(
        "p", geom::Frame({0, 0, 2}, {0, 0, -1}, {1, 0, 0}), sizes[i],
        sizes[i], d, surface::OperationMode::kReflective,
        surface::Reconfigurability::kProgrammable,
        surface::ControlGranularity::kElement);
    const sim::SceneChannel channel(&env, f, {tx, nullptr}, {&panel}, {rx});
    const auto focus = panel.focus_config(tx, rx, f);
    const auto coeffs =
        channel.coefficients_for(std::vector<surface::SurfaceConfig>{focus});
    // Surface-only contribution (subtract the shared direct term).
    power[i] = std::norm(channel.evaluate(0, coeffs) - channel.direct(0));
  }
  EXPECT_NEAR(util::to_db(power[1] / power[0]), 12.0, 1.5)
      << em::band_name(GetParam());
}

TEST_P(BandProperties, BeamscanFindsTrueAngleOnEveryBand) {
  const double f = em::band_center(GetParam());
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(f) / 2.0;
  const surface::SurfacePanel panel(
      "p", geom::Frame({0, 0, 1.5}, {1, 0, 0}), 8, 8, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  const sense::AoaSensingModel model(&panel, f, 181);
  for (const double truth : {-0.6, 0.0, 0.45}) {
    em::CVec v = sense::steering_vector(panel, truth, f);
    EXPECT_NEAR(model.estimate_azimuth(v), truth, 0.03)
        << em::band_name(GetParam()) << " angle " << truth;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBands, BandProperties,
                         ::testing::ValuesIn(kAllBands), band_case_name);

// --- Randomized configuration fuzz ---------------------------------------------

class ConfigFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConfigFuzz, SerializeRoundTripsRandomConfigs) {
  util::Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    surface::SurfaceConfig config(GetParam());
    for (std::size_t i = 0; i < config.size(); ++i) {
      config.set_phase(i, rng.uniform(0, util::kTwoPi));
      config.set_amplitude(i, rng.uniform());
    }
    const auto bytes = config.serialize();
    const auto back = surface::SurfaceConfig::deserialize(bytes);
    ASSERT_EQ(back.size(), config.size());
    for (std::size_t i = 0; i < config.size(); ++i) {
      EXPECT_NEAR(back.phase(i), config.phase(i), util::kTwoPi / 65000.0);
      EXPECT_NEAR(back.amplitude(i), config.amplitude(i), 1.0 / 250.0);
    }
  }
}

TEST_P(ConfigFuzz, QuantizationNeverMovesPhaseMoreThanHalfStep) {
  util::Rng rng(2000 + GetParam());
  for (const int bits : {1, 2, 3, 4}) {
    const double half_step = util::kPi / std::pow(2.0, bits);
    surface::SurfaceConfig config(GetParam());
    for (std::size_t i = 0; i < config.size(); ++i) {
      config.set_phase(i, rng.uniform(0, util::kTwoPi));
    }
    const auto quantized = config.quantized(bits);
    for (std::size_t i = 0; i < config.size(); ++i) {
      const double moved =
          std::fabs(util::wrap_pi(quantized.phase(i) - config.phase(i)));
      EXPECT_LE(moved, half_step + 1e-9) << "bits " << bits;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConfigFuzz,
                         ::testing::Values(1, 16, 256, 1024),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "n" + std::to_string(info.param);
                         });

// --- Channel invariants under random configurations ------------------------------

TEST(ChannelFuzz, PowerNeverExceedsFullyCoherentBound) {
  // |h_surface|^2 <= (sum |g_i f_i|)^2 for any phase configuration — the
  // triangle inequality on the single-bounce sum.
  sim::Environment env{em::MaterialDb::standard()};
  env.finalize();
  const double f = em::band_center(em::Band::k28GHz);
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(f) / 2.0;
  d.insertion_loss_db = 0.0;
  const surface::SurfacePanel panel(
      "p", geom::Frame({0, 0, 2}, {0, 0, -1}, {1, 0, 0}), 6, 6, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  const geom::Vec3 tx{-1.0, 0.4, 0.0};
  const geom::Vec3 rx{1.3, -0.6, 0.2};
  const sim::SceneChannel channel(&env, f, {tx, nullptr}, {&panel}, {rx});
  double bound_amplitude = 0.0;
  for (std::size_t i = 0; i < panel.element_count(); ++i) {
    bound_amplitude += std::abs(channel.tx_vector(0)[i]) *
                       std::abs(channel.rx_vector(0, 0)[i]);
  }
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    surface::SurfaceConfig config(panel.element_count());
    for (std::size_t i = 0; i < config.size(); ++i) {
      config.set_phase(i, rng.uniform(0, util::kTwoPi));
    }
    const auto coeffs =
        channel.coefficients_for(std::vector<surface::SurfaceConfig>{config});
    const double surface_amplitude =
        std::abs(channel.evaluate(0, coeffs) - channel.direct(0));
    EXPECT_LE(surface_amplitude, bound_amplitude * (1.0 + 1e-9))
        << "trial " << trial;
  }
}

TEST(ChannelFuzz, FocusConfigIsWithinEpsilonOfCoherentBound) {
  sim::Environment env{em::MaterialDb::standard()};
  env.finalize();
  const double f = em::band_center(em::Band::k28GHz);
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(f) / 2.0;
  d.insertion_loss_db = 0.0;
  const surface::SurfacePanel panel(
      "p", geom::Frame({0, 0, 2}, {0, 0, -1}, {1, 0, 0}), 6, 6, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  const geom::Vec3 tx{-1.0, 0.4, 0.0};
  const geom::Vec3 rx{1.3, -0.6, 0.2};
  const sim::SceneChannel channel(&env, f, {tx, nullptr}, {&panel}, {rx});
  double bound = 0.0;
  for (std::size_t i = 0; i < panel.element_count(); ++i) {
    bound += std::abs(channel.tx_vector(0)[i]) *
             std::abs(channel.rx_vector(0, 0)[i]);
  }
  const auto focus = panel.focus_config(tx, rx, f);
  const auto coeffs =
      channel.coefficients_for(std::vector<surface::SurfaceConfig>{focus});
  const double achieved =
      std::abs(channel.evaluate(0, coeffs) - channel.direct(0));
  // The focus profile co-phases every element exactly; only the (tiny)
  // numerical wrap error separates it from the coherent bound.
  EXPECT_GT(achieved, bound * 0.999);
}

}  // namespace
}  // namespace surfos
