// EM substrate tests: bands, Fresnel materials, antenna patterns, and
// propagation / link-budget math. Physical sanity properties (energy
// conservation, monotonic loss with frequency) are checked alongside exact
// closed-form values.
#include <gtest/gtest.h>

#include <cmath>

#include "em/antenna.hpp"
#include "em/band.hpp"
#include "em/cx.hpp"
#include "em/material.hpp"
#include "em/propagation.hpp"
#include "util/units.hpp"

namespace surfos::em {
namespace {

// --- cx ------------------------------------------------------------------------

TEST(Cx, ExpjAndPower) {
  const Cx e = expj(M_PI / 2.0);
  EXPECT_NEAR(e.real(), 0.0, 1e-12);
  EXPECT_NEAR(e.imag(), 1.0, 1e-12);
  EXPECT_NEAR(power({{1.0, 0.0}, {0.0, 2.0}}), 5.0, 1e-12);
}

TEST(Cx, InnerAndDot) {
  const CVec a{{0.0, 1.0}, {2.0, 0.0}};
  const CVec b{{1.0, 0.0}, {0.0, 1.0}};
  const Cx inner_ab = inner(a, b);  // conj(a).b = (-j)(1) + 2*(j) = j
  EXPECT_NEAR(inner_ab.real(), 0.0, 1e-12);
  EXPECT_NEAR(inner_ab.imag(), 1.0, 1e-12);
  const Cx dot_ab = dot(a, b);  // j*1 + 2*j = 3j
  EXPECT_NEAR(dot_ab.imag(), 3.0, 1e-12);
  EXPECT_THROW(dot(a, CVec{{1.0, 0.0}}), std::invalid_argument);
}

TEST(CMat, MultiplyAndTranspose) {
  CMat m(2, 3);
  m(0, 0) = {1, 0}; m(0, 1) = {0, 1}; m(0, 2) = {2, 0};
  m(1, 0) = {0, 0}; m(1, 1) = {1, 0}; m(1, 2) = {0, -1};
  const CVec x{{1, 0}, {1, 0}, {1, 0}};
  const CVec y = m.mul(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_NEAR(y[0].real(), 3.0, 1e-12);
  EXPECT_NEAR(y[0].imag(), 1.0, 1e-12);
  const CVec z = m.mul_transpose({{1, 0}, {1, 0}});
  ASSERT_EQ(z.size(), 3u);
  EXPECT_NEAR(z[2].real(), 2.0, 1e-12);
  EXPECT_NEAR(z[2].imag(), -1.0, 1e-12);
}

TEST(CMat, MulDiagEqualsExplicitScaling) {
  CMat m(2, 2);
  m(0, 0) = {1, 0}; m(0, 1) = {2, 0};
  m(1, 0) = {0, 1}; m(1, 1) = {1, 1};
  const CVec d{{0.5, 0}, {0, 1}};
  const CVec x{{1, 0}, {2, 0}};
  const CVec got = m.mul_diag(d, x);
  CVec dx(2);
  for (int i = 0; i < 2; ++i) dx[i] = d[i] * x[i];
  const CVec want = m.mul(dx);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(std::abs(got[i] - want[i]), 0.0, 1e-12);
  }
}

// --- bands ---------------------------------------------------------------------

TEST(Band, CentersAreOrdered) {
  EXPECT_LT(band_center(Band::kSub1GHz), band_center(Band::k2_4GHz));
  EXPECT_LT(band_center(Band::k2_4GHz), band_center(Band::k5GHz));
  EXPECT_LT(band_center(Band::k24GHz), band_center(Band::k60GHz));
}

TEST(Band, WavelengthAt28GHz) {
  EXPECT_NEAR(wavelength(band_center(Band::k28GHz)), 0.0107, 1e-4);
}

TEST(Band, AdjacencyIsSymmetricAndReflexive) {
  for (const Band a : {Band::kSub1GHz, Band::k2_4GHz, Band::k5GHz,
                       Band::k24GHz, Band::k28GHz, Band::k60GHz}) {
    EXPECT_TRUE(bands_adjacent(a, a));
    for (const Band b : {Band::kSub1GHz, Band::k2_4GHz, Band::k60GHz}) {
      EXPECT_EQ(bands_adjacent(a, b), bands_adjacent(b, a));
    }
  }
  // 24 and 28 GHz are adjacent; 2.4 and 60 GHz are not.
  EXPECT_TRUE(bands_adjacent(Band::k24GHz, Band::k28GHz));
  EXPECT_FALSE(bands_adjacent(Band::k2_4GHz, Band::k60GHz));
}

TEST(Band, NamesAreDistinct) {
  EXPECT_NE(band_name(Band::k24GHz), band_name(Band::k28GHz));
}

// --- materials -------------------------------------------------------------------

TEST(Material, PermittivityHasNegativeImaginaryPart) {
  const MaterialDb db = MaterialDb::standard();
  const auto eps = db.get(kMatConcrete).permittivity(28e9);
  EXPECT_GT(eps.real(), 1.0);
  EXPECT_LT(eps.imag(), 0.0);  // lossy convention
}

TEST(Material, SlabEnergyConservation) {
  const MaterialDb db = MaterialDb::standard();
  for (int id = 0; id < static_cast<int>(db.size()); ++id) {
    for (const double angle : {0.0, 0.3, 0.6, 1.0, 1.3}) {
      const auto r = slab_response(db.get(id), 28e9, angle);
      EXPECT_GE(r.reflection, 0.0);
      EXPECT_LE(r.reflection, 1.0);
      EXPECT_GE(r.transmission, 0.0);
      EXPECT_LE(r.transmission, 1.0);
      // Lossy slab: reflected + transmitted never exceeds incident.
      EXPECT_LE(r.reflection + r.transmission, 1.0 + 1e-9)
          << db.get(id).name << " at " << angle;
    }
  }
}

TEST(Material, MetalReflectsAlmostEverything) {
  const MaterialDb db = MaterialDb::standard();
  const auto r = slab_response(db.get(kMatMetal), 5e9, 0.0);
  EXPECT_GT(r.reflection, 0.95);
  EXPECT_LT(r.transmission, 1e-3);
}

TEST(Material, ConcreteTransmissionDropsWithFrequency) {
  const MaterialDb db = MaterialDb::standard();
  const auto& concrete = db.get(kMatConcrete);
  const double t_2ghz = slab_response(concrete, 2.4e9, 0.0).transmission;
  const double t_28ghz = slab_response(concrete, 28e9, 0.0).transmission;
  const double t_60ghz = slab_response(concrete, 60e9, 0.0).transmission;
  EXPECT_GT(t_2ghz, t_28ghz);
  EXPECT_GT(t_28ghz, t_60ghz);
  // mmWave through 20 cm concrete is effectively blocked (paper's premise
  // for needing surfaces at all).
  EXPECT_LT(util::to_db(t_28ghz), -30.0);
}

TEST(Material, GlassPassesMoreThanConcrete) {
  const MaterialDb db = MaterialDb::standard();
  const double glass = slab_response(db.get(kMatGlass), 28e9, 0.0).transmission;
  const double concrete =
      slab_response(db.get(kMatConcrete), 28e9, 0.0).transmission;
  EXPECT_GT(glass, concrete);
}

TEST(Material, GrazingIncidenceReflectsMore) {
  const MaterialDb db = MaterialDb::standard();
  const auto& brick = db.get(kMatBrick);
  const double normal = slab_response(brick, 5e9, 0.0).reflection;
  const double grazing = slab_response(brick, 5e9, 1.45).reflection;
  EXPECT_GT(grazing, normal);
}

TEST(Material, CoefficientMagnitudesMatchPowerResponse) {
  const MaterialDb db = MaterialDb::standard();
  const auto& wood = db.get(kMatWood);
  const auto r = slab_response(wood, 28e9, 0.4);
  const auto gamma = reflection_coefficient(wood, 28e9, 0.4);
  const auto tau = transmission_coefficient(wood, 28e9, 0.4);
  EXPECT_NEAR(std::norm(gamma), r.reflection, 1e-9);
  EXPECT_NEAR(std::norm(tau), r.transmission, 1e-9);
}

TEST(MaterialDb, UnknownIdThrows) {
  const MaterialDb db = MaterialDb::standard();
  EXPECT_THROW(db.get(-1), std::out_of_range);
  EXPECT_THROW(db.get(static_cast<int>(db.size())), std::out_of_range);
}

// --- antennas --------------------------------------------------------------------

TEST(Antenna, IsotropicIsUnity) {
  const IsotropicAntenna iso;
  EXPECT_DOUBLE_EQ(iso.amplitude_gain({1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(iso.amplitude_gain({0, -1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(iso.peak_power_gain(), 1.0);
}

TEST(Antenna, CosinePatternPeaksAtBoresight) {
  const CosinePowerAntenna ant({0, 0, 1}, 2.0);
  const double at_boresight = ant.amplitude_gain({0, 0, 1});
  const double off_axis = ant.amplitude_gain({0.5, 0, 0.8660254});
  EXPECT_GT(at_boresight, off_axis);
  EXPECT_DOUBLE_EQ(ant.amplitude_gain({0, 0, -1}), 0.0);  // back hemisphere
  EXPECT_NEAR(at_boresight * at_boresight, ant.peak_power_gain(), 1e-9);
}

TEST(Antenna, CosineExponentZeroIsHemisphericConstant) {
  const CosinePowerAntenna ant({1, 0, 0}, 0.0);
  EXPECT_NEAR(ant.amplitude_gain({1, 0, 0}), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(ant.amplitude_gain({0.01, 1, 0}),
              ant.amplitude_gain({0.01, 0, 1}), 1e-9);
}

TEST(Antenna, SectorGainMatchesBeamwidth) {
  const SectorAntenna narrow({1, 0, 0}, 20.0);
  const SectorAntenna wide({1, 0, 0}, 90.0);
  EXPECT_GT(narrow.peak_power_gain(), wide.peak_power_gain());
  // G = 2 / (1 - cos(half)) at 90 deg full width: 2/(1-cos45).
  EXPECT_NEAR(wide.peak_power_gain(), 2.0 / (1.0 - std::cos(M_PI / 4.0)),
              1e-9);
}

TEST(Antenna, SectorSidelobeIsSuppressed) {
  const SectorAntenna ant({1, 0, 0}, 30.0, 20.0);
  const double main = ant.amplitude_gain({1, 0, 0});
  const double side = ant.amplitude_gain({0, 1, 0});
  EXPECT_NEAR(util::amplitude_to_db(main / side), 20.0, 1e-6);
}

TEST(Antenna, RejectsBadArguments) {
  EXPECT_THROW(CosinePowerAntenna({1, 0, 0}, -1.0), std::invalid_argument);
  EXPECT_THROW(SectorAntenna({1, 0, 0}, 0.0), std::invalid_argument);
  EXPECT_THROW(SectorAntenna({1, 0, 0}, 400.0), std::invalid_argument);
}

// --- propagation --------------------------------------------------------------------

TEST(Propagation, FriisFreeSpaceLoss) {
  // FSPL at 2.4 GHz over 10 m is ~60.05 dB.
  const double amplitude = friis_amplitude(2.4e9, 10.0);
  EXPECT_NEAR(util::to_db(amplitude * amplitude), -60.05, 0.1);
}

TEST(Propagation, FreeSpacePhaseAdvancesWithDistance) {
  const double f = 28e9;
  const double lambda = wavelength(f);
  const Cx g1 = free_space_gain(f, 3.0);
  const Cx g2 = free_space_gain(f, 3.0 + lambda);
  // One wavelength further: same phase, amplitude scaled by d1/d2.
  EXPECT_NEAR(std::arg(g1), std::arg(g2), 1e-6);
  EXPECT_NEAR(std::abs(g2) / std::abs(g1), 3.0 / (3.0 + lambda), 1e-9);
}

TEST(Propagation, ElementHopComposesToCascade) {
  const double f = 28e9;
  const double area = 2.9e-5;
  const Cx hop1 = element_hop_gain(f, area, 0.8, 2.0);
  const Cx hop2 = element_hop_gain(f, area, 0.6, 3.0);
  const Cx cascade = element_cascade_gain(f, area, 0.8, 0.6, 2.0, 3.0);
  EXPECT_NEAR(std::abs(hop1 * hop2 - cascade), 0.0, 1e-15);
}

TEST(Propagation, ElementGainsVanishBehindPanel) {
  EXPECT_EQ(element_hop_gain(28e9, 1e-5, -0.1, 1.0), Cx{});
  EXPECT_EQ(element_cascade_gain(28e9, 1e-5, 0.5, 0.0, 1.0, 1.0), Cx{});
  EXPECT_EQ(element_to_element_gain(28e9, 1e-5, -0.2, 1e-5, 0.5, 1.0), Cx{});
}

TEST(Propagation, NoiseFloor) {
  // -174 dBm/Hz + 10log10(400 MHz) + 7 dB NF = -81.0 dBm.
  EXPECT_NEAR(noise_floor_dbm(400e6, 7.0), -81.0, 0.05);
}

TEST(Propagation, ShannonCapacity) {
  EXPECT_NEAR(shannon_capacity(1e6, 1.0), 1e6, 1e-6);
  EXPECT_NEAR(shannon_capacity(1e6, 3.0), 2e6, 1e-6);
  EXPECT_DOUBLE_EQ(shannon_capacity(1e6, 0.0), 0.0);
}

TEST(LinkBudget, RssSnrCapacityConsistency) {
  const LinkBudget budget{20.0, 400e6, 7.0};
  const double gain = 1e-8;  // -80 dB channel
  EXPECT_NEAR(budget.rss_dbm(gain), -60.0, 1e-9);
  EXPECT_NEAR(budget.snr_db(gain), budget.rss_dbm(gain) - budget.noise_dbm(),
              1e-9);
  EXPECT_NEAR(budget.capacity(gain),
              shannon_capacity(400e6, budget.snr(gain)), 1e-3);
}

TEST(LinkBudget, ZeroGainFloors) {
  const LinkBudget budget;
  EXPECT_LE(budget.rss_dbm(0.0), -250.0);
  EXPECT_NEAR(budget.capacity(0.0), 0.0, 1e-3);
}

}  // namespace
}  // namespace surfos::em
