// Deployment-automation tests: candidate mount generation and the placement
// planner's ranking/greedy selection on scenes with known best answers.
#include <gtest/gtest.h>

#include "em/material.hpp"
#include "orch/placement.hpp"
#include "util/stats.hpp"

namespace surfos::orch {
namespace {

TEST(WallMounts, GeneratesInwardFacingMounts) {
  const auto mounts = wall_mounts(0.0, 4.0, 0.0, 3.0, 1.8, 1.0);
  ASSERT_FALSE(mounts.empty());
  const geom::Vec3 center{2.0, 1.5, 1.8};
  for (const auto& mount : mounts) {
    // Every normal points toward the room interior.
    EXPECT_GT((center - mount.pose.origin()).dot(mount.pose.normal()), 0.0)
        << mount.label;
    // Mounts sit just inside the rectangle.
    EXPECT_GE(mount.pose.origin().x, -1e-9);
    EXPECT_LE(mount.pose.origin().x, 4.0 + 1e-9);
  }
}

TEST(WallMounts, SpacingControlsCount) {
  const auto coarse = wall_mounts(0.0, 4.0, 0.0, 4.0, 1.8, 2.0);
  const auto fine = wall_mounts(0.0, 4.0, 0.0, 4.0, 1.8, 0.5);
  EXPECT_GT(fine.size(), coarse.size());
  EXPECT_THROW(wall_mounts(4.0, 0.0, 0.0, 4.0, 1.8), std::invalid_argument);
  EXPECT_THROW(wall_mounts(0.0, 4.0, 0.0, 4.0, 1.8, 0.0),
               std::invalid_argument);
}

struct PlannerFixture {
  sim::Environment env{em::MaterialDb::standard()};
  sim::TxSpec ap{{5.6, 0.5, 1.8}, nullptr};
  em::LinkBudget budget{10.0, 400e6, 7.0};
  geom::SampleGrid region{0.5, 3.5, 2.5, 5.5, 1.0, 4, 4};  // west half: shadowed from the opening

  PlannerFixture() {
    // A 6x6 hall split by a concrete partition at y = 1.5 with one narrow
    // opening (x in [5.2, 6]). The AP sits in the south strip; the target
    // region is north of the partition, so only mounts the AP can reach
    // through the opening — and which themselves see the region — are
    // useful.
    env.add_vertical_wall(0, 0, 6, 0, 0, 3, em::kMatConcrete);
    env.add_vertical_wall(0, 6, 6, 6, 0, 3, em::kMatConcrete);
    env.add_vertical_wall(0, 0, 0, 6, 0, 3, em::kMatConcrete);
    env.add_vertical_wall(6, 0, 6, 6, 0, 3, em::kMatConcrete);
    env.add_vertical_wall(0.0, 1.5, 5.2, 1.5, 0, 3, em::kMatConcrete);
    env.finalize();
  }
};

TEST(Placement, RanksEveryCandidate) {
  PlannerFixture fx;
  const auto candidates = wall_mounts(0.0, 6.0, 0.0, 6.0, 1.8, 2.0);
  const PlacementPlan plan =
      plan_placement(fx.env, fx.ap, em::Band::k28GHz, fx.budget, candidates,
                     fx.region);
  EXPECT_EQ(plan.ranking.size(), candidates.size());
  // Ranking is sorted best-first.
  for (std::size_t i = 1; i < plan.ranking.size(); ++i) {
    EXPECT_GE(plan.ranking[i - 1].median_snr_db,
              plan.ranking[i].median_snr_db);
  }
  ASSERT_EQ(plan.selected.size(), 1u);
  EXPECT_EQ(plan.selected[0], plan.ranking[0].index);
  EXPECT_NEAR(plan.selected_median_snr_db, plan.ranking[0].median_snr_db,
              1e-9);
}

TEST(Placement, PrefersMountsWithLineOfSightToBoth) {
  PlannerFixture fx;
  // Two handcrafted candidates: one behind the partition (the AP cannot
  // feed it), one on the north wall fed squarely through the opening with
  // clear LoS to the whole region.
  const std::vector<MountCandidate> candidates{
      {"shadowed", geom::Frame({1.0, 3.0, 1.8}, {1, 0, 0})},
      {"clear", geom::Frame({4.0, 5.9, 1.8}, {0, -1, 0})},
  };
  PlacementOptions options;
  options.rows = 24;  // enough aperture to rise clearly above the direct floor
  options.cols = 24;
  const PlacementPlan plan =
      plan_placement(fx.env, fx.ap, em::Band::k28GHz, fx.budget, candidates,
                     fx.region, options);
  EXPECT_EQ(candidates[plan.ranking[0].index].label, "clear");

  // Both candidates share the same direct-channel floor (the slice of the
  // region the AP sees through the opening); only the clear mount adds
  // surface gain on top of it.
  const sim::SceneChannel direct(&fx.env, em::band_center(em::Band::k28GHz),
                                 fx.ap, {}, fx.region.points());
  std::vector<double> baseline;
  for (std::size_t j = 0; j < direct.rx_count(); ++j) {
    baseline.push_back(fx.budget.snr_db(std::norm(direct.direct(j))));
  }
  const double floor = util::median(baseline);
  EXPECT_GT(plan.ranking[0].median_snr_db, floor + 2.0);   // clear adds gain
  EXPECT_LT(plan.ranking[1].median_snr_db, floor + 1.0);   // shadowed cannot
}

TEST(Placement, SecondSurfaceImprovesCoverageTail) {
  PlannerFixture fx;
  const auto candidates = wall_mounts(0.0, 6.0, 0.0, 6.0, 1.8, 1.5);
  PlacementOptions one;
  one.surfaces_to_place = 1;
  PlacementOptions two;
  two.surfaces_to_place = 2;
  const auto plan1 = plan_placement(fx.env, fx.ap, em::Band::k28GHz,
                                    fx.budget, candidates, fx.region, one);
  const auto plan2 = plan_placement(fx.env, fx.ap, em::Band::k28GHz,
                                    fx.budget, candidates, fx.region, two);
  EXPECT_EQ(plan2.selected.size(), 2u);
  EXPECT_GE(plan2.selected_median_snr_db, plan1.selected_median_snr_db);
  EXPECT_NE(plan2.selected[0], plan2.selected[1]);
}

TEST(Placement, RejectsBadInput) {
  PlannerFixture fx;
  EXPECT_THROW(plan_placement(fx.env, fx.ap, em::Band::k28GHz, fx.budget, {},
                              fx.region),
               std::invalid_argument);
  PlacementOptions zero;
  zero.surfaces_to_place = 0;
  const auto candidates = wall_mounts(0.0, 6.0, 0.0, 6.0, 1.8, 3.0);
  EXPECT_THROW(plan_placement(fx.env, fx.ap, em::Band::k28GHz, fx.budget,
                              candidates, fx.region, zero),
               std::invalid_argument);
}

}  // namespace
}  // namespace surfos::orch
