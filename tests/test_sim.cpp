// Channel simulator tests: environment transmission, image-method ray
// tracing against closed forms, SceneChannel linearity/superposition, the
// analytic partial derivatives against finite differences, two-surface
// cascades, heatmaps, and the canonical floorplans' geometric guarantees.
#include <gtest/gtest.h>

#include <cmath>

#include "em/propagation.hpp"
#include "sim/channel.hpp"
#include "sim/environment.hpp"
#include "sim/floorplan.hpp"
#include "sim/heatmap.hpp"
#include "sim/raytracer.hpp"
#include "sim/wideband.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace surfos::sim {
namespace {

constexpr double kFreq = 28e9;

Environment empty_env() {
  Environment env(em::MaterialDb::standard());
  env.finalize();
  return env;
}

// --- Environment -----------------------------------------------------------------

TEST(Environment, TransmissionThroughNothingIsUnity) {
  const Environment env = empty_env();
  const em::Cx t = env.segment_transmission({0, 0, 0}, {5, 0, 0}, kFreq);
  EXPECT_NEAR(std::abs(t), 1.0, 1e-12);
}

TEST(Environment, TransmissionThroughWallMatchesMaterial) {
  Environment env(em::MaterialDb::standard());
  env.add_vertical_wall(1.0, -2.0, 1.0, 2.0, 0.0, 3.0, em::kMatPlasterboard);
  env.finalize();
  const em::Cx t = env.segment_transmission({0, 0, 1.5}, {2, 0, 1.5}, kFreq);
  const auto expected = em::transmission_coefficient(
      env.materials().get(em::kMatPlasterboard), kFreq, 0.0);
  EXPECT_NEAR(std::abs(t), std::abs(expected), 1e-9);
}

TEST(Environment, TransmissionAccumulatesAcrossWalls) {
  Environment env(em::MaterialDb::standard());
  env.add_vertical_wall(1.0, -2.0, 1.0, 2.0, 0.0, 3.0, em::kMatWood);
  env.add_vertical_wall(2.0, -2.0, 2.0, 2.0, 0.0, 3.0, em::kMatWood);
  env.finalize();
  const double one_wall = std::abs(env.segment_transmission(
      {0, 0, 1.5}, {1.5, 0, 1.5}, kFreq));
  const double two_walls = std::abs(env.segment_transmission(
      {0, 0, 1.5}, {3, 0, 1.5}, kFreq));
  EXPECT_NEAR(two_walls, one_wall * one_wall, 1e-9);
}

TEST(Environment, MetalBlocksCompletely) {
  Environment env(em::MaterialDb::standard());
  env.add_vertical_wall(1.0, -2.0, 1.0, 2.0, 0.0, 3.0, em::kMatMetal);
  env.finalize();
  const em::Cx t = env.segment_transmission({0, 0, 1.5}, {2, 0, 1.5}, kFreq);
  EXPECT_LT(std::abs(t), 1e-6);
}

TEST(Environment, ExclusionSkipsBouncePointCrossing) {
  Environment env(em::MaterialDb::standard());
  env.add_vertical_wall(1.0, -2.0, 1.0, 2.0, 0.0, 3.0, em::kMatConcrete);
  env.finalize();
  const geom::Vec3 crossing{1.0, 0.0, 1.5};
  const geom::Vec3 exclude[] = {crossing};
  const em::Cx t = env.segment_transmission({0, 0, 1.5}, {2, 0, 1.5}, kFreq,
                                            exclude);
  EXPECT_NEAR(std::abs(t), 1.0, 1e-12);
}

TEST(Environment, InvalidMaterialRejectedEarly) {
  Environment env(em::MaterialDb::standard());
  EXPECT_THROW(env.add_vertical_wall(0, 0, 1, 0, 0, 3, 999),
               std::out_of_range);
}

TEST(Reflector, MirrorAndSegmentIntersection) {
  Reflector r;
  r.frame = geom::Frame({0, 0, 0}, {0, 0, 1});
  r.half_u = 1.0;
  r.half_v = 1.0;
  EXPECT_EQ(r.mirror({0.5, 0.2, 2.0}), geom::Vec3(0.5, 0.2, -2.0));
  const auto hit = r.segment_plane_point({0, 0, 1}, {0, 0, -1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->z, 0.0, 1e-12);
  // Outside the rectangle bounds.
  EXPECT_FALSE(r.segment_plane_point({5, 5, 1}, {5, 5, -1}).has_value());
  // Same side: no crossing.
  EXPECT_FALSE(r.segment_plane_point({0, 0, 1}, {0, 0, 2}).has_value());
}

// --- RayTracer -------------------------------------------------------------------

TEST(RayTracer, FreeSpaceMatchesFriisExactly) {
  const Environment env = empty_env();
  const RayTracer tracer(&env, kFreq);
  const auto paths = tracer.trace({0, 0, 1}, {4, 0, 1});
  ASSERT_EQ(paths.size(), 1u);
  const em::Cx expected = em::free_space_gain(kFreq, 4.0);
  EXPECT_NEAR(std::abs(paths[0].gain - expected), 0.0, 1e-15);
  EXPECT_EQ(paths[0].bounce_count, 0);
  EXPECT_NEAR(paths[0].length_m, 4.0, 1e-12);
}

TEST(RayTracer, DelayMatchesLength) {
  const Environment env = empty_env();
  const RayTracer tracer(&env, kFreq);
  const auto paths = tracer.trace({0, 0, 1}, {3, 0, 1});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].delay_s(), 3.0 / em::kSpeedOfLight, 1e-18);
}

TEST(RayTracer, SingleReflectionMatchesImageConstruction) {
  Environment env(em::MaterialDb::standard());
  // Metal floor at z = 0 — near-ideal mirror.
  env.add_horizontal_slab(-10, 10, -10, 10, 0.0, em::kMatMetal);
  env.finalize();
  const RayTracer tracer(&env, kFreq, {1, 1e-15});
  const geom::Vec3 a{0, 0, 1};
  const geom::Vec3 b{4, 0, 1};
  const auto paths = tracer.trace(a, b);
  // Direct + one floor bounce.
  ASSERT_EQ(paths.size(), 2u);
  const PropPath* bounce = paths[0].bounce_count == 1 ? &paths[0] : &paths[1];
  ASSERT_EQ(bounce->bounce_count, 1);
  // Image method: unfolded length is |a' - b| with a' = (0, 0, -1).
  const double expected_length = std::sqrt(16.0 + 4.0);
  EXPECT_NEAR(bounce->length_m, expected_length, 1e-9);
  // Bounce point is midway in x (symmetry), on the floor.
  EXPECT_NEAR(bounce->points[1].x, 2.0, 1e-9);
  EXPECT_NEAR(bounce->points[1].z, 0.0, 1e-9);
  // Metal reflection keeps nearly all amplitude.
  const double expected_amp = em::friis_amplitude(kFreq, expected_length);
  EXPECT_NEAR(std::abs(bounce->gain), expected_amp, expected_amp * 0.05);
}

TEST(RayTracer, ReflectionOrderZeroDisablesBounces) {
  Environment env(em::MaterialDb::standard());
  env.add_horizontal_slab(-10, 10, -10, 10, 0.0, em::kMatMetal);
  env.finalize();
  const RayTracer tracer(&env, kFreq, {0, 1e-15});
  EXPECT_EQ(tracer.trace({0, 0, 1}, {4, 0, 1}).size(), 1u);
}

TEST(RayTracer, SecondOrderBouncesAppearBetweenParallelMirrors) {
  Environment env(em::MaterialDb::standard());
  env.add_horizontal_slab(-10, 10, -10, 10, 0.0, em::kMatMetal);
  env.add_horizontal_slab(-10, 10, -10, 10, 3.0, em::kMatMetal);
  env.finalize();
  const RayTracer tracer1(&env, kFreq, {1, 1e-15});
  const RayTracer tracer2(&env, kFreq, {2, 1e-15});
  const auto paths1 = tracer1.trace({0, 0, 1}, {5, 0, 1});
  const auto paths2 = tracer2.trace({0, 0, 1}, {5, 0, 1});
  EXPECT_EQ(paths1.size(), 3u);  // direct + floor + ceiling
  EXPECT_EQ(paths2.size(), 5u);  // + floor-ceiling + ceiling-floor
  int second_order = 0;
  for (const auto& p : paths2) {
    if (p.bounce_count == 2) ++second_order;
  }
  EXPECT_EQ(second_order, 2);
}

TEST(RayTracer, BlockedDirectPathIsDropped) {
  Environment env(em::MaterialDb::standard());
  env.add_vertical_wall(2.0, -5.0, 2.0, 5.0, 0.0, 3.0, em::kMatMetal);
  env.finalize();
  const RayTracer tracer(&env, kFreq);
  const auto paths = tracer.trace({0, 0, 1.5}, {4, 0, 1.5});
  for (const auto& p : paths) EXPECT_NE(p.bounce_count, 0);
}

TEST(RayTracer, TotalGainIsCoherentSum) {
  Environment env(em::MaterialDb::standard());
  env.add_horizontal_slab(-10, 10, -10, 10, 0.0, em::kMatConcrete);
  env.finalize();
  const RayTracer tracer(&env, kFreq);
  const auto paths = tracer.trace({0, 0, 1}, {4, 0, 1});
  em::Cx sum{};
  for (const auto& p : paths) sum += p.gain;
  EXPECT_NEAR(std::abs(tracer.total_gain({0, 0, 1}, {4, 0, 1}) - sum), 0.0,
              1e-15);
}

TEST(RayTracer, RejectsBadConstruction) {
  const Environment env = empty_env();
  EXPECT_THROW(RayTracer(nullptr, kFreq), std::invalid_argument);
  EXPECT_THROW(RayTracer(&env, -1.0), std::invalid_argument);
  Environment unfinalized(em::MaterialDb::standard());
  EXPECT_THROW(RayTracer(&unfinalized, kFreq), std::logic_error);
}

TEST(RayTracer, ReciprocityOfTotalGain) {
  // Propagation is reciprocal: swapping endpoints must give the same total
  // complex gain (paths reverse, lengths and coefficients are symmetric).
  Environment env(em::MaterialDb::standard());
  env.add_horizontal_slab(-10, 10, -10, 10, 0.0, em::kMatConcrete);
  env.add_vertical_wall(3.0, -5.0, 3.0, 5.0, 0.0, 3.0, em::kMatPlasterboard);
  env.finalize();
  const RayTracer tracer(&env, kFreq);
  util::Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Vec3 a{rng.uniform(-4, 2), rng.uniform(-4, 4),
                       rng.uniform(0.5, 2.5)};
    const geom::Vec3 b{rng.uniform(3.5, 8), rng.uniform(-4, 4),
                       rng.uniform(0.5, 2.5)};
    const em::Cx forward = tracer.total_gain(a, b);
    const em::Cx backward = tracer.total_gain(b, a);
    EXPECT_NEAR(std::abs(forward - backward), 0.0,
                1e-9 * std::max(1e-12, std::abs(forward)))
        << "trial " << trial;
  }
}

TEST(RayTracer, PathCountInvariantUnderSwap) {
  Environment env(em::MaterialDb::standard());
  env.add_horizontal_slab(-10, 10, -10, 10, 0.0, em::kMatMetal);
  env.add_horizontal_slab(-10, 10, -10, 10, 3.0, em::kMatMetal);
  env.finalize();
  const RayTracer tracer(&env, kFreq);
  const geom::Vec3 a{0, 0, 1};
  const geom::Vec3 b{5, 1, 2};
  EXPECT_EQ(tracer.trace(a, b).size(), tracer.trace(b, a).size());
}

// --- SceneChannel -----------------------------------------------------------------

surface::SurfacePanel reflective_panel(std::size_t n = 8) {
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(kFreq) / 2.0;
  d.insertion_loss_db = 0.0;
  return surface::SurfacePanel(
      "panel", geom::Frame({0, 0, 2.0}, {0, 0, -1}, {1, 0, 0}), n, n, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
}

TEST(SceneChannel, SingleElementMatchesCascadeFormula) {
  const Environment env = empty_env();
  surface::ElementDesign d;
  d.spacing_m = 0.005;
  d.insertion_loss_db = 0.0;
  const surface::SurfacePanel panel(
      "one", geom::Frame({0, 0, 2.0}, {0, 0, -1}, {1, 0, 0}), 1, 1, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  const geom::Vec3 tx{-1.0, 0.0, 0.0};
  const geom::Vec3 rx{1.5, 0.0, 0.0};
  SceneChannel channel(&env, kFreq, {tx, nullptr}, {&panel}, {rx});
  const surface::SurfaceConfig uniform(1);
  const auto power = channel.power_map({{uniform}});

  // Closed form: direct + element cascade.
  const double d1 = tx.distance_to({0, 0, 2});
  const double d2 = rx.distance_to({0, 0, 2});
  const double cos_in = 2.0 / d1;
  const double cos_out = 2.0 / d2;
  const em::Cx expected =
      em::free_space_gain(kFreq, tx.distance_to(rx)) +
      em::element_cascade_gain(kFreq, d.effective_area(), cos_in, cos_out, d1,
                               d2);
  EXPECT_NEAR(power[0], std::norm(expected), std::norm(expected) * 1e-9);
}

TEST(SceneChannel, LinearInCoefficients) {
  const Environment env = empty_env();
  const surface::SurfacePanel panel = reflective_panel(4);
  const geom::Vec3 tx{-1.0, 0.3, 0.0};
  SceneChannel channel(&env, kFreq, {tx, nullptr}, {&panel},
                       {{1.2, -0.4, 0.1}});
  util::Rng rng(5);
  em::CVec c1(panel.element_count());
  em::CVec c2(panel.element_count());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    c1[i] = em::expj(rng.uniform(0, util::kTwoPi));
    c2[i] = em::expj(rng.uniform(0, util::kTwoPi));
  }
  const em::Cx h1 = channel.evaluate(0, {{c1}});
  const em::Cx h2 = channel.evaluate(0, {{c2}});
  // Superposition: h(a*c1 + b*c2) - h(0) = a*(h(c1)-h(0)) + b*(h(c2)-h(0)).
  const em::CVec zero(panel.element_count(), em::Cx{});
  const em::Cx h0 = channel.evaluate(0, {{zero}});
  em::CVec mix(panel.element_count());
  const double a = 0.3, b = 0.6;
  for (std::size_t i = 0; i < mix.size(); ++i) mix[i] = a * c1[i] + b * c2[i];
  const em::Cx hm = channel.evaluate(0, {{mix}});
  const em::Cx expected = h0 + a * (h1 - h0) + b * (h2 - h0);
  EXPECT_NEAR(std::abs(hm - expected), 0.0, 1e-12);
}

TEST(SceneChannel, ZeroCoefficientsGiveDirectOnly) {
  const Environment env = empty_env();
  const surface::SurfacePanel panel = reflective_panel(4);
  const geom::Vec3 tx{-1.0, 0.0, 0.0};
  const geom::Vec3 rx{2.0, 0.0, 0.0};
  SceneChannel channel(&env, kFreq, {tx, nullptr}, {&panel}, {rx});
  const em::CVec zero(panel.element_count(), em::Cx{});
  const em::Cx h = channel.evaluate(0, {{zero}});
  EXPECT_NEAR(std::abs(h - channel.direct(0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(channel.direct(0) -
                       em::free_space_gain(kFreq, tx.distance_to(rx))),
              0.0, 1e-15);
}

TEST(SceneChannel, FocusBeatsUniformSubstantially) {
  // Block the direct path so the surface is the dominant route (the regime
  // surfaces are deployed for); focusing must then deliver a large gain.
  // A low metal fence in the x=0 plane blocks the ground-level direct path
  // but not the elevated panel legs (panel center sits at z=2).
  Environment env(em::MaterialDb::standard());
  env.add_vertical_wall(0.0, -2.0, 0.0, 0.0, 0.0, 1.0, em::kMatMetal);
  env.finalize();
  const surface::SurfacePanel panel = reflective_panel(12);
  const geom::Vec3 tx{-1.5, -1.0, 0.0};
  const geom::Vec3 rx{1.8, -1.0, 0.0};
  SceneChannel channel(&env, kFreq, {tx, nullptr}, {&panel}, {rx});
  const surface::SurfaceConfig uniform(panel.element_count());
  const surface::SurfaceConfig focus = panel.focus_config(tx, rx, kFreq);
  const double p_uniform = channel.power_map({{uniform}})[0];
  const double p_focus = channel.power_map({{focus}})[0];
  EXPECT_GT(util::to_db(p_focus / p_uniform), 10.0);
}

TEST(SceneChannel, ReflectivePanelIgnoresRxBehindIt) {
  const Environment env = empty_env();
  const surface::SurfacePanel panel = reflective_panel(4);  // faces -z
  const geom::Vec3 tx{-1.0, 0.0, 0.0};
  const geom::Vec3 rx_behind{1.0, 0.0, 4.0};  // above the panel plane z=2
  SceneChannel channel(&env, kFreq, {tx, nullptr}, {&panel}, {rx_behind});
  const surface::SurfaceConfig focus = panel.focus_config(tx, rx_behind, kFreq);
  const em::CVec zero(panel.element_count(), em::Cx{});
  const auto coeffs = channel.coefficients_for({{focus}});
  // The surface term must be gated off: channel equals direct.
  EXPECT_NEAR(std::abs(channel.evaluate(0, coeffs) - channel.direct(0)), 0.0,
              1e-15);
}

TEST(SceneChannel, PartialsMatchFiniteDifference) {
  const Environment env = empty_env();
  const surface::SurfacePanel panel = reflective_panel(3);
  const geom::Vec3 tx{-1.0, 0.2, 0.0};
  SceneChannel channel(&env, kFreq, {tx, nullptr}, {&panel},
                       {{1.0, -0.3, 0.2}});
  util::Rng rng(17);
  std::vector<double> phases(panel.element_count());
  for (double& p : phases) p = rng.uniform(0, util::kTwoPi);

  auto coeffs_of = [&](const std::vector<double>& ph) {
    em::CVec c(ph.size());
    for (std::size_t i = 0; i < ph.size(); ++i) c[i] = em::expj(ph[i]);
    return std::vector<em::CVec>{c};
  };

  em::Cx h;
  std::vector<em::CVec> dh_dc;
  channel.evaluate_with_partials(0, coeffs_of(phases), h, dh_dc);

  const double eps = 1e-7;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    auto plus = phases;
    auto minus = phases;
    plus[i] += eps;
    minus[i] -= eps;
    const em::Cx fd = (channel.evaluate(0, coeffs_of(plus)) -
                       channel.evaluate(0, coeffs_of(minus))) /
                      (2.0 * eps);
    // dh/dphi_i = j * c_i * dh/dc_i.
    const em::Cx analytic = em::Cx{0.0, 1.0} * em::expj(phases[i]) * dh_dc[0][i];
    EXPECT_NEAR(std::abs(fd - analytic), 0.0, 1e-9 + 1e-4 * std::abs(analytic))
        << "element " << i;
  }
}

TEST(SceneChannel, TwoPanelCascadeAddsRelayPath) {
  // TX sees only panel A; RX sees only panel B (metal wall between TX and
  // RX); the A->B cascade is the only usable route.
  Environment env(em::MaterialDb::standard());
  env.add_vertical_wall(0.0, -0.4, 0.0, 4.0, 0.0, 3.0, em::kMatMetal);
  env.finalize();

  surface::ElementDesign d;
  d.spacing_m = em::wavelength(kFreq) / 2.0;
  d.insertion_loss_db = 0.0;
  // Panel A at y=-1 faces +y-ish region x<0... place both on the open side
  // y < -0.4 extended: A reflects TX toward B, B reflects toward RX.
  const surface::SurfacePanel a(
      "A", geom::Frame({-1.0, -1.5, 1.5}, {0.3, 1.0, 0.0}), 10, 10, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  const surface::SurfacePanel b(
      "B", geom::Frame({1.0, -1.5, 1.5}, {-0.3, 1.0, 0.0}), 10, 10, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  const geom::Vec3 tx{-1.5, 2.0, 1.5};  // x<0 side of the metal wall
  const geom::Vec3 rx{1.5, 2.0, 1.5};   // x>0 side

  ChannelOptions options;
  options.include_surface_cascades = true;
  SceneChannel channel(&env, kFreq, {tx, nullptr}, {&a, &b}, {rx}, nullptr,
                       options);
  ChannelOptions no_cascade = options;
  no_cascade.include_surface_cascades = false;
  SceneChannel flat(&env, kFreq, {tx, nullptr}, {&a, &b}, {rx}, nullptr,
                    no_cascade);

  // Chain focus: A focuses TX onto B's center, B focuses A's center onto RX.
  const auto config_a = a.focus_config(tx, b.center(), kFreq);
  const auto config_b = b.focus_config(a.center(), rx, kFreq);
  const std::vector<surface::SurfaceConfig> configs{config_a, config_b};
  const double with_cascade = channel.power_map(configs)[0];
  const double without_cascade = flat.power_map(configs)[0];
  EXPECT_GT(with_cascade, without_cascade * 10.0);
}

TEST(SceneChannel, CascadePartialsMatchFiniteDifference) {
  const Environment env = empty_env();
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(kFreq) / 2.0;
  d.insertion_loss_db = 0.0;
  const surface::SurfacePanel a(
      "A", geom::Frame({-0.5, 0.0, 1.5}, {0.3, 0.3, -1.0}), 2, 2, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  const surface::SurfacePanel b(
      "B", geom::Frame({0.5, 0.0, 1.5}, {-0.3, 0.2, -1.0}), 2, 2, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  SceneChannel channel(&env, kFreq, {{-1.0, 0.0, 0.0}, nullptr}, {&a, &b},
                       {{1.0, 0.1, 0.0}});
  util::Rng rng(23);
  std::vector<std::vector<double>> phases{
      std::vector<double>(4), std::vector<double>(4)};
  for (auto& panel_phases : phases) {
    for (double& p : panel_phases) p = rng.uniform(0, util::kTwoPi);
  }
  auto coeffs_of = [&](const std::vector<std::vector<double>>& ph) {
    std::vector<em::CVec> out(2);
    for (int p = 0; p < 2; ++p) {
      out[p].resize(4);
      for (int i = 0; i < 4; ++i) out[p][i] = em::expj(ph[p][i]);
    }
    return out;
  };
  em::Cx h;
  std::vector<em::CVec> dh_dc;
  channel.evaluate_with_partials(0, coeffs_of(phases), h, dh_dc);
  const double eps = 1e-7;
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < 4; ++i) {
      auto plus = phases;
      auto minus = phases;
      plus[p][i] += eps;
      minus[p][i] -= eps;
      const em::Cx fd = (channel.evaluate(0, coeffs_of(plus)) -
                         channel.evaluate(0, coeffs_of(minus))) /
                        (2.0 * eps);
      const em::Cx analytic =
          em::Cx{0.0, 1.0} * em::expj(phases[p][i]) * dh_dc[p][i];
      EXPECT_NEAR(std::abs(fd - analytic), 0.0,
                  1e-10 + 1e-4 * std::abs(analytic))
          << "panel " << p << " element " << i;
    }
  }
}

TEST(SceneChannel, RejectsBadInput) {
  const Environment env = empty_env();
  const surface::SurfacePanel panel = reflective_panel(2);
  EXPECT_THROW(SceneChannel(nullptr, kFreq, {{0, 0, 0}, nullptr}, {&panel},
                            {{1, 0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(
      SceneChannel(&env, kFreq, {{0, 0, 0}, nullptr}, {&panel}, {}),
      std::invalid_argument);
  SceneChannel channel(&env, kFreq, {{-1, 0, 0}, nullptr}, {&panel},
                       {{1, 0, 0}});
  const em::CVec wrong_size(3);
  EXPECT_THROW(channel.evaluate(0, {{wrong_size}}), std::invalid_argument);
}

// --- WidebandChannel ---------------------------------------------------------------

TEST(Wideband, SubcarrierGridSpansBandwidth) {
  const Environment env = empty_env();
  const surface::SurfacePanel panel = reflective_panel(4);
  const WidebandChannel wideband(&env, 28e9, 400e6, 9, {{-1, 0, 0}, nullptr},
                                 {&panel}, {{1, 0, 0}});
  EXPECT_EQ(wideband.subcarrier_count(), 9u);
  EXPECT_DOUBLE_EQ(wideband.subcarrier_hz(0), 28e9 - 200e6);
  EXPECT_DOUBLE_EQ(wideband.subcarrier_hz(8), 28e9 + 200e6);
  EXPECT_DOUBLE_EQ(wideband.subcarrier_hz(4), 28e9);
  EXPECT_THROW(WidebandChannel(&env, 28e9, -1.0, 4, {{-1, 0, 0}, nullptr},
                               {&panel}, {{1, 0, 0}}),
               std::invalid_argument);
}

TEST(Wideband, CenterSubcarrierMatchesNarrowbandChannel) {
  const Environment env = empty_env();
  const surface::SurfacePanel panel = reflective_panel(6);
  const geom::Vec3 tx{-1, 0.3, 0};
  const geom::Vec3 rx{1.4, -0.5, 0.2};
  const em::LinkBudget budget{10.0, 400e6, 7.0};
  const WidebandChannel wideband(&env, kFreq, 400e6, 9, {tx, nullptr},
                                 {&panel}, {rx});
  const SceneChannel narrow(&env, kFreq, {tx, nullptr}, {&panel}, {rx});
  const std::vector<surface::SurfaceConfig> configs{
      panel.focus_config(tx, rx, kFreq)};
  const auto snr = wideband.snr_per_subcarrier(0, configs, budget);
  const auto coeffs = narrow.coefficients_for(configs);
  EXPECT_NEAR(snr[4], budget.snr_db(std::norm(narrow.evaluate(0, coeffs))),
              1e-9);
}

TEST(Wideband, SquintGrowsWithBandwidthOnLargeApertures) {
  Environment env(em::MaterialDb::standard());
  env.add_vertical_wall(0.0, -3.0, 0.0, 3.0, 0.0, 1.0, em::kMatMetal);
  env.finalize();
  const geom::Vec3 tx{-2.5, -1.0, 0.0};
  const geom::Vec3 rx{2.5, -1.2, 0.0};
  const em::LinkBudget budget{10.0, 400e6, 7.0};
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(kFreq) / 2.0;
  d.insertion_loss_db = 0.0;
  const surface::SurfacePanel panel(
      "p", geom::Frame({0, 0, 2.5}, {0, 0, -1}, {1, 0, 0}), 32, 32, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  const std::vector<surface::SurfaceConfig> configs{
      panel.focus_config(tx, rx, kFreq)};
  const auto loss_at = [&](double bw) {
    const WidebandChannel wideband(&env, kFreq, bw, 9, {tx, nullptr}, {&panel},
                                   {rx});
    const auto snr = wideband.snr_per_subcarrier(0, configs, budget);
    return snr[4] - std::min(snr.front(), snr.back());
  };
  EXPECT_GT(loss_at(2000e6), loss_at(400e6) + 0.5);
}

// --- Heatmap ---------------------------------------------------------------------

TEST(Heatmap, StatsAndAccessors) {
  const geom::SampleGrid grid(0, 2, 0, 1, 1, 2, 1);
  Heatmap map{grid, {1.0, 3.0}};
  EXPECT_DOUBLE_EQ(map.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(map.max_value(), 3.0);
  EXPECT_DOUBLE_EQ(map.median_value(), 2.0);
  EXPECT_DOUBLE_EQ(map.at(1, 0), 3.0);
}

TEST(Heatmap, AsciiRenderDimensions) {
  const geom::SampleGrid grid(0, 3, 0, 2, 1, 3, 2);
  Heatmap map{grid, {0, 1, 2, 3, 4, 5}};
  const std::string art = render_ascii(map, 0.0, 5.0);
  // 2 rows of 3 chars + newlines.
  EXPECT_EQ(art.size(), 8u);
  EXPECT_THROW(render_ascii(map, 5.0, 0.0), std::invalid_argument);
}

TEST(Heatmap, RssMapMatchesManualEvaluation) {
  const Environment env = empty_env();
  const surface::SurfacePanel panel = reflective_panel(4);
  const geom::SampleGrid grid(-0.5, 0.5, -0.5, 0.5, 0.0, 2, 2);
  const em::LinkBudget budget{10.0, 400e6, 7.0};
  SceneChannel channel(&env, kFreq, {{-1, 0, 0}, nullptr}, {&panel},
                       grid.points());
  const surface::SurfaceConfig uniform(panel.element_count());
  const Heatmap map = rss_heatmap(channel, grid, budget, {{uniform}});
  const auto power = channel.power_map({{uniform}});
  for (std::size_t i = 0; i < power.size(); ++i) {
    EXPECT_NEAR(map.values[i], budget.rss_dbm(power[i]), 1e-12);
  }
}

// --- Floorplans --------------------------------------------------------------------

TEST(Floorplan, CoverageRoomGuarantees) {
  const CoverageRoomScenario s = make_coverage_room(6);
  ASSERT_TRUE(s.environment->finalized());
  // The AP sees the surface mount through the door gap.
  const double ap_to_surface = std::abs(s.environment->segment_transmission(
      s.ap_position, s.surface_pose.origin(), em::band_center(s.band)));
  EXPECT_GT(ap_to_surface, 0.5);
  // The surface mount sees every grid point unobstructed above furniture.
  std::size_t visible = 0;
  for (const auto& p : s.room_grid.points()) {
    if (std::abs(s.environment->segment_transmission(
            s.surface_pose.origin(), p, em::band_center(s.band))) > 0.5) {
      ++visible;
    }
  }
  EXPECT_GT(visible, s.room_grid.size() * 8 / 10);
  // Direct AP -> room-center path is heavily attenuated (concrete wall).
  const geom::Vec3 room_center = s.room_grid.point(s.room_grid.size() / 2);
  const double direct = std::abs(s.environment->segment_transmission(
      s.ap_position, geom::Vec3{0.8, room_center.y, 1.0},
      em::band_center(s.band)));
  EXPECT_LT(util::amplitude_to_db(std::max(direct, 1e-12)), -20.0);
}

TEST(Floorplan, ApartmentGuarantees) {
  const ApartmentScenario s = make_apartment(6);
  const double f = em::band_center(s.band);
  // AP -> surface window: line of sight (the window sits in the wall plane,
  // so the segment ends at, not through, the wall).
  EXPECT_GT(std::abs(s.environment->segment_transmission(
                s.ap_position, s.window_mount.origin(), f)),
            0.7);
  // Surface window -> bedroom steering mount: clear within the bedroom.
  EXPECT_GT(std::abs(s.environment->segment_transmission(
                s.window_mount.origin(), s.bedroom_mount.origin(), f)),
            0.7);
  // The window's front half-space is the bedroom; the AP is behind it
  // (transmissive geometry), and the steering mount faces the whole grid.
  EXPECT_LT((s.ap_position - s.window_mount.origin()).dot(
                s.window_mount.normal()),
            0.0);
  for (const auto& p : s.bedroom_grid.points()) {
    EXPECT_GT((p - s.window_mount.origin()).dot(s.window_mount.normal()), 0.0);
    EXPECT_GT((p - s.bedroom_mount.origin()).dot(s.bedroom_mount.normal()),
              0.0);
  }
}

TEST(Floorplan, ApartmentDirectCoverageIsNegligible) {
  const ApartmentScenario s = make_apartment(6);
  // "Without surfaces, there is basically no coverage in the target room."
  SceneChannel channel(s.environment.get(), em::band_center(s.band), s.ap(),
                       {}, s.bedroom_grid.points());
  std::vector<double> snr;
  for (std::size_t j = 0; j < channel.rx_count(); ++j) {
    snr.push_back(s.budget.snr_db(std::norm(channel.direct(j))));
  }
  std::sort(snr.begin(), snr.end());
  EXPECT_LT(snr[snr.size() / 2], 5.0);  // median below usable
}

}  // namespace
}  // namespace surfos::sim
