// Sensing substrate tests: Hermitian eigendecomposition, steering vectors,
// beamscan and MUSIC AoA estimation on synthetic plane waves, the
// cross-entropy localization loss (including its analytic gradient against
// finite differences), and AoA -> position error conversion.
#include <gtest/gtest.h>

#include <cmath>

#include "em/propagation.hpp"
#include "sense/aoa.hpp"
#include "sense/eigen.hpp"
#include "sense/localize.hpp"
#include "sense/steering.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace surfos::sense {
namespace {

constexpr double kFreq = 28e9;

surface::SurfacePanel make_aperture(std::size_t rows = 8, std::size_t cols = 8) {
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(kFreq) / 2.0;
  d.insertion_loss_db = 0.0;
  return surface::SurfacePanel(
      "aperture", geom::Frame({0, 0, 1.5}, {1, 0, 0}), rows, cols, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
}

/// Ideal plane-wave excitation from azimuth theta (matches steering).
em::CVec plane_wave(const surface::SurfacePanel& panel, double theta,
                    double amplitude = 1.0, double phase = 0.0) {
  em::CVec v = steering_vector(panel, theta, kFreq);
  for (auto& c : v) c *= std::polar(amplitude, phase);
  return v;
}

// --- eigen -----------------------------------------------------------------------

TEST(Eigen, DiagonalMatrix) {
  em::CMat m(3, 3);
  m(0, 0) = {3.0, 0.0};
  m(1, 1) = {1.0, 0.0};
  m(2, 2) = {2.0, 0.0};
  const EigenResult result = hermitian_eigen(m);
  ASSERT_EQ(result.values.size(), 3u);
  EXPECT_NEAR(result.values[0], 1.0, 1e-10);
  EXPECT_NEAR(result.values[1], 2.0, 1e-10);
  EXPECT_NEAR(result.values[2], 3.0, 1e-10);
}

TEST(Eigen, ReconstructsHermitianMatrix) {
  // Build A = V D V^H from random vectors, then verify eigen recovers it:
  // check A v_k = lambda_k v_k for every eigenpair returned.
  util::Rng rng(31);
  const std::size_t n = 6;
  em::CMat a(n, n);
  // Random Hermitian: B + B^H with B random.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const em::Cx brc{rng.uniform(-1, 1), rng.uniform(-1, 1)};
      a(r, c) += brc;
      a(c, r) += std::conj(brc);
    }
  }
  const EigenResult result = hermitian_eigen(a);
  for (std::size_t k = 0; k < n; ++k) {
    // ||A v - lambda v|| small.
    em::CVec v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = result.vectors(i, k);
    const em::CVec av = a.mul(v);
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err += std::norm(av[i] - result.values[k] * v[i]);
    }
    EXPECT_LT(std::sqrt(err), 1e-8) << "eigenpair " << k;
  }
}

TEST(Eigen, EigenvectorsAreOrthonormal) {
  util::Rng rng(37);
  const std::size_t n = 5;
  em::CMat a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r; c < n; ++c) {
      if (r == c) {
        a(r, c) = {rng.uniform(-1, 1), 0.0};
      } else {
        a(r, c) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
      }
    }
  }
  const EigenResult result = hermitian_eigen(a);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      em::Cx dot{};
      for (std::size_t k = 0; k < n; ++k) {
        dot += std::conj(result.vectors(k, i)) * result.vectors(k, j);
      }
      EXPECT_NEAR(std::abs(dot), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(Eigen, RejectsNonSquare) {
  EXPECT_THROW(hermitian_eigen(em::CMat(2, 3)), std::invalid_argument);
}

// --- steering ---------------------------------------------------------------------

TEST(Steering, GridEndpointsAndSize) {
  const auto grid = angle_grid(-1.0, 1.0, 21);
  ASSERT_EQ(grid.size(), 21u);
  EXPECT_DOUBLE_EQ(grid.front(), -1.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  EXPECT_THROW(angle_grid(1.0, -1.0, 5), std::invalid_argument);
  EXPECT_THROW(angle_grid(0.0, 1.0, 1), std::invalid_argument);
}

TEST(Steering, BoresightDirectionIsNormal) {
  const auto panel = make_aperture();
  const geom::Vec3 dir = azimuth_direction(panel, 0.0);
  EXPECT_NEAR((dir - panel.normal()).norm(), 0.0, 1e-12);
  EXPECT_NEAR(azimuth_direction(panel, 0.5).norm(), 1.0, 1e-12);
}

TEST(Steering, TrueAzimuthInverts) {
  const auto panel = make_aperture();
  for (const double theta : {-0.8, -0.2, 0.0, 0.4, 1.0}) {
    const geom::Vec3 p = panel.center() + azimuth_direction(panel, theta) * 3.0;
    EXPECT_NEAR(true_azimuth(panel, p), theta, 1e-9) << theta;
  }
}

TEST(Steering, SteeringVectorUnitModulus) {
  const auto panel = make_aperture(4, 4);
  const em::CVec a = steering_vector(panel, 0.3, kFreq);
  for (const auto& c : a) EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
}

TEST(Steering, MatrixRowsMatchVectors) {
  const auto panel = make_aperture(3, 3);
  const auto angles = angle_grid(-0.5, 0.5, 5);
  const em::CMat mat = steering_matrix(panel, angles, kFreq);
  for (std::size_t b = 0; b < angles.size(); ++b) {
    const em::CVec a = steering_vector(panel, angles[b], kFreq);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(std::abs(mat(b, i) - a[i]), 0.0, 1e-12);
    }
  }
}

// --- beamscan / MUSIC ---------------------------------------------------------------

TEST(Beamscan, PeaksAtTrueAngle) {
  const auto panel = make_aperture();
  const auto angles = angle_grid(-1.2, 1.2, 241);
  const em::CMat steering = steering_matrix(panel, angles, kFreq);
  for (const double truth : {-0.7, -0.15, 0.0, 0.33, 0.9}) {
    const auto spectrum = beamscan_spectrum(steering, plane_wave(panel, truth));
    const double peak = spectrum_peak(angles, spectrum);
    EXPECT_NEAR(peak, truth, 0.02) << "true angle " << truth;
  }
}

TEST(Beamscan, PeakValueIsNSquared) {
  const auto panel = make_aperture(4, 4);
  const auto angles = angle_grid(-0.001, 0.001, 3);
  const em::CMat steering = steering_matrix(panel, angles, kFreq);
  const auto spectrum = beamscan_spectrum(steering, plane_wave(panel, 0.0));
  // a^H a = N at the matched angle, so |.|^2 = N^2.
  EXPECT_NEAR(spectrum[1], 256.0, 1e-6);
}

TEST(SpectrumPeak, QuadraticRefinementBeatsGridResolution) {
  const auto panel = make_aperture();
  const auto coarse = angle_grid(-1.0, 1.0, 41);  // 50 mrad spacing
  const em::CMat steering = steering_matrix(panel, coarse, kFreq);
  const double truth = 0.123;
  const auto spectrum = beamscan_spectrum(steering, plane_wave(panel, truth));
  EXPECT_NEAR(spectrum_peak(coarse, spectrum), truth, 0.015);
}

TEST(Music, ResolvesSingleSource) {
  const auto panel = make_aperture(6, 6);
  const auto angles = angle_grid(-1.0, 1.0, 201);
  const em::CMat steering = steering_matrix(panel, angles, kFreq);
  // Snapshots: same source with varying complex amplitude + small noise.
  util::Rng rng(41);
  const double truth = -0.42;
  em::CMat snapshots(8, panel.element_count());
  for (std::size_t s = 0; s < 8; ++s) {
    const em::CVec v = plane_wave(panel, truth, 1.0, rng.uniform(0, 6.28));
    for (std::size_t i = 0; i < v.size(); ++i) {
      snapshots(s, i) = v[i] + em::Cx{0.01 * rng.normal(), 0.01 * rng.normal()};
    }
  }
  const auto spectrum = music_spectrum(steering, snapshots, 1);
  EXPECT_NEAR(spectrum_peak(angles, spectrum), truth, 0.02);
}

TEST(Music, RejectsBadSourceCount) {
  const auto panel = make_aperture(2, 2);
  const auto angles = angle_grid(-1.0, 1.0, 11);
  const em::CMat steering = steering_matrix(panel, angles, kFreq);
  const em::CMat snapshots(3, 4);
  EXPECT_THROW(music_spectrum(steering, snapshots, 0), std::invalid_argument);
  EXPECT_THROW(music_spectrum(steering, snapshots, 4), std::invalid_argument);
}

// --- spectra utilities ----------------------------------------------------------------

TEST(Spectrum, NormalizeSumsToOne) {
  const auto p = normalize_spectrum({1.0, 3.0, 0.0, 1.0});
  double sum = 0.0;
  for (const double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.6, 1e-12);
}

TEST(Spectrum, NormalizeDegenerateBecomesUniform) {
  const auto p = normalize_spectrum({0.0, 0.0});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

TEST(Spectrum, CrossEntropyMinimizedByMatchingDistribution) {
  const std::vector<double> q{0.1, 0.7, 0.2};
  const double matched = cross_entropy(q, q);
  const double mismatched = cross_entropy(q, {0.7, 0.1, 0.2});
  EXPECT_LT(matched, mismatched);
  EXPECT_THROW(cross_entropy(q, {0.5, 0.5}), std::invalid_argument);
}

// --- AoaSensingModel --------------------------------------------------------------------

TEST(AoaModel, EstimatesFromChannelVector) {
  const auto panel = make_aperture();
  const AoaSensingModel model(&panel, kFreq, 241);
  // Synthetic element channel from a true client position; uniform
  // coefficients should recover its azimuth.
  const geom::Vec3 client =
      panel.center() + azimuth_direction(panel, 0.5) * 2.5;
  em::CVec g(panel.element_count());
  const double k = em::wavenumber(kFreq);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const double d = panel.element_position(i).distance_to(client);
    g[i] = std::polar(1.0 / d, -k * d);
  }
  EXPECT_NEAR(model.estimate_azimuth(g), 0.5, 0.03);
}

TEST(AoaModel, TargetDistributionPeaksAtTruth) {
  const auto panel = make_aperture(4, 4);
  const AoaSensingModel model(&panel, kFreq, 121);
  const auto target = model.target_distribution(0.3);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < target.size(); ++i) {
    if (target[i] > target[argmax]) argmax = i;
  }
  EXPECT_NEAR(model.angles()[argmax], 0.3, 0.03);
  double sum = 0.0;
  for (const double p : target) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AoaModel, LossLowerForAlignedConfig) {
  const auto panel = make_aperture();
  const AoaSensingModel model(&panel, kFreq, 181);
  const double truth = -0.35;
  const em::CVec g = plane_wave(panel, truth);
  const auto target = model.target_distribution(truth);
  // Uniform coefficients keep the angle signature; a beam-steering config
  // toward a different direction destroys it.
  const em::CVec uniform(panel.element_count(), em::Cx{1.0, 0.0});
  em::CVec steered(panel.element_count());
  const em::CVec away = steering_vector(panel, 0.8, kFreq);
  const em::CVec toward = steering_vector(panel, truth, kFreq);
  for (std::size_t i = 0; i < steered.size(); ++i) {
    // Coefficients that re-phase the true wavefront into the 0.8 direction.
    steered[i] = away[i] * std::conj(toward[i]);
  }
  EXPECT_LT(model.loss(uniform, g, target), model.loss(steered, g, target));
}

TEST(AoaModel, GradientMatchesFiniteDifference) {
  const auto panel = make_aperture(3, 3);
  const AoaSensingModel model(&panel, kFreq, 61);
  util::Rng rng(51);
  const em::CVec g = plane_wave(panel, 0.2);
  const auto target = model.target_distribution(0.2);
  std::vector<double> phases(panel.element_count());
  for (double& p : phases) p = rng.uniform(0, util::kTwoPi);
  auto coeffs = [&](const std::vector<double>& ph) {
    em::CVec c(ph.size());
    for (std::size_t i = 0; i < ph.size(); ++i) c[i] = em::expj(ph[i]);
    return c;
  };
  std::vector<double> grad(panel.element_count());
  model.loss(coeffs(phases), g, target, grad);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    auto plus = phases;
    auto minus = phases;
    plus[i] += eps;
    minus[i] -= eps;
    const double fd = (model.loss(coeffs(plus), g, target) -
                       model.loss(coeffs(minus), g, target)) /
                      (2.0 * eps);
    EXPECT_NEAR(grad[i], fd, 1e-5 + 1e-4 * std::fabs(fd)) << "element " << i;
  }
}

TEST(AoaModel, RejectsSizeMismatches) {
  const auto panel = make_aperture(2, 2);
  const AoaSensingModel model(&panel, kFreq, 21);
  const em::CVec four(4, em::Cx{1.0, 0.0});
  const em::CVec three(3, em::Cx{1.0, 0.0});
  const auto target = model.target_distribution(0.0);
  EXPECT_THROW(model.loss(three, four, target), std::invalid_argument);
  EXPECT_THROW(model.loss(four, four, {0.5, 0.5}), std::invalid_argument);
}

// --- localization ------------------------------------------------------------------------

TEST(Localize, ZeroAngleErrorGivesZeroPositionError) {
  const auto panel = make_aperture();
  const geom::Vec3 client =
      panel.center() + azimuth_direction(panel, 0.4) * 3.0;
  const double truth = true_azimuth(panel, client);
  EXPECT_NEAR(localization_error(panel, client, truth), 0.0, 1e-9);
}

TEST(Localize, ErrorGrowsWithAngleErrorAndRange) {
  const auto panel = make_aperture();
  const geom::Vec3 near_client =
      panel.center() + azimuth_direction(panel, 0.0) * 1.0;
  const geom::Vec3 far_client =
      panel.center() + azimuth_direction(panel, 0.0) * 4.0;
  const double small = localization_error(panel, near_client, 0.1);
  const double large_angle = localization_error(panel, near_client, 0.3);
  const double large_range = localization_error(panel, far_client, 0.1);
  EXPECT_GT(large_angle, small);
  EXPECT_GT(large_range, small);
  // Small-angle approximation: error ~ range * |dtheta|.
  EXPECT_NEAR(small, 1.0 * 0.1, 0.02);
  EXPECT_NEAR(large_range, 4.0 * 0.1, 0.05);
}

}  // namespace
}  // namespace surfos::sense
