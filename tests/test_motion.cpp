// Motion-detection tests: decorrelation math, calibration/debounce
// behaviour, and an end-to-end detection of a person walking through the
// dynamic environment's channel.
#include <gtest/gtest.h>

#include "em/propagation.hpp"
#include "sense/motion.hpp"
#include "sim/channel.hpp"
#include "sim/dynamics.hpp"
#include "util/rng.hpp"

namespace surfos::sense {
namespace {

em::CVec noisy(const em::CVec& base, double sigma, util::Rng& rng) {
  em::CVec out = base;
  for (auto& c : out) {
    c += em::Cx{sigma * rng.normal(), sigma * rng.normal()};
  }
  return out;
}

TEST(Decorrelation, ZeroForIdenticalAndScaled) {
  const em::CVec a{{1, 0}, {0, 1}, {0.5, -0.5}};
  EXPECT_NEAR(channel_decorrelation(a, a), 0.0, 1e-12);
  // A global complex scale (AGC / phase drift) is not motion.
  em::CVec scaled = a;
  for (auto& c : scaled) c *= em::Cx{0.3, 0.4};
  EXPECT_NEAR(channel_decorrelation(a, scaled), 0.0, 1e-12);
}

TEST(Decorrelation, LargeForOrthogonalSnapshots) {
  const em::CVec a{{1, 0}, {0, 0}};
  const em::CVec b{{0, 0}, {1, 0}};
  EXPECT_NEAR(channel_decorrelation(a, b), 1.0, 1e-12);
  EXPECT_THROW(channel_decorrelation(a, em::CVec(3)), std::invalid_argument);
}

TEST(Decorrelation, DegenerateSnapshotsScoreZero) {
  const em::CVec zero(4, em::Cx{});
  const em::CVec a(4, em::Cx{1.0, 0.0});
  EXPECT_DOUBLE_EQ(channel_decorrelation(zero, a), 0.0);
}

TEST(MotionDetector, QuietChannelNeverTriggers) {
  util::Rng rng(3);
  MotionDetector detector;
  const em::CVec base(16, em::Cx{1.0, 0.5});
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(detector.update(noisy(base, 1e-4, rng))) << "frame " << i;
  }
  EXPECT_TRUE(detector.calibrated());
}

TEST(MotionDetector, PerturbationTriggersAfterCalibration) {
  util::Rng rng(5);
  MotionDetector detector;
  const em::CVec base(16, em::Cx{1.0, 0.5});
  for (int i = 0; i < 10; ++i) detector.update(noisy(base, 1e-4, rng));
  ASSERT_TRUE(detector.calibrated());
  // A strong perturbation (body crossing paths) decorrelates the channel.
  EXPECT_TRUE(detector.update(noisy(base, 0.4, rng)));
  EXPECT_GT(detector.last_score(), detector.baseline() * 5.0);
}

TEST(MotionDetector, CalibrationFramesNeverTrigger) {
  util::Rng rng(7);
  MotionDetectorOptions options;
  options.calibration_frames = 8;
  MotionDetector detector(options);
  const em::CVec base(8, em::Cx{1.0, 0.0});
  // Even violent changes during calibration must not trigger.
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(detector.update(noisy(base, 0.5, rng)));
  }
}

TEST(MotionDetector, DebounceRequiresConsecutiveFrames) {
  util::Rng rng(9);
  MotionDetectorOptions options;
  options.debounce_frames = 3;
  MotionDetector detector(options);
  const em::CVec base(8, em::Cx{1.0, 0.0});
  for (int i = 0; i < 10; ++i) detector.update(noisy(base, 1e-5, rng));
  EXPECT_FALSE(detector.update(noisy(base, 0.5, rng)));  // hit 1
  EXPECT_FALSE(detector.update(noisy(base, 0.5, rng)));  // hit 2
  EXPECT_TRUE(detector.update(noisy(base, 0.5, rng)));   // hit 3: declared
  // Settling back to the quiet channel: the first quiet frame still differs
  // from the last perturbed one, but the second quiet frame clears it.
  detector.update(base);
  EXPECT_FALSE(detector.update(base));
}

TEST(MotionDetector, ResetClearsState) {
  util::Rng rng(11);
  MotionDetector detector;
  const em::CVec base(8, em::Cx{1.0, 0.0});
  for (int i = 0; i < 10; ++i) detector.update(noisy(base, 1e-4, rng));
  EXPECT_TRUE(detector.calibrated());
  detector.reset();
  EXPECT_FALSE(detector.calibrated());
  EXPECT_FALSE(detector.update(noisy(base, 0.5, rng)));  // first frame again
}

TEST(MotionDetector, DetectsWalkerInSimulatedChannel) {
  // End to end: the channel snapshot across a line of probe points (the
  // spatial diversity a sensing deployment observes) stays static until a
  // person crosses the room, then decorrelates as their shadow sweeps
  // across the probes.
  em::MaterialDb materials = em::MaterialDb::standard();
  const int body = sim::add_body_material(materials);
  sim::DynamicEnvironment world(materials, [](sim::Environment& env) {
    env.add_horizontal_slab(-5, 5, -5, 5, 0.0, em::kMatFloor);
  });
  sim::MovingBlocker walker;
  walker.id = "walker";
  // Starts far away (no channel impact), then crosses between panel and
  // probe around t ~ 8 s.
  walker.waypoints = {{0.0, -4.5, 0}, {0.0, 0.8, 0}};
  walker.speed_mps = 0.5;
  walker.material_id = body;
  world.add_blocker(walker);

  const double freq = em::band_center(em::Band::k28GHz);
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(freq) / 2.0;
  const surface::SurfacePanel panel(
      "aperture", geom::Frame({0, 2.0, 1.6}, {0, -1, 0}), 8, 8, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  const sim::TxSpec ap{{-2.0, -1.0, 1.6}, nullptr};
  // A line of probe points across the walker's path: their channels are
  // shadowed at different times, changing the snapshot's *pattern*.
  std::vector<geom::Vec3> probes;
  for (int i = 0; i < 8; ++i) {
    probes.push_back({-1.4 + 0.4 * i, 0.2, 1.0});
  }
  const surface::SurfaceConfig uniform(panel.element_count());

  MotionDetector detector;
  bool detected = false;
  int detect_frame = -1;
  for (int frame = 0; frame <= 24; ++frame) {
    world.advance_to(static_cast<hal::Micros>(frame) *
                     hal::kMicrosPerSecond / 2);  // 0.5 s frames
    const sim::SceneChannel channel(&world.environment(), freq, ap, {&panel},
                                    probes);
    const auto coeffs = channel.coefficients_for(
        std::vector<surface::SurfaceConfig>{uniform});
    em::CVec snapshot(probes.size());
    for (std::size_t j = 0; j < probes.size(); ++j) {
      snapshot[j] = channel.evaluate(j, coeffs);
    }
    if (detector.update(snapshot) && !detected) {
      detected = true;
      detect_frame = frame;
    }
  }
  EXPECT_TRUE(detected);
  // Detection happens once the walker nears the panel-probe sight lines,
  // not during the calibration frames.
  EXPECT_GT(detect_frame, 5);
}

}  // namespace
}  // namespace surfos::sense
