// Reliable control-channel tests: in-order exactly-once delivery over
// perfect, lossy, corrupting, and reordering-free links; retransmission
// behaviour; and the drop-in reliable driver against a hostile link.
#include <gtest/gtest.h>

#include "hal/reliable.hpp"

namespace surfos::hal {
namespace {

Frame make_frame(std::uint16_t slot, std::uint8_t tag) {
  Frame frame;
  frame.type = MessageType::kSelectConfig;
  frame.slot = slot;
  frame.payload = {tag};
  return frame;
}

struct Collector {
  std::vector<std::uint16_t> slots;
  ReliableLink::DeliverFn fn() {
    return [this](const Frame& frame) { slots.push_back(frame.slot); };
  }
};

TEST(ReliableLink, DeliversInOrderOnCleanLink) {
  SimClock clock;
  ReliableOptions options;
  options.forward.latency_us = 100;
  ReliableLink link(&clock, options);
  Collector collector;
  link.set_receiver(collector.fn());
  for (std::uint16_t i = 0; i < 5; ++i) link.send(make_frame(i, 0));
  clock.advance(101);
  link.poll();
  ASSERT_EQ(collector.slots.size(), 5u);
  for (std::uint16_t i = 0; i < 5; ++i) EXPECT_EQ(collector.slots[i], i);
  EXPECT_EQ(link.retransmission_count(), 0u);
  // Acks complete the loop once the reverse latency elapses.
  clock.advance(101);
  link.poll();
  EXPECT_EQ(link.unacked_count(), 0u);
}

TEST(ReliableLink, RecoversFromHeavyLoss) {
  SimClock clock;
  ReliableOptions options;
  options.forward.latency_us = 100;
  options.forward.loss_probability = 0.5;
  options.forward.seed = 11;
  options.reverse.loss_probability = 0.3;
  options.rto_us = 500;
  ReliableLink link(&clock, options);
  Collector collector;
  link.set_receiver(collector.fn());
  for (std::uint16_t i = 0; i < 20; ++i) link.send(make_frame(i, 0));
  // Drive the clock until everything lands (bounded loop).
  for (int tick = 0; tick < 200 && collector.slots.size() < 20; ++tick) {
    clock.advance(250);
    link.poll();
  }
  ASSERT_EQ(collector.slots.size(), 20u);
  for (std::uint16_t i = 0; i < 20; ++i) EXPECT_EQ(collector.slots[i], i);
  EXPECT_GT(link.retransmission_count(), 0u);
  EXPECT_EQ(link.abandoned_count(), 0u);
}

TEST(ReliableLink, RecoversFromCorruption) {
  SimClock clock;
  ReliableOptions options;
  options.forward.latency_us = 100;
  options.forward.corrupt_probability = 0.4;
  options.forward.seed = 5;
  options.rto_us = 400;
  ReliableLink link(&clock, options);
  Collector collector;
  link.set_receiver(collector.fn());
  for (std::uint16_t i = 0; i < 10; ++i) link.send(make_frame(i, 0));
  for (int tick = 0; tick < 200 && collector.slots.size() < 10; ++tick) {
    clock.advance(200);
    link.poll();
  }
  ASSERT_EQ(collector.slots.size(), 10u);
}

TEST(ReliableLink, NoDuplicateDeliveryDespiteRetransmits) {
  SimClock clock;
  ReliableOptions options;
  options.forward.latency_us = 100;
  options.reverse.loss_probability = 1.0;  // acks never arrive
  options.rto_us = 300;
  options.max_retransmissions = 3;
  ReliableLink link(&clock, options);
  Collector collector;
  link.set_receiver(collector.fn());
  link.send(make_frame(7, 0));
  for (int tick = 0; tick < 20; ++tick) {
    clock.advance(300);
    link.poll();
  }
  // The frame was retransmitted repeatedly but delivered exactly once.
  ASSERT_EQ(collector.slots.size(), 1u);
  EXPECT_EQ(collector.slots[0], 7);
  EXPECT_GT(link.duplicate_count(), 0u);
  // Sender eventually gives up on the unackable frame.
  EXPECT_EQ(link.abandoned_count(), 1u);
  EXPECT_EQ(link.unacked_count(), 0u);
}

TEST(ReliableLink, AbandonsAfterMaxRetries) {
  SimClock clock;
  ReliableOptions options;
  options.forward.loss_probability = 1.0;  // black hole
  options.rto_us = 100;
  options.max_retransmissions = 4;
  ReliableLink link(&clock, options);
  link.send(make_frame(1, 0));
  for (int tick = 0; tick < 20; ++tick) {
    clock.advance(100);
    link.poll();
  }
  EXPECT_EQ(link.delivered_count(), 0u);
  EXPECT_EQ(link.abandoned_count(), 1u);
  EXPECT_LE(link.retransmission_count(), 4u);
}

// --- ReliableSurfaceDriver ----------------------------------------------------

surface::SurfacePanel reliable_test_panel() {
  surface::ElementDesign d;
  d.spacing_m = 0.005;
  return surface::SurfacePanel("panel", geom::Frame({0, 0, 0}, {0, 0, 1}), 4,
                               4, d, surface::OperationMode::kReflective,
                               surface::Reconfigurability::kProgrammable,
                               surface::ControlGranularity::kElement);
}

TEST(ReliableDriver, ConfigSurvivesLossyControlPath) {
  SimClock clock;
  const auto panel = reliable_test_panel();
  HardwareSpec spec;
  spec.control_delay_us = 200;
  spec.config_slots = 4;
  ReliableOptions options;
  options.forward.loss_probability = 0.6;
  options.forward.seed = 21;
  options.rto_us = 600;
  ReliableSurfaceDriver driver("s0", &panel, spec, &clock, options);

  surface::SurfaceConfig config(panel.element_count());
  config.set_phase(3, 1.5);
  EXPECT_EQ(driver.write_config(2, config), DriverStatus::kOk);
  EXPECT_EQ(driver.select_config(2), DriverStatus::kOk);
  for (int tick = 0; tick < 100 && driver.active_slot() != 2; ++tick) {
    clock.advance(300);
    driver.poll();
  }
  EXPECT_EQ(driver.active_slot(), 2);
  EXPECT_NEAR(driver.active_config().phase(3), 1.5, 1e-3);
  EXPECT_GT(driver.link().retransmission_count(), 0u);
}

TEST(ReliableDriver, WriteThenSelectStayOrdered) {
  // Even under loss, select_config never activates a slot before the
  // write_config that precedes it in program order (cumulative in-order
  // delivery guarantees this).
  SimClock clock;
  const auto panel = reliable_test_panel();
  HardwareSpec spec;
  spec.control_delay_us = 100;
  spec.config_slots = 2;
  ReliableOptions options;
  options.forward.loss_probability = 0.5;
  options.forward.seed = 33;
  options.rto_us = 400;
  ReliableSurfaceDriver driver("s0", &panel, spec, &clock, options);

  surface::SurfaceConfig config(panel.element_count());
  config.set_phase(0, 2.0);
  driver.write_config(1, config);
  driver.select_config(1);
  bool saw_inconsistent_state = false;
  for (int tick = 0; tick < 100; ++tick) {
    clock.advance(200);
    driver.poll();
    if (driver.active_slot() == 1 &&
        std::fabs(driver.active_config().phase(0) - 2.0) > 1e-3) {
      saw_inconsistent_state = true;
    }
    if (driver.active_slot() == 1) break;
  }
  EXPECT_EQ(driver.active_slot(), 1);
  EXPECT_FALSE(saw_inconsistent_state);
}

TEST(ReliableDriver, RejectsBadSlotAndConfigLocally) {
  SimClock clock;
  const auto panel = reliable_test_panel();
  HardwareSpec spec;
  spec.config_slots = 2;
  ReliableSurfaceDriver driver("s0", &panel, spec, &clock);
  EXPECT_EQ(driver.write_config(9, surface::SurfaceConfig(16)),
            DriverStatus::kBadSlot);
  EXPECT_EQ(driver.write_config(0, surface::SurfaceConfig(2)),
            DriverStatus::kBadConfig);
  EXPECT_EQ(driver.select_config(9), DriverStatus::kBadSlot);
}

}  // namespace
}  // namespace surfos::hal
