// Fleet-scale admission control: priority ordering, weighted-fair drain
// under saturation, per-app token budgets, bounded-queue shedding that only
// ever drops the lowest-priority work, determinism across thread counts,
// and the ServiceBroker submit/pump integration.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "broker/admission.hpp"
#include "broker/broker.hpp"
#include "core/surfos.hpp"
#include "sim/floorplan.hpp"
#include "surface/catalog.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace surfos::broker {
namespace {

AdmissionRequest request(std::string app_id, orch::Priority priority) {
  AdmissionRequest r;
  r.app_id = std::move(app_id);
  r.demand = demand_profile(AppClass::kFileTransfer, "ep");
  r.priority = priority;
  return r;
}

std::vector<std::string> drain(AdmissionQueue& queue, std::size_t max) {
  std::vector<std::string> admitted;
  queue.pump(max, [&](const AdmissionRequest& r) {
    admitted.push_back(r.app_id);
  });
  return admitted;
}

TEST(AdmissionQueue, DemandPriorityMapsClassesToTiers) {
  EXPECT_EQ(demand_priority(demand_profile(AppClass::kSensitiveData, "e")),
            orch::kPriorityCritical);
  EXPECT_EQ(demand_priority(demand_profile(AppClass::kVrGaming, "e")),
            orch::kPriorityInteractive);
  EXPECT_EQ(demand_priority(demand_profile(AppClass::kFileTransfer, "e")),
            orch::kPriorityNormal);
  EXPECT_EQ(demand_priority(demand_profile(AppClass::kWirelessCharging, "e")),
            orch::kPriorityBackground);
}

TEST(AdmissionQueue, HigherPriorityClassesAdmitFirst) {
  AdmissionQueue queue;
  queue.submit(request("bg", orch::kPriorityBackground));
  queue.submit(request("norm", orch::kPriorityNormal));
  queue.submit(request("crit", orch::kPriorityCritical));
  queue.submit(request("inter", orch::kPriorityInteractive));
  const auto admitted = drain(queue, 100);
  const std::vector<std::string> expected{"crit", "inter", "norm", "bg"};
  EXPECT_EQ(admitted, expected);
  EXPECT_TRUE(queue.empty());
}

TEST(AdmissionQueue, WeightedFairShareUnderSaturation) {
  AdmissionQueue queue;
  // 20 distinct apps per class so token budgets never bind.
  for (int i = 0; i < 20; ++i) {
    const std::string n = std::to_string(i);
    queue.submit(request("c" + n, orch::kPriorityCritical));
    queue.submit(request("i" + n, orch::kPriorityInteractive));
    queue.submit(request("n" + n, orch::kPriorityNormal));
    queue.submit(request("b" + n, orch::kPriorityBackground));
  }
  // One DRR round admits weight(class) each: 4 + 3 + 2 + 1 = 10.
  const auto admitted = drain(queue, 10);
  std::size_t crit = 0, inter = 0, norm = 0, bg = 0;
  for (const std::string& app : admitted) {
    if (app[0] == 'c') ++crit;
    if (app[0] == 'i') ++inter;
    if (app[0] == 'n') ++norm;
    if (app[0] == 'b') ++bg;
  }
  EXPECT_EQ(crit, 4u);
  EXPECT_EQ(inter, 3u);
  EXPECT_EQ(norm, 2u);
  EXPECT_EQ(bg, 1u);  // background still progresses: no starvation
}

TEST(AdmissionQueue, TokenBudgetDefersAGreedyAppWithinOnePump) {
  AdmissionOptions options;
  options.tokens_per_app = 2;
  AdmissionQueue queue(options);
  for (int i = 0; i < 5; ++i) {
    queue.submit(request("greedy", orch::kPriorityNormal));
  }
  queue.submit(request("other", orch::kPriorityNormal));

  const auto first = drain(queue, 100);
  // Greedy is capped at its 2 tokens; "other" is not crowded out; the
  // rest stays queued (deferred, not shed) for the next epoch.
  const std::vector<std::string> expected{"greedy", "greedy", "other"};
  EXPECT_EQ(first, expected);
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_GT(queue.stats().deferred, 0u);
  EXPECT_EQ(queue.stats().shed, 0u);

  // Fresh epoch, fresh tokens: the deferred demands drain FIFO.
  const auto second = drain(queue, 100);
  EXPECT_EQ(second, (std::vector<std::string>{"greedy", "greedy"}));
  const auto third = drain(queue, 100);
  EXPECT_EQ(third, (std::vector<std::string>{"greedy"}));
  EXPECT_TRUE(queue.empty());
}

TEST(AdmissionQueue, FullQueueShedsOnlyLowestPriorityWork) {
  AdmissionOptions options;
  options.capacity = 4;
  AdmissionQueue queue(options);
  ASSERT_TRUE(queue.submit(request("bg0", orch::kPriorityBackground)));
  ASSERT_TRUE(queue.submit(request("bg1", orch::kPriorityBackground)));
  ASSERT_TRUE(queue.submit(request("n0", orch::kPriorityNormal)));
  ASSERT_TRUE(queue.submit(request("n1", orch::kPriorityNormal)));

  // Higher-priority arrival evicts the *newest background* entry.
  EXPECT_TRUE(queue.submit(request("crit", orch::kPriorityCritical)));
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.stats().shed_by_class.at(orch::kPriorityBackground), 1u);

  // An arrival at (or below) the lowest present class is refused instead.
  EXPECT_FALSE(queue.submit(request("bg2", orch::kPriorityBackground)));
  EXPECT_EQ(queue.stats().shed_by_class.at(orch::kPriorityBackground), 2u);

  const auto admitted = drain(queue, 100);
  const std::vector<std::string> expected{"crit", "n0", "n1", "bg0"};
  EXPECT_EQ(admitted, expected);  // bg1 (newest background) was the victim
}

TEST(AdmissionQueue, AdmissionAndShedIdenticalAcrossThreadCounts) {
  // The queue is pure sequential state; pin that no pool configuration can
  // leak into admission order or shed decisions.
  const auto run = [] {
    AdmissionOptions options;
    options.capacity = 16;
    options.tokens_per_app = 2;
    AdmissionQueue queue(options);
    util::Rng rng(1234);
    std::ostringstream log;
    for (int i = 0; i < 200; ++i) {
      const auto priority =
          static_cast<orch::Priority>(10 * rng.below(4));
      const std::string app = "app" + std::to_string(rng.below(12));
      log << (queue.submit(request(app, priority)) ? '+' : '-');
      if (i % 7 == 0) {
        queue.pump(3, [&](const AdmissionRequest& r) {
          log << '[' << r.app_id << '@' << r.priority << ']';
        });
      }
    }
    queue.pump(1000, [&](const AdmissionRequest& r) {
      log << '[' << r.app_id << '@' << r.priority << ']';
    });
    log << "|shed=" << queue.stats().shed
        << "|admitted=" << queue.stats().admitted
        << "|deferred=" << queue.stats().deferred;
    return log.str();
  };
  util::reset_global_pool(1);
  const std::string serial = run();
  util::reset_global_pool(4);
  const std::string threaded = run();
  util::reset_global_pool(0);
  EXPECT_EQ(serial, threaded);
}

// --- broker integration ----------------------------------------------------------

class BrokerAdmissionTest : public ::testing::Test {
 protected:
  BrokerAdmissionTest() : scenario_(sim::make_coverage_room(/*grid_n=*/4)) {
    os_ = std::make_unique<SurfOS>(scenario_.environment.get(), scenario_.ap(),
                                   scenario_.band, scenario_.budget);
    const surface::Catalog catalog = surface::Catalog::standard();
    os_->install_programmable(*catalog.find("NR-Surface"),
                              scenario_.surface_pose, 8, 8, "wall");
    os_->register_endpoint("phone", hal::EndpointKind::kClient,
                           {1.0, 2.0, 1.0});
    os_->register_endpoint("laptop", hal::EndpointKind::kClient,
                           {1.2, 2.4, 1.0});
  }

  sim::CoverageRoomScenario scenario_;
  std::unique_ptr<SurfOS> os_;
};

TEST_F(BrokerAdmissionTest, SubmitThenPumpStartsSessionsWithTraceIds) {
  ServiceBroker& broker = os_->broker();
  EXPECT_TRUE(broker
                  .submit_demand("xfer", demand_profile(
                                             AppClass::kFileTransfer, "laptop"))
                  .ok());
  EXPECT_TRUE(broker
                  .submit_demand("charge",
                                 demand_profile(AppClass::kWirelessCharging,
                                                "phone"))
                  .ok());
  EXPECT_EQ(broker.admission().depth(), 2u);

  EXPECT_EQ(broker.pump_admissions(), 2u);
  EXPECT_TRUE(broker.admission().empty());
  ASSERT_EQ(broker.sessions().size(), 2u);
  for (const auto& [app_id, session] : broker.sessions()) {
    EXPECT_TRUE(session.running);
    EXPECT_NE(session.trace_id, 0u) << app_id;
    EXPECT_FALSE(session.tasks.empty()) << app_id;
  }
}

TEST_F(BrokerAdmissionTest, PumpDropsDuplicateRunningAppWithoutFailing) {
  ServiceBroker& broker = os_->broker();
  ASSERT_TRUE(broker
                  .start_app("xfer",
                             demand_profile(AppClass::kFileTransfer, "laptop"))
                  .ok());
  ASSERT_TRUE(broker
                  .submit_demand("xfer", demand_profile(
                                             AppClass::kFileTransfer, "laptop"))
                  .ok());
  EXPECT_EQ(broker.pump_admissions(), 0u);
  EXPECT_EQ(broker.sessions().size(), 1u);
}

TEST_F(BrokerAdmissionTest, StartAppCollisionNamesTheCollidingTasks) {
  ServiceBroker& broker = os_->broker();
  ASSERT_TRUE(broker
                  .start_app("xfer",
                             demand_profile(AppClass::kFileTransfer, "laptop"))
                  .ok());
  const auto& session = broker.sessions().at("xfer");
  ASSERT_FALSE(session.tasks.empty());
  const auto collision = broker.start_app(
      "xfer", demand_profile(AppClass::kFileTransfer, "laptop"));
  ASSERT_FALSE(collision.ok());
  EXPECT_EQ(collision.code(), ErrorCode::kAlreadyExists);
  const std::string& what = collision.error().message;
  EXPECT_NE(what.find("xfer"), std::string::npos) << what;
  for (const orch::TaskId id : session.tasks) {
    EXPECT_NE(what.find(std::to_string(id)), std::string::npos) << what;
  }
}

TEST_F(BrokerAdmissionTest, StopAndResumeReportNotFoundOnUnknownApps) {
  ServiceBroker& broker = os_->broker();
  EXPECT_EQ(broker.stop_app("ghost").code(), ErrorCode::kNotFound);
  EXPECT_EQ(broker.resume_app("ghost").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(broker
                  .start_app("xfer",
                             demand_profile(AppClass::kFileTransfer, "laptop"))
                  .ok());
  EXPECT_TRUE(broker.stop_app("xfer").ok());
  EXPECT_FALSE(broker.sessions().at("xfer").running);
  EXPECT_TRUE(broker.resume_app("xfer").ok());
  EXPECT_TRUE(broker.sessions().at("xfer").running);
}

TEST_F(BrokerAdmissionTest, ResultCodesCoverTheRetiredThrowingContract) {
  // The deprecated *_or_throw shims are gone (they lasted the promised one
  // release); every case they bridged maps to a Result code.
  ServiceBroker& broker = os_->broker();
  EXPECT_EQ(broker.stop_app("ghost").code(), ErrorCode::kNotFound);
  EXPECT_EQ(broker.resume_app("ghost").code(), ErrorCode::kNotFound);
  EXPECT_TRUE(
      broker.start_app("xfer", demand_profile(AppClass::kFileTransfer, "laptop"))
          .ok());
  EXPECT_EQ(broker
                .start_app("xfer",
                           demand_profile(AppClass::kFileTransfer, "laptop"))
                .code(),
            ErrorCode::kAlreadyExists);
}

}  // namespace
}  // namespace surfos::broker
