// Content-addressed precompute store: digest stability, cross-channel
// artifact sharing, LRU eviction with refcount pinning, the
// SURFOS_PRECOMPUTE=0 ablation (byte-identical values and StepReports), and
// delta precompute (add / remove / re-add) against a fresh dense build.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/surfos.hpp"
#include "em/soa.hpp"
#include "proto/serialize.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"
#include "sim/precompute_store.hpp"
#include "surface/catalog.hpp"
#include "surface/panel.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace surfos {
namespace {

/// One coverage-room scene plus a panel; builds channels over any RX list.
struct Scene {
  sim::CoverageRoomScenario scenario;
  std::unique_ptr<surface::SurfacePanel> panel;
  std::vector<const surface::SurfacePanel*> panels;

  explicit Scene(std::size_t grid_n = 4)
      : scenario(sim::make_coverage_room(grid_n)) {
    surface::ElementDesign design;
    design.spacing_m = em::wavelength(em::band_center(scenario.band)) / 2.0;
    design.insertion_loss_db = 1.0;
    panel = std::make_unique<surface::SurfacePanel>(
        "test-surface", scenario.surface_pose, 8, 8, design,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kElement);
    panels = {panel.get()};
  }

  std::unique_ptr<sim::SceneChannel> make_channel(
      std::vector<geom::Vec3> rx_points, double freq_offset_hz = 0.0) const {
    return std::make_unique<sim::SceneChannel>(
        scenario.environment.get(),
        em::band_center(scenario.band) + freq_offset_hz, scenario.ap(),
        panels, std::move(rx_points));
  }
};

bool planes_equal(const em::CxPlanes& a, const em::CxPlanes& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.at(i) != b.at(i)) return false;
  }
  return true;
}

/// Bitwise (not approximate) artifact equality — the store's contract.
bool channels_identical(const sim::SceneChannel& a,
                        const sim::SceneChannel& b) {
  if (a.panel_count() != b.panel_count() || a.rx_count() != b.rx_count()) {
    return false;
  }
  for (std::size_t p = 0; p < a.panel_count(); ++p) {
    if (!planes_equal(a.tx_planes(p), b.tx_planes(p))) return false;
    for (std::size_t j = 0; j < a.rx_count(); ++j) {
      if (!planes_equal(a.rx_planes(p, j), b.rx_planes(p, j))) return false;
    }
    for (std::size_t q = 0; q < a.panel_count(); ++q) {
      const em::CxPlaneMat& ma = a.cascade_planes(q, p);
      const em::CxPlaneMat& mb = b.cascade_planes(q, p);
      if (ma.rows() != mb.rows() || ma.cols() != mb.cols()) return false;
      for (std::size_t r = 0; r < ma.rows(); ++r) {
        for (std::size_t c = 0; c < ma.cols(); ++c) {
          if (ma.at(r, c) != mb.at(r, c)) return false;
        }
      }
    }
  }
  for (std::size_t j = 0; j < a.rx_count(); ++j) {
    if (a.direct(j) != b.direct(j)) return false;
  }
  return true;
}

/// Every test starts from a cold, enabled store with the default budget and
/// leaves global state that way (the store is process-wide).
class PrecomputeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::set_precompute_enabled(true);
    sim::clear_precompute_cache_override();
    sim::PrecomputeStore::instance().clear();
  }
  void TearDown() override {
    sim::set_precompute_enabled(true);
    sim::clear_precompute_cache_override();
    sim::PrecomputeStore::instance().clear();
    telemetry::set_enabled(true);
  }
};

TEST_F(PrecomputeTest, DigestStableAcrossBuildsAndSensitiveToScene) {
  const Scene scene;
  const auto grid = scene.scenario.room_grid.points();
  const auto a = scene.make_channel(grid);
  const auto b = scene.make_channel(grid);
  // The digest is structural: two builds over one scene agree, and the RX
  // list does not participate (rows are addressed separately).
  EXPECT_EQ(a->scene_digest(), b->scene_digest());
  const auto fewer_rx = scene.make_channel({grid.front(), grid.back()});
  EXPECT_EQ(a->scene_digest(), fewer_rx->scene_digest());

  // Any physical input shifts it: frequency here; geometry/materials/panel
  // layout are covered by the same digest fields.
  const auto detuned = scene.make_channel(grid, /*freq_offset_hz=*/1.0e6);
  EXPECT_NE(a->scene_digest(), detuned->scene_digest());
}

TEST_F(PrecomputeTest, ArtifactsSharedByPointerAcrossChannels) {
  const Scene scene;
  const auto grid = scene.scenario.room_grid.points();

  const auto first = scene.make_channel(grid);
  const sim::PrecomputeStore::Stats cold =
      sim::PrecomputeStore::instance().stats();
  // Cold build: one scene miss plus one miss per RX row, no hits.
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, 1u + grid.size());
  EXPECT_EQ(cold.entries, 1u + grid.size());

  const auto second = scene.make_channel(grid);
  const sim::PrecomputeStore::Stats warm =
      sim::PrecomputeStore::instance().stats();
  EXPECT_EQ(warm.hits, 1u + grid.size());
  EXPECT_EQ(warm.misses, cold.misses);

  // Sharing is by reference, not by copy: the second channel's artifacts
  // are the first channel's artifacts.
  EXPECT_EQ(&first->tx_planes(0), &second->tx_planes(0));
  for (std::size_t j = 0; j < grid.size(); ++j) {
    EXPECT_EQ(&first->rx_planes(0, j), &second->rx_planes(0, j));
  }
}

TEST_F(PrecomputeTest, LruEvictionRespectsByteBudgetAndPinning) {
  const Scene scene;
  const auto grid = scene.scenario.room_grid.points();

  // A budget below any artifact size: only pinned entries may stay.
  sim::set_precompute_cache_bytes(1);

  auto live = scene.make_channel(grid);
  const sim::PrecomputeStore::Stats pinned =
      sim::PrecomputeStore::instance().stats();
  // Every artifact is over budget but referenced by `live`, so nothing was
  // evicted out from under it.
  EXPECT_EQ(pinned.evictions, 0u);
  EXPECT_EQ(pinned.entries, 1u + grid.size());

  // Unpin and insert fresh artifacts: now the old ones must go.
  live.reset();
  const auto detuned = scene.make_channel(grid, /*freq_offset_hz=*/1.0e6);
  const sim::PrecomputeStore::Stats after =
      sim::PrecomputeStore::instance().stats();
  EXPECT_GE(after.evictions, 1u + grid.size());
  // The new channel's own (pinned) artifacts survive.
  EXPECT_EQ(after.entries, 1u + grid.size());

  // The original scene is gone: rebuilding it misses again.
  const std::uint64_t misses_before = after.misses;
  const auto rebuilt = scene.make_channel(grid);
  EXPECT_EQ(sim::PrecomputeStore::instance().stats().misses,
            misses_before + 1u + grid.size());
}

TEST_F(PrecomputeTest, DisabledModeProducesBitIdenticalArtifacts) {
  const Scene scene;
  const auto grid = scene.scenario.room_grid.points();

  sim::set_precompute_enabled(false);
  const auto dense = scene.make_channel(grid);
  // The ablation bypasses the store entirely.
  EXPECT_EQ(sim::PrecomputeStore::instance().stats().entries, 0u);

  sim::set_precompute_enabled(true);
  const auto shared = scene.make_channel(grid);
  EXPECT_TRUE(channels_identical(*dense, *shared));
}

TEST_F(PrecomputeTest, StepReportsByteIdenticalWithStoreDisabled) {
  // Timings in StepTrace are only non-zero while telemetry runs; mask them
  // so the wire bytes compare exactly (same trick as the determinism tests).
  telemetry::set_enabled(false);

  const auto run_site = [](bool use_store) {
    sim::set_precompute_enabled(use_store);
    sim::CoverageRoomScenario room = sim::make_coverage_room(/*grid_n=*/4);
    SurfOS os(room.environment.get(), room.ap(), room.band, room.budget);
    const surface::Catalog catalog = surface::Catalog::standard();
    os.install_programmable(*catalog.find("NR-Surface"), room.surface_pose,
                            10, 10, "wall");
    os.register_endpoint("laptop", hal::EndpointKind::kClient,
                         {1.2, 2.4, 1.0});
    os.orchestrator().enhance_link({"laptop", 10.0, 50.0});
    std::vector<std::uint8_t> wire;
    for (int i = 0; i < 3; ++i) {
      const auto bytes = proto::to_wire(os.step());
      wire.insert(wire.end(), bytes.begin(), bytes.end());
    }
    return wire;
  };

  const auto with_store = run_site(true);
  const auto without_store = run_site(false);
  EXPECT_EQ(with_store, without_store);
}

TEST_F(PrecomputeTest, DeltaAddRemoveReaddMatchesFreshDenseBuild) {
  const Scene scene;
  const auto grid = scene.scenario.room_grid.points();

  auto delta = scene.make_channel(grid);
  const geom::Vec3 removed_point = grid[2];
  const std::vector<geom::Vec3> added = {{1.21, 2.17, 1.04},
                                         {2.45, 0.93, 1.31}};
  delta->precompute_delta(added, std::vector<std::size_t>{2});
  EXPECT_EQ(delta->rx_count(), grid.size() + 1);
  // Re-adding a previously removed point must hit its still-resident row
  // and land bitwise where a dense build would.
  delta->precompute_delta(std::vector<geom::Vec3>{removed_point}, {});

  std::vector<geom::Vec3> churned = grid;
  churned.erase(churned.begin() + 2);
  churned.insert(churned.end(), added.begin(), added.end());
  churned.push_back(removed_point);

  sim::set_precompute_enabled(false);
  const auto fresh = scene.make_channel(churned);
  EXPECT_TRUE(channels_identical(*fresh, *delta));

  // The ablation path takes deltas too (full dense rebuild underneath).
  auto dense_delta = scene.make_channel(grid);
  dense_delta->precompute_delta(added, std::vector<std::size_t>{2});
  dense_delta->precompute_delta(std::vector<geom::Vec3>{removed_point}, {});
  EXPECT_TRUE(channels_identical(*fresh, *dense_delta));
}

TEST_F(PrecomputeTest, OrchestratorRebasesCachedPlanOnTaskSetChange) {
  sim::CoverageRoomScenario room = sim::make_coverage_room(/*grid_n=*/4);
  SurfOS os(room.environment.get(), room.ap(), room.band, room.budget);
  const surface::Catalog catalog = surface::Catalog::standard();
  os.install_programmable(*catalog.find("NR-Surface"), room.surface_pose, 10,
                          10, "wall");
  os.register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});
  os.orchestrator().enhance_link({"laptop", 10.0, 50.0});
  os.step();

  // Same environment, one more endpoint/task: the cached plan's channel must
  // be rebased in O(ΔRX), not rebuilt from scratch.
  const auto rebases_before =
      telemetry::MetricsRegistry::instance()
          .counter("orch.plan.rebased")
          .value();
  os.register_endpoint("phone", hal::EndpointKind::kClient, {2.0, 1.0, 1.0});
  os.orchestrator().enhance_link({"phone", 8.0, 50.0});
  const orch::StepReport report = os.step();
  EXPECT_EQ(telemetry::MetricsRegistry::instance()
                .counter("orch.plan.rebased")
                .value(),
            rebases_before + 1);
  // The rebased plan still schedules and re-optimizes for the new task set.
  EXPECT_EQ(report.assignment_count, 1u);
  EXPECT_EQ(report.optimizations_run, 1u);
}

TEST_F(PrecomputeTest, DeltaValidatesRemovalIndicesAndNonEmptyResult) {
  const Scene scene;
  auto chan = scene.make_channel({{1.0, 2.0, 1.0}, {2.0, 1.0, 1.0}});
  EXPECT_THROW(chan->precompute_delta({}, std::vector<std::size_t>{7}),
               std::invalid_argument);
  EXPECT_THROW(chan->precompute_delta({}, std::vector<std::size_t>{0, 1}),
               std::invalid_argument);
  // Revision only moves on an applied delta.
  const std::uint64_t rev = chan->rx_revision();
  EXPECT_EQ(chan->rx_revision(), rev);
  chan->precompute_delta({}, std::vector<std::size_t>{0});
  EXPECT_EQ(chan->rx_revision(), rev + 1);
  EXPECT_EQ(chan->rx_count(), 1u);
}

}  // namespace
}  // namespace surfos
