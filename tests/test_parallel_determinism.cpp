// Determinism contract of the parallel execution engine: channel
// precompute, power maps, heatmaps, analytic and finite-difference
// gradients, and population optimizers must be bit-identical under
// SURFOS_THREADS=1 (pure serial loops) and a heavily threaded pool.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "telemetry/telemetry.hpp"

#include "em/propagation.hpp"
#include "opt/objective.hpp"
#include "opt/optimizer.hpp"
#include "orch/objectives.hpp"
#include "orch/variables.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"
#include "sim/heatmap.hpp"
#include "surface/panel.hpp"
#include "util/thread_pool.hpp"

namespace surfos {
namespace {

constexpr std::size_t kThreadedDegree = 8;

/// A small two-panel coverage room so every parallel loop (RX points, panel
/// pairs, cascades, gradients) has real work.
struct Scene {
  sim::CoverageRoomScenario scenario;
  std::unique_ptr<surface::SurfacePanel> panel_a;
  std::unique_ptr<surface::SurfacePanel> panel_b;
  std::vector<const surface::SurfacePanel*> panels;

  Scene() : scenario(sim::make_coverage_room(/*grid_n=*/6)) {
    surface::ElementDesign design;
    design.spacing_m =
        em::wavelength(em::band_center(scenario.band)) / 2.0;
    design.insertion_loss_db = 1.0;
    panel_a = std::make_unique<surface::SurfacePanel>(
        "det-a", scenario.surface_pose, 6, 6, design,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kElement);
    const geom::Frame pose_b(
        scenario.surface_pose.origin() + geom::Vec3{0.9, 0.4, 0.0},
        scenario.surface_pose.normal() + geom::Vec3{0.2, 0.1, 0.0});
    panel_b = std::make_unique<surface::SurfacePanel>(
        "det-b", pose_b, 5, 5, design, surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kElement);
    panels = {panel_a.get(), panel_b.get()};
  }

  std::unique_ptr<sim::SceneChannel> make_channel() const {
    sim::ChannelOptions options;
    options.include_surface_cascades = true;
    return std::make_unique<sim::SceneChannel>(
        scenario.environment.get(), em::band_center(scenario.band),
        scenario.ap(), panels, scenario.room_grid.points(), nullptr, options);
  }

  std::vector<surface::SurfaceConfig> focus_configs() const {
    const geom::Vec3 target =
        scenario.room_grid.point(scenario.room_grid.size() / 2);
    const double f = em::band_center(scenario.band);
    return {panel_a->focus_config(scenario.ap_position, target, f),
            panel_b->focus_config(scenario.ap_position, target, f)};
  }
};

TEST(ParallelDeterminism, PrecomputeAndPowerMapBitIdentical) {
  const Scene scene;
  const auto configs = scene.focus_configs();

  // With store sharing on, the threaded channel would adopt the serial
  // channel's artifacts and the comparison below would test pointer
  // equality, not recomputation. Force both to genuinely precompute.
  sim::set_precompute_enabled(false);
  util::reset_global_pool(1);
  const auto serial_channel = scene.make_channel();
  const auto serial_power = serial_channel->power_map(configs);

  util::reset_global_pool(kThreadedDegree);
  const auto threaded_channel = scene.make_channel();
  const auto threaded_power = threaded_channel->power_map(configs);

  ASSERT_EQ(serial_power.size(), threaded_power.size());
  for (std::size_t j = 0; j < serial_power.size(); ++j) {
    EXPECT_EQ(serial_power[j], threaded_power[j]) << "rx " << j;
  }
  // Precomputed structure itself is slot-deterministic too.
  for (std::size_t p = 0; p < serial_channel->panel_count(); ++p) {
    EXPECT_EQ(serial_channel->tx_vector(p), threaded_channel->tx_vector(p));
    for (std::size_t q = 0; q < serial_channel->panel_count(); ++q) {
      EXPECT_EQ(serial_channel->cascade(q, p).data(),
                threaded_channel->cascade(q, p).data());
    }
  }
  for (std::size_t j = 0; j < serial_channel->rx_count(); ++j) {
    EXPECT_EQ(serial_channel->direct(j), threaded_channel->direct(j));
  }
  sim::set_precompute_enabled(true);
  util::reset_global_pool(1);
}

TEST(ParallelDeterminism, RssHeatmapBitIdentical) {
  const Scene scene;
  const auto configs = scene.focus_configs();

  util::reset_global_pool(1);
  auto channel = scene.make_channel();
  const auto serial = sim::rss_heatmap(*channel, scene.scenario.room_grid,
                                       scene.scenario.budget, configs);

  util::reset_global_pool(kThreadedDegree);
  const auto threaded = sim::rss_heatmap(*channel, scene.scenario.room_grid,
                                         scene.scenario.budget, configs);
  EXPECT_EQ(serial.values, threaded.values);

  // map_over_grid with a pure function of the index.
  const auto grid_serial = [&] {
    util::reset_global_pool(1);
    return sim::map_over_grid(scene.scenario.room_grid, [](std::size_t i) {
      return std::sin(static_cast<double>(i) * 0.137);
    });
  }();
  const auto grid_threaded = [&] {
    util::reset_global_pool(kThreadedDegree);
    return sim::map_over_grid(scene.scenario.room_grid, [](std::size_t i) {
      return std::sin(static_cast<double>(i) * 0.137);
    });
  }();
  EXPECT_EQ(grid_serial.values, grid_threaded.values);
  util::reset_global_pool(1);
}

TEST(ParallelDeterminism, AnalyticGradientBitIdentical) {
  const Scene scene;
  const auto channel = scene.make_channel();
  const orch::PanelVariables variables(scene.panels);
  std::vector<std::size_t> rx(channel->rx_count());
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] = i;
  const orch::CapacityObjective objective(channel.get(), &variables, rx,
                                          scene.scenario.budget.snr(1.0));
  ASSERT_TRUE(objective.thread_safe());

  std::vector<double> x(variables.dimension());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.3 * std::sin(static_cast<double>(i));
  }

  util::reset_global_pool(1);
  std::vector<double> g_serial(x.size());
  const double v_serial = objective.value_and_gradient(x, g_serial);
  const double value_serial = objective.value(x);

  util::reset_global_pool(kThreadedDegree);
  std::vector<double> g_threaded(x.size());
  const double v_threaded = objective.value_and_gradient(x, g_threaded);
  const double value_threaded = objective.value(x);

  EXPECT_EQ(v_serial, v_threaded);
  EXPECT_EQ(value_serial, value_threaded);
  EXPECT_EQ(g_serial, g_threaded);
  util::reset_global_pool(1);
}

TEST(ParallelDeterminism, FiniteDifferenceGradientBitIdentical) {
  const opt::FunctionObjective objective(
      12,
      [](std::span<const double> x) {
        double sum = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
          sum += std::cos(x[i] + 0.1 * static_cast<double>(i)) +
                 0.05 * x[i] * x[i];
        }
        return sum;
      },
      /*thread_safe=*/true);
  std::vector<double> x(12);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.2 * static_cast<double>(i);

  util::reset_global_pool(1);
  std::vector<double> g_serial(x.size());
  const double v_serial = objective.value_and_gradient(x, g_serial);

  util::reset_global_pool(kThreadedDegree);
  std::vector<double> g_threaded(x.size());
  const double v_threaded = objective.value_and_gradient(x, g_threaded);

  EXPECT_EQ(v_serial, v_threaded);
  EXPECT_EQ(g_serial, g_threaded);
  util::reset_global_pool(1);
}

TEST(ParallelDeterminism, BatchOptimizersBitIdentical) {
  const opt::FunctionObjective objective(
      6,
      [](std::span<const double> x) {
        double sum = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
          sum += (1.0 - std::cos(x[i])) + 0.01 * x[i] * x[i];
        }
        return sum;
      },
      /*thread_safe=*/true);
  const std::vector<double> x0(6, 1.2);

  auto run_all = [&] {
    struct Out {
      opt::OptimizeResult cma, rs, sa;
    } out;
    opt::CmaEsOptions cma;
    cma.max_evaluations = 2000;
    out.cma = opt::CmaEs(cma).minimize(objective, x0);
    opt::RandomSearchOptions rs;
    rs.max_evaluations = 2000;
    out.rs = opt::RandomSearch(rs).minimize(objective, x0);
    opt::AnnealingOptions sa;
    sa.max_evaluations = 2000;
    out.sa = opt::SimulatedAnnealing(sa).minimize(objective, x0);
    return out;
  };

  util::reset_global_pool(1);
  const auto serial = run_all();
  util::reset_global_pool(kThreadedDegree);
  const auto threaded = run_all();

  EXPECT_EQ(serial.cma.x, threaded.cma.x);
  EXPECT_EQ(serial.cma.value, threaded.cma.value);
  EXPECT_EQ(serial.rs.x, threaded.rs.x);
  EXPECT_EQ(serial.rs.value, threaded.rs.value);
  EXPECT_EQ(serial.sa.x, threaded.sa.x);
  EXPECT_EQ(serial.sa.value, threaded.sa.value);
  EXPECT_EQ(serial.cma.evaluations, threaded.cma.evaluations);
  EXPECT_EQ(serial.rs.evaluations, threaded.rs.evaluations);
  EXPECT_EQ(serial.sa.evaluations, threaded.sa.evaluations);
  util::reset_global_pool(1);
}

TEST(ParallelDeterminism, SpanDepthRestoredAfterParallelForException) {
  telemetry::set_enabled(true);
  util::reset_global_pool(kThreadedDegree);
  ASSERT_EQ(telemetry::Span::depth(), 0u);
  {
    telemetry::Span outer("test.par.outer");
    // Worker-side spans unwind with the exception; the pool rethrows the
    // lowest-index chunk's error on the submitting thread, whose own span
    // stack must be untouched.
    EXPECT_THROW(util::parallel_for(0, 64,
                                    [](std::size_t i) {
                                      telemetry::Span inner("test.par.inner");
                                      if (i % 16 == 1) {
                                        throw std::runtime_error("boom");
                                      }
                                    }),
                 std::runtime_error);
    EXPECT_EQ(telemetry::Span::depth(), 1u);
    EXPECT_EQ(telemetry::Span::current(), &outer);
  }
  EXPECT_EQ(telemetry::Span::depth(), 0u);
  util::reset_global_pool(1);
}

TEST(ParallelDeterminism, SpanHistogramCountsThreadCountInvariant) {
  telemetry::set_enabled(true);
  auto& registry = telemetry::MetricsRegistry::instance();
  const auto span_count = [&registry](const char* name) -> std::uint64_t {
    for (const auto& hist : registry.snapshot().histograms) {
      if (hist.name == name) return hist.count;
    }
    return 0;
  };
  const auto run = [](std::size_t threads) {
    util::reset_global_pool(threads);
    util::parallel_for(0, 100, [](std::size_t) {
      telemetry::Span span("test.par.count_span");
    });
  };

  registry.reset();
  run(1);
  const std::uint64_t serial = span_count("test.par.count_span");

  registry.reset();
  run(kThreadedDegree);
  const std::uint64_t threaded = span_count("test.par.count_span");

  EXPECT_EQ(serial, 100u);   // one histogram record per logical iteration
  EXPECT_EQ(serial, threaded);
  util::reset_global_pool(1);
  registry.reset();
}

TEST(HeatmapRegression, EmptyMapStatsThrowInsteadOfUb) {
  const sim::Heatmap empty{geom::SampleGrid{0.0, 1.0, 0.0, 1.0, 0.0, 1, 1},
                           {}};
  EXPECT_THROW(empty.min_value(), std::logic_error);
  EXPECT_THROW(empty.max_value(), std::logic_error);
}

}  // namespace
}  // namespace surfos
