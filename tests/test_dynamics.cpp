// Environment-dynamics tests: moving-blocker kinematics, environment
// rebuilds, channel impact of a body crossing a link, and the
// orchestrator-facing invalidation contract.
#include <gtest/gtest.h>

#include "em/propagation.hpp"
#include "sim/dynamics.hpp"
#include "util/units.hpp"

namespace surfos::sim {
namespace {

MovingBlocker walker(std::vector<geom::Vec3> track, double speed = 1.0) {
  MovingBlocker blocker;
  blocker.id = "walker";
  blocker.waypoints = std::move(track);
  blocker.speed_mps = speed;
  return blocker;
}

TEST(MovingBlocker, StaysAtSingleWaypoint) {
  const MovingBlocker b = walker({{1, 2, 0}});
  EXPECT_EQ(b.position_at(0.0), geom::Vec3(1, 2, 0));
  EXPECT_EQ(b.position_at(100.0), geom::Vec3(1, 2, 0));
}

TEST(MovingBlocker, WalksAtConstantSpeed) {
  const MovingBlocker b = walker({{0, 0, 0}, {10, 0, 0}}, 2.0);
  EXPECT_NEAR(b.position_at(1.0).x, 2.0, 1e-9);
  EXPECT_NEAR(b.position_at(4.0).x, 8.0, 1e-9);
}

TEST(MovingBlocker, LoopsOverTrack) {
  // Track 0 -> 10 -> 0 (loop length 20 m) at 1 m/s.
  const MovingBlocker b = walker({{0, 0, 0}, {10, 0, 0}}, 1.0);
  EXPECT_NEAR(b.position_at(15.0).x, 5.0, 1e-9);  // on the way back
  EXPECT_NEAR(b.position_at(20.0).x, 0.0, 1e-9);  // full loop
  EXPECT_NEAR(b.position_at(22.0).x, 2.0, 1e-9);  // wrapped
}

TEST(MovingBlocker, MultiLegTrack) {
  const MovingBlocker b = walker({{0, 0, 0}, {4, 0, 0}, {4, 3, 0}}, 1.0);
  // Legs: 4 + 3 + 5 (closing hypotenuse) = 12 m loop.
  EXPECT_NEAR(b.position_at(5.0).y, 1.0, 1e-9);  // 1 m up the second leg
  const geom::Vec3 closing = b.position_at(8.0);  // 1 m along the hypotenuse
  EXPECT_NEAR(closing.distance_to({4, 3, 0}), 1.0, 1e-9);
}

DynamicEnvironment corridor_world() {
  em::MaterialDb materials = em::MaterialDb::standard();
  const int body = add_body_material(materials);
  DynamicEnvironment world(materials, [](Environment& env) {
    env.add_horizontal_slab(-10, 10, -10, 10, 0.0, em::kMatFloor);
  });
  MovingBlocker person = walker({{-3, 0, 0}, {3, 0, 0}}, 1.0);
  person.material_id = body;
  world.add_blocker(person);
  return world;
}

TEST(DynamicEnvironment, RebuildsOnlyWhenSomethingMoved) {
  DynamicEnvironment world = corridor_world();
  const std::size_t initial = world.rebuild_count();
  // 10 ms at 1 m/s = 1 cm < threshold: no rebuild.
  EXPECT_FALSE(world.advance_to(10 * hal::kMicrosPerMilli));
  EXPECT_EQ(world.rebuild_count(), initial);
  // 1 s = 1 m: rebuild.
  EXPECT_TRUE(world.advance_to(1 * hal::kMicrosPerSecond));
  EXPECT_EQ(world.rebuild_count(), initial + 1);
}

TEST(DynamicEnvironment, BlockerPositionTracksClock) {
  DynamicEnvironment world = corridor_world();
  world.advance_to(2 * hal::kMicrosPerSecond);
  EXPECT_NEAR(world.blocker_position("walker").x, -1.0, 1e-6);
  EXPECT_THROW(world.blocker_position("ghost"), std::invalid_argument);
}

TEST(DynamicEnvironment, BodyAttenuatesTheLinkItCrosses) {
  DynamicEnvironment world = corridor_world();
  const geom::Vec3 tx{0.0, -2.0, 1.2};
  const geom::Vec3 rx{0.0, 2.0, 1.2};
  const double f = em::band_center(em::Band::k28GHz);

  // t = 3 s: the walker is at x = 0 — standing exactly on the link.
  world.advance_to(3 * hal::kMicrosPerSecond);
  const double blocked =
      std::norm(world.environment().segment_transmission(tx, rx, f));

  // t = 5 s: the walker is at x = 2 — off the link.
  world.advance_to(5 * hal::kMicrosPerSecond);
  const double clear =
      std::norm(world.environment().segment_transmission(tx, rx, f));

  EXPECT_NEAR(util::to_db(clear), 0.0, 0.5);
  EXPECT_LT(util::to_db(blocked), -15.0);  // a body is a strong mmWave shadow
}

TEST(DynamicEnvironment, RejectsBadConstruction) {
  em::MaterialDb materials = em::MaterialDb::standard();
  EXPECT_THROW(DynamicEnvironment(materials, nullptr), std::invalid_argument);
  DynamicEnvironment world(materials, [](Environment&) {});
  EXPECT_THROW(world.add_blocker(MovingBlocker{}), std::invalid_argument);
}

TEST(DynamicEnvironment, StaticGeometrySurvivesRebuilds) {
  DynamicEnvironment world = corridor_world();
  const std::size_t before = world.environment().mesh().triangle_count();
  world.advance_to(2 * hal::kMicrosPerSecond);
  EXPECT_EQ(world.environment().mesh().triangle_count(), before);
}

}  // namespace
}  // namespace surfos::sim
