// Orchestrator tests: panel-variable mapping (with analytic-gradient checks
// against finite differences for every objective), scheduler policies, the
// performance models, and the full control-plane loop (schedule -> optimize
// -> actuate -> measure) on the canonical coverage room.
#include <gtest/gtest.h>

#include <cmath>

#include "orch/objectives.hpp"
#include "orch/orchestrator.hpp"
#include "orch/perf.hpp"
#include "orch/scheduler.hpp"
#include "orch/task.hpp"
#include "orch/variables.hpp"
#include "sim/floorplan.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace surfos::orch {
namespace {

constexpr double kFreq = 28e9;

surface::SurfacePanel small_panel(
    const std::string& id,
    surface::ControlGranularity granularity =
        surface::ControlGranularity::kElement,
    const geom::Frame& pose = geom::Frame({0, 0, 2}, {0, 0, -1}, {1, 0, 0})) {
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(kFreq) / 2.0;
  d.insertion_loss_db = 1.0;
  return surface::SurfacePanel(id, pose, 4, 4, d,
                               surface::OperationMode::kReflective,
                               surface::Reconfigurability::kProgrammable,
                               granularity);
}

// --- PanelVariables ------------------------------------------------------------

TEST(Variables, DimensionAndRanges) {
  const auto a = small_panel("a", surface::ControlGranularity::kElement);
  const auto b = small_panel("b", surface::ControlGranularity::kColumn);
  const PanelVariables vars({&a, &b});
  EXPECT_EQ(vars.dimension(), 16u + 4u);
  EXPECT_EQ(vars.range_of(0), std::make_pair(std::size_t{0}, std::size_t{16}));
  EXPECT_EQ(vars.range_of(1), std::make_pair(std::size_t{16}, std::size_t{4}));
}

TEST(Variables, CoefficientsApplyLossAndPhase) {
  const auto a = small_panel("a");
  const PanelVariables vars({&a});
  std::vector<double> x(16, 0.0);
  x[3] = 1.2;
  const auto coeffs = vars.coefficients(x);
  const double loss = std::pow(10.0, -1.0 / 20.0);
  EXPECT_NEAR(std::abs(coeffs[0][3]), loss, 1e-12);
  EXPECT_NEAR(std::arg(coeffs[0][3]), 1.2, 1e-12);
}

TEST(Variables, ColumnControlsReplicateDownColumns) {
  const auto b = small_panel("b", surface::ControlGranularity::kColumn);
  const PanelVariables vars({&b});
  std::vector<double> x(4);
  for (int i = 0; i < 4; ++i) x[static_cast<std::size_t>(i)] = 0.3 * i;
  const auto coeffs = vars.coefficients(x);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(std::arg(coeffs[0][r * 4 + c]), 0.3 * static_cast<double>(c),
                  1e-12);
    }
  }
}

TEST(Variables, ReduceGradientSumsGroups) {
  const auto b = small_panel("b", surface::ControlGranularity::kColumn);
  const PanelVariables vars({&b});
  std::vector<double> element_grad(16, 1.0);
  std::vector<double> x_grad(4, 0.0);
  vars.reduce_gradient(0, element_grad, x_grad);
  for (const double g : x_grad) EXPECT_DOUBLE_EQ(g, 4.0);
}

TEST(Variables, RealizeRoundTripsThroughConfigs) {
  const auto a = small_panel("a");
  const PanelVariables vars({&a});
  std::vector<double> x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = 0.35 * static_cast<double>(i);
  const auto configs = vars.realize(x);
  const auto back = vars.from_configs(configs);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(back[i], util::wrap_two_pi(x[i]), 1e-9);
  }
}

// --- Objectives (gradient checks) -------------------------------------------------

struct ObjectiveFixture {
  sim::Environment env{em::MaterialDb::standard()};
  surface::SurfacePanel panel = small_panel("p");
  std::unique_ptr<sim::SceneChannel> channel;
  std::unique_ptr<PanelVariables> vars;

  ObjectiveFixture() {
    // Low metal fence blocks the ground-level direct paths so the surface
    // (mounted at z = 2) is the dominant route — the regime the objectives
    // are optimized in.
    env.add_vertical_wall(0.0, -2.0, 0.0, 2.0, 0.0, 1.0, em::kMatMetal);
    env.finalize();
    // RX probes sit well off the panel's specular direction so a uniform
    // (mirror-like) configuration is incoherent toward them and optimization
    // has real headroom.
    channel = std::make_unique<sim::SceneChannel>(
        &env, kFreq, sim::TxSpec{{-1.0, 0.2, 0.0}, nullptr},
        std::vector<const surface::SurfacePanel*>{&panel},
        std::vector<geom::Vec3>{{1.0, -1.5, 0.1}, {0.6, -1.2, 0.3}});
    vars = std::make_unique<PanelVariables>(
        std::vector<const surface::SurfacePanel*>{&panel});
  }
};

void check_gradient(const opt::Objective& objective,
                    const std::vector<double>& x, double tolerance = 1e-5) {
  std::vector<double> analytic(x.size());
  const double value = objective.value_and_gradient(x, analytic);
  EXPECT_NEAR(value, objective.value(x), 1e-10);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto plus = x;
    auto minus = x;
    plus[i] += eps;
    minus[i] -= eps;
    const double fd =
        (objective.value(plus) - objective.value(minus)) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], fd, tolerance + 1e-3 * std::fabs(fd))
        << "coordinate " << i;
  }
}

TEST(Objectives, CapacityGradientMatchesFiniteDifference) {
  ObjectiveFixture fx;
  const CapacityObjective objective(fx.channel.get(), fx.vars.get(), {0, 1},
                                    1e8, 1.0);
  util::Rng rng(61);
  std::vector<double> x(fx.vars->dimension());
  for (double& v : x) v = rng.uniform(0, util::kTwoPi);
  check_gradient(objective, x);
}

TEST(Objectives, SecuritySignFlipsGradient) {
  ObjectiveFixture fx;
  const CapacityObjective maximize(fx.channel.get(), fx.vars.get(), {0}, 1e8,
                                   1.0);
  const CapacityObjective minimize(fx.channel.get(), fx.vars.get(), {0}, 1e8,
                                   -1.0);
  std::vector<double> x(fx.vars->dimension(), 0.3);
  std::vector<double> g1(x.size()), g2(x.size());
  maximize.value_and_gradient(x, g1);
  minimize.value_and_gradient(x, g2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(g1[i], -g2[i], 1e-12);
  }
  check_gradient(minimize, x);
}

TEST(Objectives, PowerDeliveryGradientMatchesFiniteDifference) {
  ObjectiveFixture fx;
  const PowerDeliveryObjective objective(fx.channel.get(), fx.vars.get(), {1},
                                         1e-12);
  util::Rng rng(67);
  std::vector<double> x(fx.vars->dimension());
  for (double& v : x) v = rng.uniform(0, util::kTwoPi);
  check_gradient(objective, x, 1e-4);
}

TEST(Objectives, LocalizationGradientMatchesFiniteDifference) {
  ObjectiveFixture fx;
  const LocalizationObjective objective(fx.channel.get(), fx.vars.get(), 0,
                                        {0, 1}, 41);
  util::Rng rng(71);
  std::vector<double> x(fx.vars->dimension());
  for (double& v : x) v = rng.uniform(0, util::kTwoPi);
  check_gradient(objective, x, 1e-4);
}

TEST(Objectives, OptimizedCapacityBeatsUniform) {
  ObjectiveFixture fx;
  // rho sized so the focused surface link lands in the tens-of-dB SNR range
  // (otherwise the capacity landscape is numerically flat and there is
  // nothing to optimize).
  const CapacityObjective objective(fx.channel.get(), fx.vars.get(), {0, 1},
                                    1e13, 1.0);
  const std::vector<double> x0(fx.vars->dimension(), 0.0);
  const auto result = opt::GradientDescent().minimize(objective, x0);
  EXPECT_LT(result.value, objective.value(x0) - 0.5);
}

TEST(Objectives, RejectBadConstruction) {
  ObjectiveFixture fx;
  EXPECT_THROW(CapacityObjective(nullptr, fx.vars.get(), {0}, 1e8),
               std::invalid_argument);
  EXPECT_THROW(CapacityObjective(fx.channel.get(), fx.vars.get(), {}, 1e8),
               std::invalid_argument);
  EXPECT_THROW(CapacityObjective(fx.channel.get(), fx.vars.get(), {0}, -1.0),
               std::invalid_argument);
  EXPECT_THROW(LocalizationObjective(fx.channel.get(), fx.vars.get(), 7, {0}),
               std::invalid_argument);
  EXPECT_THROW(
      PowerDeliveryObjective(fx.channel.get(), fx.vars.get(), {0}, 0.0),
      std::invalid_argument);
}

// --- Perf models ---------------------------------------------------------------------

TEST(Perf, MetricsAreInternallyConsistent) {
  ObjectiveFixture fx;
  const em::LinkBudget budget{10.0, 400e6, 7.0};
  const std::vector<surface::SurfaceConfig> configs{
      fx.panel.focus_config({-1.0, 0.2, 0.0}, {1.0, -1.5, 0.1}, kFreq)};
  const LinkMetrics link = link_metrics(*fx.channel, budget, configs, 0);
  EXPECT_NEAR(link.snr_db, link.rss_dbm - budget.noise_dbm(), 1e-9);
  const CoverageMetrics coverage =
      coverage_metrics(*fx.channel, budget, configs, {0, 1});
  ASSERT_EQ(coverage.snr_db.size(), 2u);
  EXPECT_NEAR(coverage.snr_db[0], link.snr_db, 1e-9);
  EXPECT_GE(coverage.mean_capacity_mbps, 0.0);
  const PowerMetrics power = power_metrics(*fx.channel, budget, configs, 0);
  EXPECT_NEAR(power.delivered_dbm, link.rss_dbm, 1e-9);
}

TEST(Perf, FocusedLinkBeatsUniformLink) {
  ObjectiveFixture fx;
  const em::LinkBudget budget{10.0, 400e6, 7.0};
  const std::vector<surface::SurfaceConfig> uniform{
      surface::SurfaceConfig(fx.panel.element_count())};
  const std::vector<surface::SurfaceConfig> focus{
      fx.panel.focus_config({-1.0, 0.2, 0.0}, {1.0, -1.5, 0.1}, kFreq)};
  EXPECT_GT(link_metrics(*fx.channel, budget, focus, 0).snr_db,
            link_metrics(*fx.channel, budget, uniform, 0).snr_db + 3.0);
}

// --- Scheduler --------------------------------------------------------------------------

struct SchedulerFixture {
  hal::SimClock clock;
  surface::SurfacePanel panel_a = small_panel("a");
  surface::SurfacePanel panel_b = small_panel(
      "b", surface::ControlGranularity::kElement,
      geom::Frame({3, 0, 2}, {0, 0, -1}, {1, 0, 0}));
  hal::DeviceRegistry registry;

  SchedulerFixture() {
    hal::HardwareSpec spec;
    spec.band_response[em::Band::k28GHz] = 0.9;
    spec.config_slots = 4;
    spec.control_delay_us = 100;
    registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
        "a", &panel_a, spec, &clock));
    registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
        "b", &panel_b, spec, &clock));
    registry.add_endpoint({"client-near-a", hal::EndpointKind::kClient,
                           {0.1, 0, 0}, em::Band::k28GHz, std::nullopt});
    registry.add_endpoint({"client-near-b", hal::EndpointKind::kClient,
                           {3.1, 0, 0}, em::Band::k28GHz, std::nullopt});
  }

  Task make_task(TaskId id, ServiceGoal goal, Priority priority,
                 std::optional<hal::Micros> deadline = std::nullopt) {
    Task t;
    t.id = id;
    t.goal = std::move(goal);
    t.priority = priority;
    t.band = em::Band::k28GHz;
    t.deadline = deadline;
    return t;
  }
};

TEST(SchedulerTest, PriorityJointGroupsTasksPerBand) {
  SchedulerFixture fx;
  const Task t1 = fx.make_task(1, LinkGoal{"client-near-a", 20, 50},
                               kPriorityInteractive);
  const Task t2 = fx.make_task(2, LinkGoal{"client-near-b", 20, 50},
                               kPriorityBackground);
  const Scheduler scheduler(SchedulePolicy::kPriorityJoint);
  const Schedule schedule = scheduler.build({&t1, &t2}, fx.registry);
  ASSERT_EQ(schedule.assignments.size(), 1u);
  const Assignment& a = schedule.assignments[0];
  EXPECT_EQ(a.tasks.size(), 2u);
  EXPECT_EQ(a.devices.size(), 2u);
  EXPECT_DOUBLE_EQ(a.time_share, 1.0);
  // Weights normalized and ordered by priority.
  EXPECT_NEAR(a.weights[0] + a.weights[1], 1.0, 1e-12);
  EXPECT_GT(a.weights[0], a.weights[1]);
}

TEST(SchedulerTest, RoundRobinSplitsTimeEvenly) {
  SchedulerFixture fx;
  const Task t1 = fx.make_task(1, LinkGoal{"client-near-a", 20, 50},
                               kPriorityNormal);
  const Task t2 = fx.make_task(2, LinkGoal{"client-near-b", 20, 50},
                               kPriorityNormal);
  const Scheduler scheduler(SchedulePolicy::kRoundRobinTdm);
  const Schedule schedule = scheduler.build({&t1, &t2}, fx.registry);
  ASSERT_EQ(schedule.assignments.size(), 2u);
  EXPECT_DOUBLE_EQ(schedule.assignments[0].time_share, 0.5);
  EXPECT_DOUBLE_EQ(schedule.assignments[1].time_share, 0.5);
  EXPECT_NE(schedule.assignments[0].slot, schedule.assignments[1].slot);
}

TEST(SchedulerTest, EdfFavorsEarlierDeadline) {
  SchedulerFixture fx;
  const Task late = fx.make_task(1, LinkGoal{"client-near-a", 20, 50},
                                 kPriorityNormal, hal::Micros{100000});
  const Task soon = fx.make_task(2, LinkGoal{"client-near-b", 20, 50},
                                 kPriorityNormal, hal::Micros{500});
  const Scheduler scheduler(SchedulePolicy::kEarliestDeadline);
  const Schedule schedule = scheduler.build({&late, &soon}, fx.registry);
  ASSERT_EQ(schedule.assignments.size(), 2u);
  // First assignment is the earliest deadline with the larger share.
  EXPECT_EQ(schedule.assignments[0].tasks[0], 2u);
  EXPECT_GT(schedule.assignments[0].time_share,
            schedule.assignments[1].time_share);
}

TEST(SchedulerTest, SpatialPartitionAssignsNearestSurface) {
  SchedulerFixture fx;
  const Task t1 = fx.make_task(1, LinkGoal{"client-near-a", 20, 50},
                               kPriorityNormal);
  const Task t2 = fx.make_task(2, LinkGoal{"client-near-b", 20, 50},
                               kPriorityNormal);
  const Scheduler scheduler(SchedulePolicy::kSpatialPartition);
  const Schedule schedule = scheduler.build({&t1, &t2}, fx.registry);
  ASSERT_EQ(schedule.assignments.size(), 2u);
  for (const Assignment& a : schedule.assignments) {
    ASSERT_EQ(a.devices.size(), 1u);
    ASSERT_EQ(a.tasks.size(), 1u);
    if (a.tasks[0] == 1) {
      EXPECT_EQ(a.devices[0], "a");
    } else {
      EXPECT_EQ(a.devices[0], "b");
    }
  }
}

TEST(SchedulerTest, StarvesTasksWithoutCapableHardware) {
  SchedulerFixture fx;
  Task t = fx.make_task(1, LinkGoal{"client-near-a", 20, 50}, kPriorityNormal);
  t.band = em::Band::k60GHz;  // neither surface responds at 60 GHz well
  const Scheduler scheduler(SchedulePolicy::kPriorityJoint);
  const Schedule schedule = scheduler.build({&t}, fx.registry);
  EXPECT_TRUE(schedule.assignments.empty());
  ASSERT_EQ(schedule.starved.size(), 1u);
  EXPECT_EQ(schedule.starved[0], 1u);
}

TEST(SchedulerTest, TaskFocusResolvesRegionsAndEndpoints) {
  SchedulerFixture fx;
  geom::Vec3 focus;
  const Task link = fx.make_task(1, LinkGoal{"client-near-a", 20, 50},
                                 kPriorityNormal);
  EXPECT_TRUE(task_focus(link, fx.registry, focus));
  EXPECT_EQ(focus, geom::Vec3(0.1, 0, 0));
  const Task missing = fx.make_task(2, LinkGoal{"ghost", 20, 50},
                                    kPriorityNormal);
  EXPECT_FALSE(task_focus(missing, fx.registry, focus));
  CoverageGoal coverage;
  coverage.region = geom::SampleGrid(0, 2, 0, 2, 1, 3, 3);
  const Task region = fx.make_task(3, coverage, kPriorityNormal);
  EXPECT_TRUE(task_focus(region, fx.registry, focus));
  EXPECT_EQ(focus, geom::Vec3(1.0, 1.0, 1.0));
}

// --- Orchestrator end-to-end -----------------------------------------------------------

struct OrchestratorFixture {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(5);
  hal::SimClock clock;
  hal::DeviceRegistry registry;
  surface::SurfacePanel panel;
  std::unique_ptr<Orchestrator> orchestrator;

  explicit OrchestratorFixture(
      SchedulePolicy policy = SchedulePolicy::kPriorityJoint)
      : panel([&] {
          surface::ElementDesign d;
          d.spacing_m = em::wavelength(em::band_center(scene.band)) / 2.0;
          d.insertion_loss_db = 1.0;
          return surface::SurfacePanel(
              "wall", scene.surface_pose, 12, 12, d,
              surface::OperationMode::kReflective,
              surface::Reconfigurability::kProgrammable,
              surface::ControlGranularity::kElement);
        }()) {
    hal::HardwareSpec spec = hal::spec_for_panel(panel, scene.band);
    registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
        "wall", &panel, spec, &clock));
    registry.add_endpoint({"laptop", hal::EndpointKind::kClient,
                           {1.2, 2.4, 1.0}, scene.band, std::nullopt});
    OrchestratorContext context;
    context.environment = scene.environment.get();
    context.ap = scene.ap();
    context.default_band = scene.band;
    context.budget = scene.budget;
    OrchestratorOptions options;
    options.policy = policy;
    orchestrator = std::make_unique<Orchestrator>(&registry, &clock, context,
                                                  options);
  }
};

TEST(OrchestratorTest, EnhanceLinkImprovesSnr) {
  OrchestratorFixture fx;
  const TaskId id = fx.orchestrator->enhance_link({"laptop", 15.0, 50.0});
  const StepReport report = fx.orchestrator->step();
  EXPECT_EQ(report.assignment_count, 1u);
  EXPECT_EQ(report.optimizations_run, 1u);
  const Task* task = fx.orchestrator->find_task(id);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->state, TaskState::kRunning);
  ASSERT_TRUE(task->achieved.has_value());
  EXPECT_GT(*task->achieved, 15.0);
  EXPECT_TRUE(task->goal_met);
}

TEST(OrchestratorTest, SecondStepReusesPlan) {
  OrchestratorFixture fx;
  fx.orchestrator->enhance_link({"laptop", 15.0, 50.0});
  fx.orchestrator->step();
  const StepReport second = fx.orchestrator->step();
  EXPECT_EQ(second.optimizations_run, 0u);  // cached plan, nothing changed
}

TEST(OrchestratorTest, EnvironmentChangeTriggersReoptimization) {
  OrchestratorFixture fx;
  fx.orchestrator->enhance_link({"laptop", 15.0, 50.0});
  fx.orchestrator->step();
  fx.orchestrator->notify_environment_changed();
  const StepReport report = fx.orchestrator->step();
  EXPECT_EQ(report.optimizations_run, 1u);
}

TEST(OrchestratorTest, UnknownEndpointFailsTask) {
  OrchestratorFixture fx;
  const TaskId id = fx.orchestrator->enhance_link({"ghost", 15.0, 50.0});
  fx.orchestrator->step();
  EXPECT_EQ(fx.orchestrator->find_task(id)->state, TaskState::kFailed);
}

TEST(OrchestratorTest, IdleTasksReleaseResources) {
  OrchestratorFixture fx;
  const TaskId id = fx.orchestrator->enhance_link({"laptop", 15.0, 50.0});
  fx.orchestrator->step();
  ASSERT_TRUE(fx.orchestrator->set_task_idle(id, true).ok());
  const StepReport report = fx.orchestrator->step();
  EXPECT_EQ(report.assignment_count, 0u);
  EXPECT_EQ(fx.orchestrator->find_task(id)->state, TaskState::kIdle);
  ASSERT_TRUE(fx.orchestrator->set_task_idle(id, false).ok());
  const StepReport resumed = fx.orchestrator->step();
  EXPECT_EQ(resumed.assignment_count, 1u);
  // Result surface: an unknown id reports kNotFound instead of throwing.
  const auto missing = fx.orchestrator->set_task_idle(99999, true);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), ErrorCode::kNotFound);
}

TEST(OrchestratorTest, SensingTaskProducesAccuracy) {
  OrchestratorFixture fx;
  SensingGoal goal;
  goal.region_id = "room";
  goal.region = geom::SampleGrid(0.8, 2.8, 0.5, 2.5, 1.0, 3, 3);
  goal.target_accuracy_m = 0.8;
  const TaskId id = fx.orchestrator->enable_sensing(goal);
  fx.orchestrator->step();
  const Task* task = fx.orchestrator->find_task(id);
  ASSERT_TRUE(task->achieved.has_value());
  EXPECT_LT(*task->achieved, 0.8);  // median error within target
  EXPECT_TRUE(task->goal_met);
}

TEST(OrchestratorTest, DurationTasksExpire) {
  OrchestratorFixture fx;
  PowerGoal goal;
  goal.endpoint_id = "laptop";
  goal.duration_s = 0.001;  // 1 ms
  const TaskId id = fx.orchestrator->init_powering(goal);
  fx.orchestrator->step();
  EXPECT_TRUE(fx.orchestrator->find_task(id)->active());
  fx.clock.advance(2000);
  fx.orchestrator->step();
  EXPECT_EQ(fx.orchestrator->find_task(id)->state, TaskState::kCompleted);
}

TEST(OrchestratorTest, CancelledTaskLeavesSchedule) {
  OrchestratorFixture fx;
  const TaskId id = fx.orchestrator->enhance_link({"laptop", 15.0, 50.0});
  fx.orchestrator->step();
  fx.orchestrator->cancel_task(id);
  const StepReport report = fx.orchestrator->step();
  EXPECT_EQ(report.assignment_count, 0u);
}

TEST(OrchestratorTest, JointCoverageAndSensingBothMeasured) {
  OrchestratorFixture fx;
  CoverageGoal coverage;
  coverage.region_id = "room";
  coverage.region = geom::SampleGrid(0.8, 2.8, 0.5, 2.5, 1.0, 3, 3);
  coverage.target_median_snr_db = 5.0;
  SensingGoal sensing;
  sensing.region_id = "room";
  sensing.region = coverage.region;
  sensing.target_accuracy_m = 1.0;
  const TaskId c_id = fx.orchestrator->optimize_coverage(coverage);
  const TaskId s_id = fx.orchestrator->enable_sensing(sensing);
  const StepReport report = fx.orchestrator->step();
  EXPECT_EQ(report.assignment_count, 1u);  // joint multiplexing
  EXPECT_TRUE(fx.orchestrator->find_task(c_id)->achieved.has_value());
  EXPECT_TRUE(fx.orchestrator->find_task(s_id)->achieved.has_value());
}

TEST(OrchestratorTest, TdmPolicyCreatesPerTaskAssignments) {
  OrchestratorFixture fx(SchedulePolicy::kRoundRobinTdm);
  fx.registry.add_endpoint({"phone", hal::EndpointKind::kClient,
                            {2.6, 1.5, 1.0}, fx.scene.band, std::nullopt});
  fx.orchestrator->enhance_link({"laptop", 10.0, 50.0});
  fx.orchestrator->enhance_link({"phone", 10.0, 50.0});
  const StepReport report = fx.orchestrator->step();
  EXPECT_EQ(report.assignment_count, 2u);
}

TEST(OrchestratorTest, SetOptimizerInvalidatesPlansAndStillServes) {
  OrchestratorFixture fx;
  const TaskId id = fx.orchestrator->enhance_link({"laptop", 15.0, 50.0});
  fx.orchestrator->step();
  EXPECT_THROW(fx.orchestrator->set_optimizer(nullptr), std::invalid_argument);
  // Swapping the algorithm re-optimizes the cached plan (warm-started from
  // the hardware's current configuration, so quality never regresses).
  fx.orchestrator->set_optimizer(std::make_unique<opt::Adam>());
  const StepReport report = fx.orchestrator->step();
  EXPECT_EQ(report.optimizations_run, 1u);
  EXPECT_TRUE(fx.orchestrator->find_task(id)->goal_met);
  EXPECT_EQ(fx.orchestrator->optimizer().name(), "adam");
}

TEST(OrchestratorTest, AlwaysReoptimizeOptionForcesWork) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(4);
  hal::SimClock clock;
  hal::DeviceRegistry registry;
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(em::band_center(scene.band)) / 2.0;
  const surface::SurfacePanel panel(
      "wall", scene.surface_pose, 10, 10, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
      "wall", &panel, hal::spec_for_panel(panel, scene.band), &clock));
  registry.add_endpoint({"laptop", hal::EndpointKind::kClient,
                         {1.2, 2.4, 1.0}, scene.band, std::nullopt});
  OrchestratorContext context;
  context.environment = scene.environment.get();
  context.ap = scene.ap();
  context.default_band = scene.band;
  context.budget = scene.budget;
  OrchestratorOptions options;
  options.always_reoptimize = true;
  Orchestrator orchestrator(&registry, &clock, context, options);
  orchestrator.enhance_link({"laptop", 10.0, 50.0});
  orchestrator.step();
  const StepReport second = orchestrator.step();
  EXPECT_EQ(second.optimizations_run, 1u);  // no caching in this mode
}

TEST(OrchestratorTest, PriorityWeightsShiftJointOutcome) {
  // Two contending links at opposite room corners sharing one joint config:
  // whichever holds the higher priority must get the better SNR.
  const auto run = [](Priority laptop_priority, Priority phone_priority) {
    OrchestratorFixture fx;
    fx.registry.add_endpoint({"phone", hal::EndpointKind::kClient,
                              {2.6, 0.6, 1.0}, fx.scene.band, std::nullopt});
    const TaskId laptop =
        fx.orchestrator->enhance_link({"laptop", 30.0, 50.0}, laptop_priority);
    const TaskId phone =
        fx.orchestrator->enhance_link({"phone", 30.0, 50.0}, phone_priority);
    fx.orchestrator->step();
    return std::make_pair(
        fx.orchestrator->find_task(laptop)->achieved.value_or(-300),
        fx.orchestrator->find_task(phone)->achieved.value_or(-300));
  };
  const auto [laptop_hi, phone_lo] = run(kPriorityCritical, kPriorityBackground);
  const auto [laptop_lo, phone_hi] = run(kPriorityBackground, kPriorityCritical);
  // Raising a task's priority must not worsen it, and the favored task ends
  // up at least as good as its rival in each configuration.
  EXPECT_GE(laptop_hi + 1e-6, laptop_lo);
  EXPECT_GE(phone_hi + 1e-6, phone_lo);
}

TEST(OrchestratorTest, FrequencyDivisionAcrossBands) {
  // Two surfaces tuned to different bands; two link tasks, one per band.
  // The scheduler must produce one independent slice per band, each using
  // only that band's surface (FDM).
  OrchestratorFixture fx;  // provides the 28 GHz "wall" surface
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(em::band_center(em::Band::k24GHz)) / 2.0;
  const surface::SurfacePanel panel24(
      "wall24", geom::Frame({1.5, 3.42, 1.8}, {0.0, -1.0, 0.0}), 10, 10, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  fx.registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
      "wall24", &panel24, hal::spec_for_panel(panel24, em::Band::k24GHz),
      &fx.clock));
  fx.registry.add_endpoint({"iot-hub", hal::EndpointKind::kClient,
                            {2.0, 1.0, 1.0}, em::Band::k24GHz, std::nullopt});

  const TaskId t28 = fx.orchestrator->enhance_link({"laptop", 10.0, 50.0});
  const TaskId t24 = fx.orchestrator->enhance_link(
      {"iot-hub", 5.0, 100.0}, kPriorityNormal, em::Band::k24GHz);
  const StepReport report = fx.orchestrator->step();
  EXPECT_EQ(report.assignment_count, 2u);  // one slice per band
  EXPECT_EQ(fx.orchestrator->find_task(t28)->band, em::Band::k28GHz);
  EXPECT_EQ(fx.orchestrator->find_task(t24)->band, em::Band::k24GHz);
  // Both tasks were actually served (per-band surfaces were capable).
  EXPECT_TRUE(fx.orchestrator->find_task(t28)->achieved.has_value());
  EXPECT_TRUE(fx.orchestrator->find_task(t24)->achieved.has_value());
  EXPECT_TRUE(report.starved.empty());
}

TEST(OrchestratorTest, TaskOnUnservedBandStarves) {
  OrchestratorFixture fx;
  const TaskId id = fx.orchestrator->enhance_link(
      {"laptop", 10.0, 50.0}, kPriorityNormal, em::Band::k60GHz);
  const StepReport report = fx.orchestrator->step();
  ASSERT_EQ(report.starved.size(), 1u);
  EXPECT_EQ(report.starved[0], id);
  EXPECT_EQ(fx.orchestrator->find_task(id)->state, TaskState::kFailed);
}

TEST(OrchestratorTest, LastRealizedReflectsHardware) {
  OrchestratorFixture fx;
  fx.orchestrator->enhance_link({"laptop", 15.0, 50.0});
  fx.orchestrator->step();
  const auto config = fx.orchestrator->last_realized("wall");
  ASSERT_TRUE(config.has_value());
  // Hardware holds a non-trivial configuration now.
  const surface::SurfaceConfig zero(config->size());
  EXPECT_GT(config->max_phase_delta(zero), 0.1);
}

}  // namespace
}  // namespace surfos::orch
