// Integration tests through the SurfOS facade: full-stack scenarios that
// mirror the paper's exploratory studies at test scale — hybrid
// passive+programmable relaying (Fig 4), joint multitasking vs single-task
// optimization (Figs 2/5), datasheet-driven installation (Section 3.4), and
// resilience to control-link failures.
#include <gtest/gtest.h>

#include "core/fleet.hpp"
#include "core/surfos.hpp"
#include "core/version.hpp"
#include "orch/perf.hpp"
#include "sim/floorplan.hpp"

namespace surfos {
namespace {

TEST(Facade, VersionIsExposed) {
  EXPECT_STREQ(kVersionString, "0.1.0");
  EXPECT_EQ(kVersionMajor, 0);
}

TEST(Facade, InstallAndServeEndToEnd) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(4);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const surface::Catalog catalog = surface::Catalog::standard();
  os.install_programmable(*catalog.find("NR-Surface"), scene.surface_pose, 16,
                          16, "s0");
  os.register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});
  const orch::TaskId task = os.orchestrator().enhance_link({"laptop", 8.0, 50.0});
  os.step();
  const orch::Task* t = os.orchestrator().find_task(task);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->goal_met);
  EXPECT_EQ(os.panel_of("s0").cols(), 16u);
  EXPECT_THROW(os.panel_of("ghost"), std::invalid_argument);
}

TEST(Facade, InstallRejectsWrongHardwareClass) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(4);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const surface::Catalog catalog = surface::Catalog::standard();
  EXPECT_THROW(os.install_programmable(*catalog.find("AutoMS"),
                                       scene.surface_pose, 8, 8, "x"),
               std::invalid_argument);
}

TEST(Facade, DatasheetInstallWorkflow) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(4);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const auto install_result = os.install_from_datasheet(
      "model: Acme\nfrequency: 28 GHz\nmode: reflective\n"
      "reconfigurable: yes\nelements: 12x12\nmystery: value\n",
      scene.surface_pose, "acme0");
  ASSERT_TRUE(install_result.ok());
  const InstallReport& install = install_result.value();
  EXPECT_EQ(install.device_id, "acme0");
  EXPECT_EQ(install.warnings.size(), 1u);  // the mystery key
  os.register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});
  const orch::TaskId task =
      os.orchestrator().enhance_link({"laptop", 10.0, 50.0});
  os.step();
  EXPECT_TRUE(os.orchestrator().find_task(task)->goal_met);
  const auto bad = os.install_from_datasheet("nonsense", scene.surface_pose,
                                             "x");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kParseError);
}

TEST(Integration, HybridRelayDeliversBedroomCoverage) {
  // The Fig-4 structure at test scale: passive backhaul in the living room,
  // programmable steering surface in the bedroom.
  sim::ApartmentScenario scene = sim::make_apartment(4);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const surface::Catalog catalog = surface::Catalog::standard();

  // Passive transmissive surface in the wall window (PMSat is a transmissive
  // design), installed blank: the orchestrator's first optimization cycle
  // performs the one-time fabrication write.
  const surface::CatalogEntry* passive_design = catalog.find("PMSat");
  ASSERT_NE(passive_design, nullptr);
  os.install_passive(*passive_design, scene.window_mount, 32, 32, "backhaul");
  os.install_programmable(*catalog.find("NR-Surface"), scene.bedroom_mount, 14,
                          14, "steer");

  // Baseline: without surfaces the bedroom is dead (concrete wall).
  double baseline_median;
  {
    const sim::SceneChannel direct(scene.environment.get(),
                                   em::band_center(scene.band), scene.ap(), {},
                                   scene.bedroom_grid.points());
    std::vector<double> snr;
    for (std::size_t j = 0; j < direct.rx_count(); ++j) {
      snr.push_back(scene.budget.snr_db(std::norm(direct.direct(j))));
    }
    std::sort(snr.begin(), snr.end());
    baseline_median = snr[snr.size() / 2];
  }

  orch::CoverageGoal goal;
  goal.region_id = "bedroom";
  goal.region = scene.bedroom_grid;
  goal.target_median_snr_db = baseline_median + 6.0;
  const orch::TaskId task = os.orchestrator().optimize_coverage(goal);
  os.step();
  const orch::Task* t = os.orchestrator().find_task(task);
  ASSERT_TRUE(t->achieved.has_value());
  // The surfaces lift the room well above its no-coverage baseline, and the
  // passive window got fabricated exactly once in the process.
  EXPECT_GT(*t->achieved, baseline_median + 6.0);
  const auto* backhaul = dynamic_cast<const hal::PassiveSurfaceDriver*>(
      os.registry().find_surface("backhaul"));
  ASSERT_NE(backhaul, nullptr);
  EXPECT_TRUE(backhaul->fabricated());
}

TEST(Integration, JointMultitaskingPreservesBothServices) {
  // Fig 2 / Fig 5 at test scale: coverage-only optimization degrades
  // localization; joint optimization keeps both usable.
  sim::CoverageRoomScenario scene = sim::make_coverage_room(4);
  const double freq = em::band_center(scene.band);
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(freq) / 2.0;
  const surface::SurfacePanel panel(
      "wall", scene.surface_pose, 12, 12, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);

  sim::SceneChannel channel(scene.environment.get(), freq, scene.ap(),
                            {&panel}, scene.room_grid.points());
  orch::PanelVariables vars({&panel});
  std::vector<std::size_t> all_rx(channel.rx_count());
  for (std::size_t i = 0; i < all_rx.size(); ++i) all_rx[i] = i;
  const double rho = scene.budget.snr(1.0);

  const orch::CapacityObjective coverage(&channel, &vars, all_rx, rho);
  const orch::LocalizationObjective localization(&channel, &vars, 0, all_rx,
                                                 61);
  opt::WeightedSumObjective joint;
  joint.add_term(&coverage, 1.0);
  joint.add_term(&localization, 1.0);

  const opt::GradientDescent optimizer;
  const auto x0 = vars.from_configs(std::vector<surface::SurfaceConfig>{
      panel.focus_config(scene.ap_position,
                         scene.room_grid.point(scene.room_grid.size() / 2),
                         freq)});
  const auto cov_only = optimizer.minimize(coverage, x0);
  const auto joint_result = optimizer.minimize(joint, x0);

  const auto metrics_of = [&](const std::vector<double>& x) {
    const auto configs = vars.realize(x);
    return std::make_pair(
        orch::coverage_metrics(channel, scene.budget, configs, all_rx),
        orch::sensing_metrics(channel, configs, 0, all_rx, 61));
  };
  const auto [cov_snr, cov_sense] = metrics_of(cov_only.x);
  const auto [joint_snr, joint_sense] = metrics_of(joint_result.x);

  // Joint optimization trades a little SNR for much better localization.
  EXPECT_LT(joint_sense.median_error_m, cov_sense.median_error_m);
  EXPECT_GT(joint_snr.median_snr_db, cov_snr.median_snr_db - 6.0);
}

TEST(Integration, LossyControlLinkDegradesGracefully) {
  // Failure injection: a driver behind a 100%-corrupting link never applies
  // configs, but the orchestrator still completes its loop and reports
  // unmet goals instead of crashing.
  sim::CoverageRoomScenario scene = sim::make_coverage_room(4);
  hal::SimClock clock;
  hal::DeviceRegistry registry;
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(em::band_center(scene.band)) / 2.0;
  const surface::SurfacePanel panel(
      "wall", scene.surface_pose, 10, 10, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  hal::LinkOptions broken;
  broken.corrupt_probability = 1.0;
  registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
      "wall", &panel, hal::spec_for_panel(panel, scene.band), &clock, broken));
  registry.add_endpoint({"laptop", hal::EndpointKind::kClient,
                         {1.2, 2.4, 1.0}, scene.band, std::nullopt});
  orch::OrchestratorContext context;
  context.environment = scene.environment.get();
  context.ap = scene.ap();
  context.default_band = scene.band;
  context.budget = scene.budget;
  orch::Orchestrator orchestrator(&registry, &clock, context);
  const orch::TaskId id = orchestrator.enhance_link({"laptop", 20.0, 50.0});
  const auto report = orchestrator.step();
  EXPECT_EQ(report.assignment_count, 1u);
  const orch::Task* task = orchestrator.find_task(id);
  ASSERT_TRUE(task->achieved.has_value());
  // Hardware never left the uniform config, so the target is not met.
  EXPECT_FALSE(task->goal_met);
  const auto* driver = dynamic_cast<const hal::ProgrammableSurfaceDriver*>(
      registry.find_surface("wall"));
  EXPECT_EQ(driver->frames_applied(), 0u);
  EXPECT_GT(driver->frames_rejected(), 0u);
}

TEST(Integration, FleetManagesMultipleSites) {
  // Two independent environments under one fleet: requests route to the
  // right site, steps aggregate, inventory spans both.
  sim::CoverageRoomScenario home = sim::make_coverage_room(4);
  sim::ApartmentScenario office = sim::make_apartment(4);
  const surface::Catalog catalog = surface::Catalog::standard();

  Fleet fleet;
  {
    auto os = std::make_unique<SurfOS>(home.environment.get(), home.ap(),
                                       home.band, home.budget);
    os->install_programmable(*catalog.find("NR-Surface"), home.surface_pose,
                             12, 12, "home-wall");
    os->register_endpoint("laptop", hal::EndpointKind::kClient,
                          {1.2, 2.4, 1.0});
    os->broker().add_region("this_room",
                            geom::SampleGrid(0.8, 2.8, 0.5, 2.5, 1.0, 3, 3));
    fleet.add_site("home", std::move(os));
  }
  {
    auto os = std::make_unique<SurfOS>(office.environment.get(), office.ap(),
                                       office.band, office.budget);
    os->install_programmable(*catalog.find("mmWall"), office.window_mount, 12,
                             12, "office-window");
    os->register_endpoint("phone", hal::EndpointKind::kClient,
                          {2.0, 5.0, 1.0});
    fleet.add_site("office", std::move(os));
  }
  EXPECT_EQ(fleet.size(), 2u);
  EXPECT_THROW(fleet.add_site("home", nullptr), std::invalid_argument);
  EXPECT_THROW(fleet.site("warehouse"), std::invalid_argument);

  // Route requests to each site.
  const auto home_result =
      fleet.handle_utterance("home", "stream a movie on my laptop");
  EXPECT_TRUE(home_result.understood);
  fleet.site("office").orchestrator().init_powering({"phone", 3600.0, -80.0});

  const FleetReport report = fleet.step_all();
  EXPECT_EQ(report.sites.size(), 2u);
  EXPECT_GE(report.total_assignments, 2u);

  const FleetInventory inventory = fleet.inventory();
  EXPECT_EQ(inventory.sites, 2u);
  EXPECT_EQ(inventory.surfaces, 2u);
  EXPECT_EQ(inventory.endpoints, 2u);
  EXPECT_GE(inventory.active_tasks, 2u);
}

TEST(Integration, MultiServiceDayInTheLife) {
  // Broker-driven: three apps arrive, run, and stop; the system stays
  // consistent throughout.
  sim::CoverageRoomScenario scene = sim::make_coverage_room(4);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const surface::Catalog catalog = surface::Catalog::standard();
  os.install_programmable(*catalog.find("NR-Surface"), scene.surface_pose, 16,
                          16, "s0");
  os.register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});
  os.register_endpoint("phone", hal::EndpointKind::kClient, {2.2, 1.2, 1.0});
  os.broker().add_region("this_room",
                         geom::SampleGrid(0.8, 2.8, 0.5, 2.5, 1.0, 3, 3));

  ASSERT_TRUE(os.broker()
                  .start_app("meet", broker::demand_profile(
                                         broker::AppClass::kVideoConference,
                                         "laptop"))
                  .ok());
  ASSERT_TRUE(os.broker()
                  .start_app("charge", broker::demand_profile(
                                           broker::AppClass::kWirelessCharging,
                                           "phone"))
                  .ok());
  ASSERT_TRUE(os.broker()
                  .start_app("home",
                             broker::demand_profile(broker::AppClass::kSmartHome,
                                                    "", "this_room"))
                  .ok());
  os.step();
  EXPECT_TRUE(os.broker().status("meet").satisfied);
  EXPECT_EQ(os.broker().sessions().size(), 3u);

  EXPECT_TRUE(os.broker().stop_app("meet").ok());
  EXPECT_TRUE(os.broker().stop_app("charge").ok());
  EXPECT_TRUE(os.broker().stop_app("home").ok());
  const auto report = os.step();
  EXPECT_EQ(report.assignment_count, 0u);
}

}  // namespace
}  // namespace surfos
