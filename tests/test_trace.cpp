// Tracing subsystem: deterministic trace ids, ambient context propagation
// (including across thread-pool workers), the flight recorder's ring
// semantics, both exporters, crash dumps, and the end-to-end causal chain
// intent -> broker.translate -> orch.schedule -> optimizer -> hal config
// write that the observability story promises.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/surfos.hpp"
#include "sim/floorplan.hpp"
#include "surface/catalog.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace surfos {
namespace {

using telemetry::Recorder;
using telemetry::TraceContext;
using telemetry::TraceEvent;

/// Every test starts with tracing ON and an empty ring, and restores the
/// default (off) plus an empty ring for whoever runs next in this binary.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(true);
    telemetry::set_trace_enabled(true);
    Recorder::instance().clear();
  }
  void TearDown() override {
    telemetry::set_trace_enabled(false);
    Recorder::instance().clear();
    telemetry::MetricsRegistry::instance().reset();
    util::reset_global_pool(0);
  }

  static std::vector<TraceEvent> events_named(const char* name) {
    std::vector<TraceEvent> out;
    for (const TraceEvent& event : Recorder::instance().events()) {
      if (std::string(event.name) == name) out.push_back(event);
    }
    return out;
  }
};

TEST_F(TraceTest, TraceIdsAreDeterministicAndNonZero) {
  const std::uint64_t domain = telemetry::trace_domain("broker.intent");
  EXPECT_EQ(domain, telemetry::trace_domain("broker.intent"));
  EXPECT_NE(domain, telemetry::trace_domain("orch.task"));
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    const telemetry::TraceId id = telemetry::make_trace_id(domain, seq);
    EXPECT_NE(id, 0u);
    EXPECT_EQ(id, telemetry::make_trace_id(domain, seq));
    EXPECT_NE(id, telemetry::make_trace_id(domain, seq + 1));
    EXPECT_NE(id,
              telemetry::make_trace_id(telemetry::trace_domain("orch.task"),
                                       seq));
  }
}

TEST_F(TraceTest, TraceScopeInstallsEvenWhileTracingOff) {
  // The determinism contract: ambient ids are identical whether or not
  // SURFOS_TRACE is on, so ids derived from them never depend on the switch.
  telemetry::set_trace_enabled(false);
  EXPECT_FALSE(telemetry::current_trace().valid());
  const TraceContext context{0xabcdu, 7u};
  {
    telemetry::TraceScope scope(context);
    EXPECT_EQ(telemetry::current_trace(), context);
    {
      telemetry::TraceScope inner(TraceContext{0x1234u, 0u});
      EXPECT_EQ(telemetry::current_trace().trace_id, 0x1234u);
    }
    EXPECT_EQ(telemetry::current_trace(), context);
  }
  EXPECT_FALSE(telemetry::current_trace().valid());
  EXPECT_TRUE(Recorder::instance().events().empty());
}

TEST_F(TraceTest, TraceSpanRecordsNestedEventsWithParents) {
  const TraceContext root{telemetry::make_trace_id(1, 1), 0};
  {
    telemetry::TraceScope scope(root);
    telemetry::TraceSpan outer("test.trace.outer");
    EXPECT_EQ(outer.context().trace_id, root.trace_id);
    EXPECT_NE(outer.context().span_id, 0u);
    {
      telemetry::TraceSpan inner("test.trace.inner");
      EXPECT_EQ(inner.context().trace_id, root.trace_id);
      SURFOS_TRACE_INSTANT("test.trace.mark");
    }
  }
  const auto outer_events = events_named("test.trace.outer");
  const auto inner_events = events_named("test.trace.inner");
  const auto marks = events_named("test.trace.mark");
  ASSERT_EQ(outer_events.size(), 1u);
  ASSERT_EQ(inner_events.size(), 1u);
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(outer_events[0].trace_id, root.trace_id);
  EXPECT_EQ(outer_events[0].parent_span_id, 0u);
  EXPECT_EQ(outer_events[0].kind, TraceEvent::Kind::kSpan);
  // inner nests under outer; the instant nests under inner.
  EXPECT_EQ(inner_events[0].parent_span_id, outer_events[0].span_id);
  EXPECT_EQ(marks[0].parent_span_id, inner_events[0].span_id);
  EXPECT_EQ(marks[0].kind, TraceEvent::Kind::kInstant);
  EXPECT_EQ(marks[0].dur_ns, 0u);
  // Span end >= inner end >= mark.
  EXPECT_GE(outer_events[0].ts_ns + outer_events[0].dur_ns,
            inner_events[0].ts_ns + inner_events[0].dur_ns);
}

TEST_F(TraceTest, TraceSpanSharesHistogramWithPlainSpan) {
  // Upgrading SURFOS_SPAN -> SURFOS_TRACE_SPAN must not change histogram
  // counts: both record into the same-named latency histogram.
  telemetry::MetricsRegistry::instance().reset();
  { telemetry::Span span("test.trace.histogram"); }
  { telemetry::TraceSpan span("test.trace.histogram"); }
  for (const auto& hist :
       telemetry::MetricsRegistry::instance().snapshot().histograms) {
    if (hist.name == "test.trace.histogram") {
      EXPECT_EQ(hist.count, 2u);
      return;
    }
  }
  FAIL() << "histogram not found";
}

TEST_F(TraceTest, TracingOffRecordsNothing) {
  telemetry::set_trace_enabled(false);
  {
    telemetry::TraceScope scope(TraceContext{123u, 0u});
    telemetry::TraceSpan span("test.trace.muted");
    SURFOS_TRACE_INSTANT("test.trace.muted_mark");
    EXPECT_FALSE(span.context().valid());  // no span id consumed
  }
  EXPECT_TRUE(Recorder::instance().events().empty());
  EXPECT_EQ(Recorder::instance().recorded(), 0u);
}

TEST_F(TraceTest, RingBufferKeepsNewestAndCountsDrops) {
  Recorder recorder(/*capacity=*/64, /*stripes=*/1);
  for (std::uint64_t i = 0; i < 200; ++i) {
    TraceEvent event;
    event.name = "ring";
    event.trace_id = 1;
    event.span_id = i + 1;
    event.ts_ns = i;
    recorder.record(event);
  }
  EXPECT_EQ(recorder.capacity(), 64u);
  EXPECT_EQ(recorder.recorded(), 200u);
  EXPECT_EQ(recorder.dropped(), 136u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 64u);
  // Flight-recorder semantics: the newest events survive, oldest are gone.
  EXPECT_EQ(events.front().ts_ns, 136u);
  EXPECT_EQ(events.back().ts_ns, 199u);

  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST_F(TraceTest, BufferCapacityRespectsEnvKnob) {
  // SURFOS_TRACE_BUFFER is read once for the global instance; direct
  // construction uses the same clamping rules (>= 64, stripe-rounded).
  Recorder tiny(/*capacity=*/1, /*stripes=*/8);
  EXPECT_GE(tiny.capacity(), 8u);
  EXPECT_EQ(tiny.capacity() % 8, 0u);
}

TEST_F(TraceTest, ThreadPoolWorkersInheritAmbientContext) {
  util::reset_global_pool(4);
  const TraceContext root{telemetry::make_trace_id(2, 9), 0};
  {
    telemetry::TraceScope scope(root);
    // Each iteration sleeps so the submitting thread cannot drain every
    // chunk before the workers wake, even on a single-core machine.
    util::parallel_for(0, 64, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      SURFOS_TRACE_INSTANT("test.trace.worker_mark");
    });
  }
  const auto marks = events_named("test.trace.worker_mark");
  ASSERT_EQ(marks.size(), 64u);
  std::set<std::uint32_t> threads;
  for (const TraceEvent& mark : marks) {
    EXPECT_EQ(mark.trace_id, root.trace_id) << "worker lost the trace id";
    threads.insert(mark.thread_index);
  }
  // The loop really ran on more than the submitting thread.
  EXPECT_GT(threads.size(), 1u);
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  {
    telemetry::TraceScope scope(TraceContext{telemetry::make_trace_id(3, 3), 0});
    telemetry::TraceSpan span("test.trace.json_span");
    SURFOS_TRACE_INSTANT("test.trace.json_mark");
  }
  const std::string json = telemetry::chrome_trace_json();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"test.trace.json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":\"0x"), std::string::npos);
  // Balanced document (cheap structural sanity without a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.back(), '\n');

  const std::string table = telemetry::trace_table();
  EXPECT_NE(table.find("test.trace.json_span"), std::string::npos);
  EXPECT_NE(table.find("test.trace.json_mark"), std::string::npos);
  EXPECT_NE(table.find("[i]"), std::string::npos);
}

TEST_F(TraceTest, DumpWritesLoadableFile) {
  { telemetry::TraceSpan span("test.trace.dump_span"); }
  const std::string path = ::testing::TempDir() + "surfos_trace_dump.json";
  ASSERT_TRUE(Recorder::instance().dump(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(buffer.str().find("test.trace.dump_span"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(Recorder::instance().dump("/nonexistent-dir/x/y.json"));
}

TEST_F(TraceTest, CrashHandlerDumpsRingBeforeDying) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = ::testing::TempDir() + "surfos_crash_dump.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        telemetry::set_trace_enabled(true);
        Recorder::install_crash_handlers(path);
        { telemetry::TraceSpan span("test.trace.pre_crash"); }
        std::abort();
      },
      "");
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler did not write " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(buffer.str().find("test.trace.pre_crash"), std::string::npos);
  std::remove(path.c_str());
}

// --- End-to-end causal chain -------------------------------------------------

/// Full-stack scenario under tracing: one utterance-admitted intent plus one
/// direct service call, then a control-plane step.
orch::StepReport traced_scenario(SurfOS& os) {
  os.broker().handle_utterance("stream a movie on my laptop");
  os.orchestrator().enhance_link({"laptop", 10.0, 50.0});
  return os.step();
}

std::unique_ptr<SurfOS> make_os(const sim::CoverageRoomScenario& scene) {
  auto os = std::make_unique<SurfOS>(scene.environment.get(), scene.ap(),
                                     scene.band, scene.budget);
  const surface::Catalog catalog = surface::Catalog::standard();
  os->install_programmable(*catalog.find("NR-Surface"), scene.surface_pose, 10,
                           10, "wall");
  os->register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});
  return os;
}

TEST_F(TraceTest, EndToEndCausalChainSharesOneTraceId) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(/*grid_n=*/4);
  auto os = make_os(scene);
  const orch::StepReport report = traced_scenario(*os);
  ASSERT_FALSE(report.trace.trace_ids.empty());

  // The utterance-admitted task carries the broker's intent trace id; the
  // directly-admitted one minted its own from the task id. Both are valid
  // and distinct.
  std::set<telemetry::TraceId> task_traces;
  for (const auto* task : os->orchestrator().tasks()) {
    EXPECT_TRUE(task->trace.valid());
    task_traces.insert(task->trace.trace_id);
  }
  EXPECT_GE(task_traces.size(), 2u);

  // Acceptance criterion: one intent's id links the whole chain
  // broker.translate -> orch.schedule.assign -> orch.step.optimize ->
  // opt.objective.* -> hal.driver.write_config in the recorded events.
  const auto translate = events_named("broker.translate");
  ASSERT_EQ(translate.size(), 1u);
  const telemetry::TraceId intent = translate[0].trace_id;
  EXPECT_TRUE(task_traces.count(intent));
  for (const char* stage :
       {"orch.schedule.assign", "orch.step.optimize", "opt.minimize",
        "sim.channel.precompute", "hal.driver.write_config"}) {
    bool found = false;
    for (const TraceEvent& event : events_named(stage)) {
      if (event.trace_id == intent) found = true;
    }
    EXPECT_TRUE(found) << stage << " missing an event with the intent's id";
  }
  // The per-assignment ids surfaced in the report all belong to known tasks.
  for (const telemetry::TraceId id : report.trace.trace_ids) {
    EXPECT_TRUE(task_traces.count(id));
  }
}

TEST_F(TraceTest, StepReportTraceIdsIdenticalAcrossTraceModes) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(/*grid_n=*/4);

  telemetry::set_trace_enabled(true);
  auto os_on = make_os(scene);
  const orch::StepReport on = traced_scenario(*os_on);

  telemetry::set_trace_enabled(false);
  auto os_off = make_os(scene);
  const orch::StepReport off = traced_scenario(*os_off);

  ASSERT_FALSE(on.trace.trace_ids.empty());
  EXPECT_EQ(on.trace.trace_ids, off.trace.trace_ids);
  EXPECT_EQ(on.assignment_count, off.assignment_count);
  // And the handles agree.
  const auto handle_on =
      os_on->orchestrator().enhance_link({"laptop", 10.0, 50.0});
  const auto handle_off =
      os_off->orchestrator().enhance_link({"laptop", 10.0, 50.0});
  EXPECT_EQ(handle_on.trace().trace_id, handle_off.trace().trace_id);
  EXPECT_TRUE(handle_on.trace().valid());
}

TEST_F(TraceTest, EscalationKeepsTheIntentTraceId) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(/*grid_n=*/4);
  auto os = make_os(scene);
  // An unreachable SNR target so the goal stays unmet and escalation fires.
  broker::AppDemand demand;
  demand.app_class = broker::AppClass::kVideoStreaming;
  demand.endpoint_id = "laptop";
  demand.throughput_mbps = 1e9;  // impossible -> unsatisfied
  ASSERT_TRUE(os->broker().start_app("stubborn", demand).ok());
  os->step();

  const auto& session = os->broker().sessions().at("stubborn");
  ASSERT_FALSE(session.tasks.empty());
  const orch::Task* before = os->orchestrator().find_task(session.tasks[0]);
  ASSERT_NE(before, nullptr);
  const telemetry::TraceId intent = before->trace.trace_id;

  if (os->broker().escalate_unsatisfied() > 0) {
    const auto& bumped = os->broker().sessions().at("stubborn");
    const orch::Task* after = os->orchestrator().find_task(bumped.tasks[0]);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->trace.trace_id, intent)
        << "escalated replacement task lost the intent's trace";
  }
}

}  // namespace
}  // namespace surfos
