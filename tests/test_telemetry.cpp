// Telemetry subsystem: instrument semantics, span nesting, exporters, the
// SURFOS_TELEMETRY switch, and the two contracts the rest of the system
// relies on — counter snapshots bit-identical under any SURFOS_THREADS, and
// disabled-mode StepReports identical to enabled-mode ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/surfos.hpp"
#include "sim/floorplan.hpp"
#include "sim/precompute_store.hpp"
#include "surface/catalog.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeseries.hpp"
#include "util/thread_pool.hpp"

namespace surfos {
namespace {

using telemetry::MetricsRegistry;

/// Every test starts from a zeroed registry with telemetry on, and leaves
/// the switch on for whoever runs next in this binary.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    telemetry::set_enabled(true);
    MetricsRegistry::instance().reset();
  }
};

TEST_F(TelemetryTest, CounterBasics) {
  auto& registry = MetricsRegistry::instance();
  telemetry::Counter& counter = registry.counter("test.counter");
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  EXPECT_TRUE(counter.deterministic());

  // Find-or-create: same name yields the same instrument; the deterministic
  // flag is fixed at first registration.
  EXPECT_EQ(&registry.counter("test.counter", false), &counter);
  EXPECT_TRUE(registry.counter("test.counter").deterministic());

  registry.reset();
  EXPECT_EQ(counter.value(), 0u);  // cached reference survives reset
}

TEST_F(TelemetryTest, GaugeBasics) {
  telemetry::Gauge& gauge = MetricsRegistry::instance().gauge("test.gauge");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  EXPECT_EQ(gauge.value(), 3.5);
  gauge.set(-1.0);
  EXPECT_EQ(gauge.value(), -1.0);
}

TEST_F(TelemetryTest, HistogramBucketsAndOverflow) {
  telemetry::Histogram& hist = MetricsRegistry::instance().histogram(
      "test.hist", std::vector<double>{1.0, 10.0, 100.0});
  hist.record(0.5);    // bucket 0 (<= 1)
  hist.record(1.0);    // bucket 0 (inclusive upper edge)
  hist.record(7.0);    // bucket 1
  hist.record(1e6);    // overflow
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 7.0 + 1e6);
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);

  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0.0);
}

TEST_F(TelemetryTest, SnapshotIsSortedByName) {
  auto& registry = MetricsRegistry::instance();
  // Registered out of order; the snapshot comes back name-sorted. (The
  // registry may hold registrations from earlier tests in this binary —
  // reset() zeroes but never removes — so check ordering, not exact size.)
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.counter("m.middle").add(3);
  const telemetry::Snapshot snap = registry.snapshot();
  std::vector<std::string> names;
  for (const auto& counter : snap.counters) names.push_back(counter.name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected : {"a.first", "m.middle", "z.last"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
  }
}

TEST_F(TelemetryTest, FingerprintExcludesSchedulingDependentCounters) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("det.events").add(7);
  registry.counter("sched.chunks", /*deterministic=*/false).add(13);
  const std::string fingerprint = registry.counters_fingerprint();
  EXPECT_NE(fingerprint.find("det.events=7"), std::string::npos);
  EXPECT_EQ(fingerprint.find("sched.chunks"), std::string::npos);
}

TEST_F(TelemetryTest, SpanNestsAndRecordsIntoHistogram) {
  EXPECT_EQ(telemetry::Span::current(), nullptr);
  EXPECT_EQ(telemetry::Span::depth(), 0u);
  {
    telemetry::Span outer("test.span.outer");
    EXPECT_TRUE(outer.active());
    EXPECT_EQ(telemetry::Span::current(), &outer);
    EXPECT_EQ(telemetry::Span::depth(), 1u);
    EXPECT_EQ(outer.parent(), nullptr);
    {
      telemetry::Span inner("test.span.inner");
      EXPECT_EQ(inner.parent(), &outer);
      EXPECT_EQ(telemetry::Span::current(), &inner);
      EXPECT_EQ(telemetry::Span::depth(), 2u);
      EXPECT_GE(inner.elapsed_us(), 0.0);
    }
    EXPECT_EQ(telemetry::Span::current(), &outer);
  }
  EXPECT_EQ(telemetry::Span::depth(), 0u);
  const telemetry::Snapshot snap = MetricsRegistry::instance().snapshot();
  bool outer_seen = false;
  bool inner_seen = false;
  for (const auto& hist : snap.histograms) {
    if (hist.name == "test.span.outer") {
      outer_seen = true;
      EXPECT_EQ(hist.count, 1u);
    }
    if (hist.name == "test.span.inner") {
      inner_seen = true;
      EXPECT_EQ(hist.count, 1u);
    }
  }
  EXPECT_TRUE(outer_seen);
  EXPECT_TRUE(inner_seen);
}

TEST_F(TelemetryTest, DisabledModeIsInert) {
  telemetry::set_enabled(false);
  EXPECT_FALSE(telemetry::enabled());
  SURFOS_COUNT("test.disabled.counter");
  SURFOS_GAUGE_SET("test.disabled.gauge", 5.0);
  {
    telemetry::Span span("test.disabled.span");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.elapsed_us(), 0.0);
    EXPECT_EQ(telemetry::Span::current(), nullptr);
  }
  telemetry::set_enabled(true);
  const telemetry::Snapshot snap = MetricsRegistry::instance().snapshot();
  for (const auto& counter : snap.counters) {
    EXPECT_NE(counter.name, "test.disabled.counter");
  }
  for (const auto& gauge : snap.gauges) {
    EXPECT_NE(gauge.name, "test.disabled.gauge");
  }
  for (const auto& hist : snap.histograms) {
    EXPECT_NE(hist.name, "test.disabled.span");
  }
}

/// Minimal JSON string unescaper (enough for what append_json_string emits)
/// so the hostile-name test below can check a true round trip.
std::string json_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        out += static_cast<char>(std::stoi(s.substr(i + 1, 4), nullptr, 16));
        i += 4;
        break;
      }
      default: out += s[i]; break;
    }
  }
  return out;
}

TEST_F(TelemetryTest, JsonExportEscapesHostileNames) {
  // Quotes, backslashes, newlines, and raw control bytes in instrument names
  // must not be able to break the exported JSON.
  const std::string hostile = "evil\"name\\with\nnewline\ttab\x01" "ctl";
  MetricsRegistry::instance().counter(hostile).add(3);
  const std::string json = telemetry::snapshot_json();

  // No raw control characters survive in the document.
  for (const char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  const std::string escaped =
      "\"evil\\\"name\\\\with\\nnewline\\ttab\\u0001ctl\"";
  const std::size_t pos = json.find(escaped);
  ASSERT_NE(pos, std::string::npos) << json;
  // Round trip: unescaping the emitted key recovers the original name.
  EXPECT_EQ(json_unescape(escaped.substr(1, escaped.size() - 2)), hostile);

  // The string-level helper agrees on a pure control-character torture case.
  std::ostringstream oss;
  telemetry::append_json_string(oss, std::string_view("\x02\x1f\x7f"));
  EXPECT_EQ(oss.str(), "\"\\u0002\\u001f\x7f\"");  // 0x7f is legal raw JSON
}

TEST_F(TelemetryTest, JsonAndTableExports) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("export.events").add(5);
  registry.gauge("export.level").set(2.5);
  registry.histogram("export.lat", std::vector<double>{10.0}).record(3.0);

  const std::string json = telemetry::snapshot_json();
  EXPECT_NE(json.find("\"export.events\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":5"), std::string::npos);
  EXPECT_NE(json.find("\"deterministic\":true"), std::string::npos);
  EXPECT_NE(json.find("\"export.level\""), std::string::npos);
  EXPECT_NE(json.find("\"export.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);

  const std::string table = telemetry::snapshot_table();
  EXPECT_NE(table.find("export.events"), std::string::npos);
  EXPECT_NE(table.find("export.level"), std::string::npos);
  EXPECT_NE(table.find("export.lat"), std::string::npos);
}

TEST_F(TelemetryTest, JsonExportMapsNonFiniteValuesToNull) {
  auto& registry = MetricsRegistry::instance();
  registry.gauge("bad.nn").set(std::numeric_limits<double>::quiet_NaN());
  registry.gauge("bad.pos").set(std::numeric_limits<double>::infinity());
  registry.gauge("bad.neg").set(-std::numeric_limits<double>::infinity());
  registry.gauge("good.value").set(1.5);
  registry.histogram("bad.hist", std::vector<double>{1.0})
      .record(std::numeric_limits<double>::infinity());  // poisons the sum

  const std::string json = telemetry::snapshot_json();
  // JSON has no nan/inf literals; emitting them would make the whole
  // document unparseable. Every non-finite value must become null.
  for (const char* forbidden : {"nan", "inf", "NaN", "Infinity"}) {
    EXPECT_EQ(json.find(forbidden), std::string::npos) << forbidden;
  }
  EXPECT_NE(json.find("\"bad.nn\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bad.pos\":null"), std::string::npos);
  EXPECT_NE(json.find("\"bad.neg\":null"), std::string::npos);
  EXPECT_NE(json.find("\"good.value\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":null"), std::string::npos);
  // The poisoned histogram's overflow bucket bound also renders as null.
  EXPECT_NE(json.find("[null,1]"), std::string::npos);

  // Round trip: the document stays structurally valid JSON — balanced
  // braces/brackets outside strings from start to finish.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// --- Timeseries --------------------------------------------------------------

telemetry::Snapshot two_counter_snapshot(std::uint64_t a, std::uint64_t b,
                                         double gauge) {
  telemetry::Snapshot snap;
  snap.counters.push_back({"ts.a", a, true});
  snap.counters.push_back({"ts.b", b, true});
  snap.gauges.push_back({"ts.g", gauge});
  return snap;
}

TEST_F(TelemetryTest, TimeseriesDeltaEncodesOnlyChanges) {
  telemetry::Timeseries series(8);
  EXPECT_FALSE(series.delta_since(0).has_value());  // nothing recorded

  series.record(1, two_counter_snapshot(1, 5, 0.5), 2.0, 10.0);
  series.record(2, two_counter_snapshot(3, 5, 0.5), 3.0, 20.0);

  // Anchor 0: full baseline with everything.
  const auto baseline = series.delta_since(0);
  ASSERT_TRUE(baseline.has_value());
  EXPECT_TRUE(baseline->baseline);
  EXPECT_EQ(baseline->to_epoch, 2u);
  EXPECT_EQ(baseline->counters.size(), 2u);
  EXPECT_EQ(baseline->gauges.size(), 1u);

  // Anchor 1: only ts.a changed; the steady counter and gauge are elided.
  const auto delta = series.delta_since(1);
  ASSERT_TRUE(delta.has_value());
  EXPECT_FALSE(delta->baseline);
  EXPECT_EQ(delta->from_epoch, 1u);
  ASSERT_EQ(delta->counters.size(), 1u);
  EXPECT_EQ(delta->counters[0].name, "ts.a");
  EXPECT_EQ(delta->counters[0].value, 3u);
  EXPECT_TRUE(delta->gauges.empty());
  EXPECT_DOUBLE_EQ(delta->epoch_ms, 3.0);

  // A gauge change by bit pattern is a change — including from NaN.
  series.record(3, two_counter_snapshot(3, 5, 0.75), 1.0, 0.0);
  const auto gauge_delta = series.delta_since(2);
  ASSERT_TRUE(gauge_delta.has_value());
  EXPECT_TRUE(gauge_delta->counters.empty());
  ASSERT_EQ(gauge_delta->gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(gauge_delta->gauges[0].value, 0.75);

  // An evicted anchor degrades to a baseline, never a wrong delta.
  for (std::uint64_t epoch = 4; epoch <= 12; ++epoch) {
    series.record(epoch, two_counter_snapshot(epoch, 5, 0.75), 1.0, 0.0);
  }
  EXPECT_EQ(series.size(), 8u);  // ring capacity
  const auto evicted = series.delta_since(2);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(evicted->baseline);
  EXPECT_EQ(series.find(2), nullptr);
  EXPECT_NE(series.find(12), nullptr);
}

TEST_F(TelemetryTest, MergeableHistogramMergesBucketwise) {
  telemetry::MergeableHistogram a(std::vector<double>{1.0, 10.0});
  telemetry::MergeableHistogram b(std::vector<double>{1.0, 10.0});
  a.record(0.5);
  a.record(5.0);
  b.record(5.0);
  b.record(100.0);  // overflow bucket

  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count, 4u);
  EXPECT_DOUBLE_EQ(a.sum, 0.5 + 5.0 + 5.0 + 100.0);
  ASSERT_EQ(a.buckets.size(), 3u);
  EXPECT_EQ(a.buckets[0], 1u);
  EXPECT_EQ(a.buckets[1], 2u);
  EXPECT_EQ(a.buckets[2], 1u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 10.0);  // 2nd sample falls in (1,10]

  // Mismatched bounds refuse to merge rather than corrupt.
  telemetry::MergeableHistogram c(std::vector<double>{2.0});
  EXPECT_FALSE(a.merge(c));
  EXPECT_EQ(a.count, 4u);
}

// --- Recorder pagination under wraparound ------------------------------------

TEST_F(TelemetryTest, EventsAfterSurvivesRingWraparoundMidStream) {
  telemetry::Recorder recorder(/*capacity=*/64, /*stripes=*/1);
  const auto record_span = [&recorder](std::uint64_t i) {
    telemetry::TraceEvent event;
    event.trace_id = 0x7000 + i;
    event.span_id = i;
    event.name = "wrap.span";
    event.ts_ns = i * 1000;
    event.dur_ns = 10;
    recorder.record(event);
  };

  for (std::uint64_t i = 1; i <= 48; ++i) record_span(i);

  // First page of 16 from a zero cursor.
  auto sorted = recorder.events();
  auto page = telemetry::events_after(sorted, 0, 0, 16);
  ASSERT_EQ(page.size(), 16u);
  std::set<std::uint64_t> delivered;
  for (const auto& event : page) delivered.insert(event.span_id);
  std::uint64_t cursor_ts = page.back().ts_ns;
  std::uint64_t cursor_span = page.back().span_id;
  EXPECT_EQ(cursor_span, 16u);

  // The ring wraps mid-stream: 40 more events evict spans 1..24 — of which
  // 17..24 were never delivered. Exact accounting: the recorder knows it
  // overwrote 24, and the cursor skips the evicted gap without ever
  // duplicating or tearing an event.
  for (std::uint64_t i = 49; i <= 88; ++i) record_span(i);
  EXPECT_EQ(recorder.dropped(), 24u);

  bool done = false;
  while (!done) {
    sorted = recorder.events();
    page = telemetry::events_after(sorted, cursor_ts, cursor_span, 16);
    done = page.size() < 16;
    for (const auto& event : page) {
      EXPECT_TRUE(delivered.insert(event.span_id).second)
          << "duplicate span " << event.span_id;
      EXPECT_EQ(event.dur_ns, 10u);  // never torn
    }
    if (!page.empty()) {
      cursor_ts = page.back().ts_ns;
      cursor_span = page.back().span_id;
    }
  }

  // Delivered = the first page + everything that survived the wrap; the
  // evicted-but-never-delivered gap is exactly spans 17..24.
  EXPECT_EQ(delivered.size(), 16u + 64u);
  for (std::uint64_t span = 17; span <= 24; ++span) {
    EXPECT_EQ(delivered.count(span), 0u) << span;
  }
  for (std::uint64_t span = 25; span <= 88; ++span) {
    EXPECT_EQ(delivered.count(span), 1u) << span;
  }
}

// --- System-level contracts --------------------------------------------------

/// One full control-plane scenario: facade bring-up, a datasheet install, a
/// broker utterance, a direct service call, and two steps (the second
/// exercising the plan cache). Exercises counters in every layer.
orch::StepReport run_scenario() {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(/*grid_n=*/4);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const surface::Catalog catalog = surface::Catalog::standard();
  os.install_programmable(*catalog.find("NR-Surface"), scene.surface_pose, 10,
                          10, "wall");
  EXPECT_TRUE(os.install_from_datasheet(
                    "model: Acme\nfrequency: 28 GHz\nmode: reflective\n"
                    "reconfigurable: yes\nelements: 8x8\nmystery: value\n",
                    scene.surface_pose, "acme")
                  .ok());
  os.register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});
  os.broker().add_region("this_room",
                         geom::SampleGrid(0.8, 2.8, 0.5, 2.5, 1.0, 3, 3));
  os.broker().handle_utterance("stream a movie on my laptop");
  os.orchestrator().enhance_link({"laptop", 10.0, 50.0});
  os.step();
  return os.step();  // second step reuses cached plans
}

std::string serialize_semantics(const orch::StepReport& report) {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "assignments=%zu optimizations=%zu\n",
                report.assignment_count, report.optimizations_run);
  out += buf;
  for (const orch::TaskId id : report.starved) {
    out += "starved " + std::to_string(id) + "\n";
  }
  for (const auto& task : report.tasks) {
    std::snprintf(buf, sizeof(buf), "task %llu type=%d state=%d %.17g met=%d\n",
                  static_cast<unsigned long long>(task.id),
                  static_cast<int>(task.type), static_cast<int>(task.state),
                  task.achieved.value_or(-1e300), task.goal_met ? 1 : 0);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "trace fresh=%zu reused=%zu evals=%zu writes=%zu\n",
                report.trace.plans_fresh, report.trace.plans_reused,
                report.trace.objective_evaluations,
                report.trace.config_writes);
  out += buf;
  return out;
}

TEST_F(TelemetryTest, CounterSnapshotIdenticalAcrossThreadCounts) {
  auto& registry = MetricsRegistry::instance();

  // Each run starts from a cold precompute store: cross-run artifact
  // sharing would legitimately skip traces/fills the fingerprint counts.
  sim::PrecomputeStore::instance().clear();
  util::reset_global_pool(1);
  run_scenario();
  const std::string serial = registry.counters_fingerprint();

  registry.reset();
  sim::PrecomputeStore::instance().clear();
  util::reset_global_pool(4);
  run_scenario();
  const std::string threaded = registry.counters_fingerprint();

  util::reset_global_pool(0);  // back to hardware default
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
  // The fingerprint really covers the whole stack.
  for (const char* name :
       {"orch.steps", "orch.tasks.admitted", "opt.objective.evaluations",
        "hal.driver.config_writes", "sim.channel.precomputes",
        "broker.utterances", "core.surfaces.installed",
        "util.pool.dispatches"}) {
    EXPECT_NE(serial.find(name), std::string::npos) << name;
  }
}

TEST_F(TelemetryTest, DisabledTelemetryLeavesStepReportIdentical) {
  telemetry::set_enabled(true);
  const orch::StepReport on = run_scenario();

  telemetry::set_enabled(false);
  const orch::StepReport off = run_scenario();
  telemetry::set_enabled(true);

  EXPECT_EQ(serialize_semantics(on), serialize_semantics(off));
  // Timings are only measured while telemetry is on.
  EXPECT_EQ(off.trace.total_us, 0.0);
  EXPECT_EQ(off.trace.schedule_us, 0.0);
  EXPECT_EQ(off.trace.optimize_us, 0.0);
  EXPECT_EQ(off.trace.actuate_us, 0.0);
  EXPECT_EQ(off.trace.measure_us, 0.0);
  // Deterministic trace counts are filled either way.
  EXPECT_GT(off.trace.plans_reused, 0u);
}

TEST_F(TelemetryTest, TaskHandleTracksTaskState) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(/*grid_n=*/4);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  // Element-wise hardware: a 10 dB link target is comfortably achievable
  // (the same setup test_integration's datasheet workflow relies on).
  EXPECT_TRUE(os.install_from_datasheet(
                    "model: Handle\nfrequency: 28 GHz\nmode: reflective\n"
                    "reconfigurable: yes\nelements: 12x12\n",
                    scene.surface_pose, "wall")
                  .ok());
  os.register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});

  const orch::TaskHandle handle =
      os.orchestrator().enhance_link({"laptop", 10.0, 50.0});
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(handle.status(), orch::TaskState::kPending);
  EXPECT_FALSE(handle.last_metric().has_value());

  os.step();
  EXPECT_EQ(handle.status(), orch::TaskState::kRunning);
  EXPECT_TRUE(handle.goal_met());
  EXPECT_TRUE(handle.last_metric().has_value());

  // The handle still converts to a bare TaskId for the pre-redesign API.
  const orch::TaskId id = handle;
  EXPECT_EQ(id, handle.id());
  EXPECT_NE(os.orchestrator().find_task(handle), nullptr);

  const orch::TaskHandle invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_THROW(invalid.status(), std::invalid_argument);
  EXPECT_THROW(invalid.goal_met(), std::invalid_argument);
  EXPECT_THROW(invalid.last_metric(), std::invalid_argument);
}

}  // namespace
}  // namespace surfos
