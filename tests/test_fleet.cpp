// Fleet service API: site lookup (const and mutable), the unknown-site
// error contract, and step_all()'s control-cycle trace aggregation.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "core/fleet.hpp"
#include "core/surfos.hpp"
#include "sim/floorplan.hpp"
#include "surface/catalog.hpp"
#include "telemetry/telemetry.hpp"

namespace surfos {
namespace {

/// Two small sites under one fleet; scenarios must outlive the SurfOS
/// instances, so the fixture owns them.
class FleetTest : public ::testing::Test {
 protected:
  FleetTest()
      : home_(sim::make_coverage_room(/*grid_n=*/4)),
        office_(sim::make_coverage_room(/*grid_n=*/4)) {
    const surface::Catalog catalog = surface::Catalog::standard();
    {
      auto os = std::make_unique<SurfOS>(home_.environment.get(), home_.ap(),
                                         home_.band, home_.budget);
      os->install_programmable(*catalog.find("NR-Surface"),
                               home_.surface_pose, 10, 10, "home-wall");
      os->register_endpoint("laptop", hal::EndpointKind::kClient,
                            {1.2, 2.4, 1.0});
      fleet_.add_site("home", std::move(os));
    }
    {
      auto os = std::make_unique<SurfOS>(office_.environment.get(),
                                         office_.ap(), office_.band,
                                         office_.budget);
      os->install_programmable(*catalog.find("NR-Surface"),
                               office_.surface_pose, 10, 10, "office-wall");
      os->register_endpoint("phone", hal::EndpointKind::kClient,
                            {1.0, 2.0, 1.0});
      fleet_.add_site("office", std::move(os));
    }
  }

  sim::CoverageRoomScenario home_;
  sim::CoverageRoomScenario office_;
  Fleet fleet_;
};

TEST_F(FleetTest, FindSiteConstAndMutableOverloads) {
  SurfOS* site = fleet_.find_site("home");
  ASSERT_NE(site, nullptr);
  // The non-const overload supports mutation through the pointer.
  site->register_endpoint("tablet", hal::EndpointKind::kClient,
                          {2.0, 1.0, 1.0});
  EXPECT_NE(site->registry().find_endpoint("tablet"), nullptr);

  const Fleet& const_fleet = fleet_;
  const SurfOS* const_site = const_fleet.find_site("home");
  EXPECT_EQ(const_site, site);

  EXPECT_EQ(fleet_.find_site("warehouse"), nullptr);
  EXPECT_EQ(const_fleet.find_site("warehouse"), nullptr);
}

TEST_F(FleetTest, UnknownSiteThrowsConsistentlyWithSiteIdInMessage) {
  const auto expect_names_site = [](const auto& call) {
    try {
      call();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("warehouse"),
                std::string::npos)
          << error.what();
    }
  };
  expect_names_site([&] { fleet_.site("warehouse"); });
  expect_names_site(
      [&] { fleet_.handle_utterance("warehouse", "stream a movie"); });
}

TEST_F(FleetTest, StepAllAggregatesStepTraces) {
  fleet_.site("home").orchestrator().enhance_link({"laptop", 10.0, 50.0});
  fleet_.site("office").orchestrator().enhance_link({"phone", 10.0, 50.0});

  const FleetReport first = fleet_.step_all();
  ASSERT_EQ(first.sites.size(), 2u);
  EXPECT_EQ(first.trace.plans_fresh, 2u);  // one fresh plan per site
  EXPECT_EQ(first.trace.plans_reused, 0u);
  EXPECT_GT(first.trace.objective_evaluations, 0u);
  EXPECT_EQ(first.trace.config_writes, 2u);  // one surface written per site

  // Aggregation is exactly the per-site sum.
  std::size_t evals = 0;
  for (const auto& site : first.sites) {
    evals += site.step.trace.objective_evaluations;
  }
  EXPECT_EQ(first.trace.objective_evaluations, evals);

  const FleetReport second = fleet_.step_all();
  EXPECT_EQ(second.trace.plans_fresh, 0u);
  EXPECT_EQ(second.trace.plans_reused, 2u);  // cache hit on both sites
  EXPECT_EQ(second.trace.config_writes, 0u);
}

}  // namespace
}  // namespace surfos
