// Fleet service API: site lookup (const and mutable), the unknown-site
// error contract, step_all()'s control-cycle trace aggregation, byte-level
// determinism of FleetReports across thread/shard counts, and the batched
// vs per-element HAL write paths.
#include <gtest/gtest.h>

#include <ios>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/surfos.hpp"
#include "hal/batch.hpp"
#include "sim/floorplan.hpp"
#include "surface/catalog.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace surfos {
namespace {

/// Two small sites under one fleet; scenarios must outlive the SurfOS
/// instances, so the fixture owns them.
class FleetTest : public ::testing::Test {
 protected:
  FleetTest()
      : home_(sim::make_coverage_room(/*grid_n=*/4)),
        office_(sim::make_coverage_room(/*grid_n=*/4)) {
    const surface::Catalog catalog = surface::Catalog::standard();
    {
      auto os = std::make_unique<SurfOS>(home_.environment.get(), home_.ap(),
                                         home_.band, home_.budget);
      os->install_programmable(*catalog.find("NR-Surface"),
                               home_.surface_pose, 10, 10, "home-wall");
      os->register_endpoint("laptop", hal::EndpointKind::kClient,
                            {1.2, 2.4, 1.0});
      fleet_.add_site("home", std::move(os));
    }
    {
      auto os = std::make_unique<SurfOS>(office_.environment.get(),
                                         office_.ap(), office_.band,
                                         office_.budget);
      os->install_programmable(*catalog.find("NR-Surface"),
                               office_.surface_pose, 10, 10, "office-wall");
      os->register_endpoint("phone", hal::EndpointKind::kClient,
                            {1.0, 2.0, 1.0});
      fleet_.add_site("office", std::move(os));
    }
  }

  sim::CoverageRoomScenario home_;
  sim::CoverageRoomScenario office_;
  Fleet fleet_;
};

TEST_F(FleetTest, FindSiteConstAndMutableOverloads) {
  SurfOS* site = fleet_.find_site("home");
  ASSERT_NE(site, nullptr);
  // The non-const overload supports mutation through the pointer.
  site->register_endpoint("tablet", hal::EndpointKind::kClient,
                          {2.0, 1.0, 1.0});
  EXPECT_NE(site->registry().find_endpoint("tablet"), nullptr);

  const Fleet& const_fleet = fleet_;
  const SurfOS* const_site = const_fleet.find_site("home");
  EXPECT_EQ(const_site, site);

  EXPECT_EQ(fleet_.find_site("warehouse"), nullptr);
  EXPECT_EQ(const_fleet.find_site("warehouse"), nullptr);
}

TEST_F(FleetTest, UnknownSiteThrowsConsistentlyWithSiteIdInMessage) {
  const auto expect_names_site = [](const auto& call) {
    try {
      call();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("warehouse"),
                std::string::npos)
          << error.what();
    }
  };
  expect_names_site([&] { fleet_.site("warehouse"); });
  expect_names_site(
      [&] { fleet_.handle_utterance("warehouse", "stream a movie"); });
}

TEST_F(FleetTest, StepAllAggregatesStepTraces) {
  fleet_.site("home").orchestrator().enhance_link({"laptop", 10.0, 50.0});
  fleet_.site("office").orchestrator().enhance_link({"phone", 10.0, 50.0});

  const FleetReport first = fleet_.step_all();
  ASSERT_EQ(first.sites.size(), 2u);
  EXPECT_EQ(first.trace.plans_fresh, 2u);  // one fresh plan per site
  EXPECT_EQ(first.trace.plans_reused, 0u);
  EXPECT_GT(first.trace.objective_evaluations, 0u);
  EXPECT_EQ(first.trace.config_writes, 2u);  // one surface written per site

  // Aggregation is exactly the per-site sum.
  std::size_t evals = 0;
  for (const auto& site : first.sites) {
    evals += site.step.trace.objective_evaluations;
  }
  EXPECT_EQ(first.trace.objective_evaluations, evals);

  const FleetReport second = fleet_.step_all();
  EXPECT_EQ(second.trace.plans_fresh, 0u);
  EXPECT_EQ(second.trace.plans_reused, 2u);  // cache hit on both sites
  EXPECT_EQ(second.trace.config_writes, 0u);
}

TEST_F(FleetTest, StepTraceRecordsEpochBatchingAndTaskTraceIds) {
  fleet_.site("home").orchestrator().enhance_link({"laptop", 10.0, 50.0});
  fleet_.site("office").orchestrator().enhance_link({"phone", 10.0, 50.0});

  const FleetReport first = fleet_.step_all();
  // One staged write per site's surface; nothing to coalesce or elide on the
  // first epoch, and each staged write became exactly one transaction.
  EXPECT_EQ(first.trace.writes_staged, 2u);
  EXPECT_EQ(first.trace.writes_coalesced, 0u);
  EXPECT_EQ(first.trace.writes_elided, 0u);
  EXPECT_EQ(first.trace.config_writes, 2u);
  // Every scheduled task's trace id is recorded (admit-to-applied join key)
  // and it is a superset of the per-assignment primary ids.
  ASSERT_EQ(first.trace.task_trace_ids.size(), 2u);
  EXPECT_EQ(first.trace.trace_ids, first.trace.task_trace_ids);
  for (const telemetry::TraceId id : first.trace.task_trace_ids) {
    EXPECT_NE(id, 0u);
  }

  // Reused plans stage nothing: the epoch flush is a no-op.
  const FleetReport second = fleet_.step_all();
  EXPECT_EQ(second.trace.writes_staged, 0u);
  EXPECT_EQ(second.trace.config_writes, 0u);
  // Scheduled tasks still report their ids even on reuse steps.
  EXPECT_EQ(second.trace.task_trace_ids.size(), 2u);
}

/// Serializes every deterministic field of a FleetReport (hexfloat for
/// metrics; the wall-clock *_us timings are intentionally excluded — they
/// are the only run-to-run-varying state).
std::string fingerprint(const FleetReport& report) {
  std::ostringstream oss;
  oss << std::hexfloat;
  oss << "assign=" << report.total_assignments
      << " opt=" << report.total_optimizations
      << " starved=" << report.total_starved << "\n";
  const auto trace = [&](const orch::StepTrace& t) {
    oss << "fresh=" << t.plans_fresh << " reused=" << t.plans_reused
        << " evals=" << t.objective_evaluations << " writes=" << t.config_writes
        << " elems=" << t.element_updates << " staged=" << t.writes_staged
        << " coalesced=" << t.writes_coalesced << " elided=" << t.writes_elided
        << " ids=[";
    for (const telemetry::TraceId id : t.trace_ids) oss << id << ",";
    oss << "] task_ids=[";
    for (const telemetry::TraceId id : t.task_trace_ids) oss << id << ",";
    oss << "]\n";
  };
  trace(report.trace);
  for (const auto& site : report.sites) {
    oss << "site " << site.site_id << ": assign="
        << site.step.assignment_count << " opt=" << site.step.optimizations_run
        << " starved=[";
    for (const orch::TaskId id : site.step.starved) oss << id << ",";
    oss << "] tasks=[";
    for (const auto& task : site.step.tasks) {
      oss << task.id << ":" << static_cast<int>(task.type) << ":"
          << static_cast<int>(task.state) << ":"
          << (task.achieved ? *task.achieved : -1.0) << ":" << task.goal_met
          << ",";
    }
    oss << "]\n";
    trace(site.step.trace);
  }
  return oss.str();
}

/// A fresh four-site fleet with one connectivity task per site, stepped
/// twice; returns the concatenated report fingerprints. Built from scratch
/// per call so runs under different pool sizes share no state.
std::string run_mini_fleet() {
  const surface::Catalog catalog = surface::Catalog::standard();
  std::vector<sim::CoverageRoomScenario> scenarios;
  scenarios.reserve(4);
  Fleet fleet;
  for (int i = 0; i < 4; ++i) {
    scenarios.push_back(sim::make_coverage_room(/*grid_n=*/4));
    auto& scenario = scenarios.back();
    auto os = std::make_unique<SurfOS>(scenario.environment.get(),
                                       scenario.ap(), scenario.band,
                                       scenario.budget);
    os->install_programmable(*catalog.find("NR-Surface"),
                             scenario.surface_pose, 8, 8, "wall");
    os->register_endpoint("phone", hal::EndpointKind::kClient,
                          {1.0 + 0.3 * i, 2.0, 1.0});
    os->orchestrator().enhance_link({"phone", 10.0, 50.0});
    fleet.add_site("site" + std::to_string(i), std::move(os));
  }
  std::string out;
  for (int step = 0; step < 2; ++step) {
    out += fingerprint(fleet.step_all());
    out += "--\n";
  }
  return out;
}

TEST(FleetDeterminism, ReportsByteIdenticalAcrossThreadCounts) {
  // SURFOS_FLEET_SHARDS defaults to the pool's thread count, so resizing the
  // pool exercises 1-shard serial vs 4-shard concurrent stepping. The
  // reports — achieved metrics included, compared as hexfloat — must match
  // byte for byte (serial index-order reduction, per-site RNG streams).
  util::reset_global_pool(1);
  const std::string serial = run_mini_fleet();
  util::reset_global_pool(4);
  const std::string sharded = run_mini_fleet();
  util::reset_global_pool(0);
  EXPECT_EQ(serial, sharded);
}

/// One site with one link task; steps once to land the initial config, then
/// moves the endpoint and invalidates plans so the second step re-optimizes
/// and rewrites the (now differing) slot through the chosen HAL write mode.
struct RewriteRun {
  std::size_t rewrite_transactions = 0;
  std::string achieved_hex;  ///< hexfloat metric after the rewrite step
};

RewriteRun run_rewrite(hal::HalWriteMode mode) {
  const surface::Catalog catalog = surface::Catalog::standard();
  sim::CoverageRoomScenario scenario = sim::make_coverage_room(/*grid_n=*/4);
  orch::OrchestratorOptions options;
  options.hal_write_mode = mode;
  SurfOS os(scenario.environment.get(), scenario.ap(), scenario.band,
            scenario.budget, options);
  os.install_programmable(*catalog.find("NR-Surface"), scenario.surface_pose,
                          10, 10, "wall");
  os.register_endpoint("phone", hal::EndpointKind::kClient, {1.0, 2.0, 1.0});
  const auto task = os.orchestrator().enhance_link({"phone", 10.0, 50.0});
  os.step();  // initial write: slot unsized, full transaction in both modes

  os.registry().find_endpoint("phone")->position = {3.2, 1.2, 1.1};
  os.orchestrator().notify_environment_changed();
  const orch::StepReport report = os.step();

  RewriteRun run;
  run.rewrite_transactions = report.trace.config_writes;
  std::ostringstream oss;
  oss << std::hexfloat << task.last_metric().value_or(-1.0);
  run.achieved_hex = oss.str();
  return run;
}

TEST(FleetHalModes, BatchedRewritePaysAtLeastFourTimesFewerTransactions) {
  const RewriteRun batched = run_rewrite(hal::HalWriteMode::kBatched);
  const RewriteRun naive = run_rewrite(hal::HalWriteMode::kPerElement);
  // Batched: one transaction per dirty (device, slot) per epoch. Naive: one
  // per changed element — a 10x10 panel whose optimum moved re-codes far
  // more than four elements.
  EXPECT_EQ(batched.rewrite_transactions, 1u);
  EXPECT_GE(naive.rewrite_transactions, 4 * batched.rewrite_transactions);
  // The write path is an encoding detail: achieved physics is bit-identical.
  EXPECT_EQ(batched.achieved_hex, naive.achieved_hex);
}

}  // namespace
}  // namespace surfos
