// SIMD backend contract: every vector backend must agree BIT-EXACTLY with
// the scalar reference backend on every kernel — including tail lanes
// (n not a multiple of kWidth), unaligned operand pointers, and the
// composed channel/orchestrator results — and the SURFOS_SIMD override
// machinery must select what it claims. Shared env-knob parsing
// (util::env_size, which SURFOS_EVAL_CACHE and friends go through) is
// covered here too since SURFOS_SIMD is the sibling knob.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "em/propagation.hpp"
#include "hal/clock.hpp"
#include "hal/driver.hpp"
#include "hal/registry.hpp"
#include "orch/orchestrator.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"
#include "sim/raytracer.hpp"
#include "surface/panel.hpp"
#include "util/env.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace surfos {
namespace {

namespace simd = util::simd;
constexpr std::size_t W = simd::kWidth;

/// Deterministic value fill (no libc rand): x in roughly [-1.5, 1.5].
double synth(std::size_t i, double salt) {
  return 1.5 * std::sin(0.7 * static_cast<double>(i) + salt);
}

simd::AlignedVec filled(std::size_t n, double salt) {
  simd::AlignedVec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = synth(i, salt);
  return v;
}

/// Restores the dispatcher's default backend when a test body returns.
struct BackendGuard {
  ~BackendGuard() { simd::reset_backend(); }
};

// --- kernel-level agreement --------------------------------------------------

/// Runs `body(ops)` for the scalar table and one vector table, asserting the
/// outputs the body collects are bitwise equal. `n` covers both a full
/// multiple of the lane width and a ragged tail; `offset` shifts every
/// operand pointer off 64-byte alignment.
template <class Body>
void expect_backends_agree(const Body& body) {
  const simd::Ops* scalar = simd::ops_for(simd::Backend::kScalar);
  ASSERT_NE(scalar, nullptr);
  for (const simd::Backend b : simd::available_backends()) {
    if (b == simd::Backend::kScalar) continue;
    const simd::Ops* vec = simd::ops_for(b);
    ASSERT_NE(vec, nullptr);
    for (const std::size_t n : {W, std::size_t{13}, std::size_t{1}}) {
      for (const std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
        const std::vector<double> got_scalar = body(*scalar, n, offset);
        const std::vector<double> got_vec = body(*vec, n, offset);
        ASSERT_EQ(got_scalar.size(), got_vec.size());
        for (std::size_t i = 0; i < got_scalar.size(); ++i) {
          EXPECT_EQ(got_scalar[i], got_vec[i])
              << simd::backend_name(b) << " n=" << n << " offset=" << offset
              << " slot " << i;
        }
      }
    }
  }
}

TEST(SimdKernels, TranscendentalsBitwiseAcrossBackends) {
  expect_backends_agree([](const simd::Ops& k, std::size_t n,
                           std::size_t off) {
    // Phases at the magnitude the channel really uses: k*d ~ 1e4.
    simd::AlignedVec x(n + off);
    for (std::size_t i = 0; i < n; ++i) {
      x[off + i] = 1.0e4 * (0.5 + synth(i, 0.1));
    }
    simd::AlignedVec s(n + off), c(n + off), e(n + off), pr(n + off),
        pi(n + off), amp(n + off);
    for (std::size_t i = 0; i < n; ++i) amp[off + i] = 1.0 + synth(i, 0.4);
    k.sincos(x.data() + off, s.data() + off, c.data() + off, n);
    simd::AlignedVec xs(n + off);
    for (std::size_t i = 0; i < n; ++i) xs[off + i] = synth(i, 0.2) - 1.0;
    k.exp(xs.data() + off, e.data() + off, n);
    k.polar(amp.data() + off, 0.75, x.data() + off, pr.data() + off,
            pi.data() + off, n);
    std::vector<double> out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(s[off + i]);
      out.push_back(c[off + i]);
      out.push_back(e[off + i]);
      out.push_back(pr[off + i]);
      out.push_back(pi[off + i]);
    }
    return out;
  });
}

TEST(SimdKernels, ComplexArithmeticBitwiseAcrossBackends) {
  expect_backends_agree([](const simd::Ops& k, std::size_t n,
                           std::size_t off) {
    auto ar = filled(n + off, 0.1), ai = filled(n + off, 0.2);
    auto br = filled(n + off, 0.3), bi = filled(n + off, 0.4);
    auto cr = filled(n + off, 0.5), ci = filled(n + off, 0.6);
    auto w = filled(n + off, 0.7);
    simd::AlignedVec o_re(n + off), o_im(n + off);
    std::vector<double> out;

    k.cmul(ar.data() + off, ai.data() + off, br.data() + off, bi.data() + off,
           o_re.data() + off, o_im.data() + off, n);
    k.cmul_accum(cr.data() + off, ci.data() + off, br.data() + off,
                 bi.data() + off, o_re.data() + off, o_im.data() + off, n);
    k.cscale(o_re.data() + off, o_im.data() + off, 0.8, -0.6, n);
    k.rscale_mul(o_re.data() + off, o_im.data() + off, w.data() + off, n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(o_re[off + i]);
      out.push_back(o_im[off + i]);
    }

    double dot[2];
    k.cdot3(ar.data() + off, ai.data() + off, br.data() + off,
            bi.data() + off, cr.data() + off, ci.data() + off, n, dot);
    out.push_back(dot[0]);
    out.push_back(dot[1]);

    simd::AlignedVec wr(n + off), wi(n + off);
    k.cdot3_partials(ar.data() + off, ai.data() + off, br.data() + off,
                     bi.data() + off, cr.data() + off, ci.data() + off,
                     wr.data() + off, wi.data() + off, /*accumulate_w=*/0, n,
                     dot);
    out.push_back(dot[0]);
    out.push_back(dot[1]);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(wr[off + i]);
      out.push_back(wi[off + i]);
    }

    out.push_back(k.norm_sum(ar.data() + off, ai.data() + off, n));
    return out;
  });
}

TEST(SimdKernels, MatvecBitwiseAcrossBackends) {
  const simd::Ops* scalar = simd::ops_for(simd::Backend::kScalar);
  ASSERT_NE(scalar, nullptr);
  const std::size_t rows = 5, cols = 16, stride = 16;
  const auto m_re = filled(rows * stride, 0.11);
  const auto m_im = filled(rows * stride, 0.22);
  const auto xr = filled(cols, 0.33), xi = filled(cols, 0.44);
  const auto vr = filled(rows, 0.55), vi = filled(rows, 0.66);

  const auto run = [&](const simd::Ops& k) {
    simd::AlignedVec yr(rows), yi(rows), tr(cols), ti(cols);
    k.cmatvec(m_re.data(), m_im.data(), rows, cols, stride, xr.data(),
              xi.data(), yr.data(), yi.data());
    k.cmatvec_t(m_re.data(), m_im.data(), rows, cols, stride, vr.data(),
                vi.data(), tr.data(), ti.data());
    std::vector<double> out(yr.begin(), yr.end());
    out.insert(out.end(), yi.begin(), yi.end());
    out.insert(out.end(), tr.begin(), tr.end());
    out.insert(out.end(), ti.begin(), ti.end());
    return out;
  };

  const auto ref = run(*scalar);
  for (const simd::Backend b : simd::available_backends()) {
    if (b == simd::Backend::kScalar) continue;
    EXPECT_EQ(ref, run(*simd::ops_for(b))) << simd::backend_name(b);
  }
}

TEST(SimdKernels, GeometryAndEmBitwiseAcrossBackends) {
  expect_backends_agree([](const simd::Ops& k, std::size_t n,
                           std::size_t off) {
    auto px = filled(n + off, 1.1), py = filled(n + off, 1.2),
         pz = filled(n + off, 1.3);
    auto qx = filled(n + off, 2.1), qy = filled(n + off, 2.2),
         qz = filled(n + off, 2.3);
    simd::AlignedVec d(n + off), ux(n + off), uy(n + off), uz(n + off);
    std::vector<double> out;

    k.dist_dirs(px.data() + off, py.data() + off, pz.data() + off,
                qx.data() + off, qy.data() + off, qz.data() + off,
                d.data() + off, ux.data() + off, uy.data() + off,
                uz.data() + off, n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(d[off + i]);
      out.push_back(ux[off + i]);
      out.push_back(uy[off + i]);
      out.push_back(uz[off + i]);
    }

    const simd::SlabConsts slab{5.24, -0.55, 2.4};
    simd::AlignedVec cosi(n + off), rr(n + off), ri(n + off), tr(n + off),
        ti(n + off);
    for (std::size_t i = 0; i < n; ++i) {
      cosi[off + i] = 0.05 + 0.9 * std::fabs(synth(i, 3.3)) / 1.5;
    }
    k.fresnel_reflect(&slab, cosi.data() + off, rr.data() + off,
                      ri.data() + off, n);
    k.fresnel_transmit(&slab, cosi.data() + off, tr.data() + off,
                       ti.data() + off, n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(rr[off + i]);
      out.push_back(ri[off + i]);
      out.push_back(tr[off + i]);
      out.push_back(ti[off + i]);
    }

    simd::AlignedVec hr(n + off), hi(n + off);
    const double wnum = em::wavenumber(28e9);
    k.hop_gain(px.data() + off, py.data() + off, pz.data() + off, 4.0, -3.0,
               2.5, 0.0, 0.0, 1.0, wnum, 2.5e-5, std::sqrt(4.0 * M_PI),
               hr.data() + off, hi.data() + off, ux.data() + off,
               uy.data() + off, uz.data() + off, n);
    k.pair_gain(px.data() + off, py.data() + off, pz.data() + off, 4.0, -3.0,
                2.5, 0.0, 0.0, 1.0, 0.6, -0.8, 0.0, wnum,
                em::wavelength(28e9), 2.5e-5, 2.5e-5, rr.data() + off,
                ri.data() + off, n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(hr[off + i]);
      out.push_back(hi[off + i]);
      out.push_back(ux[off + i]);
      out.push_back(uy[off + i]);
      out.push_back(uz[off + i]);
      out.push_back(rr[off + i]);
      out.push_back(ri[off + i]);
    }

    k.sector_gain(0.0, 0.0, 1.0, -1.0, 0.5, 4.0, 0.3, ux.data() + off,
                  uy.data() + off, uz.data() + off, hr.data() + off, n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(hr[off + i]);
    return out;
  });
}

// --- override machinery ------------------------------------------------------

TEST(SimdDispatch, OverrideSelectsAndRestores) {
  BackendGuard guard;
  const auto backends = simd::available_backends();
  ASSERT_FALSE(backends.empty());
  bool has_scalar = false;
  for (const simd::Backend b : backends) {
    has_scalar |= (b == simd::Backend::kScalar);
    ASSERT_TRUE(simd::set_backend(b)) << simd::backend_name(b);
    EXPECT_EQ(simd::active_backend(), b);
    EXPECT_STREQ(simd::ops().name, simd::backend_name(b));
  }
  EXPECT_TRUE(has_scalar);  // the reference backend is always available

  // Unavailable backends are rejected without changing the active one.
  for (const simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kAvx2, simd::Backend::kAvx512,
        simd::Backend::kNeon}) {
    if (simd::ops_for(b) == nullptr) {
      const simd::Backend before = simd::active_backend();
      EXPECT_FALSE(simd::set_backend(b));
      EXPECT_EQ(simd::active_backend(), before);
    }
  }
  simd::reset_backend();  // back to SURFOS_SIMD/CPU resolution
}

// --- channel-level agreement -------------------------------------------------

struct Scene {
  sim::CoverageRoomScenario scenario;
  std::unique_ptr<surface::SurfacePanel> panel_a;
  std::unique_ptr<surface::SurfacePanel> panel_b;
  std::vector<const surface::SurfacePanel*> panels;

  Scene() : scenario(sim::make_coverage_room(/*grid_n=*/5)) {
    surface::ElementDesign design;
    design.spacing_m = em::wavelength(em::band_center(scenario.band)) / 2.0;
    design.insertion_loss_db = 1.0;
    // 6x6 + 5x5: both a lane-multiple and a ragged element count, so the
    // channel path exercises padded tails on every backend.
    panel_a = std::make_unique<surface::SurfacePanel>(
        "simd-a", scenario.surface_pose, 6, 6, design,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kElement);
    const geom::Frame pose_b(
        scenario.surface_pose.origin() + geom::Vec3{0.9, 0.4, 0.0},
        scenario.surface_pose.normal() + geom::Vec3{0.2, 0.1, 0.0});
    panel_b = std::make_unique<surface::SurfacePanel>(
        "simd-b", pose_b, 5, 5, design, surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kElement);
    panels = {panel_a.get(), panel_b.get()};
  }

  std::unique_ptr<sim::SceneChannel> make_channel() const {
    sim::ChannelOptions options;
    options.include_surface_cascades = true;
    return std::make_unique<sim::SceneChannel>(
        scenario.environment.get(), em::band_center(scenario.band),
        scenario.ap(), panels, scenario.room_grid.points(), nullptr, options);
  }

  std::vector<surface::SurfaceConfig> focus_configs() const {
    const geom::Vec3 target =
        scenario.room_grid.point(scenario.room_grid.size() / 2);
    const double f = em::band_center(scenario.band);
    return {panel_a->focus_config(scenario.ap_position, target, f),
            panel_b->focus_config(scenario.ap_position, target, f)};
  }
};

struct ChannelSnapshot {
  std::vector<em::Cx> h_dir;
  std::vector<em::CVec> f;
  std::vector<double> power;
  em::Cx h_eval;
  std::vector<em::CVec> dh;
};

ChannelSnapshot snapshot_under(simd::Backend b, const Scene& scene) {
  BackendGuard guard;
  EXPECT_TRUE(simd::set_backend(b));
  const auto channel = scene.make_channel();
  ChannelSnapshot snap;
  for (std::size_t j = 0; j < channel->rx_count(); ++j) {
    snap.h_dir.push_back(channel->direct(j));
  }
  for (std::size_t p = 0; p < channel->panel_count(); ++p) {
    snap.f.push_back(channel->tx_vector(p));
  }
  const auto configs = scene.focus_configs();
  snap.power = channel->power_map(configs);
  const auto coeffs = channel->coefficients_for(configs);
  snap.h_eval = channel->evaluate(0, coeffs);
  channel->evaluate_with_partials(0, coeffs, snap.h_eval, snap.dh);
  return snap;
}

TEST(SimdChannel, EndToEndBitIdenticalAcrossBackends) {
  const Scene scene;
  const auto ref = snapshot_under(simd::Backend::kScalar, scene);
  for (const simd::Backend b : simd::available_backends()) {
    if (b == simd::Backend::kScalar) continue;
    const auto got = snapshot_under(b, scene);
    EXPECT_EQ(ref.h_dir, got.h_dir) << simd::backend_name(b);
    EXPECT_EQ(ref.f, got.f) << simd::backend_name(b);
    EXPECT_EQ(ref.power, got.power) << simd::backend_name(b);
    EXPECT_EQ(ref.h_eval, got.h_eval) << simd::backend_name(b);
    EXPECT_EQ(ref.dh, got.dh) << simd::backend_name(b);
  }
}

TEST(SimdChannel, BatchDirectMatchesRayTracerToTolerance) {
  // The batched tracer reassociates and skips the acos/cos round trip, so
  // it is ULP-close — not bitwise — to the scalar RayTracer (DESIGN.md
  // tolerance policy). Relative 1e-9 is orders looser than observed and
  // orders tighter than any physical significance.
  const Scene scene;
  const auto channel = scene.make_channel();
  const sim::RayTracer tracer(scene.scenario.environment.get(),
                              em::band_center(scene.scenario.band));
  const em::AntennaPattern* tx_ant = scene.scenario.ap_antenna.get();
  for (std::size_t j = 0; j < channel->rx_count(); ++j) {
    em::Cx expected{};
    for (const auto& path :
         tracer.trace(scene.scenario.ap_position, channel->rx_point(j))) {
      // Same antenna weighting as the channel: TX gain on the departure
      // direction, (isotropic) RX gain on the reversed arrival direction.
      const double wt =
          tx_ant ? tx_ant->amplitude_gain(path.departure_direction()) : 1.0;
      expected += path.gain * wt;
    }
    const em::Cx got = channel->direct(j);
    EXPECT_NEAR(std::abs(got - expected), 0.0,
                1e-9 * std::max(1e-30, std::abs(expected)))
        << "rx " << j;
  }
}

// --- orchestrator-level agreement --------------------------------------------

orch::StepReport step_under(simd::Backend b) {
  BackendGuard guard;
  EXPECT_TRUE(simd::set_backend(b));
  sim::CoverageRoomScenario scene = sim::make_coverage_room(5);
  hal::SimClock clock;
  hal::DeviceRegistry registry;
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(em::band_center(scene.band)) / 2.0;
  d.insertion_loss_db = 1.0;
  surface::SurfacePanel panel("wall", scene.surface_pose, 8, 8, d,
                              surface::OperationMode::kReflective,
                              surface::Reconfigurability::kProgrammable,
                              surface::ControlGranularity::kElement);
  registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
      "wall", &panel, hal::spec_for_panel(panel, scene.band), &clock));
  registry.add_endpoint({"laptop", hal::EndpointKind::kClient,
                         {1.2, 2.4, 1.0}, scene.band, std::nullopt});
  orch::OrchestratorContext context;
  context.environment = scene.environment.get();
  context.ap = scene.ap();
  context.default_band = scene.band;
  context.budget = scene.budget;
  orch::Orchestrator orchestrator(&registry, &clock, context, {});
  orchestrator.enhance_link({"laptop", 15.0, 50.0});
  return orchestrator.step();
}

TEST(SimdChannel, StepReportsIdenticalWithVectorPathOnAndOff) {
  const auto backends = simd::available_backends();
  const orch::StepReport ref = step_under(simd::Backend::kScalar);
  for (const simd::Backend b : backends) {
    if (b == simd::Backend::kScalar) continue;
    const orch::StepReport got = step_under(b);
    EXPECT_EQ(ref.assignment_count, got.assignment_count);
    EXPECT_EQ(ref.optimizations_run, got.optimizations_run);
    EXPECT_EQ(ref.starved, got.starved);
    ASSERT_EQ(ref.tasks.size(), got.tasks.size());
    for (std::size_t i = 0; i < ref.tasks.size(); ++i) {
      EXPECT_EQ(ref.tasks[i].id, got.tasks[i].id);
      EXPECT_EQ(ref.tasks[i].state, got.tasks[i].state);
      EXPECT_EQ(ref.tasks[i].goal_met, got.tasks[i].goal_met);
      ASSERT_EQ(ref.tasks[i].achieved.has_value(),
                got.tasks[i].achieved.has_value());
      if (ref.tasks[i].achieved) {
        // Bitwise: the measured metric flows through the vectorized
        // channel end to end.
        EXPECT_EQ(*ref.tasks[i].achieved, *got.tasks[i].achieved)
            << simd::backend_name(b);
      }
    }
    EXPECT_EQ(ref.trace.objective_evaluations,
              got.trace.objective_evaluations)
        << simd::backend_name(b);
    EXPECT_EQ(ref.trace.config_writes, got.trace.config_writes);
  }
}

// --- env-knob parsing --------------------------------------------------------

TEST(EnvSize, RejectsNegativesJunkAndRange) {
  const char* knob = "SURFOS_TEST_KNOB";
  const auto with = [&](const char* value) {
    ::setenv(knob, value, 1);
    const std::size_t got = util::env_size(knob, 64, 0);
    ::unsetenv(knob);
    return got;
  };
  ::unsetenv(knob);
  EXPECT_EQ(util::env_size(knob, 64, 0), 64u);  // unset -> default
  EXPECT_EQ(with(""), 64u);                     // empty -> default
  EXPECT_EQ(with("0"), 0u);                     // 0 is valid ("disabled")
  EXPECT_EQ(with("128"), 128u);
  EXPECT_EQ(with("-1"), 64u);    // the old strtoul wrap bug
  EXPECT_EQ(with("-999"), 64u);
  EXPECT_EQ(with("12abc"), 64u);  // trailing junk
  EXPECT_EQ(with("abc"), 64u);
  EXPECT_EQ(with("99999999999999999999999999"), 64u);  // out of range

  // min_value floors: a knob needing >= 1 rejects 0.
  ::setenv(knob, "0", 1);
  EXPECT_EQ(util::env_size(knob, 4, 1), 4u);
  ::setenv(knob, "3", 1);
  EXPECT_EQ(util::env_size(knob, 4, 1), 3u);
  ::unsetenv(knob);
}

}  // namespace
}  // namespace surfos
