// Service broker tests: demand profiles, the non-linear demand translation
// (inverse Shannon), the intent engine against the paper's Fig 6 utterances,
// datasheet parsing / driver synthesis, and the broker daemon lifecycle.
#include <gtest/gtest.h>

#include <cmath>

#include "broker/broker.hpp"
#include "broker/demand.hpp"
#include "broker/intent.hpp"
#include "broker/specgen.hpp"
#include "broker/translate.hpp"
#include "sim/floorplan.hpp"
#include "util/units.hpp"

namespace surfos::broker {
namespace {

// --- demand profiles -------------------------------------------------------------

TEST(Demand, ProfilesMatchPaperArchetypes) {
  const AppDemand vr = demand_profile(AppClass::kVrGaming, "VR_headset");
  EXPECT_GT(vr.throughput_mbps.value(), 100.0);
  EXPECT_LE(vr.max_latency_ms.value(), 20.0);
  const AppDemand home = demand_profile(AppClass::kSmartHome, "", "room");
  EXPECT_TRUE(home.needs_sensing);
  EXPECT_FALSE(home.throughput_mbps.has_value());
  const AppDemand secure = demand_profile(AppClass::kSensitiveData, "laptop");
  EXPECT_TRUE(secure.needs_security);
  const AppDemand charge =
      demand_profile(AppClass::kWirelessCharging, "phone");
  EXPECT_TRUE(charge.needs_power);
}

// --- translation -----------------------------------------------------------------

TEST(Translate, SnrIsMonotoneInThroughput) {
  const em::LinkBudget budget{10.0, 400e6, 7.0};
  const double snr_small = required_snr_db(10.0, budget);
  const double snr_large = required_snr_db(400.0, budget);
  EXPECT_GT(snr_large, snr_small);
}

TEST(Translate, InverseShannonWithMarginsIsExact) {
  const em::LinkBudget budget{10.0, 100e6, 7.0};
  TranslationOptions options;
  options.mac_efficiency = 1.0;
  options.shannon_gap_db = 0.0;
  options.snr_margin_db = 0.0;
  options.assumed_time_share = 1.0;
  // 100 Mbps over 100 MHz needs 1 bit/s/Hz: snr = 2^1 - 1 = 1 -> 0 dB.
  EXPECT_NEAR(required_snr_db(100.0, budget, options), 0.0, 1e-9);
  // 300 Mbps -> 2^3 - 1 = 7 -> 8.45 dB.
  EXPECT_NEAR(required_snr_db(300.0, budget, options), util::to_db(7.0), 1e-9);
}

TEST(Translate, MacEfficiencyAndTimeShareRaiseRequirement) {
  const em::LinkBudget budget{10.0, 100e6, 7.0};
  TranslationOptions ideal;
  ideal.mac_efficiency = 1.0;
  ideal.shannon_gap_db = 0.0;
  ideal.snr_margin_db = 0.0;
  ideal.assumed_time_share = 1.0;
  TranslationOptions real = ideal;
  real.mac_efficiency = 0.5;
  TranslationOptions shared = ideal;
  shared.assumed_time_share = 0.5;
  const double base = required_snr_db(100.0, budget, ideal);
  EXPECT_GT(required_snr_db(100.0, budget, real), base);
  EXPECT_GT(required_snr_db(100.0, budget, shared), base);
}

TEST(Translate, LatencyMapsToPriorityTiers) {
  EXPECT_EQ(priority_for_latency(10.0), orch::kPriorityCritical);
  EXPECT_EQ(priority_for_latency(50.0), orch::kPriorityInteractive);
  EXPECT_EQ(priority_for_latency(300.0), orch::kPriorityNormal);
  EXPECT_EQ(priority_for_latency(5000.0), orch::kPriorityBackground);
}

TEST(Translate, ExpandsEveryDemandDimension) {
  const em::LinkBudget budget{10.0, 400e6, 7.0};
  const geom::SampleGrid region(0, 1, 0, 1, 1, 2, 2);
  AppDemand demand = demand_profile(AppClass::kVrGaming, "VR_headset", "room");
  demand.needs_sensing = true;
  demand.needs_security = true;
  demand.needs_power = true;
  const auto requests = translate(demand, budget, region);
  ASSERT_EQ(requests.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<orch::LinkGoal>(requests[0].goal));
  EXPECT_TRUE(std::holds_alternative<orch::SensingGoal>(requests[1].goal));
  EXPECT_TRUE(std::holds_alternative<orch::SecurityGoal>(requests[2].goal));
  EXPECT_TRUE(std::holds_alternative<orch::PowerGoal>(requests[3].goal));
  // VR latency -> critical priority on the link.
  EXPECT_EQ(requests[0].priority, orch::kPriorityCritical);
}

TEST(Translate, SensingOnlyDemandCreatesNoLink) {
  const em::LinkBudget budget;
  const geom::SampleGrid region(0, 1, 0, 1, 1, 2, 2);
  const auto requests =
      translate(demand_profile(AppClass::kSmartHome, "", "room"), budget,
                region);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<orch::SensingGoal>(requests[0].goal));
}

// --- intent engine -----------------------------------------------------------------

TEST(Intent, VrGamingUtteranceMatchesFig6) {
  const IntentEngine engine;
  const IntentResult result =
      engine.interpret("I want to start VR gaming in this room.");
  ASSERT_TRUE(result.understood);
  ASSERT_GE(result.calls.size(), 3u);
  EXPECT_EQ(result.calls[0].function, "enhance_link");
  EXPECT_EQ(result.calls[0].positional[0], "VR_headset");
  EXPECT_EQ(result.calls[1].function, "enable_sensing");
  EXPECT_EQ(result.calls[1].positional[0], "this_room");
  EXPECT_EQ(result.calls[2].function, "optimize_coverage");
}

TEST(Intent, MeetingPlusChargingUtteranceMatchesFig6) {
  const IntentEngine engine;
  const IntentResult result = engine.interpret(
      "I want to have an online meeting while charging my phone.");
  ASSERT_TRUE(result.understood);
  ASSERT_EQ(result.calls.size(), 2u);
  EXPECT_EQ(result.calls[0].function, "enhance_link");
  // The meeting binds to the default laptop, not the phone being charged.
  EXPECT_EQ(result.calls[0].positional[0], "laptop");
  EXPECT_EQ(result.calls[1].function, "init_powering");
  EXPECT_EQ(result.calls[1].positional[0], "phone");
}

TEST(Intent, RendersPaperStyleCalls) {
  ServiceCall call{"enhance_link", {"laptop"}, {{"snr", 20.0}, {"latency", 50.0}}};
  EXPECT_EQ(call.render(), "enhance_link(\"laptop\", snr=20.0, latency=50.0)");
}

TEST(Intent, ExtractsRoomAndDuration) {
  const IntentEngine engine;
  const IntentResult result = engine.interpret(
      "Track motion in the meeting room for 2 hours please");
  ASSERT_TRUE(result.understood);
  EXPECT_EQ(result.room, "meeting_room");
  ASSERT_EQ(result.calls.size(), 1u);
  EXPECT_EQ(result.calls[0].function, "enable_sensing");
  EXPECT_DOUBLE_EQ(result.calls[0].named[0].second, 7200.0);
}

TEST(Intent, SecurityUtteranceCreatesProtect) {
  const IntentEngine engine;
  const IntentResult result = engine.interpret(
      "I need to send confidential files from the office");
  ASSERT_TRUE(result.understood);
  bool has_protect = false;
  for (const auto& call : result.calls) {
    if (call.function == "protect") has_protect = true;
  }
  EXPECT_TRUE(has_protect);
  EXPECT_EQ(result.room, "office");
}

TEST(Intent, GibberishIsNotUnderstood) {
  const IntentEngine engine;
  const IntentResult result = engine.interpret("the quick brown fox");
  EXPECT_FALSE(result.understood);
  EXPECT_TRUE(result.calls.empty());
}

TEST(Intent, MultiIntentOrderFollowsText) {
  const IntentEngine engine;
  const IntentResult result = engine.interpret(
      "charge my phone and then stream a movie on the tv");
  ASSERT_EQ(result.activities.size(), 2u);
  EXPECT_EQ(result.activities[0], AppClass::kWirelessCharging);
  EXPECT_EQ(result.activities[1], AppClass::kVideoStreaming);
}

// --- specgen ------------------------------------------------------------------------

constexpr const char* kGoodDatasheet = R"(# Example surface datasheet
model: AcmeSurface-28
frequency: 28 GHz
mode: reflective
reconfigurable: yes, column-wise
elements: 16x32
spacing: half-wavelength
phase_bits: 2
insertion_loss: 1.5 dB
control_delay: 2 ms
slots: 8
)";

TEST(SpecGen, ParsesCompleteDatasheet) {
  const SpecGenResult result = parse_datasheet(kGoodDatasheet);
  ASSERT_TRUE(result.blueprint.has_value());
  const DriverBlueprint& bp = *result.blueprint;
  EXPECT_EQ(bp.model, "AcmeSurface-28");
  EXPECT_EQ(bp.band, em::Band::k28GHz);
  EXPECT_EQ(bp.op_mode, surface::OperationMode::kReflective);
  EXPECT_EQ(bp.granularity, surface::ControlGranularity::kColumn);
  EXPECT_EQ(bp.rows, 16u);
  EXPECT_EQ(bp.cols, 32u);
  EXPECT_EQ(bp.element.phase_bits, 2);
  EXPECT_NEAR(bp.element.insertion_loss_db, 1.5, 1e-9);
  EXPECT_EQ(bp.control_delay_us, 2000u);
  EXPECT_EQ(bp.config_slots, 8u);
  // Half-wavelength at 28 GHz.
  EXPECT_NEAR(bp.element.spacing_m, 0.00535, 1e-4);
}

TEST(SpecGen, MissingRequiredFieldsFails) {
  const SpecGenResult result = parse_datasheet("mode: reflective\n");
  EXPECT_FALSE(result.blueprint.has_value());
  EXPECT_FALSE(result.warnings.empty());
}

TEST(SpecGen, UnknownKeysBecomeWarnings) {
  const SpecGenResult result = parse_datasheet(
      "model: X\nfrequency: 5 GHz\ncolor: blue\nnot even a line\n");
  ASSERT_TRUE(result.blueprint.has_value());
  EXPECT_EQ(result.blueprint->band, em::Band::k5GHz);
  EXPECT_GE(result.warnings.size(), 2u);
}

TEST(SpecGen, PassiveDatasheetSynthesizesPassiveDriver) {
  const SpecGenResult result = parse_datasheet(
      "model: Cheap60\nfrequency: 60 GHz\nreconfigurable: no (passive)\n"
      "elements: 8x8\n");
  ASSERT_TRUE(result.blueprint.has_value());
  EXPECT_EQ(result.blueprint->reconfigurability,
            surface::Reconfigurability::kPassive);
  const hal::HardwareSpec spec = result.blueprint->to_spec();
  EXPECT_EQ(spec.control_delay_us, hal::kInfiniteDelay);
  EXPECT_EQ(spec.config_slots, 1u);

  const geom::Frame pose({0, 0, 1}, {0, 0, 1});
  const surface::SurfacePanel panel = build_panel(*result.blueprint, pose);
  hal::SimClock clock;
  const auto driver =
      synthesize_driver(*result.blueprint, &panel, "cheap0", &clock);
  EXPECT_NE(dynamic_cast<hal::PassiveSurfaceDriver*>(driver.get()), nullptr);
}

TEST(SpecGen, ProgrammableDatasheetSynthesizesProgrammableDriver) {
  const SpecGenResult result = parse_datasheet(kGoodDatasheet);
  const geom::Frame pose({0, 0, 1}, {0, 0, 1});
  const surface::SurfacePanel panel = build_panel(*result.blueprint, pose);
  hal::SimClock clock;
  const auto driver =
      synthesize_driver(*result.blueprint, &panel, "acme0", &clock);
  EXPECT_NE(dynamic_cast<hal::ProgrammableSurfaceDriver*>(driver.get()),
            nullptr);
  EXPECT_EQ(driver->spec().control_delay_us, 2000u);
  EXPECT_EQ(driver->panel().cols(), 32u);
}

TEST(SpecGen, MalformedValuesWarnedNotFatal) {
  const SpecGenResult result = parse_datasheet(
      "model: X\nfrequency: 28 GHz\nelements: lots\nphase_bits: many\n"
      "control_delay: soon\n");
  ASSERT_TRUE(result.blueprint.has_value());
  EXPECT_GE(result.warnings.size(), 3u);
  // Defaults survive.
  EXPECT_EQ(result.blueprint->rows, 16u);
}

// --- broker daemon -----------------------------------------------------------------

struct BrokerFixture {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(4);
  hal::SimClock clock;
  hal::DeviceRegistry registry;
  surface::SurfacePanel panel;
  std::unique_ptr<orch::Orchestrator> orchestrator;
  std::unique_ptr<ServiceBroker> broker;

  BrokerFixture()
      : panel([&] {
          surface::ElementDesign d;
          d.spacing_m = em::wavelength(em::band_center(scene.band)) / 2.0;
          return surface::SurfacePanel(
              "wall", scene.surface_pose, 10, 10, d,
              surface::OperationMode::kReflective,
              surface::Reconfigurability::kProgrammable,
              surface::ControlGranularity::kElement);
        }()) {
    registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
        "wall", &panel, hal::spec_for_panel(panel, scene.band), &clock));
    registry.add_endpoint({"laptop", hal::EndpointKind::kClient,
                           {1.2, 2.4, 1.0}, scene.band, std::nullopt});
    registry.add_endpoint({"phone", hal::EndpointKind::kClient,
                           {2.0, 1.5, 1.0}, scene.band, std::nullopt});
    registry.add_endpoint({"VR_headset", hal::EndpointKind::kClient,
                           {1.6, 2.0, 1.2}, scene.band, std::nullopt});
    orch::OrchestratorContext context;
    context.environment = scene.environment.get();
    context.ap = scene.ap();
    context.default_band = scene.band;
    context.budget = scene.budget;
    orchestrator = std::make_unique<orch::Orchestrator>(&registry, &clock,
                                                        context);
    broker = std::make_unique<ServiceBroker>(
        orchestrator.get(),
        geom::SampleGrid(0.8, 2.8, 0.5, 2.5, 1.0, 3, 3));
  }
};

TEST(Broker, StartAppCreatesTasks) {
  BrokerFixture fx;
  ASSERT_TRUE(fx.broker
                  ->start_app("stream", demand_profile(
                                            AppClass::kVideoStreaming,
                                            "laptop"))
                  .ok());
  const auto& sessions = fx.broker->sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions.at("stream").tasks.size(), 1u);
  EXPECT_TRUE(sessions.at("stream").running);
  const auto collision = fx.broker->start_app(
      "stream", demand_profile(AppClass::kVideoStreaming, "laptop"));
  ASSERT_FALSE(collision.ok());
  EXPECT_EQ(collision.code(), ErrorCode::kAlreadyExists);
}

TEST(Broker, StatusTracksGoalSatisfaction) {
  BrokerFixture fx;
  AppDemand demand = demand_profile(AppClass::kVideoConference, "laptop");
  ASSERT_TRUE(fx.broker->start_app("meet", demand).ok());
  fx.orchestrator->step();
  const AppStatus status = fx.broker->status("meet");
  EXPECT_TRUE(status.known);
  EXPECT_TRUE(status.running);
  EXPECT_EQ(status.tasks_total, 1u);
  // 20 Mbps over 400 MHz needs very low SNR; the surface delivers easily.
  EXPECT_TRUE(status.satisfied);
  EXPECT_FALSE(fx.broker->status("nope").known);
}

TEST(Broker, StopAndResumeIdleTasks) {
  BrokerFixture fx;
  ASSERT_TRUE(fx.broker
                  ->start_app("stream", demand_profile(
                                            AppClass::kVideoStreaming,
                                            "laptop"))
                  .ok());
  fx.orchestrator->step();
  ASSERT_TRUE(fx.broker->stop_app("stream").ok());
  const auto report = fx.orchestrator->step();
  EXPECT_EQ(report.assignment_count, 0u);
  ASSERT_TRUE(fx.broker->resume_app("stream").ok());
  const auto resumed = fx.orchestrator->step();
  EXPECT_EQ(resumed.assignment_count, 1u);
  EXPECT_EQ(fx.broker->resume_app("ghost").code(), ErrorCode::kNotFound);
}

TEST(Broker, EscalatesUnsatisfiedApps) {
  BrokerFixture fx;
  // Demand an absurd throughput so the link goal cannot be met.
  AppDemand demand = demand_profile(AppClass::kVrGaming, "VR_headset");
  demand.throughput_mbps = 40000.0;
  demand.max_latency_ms = 400.0;  // start at normal priority
  ASSERT_TRUE(fx.broker->start_app("vr", demand).ok());
  fx.orchestrator->step();
  EXPECT_FALSE(fx.broker->status("vr").satisfied);
  const std::size_t escalated = fx.broker->escalate_unsatisfied();
  EXPECT_EQ(escalated, 1u);
  // The re-admitted task has a strictly higher priority.
  const auto& session = fx.broker->sessions().at("vr");
  const orch::Task* task = fx.orchestrator->find_task(session.tasks[0]);
  ASSERT_NE(task, nullptr);
  EXPECT_GT(task->priority, orch::kPriorityNormal);
}

TEST(Broker, UtteranceStartsApps) {
  BrokerFixture fx;
  const IntentResult result = fx.broker->handle_utterance(
      "I want to have an online meeting while charging my phone.");
  EXPECT_TRUE(result.understood);
  EXPECT_EQ(fx.broker->sessions().size(), 2u);
  const auto report = fx.orchestrator->step();
  EXPECT_GE(report.assignment_count, 1u);
}

TEST(Broker, TrafficSuggestionsDriveSessions) {
  BrokerFixture fx;
  util::Rng rng(7);
  TrafficMonitor monitor(2 * hal::kMicrosPerSecond);
  for (const auto& r : synthesize_traffic(AppClass::kVideoStreaming, 0,
                                          2 * hal::kMicrosPerSecond, rng)) {
    monitor.ingest("laptop", r);
  }
  const auto suggestions = monitor.analyze(2 * hal::kMicrosPerSecond);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(fx.broker->apply_traffic_suggestions(suggestions), 1u);
  // The auto session exists, runs, and owns a link task.
  const std::string app_id = "auto-laptop-video-streaming";
  ASSERT_TRUE(fx.broker->status(app_id).known);
  EXPECT_TRUE(fx.broker->status(app_id).running);
  // Re-applying the same suggestions starts nothing new.
  EXPECT_EQ(fx.broker->apply_traffic_suggestions(suggestions), 0u);
  // Traffic disappears: the auto session is stopped.
  EXPECT_EQ(fx.broker->apply_traffic_suggestions({}), 0u);
  EXPECT_FALSE(fx.broker->status(app_id).running);
  // It comes back: the idled session resumes instead of duplicating.
  fx.broker->apply_traffic_suggestions(suggestions);
  EXPECT_TRUE(fx.broker->status(app_id).running);
}

TEST(Broker, LowConfidenceSuggestionsIgnored) {
  BrokerFixture fx;
  DemandSuggestion weak;
  weak.endpoint_id = "laptop";
  weak.classification = {AppClass::kVideoStreaming, 0.2};
  EXPECT_EQ(fx.broker->apply_traffic_suggestions({weak}), 0u);
  EXPECT_TRUE(fx.broker->sessions().empty());
}

TEST(Broker, NamedRegionsResolve) {
  BrokerFixture fx;
  fx.broker->add_region("meeting_room",
                        geom::SampleGrid(0.5, 1.5, 0.5, 1.5, 1.0, 2, 2));
  AppDemand demand = demand_profile(AppClass::kSmartHome, "", "meeting_room");
  ASSERT_TRUE(fx.broker->start_app("tracker", demand).ok());
  fx.orchestrator->step();
  const auto& session = fx.broker->sessions().at("tracker");
  const orch::Task* task = fx.orchestrator->find_task(session.tasks[0]);
  const auto& goal = std::get<orch::SensingGoal>(task->goal);
  EXPECT_EQ(goal.region.size(), 4u);
}

}  // namespace
}  // namespace surfos::broker
