// Time-of-flight ranging tests: exact recovery on synthetic single-path
// taps, robustness to amplitude variation and noise, residual-based
// multipath flagging, and full range+bearing localization against the
// simulated channel — no oracle ToF anywhere.
#include <gtest/gtest.h>

#include <cmath>

#include "em/propagation.hpp"
#include "sense/steering.hpp"
#include "sense/tof.hpp"
#include "sim/channel.hpp"
#include "util/rng.hpp"

namespace surfos::sense {
namespace {

em::CVec single_path_taps(std::span<const double> frequencies_hz,
                          double distance_m, double amplitude = 1.0) {
  em::CVec taps(frequencies_hz.size());
  for (std::size_t k = 0; k < frequencies_hz.size(); ++k) {
    taps[k] = std::polar(
        amplitude, -em::wavenumber(frequencies_hz[k]) * distance_m);
  }
  return taps;
}

TEST(SubcarrierGrid, SpansBandwidthSymmetrically) {
  const auto grid = subcarrier_grid(28e9, 400e6, 11);
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_DOUBLE_EQ(grid.front(), 28e9 - 200e6);
  EXPECT_DOUBLE_EQ(grid.back(), 28e9 + 200e6);
  EXPECT_DOUBLE_EQ(grid[5], 28e9);
  EXPECT_THROW(subcarrier_grid(28e9, 400e6, 1), std::invalid_argument);
  EXPECT_THROW(subcarrier_grid(28e9, -1.0, 8), std::invalid_argument);
}

TEST(Tof, ExactOnCleanSinglePath) {
  const auto grid = subcarrier_grid(28e9, 400e6, 32);
  for (const double d : {0.8, 2.4, 3.7, 6.2}) {
    const TofEstimate estimate = estimate_distance(grid, single_path_taps(grid, d));
    EXPECT_NEAR(estimate.distance_m, d, 1e-6) << "distance " << d;
    EXPECT_LT(estimate.residual_rad, 1e-9);
  }
}

TEST(Tof, AmplitudeVariationDoesNotBias) {
  const auto grid = subcarrier_grid(28e9, 400e6, 32);
  em::CVec taps = single_path_taps(grid, 3.0);
  // Frequency-dependent amplitude (antenna rolloff) leaves phases intact.
  for (std::size_t k = 0; k < taps.size(); ++k) {
    taps[k] *= 0.5 + 0.4 * std::cos(static_cast<double>(k) * 0.2);
  }
  EXPECT_NEAR(estimate_distance(grid, taps).distance_m, 3.0, 1e-6);
}

TEST(Tof, ToleratesPhaseNoise) {
  util::Rng rng(19);
  const auto grid = subcarrier_grid(28e9, 400e6, 64);
  em::CVec taps = single_path_taps(grid, 4.5);
  for (auto& tap : taps) tap *= em::expj(0.05 * rng.normal());
  const TofEstimate estimate = estimate_distance(grid, taps);
  EXPECT_NEAR(estimate.distance_m, 4.5, 0.05);
  EXPECT_GT(estimate.residual_rad, 1e-4);  // noise shows in the residual
}

TEST(Tof, MultipathRaisesResidual) {
  const auto grid = subcarrier_grid(28e9, 400e6, 64);
  em::CVec clean = single_path_taps(grid, 3.0);
  em::CVec corrupted = clean;
  const em::CVec echo = single_path_taps(grid, 7.5, 0.6);
  for (std::size_t k = 0; k < corrupted.size(); ++k) corrupted[k] += echo[k];
  const double clean_residual = estimate_distance(grid, clean).residual_rad;
  const double dirty_residual = estimate_distance(grid, corrupted).residual_rad;
  EXPECT_GT(dirty_residual, clean_residual * 100.0 + 1e-6);
}

TEST(Tof, RejectsBadInput) {
  const auto grid = subcarrier_grid(28e9, 400e6, 8);
  EXPECT_THROW(estimate_distance(grid, em::CVec(3)), std::invalid_argument);
  EXPECT_THROW(estimate_distance(std::vector<double>{28e9},
                                 em::CVec(1, em::Cx{1, 0})),
               std::invalid_argument);
  const std::vector<double> degenerate(4, 28e9);
  EXPECT_THROW(estimate_distance(degenerate, em::CVec(4, em::Cx{1, 0})),
               std::invalid_argument);
}

TEST(RangeBearingTest, LocalizesClientWithoutOracle) {
  // Full pipeline against the simulator: per-subcarrier element snapshots of
  // a panel -> bearing + range -> position, compared to ground truth.
  const double center = em::band_center(em::Band::k28GHz);
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(center) / 2.0;
  const surface::SurfacePanel panel(
      "aperture", geom::Frame({0, 0, 1.5}, {1, 0, 0}), 8, 8, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  sim::Environment env(em::MaterialDb::standard());
  env.finalize();

  const geom::Vec3 client =
      panel.center() + azimuth_direction(panel, 0.4) * 2.8;
  const auto grid = subcarrier_grid(center, 400e6, 16);
  std::vector<em::CVec> taps;
  for (const double f : grid) {
    const sim::SceneChannel channel(&env, f, {{-2.0, 1.0, 1.5}, nullptr},
                                    {&panel}, {client});
    taps.push_back(channel.rx_vector(0, 0));
  }
  const RangeBearing estimate = range_and_bearing(panel, grid, taps);
  EXPECT_NEAR(estimate.azimuth_rad, 0.4, 0.03);
  // Range is the client->center-element distance (elements sit around the
  // panel center).
  EXPECT_NEAR(estimate.range_m, 2.8, 0.1);
  const geom::Vec3 position =
      position_from_range_bearing(panel, estimate, client.z);
  EXPECT_LT(position.distance_to(client), 0.25);
}

TEST(RangeBearingTest, ValidatesInput) {
  const double center = 28e9;
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(center) / 2.0;
  const surface::SurfacePanel panel(
      "p", geom::Frame({0, 0, 0}, {0, 0, 1}), 2, 2, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  const auto grid = subcarrier_grid(center, 100e6, 4);
  std::vector<em::CVec> wrong_size(4, em::CVec(3));
  EXPECT_THROW(range_and_bearing(panel, grid, wrong_size),
               std::invalid_argument);
  std::vector<em::CVec> too_few(1, em::CVec(4));
  EXPECT_THROW(range_and_bearing(panel, std::vector<double>{center}, too_few),
               std::invalid_argument);
}

}  // namespace
}  // namespace surfos::sense
