// Parallel execution engine: pool lifecycle, coverage, exception
// propagation, nested submits, and the global-pool knobs.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace surfos::util {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, HandlesOffsetAndEmptyAndTinyRanges) {
  ThreadPool pool(4);
  std::vector<int> out(10, 0);
  pool.parallel_for(3, 7, [&](std::size_t i) { out[i] = 1; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], (i >= 3 && i < 7) ? 1 : 0) << i;
  }
  pool.parallel_for(5, 5, [&](std::size_t) { FAIL() << "empty range ran"; });
  int single = 0;
  pool.parallel_for(0, 1, [&](std::size_t) { ++single; });
  EXPECT_EQ(single, 1);
}

TEST(ThreadPool, SlotWritesAreDeterministicAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(512);
    pool.parallel_for(0, out.size(), [&](std::size_t i) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 50; ++k) {
        acc += static_cast<double>(i * k) * 1e-3;
      }
      out[i] = acc;
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPool, PropagatesExceptionsToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("probe 37");
                        }),
      std::runtime_error);
  // The pool survives a throwing loop and keeps working.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReportsLowestChunkException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(0, 1000, [](std::size_t i) {
      if (i % 250 == 0) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16 * 16);
  pool.parallel_for(0, 16, [&](std::size_t i) {
    // Nested submits must not deadlock; they run serially on the worker.
    pool.parallel_for(0, 16, [&](std::size_t j) {
      if (ThreadPool::in_worker()) {
        hits[i * 16 + j].fetch_add(1);
      } else {
        // Outer caller thread participating: still a valid serial context.
        hits[i * 16 + j].fetch_add(1);
      }
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEachVisitsEveryElement) {
  ThreadPool pool(3);
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  pool.parallel_for_each(data, [](int& v) { v *= 2; });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], 2 * i);
}

TEST(ThreadPool, RunChunkedTilesTheRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  pool.run_chunked(0, hits.size(), [&](std::size_t b, std::size_t e) {
    ASSERT_LT(b, e);
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GlobalPoolResizesAndRuns) {
  reset_global_pool(2);
  EXPECT_EQ(global_pool().thread_count(), 2u);
  std::vector<int> out(64, 0);
  parallel_for(0, out.size(), [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 64);
  reset_global_pool(1);
  EXPECT_EQ(global_pool().thread_count(), 1u);
  parallel_for(0, out.size(), [&](std::size_t i) { out[i] = 2; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 128);
}

TEST(ThreadPool, InWorkerFlagIsScopedToWorkers) {
  EXPECT_FALSE(ThreadPool::in_worker());
  ThreadPool pool(4);
  std::atomic<int> worker_sightings{0};
  pool.parallel_for(0, 64, [&](std::size_t) {
    if (ThreadPool::in_worker()) worker_sightings.fetch_add(1);
  });
  // The calling thread participates, so not every index sees a worker; the
  // flag must simply never leak back to the caller.
  EXPECT_GE(worker_sightings.load(), 0);
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPool, ManySmallLoopsDrainCleanly) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 8, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 8);
  }
}

}  // namespace
}  // namespace surfos::util
