// Metasurface model tests: configurations (wire round-trips, quantization),
// panel geometry and control parameterization (parameterized over every
// granularity), operation-mode service geometry, the Table-1 catalog, and
// the cost model.
#include <gtest/gtest.h>

#include <cmath>

#include "em/propagation.hpp"
#include "surface/catalog.hpp"
#include "surface/config.hpp"
#include "surface/cost.hpp"
#include "surface/panel.hpp"
#include "util/units.hpp"

namespace surfos::surface {
namespace {

// --- SurfaceConfig -------------------------------------------------------------

TEST(Config, DefaultsToZeroPhaseUnitAmplitude) {
  const SurfaceConfig config(4);
  EXPECT_EQ(config.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(config.phase(i), 0.0);
    EXPECT_DOUBLE_EQ(config.amplitude(i), 1.0);
  }
}

TEST(Config, PhasesWrapIntoTwoPi) {
  SurfaceConfig config(2);
  config.set_phase(0, 3.0 * util::kTwoPi + 1.0);
  config.set_phase(1, -0.5);
  EXPECT_NEAR(config.phase(0), 1.0, 1e-12);
  EXPECT_NEAR(config.phase(1), util::kTwoPi - 0.5, 1e-12);
}

TEST(Config, AmplitudesClampToUnitInterval) {
  SurfaceConfig config(2);
  config.set_amplitude(0, 1.7);
  config.set_amplitude(1, -0.2);
  EXPECT_DOUBLE_EQ(config.amplitude(0), 1.0);
  EXPECT_DOUBLE_EQ(config.amplitude(1), 0.0);
}

TEST(Config, ConstructorValidatesAndNormalizes) {
  EXPECT_THROW(SurfaceConfig({0.0}, {1.0, 1.0}), std::invalid_argument);
  const SurfaceConfig config({-1.0, 7.0}, {2.0, -1.0});
  EXPECT_NEAR(config.phase(0), util::kTwoPi - 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(config.amplitude(0), 1.0);
  EXPECT_DOUBLE_EQ(config.amplitude(1), 0.0);
}

TEST(Config, ShiftAllPhases) {
  SurfaceConfig config(3);
  config.set_phase(1, 1.0);
  config.shift_all_phases(0.5);
  EXPECT_NEAR(config.phase(0), 0.5, 1e-12);
  EXPECT_NEAR(config.phase(1), 1.5, 1e-12);
}

TEST(Config, QuantizationSnapsToLevels) {
  SurfaceConfig config(1);
  config.set_phase(0, 0.8);  // closest 2-bit level (step pi/2) is pi/2
  const SurfaceConfig q = config.quantized(2);
  EXPECT_NEAR(q.phase(0), util::kPi / 2.0, 1e-12);
  // 0 bits = continuous (unchanged).
  EXPECT_NEAR(config.quantized(0).phase(0), 0.8, 1e-12);
}

TEST(Config, QuantizationIsIdempotent) {
  SurfaceConfig config(8);
  for (std::size_t i = 0; i < 8; ++i) {
    config.set_phase(i, 0.77 * static_cast<double>(i));
  }
  const SurfaceConfig once = config.quantized(3);
  const SurfaceConfig twice = once.quantized(3);
  EXPECT_EQ(once, twice);
}

TEST(Config, SerializeRoundTrip) {
  SurfaceConfig config(5);
  for (std::size_t i = 0; i < 5; ++i) {
    config.set_phase(i, 1.1 * static_cast<double>(i));
    config.set_amplitude(i, 0.2 * static_cast<double>(i));
  }
  const auto bytes = config.serialize();
  const SurfaceConfig back = SurfaceConfig::deserialize(bytes);
  ASSERT_EQ(back.size(), config.size());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(back.phase(i), config.phase(i), util::kTwoPi / 65535.0);
    EXPECT_NEAR(back.amplitude(i), config.amplitude(i), 1.0 / 255.0);
  }
}

TEST(Config, DeserializeRejectsCorruptSizes) {
  EXPECT_THROW(SurfaceConfig::deserialize(std::vector<std::uint8_t>{1, 2}),
               std::invalid_argument);
  auto bytes = SurfaceConfig(3).serialize();
  bytes.pop_back();
  EXPECT_THROW(SurfaceConfig::deserialize(bytes), std::invalid_argument);
}

TEST(Config, MaxPhaseDeltaUsesWrappedDistance) {
  SurfaceConfig a(2), b(2);
  a.set_phase(0, 0.1);
  b.set_phase(0, util::kTwoPi - 0.1);  // 0.2 apart across the wrap
  EXPECT_NEAR(a.max_phase_delta(b), 0.2, 1e-12);
  EXPECT_THROW(a.max_phase_delta(SurfaceConfig(3)), std::invalid_argument);
}

// --- SurfacePanel geometry -------------------------------------------------------

ElementDesign test_design(int phase_bits = 0) {
  ElementDesign d;
  d.spacing_m = 0.005;
  d.phase_bits = phase_bits;
  d.insertion_loss_db = 0.0;
  return d;
}

SurfacePanel make_panel(std::size_t rows, std::size_t cols,
                        ControlGranularity granularity,
                        OperationMode mode = OperationMode::kReflective,
                        int phase_bits = 0) {
  return SurfacePanel("p", geom::Frame({0, 0, 0}, {0, 0, 1}), rows, cols,
                      test_design(phase_bits), mode,
                      Reconfigurability::kProgrammable, granularity);
}

TEST(Panel, GeometryAndDimensions) {
  const SurfacePanel panel = make_panel(4, 8, ControlGranularity::kElement);
  EXPECT_EQ(panel.element_count(), 32u);
  EXPECT_NEAR(panel.width_m(), 0.04, 1e-12);
  EXPECT_NEAR(panel.height_m(), 0.02, 1e-12);
  EXPECT_NEAR(panel.area_m2(), 0.0008, 1e-12);
  // Elements are centered on the panel origin.
  geom::Vec3 centroid{};
  for (const auto& p : panel.element_positions()) centroid += p;
  centroid = centroid / static_cast<double>(panel.element_count());
  EXPECT_NEAR(centroid.distance_to(panel.center()), 0.0, 1e-12);
}

TEST(Panel, ElementPositionsLieInPlane) {
  const SurfacePanel panel = make_panel(3, 3, ControlGranularity::kElement);
  for (const auto& p : panel.element_positions()) {
    EXPECT_NEAR((p - panel.center()).dot(panel.normal()), 0.0, 1e-12);
  }
  EXPECT_THROW(panel.element_position(3, 0), std::out_of_range);
  EXPECT_THROW(panel.element_position(9), std::out_of_range);
}

TEST(Panel, NeighboringElementsAreSpacedByPitch) {
  const SurfacePanel panel = make_panel(2, 2, ControlGranularity::kElement);
  const double d01 =
      panel.element_position(0, 0).distance_to(panel.element_position(0, 1));
  const double d10 =
      panel.element_position(0, 0).distance_to(panel.element_position(1, 0));
  EXPECT_NEAR(d01, 0.005, 1e-12);
  EXPECT_NEAR(d10, 0.005, 1e-12);
}

TEST(Panel, RejectsDegenerateConstruction) {
  EXPECT_THROW(make_panel(0, 4, ControlGranularity::kElement),
               std::invalid_argument);
  ElementDesign bad = test_design();
  bad.spacing_m = 0.0;
  EXPECT_THROW(SurfacePanel("p", geom::Frame({0, 0, 0}, {0, 0, 1}), 2, 2, bad,
                            OperationMode::kReflective,
                            Reconfigurability::kProgrammable,
                            ControlGranularity::kElement),
               std::invalid_argument);
}

// --- Operation-mode service geometry ----------------------------------------------

TEST(Panel, ReflectiveServesFrontSideOnly) {
  const SurfacePanel panel = make_panel(2, 2, ControlGranularity::kElement,
                                        OperationMode::kReflective);
  const geom::Vec3 front_a{0.5, 0.0, 1.0};
  const geom::Vec3 front_b{-0.5, 0.2, 2.0};
  const geom::Vec3 back{0.0, 0.0, -1.0};
  EXPECT_TRUE(panel.serves(front_a, front_b));
  EXPECT_FALSE(panel.serves(front_a, back));
  EXPECT_FALSE(panel.serves(back, back));
}

TEST(Panel, TransmissiveServesOppositeSides) {
  const SurfacePanel panel = make_panel(2, 2, ControlGranularity::kElement,
                                        OperationMode::kTransmissive);
  const geom::Vec3 front{0.0, 0.0, 1.0};
  const geom::Vec3 back{0.0, 0.0, -1.0};
  EXPECT_TRUE(panel.serves(front, back));
  EXPECT_TRUE(panel.serves(back, front));
  EXPECT_FALSE(panel.serves(front, front));
}

TEST(Panel, TransflectiveServesBoth) {
  const SurfacePanel panel = make_panel(2, 2, ControlGranularity::kElement,
                                        OperationMode::kTransflective);
  const geom::Vec3 front{0.0, 0.0, 1.0};
  const geom::Vec3 back{0.0, 0.0, -1.0};
  EXPECT_TRUE(panel.serves(front, back));
  EXPECT_TRUE(panel.serves(front, front));
  EXPECT_TRUE(panel.serves(back, back));
}

TEST(Panel, IncidenceCosine) {
  const SurfacePanel panel = make_panel(2, 2, ControlGranularity::kElement);
  EXPECT_NEAR(panel.incidence_cos({0, 0, 5}), 1.0, 1e-12);
  EXPECT_NEAR(panel.incidence_cos({5, 0, 5}), std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(panel.incidence_cos({5, 0, 0}), 0.0, 1e-12);
}

// --- Control parameterization (parameterized over granularity) ---------------------

struct GranularityCase {
  ControlGranularity granularity;
  std::size_t expected_controls;  // for a 4x6 panel
};

class GranularityTest : public ::testing::TestWithParam<GranularityCase> {};

TEST_P(GranularityTest, ControlCountMatches) {
  const SurfacePanel panel = make_panel(4, 6, GetParam().granularity);
  EXPECT_EQ(panel.control_count(), GetParam().expected_controls);
}

TEST_P(GranularityTest, ExpandExtractRoundTrip) {
  const SurfacePanel panel = make_panel(4, 6, GetParam().granularity);
  std::vector<double> controls(panel.control_count());
  for (std::size_t i = 0; i < controls.size(); ++i) {
    controls[i] = 0.37 * static_cast<double>(i + 1);
  }
  const SurfaceConfig config = panel.expand_controls(controls);
  const auto back = panel.extract_controls(config);
  ASSERT_EQ(back.size(), controls.size());
  for (std::size_t i = 0; i < controls.size(); ++i) {
    EXPECT_NEAR(back[i], util::wrap_two_pi(controls[i]), 1e-9) << "control " << i;
  }
}

TEST_P(GranularityTest, RealizableIsIdempotent) {
  const SurfacePanel panel = make_panel(4, 6, GetParam().granularity);
  SurfaceConfig config(panel.element_count());
  for (std::size_t i = 0; i < config.size(); ++i) {
    config.set_phase(i, 0.21 * static_cast<double>(i));
  }
  const SurfaceConfig once = panel.realizable(config);
  const SurfaceConfig twice = panel.realizable(once);
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(once.phase(i), twice.phase(i), 1e-9);
  }
}

TEST_P(GranularityTest, ExpandedConfigIsConstantWithinGroups) {
  const SurfacePanel panel = make_panel(4, 6, GetParam().granularity);
  std::vector<double> controls(panel.control_count());
  for (std::size_t i = 0; i < controls.size(); ++i) {
    controls[i] = 0.5 * static_cast<double>(i);
  }
  const SurfaceConfig config = panel.expand_controls(controls);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      const double phase = config.phase(r * 6 + c);
      switch (GetParam().granularity) {
        case ControlGranularity::kColumn:
          EXPECT_NEAR(phase, config.phase(c), 1e-12);
          break;
        case ControlGranularity::kRow:
          EXPECT_NEAR(phase, config.phase(r * 6), 1e-12);
          break;
        case ControlGranularity::kGlobal:
          EXPECT_NEAR(phase, config.phase(0), 1e-12);
          break;
        case ControlGranularity::kElement:
          break;  // nothing shared
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGranularities, GranularityTest,
    ::testing::Values(GranularityCase{ControlGranularity::kElement, 24},
                      GranularityCase{ControlGranularity::kColumn, 6},
                      GranularityCase{ControlGranularity::kRow, 4},
                      GranularityCase{ControlGranularity::kGlobal, 1}));

TEST(Panel, ExpandRejectsWrongControlCount) {
  const SurfacePanel panel = make_panel(4, 6, ControlGranularity::kColumn);
  EXPECT_THROW(panel.expand_controls(std::vector<double>(5)),
               std::invalid_argument);
}

TEST(Panel, CoefficientsApplyInsertionLoss) {
  ElementDesign d = test_design();
  d.insertion_loss_db = 2.0;
  const SurfacePanel panel("p", geom::Frame({0, 0, 0}, {0, 0, 1}), 2, 2, d,
                           OperationMode::kReflective,
                           Reconfigurability::kProgrammable,
                           ControlGranularity::kElement);
  const auto coeffs = panel.coefficients(SurfaceConfig(4));
  const double expected = std::pow(10.0, -2.0 / 20.0);
  for (const auto& c : coeffs) EXPECT_NEAR(std::abs(c), expected, 1e-12);
}

TEST(Panel, AmplitudeControlRequiresHardwareSupport) {
  // Without amplitude control, realizable() resets amplitudes to 1.
  const SurfacePanel panel = make_panel(2, 2, ControlGranularity::kElement);
  SurfaceConfig config(4);
  config.set_amplitude(0, 0.5);
  const SurfaceConfig real = panel.realizable(config);
  EXPECT_DOUBLE_EQ(real.amplitude(0), 1.0);
}

TEST(Panel, FocusConfigCophasesPaths) {
  const double f = em::band_center(em::Band::k28GHz);
  ElementDesign d = test_design();
  d.spacing_m = em::wavelength(f) / 2.0;
  const SurfacePanel panel("p", geom::Frame({0, 0, 0}, {0, 0, 1}), 8, 8, d,
                           OperationMode::kReflective,
                           Reconfigurability::kProgrammable,
                           ControlGranularity::kElement);
  const geom::Vec3 source{0.5, 0.2, 2.0};
  const geom::Vec3 target{-0.8, 0.1, 3.0};
  const SurfaceConfig config = panel.focus_config(source, target, f);
  // Every element's total phase (config + propagation) must be equal mod 2pi.
  const double k = em::wavenumber(f);
  double reference = 0.0;
  for (std::size_t i = 0; i < panel.element_count(); ++i) {
    const auto& p = panel.element_position(i);
    const double total = util::wrap_two_pi(
        config.phase(i) - k * (p.distance_to(source) + p.distance_to(target)));
    if (i == 0) {
      reference = total;
    } else {
      EXPECT_NEAR(std::fabs(util::wrap_pi(total - reference)), 0.0, 1e-6);
    }
  }
}

// --- Catalog (Table 1) --------------------------------------------------------------

TEST(Catalog, HasThirteenSystems) {
  const Catalog catalog = Catalog::standard();
  EXPECT_EQ(catalog.entries().size(), 13u);
}

TEST(Catalog, Table1Attributes) {
  const Catalog catalog = Catalog::standard();
  // Spot-check rows of the paper's Table 1.
  const CatalogEntry* laia = catalog.find("LAIA");
  ASSERT_NE(laia, nullptr);
  EXPECT_EQ(laia->band, em::Band::k2_4GHz);
  EXPECT_EQ(laia->control_mode, ControlMode::kPhase);
  EXPECT_EQ(laia->op_mode, OperationMode::kTransmissive);
  EXPECT_FALSE(laia->cost_usd.has_value());  // "/" in the table

  const CatalogEntry* mmwall = catalog.find("mmWall");
  ASSERT_NE(mmwall, nullptr);
  EXPECT_EQ(mmwall->band, em::Band::k24GHz);
  EXPECT_EQ(mmwall->op_mode, OperationMode::kTransflective);
  EXPECT_EQ(mmwall->granularity, ControlGranularity::kColumn);
  EXPECT_NEAR(mmwall->cost_usd.value(), 10000.0, 1e-9);

  const CatalogEntry* autos = catalog.find("AutoMS");
  ASSERT_NE(autos, nullptr);
  EXPECT_EQ(autos->band, em::Band::k60GHz);
  EXPECT_EQ(autos->reconfigurability, Reconfigurability::kPassive);
  EXPECT_LE(autos->cost_usd.value(), 2.0);

  const CatalogEntry* scrolls = catalog.find("Scrolls");
  ASSERT_NE(scrolls, nullptr);
  EXPECT_EQ(scrolls->control_mode, ControlMode::kFrequency);
  EXPECT_EQ(scrolls->granularity, ControlGranularity::kRow);
  EXPECT_TRUE(scrolls->band_high.has_value());
  EXPECT_EQ(scrolls->band_label(), "0.9-5 GHz");
}

TEST(Catalog, FindUnknownReturnsNull) {
  const Catalog catalog = Catalog::standard();
  EXPECT_EQ(catalog.find("NotASurface"), nullptr);
}

TEST(Catalog, DesignsForBandFiltersCorrectly) {
  const Catalog catalog = Catalog::standard();
  const auto at_24 = catalog.designs_for_band(em::Band::k24GHz);
  // mmWall, NR-Surface, PMSat cover 24 GHz.
  EXPECT_EQ(at_24.size(), 3u);
  const auto at_60 = catalog.designs_for_band(em::Band::k60GHz);
  EXPECT_EQ(at_60.size(), 2u);  // MilliMirror, AutoMS
}

TEST(Catalog, CheapestForQueries) {
  const Catalog catalog = Catalog::standard();
  const auto* cheapest_60 = catalog.cheapest_for(em::Band::k60GHz, false);
  ASSERT_NE(cheapest_60, nullptr);
  EXPECT_EQ(cheapest_60->name, "AutoMS");
  const auto* programmable_24 = catalog.cheapest_for(em::Band::k24GHz, true);
  ASSERT_NE(programmable_24, nullptr);
  EXPECT_EQ(programmable_24->name, "NR-Surface");
  // No programmable design exists at 60 GHz in the catalog.
  EXPECT_EQ(catalog.cheapest_for(em::Band::k60GHz, true), nullptr);
}

TEST(Catalog, InstantiateBuildsMatchingPanel) {
  const Catalog catalog = Catalog::standard();
  const CatalogEntry* entry = catalog.find("NR-Surface");
  const SurfacePanel panel = instantiate(
      *entry, geom::Frame({1, 2, 3}, {0, -1, 0}), 10, 12);
  EXPECT_EQ(panel.rows(), 10u);
  EXPECT_EQ(panel.cols(), 12u);
  EXPECT_EQ(panel.granularity(), ControlGranularity::kColumn);
  EXPECT_EQ(panel.op_mode(), OperationMode::kReflective);
  // Element pitch is half-wavelength at 24 GHz.
  EXPECT_NEAR(panel.design().spacing_m,
              em::wavelength(em::band_center(em::Band::k24GHz)) / 2.0, 1e-9);
}

TEST(Catalog, PassiveInstantiationGetsElementWisePattern) {
  // Passive surfaces choose their pattern freely at fabrication, so the
  // behavioural panel is element-wise even though it is not reconfigurable.
  const Catalog catalog = Catalog::standard();
  const SurfacePanel panel = instantiate(
      *catalog.find("AutoMS"), geom::Frame({0, 0, 0}, {0, 0, 1}), 8, 8);
  EXPECT_EQ(panel.granularity(), ControlGranularity::kElement);
  EXPECT_EQ(panel.reconfigurability(), Reconfigurability::kPassive);
}

// --- Cost model ---------------------------------------------------------------------

TEST(Cost, PassiveIsOrdersOfMagnitudeCheaper) {
  const CostModel model;
  const Catalog catalog = Catalog::standard();
  const SurfacePanel passive = instantiate(
      *catalog.find("AutoMS"), geom::Frame({0, 0, 0}, {0, 0, 1}), 32, 32);
  const SurfacePanel programmable = instantiate(
      *catalog.find("NR-Surface"), geom::Frame({0, 0, 0}, {0, 0, 1}), 32, 32);
  const double cost_passive = model.panel_cost_usd(passive);
  const double cost_programmable = model.panel_cost_usd(programmable);
  EXPECT_GT(cost_programmable / cost_passive, 50.0);
}

TEST(Cost, SharedLineControlIsDiscounted) {
  const CostModel model;
  const auto pose = geom::Frame({0, 0, 0}, {0, 0, 1});
  const SurfacePanel element("e", pose, 16, 16, ElementDesign{},
                             OperationMode::kReflective,
                             Reconfigurability::kProgrammable,
                             ControlGranularity::kElement);
  const SurfacePanel column("c", pose, 16, 16, ElementDesign{},
                            OperationMode::kReflective,
                            Reconfigurability::kProgrammable,
                            ControlGranularity::kColumn);
  EXPECT_LT(model.panel_cost_usd(column), model.panel_cost_usd(element));
}

TEST(Cost, CostScalesWithElementCount) {
  const CostModel model;
  const Catalog catalog = Catalog::standard();
  const auto pose = geom::Frame({0, 0, 0}, {0, 0, 1});
  const SurfacePanel small =
      instantiate(*catalog.find("NR-Surface"), pose, 8, 8);
  const SurfacePanel large =
      instantiate(*catalog.find("NR-Surface"), pose, 16, 16);
  EXPECT_GT(model.panel_cost_usd(large), model.panel_cost_usd(small));
  EXPECT_GT(CostModel::panel_area_m2(large), CostModel::panel_area_m2(small));
}

}  // namespace
}  // namespace surfos::surface
