// Streaming observability plane: subscription registry semantics (interval
// due-ness, delta anchors, the bounded drop-oldest outbox with exact
// accounting), the SLO watchdog state machine, cursor-paginated trace
// streaming, and the daemon-level drill — a socket subscriber receiving
// pushed kEvent frames from hand-driven epochs, and a saturated admission
// queue flipping a site to kDegraded within three epochs.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "broker/demand.hpp"
#include "core/config.hpp"
#include "daemon/client.hpp"
#include "daemon/daemon.hpp"
#include "daemon/slo.hpp"
#include "daemon/subscription.hpp"
#include "daemon/tags.hpp"
#include "proto/serialize.hpp"
#include "proto/wire.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"

namespace surfos::daemon {
namespace {

std::string temp_path(const char* stem) {
  static int counter = 0;
  return "/tmp/ss_" + std::to_string(::getpid()) + "_" + stem +
         std::to_string(++counter) + ".sock";
}

DaemonOptions test_options(const std::string& socket) {
  DaemonOptions options;
  options.socket_path = socket;
  options.epoch_ms = 20;
  options.ticker = false;  // epochs driven by hand
  options.grid_n = 2;
  return options;
}

/// Hand-built sorted snapshot: the counters a test wants this "epoch".
telemetry::Snapshot make_snapshot(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::vector<std::pair<std::string, double>>& gauges = {}) {
  telemetry::Snapshot snap;
  for (const auto& [name, value] : counters) {
    snap.counters.push_back({name, value, true});
  }
  for (const auto& [name, value] : gauges) {
    snap.gauges.push_back({name, value});
  }
  return snap;
}

/// Everything a decoded kEvent frame carries, flattened for assertions.
struct Event {
  std::uint64_t sub_id = 0;
  std::uint8_t topic = 0;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  std::uint64_t dropped = 0;
  bool baseline = false;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::size_t trace_events = 0;
  std::vector<SiteHealth> health;
};

Event parse_event(const proto::WireFrame& frame) {
  EXPECT_EQ(frame.type, proto::MsgType::kEvent);
  Event ev;
  proto::TlvReader r(frame.payload);
  while (const auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kSubId: ev.sub_id = proto::tlv_u64(*tlv).value_or(0); break;
      case tag::kSubTopic: ev.topic = proto::tlv_u8(*tlv).value_or(0); break;
      case tag::kEventEpoch:
        ev.epoch = proto::tlv_u64(*tlv).value_or(0);
        break;
      case tag::kEventSeq: ev.seq = proto::tlv_u64(*tlv).value_or(0); break;
      case tag::kDroppedEvents:
        ev.dropped = proto::tlv_u64(*tlv).value_or(0);
        break;
      case tag::kEventBaseline:
        ev.baseline = proto::tlv_u8(*tlv).value_or(0) != 0;
        break;
      case tag::kEventTrace: ++ev.trace_events; break;
      case tag::kEventCounter:
      case tag::kEventGauge: {
        std::string name;
        std::uint64_t u64 = 0;
        double f64 = 0.0;
        proto::TlvReader n(tlv->value);
        while (const auto field = n.next()) {
          if (field->tag == tag::kMetricName) {
            name = proto::tlv_string(*field);
          } else if (field->tag == tag::kMetricU64) {
            u64 = proto::tlv_u64(*field).value_or(0);
          } else if (field->tag == tag::kMetricF64) {
            f64 = proto::tlv_f64(*field).value_or(0.0);
          }
        }
        if (tlv->tag == tag::kEventCounter) {
          ev.counters[name] = u64;
        } else {
          ev.gauges[name] = f64;
        }
        break;
      }
      case tag::kEventSiteHealth: {
        SiteHealth site;
        proto::TlvReader n(tlv->value);
        while (const auto field = n.next()) {
          if (field->tag == tag::kHealthSite) {
            site.site_id = proto::tlv_string(*field);
          } else if (field->tag == tag::kHealthState) {
            site.state =
                static_cast<SloState>(proto::tlv_u8(*field).value_or(0));
          } else if (field->tag == tag::kHealthEpochs) {
            site.epochs_in_state = proto::tlv_u64(*field).value_or(0);
          } else if (field->tag == tag::kHealthReason) {
            site.reason = proto::tlv_string(*field);
          }
        }
        ev.health.push_back(std::move(site));
        break;
      }
      default: break;
    }
  }
  return ev;
}

std::vector<Event> parse_frames(
    const std::vector<std::vector<std::uint8_t>>& frames) {
  std::vector<Event> events;
  for (const auto& bytes : frames) {
    const proto::FrameDecode decode = proto::try_decode_frame(bytes);
    EXPECT_TRUE(decode.frame.has_value());
    if (decode.frame) events.push_back(parse_event(*decode.frame));
  }
  return events;
}

class StreamingTest : public ::testing::Test {
 protected:
  void TearDown() override { core::clear_config(); }
};

// --- SubscriptionRegistry ----------------------------------------------------

TEST_F(StreamingTest, RegistryPublishesDeltasAtTheRequestedInterval) {
  SubscriptionRegistry registry;
  registry.add_connection(7);  // take_output never touches the fd
  SubscriptionSpec spec;
  spec.topic = SubTopic::kMetrics;
  spec.interval = 3;
  const auto sub = registry.subscribe(7, spec);
  ASSERT_TRUE(sub.ok());

  telemetry::Timeseries series(16);
  for (std::uint64_t epoch = 1; epoch <= 7; ++epoch) {
    series.record(epoch,
                  make_snapshot({{"a.ticks", epoch}, {"b.steady", 5}}),
                  /*epoch_ms=*/1.0, /*flush_us=*/10.0);
    SubscriptionRegistry::EpochContext ctx;
    ctx.epoch = epoch;
    ctx.series = &series;
    registry.publish(ctx);
  }

  const auto events = parse_frames(registry.take_output(7));
  ASSERT_EQ(events.size(), 3u);  // due at epochs 1, 4, 7
  EXPECT_EQ(events[0].epoch, 1u);
  EXPECT_EQ(events[1].epoch, 4u);
  EXPECT_EQ(events[2].epoch, 7u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[2].seq, 3u);

  // First event: full baseline, both counters. Later events: deltas with
  // only the counter that changed since the anchor.
  EXPECT_TRUE(events[0].baseline);
  EXPECT_EQ(events[0].counters.size(), 2u);
  EXPECT_EQ(events[0].counters.at("a.ticks"), 1u);
  EXPECT_FALSE(events[1].baseline);
  EXPECT_EQ(events[1].counters.size(), 1u);
  EXPECT_EQ(events[1].counters.at("a.ticks"), 4u);
  EXPECT_EQ(events[2].counters.count("b.steady"), 0u);
  EXPECT_EQ(registry.stats().published, 3u);
  EXPECT_EQ(registry.stats().dropped, 0u);
}

TEST_F(StreamingTest, RegistryPrefixFilterNarrowsMetrics) {
  SubscriptionRegistry registry;
  registry.add_connection(7);
  SubscriptionSpec spec;
  spec.topic = SubTopic::kMetrics;
  spec.prefix = "hal.";
  ASSERT_TRUE(registry.subscribe(7, spec).ok());

  telemetry::Timeseries series(8);
  series.record(1, make_snapshot({{"broker.queued", 3}, {"hal.writes", 9}}),
                1.0, 0.0);
  SubscriptionRegistry::EpochContext ctx;
  ctx.epoch = 1;
  ctx.series = &series;
  registry.publish(ctx);

  const auto events = parse_frames(registry.take_output(7));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].counters.size(), 1u);
  EXPECT_EQ(events[0].counters.count("hal.writes"), 1u);
}

TEST_F(StreamingTest, DropOldestAccountingIsExact) {
  core::install_config(core::Config());
  ASSERT_TRUE(core::set_config_knob("SURFOS_SUB_OUTBOX", 4).ok());

  SubscriptionRegistry registry;
  registry.add_connection(9);
  SubscriptionSpec spec;
  spec.topic = SubTopic::kMetrics;
  ASSERT_TRUE(registry.subscribe(9, spec).ok());

  // Ten epochs, never flushed: a 4-frame outbox keeps the newest 4 events
  // and drops exactly 6 — and every publish is enqueue-only, so a stalled
  // reader costs the publisher nothing.
  telemetry::Timeseries series(16);
  for (std::uint64_t epoch = 1; epoch <= 10; ++epoch) {
    series.record(epoch, make_snapshot({{"a.ticks", epoch}}), 1.0, 0.0);
    SubscriptionRegistry::EpochContext ctx;
    ctx.epoch = epoch;
    ctx.series = &series;
    registry.publish(ctx);
  }

  const SubscriptionStats stats = registry.stats();
  EXPECT_EQ(stats.published, 10u);
  EXPECT_EQ(stats.dropped, 6u);

  const auto events = parse_frames(registry.take_output(9));
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].epoch, 7 + i);  // newest four survive
    EXPECT_EQ(events[i].seq, 7 + i);    // seq counts published, not delivered
    // Every drop forces the next event back to a full baseline, so a
    // subscriber that missed deltas can always resync from what it gets.
    EXPECT_TRUE(events[i].baseline);
  }
  // The drop counter is cumulative and monotone across the stream.
  EXPECT_EQ(events.back().dropped, 5u);  // drops before the last encode
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].dropped, events[i - 1].dropped);
  }
}

TEST_F(StreamingTest, StalledSocketSubscriberDropsWithoutKillingConnection) {
  core::install_config(core::Config());
  ASSERT_TRUE(core::set_config_knob("SURFOS_SUB_OUTBOX", 2).ok());

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_EQ(::fcntl(sv[0], F_SETFL, O_NONBLOCK), 0);
  const int sndbuf = 4096;  // small kernel buffer: stalls fast
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof sndbuf);

  SubscriptionRegistry registry;
  registry.add_connection(sv[0]);
  SubscriptionSpec spec;
  spec.topic = SubTopic::kMetrics;
  ASSERT_TRUE(registry.subscribe(sv[0], spec).ok());

  // The peer (sv[1]) never reads. Publish + flush until the kernel buffer
  // and the 2-frame outbox both fill and drops begin; EAGAIN must be
  // treated as "slow", never as "dead".
  telemetry::Timeseries series(8);
  bool alive = true;
  std::uint64_t epoch = 0;
  while (registry.stats().dropped == 0 && epoch < 5000) {
    ++epoch;
    series.record(epoch, make_snapshot({{"a.ticks", epoch}}), 1.0, 0.0);
    SubscriptionRegistry::EpochContext ctx;
    ctx.epoch = epoch;
    ctx.series = &series;
    registry.publish(ctx);
    alive = registry.flush_to_fd(sv[0]);
    ASSERT_TRUE(alive) << "EAGAIN misread as a dead peer at epoch " << epoch;
  }
  EXPECT_GT(registry.stats().dropped, 0u);
  EXPECT_EQ(registry.stats().published, epoch);

  // The peer wakes up and reads: the stream resumes with a baseline.
  ASSERT_EQ(::fcntl(sv[1], F_SETFL, O_NONBLOCK), 0);  // drain, don't wait
  std::uint8_t sink[65536];
  while (::read(sv[1], sink, sizeof sink) > 0) {
  }
  EXPECT_TRUE(registry.flush_to_fd(sv[0]));
  registry.drop_connection(sv[0]);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST_F(StreamingTest, SubscribeRequiresAStreamingConnection) {
  SubscriptionRegistry registry;
  SubscriptionSpec spec;
  EXPECT_EQ(registry.subscribe(42, spec).error().code,
            ErrorCode::kUnavailable);
  registry.add_connection(42);
  const auto sub = registry.subscribe(42, spec);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(registry.unsubscribe(42, sub.value()).ok());
  EXPECT_EQ(registry.unsubscribe(42, sub.value()).error().code,
            ErrorCode::kNotFound);
}

// --- SLO watchdog ------------------------------------------------------------

TEST_F(StreamingTest, WatchdogClassifiesAndRecovers) {
  SloWatchdog watchdog;
  SloThresholds thresholds;  // defaults: streak 3, queue 80%, retry 30%, shed 1

  SloInputs calm;
  calm.queue_depth = 1;
  calm.queue_capacity = 16;
  EXPECT_EQ(watchdog.evaluate("site0", calm, thresholds).state,
            SloState::kHealthy);

  // Queue at 90% of capacity: degraded immediately, with the cause named.
  SloInputs saturated = calm;
  saturated.queue_depth = 15;
  const SiteHealth degraded = watchdog.evaluate("site0", saturated, thresholds);
  EXPECT_EQ(degraded.state, SloState::kDegraded);
  EXPECT_NE(degraded.reason.find("queue"), std::string::npos);

  // Sustained saturation (2x the overrun-streak threshold of bad epochs)
  // escalates to unhealthy; recovery drops straight back to healthy.
  SiteHealth latest = degraded;
  for (int i = 0; i < 6; ++i) {
    latest = watchdog.evaluate("site0", saturated, thresholds);
  }
  EXPECT_EQ(latest.state, SloState::kUnhealthy);
  EXPECT_EQ(watchdog.evaluate("site0", calm, thresholds).state,
            SloState::kHealthy);

  // Cumulative counters are differenced internally: a one-epoch shed burst
  // degrades, the next epoch with no NEW sheds is healthy again.
  SloInputs shed = calm;
  shed.shed_total = 3;
  EXPECT_EQ(watchdog.evaluate("s1", calm, thresholds).state,
            SloState::kHealthy);
  EXPECT_EQ(watchdog.evaluate("s1", shed, thresholds).state,
            SloState::kDegraded);
  EXPECT_EQ(watchdog.evaluate("s1", shed, thresholds).state,
            SloState::kHealthy);

  // ARQ retry rate: 50% of this epoch's sends retried >= 30% threshold.
  SloInputs retries = calm;
  retries.arq_send_total = 100;
  retries.arq_retry_total = 2;
  EXPECT_EQ(watchdog.evaluate("s2", retries, thresholds).state,
            SloState::kHealthy);
  retries.arq_send_total = 200;
  retries.arq_retry_total = 52;
  const SiteHealth arq = watchdog.evaluate("s2", retries, thresholds);
  EXPECT_EQ(arq.state, SloState::kDegraded);
  EXPECT_NE(arq.reason.find("arq"), std::string::npos);

  // Epoch overruns only degrade as a STREAK (transient spikes are fine).
  SloInputs overrun = calm;
  overrun.epoch_overrun = true;
  EXPECT_EQ(watchdog.evaluate("s3", overrun, thresholds).state,
            SloState::kHealthy);
  EXPECT_EQ(watchdog.evaluate("s3", overrun, thresholds).state,
            SloState::kHealthy);
  const SiteHealth streak = watchdog.evaluate("s3", overrun, thresholds);
  EXPECT_EQ(streak.state, SloState::kDegraded);
  EXPECT_NE(streak.reason.find("overrun"), std::string::npos);

  EXPECT_EQ(SloWatchdog::fleet_state({}), SloState::kHealthy);
  EXPECT_EQ(SloWatchdog::fleet_state({degraded, streak}), SloState::kDegraded);
}

// --- Daemon integration ------------------------------------------------------

std::vector<std::uint8_t> submit_payload(const std::string& app_id) {
  std::vector<std::uint8_t> payload;
  proto::TlvWriter w(payload);
  w.put_string(tag::kAppId, app_id);
  w.put_bytes(tag::kDemand,
              proto::to_wire(broker::demand_profile(
                  broker::AppClass::kFileTransfer, "ep_" + app_id)));
  return payload;
}

proto::WireFrame make_request(proto::MsgType type, std::uint64_t trace_id,
                              std::vector<std::uint8_t> payload = {}) {
  proto::WireFrame frame;
  frame.type = type;
  frame.trace_id = trace_id;
  frame.payload = std::move(payload);
  return frame;
}

TEST_F(StreamingTest, SocketSubscriberReceivesEventsAtTheRequestedInterval) {
  const std::string socket_path = temp_path("sub");
  Daemon daemon(test_options(socket_path));
  ASSERT_TRUE(daemon.start().ok());

  auto connected = Client::connect(socket_path);
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected.value());

  std::vector<std::uint8_t> payload;
  proto::TlvWriter w(payload);
  w.put_u8(tag::kSubTopic, static_cast<std::uint8_t>(SubTopic::kMetrics));
  w.put_u32(tag::kSubInterval, 2);
  const auto ack = client.call(proto::MsgType::kSubscribe, payload);
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack.value().type, proto::MsgType::kSubscribeAck);
  std::uint64_t sub_id = 0;
  {
    proto::TlvReader r(ack.value().payload);
    while (const auto tlv = r.next()) {
      if (tlv->tag == tag::kSubId) sub_id = proto::tlv_u64(*tlv).value_or(0);
    }
  }
  EXPECT_NE(sub_id, 0u);

  // Interval 2: epochs 1 and 3 publish, epoch 2 is skipped. The server
  // thread flushes after each hand-driven epoch (wake-pipe poke), so a
  // blocking recv() is all the synchronization the test needs.
  daemon.run_epoch();
  daemon.run_epoch();
  daemon.run_epoch();

  auto first = client.recv();
  ASSERT_TRUE(first.ok());
  const Event ev1 = parse_event(first.value());
  EXPECT_EQ(ev1.sub_id, sub_id);
  EXPECT_EQ(ev1.epoch, 1u);
  EXPECT_EQ(ev1.seq, 1u);
  EXPECT_TRUE(ev1.baseline);
  EXPECT_FALSE(ev1.counters.empty());  // full snapshot on first contact

  auto second = client.recv();
  ASSERT_TRUE(second.ok());
  const Event ev2 = parse_event(second.value());
  EXPECT_EQ(ev2.epoch, 3u);
  EXPECT_EQ(ev2.seq, 2u);
  EXPECT_FALSE(ev2.baseline);  // delta against the epoch-1 anchor

  // Control requests still round-trip on the subscribed connection:
  // call() skips any interleaved kEvent frames.
  daemon.run_epoch();  // epoch 4 is not due (next due epoch is 5)
  daemon.run_epoch();  // epoch 5 publishes
  const auto status = client.call(proto::MsgType::kGetStatus, {});
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().type, proto::MsgType::kStatusReply);

  // Unsubscribe stops the stream.
  std::vector<std::uint8_t> unsub;
  proto::TlvWriter uw(unsub);
  uw.put_u64(tag::kSubId, sub_id);
  const auto bye = client.call(proto::MsgType::kUnsubscribe, unsub);
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(bye.value().type, proto::MsgType::kOk);
  EXPECT_EQ(daemon.subscription_stats().subscriptions, 0u);
  daemon.stop();
}

TEST_F(StreamingTest, SloFlipsDegradedWithinThreeEpochsOfQueueSaturation) {
  core::install_config(core::Config());
  const std::string socket_path = temp_path("slo");
  Daemon daemon(test_options(socket_path));

  // Watch the health topic through the registry directly (no socket needed
  // for publication semantics — take_output drains the outbox).
  daemon.subscriptions().add_connection(77);
  SubscriptionSpec health_spec;
  health_spec.topic = SubTopic::kHealth;
  ASSERT_TRUE(daemon.subscriptions().subscribe(77, health_spec).ok());

  // Induce the overload with knobs, as an operator would: a 10-deep
  // admission queue that only drains one demand per epoch.
  for (const auto& [knob, value] :
       std::vector<std::pair<std::string, std::uint64_t>>{
           {"SURFOS_ADMIT_QUEUE", 10}, {"SURFOS_PUMP_MAX", 1}}) {
    std::vector<std::uint8_t> payload;
    proto::TlvWriter w(payload);
    w.put_string(tag::kKnobName, knob);
    w.put_u64(tag::kKnobValue, value);
    ASSERT_EQ(daemon
                  .handle_request(
                      make_request(proto::MsgType::kSetKnob, 1, payload))
                  .type,
              proto::MsgType::kOk);
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(daemon
                  .handle_request(make_request(
                      proto::MsgType::kSubmitDemand, 2,
                      submit_payload("bulk" + std::to_string(i))))
                  .type,
              proto::MsgType::kOk);
  }

  // Queue sits at 9/10 after the first pump: >= 80% must flip the site to
  // kDegraded within three epochs of the saturation.
  bool degraded = false;
  std::string reason;
  for (int epoch = 0; epoch < 3 && !degraded; ++epoch) {
    daemon.run_epoch();
    for (const SiteHealth& site : daemon.health()) {
      if (site.state == SloState::kDegraded) {
        degraded = true;
        reason = site.reason;
      }
    }
  }
  EXPECT_TRUE(degraded);
  EXPECT_NE(reason.find("queue"), std::string::npos) << reason;

  // The verdict reaches both consumers: the health topic stream...
  const auto events = parse_frames(daemon.subscriptions().take_output(77));
  ASSERT_FALSE(events.empty());
  bool streamed = false;
  for (const Event& event : events) {
    for (const SiteHealth& site : event.health) {
      if (site.state == SloState::kDegraded) streamed = true;
    }
  }
  EXPECT_TRUE(streamed);

  // ...and the kStatusReply summary.
  const auto status =
      daemon.handle_request(make_request(proto::MsgType::kGetStatus, 3));
  ASSERT_EQ(status.type, proto::MsgType::kStatusReply);
  std::uint8_t fleet = 0;
  std::size_t site_rows = 0;
  proto::TlvReader r(status.payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kFleetHealth) {
      fleet = proto::tlv_u8(*tlv).value_or(0);
    }
    if (tlv->tag == tag::kSiteHealth) ++site_rows;
  }
  EXPECT_EQ(static_cast<SloState>(fleet), SloState::kDegraded);
  EXPECT_GT(site_rows, 0u);
}

TEST_F(StreamingTest, TraceCursorPaginationDrainsWithoutDuplicates) {
  telemetry::set_trace_enabled(true);  // flight recorder is off by default
  const std::string socket_path = temp_path("cursor");
  Daemon daemon(test_options(socket_path));
  // Enough epochs that the recorder holds several 16-event pages.
  for (int i = 0; i < 12; ++i) daemon.run_epoch();

  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::uint64_t cursor_ts = 0, cursor_span = 0;
  std::uint64_t last_ts = 0, last_span = 0;
  bool done = false;
  int pages = 0;
  while (!done && pages < 1000) {
    ++pages;
    std::vector<std::uint8_t> payload;
    proto::TlvWriter w(payload);
    w.put_u64(tag::kTraceCursorTs, cursor_ts);
    w.put_u64(tag::kTraceCursorSpan, cursor_span);
    w.put_u32(tag::kTraceLimit, 16);
    const auto reply = daemon.handle_request(
        make_request(proto::MsgType::kStreamTraces, 0, payload));
    ASSERT_EQ(reply.type, proto::MsgType::kTraceChunk);
    proto::TlvReader r(reply.payload);
    while (const auto tlv = r.next()) {
      switch (tlv->tag) {
        case tag::kTraceEvent: {
          std::uint64_t ts = 0, span = 0;
          proto::TlvReader n(tlv->value);
          while (const auto field = n.next()) {
            if (field->tag == tag::kEvTs) {
              ts = proto::tlv_u64(*field).value_or(0);
            } else if (field->tag == tag::kEvSpan) {
              span = proto::tlv_u64(*field).value_or(0);
            }
          }
          // Strictly advancing (ts, span) order means no duplicates and no
          // torn pages, even though new events keep arriving between pages.
          EXPECT_TRUE(std::make_pair(ts, span) >
                      std::make_pair(last_ts, last_span));
          last_ts = ts;
          last_span = span;
          EXPECT_TRUE(seen.emplace(ts, span).second);
          break;
        }
        case tag::kTraceNextTs:
          cursor_ts = proto::tlv_u64(*tlv).value_or(0);
          break;
        case tag::kTraceNextSpan:
          cursor_span = proto::tlv_u64(*tlv).value_or(0);
          break;
        case tag::kTraceDone:
          done = proto::tlv_u8(*tlv).value_or(0) != 0;
          break;
        default: break;
      }
    }
  }
  EXPECT_TRUE(done);
  EXPECT_GT(seen.size(), 16u);  // really paginated, not a one-shot

  // Legacy mode: a request without cursor tags still answers one-shot JSON.
  const auto legacy =
      daemon.handle_request(make_request(proto::MsgType::kStreamTraces, 0));
  ASSERT_EQ(legacy.type, proto::MsgType::kTraceChunk);
  bool has_json = false;
  proto::TlvReader lr(legacy.payload);
  while (const auto tlv = lr.next()) {
    if (tlv->tag == tag::kTraceJson) has_json = true;
  }
  EXPECT_TRUE(has_json);
  telemetry::set_trace_enabled(false);
}

TEST_F(StreamingTest, SubscribeValidationOverTheWire) {
  const std::string socket_path = temp_path("val");
  Daemon daemon(test_options(socket_path));

  const auto error_code_of = [](const proto::WireFrame& reply) {
    EXPECT_EQ(reply.type, proto::MsgType::kError);
    proto::TlvReader r(reply.payload);
    while (const auto tlv = r.next()) {
      if (tlv->tag == tag::kErrorCode) {
        return static_cast<ErrorCode>(proto::tlv_u32(*tlv).value_or(0));
      }
    }
    return ErrorCode::kOk;
  };

  // In-process requests have no streaming connection to attach to.
  std::vector<std::uint8_t> good;
  proto::TlvWriter w(good);
  w.put_u8(tag::kSubTopic, static_cast<std::uint8_t>(SubTopic::kMetrics));
  EXPECT_EQ(error_code_of(daemon.handle_request(
                make_request(proto::MsgType::kSubscribe, 1, good))),
            ErrorCode::kUnavailable);

  // Unknown topic: malformed, regardless of transport.
  std::vector<std::uint8_t> bad;
  proto::TlvWriter b(bad);
  b.put_u8(tag::kSubTopic, 200);
  EXPECT_EQ(error_code_of(daemon.handle_request(
                make_request(proto::MsgType::kSubscribe, 2, bad))),
            ErrorCode::kMalformedFrame);
}

}  // namespace
}  // namespace surfos::daemon
