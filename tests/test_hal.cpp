// Hardware manager tests: CRC, the control-plane wire protocol (round trips
// and every decode failure), the simulated control link (latency, loss,
// corruption — failure injection), drivers (programmable async apply,
// passive one-time fabrication, unified primitives), the device registry,
// and endpoint-feedback codebook selection.
#include <gtest/gtest.h>

#include "em/propagation.hpp"
#include "hal/batch.hpp"
#include "hal/crc32.hpp"
#include "hal/driver.hpp"
#include "hal/codebook.hpp"
#include "hal/feedback.hpp"
#include "hal/link.hpp"
#include "hal/protocol.hpp"
#include "hal/registry.hpp"
#include "util/units.hpp"

namespace surfos::hal {
namespace {

surface::SurfacePanel test_panel(
    surface::ControlGranularity granularity =
        surface::ControlGranularity::kElement,
    bool amplitude_control = false) {
  surface::ElementDesign d;
  d.spacing_m = 0.005;
  d.insertion_loss_db = 1.0;
  d.amplitude_control = amplitude_control;
  return surface::SurfacePanel("panel", geom::Frame({0, 0, 0}, {0, 0, 1}), 4,
                               4, d, surface::OperationMode::kReflective,
                               surface::Reconfigurability::kProgrammable,
                               granularity);
}

HardwareSpec test_spec(Micros delay = 300, std::size_t slots = 4) {
  HardwareSpec spec;
  spec.model = "test";
  spec.control_delay_us = delay;
  spec.config_slots = slots;
  spec.band_response[em::Band::k28GHz] = 0.9;
  return spec;
}

// --- crc32 -----------------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // IEEE CRC-32 of "123456789" is 0xCBF43926.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(digits), 0xCBF43926u);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0xAB);
  const std::uint32_t original = crc32(data);
  data[17] ^= 0x04;
  EXPECT_NE(crc32(data), original);
}

// --- protocol ----------------------------------------------------------------------

TEST(Protocol, EncodeDecodeRoundTrip) {
  Frame frame;
  frame.type = MessageType::kWriteConfig;
  frame.sequence = 0xDEADBEEF;
  frame.slot = 7;
  frame.payload = {1, 2, 3, 4, 5};
  const auto bytes = encode_frame(frame);
  const DecodeResult decoded = decode_frame(bytes);
  ASSERT_TRUE(decoded.frame.has_value());
  EXPECT_EQ(decoded.consumed, bytes.size());
  EXPECT_EQ(decoded.frame->type, MessageType::kWriteConfig);
  EXPECT_EQ(decoded.frame->sequence, 0xDEADBEEFu);
  EXPECT_EQ(decoded.frame->slot, 7);
  EXPECT_EQ(decoded.frame->payload, frame.payload);
}

TEST(Protocol, EmptyPayloadRoundTrip) {
  Frame frame;
  frame.type = MessageType::kSelectConfig;
  frame.slot = 3;
  const auto bytes = encode_frame(frame);
  const DecodeResult decoded = decode_frame(bytes);
  ASSERT_TRUE(decoded.frame.has_value());
  EXPECT_TRUE(decoded.frame->payload.empty());
}

TEST(Protocol, TruncatedBufferReported) {
  Frame frame;
  frame.payload = {9, 9, 9};
  auto bytes = encode_frame(frame);
  bytes.resize(bytes.size() - 2);
  const DecodeResult decoded = decode_frame(bytes);
  EXPECT_FALSE(decoded.frame.has_value());
  EXPECT_EQ(decoded.error, DecodeError::kTruncated);
}

TEST(Protocol, BadMagicConsumesOneByteForResync) {
  auto bytes = encode_frame(Frame{});
  bytes[0] = 0x00;
  const DecodeResult decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.error, DecodeError::kBadMagic);
  EXPECT_EQ(decoded.consumed, 1u);
}

TEST(Protocol, BadCrcDetected) {
  Frame frame;
  frame.payload = {1, 2, 3};
  auto bytes = encode_frame(frame);
  bytes[kHeaderSize] ^= 0x01;  // flip a payload bit
  const DecodeResult decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.error, DecodeError::kBadCrc);
  EXPECT_EQ(decoded.consumed, bytes.size());
}

TEST(Protocol, BadVersionAndTypeDetected) {
  auto bytes = encode_frame(Frame{});
  bytes[2] = 99;  // version — CRC now stale, but version is checked first
  EXPECT_EQ(decode_frame(bytes).error, DecodeError::kBadVersion);
  bytes = encode_frame(Frame{});
  bytes[3] = 200;  // type
  EXPECT_EQ(decode_frame(bytes).error, DecodeError::kBadType);
}

// --- link --------------------------------------------------------------------------

TEST(Link, DeliversAfterLatency) {
  SimClock clock;
  ControlLink link(&clock, {500, 0.0, 0.0, 1});
  const std::uint8_t data[] = {1, 2, 3};
  link.send(data);
  EXPECT_TRUE(link.receive_ready().empty());
  clock.advance(499);
  EXPECT_TRUE(link.receive_ready().empty());
  clock.advance(1);
  const auto ready = link.receive_ready();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(link.receive_ready().empty());  // consumed
}

TEST(Link, PreservesOrder) {
  SimClock clock;
  ControlLink link(&clock, {100, 0.0, 0.0, 1});
  const std::uint8_t a[] = {1};
  const std::uint8_t b[] = {2};
  link.send(a);
  clock.advance(10);
  link.send(b);
  clock.advance(200);
  const auto ready = link.receive_ready();
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0][0], 1);
  EXPECT_EQ(ready[1][0], 2);
}

TEST(Link, LossDropsDatagramsDeterministically) {
  SimClock clock;
  ControlLink link(&clock, {0, 0.5, 0.0, 42});
  const std::uint8_t data[] = {7};
  for (int i = 0; i < 200; ++i) link.send(data);
  clock.advance(1);
  const auto ready = link.receive_ready();
  EXPECT_EQ(link.sent_count(), 200u);
  EXPECT_EQ(ready.size() + link.dropped_count(), 200u);
  EXPECT_NEAR(static_cast<double>(link.dropped_count()), 100.0, 30.0);
}

TEST(Link, CorruptionFlipsExactlyOneBit) {
  SimClock clock;
  ControlLink link(&clock, {0, 0.0, 1.0, 7});
  const std::vector<std::uint8_t> data{0x00, 0x00, 0x00, 0x00};
  link.send(data);
  clock.advance(1);
  const auto ready = link.receive_ready();
  ASSERT_EQ(ready.size(), 1u);
  int flipped_bits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    flipped_bits += __builtin_popcount(ready[0][i] ^ data[i]);
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(link.corrupted_count(), 1u);
}

// --- drivers -----------------------------------------------------------------------

TEST(ProgrammableDriver, ConfigAppliesAfterControlDelay) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(300), &clock);
  surface::SurfaceConfig config(panel.element_count());
  config.set_phase(0, 1.0);
  EXPECT_EQ(driver.write_config(0, config), DriverStatus::kOk);
  driver.poll();
  // Not yet applied: control delay has not elapsed.
  EXPECT_NEAR(driver.active_config().phase(0), 0.0, 1e-9);
  clock.advance(301);
  driver.poll();
  EXPECT_NEAR(driver.active_config().phase(0), 1.0, 1e-3);
  EXPECT_EQ(driver.frames_applied(), 1u);
}

TEST(ProgrammableDriver, SelectSwitchesSlots) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(10), &clock);
  surface::SurfaceConfig config(panel.element_count());
  config.set_phase(0, 2.0);
  driver.write_config(2, config);
  clock.advance(11);
  driver.poll();
  // Slot 2 stored but slot 0 still active.
  EXPECT_NEAR(driver.active_config().phase(0), 0.0, 1e-9);
  EXPECT_NEAR(driver.stored_config(2).phase(0), 2.0, 1e-3);
  driver.select_config(2);
  clock.advance(11);
  driver.poll();
  EXPECT_EQ(driver.active_slot(), 2);
  EXPECT_NEAR(driver.active_config().phase(0), 2.0, 1e-3);
}

TEST(ProgrammableDriver, RejectsBadSlotAndConfig) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(10, 2), &clock);
  EXPECT_EQ(driver.write_config(5, surface::SurfaceConfig(16)),
            DriverStatus::kBadSlot);
  EXPECT_EQ(driver.write_config(0, surface::SurfaceConfig(3)),
            DriverStatus::kBadConfig);
  EXPECT_EQ(driver.select_config(9), DriverStatus::kBadSlot);
}

TEST(ProgrammableDriver, AppliesGranularityProjection) {
  SimClock clock;
  const auto panel = test_panel(surface::ControlGranularity::kColumn);
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(10), &clock);
  surface::SurfaceConfig config(panel.element_count());
  // Different phases within one column must collapse to their circular mean.
  config.set_phase(0, 1.0);   // row 0, col 0
  config.set_phase(4, 1.4);   // row 1, col 0
  driver.write_config(0, config);
  clock.advance(11);
  driver.poll();
  EXPECT_NEAR(driver.active_config().phase(0), driver.active_config().phase(4),
              1e-3);
}

TEST(ProgrammableDriver, CorruptedFrameIsRejectedNotApplied) {
  SimClock clock;
  const auto panel = test_panel();
  LinkOptions lossy;
  lossy.corrupt_probability = 1.0;
  lossy.seed = 3;
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(10), &clock, lossy);
  surface::SurfaceConfig config(panel.element_count());
  config.set_phase(0, 1.0);
  driver.write_config(0, config);
  clock.advance(11);
  driver.poll();
  // CRC catches the flip: config unchanged, frame counted as rejected.
  // (A flip in the CRC field itself is also a reject.)
  EXPECT_EQ(driver.frames_applied(), 0u);
  EXPECT_EQ(driver.frames_rejected(), 1u);
  EXPECT_NEAR(driver.active_config().phase(0), 0.0, 1e-9);
}

TEST(PassiveDriver, FabricateExactlyOnce) {
  const auto panel_storage = surface::SurfacePanel(
      "p", geom::Frame({0, 0, 0}, {0, 0, 1}), 4, 4,
      surface::ElementDesign{0.005, 0.0, 0, false, 0.5},
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kPassive,
      surface::ControlGranularity::kElement);
  PassiveSurfaceDriver driver("passive0", &panel_storage, test_spec());
  EXPECT_FALSE(driver.fabricated());
  surface::SurfaceConfig config(16);
  config.set_phase(3, 2.5);
  EXPECT_EQ(driver.fabricate(config), DriverStatus::kOk);
  EXPECT_TRUE(driver.fabricated());
  EXPECT_NEAR(driver.active_config().phase(3), 2.5, 1e-9);
  // Second attempt fails; config unchanged.
  surface::SurfaceConfig other(16);
  EXPECT_EQ(driver.fabricate(other), DriverStatus::kAlreadyFixed);
  EXPECT_EQ(driver.write_config(0, other), DriverStatus::kAlreadyFixed);
  EXPECT_NEAR(driver.active_config().phase(3), 2.5, 1e-9);
  // Spec reflects ROM-like behaviour.
  EXPECT_EQ(driver.spec().control_delay_us, kInfiniteDelay);
  EXPECT_EQ(driver.slot_count(), 1u);
  EXPECT_DOUBLE_EQ(driver.spec().power_mw, 0.0);
}

TEST(Driver, ShiftPhasePrimitive) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(10), &clock);
  EXPECT_EQ(driver.shift_phase(0.5), DriverStatus::kOk);
  clock.advance(11);
  driver.poll();
  for (std::size_t i = 0; i < panel.element_count(); ++i) {
    EXPECT_NEAR(driver.active_config().phase(i), 0.5, 1e-3);
  }
}

TEST(Driver, SetAmplitudeRequiresHardwareSupport) {
  SimClock clock;
  const auto no_amp = test_panel(surface::ControlGranularity::kElement, false);
  ProgrammableSurfaceDriver driver("s0", &no_amp, test_spec(10), &clock);
  const std::vector<double> amplitudes(16, 0.5);
  EXPECT_EQ(driver.set_amplitude(amplitudes), DriverStatus::kUnsupported);
  EXPECT_EQ(driver.set_amplitude(std::vector<double>(3)),
            DriverStatus::kBadConfig);

  const auto with_amp = test_panel(surface::ControlGranularity::kElement, true);
  ProgrammableSurfaceDriver driver2("s1", &with_amp, test_spec(10), &clock);
  EXPECT_EQ(driver2.set_amplitude(amplitudes), DriverStatus::kOk);
  clock.advance(11);
  driver2.poll();
  EXPECT_NEAR(driver2.active_config().amplitude(0), 0.5, 1e-2);
}

// --- registry ----------------------------------------------------------------------

TEST(Registry, AddFindRemove) {
  SimClock clock;
  const auto panel = test_panel();
  DeviceRegistry registry;
  registry.add_surface(std::make_unique<ProgrammableSurfaceDriver>(
      "s0", &panel, test_spec(), &clock));
  EXPECT_EQ(registry.surface_count(), 1u);
  EXPECT_NE(registry.find_surface("s0"), nullptr);
  EXPECT_EQ(registry.find_surface("nope"), nullptr);
  EXPECT_TRUE(registry.remove_surface("s0"));
  EXPECT_FALSE(registry.remove_surface("s0"));
  EXPECT_EQ(registry.surface_count(), 0u);
}

TEST(Registry, RejectsDuplicateIds) {
  SimClock clock;
  const auto panel = test_panel();
  DeviceRegistry registry;
  registry.add_surface(std::make_unique<ProgrammableSurfaceDriver>(
      "dup", &panel, test_spec(), &clock));
  EXPECT_THROW(registry.add_surface(std::make_unique<ProgrammableSurfaceDriver>(
                   "dup", &panel, test_spec(), &clock)),
               std::invalid_argument);
  EXPECT_THROW(registry.add_surface(nullptr), std::invalid_argument);
}

TEST(Registry, FiltersByBandAndClass) {
  SimClock clock;
  const auto panel = test_panel();
  DeviceRegistry registry;
  HardwareSpec spec28 = test_spec();
  registry.add_surface(std::make_unique<ProgrammableSurfaceDriver>(
      "mm", &panel, spec28, &clock));
  HardwareSpec spec24;
  spec24.band_response[em::Band::k2_4GHz] = 0.9;
  spec24.offband_blocking = 0.8;  // responds poorly off band
  registry.add_surface(
      std::make_unique<PassiveSurfaceDriver>("wifi", &panel, spec24));
  EXPECT_EQ(registry.surfaces_on_band(em::Band::k28GHz).size(), 1u);
  // Only the tuned surface can serve 2.4 GHz; the 28 GHz surface is merely
  // transparent there, which is not the same as being able to actuate.
  EXPECT_EQ(registry.surfaces_on_band(em::Band::k2_4GHz).size(), 1u);
  EXPECT_EQ(registry.surfaces_on_band(em::Band::k60GHz).size(), 0u);
  EXPECT_EQ(registry.programmable_surfaces().size(), 1u);
}

TEST(Registry, EndpointLifecycle) {
  DeviceRegistry registry;
  registry.add_endpoint({"laptop", EndpointKind::kClient, {1, 2, 3},
                         em::Band::k28GHz, std::nullopt});
  EXPECT_THROW(registry.add_endpoint({"laptop", EndpointKind::kClient, {},
                                      em::Band::k28GHz, std::nullopt}),
               std::invalid_argument);
  EXPECT_THROW(registry.add_endpoint({"", EndpointKind::kClient, {},
                                      em::Band::k28GHz, std::nullopt}),
               std::invalid_argument);
  ASSERT_NE(registry.find_endpoint("laptop"), nullptr);
  EXPECT_EQ(registry.find_endpoint("laptop")->position, geom::Vec3(1, 2, 3));
  EXPECT_TRUE(registry.remove_endpoint("laptop"));
  EXPECT_EQ(registry.find_endpoint("laptop"), nullptr);
}

TEST(Registry, BlockingHazardDetection) {
  // A 2.4 GHz surface that blocks most off-band energy is a hazard for an
  // adjacent-band network, but a 60 GHz network is too far away to care.
  SimClock clock;
  const auto panel = test_panel();
  DeviceRegistry registry;
  HardwareSpec wifi_spec;
  wifi_spec.band_response[em::Band::k2_4GHz] = 0.9;
  wifi_spec.offband_blocking = 0.6;
  registry.add_surface(
      std::make_unique<PassiveSurfaceDriver>("wifi-surface", &panel, wifi_spec));
  // 2.4 GHz adjacent bands: sub-1 GHz is within the 1.6x ratio? 2.4/0.9 = 2.7
  // -> no. Use a band close to 2.4: itself is "tuned", so check nothing is
  // flagged for its own band, and the sub-1 GHz network is safe.
  EXPECT_TRUE(registry.blocking_hazards(em::Band::k2_4GHz).empty());
  EXPECT_TRUE(registry.blocking_hazards(em::Band::k60GHz).empty());
}

// --- codebook -----------------------------------------------------------------------

TEST(Codebook, BuildsOneConfigPerTarget) {
  const auto panel = test_panel();
  const std::vector<geom::Vec3> targets{{1, 0, 1}, {0, 1, 1}, {-1, 0, 2}};
  const auto codebook = build_steering_codebook(panel, {0, 0, 3}, targets,
                                                28e9);
  ASSERT_EQ(codebook.size(), 3u);
  for (const auto& config : codebook) {
    EXPECT_EQ(config.size(), panel.element_count());
  }
  // Distinct targets produce distinct configurations.
  EXPECT_GT(codebook[0].max_phase_delta(codebook[1]), 0.1);
}

TEST(Codebook, LoadsIntoDriverSlots) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(10, 4), &clock);
  const std::vector<geom::Vec3> targets{{1, 0, 1}, {0, 1, 1}, {-1, 0, 2}};
  EXPECT_EQ(load_steering_codebook(driver, {0, 0, 3}, targets, 28e9), 3u);
  clock.advance(11);
  driver.poll();
  // Slots hold the distinct beams.
  EXPECT_GT(driver.stored_config(0).max_phase_delta(driver.stored_config(1)),
            0.05);
}

TEST(Codebook, TruncatesToSlotCapacity) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(10, 2), &clock);
  const std::vector<geom::Vec3> targets{{1, 0, 1}, {0, 1, 1}, {-1, 0, 2},
                                        {2, 2, 2}};
  EXPECT_EQ(load_steering_codebook(driver, {0, 0, 3}, targets, 28e9), 2u);
}

// --- feedback -----------------------------------------------------------------------

TEST(Feedback, SelectsBestSlot) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(1, 4), &clock);
  CodebookSelector selector(0.5);
  // Metric: slot 2 is best by far.
  const auto result = selector.sweep_and_select(driver, [](std::uint16_t slot) {
    return slot == 2 ? -40.0 : -70.0;
  });
  EXPECT_EQ(result.best_slot, 2);
  EXPECT_DOUBLE_EQ(result.best_metric, -40.0);
  clock.advance(2);
  driver.poll();
  EXPECT_EQ(driver.active_slot(), 2);
  EXPECT_EQ(selector.switches(), 1u);
}

TEST(Feedback, HysteresisPreventsFlapping) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(1, 2), &clock);
  CodebookSelector selector(1.0);
  // Slot 1 is only 0.4 dB better than the active slot 0: no switch.
  selector.sweep_and_select(driver, [](std::uint16_t slot) {
    return slot == 1 ? -50.0 : -50.4;
  });
  clock.advance(2);
  driver.poll();
  EXPECT_EQ(driver.active_slot(), 0);
  EXPECT_EQ(selector.switches(), 0u);
}

TEST(Feedback, PassiveSurfacesAreMeasuredNotSwitched) {
  const auto panel = test_panel();
  PassiveSurfaceDriver driver("p0", &panel, test_spec());
  CodebookSelector selector;
  const auto result =
      selector.sweep_and_select(driver, [](std::uint16_t) { return -55.0; });
  EXPECT_EQ(result.per_slot_metric.size(), 1u);
  EXPECT_EQ(selector.switches(), 0u);
}

TEST(Feedback, NullProbeRejected) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(), &clock);
  CodebookSelector selector;
  EXPECT_THROW(selector.sweep_and_select(driver, nullptr),
               std::invalid_argument);
}

// --- write-combining / sparse element writes -------------------------------------

TEST(Batch, ElementUpdateCodecRoundTrips) {
  std::vector<ElementUpdate> updates;
  for (std::uint32_t i = 0; i < 9; ++i) {
    updates.push_back({i * 3, 0.37 * static_cast<double>(i), 1.0 - 0.1 * i});
  }
  const auto payload = encode_element_updates(updates);
  const auto decoded = decode_element_updates(payload);
  ASSERT_EQ(decoded.size(), updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(decoded[i].index, updates[i].index);
    // Decoded values are the wire codes' fixed points.
    EXPECT_EQ(phase_code(decoded[i].phase), phase_code(updates[i].phase));
    EXPECT_EQ(amplitude_code(decoded[i].amplitude),
              amplitude_code(updates[i].amplitude));
  }
  EXPECT_THROW(decode_element_updates(std::vector<std::uint8_t>(3)),
               std::invalid_argument);
  auto truncated = payload;
  truncated.pop_back();
  EXPECT_THROW(decode_element_updates(truncated), std::invalid_argument);
}

TEST(Batch, WriteElementsMatchesFullWriteBitForBit) {
  SimClock clock;
  const auto panel = test_panel();  // element-granular, 4x4
  ProgrammableSurfaceDriver full("a", &panel, test_spec(10), &clock);
  ProgrammableSurfaceDriver sparse("b", &panel, test_spec(10), &clock);

  surface::SurfaceConfig target(panel.element_count());
  std::vector<ElementUpdate> updates;
  for (std::size_t i = 0; i < 5; ++i) {
    target.set_phase(i * 2, 0.31 * static_cast<double>(i + 1));
    updates.push_back({static_cast<std::uint32_t>(i * 2),
                       target.phase(i * 2), target.amplitude(i * 2)});
  }
  ASSERT_EQ(full.write_config(1, target), DriverStatus::kOk);
  ASSERT_EQ(sparse.write_elements(1, updates), DriverStatus::kOk);
  clock.advance(11);
  full.poll();
  sparse.poll();
  EXPECT_EQ(full.frames_applied(), 1u);
  EXPECT_EQ(sparse.frames_applied(), 1u);
  for (std::size_t i = 0; i < panel.element_count(); ++i) {
    EXPECT_EQ(full.stored_config(1).phase(i), sparse.stored_config(1).phase(i))
        << "element " << i;
    EXPECT_EQ(full.stored_config(1).amplitude(i),
              sparse.stored_config(1).amplitude(i));
  }
}

TEST(Batch, WriteElementsRejectsBadSlotAndIndex) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(10, 2), &clock);
  const std::vector<ElementUpdate> ok = {{0, 1.0, 1.0}};
  EXPECT_EQ(driver.write_elements(7, ok), DriverStatus::kBadSlot);
  const std::vector<ElementUpdate> out = {{999, 1.0, 1.0}};
  EXPECT_EQ(driver.write_elements(0, out), DriverStatus::kBadConfig);
}

TEST(Batch, CombinerCoalescesDedupesAndElides) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver driver("s0", &panel, test_spec(10), &clock);

  surface::SurfaceConfig first(panel.element_count());
  first.set_phase(0, 1.0);
  surface::SurfaceConfig last(panel.element_count());
  last.set_phase(3, 2.0);
  last.set_phase(4, 2.5);

  WriteCombiner combiner;
  combiner.stage(driver, 0, first, /*activate=*/true);
  combiner.stage(driver, 0, last, /*activate=*/true);  // same key: combined
  const FlushStats stats = combiner.flush(HalWriteMode::kBatched);
  EXPECT_EQ(stats.writes_staged, 2u);
  EXPECT_EQ(stats.writes_coalesced, 1u);
  EXPECT_EQ(stats.transactions, 1u);  // one transaction for the epoch
  EXPECT_EQ(stats.element_updates, 2u);
  EXPECT_EQ(stats.selects, 1u);
  EXPECT_EQ(stats.worst_delay_us, 10u);
  clock.advance(stats.worst_delay_us + 1);
  driver.poll();
  // The combined write is the *final* staged config, not the first.
  EXPECT_EQ(driver.stored_config(0).phase(0), 0.0);
  EXPECT_GT(driver.stored_config(0).phase(3), 0.0);

  // Restaging the applied state is a no-op epoch: diff empty, zero frames.
  combiner.stage(driver, 0, driver.stored_config(0), /*activate=*/false);
  const FlushStats again = combiner.flush(HalWriteMode::kBatched);
  EXPECT_EQ(again.transactions, 0u);
  EXPECT_EQ(again.writes_elided, 1u);
}

TEST(Batch, PerElementModePaysOneTransactionPerChangedElement) {
  SimClock clock;
  const auto panel = test_panel();
  ProgrammableSurfaceDriver batched("a", &panel, test_spec(10), &clock);
  ProgrammableSurfaceDriver naive("b", &panel, test_spec(10), &clock);

  surface::SurfaceConfig target(panel.element_count());
  for (std::size_t i = 0; i < 6; ++i) {
    target.set_phase(i, 0.5 + 0.1 * static_cast<double>(i));
  }

  WriteCombiner combiner;
  combiner.stage(batched, 0, target, true);
  const FlushStats one = combiner.flush(HalWriteMode::kBatched);
  combiner.stage(naive, 0, target, true);
  const FlushStats many = combiner.flush(HalWriteMode::kPerElement);
  EXPECT_EQ(one.transactions, 1u);
  EXPECT_EQ(many.transactions, 6u);

  // Both modes leave identical hardware state.
  clock.advance(11);
  batched.poll();
  naive.poll();
  for (std::size_t i = 0; i < panel.element_count(); ++i) {
    EXPECT_EQ(batched.stored_config(0).phase(i), naive.stored_config(0).phase(i));
  }
}

}  // namespace
}  // namespace surfos::hal
