// Geometry substrate tests: vector algebra, AABBs, triangle intersection,
// frames, grids, and the BVH-accelerated mesh (property-checked against
// brute force).
#include <gtest/gtest.h>

#include <cmath>

#include "geom/aabb.hpp"
#include "geom/frame.hpp"
#include "geom/grid.hpp"
#include "geom/mesh.hpp"
#include "geom/ray.hpp"
#include "geom/triangle.hpp"
#include "geom/vec3.hpp"
#include "util/rng.hpp"

namespace surfos::geom {
namespace {

TEST(Vec3, BasicAlgebra) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
}

TEST(Vec3, CrossIsOrthogonal) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{-2, 0.5, 4};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
  EXPECT_EQ(Vec3(1, 0, 0).cross(Vec3(0, 1, 0)), Vec3(0, 0, 1));
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Vec3(1, 1, 1).distance_to(Vec3(1, 1, 3)), 2.0);
}

TEST(Vec3, ReflectAboutNormal) {
  const Vec3 d{1, -1, 0};
  const Vec3 n{0, 1, 0};
  EXPECT_EQ(reflect(d, n), Vec3(1, 1, 0));
  // Reflection preserves length.
  const Vec3 d2 = Vec3{0.3, -0.8, 0.5};
  EXPECT_NEAR(reflect(d2, n).norm(), d2.norm(), 1e-12);
}

TEST(Aabb, ExpandAndContains) {
  Aabb box;
  EXPECT_TRUE(box.empty());
  box.expand({0, 0, 0});
  box.expand({1, 2, 3});
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.contains({0.5, 1.0, 1.5}));
  EXPECT_FALSE(box.contains({1.5, 1.0, 1.5}));
  EXPECT_EQ(box.center(), Vec3(0.5, 1.0, 1.5));
}

TEST(Aabb, SurfaceArea) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({2, 3, 4});
  EXPECT_DOUBLE_EQ(box.surface_area(), 2.0 * (6.0 + 12.0 + 8.0));
}

TEST(Aabb, RaySlabHit) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  const Ray hit{{-1, 0.5, 0.5}, {1, 0, 0}};
  const Ray miss{{-1, 2.0, 0.5}, {1, 0, 0}};
  const Ray away{{-1, 0.5, 0.5}, {-1, 0, 0}};
  EXPECT_TRUE(box.hit_by(hit, 0.0, 100.0));
  EXPECT_FALSE(box.hit_by(miss, 0.0, 100.0));
  EXPECT_FALSE(box.hit_by(away, 0.0, 100.0));
  // Interval clipping.
  EXPECT_FALSE(box.hit_by(hit, 0.0, 0.5));
}

TEST(Triangle, MollerTrumboreHitAndMiss) {
  const Triangle tri{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0};
  const Ray through{{0.2, 0.2, -1}, {0, 0, 1}};
  const auto t = tri.intersect(through, 1e-9, 100.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 1.0, 1e-12);
  const Ray outside{{0.9, 0.9, -1}, {0, 0, 1}};
  EXPECT_FALSE(tri.intersect(outside, 1e-9, 100.0).has_value());
  const Ray parallel{{0.2, 0.2, -1}, {1, 0, 0}};
  EXPECT_FALSE(tri.intersect(parallel, 1e-9, 100.0).has_value());
}

TEST(Triangle, TwoSidedIntersection) {
  const Triangle tri{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0};
  const Ray from_behind{{0.2, 0.2, 1}, {0, 0, -1}};
  EXPECT_TRUE(tri.intersect(from_behind, 1e-9, 100.0).has_value());
}

TEST(Triangle, AreaNormalCentroid) {
  const Triangle tri{{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, 0};
  EXPECT_DOUBLE_EQ(tri.area(), 2.0);
  EXPECT_EQ(tri.geometric_normal(), Vec3(0, 0, 1));
  EXPECT_NEAR(tri.centroid().x, 2.0 / 3.0, 1e-12);
}

TEST(Frame, OrthonormalFromNormal) {
  const Frame f({1, 2, 3}, Vec3{0, 1, 0});
  EXPECT_NEAR(f.u().norm(), 1.0, 1e-12);
  EXPECT_NEAR(f.v().norm(), 1.0, 1e-12);
  EXPECT_NEAR(f.normal().norm(), 1.0, 1e-12);
  EXPECT_NEAR(f.u().dot(f.v()), 0.0, 1e-12);
  EXPECT_NEAR(f.u().dot(f.normal()), 0.0, 1e-12);
  EXPECT_NEAR(f.v().dot(f.normal()), 0.0, 1e-12);
}

TEST(Frame, RoundTripWorldLocal) {
  const Frame f({1, -2, 0.5}, Vec3{0.3, -0.7, 0.2});
  const Vec3 p{4.2, 1.1, -0.3};
  const Vec3 local = f.to_local(p);
  const Vec3 back = f.to_world(local.x, local.y, local.z);
  EXPECT_NEAR(back.distance_to(p), 0.0, 1e-12);
}

TEST(Frame, DirectionTransforms) {
  const Frame f({0, 0, 0}, Vec3{0, 0, 1});
  const Vec3 dir = f.dir_to_world({1, 0, 0});
  EXPECT_NEAR(dir.dot(f.u()), 1.0, 1e-12);
  const Vec3 back = f.dir_to_local(dir);
  EXPECT_NEAR(back.x, 1.0, 1e-12);
}

TEST(Frame, VerticalNormalFallback) {
  // Normal along +z would make the default up-vector degenerate; the frame
  // must still be orthonormal.
  const Frame f({0, 0, 0}, Vec3{0, 0, 1});
  EXPECT_NEAR(f.u().dot(f.normal()), 0.0, 1e-12);
  EXPECT_NEAR(f.u().norm(), 1.0, 1e-12);
}

TEST(Grid, PointsAtCellCenters) {
  const SampleGrid grid(0.0, 2.0, 0.0, 1.0, 1.5, 2, 1);
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.point(0, 0), Vec3(0.5, 0.5, 1.5));
  EXPECT_EQ(grid.point(1, 0), Vec3(1.5, 0.5, 1.5));
  EXPECT_EQ(grid.point(std::size_t{1}), Vec3(1.5, 0.5, 1.5));
}

TEST(Grid, RejectsBadArguments) {
  EXPECT_THROW(SampleGrid(0, 1, 0, 1, 0, 0, 2), std::invalid_argument);
  EXPECT_THROW(SampleGrid(1, 0, 0, 1, 0, 2, 2), std::invalid_argument);
  const SampleGrid grid(0, 1, 0, 1, 0, 2, 2);
  EXPECT_THROW(grid.point(2, 0), std::out_of_range);
}

TEST(Grid, PointsVectorMatchesIndexing) {
  const SampleGrid grid(0, 3, 0, 2, 1, 3, 2);
  const auto points = grid.points();
  ASSERT_EQ(points.size(), grid.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i], grid.point(i));
  }
}

// --- Mesh / BVH ---------------------------------------------------------------

TriangleMesh make_random_soup(std::size_t count, util::Rng& rng) {
  TriangleMesh mesh;
  for (std::size_t i = 0; i < count; ++i) {
    const Vec3 base{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec3 e1{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec3 e2{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    mesh.add_triangle({base, base + e1, base + e2, static_cast<int>(i % 3)});
  }
  mesh.build_index();
  return mesh;
}

/// Brute-force closest hit for property checking.
Hit brute_force_hit(const TriangleMesh& mesh, const Ray& ray) {
  Hit best;
  for (std::size_t i = 0; i < mesh.triangle_count(); ++i) {
    const Triangle& tri = mesh.triangle(i);
    if (const auto t = tri.intersect(ray, kRayEpsilon, best.t)) {
      best.t = *t;
      best.point = ray.at(*t);
      Vec3 n = tri.geometric_normal();
      if (n.dot(ray.direction) > 0.0) n = -n;
      best.normal = n;
      best.triangle_index = static_cast<int>(i);
      best.material_id = tri.material_id;
    }
  }
  return best;
}

TEST(Bvh, MatchesBruteForceClosestHit) {
  util::Rng rng(101);
  const TriangleMesh mesh = make_random_soup(200, rng);
  int hits = 0;
  for (int i = 0; i < 500; ++i) {
    Vec3 dir{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    if (dir.norm() < 1e-6) continue;
    const Ray ray{{rng.uniform(-8, 8), rng.uniform(-8, 8), rng.uniform(-8, 8)},
                  dir.normalized()};
    const Hit fast = mesh.closest_hit(ray);
    const Hit slow = brute_force_hit(mesh, ray);
    ASSERT_EQ(fast.valid(), slow.valid()) << "ray " << i;
    if (fast.valid()) {
      ++hits;
      EXPECT_NEAR(fast.t, slow.t, 1e-9) << "ray " << i;
      EXPECT_EQ(fast.triangle_index, slow.triangle_index) << "ray " << i;
    }
  }
  EXPECT_GT(hits, 25);  // the soup is dense enough that many rays hit
}

TEST(Bvh, OccludedAgreesWithClosestHit) {
  util::Rng rng(202);
  const TriangleMesh mesh = make_random_soup(150, rng);
  for (int i = 0; i < 300; ++i) {
    Vec3 dir{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    if (dir.norm() < 1e-6) continue;
    const Ray ray{{rng.uniform(-8, 8), rng.uniform(-8, 8), rng.uniform(-8, 8)},
                  dir.normalized()};
    const bool occluded = mesh.occluded(ray, kRayEpsilon, 6.0);
    const Hit hit = mesh.closest_hit(ray, kRayEpsilon, 6.0);
    EXPECT_EQ(occluded, hit.valid()) << "ray " << i;
  }
}

TEST(Mesh, SegmentBlockedByWall) {
  TriangleMesh mesh;
  mesh.add_quad({1, -1, -1}, {1, 1, -1}, {1, 1, 1}, {1, -1, 1}, 0);
  mesh.build_index();
  EXPECT_TRUE(mesh.segment_blocked({0, 0, 0}, {2, 0, 0}));
  EXPECT_FALSE(mesh.segment_blocked({0, 0, 0}, {0.9, 0, 0}));
  EXPECT_FALSE(mesh.segment_blocked({0, 2, 0}, {2, 2, 0}));  // misses the quad
}

TEST(Mesh, AllHitsOnSegmentSortedByDistance) {
  TriangleMesh mesh;
  mesh.add_quad({1, -1, -1}, {1, 1, -1}, {1, 1, 1}, {1, -1, 1}, 0);
  mesh.add_quad({2, -1, -1}, {2, 1, -1}, {2, 1, 1}, {2, -1, 1}, 1);
  mesh.add_quad({3, -1, -1}, {3, 1, -1}, {3, 1, 1}, {3, -1, 1}, 2);
  mesh.build_index();
  const auto hits = mesh.all_hits_on_segment({0, 0, 0}, {4, 0, 0});
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].material_id, 0);
  EXPECT_EQ(hits[1].material_id, 1);
  EXPECT_EQ(hits[2].material_id, 2);
  EXPECT_LT(hits[0].t, hits[1].t);
  EXPECT_LT(hits[1].t, hits[2].t);
}

TEST(Mesh, BoxHasTwelveTriangles) {
  TriangleMesh mesh;
  mesh.add_box({0, 0, 0}, {1, 1, 1}, 0);
  EXPECT_EQ(mesh.triangle_count(), 12u);
  mesh.build_index();
  // A segment through the box crosses two faces.
  const auto hits = mesh.all_hits_on_segment({-1, 0.5, 0.5}, {2, 0.5, 0.5});
  EXPECT_EQ(hits.size(), 2u);
}

TEST(Mesh, QueriesThrowWithoutIndex) {
  TriangleMesh mesh;
  mesh.add_box({0, 0, 0}, {1, 1, 1}, 0);
  const Ray ray{{-1, 0.5, 0.5}, {1, 0, 0}};
  EXPECT_THROW(mesh.closest_hit(ray), std::logic_error);
  mesh.build_index();
  EXPECT_TRUE(mesh.closest_hit(ray).valid());
  // Adding geometry invalidates the index.
  mesh.add_box({5, 5, 5}, {6, 6, 6}, 0);
  EXPECT_THROW(mesh.closest_hit(ray), std::logic_error);
}

TEST(Mesh, EmptyMeshNeverHits) {
  TriangleMesh mesh;
  mesh.build_index();
  const Ray ray{{0, 0, 0}, {1, 0, 0}};
  EXPECT_FALSE(mesh.closest_hit(ray).valid());
  EXPECT_FALSE(mesh.occluded(ray, kRayEpsilon, 100.0));
}

TEST(Mesh, BoundsCoverAllTriangles) {
  TriangleMesh mesh;
  mesh.add_box({-1, -2, -3}, {4, 5, 6}, 0);
  const Aabb box = mesh.bounds();
  EXPECT_EQ(box.lo, Vec3(-1, -2, -3));
  EXPECT_EQ(box.hi, Vec3(4, 5, 6));
}

}  // namespace
}  // namespace surfos::geom
