// Unit tests for the util substrate: strings, tables, CSV, statistics,
// deterministic RNG, and unit conversions.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace surfos::util {
namespace {

// --- strings -----------------------------------------------------------------

TEST(Strings, TrimRemovesBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("VR Gaming @28GHz"), "vr gaming @28ghz");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWordsDropsEmptyTokens) {
  const auto words = split_words("  enhance   link\tnow\n");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "enhance");
  EXPECT_EQ(words[2], "now");
}

TEST(Strings, StartsWithAndContains) {
  EXPECT_TRUE(starts_with("surface-01", "surface"));
  EXPECT_FALSE(starts_with("s", "surface"));
  EXPECT_TRUE(contains("enable_sensing", "sensing"));
  EXPECT_TRUE(contains_ignore_case("VR Headset", "vr head"));
  EXPECT_FALSE(contains_ignore_case("VR Headset", "phone"));
}

TEST(Strings, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, FormatProducesPrintfOutput) {
  EXPECT_EQ(format("%s=%.2f", "snr", 12.345), "snr=12.35");
}

TEST(Strings, ParseDoubleStrict) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("3.5", v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(parse_double(" -2.25 ", v));
  EXPECT_DOUBLE_EQ(v, -2.25);
  EXPECT_FALSE(parse_double("3.5 GHz", v));
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("abc", v));
}

TEST(Strings, ParseUintStrict) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_uint("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(parse_uint("-1", v));
  EXPECT_FALSE(parse_uint("4.5", v));
}

// --- table / csv ---------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table table({"name", "cost"});
  table.add_row({"AutoMS", "2"});
  table.add_row({"mmWall", "10000"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("mmWall"), std::string::npos);
  // All lines equally findable; header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream oss;
  CsvWriter writer(oss, {"x", "y"});
  writer.add_row({1.0, 2.5});
  EXPECT_EQ(oss.str(), "x,y\n1,2.5\n");
}

TEST(Csv, EscapesSpecialFields) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RejectsWrongWidth) {
  std::ostringstream oss;
  CsvWriter writer(oss, {"x"});
  EXPECT_THROW(writer.add_row({1.0, 2.0}), std::invalid_argument);
}

// --- stats ---------------------------------------------------------------------

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Stats, QuantileRejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(Stats, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Stats, CdfAtThresholds) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  const auto cdf = cdf_at(samples, {0.5, 2.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].fraction, cdf[i].fraction);
  }
}

// --- rng ------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowNeverReachesBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, NormalHasReasonableMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

TEST(Rng, SignIsBalanced) {
  Rng rng(13);
  int plus = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.sign() > 0) ++plus;
  }
  EXPECT_NEAR(plus, 5000, 300);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

// --- units ---------------------------------------------------------------------

TEST(Units, DbRoundTrip) {
  EXPECT_NEAR(from_db(to_db(123.45)), 123.45, 1e-9);
  EXPECT_DOUBLE_EQ(to_db(10.0), 10.0);
  EXPECT_DOUBLE_EQ(to_db(100.0), 20.0);
}

TEST(Units, AmplitudeDb) {
  EXPECT_DOUBLE_EQ(amplitude_to_db(10.0), 20.0);
}

TEST(Units, DbmWatts) {
  EXPECT_DOUBLE_EQ(watts_to_dbm(1.0), 30.0);
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(dbm_to_watts(watts_to_dbm(0.02)), 0.02, 1e-12);
}

TEST(Units, AngleConversions) {
  EXPECT_NEAR(deg_to_rad(180.0), kPi, 1e-12);
  EXPECT_NEAR(rad_to_deg(kPi / 2.0), 90.0, 1e-12);
}

TEST(Units, WrapTwoPi) {
  EXPECT_NEAR(wrap_two_pi(2.0 * kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_GE(wrap_two_pi(-1e-9), 0.0);
}

TEST(Units, WrapPi) {
  EXPECT_NEAR(wrap_pi(kPi + 0.25), -kPi + 0.25, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi - 0.25), kPi - 0.25, 1e-12);
  EXPECT_NEAR(wrap_pi(0.3), 0.3, 1e-12);
}

}  // namespace
}  // namespace surfos::util
