// Result<T> / ErrorCode semantics and the Config knob-snapshot machinery
// (core/status.hpp, core/config.hpp) — the PR 8 service-API foundation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/config.hpp"
#include "core/status.hpp"

namespace surfos {
namespace {

TEST(Result, ValueResultRoundTrips) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.code(), ErrorCode::kOk);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, ErrorResultCarriesCodeAndMessage) {
  Result<int> r(ErrorCode::kNotFound, "no such app");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "no such app");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, WrongSideAccessIsALogicError) {
  Result<int> good(1);
  Result<int> bad(ErrorCode::kInternal, "boom");
  EXPECT_THROW((void)good.error(), std::logic_error);
  EXPECT_THROW((void)bad.value(), std::logic_error);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = ok_result();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), ErrorCode::kOk);
  Result<void> err(ErrorCode::kAdmissionShed, "shed");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kAdmissionShed);
  EXPECT_EQ(err.error().message, "shed");
}

TEST(Result, UnwrapOrThrowBridgesTheOldContract) {
  EXPECT_EQ(unwrap_or_throw(Result<int>(5)), 5);
  EXPECT_NO_THROW(unwrap_or_throw(ok_result()));
  // The deprecated shims promised std::invalid_argument; the bridge keeps it.
  EXPECT_THROW(unwrap_or_throw(Result<int>(ErrorCode::kParseError, "bad")),
               std::invalid_argument);
  EXPECT_THROW(unwrap_or_throw(Result<void>(ErrorCode::kNotFound, "gone")),
               std::invalid_argument);
}

TEST(ErrorCode, NamesAreStableAndTotal) {
  EXPECT_STREQ(to_string(ErrorCode::kOk), "ok");
  EXPECT_STREQ(to_string(ErrorCode::kAdmissionShed), "admission-shed");
  EXPECT_STREQ(to_string(ErrorCode::kInternal), "internal");
  for (std::uint16_t v = 0; v < kErrorCodeCount; ++v) {
    EXPECT_STRNE(to_string(static_cast<ErrorCode>(v)), "unknown-error")
        << "code " << v << " has no name";
  }
  // A newer peer's code degrades to a generic name, never UB.
  EXPECT_STREQ(to_string(static_cast<ErrorCode>(kErrorCodeCount)),
               "unknown-error");
}

class ConfigTest : public ::testing::Test {
 protected:
  void TearDown() override { core::clear_config(); }
};

TEST_F(ConfigTest, SetValidatesAgainstTheRegistry) {
  core::Config config;
  EXPECT_EQ(config.set("SURFOS_NOT_A_KNOB", 3).code(), ErrorCode::kNotFound);
  EXPECT_EQ(config.set("SURFOS_ADMIT_QUEUE", 0).code(),
            ErrorCode::kOutOfRange);  // min 1
  ASSERT_TRUE(config.set("SURFOS_ADMIT_QUEUE", 32).ok());
  EXPECT_EQ(config.lookup("SURFOS_ADMIT_QUEUE"), 32u);
  EXPECT_EQ(config.lookup("SURFOS_EPOCH_MS"), std::nullopt);
}

TEST_F(ConfigTest, KnobFallsBackToEnvWithoutASnapshot) {
  core::clear_config();
  // No snapshot, no env var: the reader's default wins.
  EXPECT_EQ(core::knob("SURFOS_EPOCH_MS", 20, 1), 20u);
}

TEST_F(ConfigTest, InstalledSnapshotOverridesAndHotReloads) {
  core::Config config;
  ASSERT_TRUE(config.set("SURFOS_EPOCH_MS", 5).ok());
  core::install_config(config);
  EXPECT_EQ(core::knob("SURFOS_EPOCH_MS", 20, 1), 5u);
  // Unset knobs under a snapshot use the reader's default, NOT the env.
  EXPECT_EQ(core::knob("SURFOS_PUMP_MAX", 8, 1), 8u);

  // set_config_knob swaps a new snapshot in: the next read sees it.
  ASSERT_TRUE(core::set_config_knob("SURFOS_EPOCH_MS", 50).ok());
  EXPECT_EQ(core::knob("SURFOS_EPOCH_MS", 20, 1), 50u);
  EXPECT_EQ(core::set_config_knob("SURFOS_EPOCH_MS", 0).code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(core::set_config_knob("NOPE", 1).code(), ErrorCode::kNotFound);
}

TEST_F(ConfigTest, SetKnobWithoutASnapshotIsUnavailable) {
  core::clear_config();
  EXPECT_EQ(core::set_config_knob("SURFOS_EPOCH_MS", 5).code(),
            ErrorCode::kUnavailable);
}

TEST_F(ConfigTest, EntriesFollowRegistryOrder) {
  core::Config config;
  ASSERT_TRUE(config.set("SURFOS_THREADS", 2).ok());
  const auto entries = config.entries();
  ASSERT_EQ(entries.size(), std::size(core::kKnobRegistry));
  EXPECT_EQ(entries.front().first, "SURFOS_THREADS");
  EXPECT_EQ(entries.front().second, 2u);
}

}  // namespace
}  // namespace surfos
