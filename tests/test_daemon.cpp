// surfosd lifecycle tests (daemon/daemon.hpp): the submit -> status ->
// snapshot -> restart -> resume drill, wire-level rejection of malformed
// frames, trace-id echo, and knob hot-reload — all with ticker = false so
// every epoch is driven by hand and the tests are deterministic.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "daemon/client.hpp"
#include "daemon/daemon.hpp"
#include "daemon/snapshot.hpp"
#include "daemon/tags.hpp"
#include "proto/serialize.hpp"
#include "proto/wire.hpp"

namespace surfos::daemon {
namespace {

/// Unique short paths per test (sockaddr_un caps paths at ~107 bytes).
std::string temp_path(const char* stem, const char* ext) {
  static int counter = 0;
  return "/tmp/sd_" + std::to_string(::getpid()) + "_" + stem +
         std::to_string(++counter) + ext;
}

proto::WireFrame make_request(proto::MsgType type, std::uint64_t trace_id,
                              std::vector<std::uint8_t> payload = {}) {
  proto::WireFrame frame;
  frame.type = type;
  frame.trace_id = trace_id;
  frame.payload = std::move(payload);
  return frame;
}

std::vector<std::uint8_t> submit_payload(
    const std::string& app_id, const broker::AppDemand& demand,
    const std::string& site_id = {}) {
  std::vector<std::uint8_t> payload;
  proto::TlvWriter w(payload);
  w.put_string(tag::kAppId, app_id);
  if (!site_id.empty()) w.put_string(tag::kSiteId, site_id);
  w.put_bytes(tag::kDemand, proto::to_wire(demand));
  return payload;
}

broker::AppDemand vr_demand(const std::string& endpoint) {
  return broker::demand_profile(broker::AppClass::kVrGaming, endpoint);
}

ErrorCode error_code_of(const proto::WireFrame& reply) {
  EXPECT_EQ(reply.type, proto::MsgType::kError);
  proto::TlvReader r(reply.payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kErrorCode) {
      return static_cast<ErrorCode>(proto::tlv_u32(*tlv).value_or(0));
    }
  }
  return ErrorCode::kOk;
}

struct SessionRow {
  std::string app_id;
  std::string site_id;
  bool running = false;
  std::uint64_t trace_id = 0;
};

std::vector<SessionRow> parse_status(const proto::WireFrame& reply) {
  std::vector<SessionRow> rows;
  proto::TlvReader r(reply.payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag != tag::kSession) continue;
    SessionRow row;
    proto::TlvReader n(tlv->value);
    while (const auto field = n.next()) {
      switch (field->tag) {
        case tag::kSessionApp: row.app_id = proto::tlv_string(*field); break;
        case tag::kSessionSite: row.site_id = proto::tlv_string(*field); break;
        case tag::kSessionRunning:
          row.running = proto::tlv_u8(*field).value_or(0) != 0;
          break;
        case tag::kSessionTrace:
          row.trace_id = proto::tlv_u64(*field).value_or(0);
          break;
        default: break;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

DaemonOptions test_options(const std::string& socket,
                           const std::string& snapshot = {}) {
  DaemonOptions options;
  options.socket_path = socket;
  options.snapshot_path = snapshot;
  options.epoch_ms = 20;
  options.ticker = false;  // epochs driven by hand
  options.grid_n = 2;      // small probe grid keeps construction fast
  return options;
}

class DaemonTest : public ::testing::Test {
 protected:
  void TearDown() override { core::clear_config(); }
};

// --- In-process request handling --------------------------------------------

TEST_F(DaemonTest, RepliesEchoTheRequestTraceId) {
  Daemon daemon(test_options(temp_path("echo", ".sock")));
  const std::uint64_t trace_id = 0xabcdef0123456789ull;
  const auto reply =
      daemon.handle_request(make_request(proto::MsgType::kGetStatus, trace_id));
  EXPECT_EQ(reply.trace_id, trace_id);
  // Trace-less requests get a daemon-minted (nonzero) id echoed back.
  const auto minted =
      daemon.handle_request(make_request(proto::MsgType::kGetMetrics, 0));
  EXPECT_NE(minted.trace_id, 0u);
}

TEST_F(DaemonTest, SubmitThenEpochStartsTheSession) {
  Daemon daemon(test_options(temp_path("sub", ".sock")));
  const auto reply = daemon.handle_request(make_request(
      proto::MsgType::kSubmitDemand, 1,
      submit_payload("vr", vr_demand("headset"))));
  ASSERT_EQ(reply.type, proto::MsgType::kOk);

  // Queued, not yet running: admission drains on the next epoch.
  auto rows = parse_status(
      daemon.handle_request(make_request(proto::MsgType::kGetStatus, 2)));
  EXPECT_TRUE(rows.empty());

  daemon.run_epoch();
  rows = parse_status(
      daemon.handle_request(make_request(proto::MsgType::kGetStatus, 3)));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].app_id, "vr");
  EXPECT_EQ(rows[0].site_id, "site0");
  EXPECT_TRUE(rows[0].running);
  EXPECT_NE(rows[0].trace_id, 0u);
  EXPECT_EQ(daemon.stats().epochs, 1u);
}

TEST_F(DaemonTest, StopAndResumeRoundTrip) {
  Daemon daemon(test_options(temp_path("sr", ".sock")));
  (void)daemon.handle_request(make_request(
      proto::MsgType::kSubmitDemand, 1, submit_payload("app", vr_demand("d"))));
  daemon.run_epoch();

  std::vector<std::uint8_t> stop_payload;
  proto::TlvWriter w(stop_payload);
  w.put_string(tag::kAppId, "app");
  auto reply = daemon.handle_request(
      make_request(proto::MsgType::kStopApp, 2, stop_payload));
  EXPECT_EQ(reply.type, proto::MsgType::kOk);
  auto rows = parse_status(
      daemon.handle_request(make_request(proto::MsgType::kGetStatus, 3)));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].running);

  reply = daemon.handle_request(
      make_request(proto::MsgType::kResumeApp, 4, stop_payload));
  EXPECT_EQ(reply.type, proto::MsgType::kOk);
  rows = parse_status(
      daemon.handle_request(make_request(proto::MsgType::kGetStatus, 5)));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].running);

  // Unknown apps answer kNotFound over the wire, same code as in-process.
  std::vector<std::uint8_t> ghost;
  proto::TlvWriter g(ghost);
  g.put_string(tag::kAppId, "ghost");
  EXPECT_EQ(error_code_of(daemon.handle_request(
                make_request(proto::MsgType::kStopApp, 6, ghost))),
            ErrorCode::kNotFound);
}

TEST_F(DaemonTest, MalformedPayloadsAnswerWithWireStableCodes) {
  Daemon daemon(test_options(temp_path("mal", ".sock")));
  // Submit without a demand: kMalformedFrame.
  std::vector<std::uint8_t> no_demand;
  proto::TlvWriter w(no_demand);
  w.put_string(tag::kAppId, "x");
  EXPECT_EQ(error_code_of(daemon.handle_request(make_request(
                proto::MsgType::kSubmitDemand, 1, no_demand))),
            ErrorCode::kMalformedFrame);
  // Unknown site: kNotFound.
  EXPECT_EQ(error_code_of(daemon.handle_request(make_request(
                proto::MsgType::kSubmitDemand, 2,
                submit_payload("x", vr_demand("d"), "atlantis")))),
            ErrorCode::kNotFound);
  // A reply-only message type as a request: kUnknownCommand.
  EXPECT_EQ(error_code_of(daemon.handle_request(
                make_request(proto::MsgType::kOk, 3))),
            ErrorCode::kUnknownCommand);
  // Restore without sessions but with no snapshot file: kIoError.
  EXPECT_EQ(error_code_of(daemon.handle_request(
                make_request(proto::MsgType::kRestore, 4))),
            ErrorCode::kIoError);
}

TEST_F(DaemonTest, SetKnobHotReloadsAdmissionCapacity) {
  core::install_config(core::Config());  // daemon mode, all defaults
  Daemon daemon(test_options(temp_path("knob", ".sock")));

  std::vector<std::uint8_t> set_payload;
  proto::TlvWriter w(set_payload);
  w.put_string(tag::kKnobName, "SURFOS_ADMIT_QUEUE");
  w.put_u64(tag::kKnobValue, 1);
  ASSERT_EQ(daemon
                .handle_request(
                    make_request(proto::MsgType::kSetKnob, 1, set_payload))
                .type,
            proto::MsgType::kOk);

  // Capacity 1 (hot-reloaded, no restart): the first background demand
  // queues, the second is refused at admission.
  const auto bg = broker::demand_profile(broker::AppClass::kFileTransfer, "a");
  ASSERT_EQ(daemon
                .handle_request(make_request(proto::MsgType::kSubmitDemand, 2,
                                             submit_payload("bulk1", bg)))
                .type,
            proto::MsgType::kOk);
  EXPECT_EQ(error_code_of(daemon.handle_request(
                make_request(proto::MsgType::kSubmitDemand, 3,
                             submit_payload("bulk2", bg)))),
            ErrorCode::kAdmissionShed);

  // Unknown knob / below-minimum value come back as wire-stable errors.
  std::vector<std::uint8_t> bad;
  proto::TlvWriter b(bad);
  b.put_string(tag::kKnobName, "SURFOS_NOT_REAL");
  b.put_u64(tag::kKnobValue, 1);
  EXPECT_EQ(error_code_of(daemon.handle_request(
                make_request(proto::MsgType::kSetKnob, 4, bad))),
            ErrorCode::kNotFound);
}

// --- The snapshot / restart / resume drill -----------------------------------

TEST_F(DaemonTest, SnapshotRestartResumeDrill) {
  const std::string snapshot_path = temp_path("drill", ".snap");
  std::vector<std::uint8_t> report_before;
  std::vector<SessionRow> rows_before;
  std::uint64_t queued_trace = 0;

  {
    Daemon daemon(test_options(temp_path("a", ".sock"), snapshot_path));
    // Two sessions: one running, one stopped.
    (void)daemon.handle_request(
        make_request(proto::MsgType::kSubmitDemand, 1,
                     submit_payload("vr", vr_demand("headset"))));
    (void)daemon.handle_request(make_request(
        proto::MsgType::kSubmitDemand, 2,
        submit_payload("cam", broker::demand_profile(
                                  broker::AppClass::kSmartHome, "cam0"))));
    daemon.run_epoch();
    daemon.run_epoch();
    std::vector<std::uint8_t> stop;
    proto::TlvWriter w(stop);
    w.put_string(tag::kAppId, "cam");
    ASSERT_EQ(
        daemon.handle_request(make_request(proto::MsgType::kStopApp, 3, stop))
            .type,
        proto::MsgType::kOk);
    // A third demand stays in-flight in the admission queue (no epoch runs
    // before the snapshot).
    (void)daemon.handle_request(
        make_request(proto::MsgType::kSubmitDemand, 4,
                     submit_payload("late", vr_demand("phone"))));

    rows_before = parse_status(
        daemon.handle_request(make_request(proto::MsgType::kGetStatus, 5)));
    ASSERT_EQ(rows_before.size(), 2u);
    report_before = daemon.last_report_wire();
    ASSERT_FALSE(report_before.empty());

    ASSERT_EQ(daemon.handle_request(make_request(proto::MsgType::kSnapshot, 6))
                  .type,
              proto::MsgType::kOk);
  }  // daemon A gone — the "crash"

  // The snapshot file records the in-flight demand and the auto-registered
  // endpoints the sessions reference.
  {
    auto loaded = load_snapshot_file(snapshot_path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().sessions.size(), 2u);
    ASSERT_EQ(loaded.value().queued.size(), 1u);
    EXPECT_EQ(loaded.value().queued[0].app_id, "late");
    EXPECT_EQ(loaded.value().endpoints.size(), 3u);  // headset, cam0, phone
  }

  Daemon restarted(test_options(temp_path("b", ".sock"), snapshot_path));
  ASSERT_TRUE(restarted.load_snapshot().ok());

  // Byte-identical FleetReport before and after restore, served by
  // get_metrics until the first post-restore epoch.
  EXPECT_EQ(restarted.last_report_wire(), report_before);
  const auto metrics =
      restarted.handle_request(make_request(proto::MsgType::kGetMetrics, 7));
  bool report_served = false;
  proto::TlvReader r(metrics.payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kReport) {
      report_served =
          std::vector<std::uint8_t>(tlv->value.begin(), tlv->value.end()) ==
          report_before;
    }
  }
  EXPECT_TRUE(report_served);

  // Sessions resume under their ORIGINAL trace ids and running flags.
  auto rows_after = parse_status(
      restarted.handle_request(make_request(proto::MsgType::kGetStatus, 8)));
  ASSERT_EQ(rows_after.size(), rows_before.size());
  for (const SessionRow& before : rows_before) {
    bool found = false;
    for (const SessionRow& after : rows_after) {
      if (after.app_id != before.app_id) continue;
      found = true;
      EXPECT_EQ(after.trace_id, before.trace_id) << before.app_id;
      EXPECT_EQ(after.running, before.running) << before.app_id;
    }
    EXPECT_TRUE(found) << before.app_id;
  }

  // The in-flight demand went back through admission: one epoch admits it.
  restarted.run_epoch();
  rows_after = parse_status(
      restarted.handle_request(make_request(proto::MsgType::kGetStatus, 9)));
  ASSERT_EQ(rows_after.size(), 3u);
  bool late_running = false;
  for (const SessionRow& row : rows_after) {
    if (row.app_id == "late") late_running = row.running;
  }
  EXPECT_TRUE(late_running);
  (void)queued_trace;
  std::remove(snapshot_path.c_str());
}

TEST_F(DaemonTest, RestoreRefusesWhenSessionsExist) {
  const std::string snapshot_path = temp_path("busy", ".snap");
  Daemon daemon(test_options(temp_path("c", ".sock"), snapshot_path));
  (void)daemon.handle_request(make_request(
      proto::MsgType::kSubmitDemand, 1, submit_payload("vr", vr_demand("h"))));
  daemon.run_epoch();
  ASSERT_EQ(
      daemon.handle_request(make_request(proto::MsgType::kSnapshot, 2)).type,
      proto::MsgType::kOk);
  EXPECT_EQ(error_code_of(daemon.handle_request(
                make_request(proto::MsgType::kRestore, 3))),
            ErrorCode::kUnavailable);
  std::remove(snapshot_path.c_str());
}

TEST_F(DaemonTest, DepartedEndpointsAreGarbageCollected) {
  core::install_config(core::Config());
  ASSERT_TRUE(core::set_config_knob("SURFOS_ADMIT_QUEUE", 1).ok());
  const std::string snapshot_path = temp_path("gc", ".snap");
  Daemon daemon(test_options(temp_path("d", ".sock"), snapshot_path));

  // First demand queues (its endpoint arrives); the second is shed, but its
  // endpoint was registered before admission refused it — a visitor that
  // never got service.
  (void)daemon.handle_request(make_request(
      proto::MsgType::kSubmitDemand, 1, submit_payload("a", vr_demand("e1"))));
  EXPECT_EQ(error_code_of(daemon.handle_request(make_request(
                proto::MsgType::kSubmitDemand, 2,
                submit_payload("b", vr_demand("e2"))))),
            ErrorCode::kAdmissionShed);

  // End-of-epoch GC deregisters the unreferenced endpoint.
  daemon.run_epoch();
  ASSERT_EQ(
      daemon.handle_request(make_request(proto::MsgType::kSnapshot, 3)).type,
      proto::MsgType::kOk);
  auto snapshot = load_snapshot_file(snapshot_path);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot.value().endpoints.size(), 1u);
  EXPECT_EQ(snapshot.value().endpoints[0].endpoint_id, "e1");
  std::remove(snapshot_path.c_str());
}

// --- Over the socket ---------------------------------------------------------

TEST_F(DaemonTest, SocketHelloNegotiatesVersion) {
  const std::string socket_path = temp_path("hello", ".sock");
  Daemon daemon(test_options(socket_path));
  ASSERT_TRUE(daemon.start().ok());

  auto client = Client::connect(socket_path);
  ASSERT_TRUE(client.ok());
  std::vector<std::uint8_t> payload;
  proto::TlvWriter w(payload);
  w.put_u16(tag::kMaxVersion, proto::kProtoVersion);
  const auto reply = client.value().call(proto::MsgType::kHello, payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().type, proto::MsgType::kHelloAck);
  std::uint16_t chosen = 0;
  proto::TlvReader r(reply.value().payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kChosenVersion) {
      chosen = proto::tlv_u16(*tlv).value_or(0);
    }
  }
  EXPECT_EQ(chosen, proto::kProtoVersion);
  daemon.stop();
}

TEST_F(DaemonTest, SocketSubmitStatusDrill) {
  const std::string socket_path = temp_path("sock", ".sock");
  Daemon daemon(test_options(socket_path));
  ASSERT_TRUE(daemon.start().ok());

  auto client = Client::connect(socket_path);
  ASSERT_TRUE(client.ok());
  const std::uint64_t trace_id = 0x7777777777777777ull;
  const auto submit = client.value().call(
      proto::MsgType::kSubmitDemand,
      submit_payload("vr", vr_demand("headset")), trace_id);
  ASSERT_TRUE(submit.ok());
  EXPECT_EQ(submit.value().type, proto::MsgType::kOk);
  EXPECT_EQ(submit.value().trace_id, trace_id);  // echo across the socket

  daemon.run_epoch();
  const auto status = client.value().call(proto::MsgType::kGetStatus, {});
  ASSERT_TRUE(status.ok());
  const auto rows = parse_status(status.value());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].app_id, "vr");
  EXPECT_TRUE(rows[0].running);
  daemon.stop();
}

/// Connects a raw AF_UNIX stream socket (bypassing Client so tests can send
/// deliberately damaged bytes). Returns -1 on failure.
int raw_connect(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends `bytes`, reads until the peer closes, and returns everything read.
std::vector<std::uint8_t> send_and_drain(int fd,
                                         const std::vector<std::uint8_t>& bytes) {
  EXPECT_EQ(::write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  std::vector<std::uint8_t> received;
  std::uint8_t chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    received.insert(received.end(), chunk, chunk + n);
  }
  return received;
}

TEST_F(DaemonTest, SocketRejectsBadVersionOversizedAndGarbageFrames) {
  const std::string socket_path = temp_path("rej", ".sock");
  Daemon daemon(test_options(socket_path));
  ASSERT_TRUE(daemon.start().ok());

  // A frame claiming protocol version 99: kError(kUnsupportedVersion) reply,
  // then the daemon closes the connection.
  {
    proto::WireFrame frame;
    frame.type = proto::MsgType::kGetStatus;
    auto encoded = proto::encode_frame(frame);
    ASSERT_TRUE(encoded.ok());
    encoded.value()[4] = 99;
    const int fd = raw_connect(socket_path);
    ASSERT_GE(fd, 0);
    const auto received = send_and_drain(fd, encoded.value());
    ::close(fd);
    const proto::FrameDecode decode = proto::try_decode_frame(received);
    ASSERT_TRUE(decode.frame.has_value());
    EXPECT_EQ(error_code_of(*decode.frame), ErrorCode::kUnsupportedVersion);
  }

  // A header declaring a payload beyond the 1 MiB cap: kError(kOutOfRange),
  // connection closed without waiting for the phantom bytes.
  {
    std::vector<std::uint8_t> header(proto::kFrameHeaderSize, 0);
    const std::uint32_t huge = proto::kMaxFramePayload + 1;
    header[0] = static_cast<std::uint8_t>(huge & 0xff);
    header[1] = static_cast<std::uint8_t>((huge >> 8) & 0xff);
    header[2] = static_cast<std::uint8_t>((huge >> 16) & 0xff);
    header[3] = static_cast<std::uint8_t>((huge >> 24) & 0xff);
    header[4] = proto::kProtoVersion;
    header[5] = static_cast<std::uint8_t>(proto::MsgType::kHello);
    const int fd = raw_connect(socket_path);
    ASSERT_GE(fd, 0);
    const auto received = send_and_drain(fd, header);
    ::close(fd);
    const proto::FrameDecode decode = proto::try_decode_frame(received);
    ASSERT_TRUE(decode.frame.has_value());
    EXPECT_EQ(error_code_of(*decode.frame), ErrorCode::kOutOfRange);
  }

  // An unknown message type byte: kError(kUnknownCommand), closed.
  {
    proto::WireFrame frame;
    frame.type = proto::MsgType::kHello;
    auto encoded = proto::encode_frame(frame);
    ASSERT_TRUE(encoded.ok());
    encoded.value()[5] = 200;
    const int fd = raw_connect(socket_path);
    ASSERT_GE(fd, 0);
    const auto received = send_and_drain(fd, encoded.value());
    ::close(fd);
    const proto::FrameDecode decode = proto::try_decode_frame(received);
    ASSERT_TRUE(decode.frame.has_value());
    EXPECT_EQ(error_code_of(*decode.frame), ErrorCode::kUnknownCommand);
  }

  // The daemon survives all three abuses and still serves good clients.
  auto client = Client::connect(socket_path);
  ASSERT_TRUE(client.ok());
  const auto status = client.value().call(proto::MsgType::kGetStatus, {});
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().type, proto::MsgType::kStatusReply);
  EXPECT_EQ(daemon.stats().malformed, 3u);
  daemon.stop();
}

TEST_F(DaemonTest, ShutdownOverTheWireStopsTheDaemon) {
  const std::string socket_path = temp_path("down", ".sock");
  Daemon daemon(test_options(socket_path));
  ASSERT_TRUE(daemon.start().ok());

  auto client = Client::connect(socket_path);
  ASSERT_TRUE(client.ok());
  const auto reply = client.value().call(proto::MsgType::kShutdown, {});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().type, proto::MsgType::kOk);
  daemon.wait();  // returns because the wire request cleared running_
  EXPECT_FALSE(daemon.running());
  daemon.stop();
}

}  // namespace
}  // namespace surfos::daemon
