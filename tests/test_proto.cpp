// Wire-protocol codec tests (proto/wire.hpp, proto/serialize.hpp): frame
// round trips, version negotiation failures, unknown-tag skipping, and a
// deterministic fuzz pass with truncated and garbage frames — the parsers
// face socket input and must never throw.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "proto/serialize.hpp"
#include "proto/wire.hpp"

namespace surfos::proto {
namespace {

// --- Frames ------------------------------------------------------------------

TEST(WireFrame, EncodeDecodeRoundTrip) {
  WireFrame frame;
  frame.type = MsgType::kSubmitDemand;
  frame.trace_id = 0xdeadbeefcafe1234ull;
  frame.payload = {1, 2, 3, 4, 5};
  const auto encoded = encode_frame(frame);
  ASSERT_TRUE(encoded.ok());
  ASSERT_EQ(encoded.value().size(), kFrameHeaderSize + 5);

  const FrameDecode decode = try_decode_frame(encoded.value());
  ASSERT_TRUE(decode.frame.has_value());
  EXPECT_FALSE(decode.error.has_value());
  EXPECT_EQ(decode.consumed, encoded.value().size());
  EXPECT_EQ(decode.frame->type, MsgType::kSubmitDemand);
  EXPECT_EQ(decode.frame->trace_id, frame.trace_id);
  EXPECT_EQ(decode.frame->payload, frame.payload);
}

TEST(WireFrame, PartialFrameAsksForMoreBytes) {
  WireFrame frame;
  frame.type = MsgType::kGetStatus;
  frame.payload.assign(100, 7);
  const auto encoded = encode_frame(frame);
  ASSERT_TRUE(encoded.ok());
  for (std::size_t cut = 0; cut < encoded.value().size(); ++cut) {
    const std::span<const std::uint8_t> head(encoded.value().data(), cut);
    const FrameDecode decode = try_decode_frame(head);
    EXPECT_FALSE(decode.frame.has_value()) << "cut=" << cut;
    EXPECT_FALSE(decode.error.has_value()) << "cut=" << cut;
    EXPECT_EQ(decode.consumed, 0u) << "cut=" << cut;
  }
}

TEST(WireFrame, OversizedDeclaredLengthFailsImmediately) {
  std::vector<std::uint8_t> bytes(kFrameHeaderSize, 0);
  const std::uint32_t huge = kMaxFramePayload + 1;
  bytes[0] = static_cast<std::uint8_t>(huge & 0xff);
  bytes[1] = static_cast<std::uint8_t>((huge >> 8) & 0xff);
  bytes[2] = static_cast<std::uint8_t>((huge >> 16) & 0xff);
  bytes[3] = static_cast<std::uint8_t>((huge >> 24) & 0xff);
  bytes[4] = kProtoVersion;
  bytes[5] = static_cast<std::uint8_t>(MsgType::kHello);
  const FrameDecode decode = try_decode_frame(bytes);
  ASSERT_TRUE(decode.error.has_value());
  EXPECT_EQ(decode.error->code, ErrorCode::kOutOfRange);
}

TEST(WireFrame, UnsupportedVersionStillConsumesTheFrame) {
  WireFrame frame;
  frame.type = MsgType::kHello;
  auto encoded = encode_frame(frame);
  ASSERT_TRUE(encoded.ok());
  encoded.value()[4] = 99;  // a future protocol version
  const FrameDecode decode = try_decode_frame(encoded.value());
  ASSERT_TRUE(decode.error.has_value());
  EXPECT_EQ(decode.error->code, ErrorCode::kUnsupportedVersion);
  // Consuming the frame lets the server answer with a proper error reply.
  EXPECT_EQ(decode.consumed, encoded.value().size());
}

TEST(WireFrame, UnknownMessageTypeIsRejected) {
  WireFrame frame;
  frame.type = MsgType::kHello;
  auto encoded = encode_frame(frame);
  ASSERT_TRUE(encoded.ok());
  encoded.value()[5] = 200;  // no such MsgType
  const FrameDecode decode = try_decode_frame(encoded.value());
  ASSERT_TRUE(decode.error.has_value());
  EXPECT_EQ(decode.error->code, ErrorCode::kUnknownCommand);
}

TEST(WireFrame, EncodeRejectsOversizedPayload) {
  WireFrame frame;
  frame.payload.assign(kMaxFramePayload + 1, 0);
  EXPECT_EQ(encode_frame(frame).code(), ErrorCode::kOutOfRange);
}

// --- TLV ---------------------------------------------------------------------

TEST(Tlv, WriterReaderRoundTrip) {
  std::vector<std::uint8_t> buffer;
  TlvWriter w(buffer);
  w.put_u8(1, 0xab);
  w.put_u16(2, 0xbeef);
  w.put_u32(3, 0xdeadbeef);
  w.put_u64(4, 0x0123456789abcdefull);
  w.put_f64(5, -1234.5e-7);
  w.put_string(6, "hello");
  const std::vector<std::uint64_t> ids = {1, 2, 3};
  w.put_u64s(7, ids);

  TlvReader r(buffer);
  auto t = r.next();
  ASSERT_TRUE(t);
  EXPECT_EQ(tlv_u8(*t), 0xab);
  t = r.next();
  EXPECT_EQ(tlv_u16(*t), 0xbeef);
  t = r.next();
  EXPECT_EQ(tlv_u32(*t), 0xdeadbeefu);
  t = r.next();
  EXPECT_EQ(tlv_u64(*t), 0x0123456789abcdefull);
  t = r.next();
  EXPECT_EQ(tlv_f64(*t), -1234.5e-7);
  t = r.next();
  EXPECT_EQ(tlv_string(*t), "hello");
  t = r.next();
  EXPECT_EQ(tlv_u64s(*t), ids);
  EXPECT_FALSE(r.next());
  EXPECT_FALSE(r.truncated());
}

TEST(Tlv, SizeMismatchYieldsNullopt) {
  std::vector<std::uint8_t> buffer;
  TlvWriter w(buffer);
  w.put_u16(1, 7);
  TlvReader r(buffer);
  const auto t = r.next();
  ASSERT_TRUE(t);
  EXPECT_FALSE(tlv_u64(*t).has_value());
  EXPECT_FALSE(tlv_u8(*t).has_value());
}

TEST(Tlv, TruncatedRecordStopsWithFlag) {
  std::vector<std::uint8_t> buffer;
  TlvWriter w(buffer);
  w.put_string(1, "truncate me");
  buffer.resize(buffer.size() - 4);
  TlvReader r(buffer);
  EXPECT_FALSE(r.next());
  EXPECT_TRUE(r.truncated());
}

// --- Struct serialization ----------------------------------------------------

orch::StepTrace sample_trace() {
  orch::StepTrace trace;
  trace.schedule_us = 12.5;
  trace.optimize_us = 340.25;
  trace.actuate_us = 7.0;
  trace.measure_us = 3.5;
  trace.total_us = 363.25;
  trace.plans_fresh = 2;
  trace.plans_reused = 9;
  trace.objective_evaluations = 4096;
  trace.config_writes = 3;
  trace.element_updates = 768;
  trace.writes_staged = 5;
  trace.writes_coalesced = 2;
  trace.writes_elided = 1;
  trace.trace_ids = {0x1111, 0x2222};
  trace.task_trace_ids = {0x1111, 0x2222, 0x3333};
  return trace;
}

TEST(Serialize, StepTraceRoundTrip) {
  const orch::StepTrace trace = sample_trace();
  const auto bytes = to_wire(trace);
  orch::StepTrace out;
  ASSERT_TRUE(from_wire(bytes, out).ok());
  EXPECT_EQ(out.optimize_us, trace.optimize_us);
  EXPECT_EQ(out.objective_evaluations, trace.objective_evaluations);
  EXPECT_EQ(out.writes_coalesced, trace.writes_coalesced);
  EXPECT_EQ(out.trace_ids, trace.trace_ids);
  EXPECT_EQ(out.task_trace_ids, trace.task_trace_ids);
  // Deterministic encoding: re-serializing the parse is byte-identical.
  EXPECT_EQ(to_wire(out), bytes);
}

TEST(Serialize, FleetReportRoundTrip) {
  FleetReport report;
  report.total_assignments = 5;
  report.total_optimizations = 3;
  report.total_starved = 1;
  report.trace = sample_trace();
  SiteReport site;
  site.site_id = "apartment-3b";
  site.step.assignment_count = 2;
  site.step.optimizations_run = 1;
  site.step.starved = {7, 9};
  orch::TaskReport task;
  task.id = 42;
  task.type = orch::ServiceType::kSensing;
  task.state = orch::TaskState::kRunning;
  task.achieved = -41.25;
  task.goal_met = true;
  site.step.tasks.push_back(task);
  site.step.trace = sample_trace();
  report.sites.push_back(site);

  const auto bytes = to_wire(report);
  FleetReport out;
  ASSERT_TRUE(from_wire(bytes, out).ok());
  ASSERT_EQ(out.sites.size(), 1u);
  EXPECT_EQ(out.sites[0].site_id, "apartment-3b");
  ASSERT_EQ(out.sites[0].step.tasks.size(), 1u);
  EXPECT_EQ(out.sites[0].step.tasks[0].id, 42u);
  EXPECT_EQ(out.sites[0].step.tasks[0].type, orch::ServiceType::kSensing);
  EXPECT_EQ(out.sites[0].step.tasks[0].achieved, -41.25);
  EXPECT_TRUE(out.sites[0].step.tasks[0].goal_met);
  EXPECT_EQ(out.sites[0].step.starved, (std::vector<orch::TaskId>{7, 9}));
  EXPECT_EQ(out.total_assignments, 5u);
  EXPECT_EQ(to_wire(out), bytes);
}

TEST(Serialize, InstallReportRoundTrip) {
  InstallReport report;
  report.device_id = "east-wall";
  report.warnings = {"unknown unit", "assumed 1-bit"};
  const auto bytes = to_wire(report);
  InstallReport out;
  ASSERT_TRUE(from_wire(bytes, out).ok());
  EXPECT_EQ(out.device_id, report.device_id);
  EXPECT_EQ(out.warnings, report.warnings);
}

TEST(Serialize, AppDemandRoundTripAllFields) {
  broker::AppDemand demand;
  demand.app_class = broker::AppClass::kSensitiveData;
  demand.endpoint_id = "laptop-9";
  demand.region_id = "meeting-room";
  demand.throughput_mbps = 125.5;
  demand.max_latency_ms = 8.0;
  demand.needs_sensing = true;
  demand.needs_security = true;
  demand.needs_power = false;
  demand.duration_s = 300.0;
  const auto bytes = to_wire(demand);
  broker::AppDemand out;
  ASSERT_TRUE(from_wire(bytes, out).ok());
  EXPECT_EQ(out.app_class, demand.app_class);
  EXPECT_EQ(out.endpoint_id, demand.endpoint_id);
  EXPECT_EQ(out.region_id, demand.region_id);
  EXPECT_EQ(out.throughput_mbps, demand.throughput_mbps);
  EXPECT_EQ(out.max_latency_ms, demand.max_latency_ms);
  EXPECT_TRUE(out.needs_sensing);
  EXPECT_TRUE(out.needs_security);
  EXPECT_FALSE(out.needs_power);
  EXPECT_EQ(out.duration_s, demand.duration_s);
}

TEST(Serialize, AppDemandOptionalsStayUnsetWhenAbsent) {
  broker::AppDemand demand;  // all defaults, optionals empty
  broker::AppDemand out;
  out.throughput_mbps = 999.0;  // must be cleared by from_wire
  ASSERT_TRUE(from_wire(to_wire(demand), out).ok());
  EXPECT_FALSE(out.throughput_mbps.has_value());
  EXPECT_FALSE(out.max_latency_ms.has_value());
  EXPECT_FALSE(out.duration_s.has_value());
}

TEST(Serialize, AppStatusAndInventoryRoundTrip) {
  broker::AppStatus status;
  status.known = true;
  status.running = true;
  status.satisfied = false;
  status.tasks_total = 4;
  status.tasks_met = 3;
  broker::AppStatus status_out;
  ASSERT_TRUE(from_wire(to_wire(status), status_out).ok());
  EXPECT_TRUE(status_out.known);
  EXPECT_TRUE(status_out.running);
  EXPECT_FALSE(status_out.satisfied);
  EXPECT_EQ(status_out.tasks_total, 4u);
  EXPECT_EQ(status_out.tasks_met, 3u);

  FleetInventory inventory{3, 7, 12, 9, 8};
  FleetInventory inventory_out;
  ASSERT_TRUE(from_wire(to_wire(inventory), inventory_out).ok());
  EXPECT_EQ(inventory_out.sites, 3u);
  EXPECT_EQ(inventory_out.tasks_meeting_goals, 8u);
}

TEST(Serialize, UnknownTagsAreSkipped) {
  // A "newer daemon" appends a tag this parser has never heard of; an old
  // client must read everything it knows and ignore the rest.
  broker::AppDemand demand;
  demand.endpoint_id = "tv";
  std::vector<std::uint8_t> bytes = to_wire(demand);
  TlvWriter w(bytes);
  w.put_string(999, "field from the future");
  w.put_u64(1000, 12345);
  broker::AppDemand out;
  ASSERT_TRUE(from_wire(bytes, out).ok());
  EXPECT_EQ(out.endpoint_id, "tv");
}

TEST(Serialize, MissingVersionTagIsMalformed) {
  std::vector<std::uint8_t> bytes;
  TlvWriter w(bytes);
  w.put_string(2, "no version tag first");
  broker::AppDemand out;
  EXPECT_EQ(from_wire(bytes, out).code(), ErrorCode::kMalformedFrame);
}

// --- Fuzz-style robustness ---------------------------------------------------

/// Deterministic LCG so the "fuzz" is reproducible in CI.
struct Lcg {
  std::uint64_t state = 0x853c49e6748fea9bull;
  std::uint8_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint8_t>(state >> 33);
  }
};

TEST(SerializeFuzz, TruncationNeverThrows) {
  const auto bytes = to_wire(sample_trace());
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::span<const std::uint8_t> head(bytes.data(), cut);
    orch::StepTrace out;
    EXPECT_NO_THROW((void)from_wire(head, out)) << "cut=" << cut;
  }
  const auto demand_bytes = to_wire(broker::AppDemand{});
  for (std::size_t cut = 0; cut <= demand_bytes.size(); ++cut) {
    broker::AppDemand out;
    EXPECT_NO_THROW((void)from_wire(
        std::span<const std::uint8_t>(demand_bytes.data(), cut), out));
  }
}

TEST(SerializeFuzz, GarbageBytesNeverThrow) {
  Lcg rng;
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> garbage(static_cast<std::size_t>(round) * 3);
    for (auto& b : garbage) b = rng.next();
    orch::StepTrace trace;
    FleetReport report;
    broker::AppDemand demand;
    EXPECT_NO_THROW((void)from_wire(garbage, trace));
    EXPECT_NO_THROW((void)from_wire(garbage, report));
    EXPECT_NO_THROW((void)from_wire(garbage, demand));
  }
}

TEST(SerializeFuzz, BitFlippedFramesNeverThrow) {
  WireFrame frame;
  frame.type = MsgType::kSubmitDemand;
  frame.trace_id = 42;
  frame.payload = to_wire(broker::AppDemand{});
  const auto encoded = encode_frame(frame);
  ASSERT_TRUE(encoded.ok());
  Lcg rng;
  for (int round = 0; round < 500; ++round) {
    std::vector<std::uint8_t> bytes = encoded.value();
    bytes[rng.next() % bytes.size()] ^=
        static_cast<std::uint8_t>(1u << (rng.next() % 8));
    const FrameDecode decode = try_decode_frame(bytes);
    if (decode.frame) {
      // A frame that still decodes must hand a parseable-or-rejected payload
      // to the TLV layer without throwing.
      broker::AppDemand out;
      EXPECT_NO_THROW((void)from_wire(decode.frame->payload, out));
    }
  }
}

}  // namespace
}  // namespace surfos::proto
