// Incremental evaluation engine: rank-1 delta updates must match dense
// re-evaluation (to FP re-association tolerance, and bit-exactly for the
// zero move), digest memoization must be byte-identical, and the optimizer
// hot paths must produce equivalent results with SURFOS_INCREMENTAL on and
// off — byte-identical StepReports for the orchestrator's default
// (analytic-gradient + memoization) pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>
#include <vector>

#include "em/propagation.hpp"
#include "opt/objective.hpp"
#include "opt/optimizer.hpp"
#include "orch/objectives.hpp"
#include "orch/orchestrator.hpp"
#include "orch/variables.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"
#include "sim/incremental.hpp"
#include "surface/panel.hpp"
#include "util/digest.hpp"
#include "util/rng.hpp"

namespace surfos {
namespace {

/// Restores the incremental switch and memo capacity after each test.
struct IncrementalGuard {
  bool enabled = sim::incremental_enabled();
  std::size_t capacity = sim::eval_cache_capacity();
  ~IncrementalGuard() {
    sim::set_incremental_enabled(enabled);
    sim::set_eval_cache_capacity(capacity);
  }
};

/// Two-panel coverage room with cascades: panel A element-controlled, panel
/// B column-controlled, so both identity and shared-group rank-1 moves are
/// exercised.
struct Scene {
  sim::CoverageRoomScenario scenario;
  std::unique_ptr<surface::SurfacePanel> panel_a;
  std::unique_ptr<surface::SurfacePanel> panel_b;
  std::vector<const surface::SurfacePanel*> panels;

  Scene() : scenario(sim::make_coverage_room(/*grid_n=*/5)) {
    surface::ElementDesign design;
    design.spacing_m = em::wavelength(em::band_center(scenario.band)) / 2.0;
    design.insertion_loss_db = 1.0;
    panel_a = std::make_unique<surface::SurfacePanel>(
        "inc-a", scenario.surface_pose, 6, 6, design,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kElement);
    const geom::Frame pose_b(
        scenario.surface_pose.origin() + geom::Vec3{0.9, 0.4, 0.0},
        scenario.surface_pose.normal() + geom::Vec3{0.2, 0.1, 0.0});
    panel_b = std::make_unique<surface::SurfacePanel>(
        "inc-b", pose_b, 5, 5, design, surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kColumn);
    panels = {panel_a.get(), panel_b.get()};
  }

  std::unique_ptr<sim::SceneChannel> make_channel(bool cascades = true) const {
    sim::ChannelOptions options;
    options.include_surface_cascades = cascades;
    return std::make_unique<sim::SceneChannel>(
        scenario.environment.get(), em::band_center(scenario.band),
        scenario.ap(), panels, scenario.room_grid.points(), nullptr, options);
  }

  std::vector<em::CVec> random_coefficients(std::uint64_t seed) const {
    util::Rng rng(seed);
    std::vector<em::CVec> out;
    for (const auto* panel : panels) {
      em::CVec c(panel->element_count());
      const double loss =
          std::pow(10.0, -panel->design().insertion_loss_db / 20.0);
      for (auto& v : c) v = std::polar(loss, rng.uniform() * 6.28318);
      out.push_back(std::move(c));
    }
    return out;
  }
};

double rel_err(em::Cx a, em::Cx b) {
  return std::abs(a - b) / std::max(1e-30, std::abs(b));
}

// --- Digests ------------------------------------------------------------------

TEST(Digest, DistinctStableAndOrderSensitive) {
  const std::vector<double> a{0.1, 0.2, 0.3};
  const std::vector<double> b{0.1, 0.2, 0.30000000001};
  const std::vector<double> a_swapped{0.2, 0.1, 0.3};
  EXPECT_TRUE(util::digest_values(a) == util::digest_values(a));
  EXPECT_FALSE(util::digest_values(a) == util::digest_values(b));
  EXPECT_FALSE(util::digest_values(a) == util::digest_values(a_swapped));
  // +0.0 and -0.0 hash by bit pattern, so they are distinct keys.
  const std::vector<double> pz{0.0};
  const std::vector<double> nz{-0.0};
  EXPECT_FALSE(util::digest_values(pz) == util::digest_values(nz));

  const std::vector<std::size_t> i1{1, 2, 3};
  const std::vector<std::size_t> i2{1, 2, 4};
  EXPECT_FALSE(util::digest_indices(i1) == util::digest_indices(i2));
  const auto c1 = util::combine(util::digest_values(a), util::digest_indices(i1));
  const auto c2 = util::combine(util::digest_values(a), util::digest_indices(i2));
  EXPECT_FALSE(c1 == c2);
}

TEST(DigestMemoTest, StoreLookupAndFifoEviction) {
  sim::DigestMemo memo(/*capacity=*/2);
  const auto k1 = util::digest_values(std::vector<double>{1.0});
  const auto k2 = util::digest_values(std::vector<double>{2.0});
  const auto k3 = util::digest_values(std::vector<double>{3.0});
  memo.store(k1, 11.0);
  memo.store(k2, std::vector<double>{22.0, 23.0});
  double scalar = 0.0;
  std::vector<double> vec;
  EXPECT_TRUE(memo.lookup(k1, scalar));
  EXPECT_EQ(scalar, 11.0);
  EXPECT_TRUE(memo.lookup(k2, vec));
  EXPECT_EQ(vec, (std::vector<double>{22.0, 23.0}));
  memo.store(k3, 33.0);  // evicts k1 (FIFO)
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_FALSE(memo.lookup(k1, scalar));
  EXPECT_TRUE(memo.lookup(k3, scalar));
  const auto stats = memo.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_GE(stats.hits, 3u);
  EXPECT_GE(stats.misses, 1u);
}

TEST(DigestMemoTest, ZeroCapacityDisablesStorage) {
  sim::DigestMemo memo(0);
  const auto k = util::digest_values(std::vector<double>{1.0});
  memo.store(k, 1.0);
  double out = 0.0;
  EXPECT_FALSE(memo.lookup(k, out));
  EXPECT_EQ(memo.size(), 0u);
}

// --- ChannelEvalCache ---------------------------------------------------------

TEST(EvalCache, SingleElementDeltaMatchesDense) {
  const Scene scene;
  for (const bool cascades : {true, false}) {
    const auto channel = scene.make_channel(cascades);
    sim::ChannelEvalCache cache(channel.get());
    auto base = scene.random_coefficients(7);
    cache.rebase(util::digest_values(std::vector<double>{1.0}), base);

    util::Rng rng(11);
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t p = rng.below(base.size());
      const std::size_t e = rng.below(base[p].size());
      const em::Cx new_c = std::polar(0.9, rng.uniform() * 6.28318);
      const std::size_t j = rng.below(channel->rx_count());

      auto dense_coeff = base;
      dense_coeff[p][e] = new_c;
      const em::Cx dense = channel->evaluate(j, dense_coeff);
      const em::Cx delta = cache.evaluate_delta(j, p, e, new_c);
      EXPECT_LT(rel_err(delta, dense), 1e-9)
          << "cascades=" << cascades << " trial " << trial;
    }
  }
}

TEST(EvalCache, ZeroMoveIsBitExact) {
  const Scene scene;
  const auto channel = scene.make_channel();
  sim::ChannelEvalCache cache(channel.get());
  const auto base = scene.random_coefficients(3);
  cache.rebase(util::digest_values(std::vector<double>{2.0}), base);
  for (std::size_t j = 0; j < channel->rx_count(); j += 5) {
    const em::Cx dense = channel->evaluate(j, base);
    const em::Cx cached = cache.base_value(j);
    // The lazily filled baseline is bit-identical to the dense evaluation
    // (same summation order) ...
    EXPECT_EQ(cached.real(), dense.real());
    EXPECT_EQ(cached.imag(), dense.imag());
    // ... and a probe that re-applies the baseline coefficient is exactly
    // the baseline (homogeneous groups use the (new_c - c0) * W form).
    const em::Cx same = cache.evaluate_delta(j, 0, 4, base[0][4]);
    EXPECT_EQ(same.real(), dense.real());
    EXPECT_EQ(same.imag(), dense.imag());
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.rebases, 1u);
  EXPECT_GT(stats.delta_evals, 0u);
}

TEST(EvalCache, GroupDeltaMovesWholeControlGroup) {
  const Scene scene;
  const auto channel = scene.make_channel();
  const orch::PanelVariables vars(scene.panels);

  sim::ChannelEvalCache cache(channel.get());
  for (std::size_t p = 0; p < vars.panel_count(); ++p) {
    const std::size_t n = vars.panel(p).element_count();
    std::vector<std::uint32_t> group_of(n);
    for (std::size_t e = 0; e < n; ++e) {
      group_of[e] = static_cast<std::uint32_t>(vars.control_of(p, e));
    }
    cache.set_grouping(p, std::move(group_of), vars.panel(p).control_count());
  }

  // Homogeneous baseline within groups, as the optimizer produces.
  util::Rng rng(5);
  std::vector<double> x(vars.dimension());
  for (auto& v : x) v = rng.uniform() * 6.28318;
  const auto base = vars.coefficients(x);
  cache.rebase(util::digest_values(x), base);

  // Move one column group of panel B (panel 1, kColumn granularity).
  const std::size_t group = 2;
  const em::Cx new_c = std::polar(std::abs(base[1][0]), 1.234);
  auto dense_coeff = base;
  for (std::size_t e = 0; e < dense_coeff[1].size(); ++e) {
    if (vars.control_of(1, e) == group) dense_coeff[1][e] = new_c;
  }
  for (std::size_t j = 0; j < channel->rx_count(); j += 3) {
    const em::Cx dense = channel->evaluate(j, dense_coeff);
    const em::Cx delta = cache.evaluate_delta(j, 1, group, new_c);
    EXPECT_LT(rel_err(delta, dense), 1e-9) << "rx " << j;
  }
}

TEST(EvalCache, RebaseInvalidatesAndRefills) {
  const Scene scene;
  const auto channel = scene.make_channel();
  sim::ChannelEvalCache cache(channel.get());
  const auto base1 = scene.random_coefficients(1);
  const auto base2 = scene.random_coefficients(2);
  const auto k1 = util::digest_values(std::vector<double>{1.0});
  const auto k2 = util::digest_values(std::vector<double>{2.0});

  cache.rebase(k1, base1);
  EXPECT_TRUE(cache.based_on(k1));
  (void)cache.base_value(0);
  cache.rebase(k1, base1);  // same key: no-op
  EXPECT_EQ(cache.stats().rebases, 1u);

  cache.rebase(k2, base2);
  EXPECT_FALSE(cache.based_on(k1));
  EXPECT_TRUE(cache.based_on(k2));
  const em::Cx h = cache.base_value(0);
  const em::Cx dense = channel->evaluate(0, base2);
  EXPECT_EQ(h.real(), dense.real());
  EXPECT_EQ(h.imag(), dense.imag());
  EXPECT_EQ(cache.stats().rebases, 2u);
  EXPECT_GE(cache.stats().rx_fills, 2u);  // refilled after the base change
}

// --- power_map / powers_at memoization ---------------------------------------

TEST(PowerMapMemo, RepeatedSweepIsByteIdenticalAndHits) {
  IncrementalGuard guard;
  sim::set_incremental_enabled(true);
  const Scene scene;
  const auto channel = scene.make_channel();
  const geom::Vec3 target =
      scene.scenario.room_grid.point(scene.scenario.room_grid.size() / 2);
  const double f = em::band_center(scene.scenario.band);
  const std::vector<surface::SurfaceConfig> configs{
      scene.panel_a->focus_config(scene.scenario.ap_position, target, f),
      scene.panel_b->focus_config(scene.scenario.ap_position, target, f)};

  const auto first = channel->power_map(configs);
  const auto hits_before = channel->power_memo().stats().hits;
  const auto second = channel->power_map(configs);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t j = 0; j < first.size(); ++j) {
    EXPECT_EQ(first[j], second[j]) << "rx " << j;
  }
  EXPECT_GT(channel->power_memo().stats().hits, hits_before);

  // A subset sweep keys on (config, indices) and must not alias the full map.
  const std::vector<std::size_t> subset{0, 2, 4};
  const auto powers = channel->powers_at(subset, configs);
  ASSERT_EQ(powers.size(), 3u);
  EXPECT_EQ(powers[0], first[0]);
  EXPECT_EQ(powers[1], first[2]);
  EXPECT_EQ(powers[2], first[4]);
}

TEST(PowerMapMemo, DisabledSwitchMatchesDense) {
  IncrementalGuard guard;
  const Scene scene;
  const auto channel = scene.make_channel();
  const geom::Vec3 target = scene.scenario.room_grid.point(0);
  const double f = em::band_center(scene.scenario.band);
  const std::vector<surface::SurfaceConfig> configs{
      scene.panel_a->focus_config(scene.scenario.ap_position, target, f),
      scene.panel_b->focus_config(scene.scenario.ap_position, target, f)};

  sim::set_incremental_enabled(true);
  const auto memoized = channel->power_map(configs);
  sim::set_incremental_enabled(false);
  const auto dense = channel->power_map(configs);
  ASSERT_EQ(memoized.size(), dense.size());
  for (std::size_t j = 0; j < dense.size(); ++j) {
    EXPECT_EQ(memoized[j], dense[j]) << "rx " << j;
  }
}

// --- Objective value_delta / memoization -------------------------------------

struct ObjectiveScene {
  Scene scene;
  std::unique_ptr<sim::SceneChannel> channel = scene.make_channel();
  orch::PanelVariables vars{scene.panels};
  std::vector<std::size_t> rx{0, 3, 6, 9, 12};

  std::vector<double> random_x(std::uint64_t seed) const {
    util::Rng rng(seed);
    std::vector<double> x(vars.dimension());
    for (auto& v : x) v = rng.uniform() * 6.28318;
    return x;
  }
};

TEST(ObjectiveDelta, CapacityProbeMatchesDenseValue) {
  IncrementalGuard guard;
  const ObjectiveScene fx;
  const orch::CapacityObjective capacity(fx.channel.get(), &fx.vars, fx.rx,
                                         /*rho=*/1e9);
  const auto x = fx.random_x(17);
  const double base = capacity.value(x);

  util::Rng rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t coord = rng.below(x.size());
    const double v = rng.uniform() * 6.28318;
    auto probe = x;
    probe[coord] = v;
    const double dense = capacity.value(probe);

    sim::set_incremental_enabled(true);
    const double incremental = capacity.value_delta(x, base, coord, v);
    EXPECT_NEAR(incremental, dense,
                1e-9 * std::max(1.0, std::abs(dense)))
        << "coord " << coord;

    // Disabled, value_delta routes through the dense fallback: identical to
    // value(probe) by construction (modulo the probe memo, which returns
    // stored values byte-identically).
    sim::set_incremental_enabled(false);
    EXPECT_EQ(capacity.value_delta(x, base, coord, v), dense);
  }
}

TEST(ObjectiveDelta, PowerDeliveryProbeMatchesDenseValue) {
  IncrementalGuard guard;
  sim::set_incremental_enabled(true);
  const ObjectiveScene fx;
  const orch::PowerDeliveryObjective power(fx.channel.get(), &fx.vars, fx.rx,
                                           /*p0=*/1e-9);
  const auto x = fx.random_x(23);
  const double base = power.value(x);
  util::Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t coord = rng.below(x.size());
    const double v = rng.uniform() * 6.28318;
    auto probe = x;
    probe[coord] = v;
    const double dense = power.value(probe);
    const double incremental = power.value_delta(x, base, coord, v);
    EXPECT_NEAR(incremental, dense, 1e-9 * std::max(1.0, std::abs(dense)));
  }
}

TEST(ObjectiveDelta, FdGradientThroughRank1MatchesAnalytic) {
  IncrementalGuard guard;
  sim::set_incremental_enabled(true);
  const ObjectiveScene fx;
  const orch::CapacityObjective capacity(fx.channel.get(), &fx.vars, fx.rx,
                                         /*rho=*/1e9);
  const auto x = fx.random_x(31);
  std::vector<double> analytic(x.size());
  const double v1 = capacity.value_and_gradient(x, analytic);
  std::vector<double> fd(x.size());
  // Qualified call: force the base-class finite-difference gradient (the
  // analytic override would otherwise win the virtual dispatch), which
  // routes every probe through the rank-1 value_delta.
  capacity.opt::Objective::gradient_at(x, v1, fd);
  const auto stats = capacity.eval_cache().stats();
  EXPECT_GE(stats.rebases, 1u);
  EXPECT_GE(stats.rx_fills, fx.rx.size());
  EXPECT_GE(stats.delta_evals, 2 * x.size() * fx.rx.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(fd[i], analytic[i],
                1e-4 * std::max(1.0, std::abs(analytic[i])))
        << "coord " << i;
  }
}

TEST(ObjectiveDelta, MemoizedValueIsByteIdentical) {
  IncrementalGuard guard;
  sim::set_incremental_enabled(true);
  const ObjectiveScene fx;
  const orch::CapacityObjective capacity(fx.channel.get(), &fx.vars, fx.rx,
                                         /*rho=*/1e9);
  const auto x = fx.random_x(37);
  const double first = capacity.value(x);
  const auto hits_before = capacity.eval_cache().memo().stats().hits;
  const double second = capacity.value(x);
  EXPECT_EQ(first, second);
  EXPECT_GT(capacity.eval_cache().memo().stats().hits, hits_before);

  // And the memoized value equals the dense (disabled) evaluation bitwise:
  // hits return stored results, which were computed by the same dense sweep.
  sim::set_incremental_enabled(false);
  EXPECT_EQ(capacity.value(x), first);
}

// --- WeightedSum regression ---------------------------------------------------

TEST(WeightedSum, MixedThreadSafetyAndDeltaEquivalence) {
  const std::size_t n = 6;
  const opt::FunctionObjective quad(
      n,
      [](std::span<const double> x) {
        double s = 0.0;
        for (const double v : x) s += (v - 0.3) * (v - 0.3);
        return s;
      },
      /*thread_safe=*/true);
  const opt::FunctionObjective quartic(
      n,
      [](std::span<const double> x) {
        double s = 0.0;
        for (const double v : x) s += v * v * v * v;
        return s;
      },
      /*thread_safe=*/false);
  opt::WeightedSumObjective joint;
  joint.add_term(&quad, 2.0);
  joint.add_term(&quartic, 0.5);
  // One non-thread-safe term must force the sum serial.
  EXPECT_FALSE(joint.thread_safe());

  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.1 * static_cast<double>(i + 1);
  const double base = joint.value(x);
  EXPECT_EQ(base, 2.0 * quad.value(x) + 0.5 * quartic.value(x));

  // Single-coordinate probes decompose term-by-term, bit-identically to the
  // dense weighted sum at the probe point.
  for (std::size_t coord = 0; coord < n; ++coord) {
    auto probe = x;
    probe[coord] = -0.7;
    EXPECT_EQ(joint.value_delta(x, base, coord, -0.7), joint.value(probe));
  }

  // value_and_gradient sums each term's gradient exactly once, and
  // gradient_at (used after an accepted line-search step) agrees.
  std::vector<double> g1(n), g2(n);
  const double v = joint.value_and_gradient(x, g1);
  EXPECT_EQ(v, base);
  joint.gradient_at(x, base, g2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(g1[i], g2[i]);
}

// --- Optimizer equivalence ----------------------------------------------------

TEST(OptimizerEquivalence, AnnealingValueConsistentWithDenseRecompute) {
  IncrementalGuard guard;
  sim::set_incremental_enabled(true);
  const ObjectiveScene fx;
  const orch::CapacityObjective capacity(fx.channel.get(), &fx.vars, fx.rx,
                                         /*rho=*/1e9);
  opt::AnnealingOptions options;
  options.max_evaluations = 300;
  const opt::SimulatedAnnealing annealer(options);
  const auto x0 = fx.random_x(41);
  const double initial = capacity.value(x0);
  const auto result = annealer.minimize(capacity, x0);
  EXPECT_LE(result.value, initial);
  // The reported best value came from chained rank-1 probes; it must agree
  // with a dense re-evaluation of the best point (no drift accumulation —
  // every accepted move rebases off a fresh dense fill).
  sim::set_incremental_enabled(false);
  const double dense = capacity.value(result.x);
  EXPECT_NEAR(result.value, dense, 1e-9 * std::max(1.0, std::abs(dense)));
}

TEST(OptimizerEquivalence, AnnealingBitIdenticalOnDefaultDeltaPath) {
  // For objectives without an incremental override, value_delta clones the
  // base and calls value(): the annealer's trajectory must not depend on the
  // switch at all.
  IncrementalGuard guard;
  const std::size_t n = 8;
  const opt::FunctionObjective quad(
      n,
      [](std::span<const double> x) {
        double s = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
          s += (x[i] - 0.1 * static_cast<double>(i)) *
               (x[i] - 0.1 * static_cast<double>(i));
        }
        return s;
      },
      /*thread_safe=*/true);
  opt::AnnealingOptions options;
  options.max_evaluations = 500;
  const opt::SimulatedAnnealing annealer(options);
  const std::vector<double> x0(n, 1.0);

  sim::set_incremental_enabled(true);
  const auto on = annealer.minimize(quad, x0);
  sim::set_incremental_enabled(false);
  const auto off = annealer.minimize(quad, x0);
  EXPECT_EQ(on.value, off.value);
  EXPECT_EQ(on.evaluations, off.evaluations);
  ASSERT_EQ(on.x.size(), off.x.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(on.x[i], off.x[i]);
}

TEST(OptimizerEquivalence, GradientDescentTrajectoryIdenticalAcrossModes) {
  IncrementalGuard guard;
  const ObjectiveScene fx;
  const orch::CapacityObjective capacity(fx.channel.get(), &fx.vars, fx.rx,
                                         /*rho=*/1e9);
  opt::GradientDescentOptions options;
  options.max_iterations = 10;
  const opt::GradientDescent descent(options);
  const auto x0 = fx.random_x(43);

  // The default pipeline (analytic gradients + digest memoization) must be
  // byte-identical between modes: memo hits return stored dense values.
  sim::set_incremental_enabled(true);
  const auto on = descent.minimize(capacity, x0);
  sim::set_incremental_enabled(false);
  const auto off = descent.minimize(capacity, x0);
  EXPECT_EQ(on.value, off.value);
  ASSERT_EQ(on.x.size(), off.x.size());
  for (std::size_t i = 0; i < on.x.size(); ++i) EXPECT_EQ(on.x[i], off.x[i]);
}

// --- Orchestrator end-to-end equivalence -------------------------------------

struct OrchestratorFixture {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(5);
  hal::SimClock clock;
  hal::DeviceRegistry registry;
  surface::SurfacePanel panel;
  std::unique_ptr<orch::Orchestrator> orchestrator;

  OrchestratorFixture()
      : panel([&] {
          surface::ElementDesign d;
          d.spacing_m = em::wavelength(em::band_center(scene.band)) / 2.0;
          d.insertion_loss_db = 1.0;
          return surface::SurfacePanel(
              "wall", scene.surface_pose, 12, 12, d,
              surface::OperationMode::kReflective,
              surface::Reconfigurability::kProgrammable,
              surface::ControlGranularity::kElement);
        }()) {
    hal::HardwareSpec spec = hal::spec_for_panel(panel, scene.band);
    registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
        "wall", &panel, spec, &clock));
    registry.add_endpoint({"laptop", hal::EndpointKind::kClient,
                           {1.2, 2.4, 1.0}, scene.band, std::nullopt});
    orch::OrchestratorContext context;
    context.environment = scene.environment.get();
    context.ap = scene.ap();
    context.default_band = scene.band;
    context.budget = scene.budget;
    orchestrator = std::make_unique<orch::Orchestrator>(
        &registry, &clock, context, orch::OrchestratorOptions{});
  }
};

TEST(OrchestratorEquivalence, StepReportsByteIdenticalAcrossModes) {
  IncrementalGuard guard;
  std::vector<orch::StepReport> reports;
  for (const bool incremental : {false, true}) {
    sim::set_incremental_enabled(incremental);
    OrchestratorFixture fx;
    fx.orchestrator->enhance_link({"laptop", 15.0, 50.0});
    fx.orchestrator->step();                       // optimize + actuate
    reports.push_back(fx.orchestrator->step());    // steady-state measure
  }
  const auto& off = reports[0];
  const auto& on = reports[1];
  ASSERT_EQ(off.tasks.size(), on.tasks.size());
  for (std::size_t t = 0; t < off.tasks.size(); ++t) {
    EXPECT_EQ(off.tasks[t].state, on.tasks[t].state);
    EXPECT_EQ(off.tasks[t].goal_met, on.tasks[t].goal_met);
    ASSERT_EQ(off.tasks[t].achieved.has_value(), on.tasks[t].achieved.has_value());
    if (off.tasks[t].achieved.has_value()) {
      // Byte-identical achieved metrics: the incremental mode's memoized
      // values are stored dense results, never approximations.
      EXPECT_EQ(*off.tasks[t].achieved, *on.tasks[t].achieved);
    }
  }
}

}  // namespace
}  // namespace surfos
