// Traffic-monitor tests: feature extraction on hand-built flows, classifier
// rules, end-to-end classification of synthesized archetype traffic
// (parameterized over every application class), and monitor windowing.
#include <gtest/gtest.h>

#include "broker/monitor.hpp"

namespace surfos::broker {
namespace {

constexpr hal::Micros kSecond = hal::kMicrosPerSecond;

TEST(Features, EmptyWindowIsZero) {
  const FlowFeatures f = extract_features({}, 0, kSecond);
  EXPECT_EQ(f.packets, 0u);
  EXPECT_DOUBLE_EQ(f.total_mbps(), 0.0);
}

TEST(Features, RatesAndSymmetry) {
  std::vector<PacketRecord> records;
  // 1 Mbit down + 1 Mbit up over one second.
  for (int i = 0; i < 100; ++i) {
    records.push_back({static_cast<hal::Micros>(i * 10000),
                       Direction::kDownlink, 1250});
    records.push_back({static_cast<hal::Micros>(i * 10000 + 5000),
                       Direction::kUplink, 1250});
  }
  const FlowFeatures f = extract_features(records, 0, kSecond);
  EXPECT_NEAR(f.down_mbps, 1.0, 0.05);
  EXPECT_NEAR(f.up_mbps, 1.0, 0.05);
  EXPECT_NEAR(f.symmetry, 0.5, 0.02);
  EXPECT_NEAR(f.mean_gap_ms, 10.0, 0.5);
  EXPECT_LT(f.gap_jitter, 0.05);  // perfectly periodic
}

TEST(Features, WindowBoundsRespected) {
  std::vector<PacketRecord> records{
      {100, Direction::kDownlink, 1000},
      {kSecond + 100, Direction::kDownlink, 1000},  // outside
  };
  const FlowFeatures f = extract_features(records, 0, kSecond);
  EXPECT_EQ(f.packets, 1u);
}

TEST(Classifier, IdleFlowsAreNotClassified) {
  FlowFeatures idle;
  idle.down_mbps = 0.01;
  idle.packets = 3;
  EXPECT_FALSE(classify(idle).has_value());
}

struct ArchetypeCase {
  AppClass app_class;
  bool expect_exact;  ///< Some archetypes overlap; exact match not required.
};

class ArchetypeTest : public ::testing::TestWithParam<ArchetypeCase> {};

TEST_P(ArchetypeTest, SynthesizedTrafficClassifiesBack) {
  util::Rng rng(77);
  const auto records =
      synthesize_traffic(GetParam().app_class, 0, 2 * kSecond, rng);
  ASSERT_FALSE(records.empty());
  const FlowFeatures features = extract_features(records, 0, 2 * kSecond);
  const auto result = classify(features);
  if (GetParam().app_class == AppClass::kWirelessCharging) {
    // Charging produces almost no traffic — correctly unclassifiable.
    EXPECT_FALSE(result.has_value());
    return;
  }
  ASSERT_TRUE(result.has_value());
  if (GetParam().expect_exact) {
    EXPECT_EQ(result->app_class, GetParam().app_class)
        << "down " << features.down_mbps << " up " << features.up_mbps
        << " sym " << features.symmetry << " gap " << features.mean_gap_ms
        << " jit " << features.gap_jitter;
    EXPECT_GT(result->confidence, 0.4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchetypes, ArchetypeTest,
    ::testing::Values(ArchetypeCase{AppClass::kVrGaming, true},
                      ArchetypeCase{AppClass::kVideoStreaming, true},
                      ArchetypeCase{AppClass::kVideoConference, true},
                      ArchetypeCase{AppClass::kFileTransfer, true},
                      ArchetypeCase{AppClass::kSmartHome, true},
                      ArchetypeCase{AppClass::kWirelessCharging, false}),
    [](const ::testing::TestParamInfo<ArchetypeCase>& info) {
      std::string name = to_string(info.param.app_class);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Monitor, TracksAndClassifiesPerEndpoint) {
  util::Rng rng(99);
  TrafficMonitor monitor(2 * kSecond);
  for (const auto& r : synthesize_traffic(AppClass::kVideoStreaming, 0,
                                          2 * kSecond, rng)) {
    monitor.ingest("tv", r);
  }
  for (const auto& r : synthesize_traffic(AppClass::kVideoConference, 0,
                                          2 * kSecond, rng)) {
    monitor.ingest("laptop", r);
  }
  EXPECT_EQ(monitor.tracked_endpoints(), 2u);
  const auto suggestions = monitor.analyze(2 * kSecond);
  ASSERT_EQ(suggestions.size(), 2u);
  for (const auto& s : suggestions) {
    if (s.endpoint_id == "tv") {
      EXPECT_EQ(s.classification.app_class, AppClass::kVideoStreaming);
    } else {
      EXPECT_EQ(s.classification.app_class, AppClass::kVideoConference);
    }
  }
}

TEST(Monitor, OldTrafficAgesOut) {
  util::Rng rng(13);
  TrafficMonitor monitor(1 * kSecond);
  for (const auto& r :
       synthesize_traffic(AppClass::kVideoStreaming, 0, kSecond, rng)) {
    monitor.ingest("tv", r);
  }
  // Ten seconds later the old burst is outside the window: nothing to say.
  const auto suggestions = monitor.analyze(10 * kSecond);
  EXPECT_TRUE(suggestions.empty());
}

TEST(Monitor, SynthesizedTrafficIsDeterministic) {
  util::Rng a(42), b(42);
  const auto ra = synthesize_traffic(AppClass::kVrGaming, 0, kSecond, a);
  const auto rb = synthesize_traffic(AppClass::kVrGaming, 0, kSecond, b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].timestamp, rb[i].timestamp);
    EXPECT_EQ(ra[i].bytes, rb[i].bytes);
  }
}

}  // namespace
}  // namespace surfos::broker
