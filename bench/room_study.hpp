// Shared machinery for the Figure 2 / Figure 5 benches: the 3.5 m coverage
// room with one element-wise phase surface, plus the three optimized
// configurations the paper compares (coverage-only, localization-only, and
// joint multitasking over a single shared configuration).
#pragma once

#include <memory>
#include <vector>

#include "opt/optimizer.hpp"
#include "orch/objectives.hpp"
#include "orch/perf.hpp"
#include "orch/variables.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"

namespace surfos::bench {

struct RoomStudy {
  sim::CoverageRoomScenario scene;
  std::unique_ptr<surface::SurfacePanel> panel;
  std::unique_ptr<sim::SceneChannel> channel;
  std::unique_ptr<orch::PanelVariables> variables;
  std::vector<std::size_t> all_rx;

  RoomStudy(std::size_t grid_n, std::size_t panel_n)
      : scene(sim::make_coverage_room(grid_n)) {
    surface::ElementDesign design;
    design.spacing_m = em::wavelength(em::band_center(scene.band)) / 2.0;
    design.insertion_loss_db = 1.0;
    panel = std::make_unique<surface::SurfacePanel>(
        "room-surface", scene.surface_pose, panel_n, panel_n, design,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,  // Fig 5 uses a passive surface
        surface::ControlGranularity::kElement);
    channel = std::make_unique<sim::SceneChannel>(
        scene.environment.get(), em::band_center(scene.band), scene.ap(),
        std::vector<const surface::SurfacePanel*>{panel.get()},
        scene.room_grid.points());
    variables = std::make_unique<orch::PanelVariables>(
        std::vector<const surface::SurfacePanel*>{panel.get()});
    all_rx.resize(channel->rx_count());
    for (std::size_t i = 0; i < all_rx.size(); ++i) all_rx[i] = i;
  }

  double rho() const { return scene.budget.snr(1.0); }

  /// Focus-at-room-center initialization (shared by all three optimizations
  /// so differences come from the objective, not the starting point).
  std::vector<double> init() const {
    const auto center = scene.room_grid.point(scene.room_grid.size() / 2);
    return variables->from_configs(std::vector<surface::SurfaceConfig>{
        panel->focus_config(scene.ap_position, center,
                            em::band_center(scene.band))});
  }

  std::vector<surface::SurfaceConfig> optimize_coverage_only() const {
    const orch::CapacityObjective coverage(channel.get(), variables.get(),
                                           all_rx, rho());
    return variables->realize(run(coverage));
  }

  std::vector<surface::SurfaceConfig> optimize_localization_only() const {
    const orch::LocalizationObjective localization(channel.get(),
                                                   variables.get(), 0, all_rx);
    return variables->realize(run(localization));
  }

  std::vector<surface::SurfaceConfig> optimize_joint(
      double coverage_weight = 1.0, double localization_weight = 1.0) const {
    const orch::CapacityObjective coverage(channel.get(), variables.get(),
                                           all_rx, rho());
    const orch::LocalizationObjective localization(channel.get(),
                                                   variables.get(), 0, all_rx);
    opt::WeightedSumObjective joint;
    joint.add_term(&coverage, coverage_weight);
    joint.add_term(&localization, localization_weight);
    return variables->realize(run(joint));
  }

  orch::CoverageMetrics coverage_metrics_of(
      const std::vector<surface::SurfaceConfig>& configs) const {
    return orch::coverage_metrics(*channel, scene.budget, configs, all_rx);
  }

  orch::SensingMetrics sensing_metrics_of(
      const std::vector<surface::SurfaceConfig>& configs) const {
    return orch::sensing_metrics(*channel, configs, 0, all_rx);
  }

 private:
  std::vector<double> run(const opt::Objective& objective) const {
    opt::GradientDescentOptions options;
    options.max_iterations = 400;
    options.tolerance = 1e-7;
    return opt::GradientDescent(options).minimize(objective, init()).x;
  }
};

}  // namespace surfos::bench
