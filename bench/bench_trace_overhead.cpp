// Tracing overhead on the control cycle: median per-step latency of a
// Fig-5-sized scene with SURFOS_TRACE off (the default — every
// SURFOS_TRACE_SPAN site pays one predicted branch plus its plain Span
// timing) versus on (flight-recorder writes armed). The budget in DESIGN.md
// is <= 3% for either mode.
//
// Also checks the determinism contract: the deterministic fields of a
// StepReport — counts, task outcomes, and per-assignment trace ids — must be
// byte-identical whether tracing is off or on.
//
// Emits BENCH_trace.json:
//   ./bench_trace_overhead [steps] [output.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "core/surfos.hpp"
#include "sim/floorplan.hpp"
#include "surface/catalog.hpp"
#include "telemetry/telemetry.hpp"

using namespace surfos;

namespace {

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// The deterministic slice of a StepReport, serialized: everything except
/// the wall-clock `*_us` timings. Identical across tracing modes by contract.
std::string report_digest(const orch::StepReport& report) {
  std::ostringstream oss;
  oss << report.assignment_count << '|' << report.optimizations_run << '|';
  for (const orch::TaskId id : report.starved) oss << id << ',';
  oss << '|';
  for (const auto& task : report.tasks) {
    oss << task.id << ':' << static_cast<int>(task.type) << ':'
        << static_cast<int>(task.state) << ':'
        << task.achieved.value_or(-1e300) << ':' << task.goal_met << ';';
  }
  const orch::StepTrace& trace = report.trace;
  oss << '|' << trace.plans_fresh << '|' << trace.plans_reused << '|'
      << trace.objective_evaluations << '|' << trace.config_writes << '|';
  for (const telemetry::TraceId id : trace.trace_ids) {
    oss << std::hex << id << ',';
  }
  return oss.str();
}

struct RunResult {
  std::vector<double> laps_ms;
  std::string digest;  ///< Concatenated per-step deterministic digests.
};

/// Runs `steps` full control cycles with tracing forced on or off. A fresh
/// stack per call keeps the two modes byte-for-byte comparable.
RunResult run_steps(int steps, bool trace_on) {
  telemetry::set_trace_enabled(trace_on);
  telemetry::Recorder::instance().clear();
  sim::CoverageRoomScenario scene = sim::make_coverage_room(/*grid_n=*/12);
  orch::OrchestratorOptions options;
  options.always_reoptimize = true;
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget,
            options);
  const surface::Catalog catalog = surface::Catalog::standard();
  os.install_programmable(*catalog.find("NR-Surface"), scene.surface_pose, 20,
                          20, "wall");
  os.register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});

  orch::CoverageGoal coverage;
  coverage.region_id = "room";
  coverage.region = scene.room_grid;
  coverage.target_median_snr_db = 10.0;
  os.orchestrator().optimize_coverage(coverage);
  os.orchestrator().enhance_link({"laptop", 10.0, 50.0});
  os.step();  // warm-up: channel precompute + first optimization

  RunResult result;
  result.laps_ms.reserve(steps);
  for (int i = 0; i < steps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const orch::StepReport report = os.step();
    result.laps_ms.push_back(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
    result.digest += report_digest(report);
    result.digest += '\n';
  }
  telemetry::set_trace_enabled(false);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 15;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_trace.json";

  // Off first (it defines the baseline), then on.
  const RunResult off = run_steps(steps, false);
  const RunResult on = run_steps(steps, true);

  const double median_off = median(off.laps_ms);
  const double median_on = median(on.laps_ms);
  const double overhead =
      median_off > 0.0 ? (median_on - median_off) / median_off * 100.0 : 0.0;
  const bool reports_identical = off.digest == on.digest;

  std::printf("control cycle, %d steps (fig5 room, 20x20 surface)\n", steps);
  std::printf("  tracing off: median %.2f ms/step\n", median_off);
  std::printf("  tracing on:  median %.2f ms/step\n", median_on);
  std::printf("  overhead: %+.2f%% (budget: <= 3%%)\n", overhead);
  std::printf("  deterministic report fields identical across modes: %s\n",
              reports_identical ? "yes" : "NO");
  std::printf("  events recorded while on: %llu (capacity %zu)\n",
              static_cast<unsigned long long>(
                  telemetry::Recorder::instance().recorded()),
              telemetry::Recorder::instance().capacity());
  if (!reports_identical) {
    std::fprintf(stderr, "determinism contract violated\n");
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"trace_overhead\",\n";
  bench::write_meta(out);
  out << "  \"scene\": \"fig5_room_grid12_panel20x20\",\n";
  out << "  \"steps\": " << steps << ",\n";
  out << "  \"median_step_off_ms\": " << median_off << ",\n";
  out << "  \"median_step_on_ms\": " << median_on << ",\n";
  out << "  \"overhead_percent\": " << overhead << ",\n";
  out << "  \"reports_identical\": " << (reports_identical ? "true" : "false")
      << ",\n";
  out << "  \"budget_percent\": 3.0\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
