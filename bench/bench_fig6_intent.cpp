// Figure 6 — "LLM calling surface services": user demands in natural
// language are translated into SurfOS service API calls.
//
// The paper prompts GPT-4o; this repository substitutes a deterministic
// intent engine behind the same interface (see DESIGN.md). The bench replays
// the paper's two utterances (plus harder ones), prints the generated calls
// in the paper's format, then *executes* them against a live SurfOS stack to
// show the calls are real, not just strings.
#include <cstdio>

#include "core/surfos.hpp"
#include "sim/floorplan.hpp"

using namespace surfos;

namespace {

void show(broker::ServiceBroker& broker, const char* utterance) {
  std::printf("User Input: %s\n", utterance);
  const broker::IntentResult result = broker.handle_utterance(utterance);
  if (!result.understood) {
    std::printf("  (not understood — no service calls)\n\n");
    return;
  }
  for (const auto& call : result.calls) {
    std::printf("  %s\n", call.render().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 6: translating user demands to service calls ===\n");
  std::printf(
      "Context: 'You are a programmer who writes code to control\n"
      "metasurfaces to meet user demands...' — replayed against the\n"
      "deterministic intent engine (LLM substitute).\n\n");

  sim::CoverageRoomScenario scene = sim::make_coverage_room(6);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const surface::Catalog catalog = surface::Catalog::standard();
  os.install_programmable(*catalog.find("NR-Surface"), scene.surface_pose, 20,
                          20, "room-surface");
  os.register_endpoint("VR_headset", hal::EndpointKind::kClient,
                       {1.6, 2.0, 1.2});
  os.register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});
  os.register_endpoint("phone", hal::EndpointKind::kClient, {2.2, 1.2, 1.0});
  os.broker().add_region("this_room",
                         geom::SampleGrid(0.8, 2.8, 0.5, 2.5, 1.0, 4, 4));
  os.broker().add_region("meeting_room",
                         geom::SampleGrid(0.8, 2.8, 0.5, 2.5, 1.0, 4, 4));

  // The paper's two examples.
  show(os.broker(), "I want to start VR gaming in this room.");
  show(os.broker(), "I want to have an online meeting while charging my phone.");
  // Harder multi-intent / entity cases.
  show(os.broker(), "Track motion in the meeting room for 2 hours");
  show(os.broker(), "I need to send confidential files from my laptop");
  show(os.broker(), "please just make the weather nice");  // out of scope

  // Execute everything the utterances created.
  const orch::StepReport report = os.step();
  std::printf("--- Execution through the orchestrator ---\n");
  std::printf("apps started: %zu, schedule assignments: %zu, "
              "optimizations: %zu\n",
              os.broker().sessions().size(), report.assignment_count,
              report.optimizations_run);
  for (const auto& task : report.tasks) {
    std::printf("  task %llu (%s): achieved %.2f -> goal %s\n",
                static_cast<unsigned long long>(task.id),
                orch::to_string(task.type), task.achieved.value_or(-999.0),
                task.goal_met ? "met" : "not met");
  }
  return 0;
}
