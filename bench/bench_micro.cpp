// Micro-benchmarks (google-benchmark): the hot paths that bound how fast the
// control plane can react — channel evaluation (with and without gradients),
// configuration serialization and framing, BVH occlusion queries, AoA
// spectra, and one full optimizer iteration.
#include <benchmark/benchmark.h>

#include "hal/crc32.hpp"
#include "hal/protocol.hpp"
#include "opt/optimizer.hpp"
#include "orch/objectives.hpp"
#include "orch/variables.hpp"
#include "sense/aoa.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"
#include "util/rng.hpp"

namespace {

using namespace surfos;

constexpr double kFreq = 28e9;

struct MicroScene {
  sim::Environment env{em::MaterialDb::standard()};
  std::unique_ptr<surface::SurfacePanel> panel;
  std::unique_ptr<sim::SceneChannel> channel;
  std::unique_ptr<orch::PanelVariables> vars;

  explicit MicroScene(std::size_t n) {
    env.add_vertical_wall(0.0, -2.0, 0.0, 2.0, 0.0, 1.0, em::kMatMetal);
    env.finalize();
    surface::ElementDesign d;
    d.spacing_m = em::wavelength(kFreq) / 2.0;
    panel = std::make_unique<surface::SurfacePanel>(
        "p", geom::Frame({0, 0, 2}, {0, 0, -1}, {1, 0, 0}), n, n, d,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kProgrammable,
        surface::ControlGranularity::kElement);
    channel = std::make_unique<sim::SceneChannel>(
        &env, kFreq, sim::TxSpec{{-1.0, 0.2, 0.0}, nullptr},
        std::vector<const surface::SurfacePanel*>{panel.get()},
        std::vector<geom::Vec3>{{1.0, -1.5, 0.1}});
    vars = std::make_unique<orch::PanelVariables>(
        std::vector<const surface::SurfacePanel*>{panel.get()});
  }
};

void BM_ChannelEvaluate(benchmark::State& state) {
  const MicroScene scene(static_cast<std::size_t>(state.range(0)));
  const surface::SurfaceConfig uniform(scene.panel->element_count());
  const auto coeffs =
      scene.channel->coefficients_for(std::vector<surface::SurfaceConfig>{uniform});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene.channel->evaluate(0, coeffs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(scene.panel->element_count()));
}
BENCHMARK(BM_ChannelEvaluate)->Arg(8)->Arg(16)->Arg(32);

void BM_ChannelEvaluateWithPartials(benchmark::State& state) {
  const MicroScene scene(static_cast<std::size_t>(state.range(0)));
  const surface::SurfaceConfig uniform(scene.panel->element_count());
  const auto coeffs =
      scene.channel->coefficients_for(std::vector<surface::SurfaceConfig>{uniform});
  em::Cx h;
  std::vector<em::CVec> partials;
  for (auto _ : state) {
    scene.channel->evaluate_with_partials(0, coeffs, h, partials);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_ChannelEvaluateWithPartials)->Arg(8)->Arg(16)->Arg(32);

void BM_GradientDescentIteration(benchmark::State& state) {
  const MicroScene scene(16);
  const orch::CapacityObjective objective(scene.channel.get(),
                                          scene.vars.get(), {0}, 1e12);
  std::vector<double> x(scene.vars->dimension(), 0.1);
  std::vector<double> grad(x.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(objective.value_and_gradient(x, grad));
  }
}
BENCHMARK(BM_GradientDescentIteration);

void BM_ConfigSerializeRoundTrip(benchmark::State& state) {
  surface::SurfaceConfig config(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(5);
  for (std::size_t i = 0; i < config.size(); ++i) {
    config.set_phase(i, rng.uniform(0, 6.28));
  }
  for (auto _ : state) {
    const auto bytes = config.serialize();
    benchmark::DoNotOptimize(surface::SurfaceConfig::deserialize(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(4 + config.size() * 3));
}
BENCHMARK(BM_ConfigSerializeRoundTrip)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FrameEncodeDecode(benchmark::State& state) {
  hal::Frame frame;
  frame.type = hal::MessageType::kWriteConfig;
  frame.payload.assign(static_cast<std::size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    const auto bytes = hal::encode_frame(frame);
    benchmark::DoNotOptimize(hal::decode_frame(bytes));
  }
}
BENCHMARK(BM_FrameEncodeDecode)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hal::crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1024)->Arg(65536);

void BM_OcclusionQuery(benchmark::State& state) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(4);
  util::Rng rng(7);
  for (auto _ : state) {
    const geom::Vec3 a{rng.uniform(0.2, 3.2), rng.uniform(0.2, 3.2), 1.0};
    const geom::Vec3 b{rng.uniform(0.2, 3.2), rng.uniform(-1.2, 3.2), 1.5};
    benchmark::DoNotOptimize(scene.environment->mesh().segment_blocked(a, b));
  }
}
BENCHMARK(BM_OcclusionQuery);

void BM_BeamscanSpectrum(benchmark::State& state) {
  const MicroScene scene(static_cast<std::size_t>(state.range(0)));
  const sense::AoaSensingModel model(scene.panel.get(), kFreq, 121);
  const em::CVec v(scene.panel->element_count(), em::Cx{1.0, 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.spectrum(v));
  }
}
BENCHMARK(BM_BeamscanSpectrum)->Arg(8)->Arg(16);

void BM_SceneChannelPrecompute(benchmark::State& state) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(6);
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(kFreq) / 2.0;
  const surface::SurfacePanel panel(
      "p", scene.surface_pose, static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0)), d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  const auto points = scene.room_grid.points();
  for (auto _ : state) {
    const sim::SceneChannel channel(
        scene.environment.get(), kFreq, scene.ap(),
        std::vector<const surface::SurfacePanel*>{&panel}, points);
    benchmark::DoNotOptimize(channel.rx_count());
  }
}
BENCHMARK(BM_SceneChannelPrecompute)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
