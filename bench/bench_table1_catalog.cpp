// Table 1 — "Diverse hardware designs, transmissive (T) and reflective (R)".
//
// Regenerates the paper's hardware survey from the catalog database, then
// extends it with the columns SurfOS's hardware manager actually plans
// around: control granularity, per-panel cost under the unified cost model,
// and each driver's control delay — the spec axes of Section 3.1.
#include <cstdio>
#include <iostream>

#include "hal/driver.hpp"
#include "surface/catalog.hpp"
#include "surface/cost.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace surfos;
  std::printf("=== Table 1: Diverse hardware designs (from the SurfOS catalog) ===\n\n");

  const surface::Catalog catalog = surface::Catalog::standard();
  util::Table table({"Surface System", "Freq Band", "Signal Control", "Mode",
                     "Re-configurable", "Cost ($)"});
  for (const auto& entry : catalog.entries()) {
    std::string reconfig;
    if (entry.reconfigurability == surface::Reconfigurability::kPassive) {
      reconfig = "no";
    } else if (entry.granularity == surface::ControlGranularity::kColumn) {
      reconfig = "yes (column-wise)";
    } else if (entry.granularity == surface::ControlGranularity::kRow) {
      reconfig = "yes (row-wise)";
    } else {
      reconfig = "yes";
    }
    std::string cost = "/";
    if (entry.cost_usd) {
      cost = *entry.cost_usd >= 1000.0
                 ? util::format("~%.0fK", *entry.cost_usd / 1000.0)
                 : util::format("%.0f", *entry.cost_usd);
    }
    table.add_row({entry.name, entry.band_label(),
                   std::string(to_string(entry.control_mode)),
                   std::string(to_string(entry.op_mode)), reconfig, cost});
  }
  table.print(std::cout);

  std::printf("\n=== Hardware-manager view: unified specs per design ===\n\n");
  util::Table specs({"Surface System", "Elements (typ.)", "Granularity",
                     "Control Delay", "Slots", "Model Cost ($)",
                     "Area (m^2)"});
  const surface::CostModel cost_model;
  for (const auto& entry : catalog.entries()) {
    const surface::SurfacePanel panel = surface::instantiate(
        entry, geom::Frame({0, 0, 1.5}, {0, 0, 1}), entry.typical_rows,
        entry.typical_cols);
    const hal::HardwareSpec spec = hal::spec_for_panel(panel, entry.band);
    const std::string delay =
        spec.control_delay_us == hal::kInfiniteDelay
            ? "inf (fab-time)"
            : util::format("%llu us",
                           static_cast<unsigned long long>(spec.control_delay_us));
    specs.add_row(
        {entry.name,
         util::format("%zux%zu", entry.typical_rows, entry.typical_cols),
         std::string(to_string(panel.granularity())), delay,
         util::format("%zu", spec.config_slots),
         util::format("%.2f", cost_model.panel_cost_usd(panel)),
         util::format("%.4f", panel.area_m2())});
  }
  specs.print(std::cout);

  std::printf(
      "\nNote: 'Model Cost' is this repository's behavioural cost model\n"
      "(passive $%.3f/elem + $%.0f base; programmable $%.1f/elem + $%.0f\n"
      "base, %.0f%% line-sharing discount for column/row-wise control), not\n"
      "the published prototype figures in the first table.\n",
      surface::CostModel{}.passive_per_element_usd,
      surface::CostModel{}.passive_base_usd,
      surface::CostModel{}.programmable_per_element_usd,
      surface::CostModel{}.programmable_base_usd,
      surface::CostModel{}.shared_line_discount * 100.0);
  return 0;
}
