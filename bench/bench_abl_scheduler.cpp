// Ablation C — scheduler policies and control delay (paper 3.1/3.2).
//
// Part 1: the same three-service workload (interactive link + room sensing +
// background powering) under each scheduling policy; reports per-task
// achieved metrics and time shares.
// Part 2: control-delay sweep — how long the control plane waits for a
// configuration to land as the link latency grows from microseconds to
// milliseconds (programmable) to "infinite" (passive, fabrication-time).
#include <cstdio>
#include <iostream>

#include "orch/orchestrator.hpp"
#include "sim/floorplan.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace surfos;

namespace {

struct Deployment {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(6);
  hal::SimClock clock;
  hal::DeviceRegistry registry;
  std::unique_ptr<surface::SurfacePanel> east;
  std::unique_ptr<surface::SurfacePanel> north;

  Deployment() {
    const double freq = em::band_center(scene.band);
    surface::ElementDesign d;
    d.spacing_m = em::wavelength(freq) / 2.0;
    d.insertion_loss_db = 1.0;
    east = std::make_unique<surface::SurfacePanel>(
        "east", scene.surface_pose, 14, 14, d,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kProgrammable,
        surface::ControlGranularity::kElement);
    // Second surface on the north wall for the spatial-partition policy.
    north = std::make_unique<surface::SurfacePanel>(
        "north", geom::Frame({1.5, 3.42, 1.8}, {0.0, -1.0, 0.0}), 14, 14, d,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kProgrammable,
        surface::ControlGranularity::kElement);
    for (auto* panel : {east.get(), north.get()}) {
      registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
          panel->id(), panel, hal::spec_for_panel(*panel, scene.band),
          &clock));
    }
    registry.add_endpoint({"VR_headset", hal::EndpointKind::kClient,
                           {1.6, 2.0, 1.2}, scene.band, std::nullopt});
    registry.add_endpoint({"phone", hal::EndpointKind::kClient,
                           {2.4, 0.8, 1.0}, scene.band, std::nullopt});
  }

  orch::OrchestratorContext context() const {
    orch::OrchestratorContext ctx;
    ctx.environment = scene.environment.get();
    ctx.ap = scene.ap();
    ctx.default_band = scene.band;
    ctx.budget = scene.budget;
    return ctx;
  }
};

void run_policy(orch::SchedulePolicy policy, util::Table& table) {
  Deployment deployment;
  orch::OrchestratorOptions options;
  options.policy = policy;
  orch::Orchestrator orchestrator(&deployment.registry, &deployment.clock,
                                  deployment.context(), options);
  const auto link_id =
      orchestrator.enhance_link({"VR_headset", 18.0, 10.0},
                                orch::kPriorityCritical);
  orch::SensingGoal sensing;
  sensing.region_id = "room";
  sensing.region = geom::SampleGrid(0.8, 2.8, 0.5, 2.5, 1.0, 4, 4);
  sensing.target_accuracy_m = 0.5;
  const auto sensing_id = orchestrator.enable_sensing(sensing);
  const auto power_id = orchestrator.init_powering({"phone", 3600.0, -55.0});

  const orch::StepReport report = orchestrator.step();
  const auto* link = orchestrator.find_task(link_id);
  const auto* sense = orchestrator.find_task(sensing_id);
  const auto* power = orchestrator.find_task(power_id);
  table.add_row(
      {orch::to_string(policy), util::format("%zu", report.assignment_count),
       util::format("%.1f dB %s", link->achieved.value_or(-999),
                    link->goal_met ? "(met)" : "(miss)"),
       util::format("%.2f m %s", sense->achieved.value_or(-1),
                    sense->goal_met ? "(met)" : "(miss)"),
       util::format("%.1f dBm %s", power->achieved.value_or(-999),
                    power->goal_met ? "(met)" : "(miss)")});
}

}  // namespace

int main() {
  std::printf("=== Ablation: scheduling policies ===\n");
  std::printf(
      "Workload: critical VR link + room tracking + background charging,\n"
      "two 14x14 surfaces, one band (28 GHz).\n\n");

  util::Table table({"Policy", "Slices", "VR link SNR", "Tracking error",
                     "Charging power"});
  run_policy(orch::SchedulePolicy::kPriorityJoint, table);
  run_policy(orch::SchedulePolicy::kRoundRobinTdm, table);
  run_policy(orch::SchedulePolicy::kEarliestDeadline, table);
  run_policy(orch::SchedulePolicy::kSpatialPartition, table);
  table.print(std::cout);

  std::printf(
      "\npriority-joint multiplexes all tasks onto one shared configuration\n"
      "(the paper's configuration multiplexing); TDM/EDF give each task its\n"
      "own config slot and time share; spatial partitioning hands each task\n"
      "its nearest surface.\n");

  // --- Part 2: control-delay sweep -------------------------------------------
  std::printf("\n=== Ablation: control delay (paper 3.1) ===\n\n");
  util::Table delays({"Hardware class", "Control delay",
                      "Clock advance for one reconfiguration (us)"});
  for (const hal::Micros delay_us : {hal::Micros{50}, hal::Micros{500},
                                     hal::Micros{5000}, hal::Micros{50000}}) {
    Deployment deployment;
    // Override both drivers' specs with the swept delay.
    deployment.registry.remove_surface("north");
    deployment.registry.remove_surface("east");
    auto spec = hal::spec_for_panel(*deployment.east, deployment.scene.band);
    spec.control_delay_us = delay_us;
    deployment.registry.add_surface(
        std::make_unique<hal::ProgrammableSurfaceDriver>(
            "east", deployment.east.get(), spec, &deployment.clock));
    orch::Orchestrator orchestrator(&deployment.registry, &deployment.clock,
                                    deployment.context());
    orchestrator.enhance_link({"VR_headset", 10.0, 10.0});
    const hal::Micros before = deployment.clock.now();
    orchestrator.step();
    delays.add_row({"programmable",
                    util::format("%llu us",
                                 static_cast<unsigned long long>(delay_us)),
                    util::format("%llu",
                                 static_cast<unsigned long long>(
                                     deployment.clock.now() - before))});
  }
  {
    // Passive: reconfiguration is impossible after fabrication; the control
    // plane performs the one-time write and never waits again.
    Deployment deployment;
    deployment.registry.remove_surface("north");
    deployment.registry.remove_surface("east");
    deployment.registry.add_surface(
        std::make_unique<hal::PassiveSurfaceDriver>(
            "east", deployment.east.get(),
            hal::spec_for_panel(*deployment.east, deployment.scene.band)));
    orch::Orchestrator orchestrator(&deployment.registry, &deployment.clock,
                                    deployment.context());
    orchestrator.enhance_link({"VR_headset", 10.0, 10.0});
    const hal::Micros before = deployment.clock.now();
    orchestrator.step();
    delays.add_row({"passive", "inf (fab-time only)",
                    util::format("%llu",
                                 static_cast<unsigned long long>(
                                     deployment.clock.now() - before))});
  }
  delays.print(std::cout);
  std::printf(
      "\nThe control plane's reconfiguration latency tracks the hardware's\n"
      "control delay; passive hardware costs nothing at runtime because it\n"
      "cannot be reconfigured at all — the ROM analogy of Section 3.1.\n");
  return 0;
}
