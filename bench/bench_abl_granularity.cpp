// Ablation B — control granularity and phase quantization (paper 2.1: high
// frequency hardware "often only support[s] column-wise reconfiguration
// (shared element states per column) rather than element-wise"; elements
// quantize phases to a few bits).
//
// Same coverage task, same 20x20 aperture; sweep granularity {element,
// column, row, global} x phase bits {continuous, 3, 2, 1}. The element-wise
// continuous cell is the upper bound; each restriction costs dB.
#include <cstdio>
#include <iostream>

#include "opt/optimizer.hpp"
#include "orch/objectives.hpp"
#include "orch/perf.hpp"
#include "orch/variables.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace surfos;

namespace {

double run_case(const sim::CoverageRoomScenario& scene,
                surface::ControlGranularity granularity, int phase_bits) {
  const double freq = em::band_center(scene.band);
  surface::ElementDesign design;
  design.spacing_m = em::wavelength(freq) / 2.0;
  design.insertion_loss_db = 1.0;
  design.phase_bits = phase_bits;
  const surface::SurfacePanel panel(
      "p", scene.surface_pose, 20, 20, design,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable, granularity);
  const sim::SceneChannel channel(
      scene.environment.get(), freq, scene.ap(),
      std::vector<const surface::SurfacePanel*>{&panel},
      scene.room_grid.points());
  const orch::PanelVariables vars({&panel});
  std::vector<std::size_t> all_rx(channel.rx_count());
  for (std::size_t i = 0; i < all_rx.size(); ++i) all_rx[i] = i;
  const orch::CapacityObjective coverage(&channel, &vars, all_rx,
                                         scene.budget.snr(1.0));
  const auto x0 = vars.from_configs(std::vector<surface::SurfaceConfig>{
      panel.focus_config(scene.ap_position,
                         scene.room_grid.point(all_rx.size() / 2), freq)});
  opt::GradientDescentOptions options;
  options.max_iterations = 250;
  const auto result = opt::GradientDescent(options).minimize(coverage, x0);
  // Metrics go through realize(): granularity projection + quantization.
  const auto metrics = orch::coverage_metrics(
      channel, scene.budget, vars.realize(result.x), all_rx);
  return metrics.median_snr_db;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: control granularity x phase quantization ===\n");
  std::printf("Coverage task, 20x20 surface, 3.5 m room, 28 GHz. Cells are\n"
              "the achieved median SNR (dB) of the hardware-realizable\n"
              "configuration.\n\n");

  const sim::CoverageRoomScenario scene = sim::make_coverage_room(10);

  const std::vector<std::pair<surface::ControlGranularity, const char*>>
      granularities{{surface::ControlGranularity::kElement, "element-wise"},
                    {surface::ControlGranularity::kColumn, "column-wise"},
                    {surface::ControlGranularity::kRow, "row-wise"},
                    {surface::ControlGranularity::kGlobal, "global"}};
  const std::vector<std::pair<int, const char*>> quantizations{
      {0, "continuous"}, {3, "3-bit"}, {2, "2-bit"}, {1, "1-bit"}};

  util::Table table({"Granularity", "continuous", "3-bit", "2-bit", "1-bit"});
  for (const auto& [granularity, g_name] : granularities) {
    std::vector<std::string> row{g_name};
    for (const auto& [bits, q_name] : quantizations) {
      row.push_back(util::format("%.1f", run_case(scene, granularity, bits)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::printf(
      "\nExpected shape: element-wise/continuous is the ceiling; 2-bit\n"
      "quantization costs ~1 dB (classic result); column/row-wise control\n"
      "loses several dB because one dimension of focusing is surrendered —\n"
      "the trade high-frequency hardware makes to stay affordable (Table 1:\n"
      "mmWall, NR-Surface, Scrolls).\n");
  return 0;
}
