// Telemetry overhead on the control cycle: median per-step latency of a
// Fig-5-sized scene (3.5 m room, 12x12 RX grid, 20x20 surface) with
// SURFOS_TELEMETRY on versus off. The budget in DESIGN.md is <= 3% — the
// instrumentation is one predicted branch plus a relaxed atomic add per
// event, and spans only live on phase boundaries, never in optimizer inner
// loops.
//
// Emits BENCH_telemetry.json:
//   ./bench_telemetry_overhead [steps] [output.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "core/surfos.hpp"
#include "sim/floorplan.hpp"
#include "surface/catalog.hpp"
#include "telemetry/telemetry.hpp"

using namespace surfos;

namespace {

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// Runs `steps` full control cycles (always re-optimizing, so every step
/// pays schedule + optimize + actuate + measure) and returns the per-step
/// wall times in milliseconds. A fresh stack per call keeps the two modes
/// byte-for-byte comparable.
std::vector<double> run_steps(int steps, bool telemetry_on) {
  telemetry::set_enabled(telemetry_on);
  sim::CoverageRoomScenario scene = sim::make_coverage_room(/*grid_n=*/12);
  orch::OrchestratorOptions options;
  options.always_reoptimize = true;
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget,
            options);
  const surface::Catalog catalog = surface::Catalog::standard();
  os.install_programmable(*catalog.find("NR-Surface"), scene.surface_pose, 20,
                          20, "wall");
  os.register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});

  orch::CoverageGoal coverage;
  coverage.region_id = "room";
  coverage.region = scene.room_grid;
  coverage.target_median_snr_db = 10.0;
  os.orchestrator().optimize_coverage(coverage);
  os.orchestrator().enhance_link({"laptop", 10.0, 50.0});
  os.step();  // warm-up: channel precompute + first optimization

  std::vector<double> laps;
  laps.reserve(steps);
  for (int i = 0; i < steps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    os.step();
    laps.push_back(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count());
  }
  telemetry::set_enabled(true);
  return laps;
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 15;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_telemetry.json";

  // Interleave would share caches unevenly across a long run; instead run
  // off first (it defines the baseline), then on.
  const std::vector<double> off = run_steps(steps, false);
  const std::vector<double> on = run_steps(steps, true);

  const double median_off = median(off);
  const double median_on = median(on);
  const double overhead =
      median_off > 0.0 ? (median_on - median_off) / median_off * 100.0 : 0.0;

  std::printf("control cycle, %d steps (fig5 room, 20x20 surface)\n", steps);
  std::printf("  telemetry off: median %.2f ms/step\n", median_off);
  std::printf("  telemetry on:  median %.2f ms/step\n", median_on);
  std::printf("  overhead: %+.2f%% (budget: <= 3%%)\n", overhead);

  const telemetry::Snapshot snap =
      telemetry::MetricsRegistry::instance().snapshot();
  std::size_t events = 0;
  for (const auto& counter : snap.counters) events += counter.value;
  std::printf("  counted events while on: %zu across %zu counters\n", events,
              snap.counters.size());

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"telemetry_overhead\",\n";
  bench::write_meta(out);
  out << "  \"scene\": \"fig5_room_grid12_panel20x20\",\n";
  out << "  \"steps\": " << steps << ",\n";
  out << "  \"median_step_off_ms\": " << median_off << ",\n";
  out << "  \"median_step_on_ms\": " << median_on << ",\n";
  out << "  \"overhead_percent\": " << overhead << ",\n";
  out << "  \"budget_percent\": 3.0\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
