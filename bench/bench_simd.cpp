// Vectorized dense channel kernel: scalar backend versus the best SIMD
// backend available on this host, single-threaded (the SIMD win must not
// hide behind thread-pool scaling) with digest memoization and incremental
// evaluation disabled so every run exercises the dense kernels.
//
// Sections on a Fig-5-sized scene (3.5 m room, 20x20 element-wise surface,
// 14x14 RX grid): SceneChannel construction (precompute), power_map, and
// evaluate_with_partials across every RX.
//
// Emits BENCH_simd.json:
//   ./bench_simd [output.json]
#include <chrono>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "em/soa.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"
#include "sim/incremental.hpp"
#include "surface/panel.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

using namespace surfos;
namespace simd = util::simd;

namespace {

struct Fig5Scene {
  sim::CoverageRoomScenario scenario;
  std::unique_ptr<surface::SurfacePanel> panel;
  std::vector<const surface::SurfacePanel*> panels;

  Fig5Scene() : scenario(sim::make_coverage_room(/*grid_n=*/14)) {
    surface::ElementDesign design;
    design.spacing_m = em::wavelength(em::band_center(scenario.band)) / 2.0;
    design.insertion_loss_db = 1.0;
    panel = std::make_unique<surface::SurfacePanel>(
        "bench-surface", scenario.surface_pose, 20, 20, design,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kElement);
    panels = {panel.get()};
  }

  std::unique_ptr<sim::SceneChannel> make_channel() const {
    return std::make_unique<sim::SceneChannel>(
        scenario.environment.get(), em::band_center(scenario.band),
        scenario.ap(), panels, scenario.room_grid.points());
  }
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

template <typename Work>
double best_of(int reps, Work&& work) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    work();
    const double elapsed = ms_since(start);
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

struct Section {
  std::string name;
  double scalar_ms = 0.0;
  double vector_ms = 0.0;
  double speedup() const {
    return vector_ms > 0.0 ? scalar_ms / vector_ms : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_simd.json";

  // Single-threaded, dense-path-only: the comparison is kernel vs kernel.
  util::reset_global_pool(1);
  sim::set_eval_cache_capacity(0);
  sim::set_incremental_enabled(false);

  const simd::Backend best = simd::ops().backend;
  if (best == simd::Backend::kScalar) {
    std::printf("no SIMD backend available (or SURFOS_SIMD=scalar); "
                "nothing to compare\n");
    return 0;
  }

  std::printf("=== Dense channel kernel: scalar vs %s ===\n",
              simd::backend_name(best));

  const Fig5Scene scene;
  const auto configs = std::vector<surface::SurfaceConfig>{
      scene.panel->focus_config(
          scene.scenario.ap_position,
          scene.scenario.room_grid.point(scene.scenario.room_grid.size() / 2),
          em::band_center(scene.scenario.band))};

  std::vector<Section> sections{{"precompute"}, {"power_map"},
                                {"evaluate_with_partials"}};
  for (const bool vectorized : {false, true}) {
    if (!simd::set_backend(vectorized ? best : simd::Backend::kScalar)) {
      std::fprintf(stderr, "cannot select backend\n");
      return 1;
    }
    const auto pick = [&](Section& s) -> double& {
      return vectorized ? s.vector_ms : s.scalar_ms;
    };

    pick(sections[0]) = best_of(3, [&] {
      const auto channel = scene.make_channel();
    });

    const auto channel = scene.make_channel();
    pick(sections[1]) = best_of(5, [&] {
      for (int i = 0; i < 20; ++i) {
        const auto power = channel->power_map(configs);
        if (power.empty()) std::abort();
      }
    });

    std::vector<em::CxPlanes> coeffs(1);
    coeffs[0].assign(scene.panel->coefficients(configs[0]));
    pick(sections[2]) = best_of(5, [&] {
      std::vector<em::CxPlanes> dh;
      em::Cx h{};
      for (std::size_t j = 0; j < channel->rx_count(); ++j) {
        channel->evaluate_with_partials_planes(j, coeffs, h, dh);
      }
      if (h == em::Cx{} && channel->rx_count() > 0) std::abort();
    });
  }
  simd::reset_backend();

  std::printf("\n%-24s %12s %12s %9s\n", "section", "scalar_ms", "vector_ms",
              "speedup");
  for (const auto& s : sections) {
    std::printf("%-24s %12.3f %12.3f %8.2fx\n", s.name.c_str(), s.scalar_ms,
                s.vector_ms, s.speedup());
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"simd\",\n";
  bench::write_meta(out);
  out << "  \"scene\": \"fig5_room_grid14_panel20x20\",\n";
  out << "  \"backend\": \"" << simd::backend_name(best) << "\",\n";
  out << "  \"threads\": 1,\n";
  out << "  \"sections\": [\n";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const auto& s = sections[i];
    out << "    {\"name\": \"" << s.name << "\", \"scalar_ms\": " << s.scalar_ms
        << ", \"vector_ms\": " << s.vector_ms
        << ", \"speedup\": " << s.speedup() << "}"
        << (i + 1 < sections.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
