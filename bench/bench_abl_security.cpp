// Ablation E — the security service (paper Fig 1: "Security"; Section 3.2's
// joint optimization applied to leakage suppression).
//
// A laptop in the room needs a strong link while a sensitive area (say, a
// desk handling confidential material) must not receive a usable signal.
// Compare:
//   link-only : enhance_link() alone — the beam leaks into the secure zone;
//   joint     : enhance_link() + protect() — one shared configuration
//               steers nulls into the zone while keeping the link.
#include <cstdio>
#include <iostream>

#include "orch/orchestrator.hpp"
#include "sim/floorplan.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace surfos;

namespace {

struct Outcome {
  double link_snr_db = 0.0;
  double worst_leak_dbm = -300.0;
  double median_leak_dbm = -300.0;
};

Outcome run(bool with_protect) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(4);
  hal::SimClock clock;
  hal::DeviceRegistry registry;
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(em::band_center(scene.band)) / 2.0;
  d.insertion_loss_db = 1.0;
  const surface::SurfacePanel panel(
      "wall", scene.surface_pose, 16, 16, d,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);
  registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
      "wall", &panel, hal::spec_for_panel(panel, scene.band), &clock));
  registry.add_endpoint({"laptop", hal::EndpointKind::kClient,
                         {2.2, 2.8, 1.0}, scene.band, std::nullopt});

  orch::OrchestratorContext context;
  context.environment = scene.environment.get();
  context.ap = scene.ap();
  context.default_band = scene.band;
  context.budget = scene.budget;
  orch::Orchestrator orchestrator(&registry, &clock, context);

  const geom::SampleGrid secure_zone(0.5, 1.5, 0.5, 1.4, 1.0, 4, 3);
  const auto link_id = orchestrator.enhance_link({"laptop", 15.0, 50.0});
  orch::TaskId protect_id = 0;
  if (with_protect) {
    orch::SecurityGoal goal;
    goal.region_id = "secure-zone";
    goal.region = secure_zone;
    goal.max_leak_dbm = -85.0;
    protect_id = orchestrator.protect(goal);
  }
  orchestrator.step();

  Outcome outcome;
  outcome.link_snr_db =
      orchestrator.find_task(link_id)->achieved.value_or(-300.0);
  // Measure the leakage with the hardware's realized configuration.
  const auto config = orchestrator.last_realized("wall");
  sim::SceneChannel channel(scene.environment.get(),
                            em::band_center(scene.band), scene.ap(), {&panel},
                            secure_zone.points());
  std::vector<double> leak;
  const auto coeffs = channel.coefficients_for(
      std::vector<surface::SurfaceConfig>{*config});
  for (std::size_t j = 0; j < channel.rx_count(); ++j) {
    leak.push_back(
        scene.budget.rss_dbm(std::norm(channel.evaluate(j, coeffs))));
  }
  outcome.worst_leak_dbm = *std::max_element(leak.begin(), leak.end());
  outcome.median_leak_dbm = util::median(leak);
  (void)protect_id;
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== Ablation: security service (leakage suppression) ===\n");
  std::printf(
      "One 16x16 surface serves a laptop link; a secure zone nearby must\n"
      "stay dark. protect() joins the optimization as a negative-capacity\n"
      "objective over the zone.\n\n");

  const Outcome link_only = run(false);
  const Outcome joint = run(true);

  util::Table table({"Configuration", "Link SNR (dB)", "Zone worst RSS (dBm)",
                     "Zone median RSS (dBm)"});
  table.add_row({"link-only", util::format("%.1f", link_only.link_snr_db),
                 util::format("%.1f", link_only.worst_leak_dbm),
                 util::format("%.1f", link_only.median_leak_dbm)});
  table.add_row({"link + protect", util::format("%.1f", joint.link_snr_db),
                 util::format("%.1f", joint.worst_leak_dbm),
                 util::format("%.1f", joint.median_leak_dbm)});
  table.print(std::cout);

  std::printf(
      "\nLeakage suppressed by %.1f dB (worst case) at a link cost of %.1f "
      "dB.\nShape: the shared-configuration multiplexing that joins coverage\n"
      "and sensing in Fig 5 equally composes connectivity with security.\n",
      link_only.worst_leak_dbm - joint.worst_leak_dbm,
      link_only.link_snr_db - joint.link_snr_db);
  return 0;
}
