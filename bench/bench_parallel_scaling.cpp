// Parallel execution engine scaling: serial (SURFOS_THREADS=1 semantics)
// versus thread-pool timings for the three dominant hot paths on a
// Fig-5-sized scene (3.5 m room, 20x20 element-wise surface, 14x14 RX
// grid): SceneChannel::precompute, power_map, and objective gradients.
//
// Emits BENCH_parallel.json so later PRs can track the perf trajectory:
//   ./bench_parallel_scaling [threads] [output.json]
// `threads` defaults to SURFOS_THREADS / hardware concurrency.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_meta.hpp"
#include "opt/objective.hpp"
#include "orch/objectives.hpp"
#include "orch/variables.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"
#include "surface/panel.hpp"
#include "util/thread_pool.hpp"

using namespace surfos;

namespace {

struct Fig5Scene {
  sim::CoverageRoomScenario scenario;
  std::unique_ptr<surface::SurfacePanel> panel;
  std::vector<const surface::SurfacePanel*> panels;

  Fig5Scene() : scenario(sim::make_coverage_room(/*grid_n=*/14)) {
    surface::ElementDesign design;
    design.spacing_m = em::wavelength(em::band_center(scenario.band)) / 2.0;
    design.insertion_loss_db = 1.0;
    panel = std::make_unique<surface::SurfacePanel>(
        "bench-surface", scenario.surface_pose, 20, 20, design,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kElement);
    panels = {panel.get()};
  }

  std::unique_ptr<sim::SceneChannel> make_channel() const {
    return std::make_unique<sim::SceneChannel>(
        scenario.environment.get(), em::band_center(scenario.band),
        scenario.ap(), panels, scenario.room_grid.points());
  }
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Section {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

/// Runs `work` under a serial pool and under an n-thread pool; returns both
/// wall times (best of `reps` runs each, to shed scheduler noise).
template <typename Work>
Section measure(const std::string& name, std::size_t threads, int reps,
                Work&& work) {
  Section section;
  section.name = name;
  for (const bool parallel : {false, true}) {
    util::reset_global_pool(parallel ? threads : 1);
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto start = std::chrono::steady_clock::now();
      work();
      const double elapsed = ms_since(start);
      if (r == 0 || elapsed < best) best = elapsed;
    }
    (parallel ? section.parallel_ms : section.serial_ms) = best;
  }
  return section;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1]))
               : util::ThreadPool().thread_count();
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_parallel.json";
  const unsigned hw = std::thread::hardware_concurrency();
  // A "speedup" measured with one worker (or on one hardware core) is just
  // pool overhead: an earlier BENCH_parallel.json recorded ~1.0x claims
  // taken on a single-core runner as if they were scaling numbers. Refuse
  // to make the claim unless both the pool and the hardware can parallelize.
  const bool speedup_meaningful = threads > 1 && hw > 1;

  std::printf("=== Parallel execution engine scaling (fig-5-sized scene) ===\n");
  std::printf("threads: %zu, hardware_concurrency: %u\n", threads, hw);
  if (!speedup_meaningful) {
    std::printf(
        "WARNING: %s -- timings are recorded but speedup claims are "
        "suppressed (null in the JSON)\n",
        hw <= 1 ? "single hardware core detected"
                : "running with a single worker thread");
  }

  const Fig5Scene scene;
  const auto configs = std::vector<surface::SurfaceConfig>{
      scene.panel->focus_config(
          scene.scenario.ap_position,
          scene.scenario.room_grid.point(scene.scenario.room_grid.size() / 2),
          em::band_center(scene.scenario.band))};

  std::vector<Section> sections;

  sections.push_back(measure("precompute", threads, 3, [&] {
    const auto channel = scene.make_channel();
  }));

  const auto channel = scene.make_channel();
  sections.push_back(measure("power_map", threads, 5, [&] {
    for (int i = 0; i < 20; ++i) {
      const auto power = channel->power_map(configs);
      if (power.empty()) std::abort();
    }
  }));

  const orch::PanelVariables variables(scene.panels);
  std::vector<std::size_t> rx(channel->rx_count());
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] = i;
  const orch::CapacityObjective capacity(channel.get(), &variables, rx,
                                         scene.scenario.budget.snr(1.0));
  std::vector<double> x(variables.dimension());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.5 * std::sin(static_cast<double>(i));
  }
  std::vector<double> gradient(x.size());
  sections.push_back(measure("analytic_gradient", threads, 5, [&] {
    for (int i = 0; i < 3; ++i) capacity.value_and_gradient(x, gradient);
  }));

  // Finite-difference gradient over the capacity loss restricted to a small
  // dimension (2n probes, each a full objective evaluation).
  const opt::FunctionObjective fd(
      x.size(),
      [&](std::span<const double> probe) { return capacity.value(probe); },
      /*thread_safe=*/true);
  std::vector<double> x_small(x.begin(), x.end());
  sections.push_back(measure("fd_gradient_batch", threads, 2, [&] {
    std::vector<std::vector<double>> pop(24, x_small);
    for (std::size_t k = 0; k < pop.size(); ++k) {
      pop[k][k % pop[k].size()] += 0.01 * static_cast<double>(k);
    }
    std::vector<double> values(pop.size());
    fd.value_batch(pop, values);
  }));

  double core_serial = 0.0;
  double core_parallel = 0.0;
  std::printf("\n%-20s %12s %12s %9s\n", "section", "serial_ms", "parallel_ms",
              "speedup");
  for (const auto& s : sections) {
    if (speedup_meaningful) {
      std::printf("%-20s %12.2f %12.2f %8.2fx\n", s.name.c_str(), s.serial_ms,
                  s.parallel_ms, s.speedup());
    } else {
      std::printf("%-20s %12.2f %12.2f %9s\n", s.name.c_str(), s.serial_ms,
                  s.parallel_ms, "n/a");
    }
    if (s.name == "precompute" || s.name == "power_map") {
      core_serial += s.serial_ms;
      core_parallel += s.parallel_ms;
    }
  }
  const double core_speedup =
      core_parallel > 0.0 ? core_serial / core_parallel : 0.0;
  if (speedup_meaningful) {
    std::printf("\nprecompute+power_map speedup: %.2fx at %zu threads\n",
                core_speedup, threads);
  } else {
    std::printf("\nprecompute+power_map speedup: n/a (no parallelism)\n");
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"parallel_scaling\",\n";
  bench::write_meta(out);
  out << "  \"scene\": \"fig5_room_grid14_panel20x20\",\n";
  out << "  \"threads\": " << threads << ",\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"speedup_claims_valid\": " << (speedup_meaningful ? "true" : "false")
      << ",\n";
  out << "  \"sections\": [\n";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const auto& s = sections[i];
    out << "    {\"name\": \"" << s.name << "\", \"serial_ms\": " << s.serial_ms
        << ", \"parallel_ms\": " << s.parallel_ms << ", \"speedup\": ";
    if (speedup_meaningful) {
      out << s.speedup();
    } else {
      out << "null";
    }
    out << "}" << (i + 1 < sections.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"core_speedup_precompute_power_map\": ";
  if (speedup_meaningful) {
    out << core_speedup;
  } else {
    out << "null";
  }
  out << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
