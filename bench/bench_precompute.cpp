// Content-addressed precompute store: shared versus dense artifact cost on
// the two workloads PR 10 targets.
//
// Section 1 — fleet cold start: N identical sites each construct their
// SceneChannel. Dense (SURFOS_PRECOMPUTE=0) pays N full precomputes; shared
// pays one miss and N-1 hits. Claim: >= 5x.
//
// Section 2 — single-endpoint churn: a live channel's RX set changes by one
// endpoint per step. Dense re-precomputes everything; precompute_delta
// traces and fills only the new row. Claim: >= 10x.
//
// Both sections assert bitwise-identical artifacts (f/g/cascade planes and
// h_dir) between the shared and dense paths before timing anything —
// a speedup over different numbers would be meaningless.
//
// Single-threaded (reset_global_pool(1)) so the ratios measure algorithmic
// work saved, not scheduling; the store path wins even harder with threads
// because hits skip the pool entirely.
//
// Emits BENCH_precompute.json:
//   ./bench_precompute [output.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "em/soa.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"
#include "sim/precompute_store.hpp"
#include "surface/panel.hpp"
#include "util/thread_pool.hpp"

using namespace surfos;

namespace {

constexpr std::size_t kSites = 32;       ///< Identical sites in section 1.
constexpr std::size_t kChurnSteps = 24;  ///< Endpoint moves in section 2.

/// One coverage-room site: a 16x16 element-wise surface and a 10x10 RX grid
/// (big enough that precompute cost dominates construction).
struct Site {
  sim::CoverageRoomScenario scenario;
  std::unique_ptr<surface::SurfacePanel> panel;
  std::vector<const surface::SurfacePanel*> panels;

  Site() : scenario(sim::make_coverage_room(/*grid_n=*/10)) {
    surface::ElementDesign design;
    design.spacing_m = em::wavelength(em::band_center(scenario.band)) / 2.0;
    design.insertion_loss_db = 1.0;
    panel = std::make_unique<surface::SurfacePanel>(
        "bench-surface", scenario.surface_pose, 16, 16, design,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kElement);
    panels = {panel.get()};
  }

  std::unique_ptr<sim::SceneChannel> make_channel(
      std::vector<geom::Vec3> rx_points) const {
    return std::make_unique<sim::SceneChannel>(
        scenario.environment.get(), em::band_center(scenario.band),
        scenario.ap(), panels, std::move(rx_points));
  }
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool planes_equal(const em::CxPlanes& a, const em::CxPlanes& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.at(i) != b.at(i)) return false;
  }
  return true;
}

/// Bitwise artifact comparison across two channels over the same scene.
bool channels_identical(const sim::SceneChannel& a, const sim::SceneChannel& b) {
  if (a.panel_count() != b.panel_count() || a.rx_count() != b.rx_count()) {
    return false;
  }
  for (std::size_t p = 0; p < a.panel_count(); ++p) {
    if (!planes_equal(a.tx_planes(p), b.tx_planes(p))) return false;
    for (std::size_t j = 0; j < a.rx_count(); ++j) {
      if (!planes_equal(a.rx_planes(p, j), b.rx_planes(p, j))) return false;
    }
  }
  for (std::size_t j = 0; j < a.rx_count(); ++j) {
    if (a.direct(j) != b.direct(j)) return false;
  }
  for (std::size_t q = 0; q < a.panel_count(); ++q) {
    for (std::size_t p = 0; p < a.panel_count(); ++p) {
      const em::CxPlaneMat& ma = a.cascade_planes(q, p);
      const em::CxPlaneMat& mb = b.cascade_planes(q, p);
      if (ma.rows() != mb.rows() || ma.cols() != mb.cols()) return false;
      for (std::size_t r = 0; r < ma.rows(); ++r) {
        for (std::size_t c = 0; c < ma.cols(); ++c) {
          if (ma.at(r, c) != mb.at(r, c)) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_precompute.json";
  util::reset_global_pool(1);

  const Site site;
  const std::vector<geom::Vec3> grid = site.scenario.room_grid.points();

  // --- Equivalence gate: shared and dense artifacts must match bitwise. ---
  sim::set_precompute_enabled(false);
  const auto dense_ref = site.make_channel(grid);
  sim::set_precompute_enabled(true);
  sim::PrecomputeStore::instance().clear();
  const auto shared_ref = site.make_channel(grid);
  if (!channels_identical(*dense_ref, *shared_ref)) {
    std::fprintf(stderr, "FATAL: shared artifacts differ from dense\n");
    return 1;
  }

  // Delta equivalence: remove one endpoint, add two, re-add the removed one
  // — the rebased channel must match a fresh dense build over the same list.
  {
    std::vector<geom::Vec3> churned = grid;
    const geom::Vec3 removed = churned[3];
    const std::vector<geom::Vec3> added = {{1.21, 2.17, 1.04},
                                           {2.45, 0.93, 1.31}};
    const std::vector<std::size_t> removed_idx = {3};
    auto delta_chan = site.make_channel(grid);
    delta_chan->precompute_delta(added, removed_idx);
    delta_chan->precompute_delta(std::vector<geom::Vec3>{removed}, {});
    churned.erase(churned.begin() + 3);
    churned.insert(churned.end(), added.begin(), added.end());
    churned.push_back(removed);
    sim::set_precompute_enabled(false);
    const auto fresh = site.make_channel(churned);
    sim::set_precompute_enabled(true);
    if (!channels_identical(*fresh, *delta_chan)) {
      std::fprintf(stderr, "FATAL: delta precompute differs from fresh\n");
      return 1;
    }
  }
  std::printf("equivalence: shared == dense, delta == fresh (bitwise)\n");

  // --- Section 1: fleet cold start, N identical sites. ---
  std::vector<Site> sites(kSites);

  sim::set_precompute_enabled(false);
  auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::unique_ptr<sim::SceneChannel>> channels;
    for (const Site& s : sites) channels.push_back(s.make_channel(grid));
  }
  const double dense_cold_ms = ms_since(start);

  sim::set_precompute_enabled(true);
  sim::PrecomputeStore::instance().clear();
  start = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<sim::SceneChannel>> shared_channels;
  for (const Site& s : sites) shared_channels.push_back(s.make_channel(grid));
  const double shared_cold_ms = ms_since(start);
  const sim::PrecomputeStore::Stats cold_stats =
      sim::PrecomputeStore::instance().stats();

  const double cold_speedup =
      shared_cold_ms > 0.0 ? dense_cold_ms / shared_cold_ms : 0.0;
  std::printf(
      "cold start (%zu sites): dense %.1f ms, shared %.1f ms -> %.1fx "
      "(%llu hits, %llu misses, %.1f MiB)\n",
      kSites, dense_cold_ms, shared_cold_ms, cold_speedup,
      static_cast<unsigned long long>(cold_stats.hits),
      static_cast<unsigned long long>(cold_stats.misses),
      static_cast<double>(cold_stats.bytes) / (1024.0 * 1024.0));

  // --- Section 2: single-endpoint churn on a live channel. ---
  // Dense baseline: each churn step rebuilds the whole channel (what a
  // store-less daemon does when an endpoint joins).
  std::vector<geom::Vec3> points = grid;
  sim::set_precompute_enabled(false);
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kChurnSteps; ++i) {
    points.back() = {1.0 + 0.03 * static_cast<double>(i), 2.1, 1.2};
    const auto rebuilt = site.make_channel(points);
  }
  const double dense_churn_ms = ms_since(start);

  sim::set_precompute_enabled(true);
  points = grid;
  auto live = site.make_channel(points);
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kChurnSteps; ++i) {
    const std::vector<geom::Vec3> added = {
        {1.0 + 0.03 * static_cast<double>(i), 2.1, 1.2}};
    const std::vector<std::size_t> removed = {live->rx_count() - 1};
    live->precompute_delta(added, removed);
  }
  const double delta_churn_ms = ms_since(start);

  const double churn_speedup =
      delta_churn_ms > 0.0 ? dense_churn_ms / delta_churn_ms : 0.0;
  std::printf(
      "endpoint churn (%zu steps): dense rebuild %.1f ms, delta %.1f ms -> "
      "%.1fx\n",
      kChurnSteps, dense_churn_ms, delta_churn_ms, churn_speedup);

  util::reset_global_pool(0);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"precompute\",\n";
  bench::write_meta(out);
  out << "  \"note\": \"single-threaded; shared store vs SURFOS_PRECOMPUTE=0 "
         "dense artifacts, bitwise-identical values verified before "
         "timing\",\n";
  out << "  \"equivalence\": {\"shared_equals_dense\": true, "
         "\"delta_equals_fresh\": true},\n";
  out << "  \"cold_start\": {\"sites\": " << kSites
      << ", \"dense_ms\": " << dense_cold_ms
      << ", \"shared_ms\": " << shared_cold_ms
      << ", \"speedup\": " << cold_speedup << ", \"hits\": " << cold_stats.hits
      << ", \"misses\": " << cold_stats.misses
      << ", \"resident_bytes\": " << cold_stats.bytes << "},\n";
  out << "  \"endpoint_churn\": {\"steps\": " << kChurnSteps
      << ", \"dense_rebuild_ms\": " << dense_churn_ms
      << ", \"delta_ms\": " << delta_churn_ms
      << ", \"speedup\": " << churn_speedup << "}\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return (cold_speedup >= 5.0 && churn_speedup >= 10.0) ? 0 : 2;
}
