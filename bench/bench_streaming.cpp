// Streaming observability plane cost model: how fast the subscription
// registry can encode and enqueue kEvent frames (events/s and per-event
// microseconds), what a live metrics subscriber adds to a control epoch
// versus telemetry disabled entirely (the per-event publish overhead), and
// how publish throughput holds up against a stalled subscriber whose
// bounded outbox is dropping oldest-first the whole time.
//
// Emits BENCH_streaming.json:
//   ./bench_streaming [epochs] [subscribers] [output.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "core/config.hpp"
#include "daemon/daemon.hpp"
#include "daemon/subscription.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeseries.hpp"

using namespace surfos;

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A registry-shaped snapshot: `total` sorted counters of which the first
/// `churn` change every epoch (the delta encoder's working set).
telemetry::Snapshot make_snapshot(std::size_t total, std::size_t churn,
                                  std::uint64_t epoch) {
  telemetry::Snapshot snap;
  snap.counters.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "bench.counter.%03zu", i);
    const std::uint64_t value = i < churn ? epoch * 10 + i : 42;
    snap.counters.push_back({name, value, true});
  }
  snap.gauges.push_back({"bench.gauge", static_cast<double>(epoch)});
  return snap;
}

/// Mean run_epoch cost over `epochs` after one warmup epoch.
double mean_epoch_us(daemon::Daemon& server, std::size_t epochs) {
  server.run_epoch();  // warmup: first epoch pays one-time setup
  const double t0 = now_us();
  for (std::size_t i = 0; i < epochs; ++i) server.run_epoch();
  return (now_us() - t0) / static_cast<double>(epochs);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t epochs =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 2000;
  const std::size_t subscribers =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 8;
  const std::string output = argc > 3 ? argv[3] : "BENCH_streaming.json";

  // --- 1. Registry publish path: events/s through encode + enqueue ----------
  // `subscribers` metrics subscriptions on fake fds, drained every epoch (a
  // healthy fleet of dashboards). 64 counters, 8 changing per epoch.
  telemetry::Timeseries series(512);
  daemon::SubscriptionRegistry registry;
  for (std::size_t s = 0; s < subscribers; ++s) {
    const int fd = 1000 + static_cast<int>(s);
    registry.add_connection(fd);
    daemon::SubscriptionSpec spec;
    spec.topic = daemon::SubTopic::kMetrics;
    spec.interval = 1;
    if (!registry.subscribe(fd, spec).ok()) {
      std::fprintf(stderr, "bench_streaming: subscribe failed\n");
      return 1;
    }
  }
  const double pub_t0 = now_us();
  for (std::uint64_t epoch = 1; epoch <= epochs; ++epoch) {
    series.record(epoch, make_snapshot(64, 8, epoch), 1.0, 50.0);
    daemon::SubscriptionRegistry::EpochContext ctx;
    ctx.epoch = epoch;
    ctx.series = &series;
    registry.publish(ctx);
    for (std::size_t s = 0; s < subscribers; ++s) {
      (void)registry.take_output(1000 + static_cast<int>(s));
    }
  }
  const double pub_elapsed_us = now_us() - pub_t0;
  const auto pub_stats = registry.stats();
  const double events_per_sec =
      pub_stats.published * 1e6 / (pub_elapsed_us > 0 ? pub_elapsed_us : 1);
  const double per_event_us =
      pub_elapsed_us / static_cast<double>(pub_stats.published);

  // --- 2. Epoch overhead: telemetry off vs on vs on-with-subscriber ---------
  // The streaming column is the real daemon path: record into the
  // time-series, run the watchdog, encode one delta for a live subscriber.
  const std::size_t daemon_epochs = epochs < 500 ? epochs : 500;
  daemon::DaemonOptions options;
  options.ticker = false;
  options.epoch_ms = 20;
  options.grid_n = 3;

  telemetry::set_enabled(false);
  double epoch_off_us = 0.0;
  {
    daemon::Daemon server(options);
    epoch_off_us = mean_epoch_us(server, daemon_epochs);
  }

  telemetry::set_enabled(true);
  double epoch_on_us = 0.0;
  double epoch_streaming_us = 0.0;
  std::uint64_t streaming_events = 0;
  {
    daemon::Daemon server(options);
    epoch_on_us = mean_epoch_us(server, daemon_epochs);
  }
  {
    daemon::Daemon server(options);
    server.subscriptions().add_connection(2000);
    daemon::SubscriptionSpec spec;
    spec.topic = daemon::SubTopic::kMetrics;
    spec.interval = 1;
    if (!server.subscriptions().subscribe(2000, spec).ok()) {
      std::fprintf(stderr, "bench_streaming: daemon subscribe failed\n");
      return 1;
    }
    epoch_streaming_us = mean_epoch_us(server, daemon_epochs);
    streaming_events = server.subscription_stats().published;
    (void)server.subscriptions().take_output(2000);
  }
  // One subscriber at interval 1 => one event per epoch: the marginal cost
  // of publishing one event into the epoch, measured against telemetry-off.
  const double overhead_vs_off_us = epoch_streaming_us - epoch_off_us;
  const double overhead_vs_on_us = epoch_streaming_us - epoch_on_us;

  // --- 3. Slow subscriber: drop-oldest under a never-draining outbox --------
  // Tight cap so the steady state is "every publish evicts": the number we
  // want is publish throughput *while dropping*, proving a stalled client
  // costs O(1) per epoch, not O(backlog).
  core::install_config(core::Config());
  (void)core::set_config_knob("SURFOS_SUB_OUTBOX", 8);
  daemon::SubscriptionRegistry slow;
  slow.add_connection(3000);
  daemon::SubscriptionSpec spec;
  spec.topic = daemon::SubTopic::kMetrics;
  spec.interval = 1;
  (void)slow.subscribe(3000, spec);
  const double slow_t0 = now_us();
  for (std::uint64_t epoch = 1; epoch <= epochs; ++epoch) {
    series.record(epochs + epoch, make_snapshot(64, 8, epoch), 1.0, 50.0);
    daemon::SubscriptionRegistry::EpochContext ctx;
    ctx.epoch = epoch;
    ctx.series = &series;
    slow.publish(ctx);  // never drained: outbox pinned at the cap
  }
  const double slow_elapsed_us = now_us() - slow_t0;
  const auto slow_stats = slow.stats();
  const double slow_pub_per_sec =
      slow_stats.published * 1e6 / (slow_elapsed_us > 0 ? slow_elapsed_us : 1);
  core::clear_config();

  std::ofstream os(output);
  os << "{\n";
  bench::write_meta(os);
  os << "  \"benchmark\": \"streaming_observability\",\n";
  os << "  \"epochs\": " << epochs << ",\n";
  os << "  \"subscribers\": " << subscribers << ",\n";
  os << "  \"publish_events_total\": " << pub_stats.published << ",\n";
  os << "  \"publish_events_per_sec\": " << events_per_sec << ",\n";
  os << "  \"publish_per_event_us\": " << per_event_us << ",\n";
  os << "  \"epoch_telemetry_off_us\": " << epoch_off_us << ",\n";
  os << "  \"epoch_telemetry_on_us\": " << epoch_on_us << ",\n";
  os << "  \"epoch_with_subscriber_us\": " << epoch_streaming_us << ",\n";
  os << "  \"per_event_overhead_vs_off_us\": " << overhead_vs_off_us << ",\n";
  os << "  \"per_event_overhead_vs_on_us\": " << overhead_vs_on_us << ",\n";
  os << "  \"subscriber_events\": " << streaming_events << ",\n";
  os << "  \"slow_publishes_per_sec\": " << slow_pub_per_sec << ",\n";
  os << "  \"slow_published\": " << slow_stats.published << ",\n";
  os << "  \"slow_dropped\": " << slow_stats.dropped << "\n";
  os << "}\n";
  os.close();

  std::printf("publish path: %.0f events/s (%.2f us/event, %zu subs)\n",
              events_per_sec, per_event_us, subscribers);
  std::printf(
      "epoch: off %.1f us, telemetry %.1f us, +subscriber %.1f us "
      "(overhead vs off %.2f us/event)\n",
      epoch_off_us, epoch_on_us, epoch_streaming_us, overhead_vs_off_us);
  std::printf("stalled subscriber: %.0f publishes/s, %llu dropped\n",
              slow_pub_per_sec,
              static_cast<unsigned long long>(slow_stats.dropped));
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
