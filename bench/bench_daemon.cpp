// surfosd control-plane latency: request round-trip over the Unix-domain
// socket (p50/p99 across GetStatus, GetMetrics, and SubmitDemand), the same
// dispatch in-process (handle_request, isolating protocol cost from socket
// cost), and control-epoch wall-time jitter while requests are in flight —
// the "epochs are short so request latency stays bounded" claim of
// daemon/daemon.hpp, measured.
//
// Emits BENCH_daemon.json:
//   ./bench_daemon [requests] [epochs] [output.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "broker/demand.hpp"
#include "daemon/client.hpp"
#include "daemon/daemon.hpp"
#include "daemon/tags.hpp"
#include "proto/serialize.hpp"

using namespace surfos;

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Quantiles {
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Quantiles quantiles(std::vector<double> samples) {
  Quantiles q;
  q.p50 = percentile(samples, 0.50);
  q.p99 = percentile(samples, 0.99);
  q.max = samples.empty()
              ? 0.0
              : *std::max_element(samples.begin(), samples.end());
  return q;
}

std::vector<std::uint8_t> demand_payload(const std::string& app_id) {
  std::vector<std::uint8_t> payload;
  proto::TlvWriter w(payload);
  w.put_string(daemon::tag::kAppId, app_id);
  w.put_bytes(daemon::tag::kDemand,
              proto::to_wire(broker::demand_profile(
                  broker::AppClass::kVideoStreaming, "bench-endpoint")));
  return payload;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t requests =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 2000;
  const std::size_t epochs =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 200;
  const std::string output = argc > 3 ? argv[3] : "BENCH_daemon.json";

  const std::string socket_path =
      "/tmp/surfosd_bench_" + std::to_string(::getpid()) + ".sock";
  daemon::DaemonOptions options;
  options.socket_path = socket_path;
  options.epoch_ms = 20;
  options.ticker = false;  // epochs measured explicitly below
  options.grid_n = 3;
  daemon::Daemon server(options);
  if (auto started = server.start(); !started.ok()) {
    std::fprintf(stderr, "bench_daemon: %s\n",
                 started.error().message.c_str());
    return 1;
  }

  // A populated control plane: a handful of live sessions.
  for (int i = 0; i < 4; ++i) {
    proto::WireFrame request;
    request.type = proto::MsgType::kSubmitDemand;
    request.trace_id = 1;
    request.payload = demand_payload("warm" + std::to_string(i));
    (void)server.handle_request(request);
  }
  server.run_epoch();

  auto connected = daemon::Client::connect(socket_path);
  if (!connected.ok()) {
    std::fprintf(stderr, "bench_daemon: %s\n",
                 connected.error().message.c_str());
    return 1;
  }
  daemon::Client client = std::move(connected.value());

  // --- Socket round trips ----------------------------------------------------
  std::vector<double> status_us, metrics_us;
  status_us.reserve(requests);
  metrics_us.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const double t0 = now_us();
    auto status = client.call(proto::MsgType::kGetStatus, {});
    const double t1 = now_us();
    auto metrics = client.call(proto::MsgType::kGetMetrics, {});
    const double t2 = now_us();
    if (!status.ok() || !metrics.ok()) {
      std::fprintf(stderr, "bench_daemon: request failed\n");
      return 1;
    }
    status_us.push_back(t1 - t0);
    metrics_us.push_back(t2 - t1);
  }

  // --- In-process dispatch (no socket) --------------------------------------
  std::vector<double> inproc_us;
  inproc_us.reserve(requests);
  proto::WireFrame status_request;
  status_request.type = proto::MsgType::kGetStatus;
  status_request.trace_id = 2;
  for (std::size_t i = 0; i < requests; ++i) {
    const double t0 = now_us();
    (void)server.handle_request(status_request);
    inproc_us.push_back(now_us() - t0);
  }

  // --- Epoch jitter while a client hammers status --------------------------
  std::vector<double> epoch_ms;
  epoch_ms.reserve(epochs);
  for (std::size_t i = 0; i < epochs; ++i) {
    (void)client.call(proto::MsgType::kGetStatus, {});
    const double t0 = now_us();
    server.run_epoch();
    epoch_ms.push_back((now_us() - t0) / 1000.0);
  }

  server.stop();

  const Quantiles status_q = quantiles(status_us);
  const Quantiles metrics_q = quantiles(metrics_us);
  const Quantiles inproc_q = quantiles(inproc_us);
  const Quantiles epoch_q = quantiles(epoch_ms);
  const double jitter_ms = epoch_q.p99 - epoch_q.p50;

  std::ofstream os(output);
  os << "{\n";
  bench::write_meta(os);
  os << "  \"benchmark\": \"daemon_round_trip\",\n";
  os << "  \"requests\": " << requests << ",\n";
  os << "  \"epochs\": " << epochs << ",\n";
  os << "  \"socket_status_p50_us\": " << status_q.p50 << ",\n";
  os << "  \"socket_status_p99_us\": " << status_q.p99 << ",\n";
  os << "  \"socket_metrics_p50_us\": " << metrics_q.p50 << ",\n";
  os << "  \"socket_metrics_p99_us\": " << metrics_q.p99 << ",\n";
  os << "  \"inproc_status_p50_us\": " << inproc_q.p50 << ",\n";
  os << "  \"inproc_status_p99_us\": " << inproc_q.p99 << ",\n";
  os << "  \"epoch_p50_ms\": " << epoch_q.p50 << ",\n";
  os << "  \"epoch_p99_ms\": " << epoch_q.p99 << ",\n";
  os << "  \"epoch_max_ms\": " << epoch_q.max << ",\n";
  os << "  \"epoch_jitter_p99_minus_p50_ms\": " << jitter_ms << "\n";
  os << "}\n";
  os.close();

  std::printf("socket status round trip: p50 %.1f us, p99 %.1f us\n",
              status_q.p50, status_q.p99);
  std::printf("in-process dispatch:      p50 %.1f us, p99 %.1f us\n",
              inproc_q.p50, inproc_q.p99);
  std::printf("epoch: p50 %.3f ms, p99 %.3f ms (jitter %.3f ms)\n",
              epoch_q.p50, epoch_q.p99, jitter_ms);
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
