// Incremental channel evaluation: dense re-evaluation versus rank-1 delta
// probes and digest memoization on the Fig-5-sized scene (3.5 m room, 20x20
// element-wise surface, 14x14 RX grid).
//
// Sections (all times wall-clock, best of N reps):
//   probe:      2n single-coordinate FD probes — dense value(probe) sweeps
//               (SURFOS_INCREMENTAL=0) vs rank-1 value_delta (=1, including
//               the rebase + per-RX linear-response fills they amortize)
//   fd_gradient: the base-class central-difference gradient routed through
//               value() (dense) vs value_delta (rank-1)
//   power_map:  a repeated full-map sweep — recompute vs digest-memo hit
//   orchestrator_steps: a 3-step control loop in both modes, plus a
//               byte-identity check of every task's achieved metric
//
// Emits BENCH_incremental.json:
//   ./bench_incremental [output.json]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "opt/objective.hpp"
#include "orch/objectives.hpp"
#include "orch/orchestrator.hpp"
#include "orch/variables.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"
#include "sim/incremental.hpp"
#include "surface/panel.hpp"
#include "util/thread_pool.hpp"

using namespace surfos;

namespace {

struct Fig5Scene {
  sim::CoverageRoomScenario scenario;
  std::unique_ptr<surface::SurfacePanel> panel;
  std::vector<const surface::SurfacePanel*> panels;

  Fig5Scene() : scenario(sim::make_coverage_room(/*grid_n=*/14)) {
    surface::ElementDesign design;
    design.spacing_m = em::wavelength(em::band_center(scenario.band)) / 2.0;
    design.insertion_loss_db = 1.0;
    panel = std::make_unique<surface::SurfacePanel>(
        "bench-surface", scenario.surface_pose, 20, 20, design,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kElement);
    panels = {panel.get()};
  }

  std::unique_ptr<sim::SceneChannel> make_channel() const {
    return std::make_unique<sim::SceneChannel>(
        scenario.environment.get(), em::band_center(scenario.band),
        scenario.ap(), panels, scenario.room_grid.points());
  }
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Section {
  std::string name;
  double dense_ms = 0.0;
  double incremental_ms = 0.0;
  double speedup() const {
    return incremental_ms > 0.0 ? dense_ms / incremental_ms : 0.0;
  }
};

/// Times `work` with SURFOS_INCREMENTAL off and on (best of `reps` each).
/// `reset` runs before every timed repetition, outside the clock.
template <typename Work, typename Reset>
Section measure(const std::string& name, int reps, Reset&& reset,
                Work&& work) {
  Section section;
  section.name = name;
  for (const bool incremental : {false, true}) {
    sim::set_incremental_enabled(incremental);
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      reset();
      const auto start = std::chrono::steady_clock::now();
      work();
      const double elapsed = ms_since(start);
      if (r == 0 || elapsed < best) best = elapsed;
    }
    (incremental ? section.incremental_ms : section.dense_ms) = best;
  }
  return section;
}

struct OrchestratorBench {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(5);
  hal::SimClock clock;
  hal::DeviceRegistry registry;
  std::unique_ptr<surface::SurfacePanel> panel;
  std::unique_ptr<orch::Orchestrator> orchestrator;

  OrchestratorBench() {
    surface::ElementDesign d;
    d.spacing_m = em::wavelength(em::band_center(scene.band)) / 2.0;
    d.insertion_loss_db = 1.0;
    panel = std::make_unique<surface::SurfacePanel>(
        "wall", scene.surface_pose, 12, 12, d,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kProgrammable,
        surface::ControlGranularity::kElement);
    hal::HardwareSpec spec = hal::spec_for_panel(*panel, scene.band);
    registry.add_surface(std::make_unique<hal::ProgrammableSurfaceDriver>(
        "wall", panel.get(), spec, &clock));
    registry.add_endpoint({"laptop", hal::EndpointKind::kClient,
                           {1.2, 2.4, 1.0}, scene.band, std::nullopt});
    orch::OrchestratorContext context;
    context.environment = scene.environment.get();
    context.ap = scene.ap();
    context.default_band = scene.band;
    context.budget = scene.budget;
    orchestrator = std::make_unique<orch::Orchestrator>(
        &registry, &clock, context, orch::OrchestratorOptions{});
    orchestrator->enhance_link({"laptop", 15.0, 50.0});
  }

  /// Runs a 3-step control loop; returns each task's achieved metric.
  std::vector<double> run() {
    std::vector<double> achieved;
    for (int s = 0; s < 3; ++s) {
      const orch::StepReport report = orchestrator->step();
      for (const auto& task : report.tasks) {
        achieved.push_back(task.achieved.value_or(-1.0));
      }
    }
    return achieved;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_incremental.json";

  std::printf("=== Incremental evaluation: dense vs rank-1/memoized ===\n");

  const Fig5Scene scene;
  const auto channel = scene.make_channel();
  const orch::PanelVariables variables(scene.panels);
  std::vector<std::size_t> rx(channel->rx_count());
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] = i;
  const orch::CapacityObjective capacity(channel.get(), &variables, rx,
                                         scene.scenario.budget.snr(1.0));
  std::vector<double> x(variables.dimension());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.5 * std::sin(static_cast<double>(i));
  }

  std::vector<Section> sections;

  // 2n single-coordinate probes off one base, as one finite-difference
  // gradient issues. The incremental path includes its rebase and lazy
  // per-RX fills, so the speedup is the honest amortized figure.
  sim::set_incremental_enabled(false);
  const double base_value = capacity.value(x);
  const double h = capacity.fd_step();
  double checksum_dense = 0.0;
  double checksum_delta = 0.0;
  sections.push_back(measure(
      "probe", 3, [] {},
      [&] {
        double sum = 0.0;
        if (sim::incremental_enabled()) {
          for (std::size_t i = 0; i < x.size(); ++i) {
            sum += capacity.value_delta(x, base_value, i, x[i] + h);
            sum += capacity.value_delta(x, base_value, i, x[i] - h);
          }
          checksum_delta = sum;
        } else {
          std::vector<double> probe(x);
          for (std::size_t i = 0; i < x.size(); ++i) {
            probe[i] = x[i] + h;
            sum += capacity.value(probe);
            probe[i] = x[i] - h;
            sum += capacity.value(probe);
            probe[i] = x[i];
          }
          checksum_dense = sum;
        }
      }));

  // The base-class central-difference gradient, forced past the analytic
  // override with a qualified call; probes route through value_delta.
  std::vector<double> gradient(x.size());
  sections.push_back(measure(
      "fd_gradient", 3, [] {},
      [&] { capacity.opt::Objective::gradient_at(x, base_value, gradient); }));

  // Full power-map sweep repeated over unchanged configs: dense recompute vs
  // digest-memo hits (measure() re-runs warm, so the incremental side is the
  // steady-state hit path).
  const auto configs = std::vector<surface::SurfaceConfig>{
      scene.panel->focus_config(
          scene.scenario.ap_position,
          scene.scenario.room_grid.point(scene.scenario.room_grid.size() / 2),
          em::band_center(scene.scenario.band))};
  sections.push_back(measure(
      "power_map", 5, [] {},
      [&] {
        for (int i = 0; i < 10; ++i) {
          const auto power = channel->power_map(configs);
          if (power.empty()) std::abort();
        }
      }));

  // End-to-end control loop; also checks that both modes report bit-equal
  // achieved metrics (the memoized pipeline stores dense results).
  std::vector<double> dense_achieved;
  std::vector<double> incremental_achieved;
  sections.push_back(measure(
      "orchestrator_steps", 2, [] {},
      [&] {
        OrchestratorBench bench;
        auto achieved = bench.run();
        (sim::incremental_enabled() ? incremental_achieved : dense_achieved) =
            std::move(achieved);
      }));
  const bool reports_identical = dense_achieved == incremental_achieved;

  std::printf("\n%-20s %12s %14s %9s\n", "section", "dense_ms",
              "incremental_ms", "speedup");
  for (const auto& s : sections) {
    std::printf("%-20s %12.3f %14.3f %8.2fx\n", s.name.c_str(), s.dense_ms,
                s.incremental_ms, s.speedup());
  }
  const double probe_speedup = sections.front().speedup();
  std::printf("\nprobe checksum agreement: |dense - delta| = %.3e\n",
              std::fabs(checksum_dense - checksum_delta));
  std::printf("step reports identical across modes: %s\n",
              reports_identical ? "yes" : "NO");
  std::printf("single-coordinate probe speedup: %.1fx\n", probe_speedup);

  sim::set_incremental_enabled(true);  // restore the default

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"incremental\",\n";
  bench::write_meta(out);
  out << "  \"scene\": \"fig5_room_grid14_panel20x20\",\n";
  out << "  \"sections\": [\n";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const auto& s = sections[i];
    out << "    {\"name\": \"" << s.name << "\", \"dense_ms\": " << s.dense_ms
        << ", \"incremental_ms\": " << s.incremental_ms
        << ", \"speedup\": " << s.speedup() << "}"
        << (i + 1 < sections.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"probe_speedup\": " << probe_speedup << ",\n";
  out << "  \"probe_checksum_abs_diff\": "
      << std::fabs(checksum_dense - checksum_delta) << ",\n";
  out << "  \"step_reports_identical\": "
      << (reports_identical ? "true" : "false") << "\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
