// Figure 4 — "Leveraging hardware heterogeneity": a hybrid passive +
// programmable deployment flexibly balances cost (4b) and size (4c) against
// the achieved median SNR in the target room.
//
// Strategies (all serving the bedroom of the two-room apartment at 28 GHz,
// whose only controlled mmWave ingress is a transmissive "surface window"
// embedded in the interior wall):
//   passive-only      : one NxN passive transmissive surface in the window,
//                       a single fabricated configuration optimized for
//                       whole-room coverage (AutoMS-style).
//   programmable-only : one NxN programmable surface in the same window,
//                       dynamically steering per client location (ideal
//                       per-location codebook).
//   hybrid            : an NxN passive window surface relaying the AP's beam
//                       onto an (N/2)x(N/2) programmable reflective surface
//                       inside the bedroom, which re-steers per location —
//                       the paper's Fig 4a architecture.
//
// For each strategy and size the bench reports median SNR, hardware cost,
// and total aperture area, then inverts the sweep into the paper's "cost /
// size needed to reach a target median SNR" curves.
#include <cstdio>
#include <iostream>
#include <map>
#include <optional>

#include "opt/optimizer.hpp"
#include "orch/objectives.hpp"
#include "orch/perf.hpp"
#include "orch/variables.hpp"
#include "sim/channel.hpp"
#include "sim/floorplan.hpp"
#include "sim/heatmap.hpp"
#include "surface/cost.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace surfos;

namespace {

surface::ElementDesign design_for(double frequency_hz, bool programmable) {
  surface::ElementDesign d;
  d.spacing_m = em::wavelength(frequency_hz) / 2.0;
  d.insertion_loss_db = programmable ? 2.0 : 1.0;
  d.phase_bits = 2;
  return d;
}

struct StrategyResult {
  double median_snr_db = -300.0;
  double cost_usd = 0.0;
  double area_m2 = 0.0;
};

struct Study {
  sim::ApartmentScenario scene = sim::make_apartment(10);
  double freq = em::band_center(scene.band);
  surface::CostModel cost_model;
  std::vector<std::size_t> all_rx;

  Study() {
    all_rx.resize(scene.bedroom_grid.size());
    for (std::size_t i = 0; i < all_rx.size(); ++i) all_rx[i] = i;
  }

  surface::SurfacePanel window_panel(std::size_t n, bool programmable) const {
    return surface::SurfacePanel(
        programmable ? "prog" : "passive", scene.window_mount, n, n,
        design_for(freq, programmable), surface::OperationMode::kTransmissive,
        programmable ? surface::Reconfigurability::kProgrammable
                     : surface::Reconfigurability::kPassive,
        surface::ControlGranularity::kElement);
  }

  surface::SurfacePanel bedroom_panel(std::size_t n) const {
    return surface::SurfacePanel(
        "steer", scene.bedroom_mount, n, n, design_for(freq, true),
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kProgrammable,
        surface::ControlGranularity::kElement);
  }

  /// Median SNR with one fixed coverage-optimized config (passive-only).
  StrategyResult passive_only(std::size_t n) const {
    const surface::SurfacePanel panel = window_panel(n, false);
    const sim::SceneChannel channel(
        scene.environment.get(), freq, scene.ap(), {&panel},
        scene.bedroom_grid.points());
    const orch::PanelVariables vars({&panel});
    const orch::CapacityObjective coverage(&channel, &vars, all_rx,
                                           scene.budget.snr(1.0));
    // Initialize focused at the room center, then optimize the fabricated
    // pattern for whole-room coverage.
    const auto x0 = vars.from_configs(std::vector<surface::SurfaceConfig>{
        panel.focus_config(scene.ap_position,
                           scene.bedroom_grid.point(all_rx.size() / 2),
                           freq)});
    opt::GradientDescentOptions options;
    options.max_iterations = 250;
    const auto result = opt::GradientDescent(options).minimize(coverage, x0);
    const auto metrics = orch::coverage_metrics(
        channel, scene.budget, vars.realize(result.x), all_rx);
    return {metrics.median_snr_db, cost_model.panel_cost_usd(panel),
            panel.area_m2()};
  }

  /// Median of per-location SNR with ideal per-location steering
  /// (programmable-only).
  StrategyResult programmable_only(std::size_t n) const {
    const surface::SurfacePanel panel = window_panel(n, true);
    const sim::SceneChannel channel(
        scene.environment.get(), freq, scene.ap(), {&panel},
        scene.bedroom_grid.points());
    std::vector<double> snr;
    snr.reserve(all_rx.size());
    for (const std::size_t j : all_rx) {
      const auto config = panel.focus_config(
          scene.ap_position, scene.bedroom_grid.point(j), freq);
      const auto coeffs =
          channel.coefficients_for(std::vector<surface::SurfaceConfig>{config});
      snr.push_back(
          scene.budget.snr_db(std::norm(channel.evaluate(j, coeffs))));
    }
    return {util::median(snr), cost_model.panel_cost_usd(panel),
            panel.area_m2()};
  }

  /// Passive backhaul (focused onto the bedroom surface) + programmable
  /// steering per location (hybrid).
  StrategyResult hybrid(std::size_t n_passive, std::size_t n_prog) const {
    const surface::SurfacePanel backhaul = window_panel(n_passive, false);
    const surface::SurfacePanel steer = bedroom_panel(n_prog);
    const sim::SceneChannel channel(
        scene.environment.get(), freq, scene.ap(), {&backhaul, &steer},
        scene.bedroom_grid.points());
    const auto backhaul_cfg =
        backhaul.focus_config(scene.ap_position, steer.center(), freq);
    std::vector<double> snr;
    snr.reserve(all_rx.size());
    for (const std::size_t j : all_rx) {
      const auto steer_cfg = steer.focus_config(
          backhaul.center(), scene.bedroom_grid.point(j), freq);
      const auto coeffs = channel.coefficients_for(
          std::vector<surface::SurfaceConfig>{backhaul_cfg, steer_cfg});
      snr.push_back(
          scene.budget.snr_db(std::norm(channel.evaluate(j, coeffs))));
    }
    return {util::median(snr),
            cost_model.panel_cost_usd(backhaul) +
                cost_model.panel_cost_usd(steer),
            backhaul.area_m2() + steer.area_m2()};
  }
};

/// Cheapest (by cost or by area) sweep point reaching a target median SNR.
std::optional<StrategyResult> cheapest_reaching(
    const std::vector<StrategyResult>& sweep, double target_snr_db,
    bool by_cost) {
  std::optional<StrategyResult> best;
  for (const auto& r : sweep) {
    if (r.median_snr_db < target_snr_db) continue;
    const double key = by_cost ? r.cost_usd : r.area_m2;
    const double best_key = best ? (by_cost ? best->cost_usd : best->area_m2)
                                 : 0.0;
    if (!best || key < best_key) best = r;
  }
  return best;
}

std::string cell(const std::optional<StrategyResult>& r, bool cost) {
  if (!r) return "unreachable";
  return cost ? util::format("$%.0f", r->cost_usd)
              : util::format("%.3f m^2", r->area_m2);
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 4: hybrid passive+programmable deployment trade-offs ===\n");
  std::printf(
      "Scene: two-room apartment, AP in the living room, target bedroom\n"
      "reachable only through the doorway (28 GHz).\n\n");

  Study study;

  // Baseline: no surfaces at all.
  {
    const sim::SceneChannel direct(study.scene.environment.get(), study.freq,
                                   study.scene.ap(), {},
                                   study.scene.bedroom_grid.points());
    std::vector<double> snr;
    for (std::size_t j = 0; j < direct.rx_count(); ++j) {
      snr.push_back(study.scene.budget.snr_db(std::norm(direct.direct(j))));
    }
    std::printf("No-surface baseline: median SNR %.1f dB "
                "('basically no coverage in the target room')\n\n",
                util::median(snr));
  }

  // Passive hardware is cheap per element, so its sweep extends to large
  // apertures (the paper: passive surfaces "need a much larger hardware
  // area size"); programmable sweeps are bounded by cost; the hybrid scales
  // its steering panel with the backhaul's focused spot size (~N/2).
  const std::vector<std::size_t> passive_sizes{16, 24, 32, 48, 64, 96, 128};
  const std::vector<std::size_t> programmable_sizes{16, 24, 32, 40, 48};
  const std::vector<std::size_t> hybrid_sizes{24, 32, 40, 48, 56, 64};
  std::vector<StrategyResult> passive_sweep, programmable_sweep, hybrid_sweep;

  util::Table sweep_table({"Strategy", "Elements", "Median SNR (dB)",
                           "Cost ($)", "Area (m^2)"});
  for (const std::size_t n : passive_sizes) {
    const auto p = study.passive_only(n);
    passive_sweep.push_back(p);
    sweep_table.add_row({"passive-only", util::format("%zux%zu", n, n),
                         util::format("%.1f", p.median_snr_db),
                         util::format("%.0f", p.cost_usd),
                         util::format("%.4f", p.area_m2)});
  }
  for (const std::size_t n : programmable_sizes) {
    const auto p = study.programmable_only(n);
    programmable_sweep.push_back(p);
    sweep_table.add_row({"programmable-only", util::format("%zux%zu", n, n),
                         util::format("%.1f", p.median_snr_db),
                         util::format("%.0f", p.cost_usd),
                         util::format("%.4f", p.area_m2)});
  }
  for (const std::size_t n : hybrid_sizes) {
    const std::size_t m = n / 2;
    const auto p = study.hybrid(n, m);
    hybrid_sweep.push_back(p);
    sweep_table.add_row(
        {"hybrid", util::format("%zux%zu + %zux%zu", n, n, m, m),
         util::format("%.1f", p.median_snr_db),
         util::format("%.0f", p.cost_usd), util::format("%.4f", p.area_m2)});
  }
  sweep_table.print(std::cout);

  // Fig 4b / 4c inversion: what does each strategy need to reach a target?
  std::printf("\n(b) Hardware cost to reach a target median SNR\n");
  util::Table cost_table({"Target median SNR", "Passive-only",
                          "Programmable-only", "Hybrid"});
  std::printf("(c) Hardware size to reach a target median SNR\n\n");
  util::Table size_table({"Target median SNR", "Passive-only",
                          "Programmable-only", "Hybrid"});
  for (const double target : {10.0, 15.0, 20.0, 25.0}) {
    const std::string label = util::format("%.0f dB", target);
    cost_table.add_row({label,
                        cell(cheapest_reaching(passive_sweep, target, true), true),
                        cell(cheapest_reaching(programmable_sweep, target, true), true),
                        cell(cheapest_reaching(hybrid_sweep, target, true), true)});
    size_table.add_row({label,
                        cell(cheapest_reaching(passive_sweep, target, false), false),
                        cell(cheapest_reaching(programmable_sweep, target, false), false),
                        cell(cheapest_reaching(hybrid_sweep, target, false), false)});
  }
  std::printf("Cost (Fig 4b):\n");
  cost_table.print(std::cout);
  std::printf("\nSize (Fig 4c):\n");
  size_table.print(std::cout);

  std::printf(
      "\nExpected shape (paper): the hybrid needs only a fraction of the\n"
      "programmable-only cost and of the passive-only size for comparable\n"
      "median SNR, by using the passive panel as a narrow-beam backhaul and\n"
      "the small programmable panel for dynamic steering.\n");

  // --- Fig 4a(ii): RSS heatmaps of the bedroom -------------------------------
  std::printf("\n(a.ii) Bedroom RSS heatmaps, shade ramp ' .:-=+*#%%@' over "
              "[-100, -55] dBm\n");
  {
    const auto print_map = [&](const char* label,
                               const std::vector<double>& rss_dbm) {
      sim::Heatmap map{study.scene.bedroom_grid, rss_dbm};
      std::printf("%s (median %.1f dBm):\n%s\n", label, map.median_value(),
                  sim::render_ascii(map, -100.0, -55.0).c_str());
    };
    // No surface.
    {
      const sim::SceneChannel direct(study.scene.environment.get(), study.freq,
                                     study.scene.ap(), {},
                                     study.scene.bedroom_grid.points());
      std::vector<double> rss;
      for (std::size_t j = 0; j < direct.rx_count(); ++j) {
        rss.push_back(study.scene.budget.rss_dbm(std::norm(direct.direct(j))));
      }
      print_map("no surface", rss);
    }
    // Hybrid 48x48 + 24x24, per-location steering (the paper's Fig 4a).
    {
      const surface::SurfacePanel backhaul = study.window_panel(48, false);
      const surface::SurfacePanel steer = study.bedroom_panel(24);
      const sim::SceneChannel channel(study.scene.environment.get(),
                                      study.freq, study.scene.ap(),
                                      {&backhaul, &steer},
                                      study.scene.bedroom_grid.points());
      const auto backhaul_cfg = backhaul.focus_config(
          study.scene.ap_position, steer.center(), study.freq);
      std::vector<double> rss;
      for (const std::size_t j : study.all_rx) {
        const auto steer_cfg = steer.focus_config(
            backhaul.center(), study.scene.bedroom_grid.point(j), study.freq);
        const auto coeffs = channel.coefficients_for(
            std::vector<surface::SurfaceConfig>{backhaul_cfg, steer_cfg});
        rss.push_back(
            study.scene.budget.rss_dbm(std::norm(channel.evaluate(j, coeffs))));
      }
      print_map("hybrid 48x48 passive + 24x24 programmable (dynamic steering)",
                rss);
    }
  }
  return 0;
}
