// Ablation G — beam squint: a phase configuration computed at the carrier
// frequency decays toward the band edges, and the decay grows with aperture
// size and bandwidth. This is the wideband cost hiding behind every
// narrowband optimization in this repository (and in most RIS prototypes),
// and the physical argument for frequency-aware hardware (Table 1's
// Scrolls) and per-band scheduling in the orchestrator.
#include <cstdio>
#include <iostream>

#include "sim/wideband.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace surfos;

int main() {
  std::printf("=== Ablation: beam squint over configuration bandwidth ===\n");
  std::printf(
      "A surface focused at the 28 GHz carrier serves a client; per-\n"
      "subcarrier SNR is measured across the channel bandwidth.\n\n");

  sim::Environment env{em::MaterialDb::standard()};
  // Block the ground-level direct path so the surface dominates.
  env.add_vertical_wall(0.0, -3.0, 0.0, 3.0, 0.0, 1.0, em::kMatMetal);
  env.finalize();
  const double center = em::band_center(em::Band::k28GHz);
  const geom::Vec3 tx{-2.5, -1.0, 0.0};
  const geom::Vec3 rx{2.5, -1.2, 0.0};
  const em::LinkBudget budget{10.0, 400e6, 7.0};

  util::Table table({"Panel", "Bandwidth", "SNR center (dB)",
                     "SNR band edge (dB)", "Squint loss (dB)",
                     "Wideband capacity (Mb/s)"});
  for (const std::size_t n : {8UL, 16UL, 32UL, 64UL}) {
    surface::ElementDesign d;
    d.spacing_m = em::wavelength(center) / 2.0;
    d.insertion_loss_db = 0.0;
    const surface::SurfacePanel panel(
        "p", geom::Frame({0, 0, 2.5}, {0, 0, -1}, {1, 0, 0}), n, n, d,
        surface::OperationMode::kReflective,
        surface::Reconfigurability::kProgrammable,
        surface::ControlGranularity::kElement);
    const auto focus = panel.focus_config(tx, rx, center);
    const std::vector<surface::SurfaceConfig> configs{focus};
    for (const double bw : {400e6, 2000e6}) {
      const sim::WidebandChannel wideband(&env, center, bw, 17, {tx, nullptr},
                                          {&panel}, {rx});
      const auto snr = wideband.snr_per_subcarrier(0, configs, budget);
      const double snr_center = snr[snr.size() / 2];
      const double snr_edge = std::min(snr.front(), snr.back());
      table.add_row(
          {util::format("%zux%zu", n, n),
           util::format("%.1f GHz", bw / 1e9),
           util::format("%.1f", snr_center), util::format("%.1f", snr_edge),
           util::format("%.1f", snr_center - snr_edge),
           util::format("%.0f",
                        wideband.wideband_capacity(0, configs, budget) / 1e6)});
    }
  }
  table.print(std::cout);

  std::printf(
      "\nShape: squint loss grows with aperture (longer path-length spread\n"
      "across the panel) and with bandwidth (phase error ~ 2*pi*df*dd/c).\n"
      "Large surfaces on wide channels need frequency-aware control — the\n"
      "orchestrator's per-band scheduling and Scrolls-class hardware exist\n"
      "for exactly this reason.\n");
  return 0;
}
