#!/usr/bin/env bash
# Regenerates every tracked BENCH_*.json at the repo root from a fresh
# Release build, so the committed numbers always match the committed code
# (each JSON is stamped with the library version and git SHA it came from).
#
#   $ bench/run_all.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-release}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$(nproc)" --target \
  bench_parallel_scaling bench_telemetry_overhead bench_trace_overhead \
  bench_incremental bench_fleet bench_precompute bench_daemon

# Each bench writes its BENCH_*.json into the current directory (repo root).
"$BUILD/bench/bench_parallel_scaling"
"$BUILD/bench/bench_telemetry_overhead"
"$BUILD/bench/bench_trace_overhead"
"$BUILD/bench/bench_incremental"
"$BUILD/bench/bench_fleet"
# BENCH_precompute.json: {equivalence: {shared_equals_dense, delta_equals_fresh},
#  cold_start: {sites, dense_ms, shared_ms, speedup, hits, misses,
#  resident_bytes}, endpoint_churn: {steps, dense_rebuild_ms, delta_ms,
#  speedup}} — shared store vs SURFOS_PRECOMPUTE=0, bitwise-verified.
"$BUILD/bench/bench_precompute"
"$BUILD/bench/bench_daemon"

echo
echo "regenerated:"
ls -1 BENCH_*.json
