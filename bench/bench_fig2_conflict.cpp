// Figure 2 — "Lacking support for multiple services concurrently. A surface
// configuration to maximize coverage can disrupt localization."
//
// Regenerates the paper's two heatmaps over the 3.5 m target room under the
// coverage-optimized configuration:
//   (a) coverage heatmap (RSS, dBm)  — looks great;
//   (b) localization error heatmap (m) — badly degraded versus a
//       sensing-friendly configuration of the same surface.
#include <cstdio>
#include <iostream>

#include "room_study.hpp"
#include "sense/aoa.hpp"
#include "sense/localize.hpp"
#include "sim/heatmap.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace surfos;

namespace {

sim::Heatmap error_heatmap(const bench::RoomStudy& study,
                           const std::vector<surface::SurfaceConfig>& configs) {
  const auto metrics = study.sensing_metrics_of(configs);
  return sim::map_over_grid(study.scene.room_grid, [&](std::size_t i) {
    return metrics.errors_m[i];
  });
}

void print_maps(const bench::RoomStudy& study,
                const std::vector<surface::SurfaceConfig>& configs,
                const char* label) {
  const sim::Heatmap rss = sim::rss_heatmap(*study.channel,
                                            study.scene.room_grid,
                                            study.scene.budget, configs);
  const sim::Heatmap err = error_heatmap(study, configs);
  std::printf("--- %s ---\n", label);
  std::printf("(a) Coverage heatmap, RSS dBm (median %.1f, min %.1f, max %.1f)\n",
              rss.median_value(), rss.min_value(), rss.max_value());
  std::printf("%s", sim::render_ascii(rss, -95.0, -55.0).c_str());
  std::printf("(b) Localization error heatmap, m (median %.2f, max %.2f)\n",
              err.median_value(), err.max_value());
  std::printf("%s\n", sim::render_ascii(err, 0.0, 2.0).c_str());
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 2: a coverage-optimal configuration disrupts localization "
      "===\n");
  std::printf(
      "Scene: 3.5 m target room, AP behind the south wall, one 20x20\n"
      "phase surface on the east wall (28 GHz). Shade ramp ' .:-=+*#%%@'.\n\n");

  bench::RoomStudy study(/*grid_n=*/14, /*panel_n=*/20);

  const auto coverage_cfg = study.optimize_coverage_only();
  const auto sensing_cfg = study.optimize_localization_only();

  print_maps(study, coverage_cfg, "Surface configured for coverage only");
  print_maps(study, sensing_cfg, "Same surface configured for localization");

  const auto cov_rss = study.coverage_metrics_of(coverage_cfg);
  const auto cov_err = study.sensing_metrics_of(coverage_cfg);
  const auto sen_rss = study.coverage_metrics_of(sensing_cfg);
  const auto sen_err = study.sensing_metrics_of(sensing_cfg);

  util::Table summary({"Configuration", "Median SNR (dB)",
                       "Median localization error (m)"});
  summary.add_row({"coverage-optimized",
                   util::format("%.1f", cov_rss.median_snr_db),
                   util::format("%.2f", cov_err.median_error_m)});
  summary.add_row({"localization-optimized",
                   util::format("%.1f", sen_rss.median_snr_db),
                   util::format("%.2f", sen_err.median_error_m)});
  summary.print(std::cout);

  std::printf(
      "\nPaper's claim reproduced when the coverage-optimized row has the\n"
      "higher SNR but a much larger localization error than the\n"
      "localization-optimized row (conflict: %s).\n",
      (cov_err.median_error_m > 2.0 * sen_err.median_error_m &&
       cov_rss.median_snr_db > sen_rss.median_snr_db)
          ? "CONFIRMED"
          : "NOT REPRODUCED");
  return 0;
}
