// Ablation D — environment dynamics and runtime adaptation (paper Section 5:
// "events such as furniture movement and people walking can require dynamic
// reconfiguration of surface states", and Section 3's endpoint mobility).
//
// A client walks across the 3.5 m room while a second person wanders
// through it. Two strategies serve the client's link:
//   static   : configured once for the client's starting position — what a
//              passive surface is fabricated to, and equally what a
//              programmable surface under a compile-time library does;
//   adaptive : SurfOS re-steers on every environment change.
// The gap between the two is the runtime argument for an OS over an SDK.
#include <cstdio>
#include <iostream>

#include "sim/channel.hpp"
#include "sim/dynamics.hpp"
#include "sim/floorplan.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace surfos;

namespace {

/// Static geometry of the coverage room (mirrors sim::make_coverage_room).
void build_room(sim::Environment& env) {
  constexpr double kH = 3.0;
  env.add_vertical_wall(0.0, 3.5, 3.5, 3.5, 0.0, kH, em::kMatConcrete);
  env.add_vertical_wall(0.0, -1.5, 0.0, 3.5, 0.0, kH, em::kMatConcrete);
  env.add_vertical_wall(3.5, -1.5, 3.5, 3.5, 0.0, kH, em::kMatConcrete);
  env.add_vertical_wall(0.0, -1.5, 3.5, -1.5, 0.0, kH, em::kMatConcrete);
  env.add_vertical_wall(0.0, 0.0, 2.6, 0.0, 0.0, kH, em::kMatConcrete);
  env.add_vertical_wall(3.4, 0.0, 3.5, 0.0, 0.0, kH, em::kMatConcrete);
  env.add_vertical_wall(2.6, 0.0, 3.4, 0.0, 2.1, kH, em::kMatConcrete);
  env.add_horizontal_slab(0.0, 3.5, -1.5, 3.5, 0.0, em::kMatFloor);
  env.add_horizontal_slab(0.0, 3.5, -1.5, 3.5, kH, em::kMatConcrete);
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: runtime adaptation under environment dynamics ===\n");
  std::printf(
      "A client walks (0.5 m/s) across the room while a bystander wanders;\n"
      "28 GHz, 20x20 surface on the east wall.\n\n");

  const sim::CoverageRoomScenario base = sim::make_coverage_room(4);
  const double freq = em::band_center(base.band);

  em::MaterialDb materials = em::MaterialDb::standard();
  const int body = sim::add_body_material(materials);
  sim::DynamicEnvironment world(materials, build_room);
  sim::MovingBlocker bystander;
  bystander.id = "bystander";
  bystander.waypoints = {{2.8, 0.6, 0}, {2.6, 2.8, 0}};
  bystander.speed_mps = 0.8;
  bystander.material_id = body;
  world.add_blocker(bystander);

  surface::ElementDesign design;
  design.spacing_m = em::wavelength(freq) / 2.0;
  design.insertion_loss_db = 1.0;
  const surface::SurfacePanel panel(
      "east", base.surface_pose, 20, 20, design,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);

  // Client trajectory: along the room's west side, south to north.
  const auto client_at = [](double t_s) {
    return geom::Vec3{0.8 + 0.05 * t_s, 0.6 + 0.25 * t_s, 1.0};
  };

  // Static strategy: configured once for the client's t=0 position.
  const surface::SurfaceConfig fabricated =
      panel.focus_config(base.ap_position, client_at(0.0), freq);

  util::Table table({"t (s)", "client", "static SNR", "adaptive SNR"});
  std::vector<double> passive_series, adaptive_series;
  for (int step = 0; step <= 8; ++step) {
    const double t_s = static_cast<double>(step);
    world.advance_to(static_cast<hal::Micros>(t_s * hal::kMicrosPerSecond));
    const geom::Vec3 client = client_at(t_s);
    const sim::SceneChannel channel(&world.environment(), freq, base.ap(),
                                    {&panel}, {client});
    const auto snr_of = [&](const surface::SurfaceConfig& config) {
      const auto coeffs = channel.coefficients_for(
          std::vector<surface::SurfaceConfig>{config});
      return base.budget.snr_db(std::norm(channel.evaluate(0, coeffs)));
    };
    // Adaptive: SurfOS re-focuses on every change (the re-optimization a
    // step() cycle performs; ideal steering is the converged result here).
    const auto adaptive =
        panel.focus_config(base.ap_position, client, freq);
    const double snr_passive = snr_of(fabricated);
    const double snr_adaptive = snr_of(adaptive);
    passive_series.push_back(snr_passive);
    adaptive_series.push_back(snr_adaptive);
    table.add_row({util::format("%.0f", t_s),
                   util::format("(%.1f, %.1f)", client.x, client.y),
                   util::format("%.1f", snr_passive),
                   util::format("%.1f", snr_adaptive)});
  }
  table.print(std::cout);

  std::printf("\nMeans over the walk: static %.1f dB, adaptive %.1f dB.\n",
              util::mean(passive_series), util::mean(adaptive_series));
  std::printf(
      "Environment rebuilds: %zu (bystander movement). Adaptive tracking\n"
      "holds the link as the client leaves the fabricated beam — the\n"
      "runtime capability that separates an OS from a compile-time library\n"
      "and justifies programmable hardware despite its cost (Fig 4).\n",
      world.rebuild_count());
  return 0;
}
