// Ablation A — optimizer choice. The paper's prototype "uses gradient
// descent, while other algorithms can be easily supported"; this bench runs
// every supported algorithm on the same coverage objective (room scene,
// same focus initialization) and reports achieved loss / median SNR /
// objective evaluations / wall time.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "room_study.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace surfos;

int main() {
  std::printf("=== Ablation: optimization algorithms on the coverage task ===\n");
  std::printf("Scene: 3.5 m room, 16x16 element-wise surface, 12x12 probe "
              "grid, identical focus initialization.\n\n");

  bench::RoomStudy study(/*grid_n=*/12, /*panel_n=*/16);
  const orch::CapacityObjective coverage(study.channel.get(),
                                         study.variables.get(), study.all_rx,
                                         study.rho());
  const auto x0 = study.init();

  std::vector<std::unique_ptr<opt::Optimizer>> optimizers;
  optimizers.push_back(std::make_unique<opt::GradientDescent>());
  optimizers.push_back(std::make_unique<opt::Adam>());
  optimizers.push_back(std::make_unique<opt::Spsa>());
  opt::RandomSearchOptions rs;
  rs.max_evaluations = 4000;
  optimizers.push_back(std::make_unique<opt::RandomSearch>(rs));
  opt::AnnealingOptions an;
  an.max_evaluations = 4000;
  optimizers.push_back(std::make_unique<opt::SimulatedAnnealing>(an));
  opt::CmaEsOptions cm;
  cm.max_evaluations = 4000;
  optimizers.push_back(std::make_unique<opt::CmaEs>(cm));

  util::Table table({"Optimizer", "Final loss (-bits/s/Hz)", "Median SNR (dB)",
                     "Evaluations", "Time (ms)"});
  const double init_loss = coverage.value(x0);
  for (const auto& optimizer : optimizers) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = optimizer->minimize(coverage, x0);
    const auto t1 = std::chrono::steady_clock::now();
    const auto configs = study.variables->realize(result.x);
    const auto metrics = study.coverage_metrics_of(configs);
    table.add_row(
        {optimizer->name(), util::format("%.3f", result.value),
         util::format("%.1f", metrics.median_snr_db),
         util::format("%zu", result.evaluations),
         util::format("%.0f",
                      std::chrono::duration<double, std::milli>(t1 - t0)
                          .count())});
  }
  table.print(std::cout);
  std::printf("\nInitial (focus-only) loss: %.3f. Gradient-based methods\n"
              "exploit the analytic channel gradients; derivative-free\n"
              "methods are the fallback when only endpoint RSS feedback\n"
              "exists (paper 3.1 data-plane mode).\n",
              init_loss);
  return 0;
}
