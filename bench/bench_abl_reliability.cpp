// Ablation F — control-plane reliability. SurfOS may drive surfaces from
// the edge or cloud over lossy links (paper Section 1); this bench sweeps
// datagram loss and compares the raw fire-and-forget driver against the
// ARQ-reliable driver: configuration delivery rate and the time until the
// hardware actually holds the new configuration.
#include <cstdio>
#include <iostream>

#include "hal/reliable.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace surfos;

namespace {

surface::SurfacePanel make_panel() {
  surface::ElementDesign d;
  d.spacing_m = 0.005;
  return surface::SurfacePanel("panel", geom::Frame({0, 0, 0}, {0, 0, 1}), 16,
                               16, d, surface::OperationMode::kReflective,
                               surface::Reconfigurability::kProgrammable,
                               surface::ControlGranularity::kElement);
}

struct Trial {
  double delivery_rate = 0.0;   ///< Fraction of writes that landed.
  double mean_latency_us = 0.0; ///< Mean time from write to applied.
  std::size_t retransmissions = 0;
};

constexpr int kWrites = 50;
constexpr hal::Micros kLinkLatency = 500;

/// Issues kWrites distinct configs (one per poll round) and measures how
/// many land and how fast, for either driver class.
template <typename MakeDriver>
Trial run(double loss, MakeDriver make_driver) {
  hal::SimClock clock;
  const auto panel = make_panel();
  auto driver = make_driver(clock, panel, loss);
  Trial trial;
  std::size_t landed = 0;
  double latency_sum = 0.0;
  for (int w = 0; w < kWrites; ++w) {
    surface::SurfaceConfig config(panel.element_count());
    config.set_phase(0, 0.01 * (w + 1));  // distinguishable marker
    const hal::Micros issued = clock.now();
    driver->write_config(0, config);
    // Give each write up to 20 ms of polling before moving on.
    bool applied = false;
    for (int tick = 0; tick < 40 && !applied; ++tick) {
      clock.advance(500);
      driver->poll();
      applied = std::fabs(driver->active_config().phase(0) -
                          config.phase(0)) < 1e-3;
    }
    if (applied) {
      ++landed;
      latency_sum += static_cast<double>(clock.now() - issued);
    }
  }
  trial.delivery_rate = static_cast<double>(landed) / kWrites;
  trial.mean_latency_us = landed > 0 ? latency_sum / landed : 0.0;
  if (const auto* reliable =
          dynamic_cast<const hal::ReliableSurfaceDriver*>(driver.get())) {
    trial.retransmissions = reliable->link().retransmission_count();
  }
  return trial;
}

}  // namespace

int main() {
  std::printf("=== Ablation: raw vs ARQ-reliable control path ===\n");
  std::printf(
      "%d configuration writes over a %llu us link; sweep datagram loss.\n\n",
      kWrites, static_cast<unsigned long long>(kLinkLatency));

  util::Table table({"Loss", "raw delivered", "raw latency (us)",
                     "ARQ delivered", "ARQ latency (us)", "ARQ retransmits"});
  for (const double loss : {0.0, 0.1, 0.3, 0.5, 0.7}) {
    const Trial raw = run(loss, [](hal::SimClock& clock,
                                   const surface::SurfacePanel& panel,
                                   double p) {
      hal::HardwareSpec spec;
      spec.control_delay_us = kLinkLatency;
      spec.config_slots = 1;
      hal::LinkOptions options;
      options.loss_probability = p;
      options.seed = 17;
      return std::make_unique<hal::ProgrammableSurfaceDriver>(
          "raw", &panel, spec, &clock, options);
    });
    const Trial arq = run(loss, [](hal::SimClock& clock,
                                   const surface::SurfacePanel& panel,
                                   double p) {
      hal::HardwareSpec spec;
      spec.control_delay_us = kLinkLatency;
      spec.config_slots = 1;
      hal::ReliableOptions options;
      options.forward.loss_probability = p;
      options.forward.seed = 17;
      options.reverse.loss_probability = p / 2.0;
      options.rto_us = 1500;
      return std::make_unique<hal::ReliableSurfaceDriver>("arq", &panel, spec,
                                                          &clock, options);
    });
    table.add_row({util::format("%.0f%%", loss * 100.0),
                   util::format("%.0f%%", raw.delivery_rate * 100.0),
                   util::format("%.0f", raw.mean_latency_us),
                   util::format("%.0f%%", arq.delivery_rate * 100.0),
                   util::format("%.0f", arq.mean_latency_us),
                   util::format("%zu", arq.retransmissions)});
  }
  table.print(std::cout);
  std::printf(
      "\nShape: the raw driver silently loses configurations as loss grows\n"
      "(the hardware keeps actuating stale state); ARQ holds ~100%% delivery\n"
      "and pays for it in retransmission latency — the classic reliability/\n"
      "latency trade the control plane must budget for (paper 3.1's control\n"
      "delay axis).\n");
  return 0;
}
