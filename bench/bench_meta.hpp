// Shared provenance stamp for every BENCH_*.json: which library version and
// git commit produced the numbers. SURFOS_GIT_SHA is injected by
// bench/CMakeLists.txt (git rev-parse at configure time); builds outside a
// git checkout stamp "unknown".
#pragma once

#include <ostream>

#include "core/version.hpp"

#ifndef SURFOS_GIT_SHA
#define SURFOS_GIT_SHA "unknown"
#endif

namespace surfos::bench {

/// Writes the shared `version`/`git_sha` JSON fields (with trailing comma —
/// callers continue the object).
inline void write_meta(std::ostream& os) {
  os << "  \"version\": \"" << kVersionString << "\",\n";
  os << "  \"git_sha\": \"" << SURFOS_GIT_SHA << "\",\n";
}

}  // namespace surfos::bench
