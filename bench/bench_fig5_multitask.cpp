// Figure 5 — "Multitasking for joint localization and coverage. Joint
// optimization ensures high performance for both tasks with a single surface
// configuration."
//
// Regenerates the paper's two CDFs over locations in the target room for
// three configurations of the same (passive, shared) surface:
//   - Coverage Opt      : minimize  -sum capacity
//   - Localization Opt  : minimize  cross-entropy(est. AoA, true AoA)
//   - Multi-tasking     : minimize  the sum of both losses
#include <cstdio>
#include <iostream>

#include "room_study.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace surfos;

namespace {

void print_cdf(const char* title, const char* unit,
               const std::vector<double>& thresholds,
               const std::vector<double>& multi,
               const std::vector<double>& loc_only,
               const std::vector<double>& cov_only) {
  std::printf("\n%s (CDF over locations)\n", title);
  util::Table table({std::string(unit), "Multi-tasking", "Localization Opt",
                     "Coverage Opt"});
  const auto multi_cdf = util::cdf_at(multi, thresholds);
  const auto loc_cdf = util::cdf_at(loc_only, thresholds);
  const auto cov_cdf = util::cdf_at(cov_only, thresholds);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    table.add_row({util::format("%.1f", thresholds[i]),
                   util::format("%.2f", multi_cdf[i]),
                   util::format("%.2f", loc_cdf[i]),
                   util::format("%.2f", cov_cdf[i])});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 5: joint multitasking with a single shared configuration "
      "===\n");
  std::printf(
      "Scene: 3.5 m room, one passive 20x20 phase surface, 28 GHz; losses as\n"
      "in the paper (coverage: negative sum of capacity; localization:\n"
      "cross-entropy between estimated and true AoA).\n");

  bench::RoomStudy study(/*grid_n=*/14, /*panel_n=*/20);

  const auto cfg_multi = study.optimize_joint();
  const auto cfg_loc = study.optimize_localization_only();
  const auto cfg_cov = study.optimize_coverage_only();

  const auto snr_multi = study.coverage_metrics_of(cfg_multi).snr_db;
  const auto snr_loc = study.coverage_metrics_of(cfg_loc).snr_db;
  const auto snr_cov = study.coverage_metrics_of(cfg_cov).snr_db;
  const auto err_multi = study.sensing_metrics_of(cfg_multi).errors_m;
  const auto err_loc = study.sensing_metrics_of(cfg_loc).errors_m;
  const auto err_cov = study.sensing_metrics_of(cfg_cov).errors_m;

  print_cdf("Location error (m)", "error <=",
            {0.0, 0.2, 0.5, 1.0, 1.5, 2.0}, err_multi, err_loc, err_cov);
  print_cdf("SNR (dB)", "snr <=", {0, 5, 10, 15, 20, 25, 30, 35}, snr_multi,
            snr_loc, snr_cov);

  std::printf("\nMedians:\n");
  util::Table medians({"Configuration", "Median SNR (dB)",
                       "Median location error (m)"});
  medians.add_row({"Multi-tasking", util::format("%.1f", util::median(snr_multi)),
                   util::format("%.2f", util::median(err_multi))});
  medians.add_row({"Localization Opt",
                   util::format("%.1f", util::median(snr_loc)),
                   util::format("%.2f", util::median(err_loc))});
  medians.add_row({"Coverage Opt", util::format("%.1f", util::median(snr_cov)),
                   util::format("%.2f", util::median(err_cov))});
  medians.print(std::cout);

  const bool sensing_preserved =
      util::median(err_multi) < 0.5 * util::median(err_cov);
  const bool coverage_preserved =
      util::median(snr_multi) > util::median(snr_loc) &&
      util::median(snr_multi) > util::median(snr_cov) - 5.0;
  std::printf(
      "\nPaper's claim — 'a single surface configuration can effectively\n"
      "multitask with little performance loss' — %s\n"
      "(multitask keeps localization near the localization-only curve and\n"
      "SNR within a few dB of the coverage-only curve).\n",
      sensing_preserved && coverage_preserved ? "REPRODUCED"
                                              : "NOT REPRODUCED");
  return 0;
}
