// Fleet-scale sustained-load harness: 100+ sites under one Fleet, driven by
// an open-loop Poisson arrival stream followed by a bursty trace replay —
// 10,000+ application requests across connectivity / powering / sensing /
// security mixes, routed through each site's ServiceBroker admission queue
// (SURFOS_ADMIT_QUEUE bounds it; overload sheds lowest-priority demands).
//
// Every control epoch: deliver due arrivals (submit_demand), drain each
// site's queue under the weighted-fair discipline (pump_admissions), then
// one Fleet::step_all(). Admit-to-config-applied latency is joined per
// request via trace ids: the session's intent trace id first appears in a
// site's StepTrace.task_trace_ids on the step whose epoch flush applied the
// task's configurations.
//
// A second section replays an identical rewrite workload through both HAL
// write modes (kBatched vs kPerElement) and reports the per-epoch config-
// transaction ratio.
//
// All wall-clock numbers come from one core stepping every site serially or
// in shards on the process-wide pool — they measure control-plane software
// cost, not radio hardware.
//
// Emits BENCH_fleet.json:  ./bench_fleet [output.json] [--no-share]
// --no-share disables the content-addressed precompute store (the ablation
// row: every site precomputes its own dense channel artifacts).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_meta.hpp"
#include "broker/admission.hpp"
#include "broker/broker.hpp"
#include "core/fleet.hpp"
#include "core/surfos.hpp"
#include "hal/batch.hpp"
#include "sim/floorplan.hpp"
#include "sim/precompute_store.hpp"
#include "surface/catalog.hpp"
#include "util/rng.hpp"

using namespace surfos;

namespace {

constexpr std::size_t kSites = 100;
constexpr std::size_t kPoissonRequests = 5000;
constexpr std::size_t kTraceRequests = 5200;
constexpr std::size_t kArrivalEpochs = 40;   // per phase
constexpr std::size_t kDrainEpochs = 60;     // after the last arrival
constexpr std::size_t kPumpPerEpoch = 1;     // admissions per site per epoch
constexpr std::size_t kQueueCapacity = 32;   // via SURFOS_ADMIT_QUEUE

/// The four demand mixes the harness interleaves (class, weight out of 10).
constexpr struct {
  broker::AppClass app_class;
  int weight;
} kMix[] = {
    {broker::AppClass::kVideoStreaming, 4},   // connectivity
    {broker::AppClass::kWirelessCharging, 2},  // powering
    {broker::AppClass::kSmartHome, 2},         // sensing
    {broker::AppClass::kSensitiveData, 2},     // security
};

struct Arrival {
  double epoch = 0.0;  ///< Fractional control epoch of arrival.
  std::size_t site = 0;
  broker::AppClass app_class = broker::AppClass::kVideoStreaming;
};

broker::AppClass pick_class(util::Rng& rng) {
  int total = 0;
  for (const auto& m : kMix) total += m.weight;
  auto draw = static_cast<int>(rng.below(static_cast<std::uint64_t>(total)));
  for (const auto& m : kMix) {
    draw -= m.weight;
    if (draw < 0) return m.app_class;
  }
  return kMix[0].app_class;
}

/// Open-loop Poisson process: exponential interarrivals at a fixed rate,
/// independent of service completions (arrivals keep coming under overload).
std::vector<Arrival> poisson_arrivals(std::size_t count, double epochs,
                                      util::Rng& rng) {
  std::vector<Arrival> arrivals;
  arrivals.reserve(count);
  const double rate = static_cast<double>(count) / epochs;  // per epoch
  double t = 0.0;
  while (arrivals.size() < count) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    t += -std::log(u) / rate;  // wraps past `epochs` under unlucky draws
    arrivals.push_back({t, rng.below(kSites), pick_class(rng)});
  }
  return arrivals;
}

/// Trace-driven replay: a synthetic diurnal burst trace (piecewise arrival
/// rates, deterministic timestamps within each segment) — the bursts push
/// sites past the pump rate so the admission queue's shedding engages.
std::vector<Arrival> trace_arrivals(std::size_t count, double epochs,
                                    util::Rng& rng) {
  // Relative load per trace segment: quiet, ramp, burst, lull, spike, tail.
  constexpr double kSegments[] = {0.4, 0.8, 2.2, 0.5, 3.0, 0.6};
  constexpr std::size_t kSegmentCount = sizeof(kSegments) / sizeof(double);
  double total_weight = 0.0;
  for (const double w : kSegments) total_weight += w;

  std::vector<Arrival> arrivals;
  arrivals.reserve(count);
  const double segment_epochs = epochs / kSegmentCount;
  for (std::size_t s = 0; s < kSegmentCount; ++s) {
    const auto n = static_cast<std::size_t>(
        std::round(static_cast<double>(count) * kSegments[s] / total_weight));
    for (std::size_t i = 0; i < n && arrivals.size() < count; ++i) {
      const double t = segment_epochs *
                       (static_cast<double>(s) +
                        static_cast<double>(i) / std::max<std::size_t>(n, 1));
      arrivals.push_back({t, rng.below(kSites), pick_class(rng)});
    }
  }
  // Rounding may leave a short tail; replay it at the trace's end.
  while (arrivals.size() < count) {
    arrivals.push_back({epochs, rng.below(kSites), pick_class(rng)});
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) { return a.epoch < b.epoch; });
  return arrivals;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Builds a fleet of `sites` coverage-room sites, one client endpoint each.
/// The scenario vector must outlive the fleet.
std::unique_ptr<Fleet> build_fleet(
    std::size_t sites, std::vector<sim::CoverageRoomScenario>& scenarios,
    std::size_t panel_n, orch::OrchestratorOptions options) {
  const surface::Catalog catalog = surface::Catalog::standard();
  auto fleet = std::make_unique<Fleet>();
  scenarios.clear();
  scenarios.reserve(sites);
  // Cheap sensing apertures: the default 121-bin scan dominates runtime at
  // fleet scale without changing the control-plane story this bench tells.
  options.sensing_bins = 21;
  for (std::size_t i = 0; i < sites; ++i) {
    scenarios.push_back(sim::make_coverage_room(/*grid_n=*/3));
    auto& scenario = scenarios.back();
    auto os = std::make_unique<SurfOS>(scenario.environment.get(),
                                       scenario.ap(), scenario.band,
                                       scenario.budget, options);
    os->install_programmable(*catalog.find("NR-Surface"),
                             scenario.surface_pose, panel_n, panel_n, "wall");
    os->register_endpoint("phone", hal::EndpointKind::kClient,
                          {1.0 + 0.01 * static_cast<double>(i % 50), 2.0, 1.0});
    fleet->add_site("site" + std::to_string(i), std::move(os));
  }
  return fleet;
}

struct LoadResult {
  std::size_t submitted = 0;
  std::size_t admitted = 0;      ///< Sessions actually started.
  std::size_t applied = 0;       ///< Sessions whose configs were written.
  std::size_t epochs = 0;
  std::size_t config_transactions = 0;
  double wall_s = 0.0;
  std::vector<double> latency_ms;  ///< admit-to-config-applied, per request
  std::map<orch::Priority, std::size_t> admitted_by_class;
  std::map<orch::Priority, std::size_t> shed_by_class;
};

LoadResult run_sustained_load(Fleet& fleet,
                              const std::vector<Arrival>& arrivals) {
  LoadResult result;
  std::vector<std::string> site_ids = fleet.site_ids();

  // Per site: app ids submitted but not yet seen running (queued), and the
  // trace-id join map for sessions awaiting their config-applied step.
  std::vector<std::vector<std::string>> queued(site_ids.size());
  std::vector<std::unordered_map<telemetry::TraceId, std::size_t>> awaiting(
      site_ids.size());
  std::unordered_map<std::size_t, std::chrono::steady_clock::time_point>
      submit_time;

  const auto start = std::chrono::steady_clock::now();
  std::size_t next_arrival = 0;
  const std::size_t max_epochs =
      static_cast<std::size_t>(arrivals.back().epoch) + kDrainEpochs + 2;

  for (std::size_t epoch = 0; epoch < max_epochs; ++epoch) {
    // 1. Deliver every arrival due this epoch to its site's broker.
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].epoch < static_cast<double>(epoch + 1)) {
      const Arrival& arrival = arrivals[next_arrival];
      const std::string app_id = "req-" + std::to_string(next_arrival);
      SurfOS& site = fleet.site(site_ids[arrival.site]);
      ++result.submitted;
      submit_time[next_arrival] = std::chrono::steady_clock::now();
      if (site.broker()
              .submit_demand(app_id,
                             broker::demand_profile(arrival.app_class, "phone"))
              .ok()) {
        queued[arrival.site].push_back(app_id);
      }
      ++next_arrival;
    }

    // 2. Weighted-fair admission drain, bounded per epoch (the control
    // plane's admission budget); then map fresh sessions to trace ids.
    for (std::size_t s = 0; s < site_ids.size(); ++s) {
      SurfOS& site = fleet.site(site_ids[s]);
      result.admitted += site.broker().pump_admissions(kPumpPerEpoch);
      auto& pending = queued[s];
      for (auto it = pending.begin(); it != pending.end();) {
        const auto session = site.broker().sessions().find(*it);
        if (session != site.broker().sessions().end() &&
            session->second.trace_id != 0) {
          const std::size_t req =
              static_cast<std::size_t>(std::stoul(it->substr(4)));
          awaiting[s].emplace(session->second.trace_id, req);
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
    }

    // 3. One fleet control epoch; join config-applied sessions by the first
    // appearance of their trace id in the site's task_trace_ids.
    const FleetReport report = fleet.step_all();
    ++result.epochs;
    result.config_transactions += report.trace.config_writes;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < report.sites.size(); ++s) {
      if (awaiting[s].empty()) continue;
      SurfOS& site = fleet.site(report.sites[s].site_id);
      for (const telemetry::TraceId id :
           report.sites[s].step.trace.task_trace_ids) {
        const auto it = awaiting[s].find(id);
        if (it == awaiting[s].end()) continue;
        result.latency_ms.push_back(std::chrono::duration<double, std::milli>(
                                        now - submit_time[it->second])
                                        .count());
        ++result.applied;
        // Served: idle the app's tasks so fleet-scale active work stays
        // bounded by the admission rate, not the request count.
        (void)site.broker().stop_app("req-" + std::to_string(it->second));
        awaiting[s].erase(it);
      }
    }

    // Stop early once everything delivered and every admitted session has
    // seen its configs applied.
    if (next_arrival == arrivals.size()) {
      bool drained = true;
      for (std::size_t s = 0; s < site_ids.size() && drained; ++s) {
        drained = awaiting[s].empty() &&
                  fleet.site(site_ids[s]).broker().admission().empty();
      }
      if (drained) break;
    }
  }
  result.wall_s = ms_since(start) / 1000.0;

  for (const std::string& id : site_ids) {
    const auto& stats = fleet.site(id).broker().admission().stats();
    for (const auto& [priority, n] : stats.admitted_by_class) {
      result.admitted_by_class[priority] += n;
    }
    for (const auto& [priority, n] : stats.shed_by_class) {
      result.shed_by_class[priority] += n;
    }
  }
  return result;
}

/// Identical rewrite workload through one HAL write mode: one link task per
/// site lands its config, then every endpoint moves and the environment is
/// invalidated, so the second epoch rewrites every slot. Returns that
/// epoch's config-write transaction count.
std::size_t run_rewrite_epoch(hal::HalWriteMode mode) {
  constexpr std::size_t kRewriteSites = 20;
  std::vector<sim::CoverageRoomScenario> scenarios;
  orch::OrchestratorOptions options;
  options.hal_write_mode = mode;
  auto fleet = build_fleet(kRewriteSites, scenarios, /*panel_n=*/10, options);
  for (const std::string& id : fleet->site_ids()) {
    fleet->site(id).orchestrator().enhance_link({"phone", 10.0, 50.0});
  }
  fleet->step_all();
  for (const std::string& id : fleet->site_ids()) {
    SurfOS& site = fleet->site(id);
    site.registry().find_endpoint("phone")->position = {3.2, 1.2, 1.1};
    site.orchestrator().notify_environment_changed();
  }
  return fleet->step_all().trace.config_writes;
}

const char* class_name(orch::Priority priority) {
  if (priority >= orch::kPriorityCritical) return "critical";
  if (priority >= orch::kPriorityInteractive) return "interactive";
  if (priority >= orch::kPriorityNormal) return "normal";
  return "background";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fleet.json";
  bool share = true;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-share") {
      share = false;
    } else {
      out_path = argv[i];
    }
  }
  sim::set_precompute_enabled(share);

  std::printf("=== Fleet sustained-load harness: %zu sites (%s) ===\n", kSites,
              share ? "shared precompute" : "--no-share ablation");
  setenv("SURFOS_ADMIT_QUEUE", std::to_string(kQueueCapacity).c_str(), 1);

  // Arrivals: an open-loop Poisson phase, then a bursty trace replay phase
  // offset to start after it. One deterministic stream feeds both.
  util::Rng rng(20260808);
  std::vector<Arrival> arrivals =
      poisson_arrivals(kPoissonRequests, kArrivalEpochs, rng);
  std::vector<Arrival> trace =
      trace_arrivals(kTraceRequests, kArrivalEpochs, rng);
  const double trace_offset =
      std::ceil(arrivals.back().epoch) + 1.0;  // phase 2 starts after phase 1
  for (Arrival& a : trace) a.epoch += trace_offset;
  arrivals.insert(arrivals.end(), trace.begin(), trace.end());
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) { return a.epoch < b.epoch; });

  std::vector<sim::CoverageRoomScenario> scenarios;
  auto fleet = build_fleet(kSites, scenarios, /*panel_n=*/6, {});
  LoadResult load = run_sustained_load(*fleet, arrivals);
  const sim::PrecomputeStore::Stats pre = Fleet::precompute_stats();

  std::sort(load.latency_ms.begin(), load.latency_ms.end());
  const double p50 = percentile(load.latency_ms, 50.0);
  const double p99 = percentile(load.latency_ms, 99.0);
  const double admitted_per_s =
      load.wall_s > 0.0 ? static_cast<double>(load.admitted) / load.wall_s : 0.0;
  const double applied_per_s =
      load.wall_s > 0.0 ? static_cast<double>(load.applied) / load.wall_s : 0.0;

  std::printf("requests submitted:   %zu (poisson %zu + trace %zu)\n",
              load.submitted, kPoissonRequests, kTraceRequests);
  std::printf("admitted / applied:   %zu / %zu over %zu epochs, %.1f s wall\n",
              load.admitted, load.applied, load.epochs, load.wall_s);
  std::printf("sustained rate:       %.1f admitted/s, %.1f applied/s\n",
              admitted_per_s, applied_per_s);
  std::printf("admit->applied:       p50 %.1f ms, p99 %.1f ms (%zu samples)\n",
              p50, p99, load.latency_ms.size());
  for (const auto& [priority, n] : load.admitted_by_class) {
    std::printf("  class %-11s admitted %6zu  shed %6zu\n",
                class_name(priority), n,
                load.shed_by_class.count(priority)
                    ? load.shed_by_class.at(priority)
                    : 0);
  }

  std::printf("precompute store:     %llu hits, %llu misses, %llu evictions, "
              "%.1f MiB resident\n",
              static_cast<unsigned long long>(pre.hits),
              static_cast<unsigned long long>(pre.misses),
              static_cast<unsigned long long>(pre.evictions),
              static_cast<double>(pre.bytes) / (1024.0 * 1024.0));

  // HAL write-path comparison on an identical rewrite workload.
  const std::size_t batched_tx = run_rewrite_epoch(hal::HalWriteMode::kBatched);
  const std::size_t naive_tx = run_rewrite_epoch(hal::HalWriteMode::kPerElement);
  const double tx_ratio = batched_tx > 0
                              ? static_cast<double>(naive_tx) /
                                    static_cast<double>(batched_tx)
                              : 0.0;
  std::printf("rewrite epoch transactions: batched %zu vs per-element %zu "
              "(%.1fx reduction)\n",
              batched_tx, naive_tx, tx_ratio);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"fleet\",\n";
  bench::write_meta(out);
  out << "  \"note\": \"control-plane software cost on one core (sites step "
         "serially or in shards on the process pool); simulated radio, "
         "wall-clock latencies\",\n";
  out << "  \"sites\": " << kSites << ",\n";
  out << "  \"requests\": {\"total\": " << load.submitted
      << ", \"poisson\": " << kPoissonRequests
      << ", \"trace\": " << kTraceRequests << "},\n";
  out << "  \"admit_queue_capacity\": " << kQueueCapacity
      << ",\n  \"pump_per_epoch\": " << kPumpPerEpoch << ",\n";
  out << "  \"epochs\": " << load.epochs << ",\n";
  out << "  \"wall_seconds\": " << load.wall_s << ",\n";
  out << "  \"sustained\": {\"admitted_per_s\": " << admitted_per_s
      << ", \"applied_per_s\": " << applied_per_s << "},\n";
  out << "  \"admit_to_applied_ms\": {\"p50\": " << p50 << ", \"p99\": " << p99
      << ", \"samples\": " << load.latency_ms.size() << "},\n";
  out << "  \"classes\": {\n";
  {
    // Emit every class present in either map, highest priority first.
    std::map<orch::Priority, bool, std::greater<orch::Priority>> present;
    for (const auto& [priority, n] : load.admitted_by_class) {
      (void)n;
      present[priority] = true;
    }
    for (const auto& [priority, n] : load.shed_by_class) {
      (void)n;
      present[priority] = true;
    }
    std::size_t i = 0;
    for (const auto& [priority, unused] : present) {
      (void)unused;
      const auto admitted = load.admitted_by_class.count(priority)
                                ? load.admitted_by_class.at(priority)
                                : 0;
      const auto shed = load.shed_by_class.count(priority)
                            ? load.shed_by_class.at(priority)
                            : 0;
      out << "    \"" << class_name(priority) << "\": {\"admitted\": "
          << admitted << ", \"shed\": " << shed << "}"
          << (++i < present.size() ? "," : "") << "\n";
    }
  }
  out << "  },\n";
  out << "  \"precompute\": {\"shared\": " << (share ? "true" : "false")
      << ", \"hits\": " << pre.hits << ", \"misses\": " << pre.misses
      << ", \"evictions\": " << pre.evictions
      << ", \"resident_bytes\": " << pre.bytes << "},\n";
  out << "  \"config_transactions\": " << load.config_transactions << ",\n";
  out << "  \"rewrite_epoch\": {\"batched_transactions\": " << batched_tx
      << ", \"per_element_transactions\": " << naive_tx
      << ", \"reduction\": " << tx_ratio << "}\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
