#include <cmath>
#include <stdexcept>

#include "opt/optimizer.hpp"
#include "telemetry/telemetry.hpp"

namespace surfos::opt {

OptimizeResult GradientDescent::minimize(const Objective& objective,
                                         std::vector<double> x0) const {
  SURFOS_TRACE_SPAN("opt.minimize");
  if (x0.size() != objective.dimension()) {
    throw std::invalid_argument("GradientDescent: x0 dimension mismatch");
  }
  OptimizeResult result;
  result.x = std::move(x0);
  std::vector<double> gradient(result.x.size());
  std::vector<double> candidate(result.x.size());

  double value = objective.value_and_gradient(result.x, gradient);
  ++result.evaluations;
  double step = options_.initial_step;

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    ++result.iterations;
    double grad_norm2 = 0.0;
    for (double g : gradient) grad_norm2 += g * g;
    if (grad_norm2 < 1e-24) {
      result.converged = true;
      break;
    }

    // Backtracking line search along -gradient.
    double improvement = -1.0;
    double trial_step = step;
    for (std::size_t bt = 0; bt < options_.max_backtracks; ++bt) {
      for (std::size_t i = 0; i < result.x.size(); ++i) {
        candidate[i] = result.x[i] - trial_step * gradient[i];
      }
      const double trial_value = objective.value(candidate);
      ++result.evaluations;
      if (trial_value < value) {
        improvement = value - trial_value;
        result.x = candidate;
        value = trial_value;
        // Re-grow the step after an accepted probe so the search can
        // accelerate once past a plateau.
        step = trial_step * 1.5;
        break;
      }
      trial_step *= options_.backtrack_factor;
    }
    if (improvement < 0.0 || improvement < options_.tolerance) {
      // No descent direction at line-search resolution, or progress stalled.
      result.converged = true;
      break;
    }
    // The accepted line-search probe already evaluated value(result.x), so
    // only the gradient is missing — gradient_at skips the base re-eval a
    // full value_and_gradient would repeat (one dense sweep per iteration
    // for finite-difference objectives).
    objective.gradient_at(result.x, value, gradient);
    ++result.evaluations;
  }
  result.value = value;
  return result;
}

}  // namespace surfos::opt
