// Optimizer interface. The paper's prototype "uses gradient descent, while
// other algorithms can be easily supported" — this is the seam that makes
// that true: every algorithm minimizes an Objective over unconstrained
// phase variables (phases are 2*pi-periodic, so no box constraints needed).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "opt/objective.hpp"

namespace surfos::opt {

struct OptimizeResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;  ///< Objective value (or value+grad) calls.
  bool converged = false;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual OptimizeResult minimize(const Objective& objective,
                                  std::vector<double> x0) const = 0;

  virtual std::string name() const = 0;
};

struct GradientDescentOptions {
  std::size_t max_iterations = 200;
  double initial_step = 0.5;
  double tolerance = 1e-6;       ///< Stop when |improvement| < tolerance.
  double backtrack_factor = 0.5; ///< Step shrink on failed line-search probe.
  std::size_t max_backtracks = 20;
};

/// Steepest descent with backtracking line search (monotone, derivative
/// based). The paper prototype's optimizer.
class GradientDescent final : public Optimizer {
 public:
  explicit GradientDescent(GradientDescentOptions options = {})
      : options_(options) {}
  OptimizeResult minimize(const Objective& objective,
                          std::vector<double> x0) const override;
  std::string name() const override { return "gradient-descent"; }

 private:
  GradientDescentOptions options_;
};

struct AdamOptions {
  std::size_t max_iterations = 300;
  double learning_rate = 0.1;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double tolerance = 1e-7;  ///< Stop when gradient inf-norm falls below.
};

/// Adam: adaptive first-order method, robust to the badly scaled gradients
/// that mixed coverage+sensing losses produce.
class Adam final : public Optimizer {
 public:
  explicit Adam(AdamOptions options = {}) : options_(options) {}
  OptimizeResult minimize(const Objective& objective,
                          std::vector<double> x0) const override;
  std::string name() const override { return "adam"; }

 private:
  AdamOptions options_;
};

struct SpsaOptions {
  std::size_t max_iterations = 600;
  double a = 0.4;       ///< Step-size numerator.
  double c = 0.15;      ///< Perturbation size.
  double alpha = 0.602; ///< Step decay exponent (Spall's defaults).
  double gamma = 0.101; ///< Perturbation decay exponent.
  std::uint64_t seed = 1;
};

/// Simultaneous-perturbation stochastic approximation: two evaluations per
/// iteration regardless of dimension; the derivative-free choice when only
/// endpoint RSS feedback is available (no channel model).
class Spsa final : public Optimizer {
 public:
  explicit Spsa(SpsaOptions options = {}) : options_(options) {}
  OptimizeResult minimize(const Objective& objective,
                          std::vector<double> x0) const override;
  std::string name() const override { return "spsa"; }

 private:
  SpsaOptions options_;
};

struct RandomSearchOptions {
  std::size_t max_evaluations = 2000;
  double sigma = 0.8;  ///< Gaussian mutation scale (radians).
  std::uint64_t seed = 2;
};

/// (1+1) random search baseline.
class RandomSearch final : public Optimizer {
 public:
  explicit RandomSearch(RandomSearchOptions options = {}) : options_(options) {}
  OptimizeResult minimize(const Objective& objective,
                          std::vector<double> x0) const override;
  std::string name() const override { return "random-search"; }

 private:
  RandomSearchOptions options_;
};

struct AnnealingOptions {
  std::size_t max_evaluations = 4000;
  double initial_temperature = 1.0;
  double cooling = 0.999;  ///< Geometric cooling per evaluation.
  double sigma = 0.6;
  std::uint64_t seed = 3;
};

/// Simulated annealing over per-coordinate phase perturbations; escapes the
/// local optima quantized configurations create.
class SimulatedAnnealing final : public Optimizer {
 public:
  explicit SimulatedAnnealing(AnnealingOptions options = {})
      : options_(options) {}
  OptimizeResult minimize(const Objective& objective,
                          std::vector<double> x0) const override;
  std::string name() const override { return "annealing"; }

 private:
  AnnealingOptions options_;
};

struct CmaEsOptions {
  std::size_t max_evaluations = 6000;
  std::size_t population = 0;     ///< 0 -> 4 + floor(3 ln n).
  double initial_sigma = 0.5;
  double sigma_stop = 1e-8;       ///< Converged when the step size collapses.
  std::uint64_t seed = 4;
};

/// Diagonal (mu/mu_w, lambda)-CMA-ES: population-based, derivative-free,
/// with step-size adaptation — the strongest black-box option when the
/// objective is multimodal and no gradients exist.
class CmaEs final : public Optimizer {
 public:
  explicit CmaEs(CmaEsOptions options = {}) : options_(options) {}
  OptimizeResult minimize(const Objective& objective,
                          std::vector<double> x0) const override;
  std::string name() const override { return "cma-es"; }

 private:
  CmaEsOptions options_;
};

}  // namespace surfos::opt
