// Objective abstraction for surface-configuration optimization.
//
// The orchestrator phrases every service goal as a scalar loss over the
// concatenated control phases of all scheduled panels (paper 3.2: "an
// optimizer searches the surface configurations ... with surface
// configurations as variables"). Losses are minimized.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace surfos::opt {

class Objective {
 public:
  virtual ~Objective() = default;

  virtual std::size_t dimension() const = 0;

  /// Loss at x.
  virtual double value(std::span<const double> x) const = 0;

  /// Loss and gradient. Default: central finite differences over value()
  /// (analytic overrides in the orchestrator are ~2N times faster).
  virtual double value_and_gradient(std::span<const double> x,
                                    std::span<double> gradient) const;

  /// Finite-difference step used by the default gradient.
  virtual double fd_step() const { return 1e-5; }
};

/// Objective from plain functions (tests, ablations).
class FunctionObjective final : public Objective {
 public:
  using ValueFn = std::function<double(std::span<const double>)>;

  FunctionObjective(std::size_t dimension, ValueFn fn)
      : dimension_(dimension), fn_(std::move(fn)) {}

  std::size_t dimension() const override { return dimension_; }
  double value(std::span<const double> x) const override { return fn_(x); }

 private:
  std::size_t dimension_;
  ValueFn fn_;
};

/// Weighted sum of sub-objectives over the same variable vector — the joint
/// multitasking loss of paper Fig 5 is CoverageLoss + LocalizationLoss.
class WeightedSumObjective final : public Objective {
 public:
  /// Terms are non-owning and must outlive this object.
  void add_term(const Objective* objective, double weight);

  std::size_t dimension() const override;
  double value(std::span<const double> x) const override;
  double value_and_gradient(std::span<const double> x,
                            std::span<double> gradient) const override;

 private:
  std::vector<std::pair<const Objective*, double>> terms_;
};

}  // namespace surfos::opt
