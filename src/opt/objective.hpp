// Objective abstraction for surface-configuration optimization.
//
// The orchestrator phrases every service goal as a scalar loss over the
// concatenated control phases of all scheduled panels (paper 3.2: "an
// optimizer searches the surface configurations ... with surface
// configurations as variables"). Losses are minimized.
//
// Parallel evaluation: an objective that declares `thread_safe()` may have
// `value()` called concurrently from the process-wide thread pool — the
// default finite-difference gradient probes its 2n points in parallel, and
// `value_batch()` (used by population/pool optimizers: CMA-ES, random
// search, annealing) fans candidate evaluations out. Results are written to
// per-candidate slots, so batch outputs are bit-identical to a serial loop
// regardless of thread count.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace surfos::opt {

class Objective {
 public:
  virtual ~Objective() = default;

  virtual std::size_t dimension() const = 0;

  /// Loss at x.
  virtual double value(std::span<const double> x) const = 0;

  /// Loss and gradient. Default: the base value is computed once up front
  /// and reused as the return value, then gradient_at() fills the gradient
  /// via 2n central-finite-difference probes (in parallel when
  /// thread_safe(); analytic overrides in the orchestrator are ~2n times
  /// faster either way).
  virtual double value_and_gradient(std::span<const double> x,
                                    std::span<double> gradient) const;

  /// Gradient at `x` when `base_value == value(x)` is already known — lets
  /// callers that just evaluated x (line searches, step loops) skip the
  /// redundant base re-evaluation. Default: 2n central-finite-difference
  /// probes routed through value_delta(), so objectives with incremental
  /// evaluation answer each probe with a rank-1 update instead of a dense
  /// re-sweep.
  virtual void gradient_at(std::span<const double> x, double base_value,
                           std::span<double> gradient) const;

  /// Loss at `base` with the single coordinate `coord` replaced by
  /// `coord_value` — the primitive behind FD gradient probes and
  /// single-coordinate annealing moves. `base_value == value(base)` is
  /// already known to the caller; incremental overrides (orchestrator
  /// channel objectives) exploit it via rank-1 channel updates. Default:
  /// copies base into a thread-local scratch vector (no per-probe
  /// allocation) and calls value().
  virtual double value_delta(std::span<const double> base, double base_value,
                             std::size_t coord, double coord_value) const;

  /// Batch of single-coordinate probes off one shared base:
  /// out[k] = value_delta(base, base_value, coords[k], coord_values[k]).
  /// Default fans out on the thread pool when thread_safe(); out[k] depends
  /// only on (base, coords[k], coord_values[k]), so results are order- and
  /// thread-count-independent.
  virtual void value_delta_batch(std::span<const double> base,
                                 double base_value,
                                 std::span<const std::size_t> coords,
                                 std::span<const double> coord_values,
                                 std::span<double> out) const;

  /// Evaluates a batch of points: out[k] = value(xs[k]). Default fans the
  /// loop out on the thread pool when thread_safe(), else runs serially;
  /// either way out[k] depends only on xs[k], so results are order- and
  /// thread-count-independent.
  virtual void value_batch(std::span<const std::vector<double>> xs,
                           std::span<double> out) const;

  /// True when value()/value_and_gradient() may be called concurrently from
  /// multiple threads. Objectives that only read immutable state during
  /// evaluation (all orchestrator objectives) should override to true.
  virtual bool thread_safe() const { return false; }

  /// Finite-difference step used by the default gradient.
  virtual double fd_step() const { return 1e-5; }
};

/// Objective from plain functions (tests, ablations). Pass
/// `thread_safe=true` when `fn` is safe to call concurrently.
class FunctionObjective final : public Objective {
 public:
  using ValueFn = std::function<double(std::span<const double>)>;

  FunctionObjective(std::size_t dimension, ValueFn fn, bool thread_safe = false)
      : dimension_(dimension), fn_(std::move(fn)), thread_safe_(thread_safe) {}

  std::size_t dimension() const override { return dimension_; }
  double value(std::span<const double> x) const override { return fn_(x); }
  bool thread_safe() const override { return thread_safe_; }

 private:
  std::size_t dimension_;
  ValueFn fn_;
  bool thread_safe_;
};

/// Weighted sum of sub-objectives over the same variable vector — the joint
/// multitasking loss of paper Fig 5 is CoverageLoss + LocalizationLoss.
class WeightedSumObjective final : public Objective {
 public:
  /// Terms are non-owning and must outlive this object.
  void add_term(const Objective* objective, double weight);

  std::size_t dimension() const override;
  double value(std::span<const double> x) const override;
  /// Sums each term's value_and_gradient exactly once; the combined value is
  /// recovered from those same calls, never from an extra value(x) pass, so
  /// no term is evaluated twice at the base point.
  double value_and_gradient(std::span<const double> x,
                            std::span<double> gradient) const override;
  /// Routes each term through its own gradient path (analytic overrides,
  /// rank-1 probes, ...) rather than finite-differencing the aggregate.
  void gradient_at(std::span<const double> x, double base_value,
                   std::span<double> gradient) const override;
  /// Probes each term through its own value_delta. Per-term base values are
  /// recovered from a per-thread single-entry cache keyed by a digest of
  /// `base` (the aggregate `base_value` cannot be split back into terms), so
  /// repeated probes off one base — the FD gradient, an annealing sweep —
  /// evaluate each term at the base point once, not once per probe.
  double value_delta(std::span<const double> base, double base_value,
                     std::size_t coord, double coord_value) const override;
  /// Thread-safe exactly when every term is.
  bool thread_safe() const override;

 private:
  double accumulate_gradient(std::span<const double> x,
                             std::span<double> gradient) const;

  std::vector<std::pair<const Objective*, double>> terms_;
};

}  // namespace surfos::opt
