#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "opt/optimizer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace surfos::opt {

// Simulated annealing over per-coordinate phase perturbations, with
// speculative candidate pools. While moves are being accepted the chain is
// strictly sequential (each candidate perturbs the newest state), so the
// pool size is 1. Once a long rejection streak shows the chain has settled
// into reject-mostly behaviour, candidates are speculated in fixed-size
// pools from the current state and evaluated together through
// Objective::value_delta_batch (parallel for thread-safe objectives); accept
// decisions replay in candidate order and the rest of a pool is discarded
// after the first acceptance, since later candidates were speculated
// against a stale base. Pool sizes and every RNG draw are independent of
// the thread count, so trajectories are bit-identical under any
// SURFOS_THREADS setting.
OptimizeResult SimulatedAnnealing::minimize(const Objective& objective,
                                            std::vector<double> x0) const {
  SURFOS_TRACE_SPAN("opt.minimize");
  if (x0.size() != objective.dimension()) {
    throw std::invalid_argument("SimulatedAnnealing: x0 dimension mismatch");
  }
  util::Rng rng(options_.seed);
  OptimizeResult result;
  std::vector<double> x = std::move(x0);
  double value = objective.value(x);
  ++result.evaluations;
  result.x = x;
  result.value = value;

  // Speculate only after this many consecutive rejections; at that point the
  // expected waste from discarding post-acceptance pool tails is small.
  constexpr std::size_t kPool = 8;
  constexpr std::size_t kStreakToPool = 16;

  double temperature = options_.initial_temperature;
  std::size_t rejection_streak = 0;
  std::vector<std::size_t> coords;
  std::vector<double> proposals;
  std::vector<double> temps;
  std::vector<double> values;
  while (result.evaluations < options_.max_evaluations) {
    ++result.iterations;
    const std::size_t batch =
        rejection_streak >= kStreakToPool
            ? std::min<std::size_t>(
                  kPool, options_.max_evaluations - result.evaluations)
            : 1;
    coords.resize(batch);
    proposals.resize(batch);
    temps.resize(batch);
    values.assign(batch, 0.0);
    // Proposal draws happen here, sequentially, before any (possibly
    // parallel) evaluation; temperature cools once per evaluation as in the
    // sequential algorithm. Acceptance uniforms are drawn lazily below, on
    // the calling thread, preserving the sequential algorithm's RNG stream
    // exactly whenever the pool size is 1. Every candidate is a
    // single-coordinate move off x, so the pool is evaluated through
    // value_delta_batch: no per-candidate copies of x, and incremental
    // objectives answer each probe with a rank-1 channel update.
    for (std::size_t k = 0; k < batch; ++k) {
      coords[k] = static_cast<std::size_t>(rng.below(x.size()));
      proposals[k] = x[coords[k]] + options_.sigma * temperature * rng.normal();
      temps[k] = temperature;
      temperature *= options_.cooling;
    }
    objective.value_delta_batch(x, value, coords, proposals, values);
    result.evaluations += batch;
    for (std::size_t k = 0; k < batch; ++k) {
      const bool accept =
          values[k] < value ||
          rng.uniform() <
              std::exp(-(values[k] - value) / std::fmax(1e-12, temps[k]));
      if (accept) {
        x[coords[k]] = proposals[k];
        value = values[k];
        if (value < result.value) {
          result.value = value;
          result.x = x;
        }
        rejection_streak = 0;
        break;  // later pool members were speculated against a stale base
      }
      ++rejection_streak;
    }
  }
  result.converged = true;
  return result;
}

}  // namespace surfos::opt
