#include <cmath>
#include <stdexcept>

#include "opt/optimizer.hpp"
#include "util/rng.hpp"

namespace surfos::opt {

OptimizeResult SimulatedAnnealing::minimize(const Objective& objective,
                                            std::vector<double> x0) const {
  if (x0.size() != objective.dimension()) {
    throw std::invalid_argument("SimulatedAnnealing: x0 dimension mismatch");
  }
  util::Rng rng(options_.seed);
  OptimizeResult result;
  std::vector<double> x = std::move(x0);
  double value = objective.value(x);
  ++result.evaluations;
  result.x = x;
  result.value = value;

  double temperature = options_.initial_temperature;
  std::vector<double> candidate = x;
  while (result.evaluations < options_.max_evaluations) {
    ++result.iterations;
    // Perturb a single random coordinate — cheap moves mix better than
    // full-vector jumps once the configuration is mostly settled.
    const std::size_t i = static_cast<std::size_t>(rng.below(x.size()));
    const double saved = candidate[i];
    candidate[i] = x[i] + options_.sigma * temperature * rng.normal();
    const double trial = objective.value(candidate);
    ++result.evaluations;
    const bool accept =
        trial < value ||
        rng.uniform() < std::exp(-(trial - value) / std::fmax(1e-12, temperature));
    if (accept) {
      x[i] = candidate[i];
      value = trial;
      if (value < result.value) {
        result.value = value;
        result.x = x;
      }
    } else {
      candidate[i] = saved;
    }
    temperature *= options_.cooling;
  }
  result.converged = true;
  return result;
}

}  // namespace surfos::opt
