#include <stdexcept>

#include "opt/optimizer.hpp"
#include "util/rng.hpp"

namespace surfos::opt {

OptimizeResult RandomSearch::minimize(const Objective& objective,
                                      std::vector<double> x0) const {
  if (x0.size() != objective.dimension()) {
    throw std::invalid_argument("RandomSearch: x0 dimension mismatch");
  }
  util::Rng rng(options_.seed);
  OptimizeResult result;
  result.x = std::move(x0);
  result.value = objective.value(result.x);
  ++result.evaluations;

  std::vector<double> candidate(result.x.size());
  while (result.evaluations < options_.max_evaluations) {
    ++result.iterations;
    for (std::size_t i = 0; i < result.x.size(); ++i) {
      candidate[i] = result.x[i] + options_.sigma * rng.normal();
    }
    const double value = objective.value(candidate);
    ++result.evaluations;
    if (value < result.value) {
      result.value = value;
      result.x = candidate;
    }
  }
  result.converged = true;
  return result;
}

}  // namespace surfos::opt
