#include <algorithm>
#include <stdexcept>

#include "opt/optimizer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace surfos::opt {

// (1+lambda) random search: each round draws a fixed-size pool of Gaussian
// perturbations of the incumbent and evaluates it through
// Objective::value_batch (parallel for thread-safe objectives). The pool
// size is a constant — never derived from the thread count — and winners
// are folded in candidate-index order, so trajectories are bit-identical
// under any SURFOS_THREADS setting.
OptimizeResult RandomSearch::minimize(const Objective& objective,
                                      std::vector<double> x0) const {
  SURFOS_TRACE_SPAN("opt.minimize");
  if (x0.size() != objective.dimension()) {
    throw std::invalid_argument("RandomSearch: x0 dimension mismatch");
  }
  util::Rng rng(options_.seed);
  OptimizeResult result;
  result.x = std::move(x0);
  result.value = objective.value(result.x);
  ++result.evaluations;

  constexpr std::size_t kPool = 16;
  std::vector<std::vector<double>> candidates;
  std::vector<double> values;
  while (result.evaluations < options_.max_evaluations) {
    ++result.iterations;
    const std::size_t batch = std::min<std::size_t>(
        kPool, options_.max_evaluations - result.evaluations);
    candidates.assign(batch, std::vector<double>(result.x.size()));
    values.assign(batch, 0.0);
    for (std::size_t k = 0; k < batch; ++k) {
      for (std::size_t i = 0; i < result.x.size(); ++i) {
        candidates[k][i] = result.x[i] + options_.sigma * rng.normal();
      }
    }
    objective.value_batch(candidates, values);
    result.evaluations += batch;
    for (std::size_t k = 0; k < batch; ++k) {
      if (values[k] < result.value) {
        result.value = values[k];
        result.x = candidates[k];
      }
    }
  }
  result.converged = true;
  return result;
}

}  // namespace surfos::opt
