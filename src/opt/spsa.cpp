#include <array>
#include <cmath>
#include <stdexcept>

#include "opt/optimizer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace surfos::opt {

OptimizeResult Spsa::minimize(const Objective& objective,
                              std::vector<double> x0) const {
  SURFOS_TRACE_SPAN("opt.minimize");
  if (x0.size() != objective.dimension()) {
    throw std::invalid_argument("Spsa: x0 dimension mismatch");
  }
  util::Rng rng(options_.seed);
  OptimizeResult result;
  const std::size_t n = x0.size();
  std::vector<double> x = std::move(x0);
  std::vector<double> delta(n);
  std::vector<std::vector<double>> probes(2, std::vector<double>(n));
  std::vector<double>& plus = probes[0];
  std::vector<double>& minus = probes[1];
  std::array<double, 2> probe_values{};

  double best_value = objective.value(x);
  ++result.evaluations;
  std::vector<double> best_x = x;

  for (std::size_t k = 1; k <= options_.max_iterations; ++k) {
    ++result.iterations;
    const double ak =
        options_.a / std::pow(static_cast<double>(k) + 50.0, options_.alpha);
    const double ck =
        options_.c / std::pow(static_cast<double>(k), options_.gamma);
    for (std::size_t i = 0; i < n; ++i) {
      delta[i] = rng.sign();
      plus[i] = x[i] + ck * delta[i];
      minus[i] = x[i] - ck * delta[i];
    }
    // Both probes through value_batch so thread-safe objectives evaluate
    // them concurrently; slots keep the results order-independent.
    objective.value_batch(probes, probe_values);
    const double f_plus = probe_values[0];
    const double f_minus = probe_values[1];
    result.evaluations += 2;
    const double diff = (f_plus - f_minus) / (2.0 * ck);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] -= ak * diff / delta[i];
    }
    // Track the best iterate (SPSA is stochastic and non-monotone).
    const double f = std::fmin(f_plus, f_minus);
    if (f < best_value) {
      best_value = f;
      best_x = (f_plus < f_minus) ? plus : minus;
    }
  }
  const double final_value = objective.value(x);
  ++result.evaluations;
  if (final_value < best_value) {
    best_value = final_value;
    best_x = std::move(x);
  }
  result.x = std::move(best_x);
  result.value = best_value;
  result.converged = true;  // budget-based method: completion == convergence
  return result;
}

}  // namespace surfos::opt
