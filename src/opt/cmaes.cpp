#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "opt/optimizer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace surfos::opt {

// (mu/mu_w, lambda)-CMA-ES with diagonal covariance. The full-covariance
// variant is overkill for phase vectors (the landscape's coupling is mild
// and dimensions reach thousands); the diagonal update keeps each iteration
// O(n * lambda) while retaining step-size adaptation, which is what actually
// matters on multimodal coverage objectives.
OptimizeResult CmaEs::minimize(const Objective& objective,
                               std::vector<double> x0) const {
  SURFOS_TRACE_SPAN("opt.minimize");
  const std::size_t n = x0.size();
  if (n != objective.dimension()) {
    throw std::invalid_argument("CmaEs: x0 dimension mismatch");
  }
  util::Rng rng(options_.seed);

  const std::size_t lambda =
      options_.population > 0
          ? options_.population
          : 4 + static_cast<std::size_t>(3.0 * std::log(static_cast<double>(n)));
  const std::size_t mu = lambda / 2;

  // Log-rank recombination weights.
  std::vector<double> weights(mu);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < mu; ++i) {
    weights[i] = std::log(static_cast<double>(mu) + 0.5) -
                 std::log(static_cast<double>(i) + 1.0);
    weight_sum += weights[i];
  }
  for (double& w : weights) w /= weight_sum;
  double mu_eff = 0.0;
  for (const double w : weights) mu_eff += w * w;
  mu_eff = 1.0 / mu_eff;

  const double nd = static_cast<double>(n);
  const double c_sigma = (mu_eff + 2.0) / (nd + mu_eff + 5.0);
  const double d_sigma =
      1.0 + 2.0 * std::max(0.0, std::sqrt((mu_eff - 1.0) / (nd + 1.0)) - 1.0) +
      c_sigma;
  const double c_cov = std::min(1.0, 2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) /
                                         ((nd + 2.0) * (nd + 2.0) + mu_eff));
  const double chi_n = std::sqrt(nd) * (1.0 - 1.0 / (4.0 * nd));

  std::vector<double> mean = std::move(x0);
  std::vector<double> variance(n, 1.0);  // diagonal C
  std::vector<double> path_sigma(n, 0.0);
  double sigma = options_.initial_sigma;

  OptimizeResult result;
  result.x = mean;
  result.value = objective.value(mean);
  ++result.evaluations;

  struct Sample {
    std::vector<double> z;  // standard normal draw
    std::vector<double> x;
    double value = 0.0;
  };
  std::vector<Sample> population(lambda);
  for (auto& s : population) {
    s.z.resize(n);
    s.x.resize(n);
  }

  std::vector<std::vector<double>> candidates(lambda,
                                              std::vector<double>(n));
  std::vector<double> values(lambda);
  while (result.evaluations + lambda <= options_.max_evaluations) {
    ++result.iterations;
    // Sampling stays serial (one deterministic RNG stream); the lambda
    // objective evaluations — the expensive part — fan out as a batch.
    for (std::size_t k = 0; k < lambda; ++k) {
      auto& s = population[k];
      for (std::size_t i = 0; i < n; ++i) {
        s.z[i] = rng.normal();
        s.x[i] = mean[i] + sigma * std::sqrt(variance[i]) * s.z[i];
      }
      candidates[k] = s.x;
    }
    objective.value_batch(candidates, values);
    result.evaluations += lambda;
    for (std::size_t k = 0; k < lambda; ++k) {
      population[k].value = values[k];
      if (values[k] < result.value) {
        result.value = values[k];
        result.x = population[k].x;
      }
    }
    std::sort(population.begin(), population.end(),
              [](const Sample& a, const Sample& b) { return a.value < b.value; });

    // Recombine mean and the evolution path.
    std::vector<double> z_mean(n, 0.0);
    for (std::size_t k = 0; k < mu; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        z_mean[i] += weights[k] * population[k].z[i];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      mean[i] += sigma * std::sqrt(variance[i]) * z_mean[i];
      path_sigma[i] = (1.0 - c_sigma) * path_sigma[i] +
                      std::sqrt(c_sigma * (2.0 - c_sigma) * mu_eff) * z_mean[i];
    }
    double path_norm = 0.0;
    for (const double p : path_sigma) path_norm += p * p;
    path_norm = std::sqrt(path_norm);
    sigma *= std::exp((c_sigma / d_sigma) * (path_norm / chi_n - 1.0));

    // Diagonal covariance update from the selected samples.
    for (std::size_t i = 0; i < n; ++i) {
      double rank_mu = 0.0;
      for (std::size_t k = 0; k < mu; ++k) {
        rank_mu += weights[k] * population[k].z[i] * population[k].z[i];
      }
      variance[i] = (1.0 - c_cov) * variance[i] + c_cov * variance[i] * rank_mu;
      variance[i] = std::clamp(variance[i], 1e-12, 1e12);
    }
    if (sigma < options_.sigma_stop) {
      result.converged = true;
      break;
    }
  }
  if (!result.converged) result.converged = true;  // budget exhausted
  return result;
}

}  // namespace surfos::opt
