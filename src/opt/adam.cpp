#include <cmath>
#include <stdexcept>

#include "opt/optimizer.hpp"
#include "telemetry/telemetry.hpp"

namespace surfos::opt {

OptimizeResult Adam::minimize(const Objective& objective,
                              std::vector<double> x0) const {
  SURFOS_TRACE_SPAN("opt.minimize");
  if (x0.size() != objective.dimension()) {
    throw std::invalid_argument("Adam: x0 dimension mismatch");
  }
  OptimizeResult result;
  result.x = std::move(x0);
  const std::size_t n = result.x.size();
  std::vector<double> gradient(n);
  std::vector<double> m(n, 0.0);
  std::vector<double> v(n, 0.0);

  double best_value = objective.value(result.x);
  ++result.evaluations;
  std::vector<double> best_x = result.x;
  std::vector<double> x = result.x;

  for (std::size_t t = 1; t <= options_.max_iterations; ++t) {
    ++result.iterations;
    const double value = objective.value_and_gradient(x, gradient);
    ++result.evaluations;
    if (value < best_value) {
      best_value = value;
      best_x = x;
    }
    double inf_norm = 0.0;
    for (double g : gradient) inf_norm = std::fmax(inf_norm, std::fabs(g));
    if (inf_norm < options_.tolerance) {
      result.converged = true;
      break;
    }
    const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t));
    const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t));
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = options_.beta1 * m[i] + (1.0 - options_.beta1) * gradient[i];
      v[i] = options_.beta2 * v[i] + (1.0 - options_.beta2) * gradient[i] * gradient[i];
      const double m_hat = m[i] / bc1;
      const double v_hat = v[i] / bc2;
      x[i] -= options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
  // Adam is not monotone; return the best iterate seen.
  const double final_value = objective.value(x);
  ++result.evaluations;
  if (final_value < best_value) {
    best_value = final_value;
    best_x = x;
  }
  result.x = std::move(best_x);
  result.value = best_value;
  return result;
}

}  // namespace surfos::opt
