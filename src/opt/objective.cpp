#include "opt/objective.hpp"

#include <stdexcept>

namespace surfos::opt {

double Objective::value_and_gradient(std::span<const double> x,
                                     std::span<double> gradient) const {
  if (gradient.size() != x.size()) {
    throw std::invalid_argument("Objective: gradient size mismatch");
  }
  std::vector<double> probe(x.begin(), x.end());
  const double h = fd_step();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double original = probe[i];
    probe[i] = original + h;
    const double plus = value(probe);
    probe[i] = original - h;
    const double minus = value(probe);
    probe[i] = original;
    gradient[i] = (plus - minus) / (2.0 * h);
  }
  return value(x);
}

void WeightedSumObjective::add_term(const Objective* objective, double weight) {
  if (objective == nullptr) {
    throw std::invalid_argument("WeightedSumObjective: null term");
  }
  if (!terms_.empty() && objective->dimension() != dimension()) {
    throw std::invalid_argument("WeightedSumObjective: dimension mismatch");
  }
  terms_.emplace_back(objective, weight);
}

std::size_t WeightedSumObjective::dimension() const {
  return terms_.empty() ? 0 : terms_.front().first->dimension();
}

double WeightedSumObjective::value(std::span<const double> x) const {
  double sum = 0.0;
  for (const auto& [objective, weight] : terms_) {
    sum += weight * objective->value(x);
  }
  return sum;
}

double WeightedSumObjective::value_and_gradient(
    std::span<const double> x, std::span<double> gradient) const {
  if (gradient.size() != x.size()) {
    throw std::invalid_argument("WeightedSumObjective: gradient size");
  }
  std::vector<double> partial(x.size());
  std::fill(gradient.begin(), gradient.end(), 0.0);
  double sum = 0.0;
  for (const auto& [objective, weight] : terms_) {
    sum += weight * objective->value_and_gradient(x, partial);
    for (std::size_t i = 0; i < x.size(); ++i) {
      gradient[i] += weight * partial[i];
    }
  }
  return sum;
}

}  // namespace surfos::opt
