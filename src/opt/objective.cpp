#include "opt/objective.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace surfos::opt {

double Objective::value_and_gradient(std::span<const double> x,
                                     std::span<double> gradient) const {
  if (gradient.size() != x.size()) {
    throw std::invalid_argument("Objective: gradient size mismatch");
  }
  // Base value once, up front; the probes below never revisit x itself.
  SURFOS_TRACE_SPAN("opt.objective.fd_gradient");
  const double base = value(x);
  const double h = fd_step();
  if (thread_safe() && x.size() > 1) {
    // 2n independent probes; each coordinate writes only gradient[i]. Chunked
    // so each worker clones x once per chunk, not once per probe.
    util::global_pool().run_chunked(
        0, x.size(), [&](std::size_t b, std::size_t e) {
          std::vector<double> probe(x.begin(), x.end());
          for (std::size_t i = b; i < e; ++i) {
            const double original = probe[i];
            probe[i] = original + h;
            const double plus = value(probe);
            probe[i] = original - h;
            const double minus = value(probe);
            probe[i] = original;
            gradient[i] = (plus - minus) / (2.0 * h);
          }
        });
    return base;
  }
  std::vector<double> probe(x.begin(), x.end());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double original = probe[i];
    probe[i] = original + h;
    const double plus = value(probe);
    probe[i] = original - h;
    const double minus = value(probe);
    probe[i] = original;
    gradient[i] = (plus - minus) / (2.0 * h);
  }
  return base;
}

void Objective::value_batch(std::span<const std::vector<double>> xs,
                            std::span<double> out) const {
  if (out.size() != xs.size()) {
    throw std::invalid_argument("Objective: batch output size mismatch");
  }
  SURFOS_TRACE_SPAN("opt.objective.value_batch");
  if (thread_safe()) {
    util::parallel_for(0, xs.size(),
                       [&](std::size_t k) { out[k] = value(xs[k]); });
  } else {
    for (std::size_t k = 0; k < xs.size(); ++k) out[k] = value(xs[k]);
  }
}

void WeightedSumObjective::add_term(const Objective* objective, double weight) {
  if (objective == nullptr) {
    throw std::invalid_argument("WeightedSumObjective: null term");
  }
  if (!terms_.empty() && objective->dimension() != dimension()) {
    throw std::invalid_argument("WeightedSumObjective: dimension mismatch");
  }
  terms_.emplace_back(objective, weight);
}

std::size_t WeightedSumObjective::dimension() const {
  return terms_.empty() ? 0 : terms_.front().first->dimension();
}

double WeightedSumObjective::value(std::span<const double> x) const {
  double sum = 0.0;
  for (const auto& [objective, weight] : terms_) {
    sum += weight * objective->value(x);
  }
  return sum;
}

double WeightedSumObjective::value_and_gradient(
    std::span<const double> x, std::span<double> gradient) const {
  if (gradient.size() != x.size()) {
    throw std::invalid_argument("WeightedSumObjective: gradient size");
  }
  std::vector<double> partial(x.size());
  std::fill(gradient.begin(), gradient.end(), 0.0);
  double sum = 0.0;
  for (const auto& [objective, weight] : terms_) {
    sum += weight * objective->value_and_gradient(x, partial);
    for (std::size_t i = 0; i < x.size(); ++i) {
      gradient[i] += weight * partial[i];
    }
  }
  return sum;
}

bool WeightedSumObjective::thread_safe() const {
  return std::all_of(terms_.begin(), terms_.end(),
                     [](const auto& t) { return t.first->thread_safe(); });
}

}  // namespace surfos::opt
