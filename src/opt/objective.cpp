#include "opt/objective.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/digest.hpp"
#include "util/thread_pool.hpp"

namespace surfos::opt {

namespace {

// Reentrancy guard for thread-local scratch buffers: if an objective's
// value() recursively lands back in value_delta on the same thread (e.g. a
// wrapper objective probing its wrapped term), the inner call must not
// clobber the outer call's scratch.
struct ScopedFlag {
  explicit ScopedFlag(bool& flag) : flag_(flag) { flag_ = true; }
  ~ScopedFlag() { flag_ = false; }
  bool& flag_;
};

}  // namespace

double Objective::value_and_gradient(std::span<const double> x,
                                     std::span<double> gradient) const {
  if (gradient.size() != x.size()) {
    throw std::invalid_argument("Objective: gradient size mismatch");
  }
  // Base value once, up front; the probes in gradient_at never revisit x.
  const double base = value(x);
  gradient_at(x, base, gradient);
  return base;
}

void Objective::gradient_at(std::span<const double> x, double base_value,
                            std::span<double> gradient) const {
  if (gradient.size() != x.size()) {
    throw std::invalid_argument("Objective: gradient size mismatch");
  }
  SURFOS_TRACE_SPAN("opt.objective.fd_gradient");
  const double h = fd_step();
  if (thread_safe() && x.size() > 1) {
    // 2n independent probes; each coordinate writes only gradient[i].
    util::global_pool().run_chunked(
        0, x.size(), [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            const double plus = value_delta(x, base_value, i, x[i] + h);
            const double minus = value_delta(x, base_value, i, x[i] - h);
            gradient[i] = (plus - minus) / (2.0 * h);
          }
        });
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double plus = value_delta(x, base_value, i, x[i] + h);
    const double minus = value_delta(x, base_value, i, x[i] - h);
    gradient[i] = (plus - minus) / (2.0 * h);
  }
}

double Objective::value_delta(std::span<const double> base,
                              double /*base_value*/, std::size_t coord,
                              double coord_value) const {
  if (coord >= base.size()) {
    throw std::out_of_range("Objective: value_delta coordinate");
  }
  thread_local std::vector<double> scratch;
  thread_local bool scratch_in_use = false;
  if (scratch_in_use) {
    std::vector<double> probe(base.begin(), base.end());
    probe[coord] = coord_value;
    return value(probe);
  }
  ScopedFlag guard(scratch_in_use);
  scratch.assign(base.begin(), base.end());
  scratch[coord] = coord_value;
  return value(scratch);
}

void Objective::value_delta_batch(std::span<const double> base,
                                  double base_value,
                                  std::span<const std::size_t> coords,
                                  std::span<const double> coord_values,
                                  std::span<double> out) const {
  if (coords.size() != coord_values.size() || out.size() != coords.size()) {
    throw std::invalid_argument("Objective: delta batch size mismatch");
  }
  SURFOS_TRACE_SPAN("opt.objective.value_delta_batch");
  if (thread_safe()) {
    util::parallel_for(0, coords.size(), [&](std::size_t k) {
      out[k] = value_delta(base, base_value, coords[k], coord_values[k]);
    });
  } else {
    for (std::size_t k = 0; k < coords.size(); ++k) {
      out[k] = value_delta(base, base_value, coords[k], coord_values[k]);
    }
  }
}

void Objective::value_batch(std::span<const std::vector<double>> xs,
                            std::span<double> out) const {
  if (out.size() != xs.size()) {
    throw std::invalid_argument("Objective: batch output size mismatch");
  }
  SURFOS_TRACE_SPAN("opt.objective.value_batch");
  if (thread_safe()) {
    util::parallel_for(0, xs.size(),
                       [&](std::size_t k) { out[k] = value(xs[k]); });
  } else {
    for (std::size_t k = 0; k < xs.size(); ++k) out[k] = value(xs[k]);
  }
}

void WeightedSumObjective::add_term(const Objective* objective, double weight) {
  if (objective == nullptr) {
    throw std::invalid_argument("WeightedSumObjective: null term");
  }
  if (!terms_.empty() && objective->dimension() != dimension()) {
    throw std::invalid_argument("WeightedSumObjective: dimension mismatch");
  }
  terms_.emplace_back(objective, weight);
}

std::size_t WeightedSumObjective::dimension() const {
  return terms_.empty() ? 0 : terms_.front().first->dimension();
}

double WeightedSumObjective::value(std::span<const double> x) const {
  double sum = 0.0;
  for (const auto& [objective, weight] : terms_) {
    sum += weight * objective->value(x);
  }
  return sum;
}

double WeightedSumObjective::value_and_gradient(
    std::span<const double> x, std::span<double> gradient) const {
  return accumulate_gradient(x, gradient);
}

void WeightedSumObjective::gradient_at(std::span<const double> x,
                                       double /*base_value*/,
                                       std::span<double> gradient) const {
  // The aggregate base value is useless to a term (it cannot be split back
  // into per-term values), so each term re-derives its own base through its
  // value_and_gradient — a memo hit for digest-cached objectives.
  accumulate_gradient(x, gradient);
}

double WeightedSumObjective::accumulate_gradient(
    std::span<const double> x, std::span<double> gradient) const {
  if (gradient.size() != x.size()) {
    throw std::invalid_argument("WeightedSumObjective: gradient size");
  }
  // Scratch for per-term gradients, reused across the step loop's repeated
  // calls instead of allocated fresh each time.
  thread_local std::vector<double> partial_scratch;
  thread_local bool partial_in_use = false;
  std::vector<double> partial_local;
  std::vector<double>& partial =
      partial_in_use ? partial_local : partial_scratch;
  ScopedFlag guard(partial_in_use);
  partial.assign(x.size(), 0.0);
  std::fill(gradient.begin(), gradient.end(), 0.0);
  double sum = 0.0;
  for (const auto& [objective, weight] : terms_) {
    sum += weight * objective->value_and_gradient(x, partial);
    for (std::size_t i = 0; i < x.size(); ++i) {
      gradient[i] += weight * partial[i];
    }
  }
  return sum;
}

double WeightedSumObjective::value_delta(std::span<const double> base,
                                         double /*base_value*/,
                                         std::size_t coord,
                                         double coord_value) const {
  // Per-thread single-entry cache of the per-term values at `base`. All
  // probes of one FD gradient (or one annealing sweep) share a base, so the
  // terms are evaluated there once per thread, then every probe is answered
  // via the terms' own value_delta paths.
  struct TermBaseCache {
    const void* owner = nullptr;
    util::ConfigDigest key{};
    std::vector<double> term_values;
  };
  thread_local TermBaseCache cache;
  const util::ConfigDigest key = util::digest_values(base);
  if (cache.owner != this || !(cache.key == key) ||
      cache.term_values.size() != terms_.size()) {
    std::vector<double> values(terms_.size());
    for (std::size_t t = 0; t < terms_.size(); ++t) {
      values[t] = terms_[t].first->value(base);
    }
    cache.owner = this;
    cache.key = key;
    cache.term_values = std::move(values);
  }
  // Snapshot before probing: a term that is itself a WeightedSumObjective
  // reuses this thread's cache slot and would clobber it mid-loop.
  const std::vector<double> term_values = cache.term_values;
  double sum = 0.0;
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    sum += terms_[t].second * terms_[t].first->value_delta(
                                  base, term_values[t], coord, coord_value);
  }
  return sum;
}

bool WeightedSumObjective::thread_safe() const {
  return std::all_of(terms_.begin(), terms_.end(),
                     [](const auto& t) { return t.first->thread_safe(); });
}

}  // namespace surfos::opt
