// Median-split bounding volume hierarchy over a triangle array.
//
// The channel simulator casts on the order of 10^6 occlusion rays per
// heatmap; a flat scan over a few hundred triangles would work but the BVH
// keeps large furnished scenes fast and is exercised by property tests
// against the brute-force path.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "geom/triangle.hpp"

namespace surfos::geom {

class Bvh {
 public:
  /// Builds over the given triangles; the pointer must outlive the Bvh.
  explicit Bvh(const std::vector<Triangle>* triangles);

  /// Closest hit within (t_min, t_max); returns invalid Hit when none.
  Hit closest_hit(const Ray& ray, double t_min, double t_max) const;

  /// Any-hit query (early exit), for shadow/occlusion rays.
  bool occluded(const Ray& ray, double t_min, double t_max) const;

  /// Every hit within the interval, unsorted; caller sorts if needed.
  void collect_hits(const Ray& ray, double t_min, double t_max,
                    std::vector<Hit>& out) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    Aabb box;
    // Leaf: first_prim/prim_count; interior: left child is index+1, right
    // child is right_child.
    std::uint32_t first_prim = 0;
    std::uint32_t prim_count = 0;
    std::uint32_t right_child = 0;
    bool is_leaf() const noexcept { return prim_count > 0; }
  };

  std::uint32_t build_node(std::uint32_t begin, std::uint32_t end);
  Hit triangle_hit(std::uint32_t prim_index, const Ray& ray, double t_min,
                   double t_max) const;

  const std::vector<Triangle>* triangles_;
  std::vector<std::uint32_t> order_;  ///< Triangle indices, partitioned by node.
  std::vector<Node> nodes_;
};

}  // namespace surfos::geom
