// Rays and ray-hit records for the image-method channel simulator.
#pragma once

#include <limits>

#include "geom/vec3.hpp"

namespace surfos::geom {

struct Ray {
  Vec3 origin;
  Vec3 direction;  ///< Unit length by convention; callers normalize.

  Vec3 at(double t) const noexcept { return origin + direction * t; }
};

/// Result of the closest-hit query against a mesh.
struct Hit {
  double t = std::numeric_limits<double>::infinity();  ///< Ray parameter.
  Vec3 point;
  Vec3 normal;            ///< Geometric normal, unit, front-facing (against ray).
  int triangle_index = -1;
  int material_id = -1;

  bool valid() const noexcept { return triangle_index >= 0; }
};

/// Epsilon used to offset ray origins off surfaces to avoid self-hits.
inline constexpr double kRayEpsilon = 1e-7;

}  // namespace surfos::geom
