// Triangle primitive with Moller-Trumbore intersection.
#pragma once

#include <cmath>
#include <optional>

#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "geom/vec3.hpp"

namespace surfos::geom {

struct Triangle {
  Vec3 a, b, c;
  int material_id = 0;

  Vec3 geometric_normal() const noexcept {
    return (b - a).cross(c - a).normalized();
  }

  double area() const noexcept { return 0.5 * (b - a).cross(c - a).norm(); }

  Aabb bounds() const noexcept {
    Aabb box;
    box.expand(a);
    box.expand(b);
    box.expand(c);
    return box;
  }

  Vec3 centroid() const noexcept { return (a + b + c) / 3.0; }

  /// Moller-Trumbore. Returns the ray parameter t on hit within (t_min, t_max).
  std::optional<double> intersect(const Ray& ray, double t_min,
                                  double t_max) const noexcept {
    const Vec3 e1 = b - a;
    const Vec3 e2 = c - a;
    const Vec3 p = ray.direction.cross(e2);
    const double det = e1.dot(p);
    // Two-sided: walls must block rays from both directions.
    if (std::fabs(det) < 1e-14) return std::nullopt;
    const double inv_det = 1.0 / det;
    const Vec3 s = ray.origin - a;
    const double u = s.dot(p) * inv_det;
    if (u < -1e-12 || u > 1.0 + 1e-12) return std::nullopt;
    const Vec3 q = s.cross(e1);
    const double v = ray.direction.dot(q) * inv_det;
    if (v < -1e-12 || u + v > 1.0 + 1e-12) return std::nullopt;
    const double t = e2.dot(q) * inv_det;
    if (t <= t_min || t >= t_max) return std::nullopt;
    return t;
  }
};

}  // namespace surfos::geom
