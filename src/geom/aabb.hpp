// Axis-aligned bounding boxes (BVH nodes, environment extents).
#pragma once

#include <limits>

#include "geom/ray.hpp"
#include "geom/vec3.hpp"

namespace surfos::geom {

struct Aabb {
  Vec3 lo{std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec3 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  bool empty() const noexcept { return lo.x > hi.x; }

  void expand(const Vec3& p) noexcept {
    lo = min(lo, p);
    hi = max(hi, p);
  }
  void expand(const Aabb& b) noexcept {
    lo = min(lo, b.lo);
    hi = max(hi, b.hi);
  }

  Vec3 center() const noexcept { return (lo + hi) * 0.5; }
  Vec3 extent() const noexcept { return hi - lo; }

  double surface_area() const noexcept {
    if (empty()) return 0.0;
    const Vec3 e = extent();
    return 2.0 * (e.x * e.y + e.y * e.z + e.z * e.x);
  }

  bool contains(const Vec3& p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  /// Slab test: does the ray intersect this box within [t_min, t_max]?
  bool hit_by(const Ray& ray, double t_min, double t_max) const noexcept {
    const double* lo_c = &lo.x;
    const double* hi_c = &hi.x;
    const double* o = &ray.origin.x;
    const double* d = &ray.direction.x;
    for (int axis = 0; axis < 3; ++axis) {
      const double inv = 1.0 / d[axis];
      double t0 = (lo_c[axis] - o[axis]) * inv;
      double t1 = (hi_c[axis] - o[axis]) * inv;
      if (inv < 0.0) {
        const double tmp = t0;
        t0 = t1;
        t1 = tmp;
      }
      if (t0 > t_min) t_min = t0;
      if (t1 < t_max) t_max = t1;
      if (t_max < t_min) return false;
    }
    return true;
  }
};

}  // namespace surfos::geom
