// Orthonormal frames: local coordinate systems for surface panels and
// antenna orientations. A frame maps local (u, v, n) coordinates to world
// space, where n is the outward normal of the panel.
#pragma once

#include <cmath>

#include "geom/vec3.hpp"

namespace surfos::geom {

class Frame {
 public:
  /// Identity frame at the origin.
  Frame() : origin_{}, u_{1, 0, 0}, v_{0, 1, 0}, n_{0, 0, 1} {}

  /// Build from an origin and a (not necessarily unit) normal; u/v are chosen
  /// deterministically orthogonal to n, with u as horizontal as possible so
  /// surface rows stay level in room scenes.
  Frame(const Vec3& origin, const Vec3& normal) : origin_(origin) {
    n_ = normal.normalized();
    const Vec3 up = std::fabs(n_.z) < 0.999 ? Vec3{0, 0, 1} : Vec3{1, 0, 0};
    u_ = up.cross(n_).normalized();
    v_ = n_.cross(u_);
  }

  /// Fully specified frame. `u` is re-orthogonalized against n.
  Frame(const Vec3& origin, const Vec3& normal, const Vec3& u_hint)
      : origin_(origin) {
    n_ = normal.normalized();
    Vec3 u = u_hint - n_ * u_hint.dot(n_);
    u_ = u.normalized();
    v_ = n_.cross(u_);
  }

  const Vec3& origin() const noexcept { return origin_; }
  const Vec3& u() const noexcept { return u_; }
  const Vec3& v() const noexcept { return v_; }
  const Vec3& normal() const noexcept { return n_; }

  /// Local (u, v, n) -> world point.
  Vec3 to_world(double lu, double lv, double ln = 0.0) const noexcept {
    return origin_ + u_ * lu + v_ * lv + n_ * ln;
  }

  /// World point -> local (u, v, n) coordinates.
  Vec3 to_local(const Vec3& world) const noexcept {
    const Vec3 d = world - origin_;
    return {d.dot(u_), d.dot(v_), d.dot(n_)};
  }

  /// World direction -> local direction (no translation).
  Vec3 dir_to_local(const Vec3& dir) const noexcept {
    return {dir.dot(u_), dir.dot(v_), dir.dot(n_)};
  }

  Vec3 dir_to_world(const Vec3& local_dir) const noexcept {
    return u_ * local_dir.x + v_ * local_dir.y + n_ * local_dir.z;
  }

 private:
  Vec3 origin_;
  Vec3 u_, v_, n_;
};

}  // namespace surfos::geom
