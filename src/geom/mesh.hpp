// Triangle mesh with a BVH-accelerated closest-hit / occlusion interface.
// The channel simulator's environment geometry (walls, floors, furniture)
// lives in one TriangleMesh.
#pragma once

#include <memory>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "geom/triangle.hpp"
#include "geom/vec3.hpp"

namespace surfos::geom {

class Bvh;  // defined in bvh.hpp

class TriangleMesh {
 public:
  TriangleMesh();
  ~TriangleMesh();
  TriangleMesh(TriangleMesh&&) noexcept;
  TriangleMesh& operator=(TriangleMesh&&) noexcept;
  TriangleMesh(const TriangleMesh&) = delete;
  TriangleMesh& operator=(const TriangleMesh&) = delete;

  void add_triangle(Triangle tri);

  /// Axis-aligned rectangle helper: adds two triangles spanning the quad
  /// (a, b, c, d) given in order around the perimeter.
  void add_quad(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
                int material_id);

  /// Adds the 12 triangles of a box (furniture, interior obstacles).
  void add_box(const Vec3& lo, const Vec3& hi, int material_id);

  std::size_t triangle_count() const noexcept { return triangles_.size(); }
  const Triangle& triangle(std::size_t i) const { return triangles_[i]; }
  const std::vector<Triangle>& triangles() const noexcept { return triangles_; }

  Aabb bounds() const;

  /// (Re)build the BVH; must be called after the last add_* and before any
  /// query. Queries on a stale index throw std::logic_error.
  void build_index();
  bool index_built() const noexcept;

  /// Closest hit along the ray within (t_min, t_max).
  Hit closest_hit(const Ray& ray, double t_min = kRayEpsilon,
                  double t_max = std::numeric_limits<double>::infinity()) const;

  /// True if any triangle blocks the ray within (t_min, t_max).
  bool occluded(const Ray& ray, double t_min, double t_max) const;

  /// Convenience: is the open segment between two points blocked?
  bool segment_blocked(const Vec3& from, const Vec3& to) const;

  /// All hits along a segment, sorted by t (used to accumulate through-wall
  /// penetration loss across multiple walls).
  std::vector<Hit> all_hits_on_segment(const Vec3& from, const Vec3& to) const;

 private:
  std::vector<Triangle> triangles_;
  std::unique_ptr<Bvh> bvh_;
};

}  // namespace surfos::geom
