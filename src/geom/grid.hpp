// Regular 2-D sampling grids at a fixed height: evaluation points for
// coverage/localization heatmaps and CDFs-over-locations (paper Figs 2, 4, 5).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "geom/vec3.hpp"

namespace surfos::geom {

class SampleGrid {
 public:
  /// Grid over [x0, x1] x [y0, y1] at height z, with nx * ny points placed at
  /// cell centers. nx, ny must be >= 1.
  SampleGrid(double x0, double x1, double y0, double y1, double z,
             std::size_t nx, std::size_t ny)
      : x0_(x0), y0_(y0), z_(z), nx_(nx), ny_(ny) {
    if (nx == 0 || ny == 0) throw std::invalid_argument("SampleGrid: empty");
    if (x1 < x0 || y1 < y0) throw std::invalid_argument("SampleGrid: inverted");
    dx_ = (x1 - x0) / static_cast<double>(nx);
    dy_ = (y1 - y0) / static_cast<double>(ny);
  }

  std::size_t nx() const noexcept { return nx_; }
  std::size_t ny() const noexcept { return ny_; }
  std::size_t size() const noexcept { return nx_ * ny_; }
  double cell_dx() const noexcept { return dx_; }
  double cell_dy() const noexcept { return dy_; }

  Vec3 point(std::size_t ix, std::size_t iy) const {
    if (ix >= nx_ || iy >= ny_) throw std::out_of_range("SampleGrid: index");
    return {x0_ + (static_cast<double>(ix) + 0.5) * dx_,
            y0_ + (static_cast<double>(iy) + 0.5) * dy_, z_};
  }

  Vec3 point(std::size_t flat) const { return point(flat % nx_, flat / nx_); }

  std::vector<Vec3> points() const {
    std::vector<Vec3> out;
    out.reserve(size());
    for (std::size_t iy = 0; iy < ny_; ++iy) {
      for (std::size_t ix = 0; ix < nx_; ++ix) out.push_back(point(ix, iy));
    }
    return out;
  }

 private:
  double x0_, y0_, z_;
  std::size_t nx_, ny_;
  double dx_ = 0.0, dy_ = 0.0;
};

}  // namespace surfos::geom
