// 3-D vector algebra for the ray tracer and array geometry.
//
// Plain value type: no invariant beyond "three doubles", so members are
// public (Core Guidelines C.2). All operations are constexpr-friendly and
// noexcept.
#pragma once

#include <cmath>
#include <ostream>

namespace surfos::geom {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator-() const noexcept { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const noexcept { return {x / s, y / s, z / s}; }

  Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) noexcept {
    x *= s; y *= s; z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const noexcept = default;

  constexpr double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm_squared() const noexcept { return dot(*this); }
  double norm() const noexcept { return std::sqrt(norm_squared()); }

  /// Unit vector in the same direction. Undefined for the zero vector; the
  /// caller checks (geometry code never normalizes degenerate edges).
  Vec3 normalized() const noexcept { return *this / norm(); }

  double distance_to(const Vec3& o) const noexcept { return (*this - o).norm(); }
};

constexpr Vec3 operator*(double s, const Vec3& v) noexcept { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

/// Reflect direction `d` about unit normal `n` (d need not be unit).
inline Vec3 reflect(const Vec3& d, const Vec3& n) noexcept {
  return d - 2.0 * d.dot(n) * n;
}

/// Component-wise min/max (for bounding boxes).
inline Vec3 min(const Vec3& a, const Vec3& b) noexcept {
  return {std::fmin(a.x, b.x), std::fmin(a.y, b.y), std::fmin(a.z, b.z)};
}
inline Vec3 max(const Vec3& a, const Vec3& b) noexcept {
  return {std::fmax(a.x, b.x), std::fmax(a.y, b.y), std::fmax(a.z, b.z)};
}

}  // namespace surfos::geom
