#include "geom/mesh.hpp"

#include <algorithm>
#include <stdexcept>

#include "geom/bvh.hpp"

namespace surfos::geom {

TriangleMesh::TriangleMesh() = default;
TriangleMesh::~TriangleMesh() = default;
TriangleMesh::TriangleMesh(TriangleMesh&&) noexcept = default;
TriangleMesh& TriangleMesh::operator=(TriangleMesh&&) noexcept = default;

void TriangleMesh::add_triangle(Triangle tri) {
  triangles_.push_back(tri);
  bvh_.reset();  // geometry changed; index is stale
}

void TriangleMesh::add_quad(const Vec3& a, const Vec3& b, const Vec3& c,
                            const Vec3& d, int material_id) {
  add_triangle({a, b, c, material_id});
  add_triangle({a, c, d, material_id});
}

void TriangleMesh::add_box(const Vec3& lo, const Vec3& hi, int material_id) {
  const Vec3 p000{lo.x, lo.y, lo.z}, p100{hi.x, lo.y, lo.z};
  const Vec3 p010{lo.x, hi.y, lo.z}, p110{hi.x, hi.y, lo.z};
  const Vec3 p001{lo.x, lo.y, hi.z}, p101{hi.x, lo.y, hi.z};
  const Vec3 p011{lo.x, hi.y, hi.z}, p111{hi.x, hi.y, hi.z};
  add_quad(p000, p100, p110, p010, material_id);  // bottom
  add_quad(p001, p101, p111, p011, material_id);  // top
  add_quad(p000, p100, p101, p001, material_id);  // y = lo
  add_quad(p010, p110, p111, p011, material_id);  // y = hi
  add_quad(p000, p010, p011, p001, material_id);  // x = lo
  add_quad(p100, p110, p111, p101, material_id);  // x = hi
}

Aabb TriangleMesh::bounds() const {
  Aabb box;
  for (const Triangle& tri : triangles_) box.expand(tri.bounds());
  return box;
}

void TriangleMesh::build_index() { bvh_ = std::make_unique<Bvh>(&triangles_); }

bool TriangleMesh::index_built() const noexcept { return bvh_ != nullptr; }

Hit TriangleMesh::closest_hit(const Ray& ray, double t_min, double t_max) const {
  if (!bvh_) throw std::logic_error("TriangleMesh: build_index() not called");
  return bvh_->closest_hit(ray, t_min, t_max);
}

bool TriangleMesh::occluded(const Ray& ray, double t_min, double t_max) const {
  if (!bvh_) throw std::logic_error("TriangleMesh: build_index() not called");
  return bvh_->occluded(ray, t_min, t_max);
}

bool TriangleMesh::segment_blocked(const Vec3& from, const Vec3& to) const {
  const Vec3 delta = to - from;
  const double length = delta.norm();
  if (length < kRayEpsilon) return false;
  const Ray ray{from, delta / length};
  return occluded(ray, kRayEpsilon, length - kRayEpsilon);
}

std::vector<Hit> TriangleMesh::all_hits_on_segment(const Vec3& from,
                                                   const Vec3& to) const {
  if (!bvh_) throw std::logic_error("TriangleMesh: build_index() not called");
  const Vec3 delta = to - from;
  const double length = delta.norm();
  std::vector<Hit> hits;
  if (length < kRayEpsilon) return hits;
  const Ray ray{from, delta / length};
  bvh_->collect_hits(ray, kRayEpsilon, length - kRayEpsilon, hits);
  // Tie-break exactly-coincident hits (a segment through a shared edge of
  // two quads) on triangle order so the survivor of the dedup below — and
  // therefore the incidence normal used for its slab response — is
  // deterministic, not an artifact of std::sort's handling of equal keys.
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.triangle_index < b.triangle_index;
  });
  // A segment crossing a quad's shared diagonal (or any coplanar triangle
  // pair) reports one hit per triangle; keep a single crossing per surface
  // point so wall attenuation is not double-counted. Within a coincident
  // same-material cluster the surviving hit is the lowest-triangle-index
  // member: when the cluster spans quads with different normals (a segment
  // through the shared edge of two box faces), the incidence angle depends
  // on which hit survives, and "lowest index" is the one rule both this
  // path and the vectorized seg_transmission kernel can apply cheaply.
  // Cluster membership is anchored on the first (smallest-t) member, like
  // std::unique's compare-against-last-kept.
  std::vector<Hit> unique_hits;
  unique_hits.reserve(hits.size());
  double anchor_t = 0.0;
  for (const Hit& hit : hits) {
    if (!unique_hits.empty() && std::abs(hit.t - anchor_t) < 1e-9 &&
        hit.material_id == unique_hits.back().material_id) {
      if (hit.triangle_index < unique_hits.back().triangle_index) {
        unique_hits.back() = hit;
      }
      continue;
    }
    unique_hits.push_back(hit);
    anchor_t = hit.t;
  }
  return unique_hits;
}

}  // namespace surfos::geom
