#include "geom/bvh.hpp"

#include <algorithm>
#include <numeric>

namespace surfos::geom {

namespace {
constexpr std::uint32_t kLeafSize = 4;
}

Bvh::Bvh(const std::vector<Triangle>* triangles) : triangles_(triangles) {
  order_.resize(triangles_->size());
  std::iota(order_.begin(), order_.end(), 0u);
  nodes_.reserve(triangles_->size() * 2 + 1);
  if (!order_.empty()) {
    build_node(0, static_cast<std::uint32_t>(order_.size()));
  }
}

std::uint32_t Bvh::build_node(std::uint32_t begin, std::uint32_t end) {
  const auto node_index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();

  Aabb box;
  Aabb centroid_box;
  for (std::uint32_t i = begin; i < end; ++i) {
    const Triangle& tri = (*triangles_)[order_[i]];
    box.expand(tri.bounds());
    centroid_box.expand(tri.centroid());
  }
  nodes_[node_index].box = box;

  const std::uint32_t count = end - begin;
  if (count <= kLeafSize) {
    nodes_[node_index].first_prim = begin;
    nodes_[node_index].prim_count = count;
    return node_index;
  }

  // Split along the widest centroid axis at the median.
  const Vec3 extent = centroid_box.extent();
  int axis = 0;
  if (extent.y > extent.x) axis = 1;
  if (extent.z > (axis == 0 ? extent.x : extent.y)) axis = 2;

  const std::uint32_t mid = begin + count / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end,
                   [this, axis](std::uint32_t a, std::uint32_t b) {
                     const Vec3 ca = (*triangles_)[a].centroid();
                     const Vec3 cb = (*triangles_)[b].centroid();
                     return (&ca.x)[axis] < (&cb.x)[axis];
                   });

  build_node(begin, mid);  // left child == node_index + 1
  nodes_[node_index].right_child = build_node(mid, end);
  return node_index;
}

Hit Bvh::triangle_hit(std::uint32_t prim_index, const Ray& ray, double t_min,
                      double t_max) const {
  Hit hit;
  const std::uint32_t tri_index = order_[prim_index];
  const Triangle& tri = (*triangles_)[tri_index];
  if (const auto t = tri.intersect(ray, t_min, t_max)) {
    hit.t = *t;
    hit.point = ray.at(*t);
    Vec3 n = tri.geometric_normal();
    if (n.dot(ray.direction) > 0.0) n = -n;  // front-facing convention
    hit.normal = n;
    hit.triangle_index = static_cast<int>(tri_index);
    hit.material_id = tri.material_id;
  }
  return hit;
}

Hit Bvh::closest_hit(const Ray& ray, double t_min, double t_max) const {
  Hit best;
  if (nodes_.empty()) return best;
  std::uint32_t stack[64];
  int top = 0;
  stack[top++] = 0;
  double closest = t_max;
  while (top > 0) {
    const Node& node = nodes_[stack[--top]];
    if (!node.box.hit_by(ray, t_min, closest)) continue;
    if (node.is_leaf()) {
      for (std::uint32_t i = 0; i < node.prim_count; ++i) {
        const Hit hit = triangle_hit(node.first_prim + i, ray, t_min, closest);
        if (hit.valid()) {
          best = hit;
          closest = hit.t;
        }
      }
    } else {
      const std::uint32_t self =
          static_cast<std::uint32_t>(&node - nodes_.data());
      stack[top++] = node.right_child;
      stack[top++] = self + 1;
    }
  }
  return best;
}

bool Bvh::occluded(const Ray& ray, double t_min, double t_max) const {
  if (nodes_.empty()) return false;
  std::uint32_t stack[64];
  int top = 0;
  stack[top++] = 0;
  while (top > 0) {
    const Node& node = nodes_[stack[--top]];
    if (!node.box.hit_by(ray, t_min, t_max)) continue;
    if (node.is_leaf()) {
      for (std::uint32_t i = 0; i < node.prim_count; ++i) {
        const Triangle& tri = (*triangles_)[order_[node.first_prim + i]];
        if (tri.intersect(ray, t_min, t_max)) return true;
      }
    } else {
      const std::uint32_t self =
          static_cast<std::uint32_t>(&node - nodes_.data());
      stack[top++] = node.right_child;
      stack[top++] = self + 1;
    }
  }
  return false;
}

void Bvh::collect_hits(const Ray& ray, double t_min, double t_max,
                       std::vector<Hit>& out) const {
  if (nodes_.empty()) return;
  std::uint32_t stack[64];
  int top = 0;
  stack[top++] = 0;
  while (top > 0) {
    const Node& node = nodes_[stack[--top]];
    if (!node.box.hit_by(ray, t_min, t_max)) continue;
    if (node.is_leaf()) {
      for (std::uint32_t i = 0; i < node.prim_count; ++i) {
        const Hit hit = triangle_hit(node.first_prim + i, ray, t_min, t_max);
        if (hit.valid()) out.push_back(hit);
      }
    } else {
      const std::uint32_t self =
          static_cast<std::uint32_t>(&node - nodes_.data());
      stack[top++] = node.right_child;
      stack[top++] = self + 1;
    }
  }
}

}  // namespace surfos::geom
