// Client side of the surfosd wire protocol: a blocking connection over the
// daemon's Unix-domain socket.
//
// Used by the CLI tools (surfos-ctl, surfos-status, surfos-top) and the
// daemon tests. Two usage styles:
//
//   - call(): one request/reply round trip. The daemon's reply always
//     echoes the request's trace id, which call() verifies; server-pushed
//     kEvent frames that arrive interleaved (on a subscribed connection)
//     are NOT replies and are skipped — a subscriber that still issues
//     control requests never mistakes an event for its answer.
//   - send() + recv(): streaming. After a kSubscribe, recv() blocks for
//     the next frame — reply or pushed kEvent — in arrival order.
//
// The read buffer persists across calls (leftover bytes after one decoded
// frame belong to the next), which is what makes the two styles composable
// on one connection. Clients that do not mint their own trace ids get
// deterministic ones (domain "surfos.client", per-connection sequence).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "proto/wire.hpp"

namespace surfos::daemon {

class Client {
 public:
  /// Connects to a surfosd socket. kIoError (with errno text) on failure.
  static Result<Client> connect(const std::string& socket_path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One request/reply round trip (skips interleaved kEvent pushes).
  /// `trace_id` 0 mints a deterministic client-side id; the returned frame
  /// is the daemon's reply (possibly a kError frame — protocol errors are
  /// data, not I/O failures).
  Result<proto::WireFrame> call(proto::MsgType type,
                                std::span<const std::uint8_t> payload,
                                std::uint64_t trace_id = 0);

  /// Writes one request frame without waiting for anything back. Returns
  /// the trace id actually sent (minted when `trace_id` is 0).
  Result<std::uint64_t> send(proto::MsgType type,
                             std::span<const std::uint8_t> payload,
                             std::uint64_t trace_id = 0);

  /// Blocks until the next complete frame — a reply or a pushed kEvent —
  /// and returns it in arrival order.
  Result<proto::WireFrame> recv();

  bool connected() const noexcept { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::uint64_t seq_ = 0;
  std::vector<std::uint8_t> buf_;  ///< Bytes read but not yet decoded.
};

}  // namespace surfos::daemon
