// Client side of the surfosd wire protocol: a blocking request/reply
// connection over the daemon's Unix-domain socket.
//
// Used by the CLI tools (surfos-ctl, surfos-status) and the daemon tests.
// One call() writes one frame and reads bytes until exactly one reply frame
// decodes; the daemon's reply always echoes the request's trace id, which
// call() verifies. Clients that do not mint their own trace ids get
// deterministic ones (domain "surfos.client", per-connection sequence).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/status.hpp"
#include "proto/wire.hpp"

namespace surfos::daemon {

class Client {
 public:
  /// Connects to a surfosd socket. kIoError (with errno text) on failure.
  static Result<Client> connect(const std::string& socket_path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One request/reply round trip. `trace_id` 0 mints a deterministic
  /// client-side id; the returned frame is the daemon's reply (possibly a
  /// kError frame — protocol errors are data, not I/O failures).
  Result<proto::WireFrame> call(proto::MsgType type,
                                std::span<const std::uint8_t> payload,
                                std::uint64_t trace_id = 0);

  bool connected() const noexcept { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::uint64_t seq_ = 0;
};

}  // namespace surfos::daemon
