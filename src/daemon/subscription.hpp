// Subscription registry + per-client outboxes for the streaming
// observability plane.
//
// The daemon's poll() server owns a set of client connections; each may
// hold any number of subscriptions (topic metrics | traces | health, an
// epoch interval, optional site / name-prefix filters). At the end of every
// control epoch the ticker thread calls publish(): for each due
// subscription it encodes one kEvent frame and appends it to the owning
// connection's outbox. Publish NEVER writes to a socket and never blocks —
// the poll() loop flushes outboxes with non-blocking writes when the fd is
// writable.
//
// Slow-subscriber policy: outboxes are bounded (SURFOS_SUB_OUTBOX event
// frames per connection, re-read every publish). When a new event would
// exceed the bound, the OLDEST queued event frame is dropped — a live
// dashboard wants now, not a backlog — and the owning subscription's
// dropped counter increments. A dropped metrics delta would leave the
// subscriber's counter view permanently stale, so a drop also forces the
// subscription's next event to be a full baseline (kEventBaseline = 1).
// Receivers detect the gap from the per-subscription kEventSeq sequence
// (every *published* event increments it, delivered or not).
//
// Request/reply frames enqueue through the same outboxes (enqueue_reply)
// but are never dropped; a connection whose un-flushed replies exceed
// kMaxOutboxBytes is declared dead instead (a peer that stops reading its
// own replies is gone, not slow).
//
// Locking: the registry has its own mutex and every public method is
// self-contained; the daemon's lock order is epoch mutex -> registry mutex
// (publish is called under the epoch mutex; flushes take only the registry
// mutex).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "daemon/slo.hpp"
#include "proto/wire.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/timeseries.hpp"

namespace surfos::daemon {

/// Wire-stable subscription topics (kSubTopic tag): append only.
enum class SubTopic : std::uint8_t {
  kMetrics = 1,  ///< Delta-encoded counter/gauge changes per interval.
  kTraces = 2,   ///< New flight-recorder events since the last event.
  kHealth = 3,   ///< Per-site SLO watchdog verdicts.
};

const char* sub_topic_name(SubTopic topic) noexcept;
/// Parses "metrics" / "traces" / "health" (CLI spelling). 0 on no match.
std::uint8_t parse_sub_topic(const std::string& name) noexcept;

struct SubscriptionSpec {
  SubTopic topic = SubTopic::kMetrics;
  std::uint32_t interval = 1;  ///< Epochs between events (clamped >= 1).
  std::string site_filter;     ///< Health topic: only this site.
  std::string prefix;          ///< Metrics/traces: only names with prefix.
};

/// Nested-record encoders shared by the event publisher, kStatusReply, and
/// the paginated kTraceChunk (one wire schema, three carriers).
void put_site_health(proto::TlvWriter& w, std::uint16_t outer_tag,
                     const SiteHealth& health);
void put_trace_event(proto::TlvWriter& w, std::uint16_t outer_tag,
                     const telemetry::TraceEvent& event);

struct SubscriptionStats {
  std::uint64_t subscriptions = 0;  ///< Live subscriptions, all connections.
  std::uint64_t connections = 0;
  std::uint64_t published = 0;  ///< Event frames ever enqueued.
  std::uint64_t dropped = 0;    ///< Event frames dropped before delivery.
};

class SubscriptionRegistry {
 public:
  /// Replies outstanding beyond this many bytes mean the peer stopped
  /// reading: the connection is declared dead at the next flush.
  static constexpr std::size_t kMaxOutboxBytes = 8u << 20;

  // --- connection lifecycle (server thread) ---
  void add_connection(int fd);
  void drop_connection(int fd);

  // --- subscription control (request handlers, under the epoch mutex) ---
  /// Registers a subscription on `fd`; returns its id.
  Result<std::uint64_t> subscribe(int fd, SubscriptionSpec spec);
  Result<void> unsubscribe(int fd, std::uint64_t sub_id);

  // --- output path ---
  /// Appends an encoded reply frame (never dropped).
  void enqueue_reply(int fd, std::vector<std::uint8_t> bytes);
  /// True when the connection has unsent bytes (drives POLLOUT interest).
  bool has_output(int fd) const;
  /// Writes as much queued output as the socket accepts (non-blocking).
  /// Returns false when the connection is dead (fatal write error or the
  /// reply backlog exceeded kMaxOutboxBytes) and must be closed.
  bool flush_to_fd(int fd);
  /// Drains every queued frame without a socket (tests and benches drive
  /// the registry directly). Partial frames are returned whole.
  std::vector<std::vector<std::uint8_t>> take_output(int fd);

  // --- publication (ticker thread, under the epoch mutex) ---
  struct EpochContext {
    std::uint64_t epoch = 0;
    const telemetry::Timeseries* series = nullptr;
    const std::vector<SiteHealth>* health = nullptr;
    /// Sorted recorder events; nullptr when no traces subscriber exists
    /// (the daemon skips the copy entirely).
    const std::vector<telemetry::TraceEvent>* trace_events = nullptr;
  };
  /// Encodes and enqueues one kEvent frame per due subscription,
  /// applying the bounded-outbox drop policy. Enqueue-only: never blocks,
  /// never touches a socket.
  void publish(const EpochContext& ctx);

  /// True when any live subscription wants the traces topic (lets the
  /// daemon skip the recorder copy otherwise).
  bool wants_traces() const;

  SubscriptionStats stats() const;

 private:
  struct Subscription {
    std::uint64_t id = 0;
    SubscriptionSpec spec;
    std::uint64_t last_pub_epoch = 0;  ///< 0 = never published.
    std::uint64_t anchor_epoch = 0;    ///< Metrics delta anchor (0 = baseline).
    bool needs_baseline = true;
    std::uint64_t seq = 0;
    std::uint64_t dropped = 0;    ///< Event frames dropped for this sub.
    std::uint64_t published = 0;  ///< Event frames enqueued for this sub.
    std::uint64_t trace_ts = 0;   ///< Traces cursor (last delivered event).
    std::uint64_t trace_span = 0;
  };

  struct Outgoing {
    std::vector<std::uint8_t> bytes;
    std::uint64_t sub_id = 0;  ///< 0 = reply frame (never dropped).
  };

  struct Connection {
    std::deque<Outgoing> outbox;
    std::size_t front_offset = 0;  ///< Bytes of outbox.front() already sent.
    std::size_t total_bytes = 0;
    bool dead = false;
    std::map<std::uint64_t, Subscription> subs;
  };

  /// Enqueues one event frame under the drop-oldest bound. Caller holds mu_.
  void enqueue_event(Connection& conn, Subscription& sub,
                     std::vector<std::uint8_t> bytes, std::size_t outbox_cap);

  mutable std::mutex mu_;
  std::map<int, Connection> conns_;
  std::uint64_t next_sub_id_ = 1;
  std::uint64_t published_total_ = 0;
  std::uint64_t dropped_total_ = 0;
};

}  // namespace surfos::daemon
