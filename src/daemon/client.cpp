#include "daemon/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "telemetry/trace.hpp"

namespace surfos::daemon {

Result<Client> Client::connect(const std::string& socket_path) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "socket path too long: " + socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(ErrorCode::kIoError,
                      std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    return make_error(ErrorCode::kIoError,
                      "connect " + socket_path + ": " + what);
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      seq_(other.seq_),
      buf_(std::move(other.buf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    seq_ = other.seq_;
    buf_ = std::move(other.buf_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::uint64_t> Client::send(proto::MsgType type,
                                   std::span<const std::uint8_t> payload,
                                   std::uint64_t trace_id) {
  if (fd_ < 0) return make_error(ErrorCode::kUnavailable, "not connected");
  proto::WireFrame request;
  request.type = type;
  request.trace_id =
      trace_id != 0
          ? trace_id
          : telemetry::make_trace_id(telemetry::trace_domain("surfos.client"),
                                     ++seq_);
  request.payload.assign(payload.begin(), payload.end());
  const auto encoded = proto::encode_frame(request);
  if (!encoded.ok()) return encoded.error();

  std::size_t at = 0;
  while (at < encoded.value().size()) {
    const ssize_t n =
        ::write(fd_, encoded.value().data() + at, encoded.value().size() - at);
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error(ErrorCode::kIoError,
                        std::string("write: ") + std::strerror(errno));
    }
    at += static_cast<std::size_t>(n);
  }
  return request.trace_id;
}

Result<proto::WireFrame> Client::recv() {
  if (fd_ < 0) return make_error(ErrorCode::kUnavailable, "not connected");
  while (true) {
    const proto::FrameDecode decode = proto::try_decode_frame(buf_);
    if (decode.frame) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(decode.consumed));
      return *decode.frame;
    }
    if (decode.error) return *decode.error;
    std::uint8_t chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error(ErrorCode::kIoError,
                        std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      return make_error(ErrorCode::kIoError,
                        "daemon closed the connection mid-reply");
    }
    buf_.insert(buf_.end(), chunk, chunk + n);
  }
}

Result<proto::WireFrame> Client::call(proto::MsgType type,
                                      std::span<const std::uint8_t> payload,
                                      std::uint64_t trace_id) {
  const auto sent = send(type, payload, trace_id);
  if (!sent.ok()) return sent.error();
  while (true) {
    auto frame = recv();
    if (!frame.ok()) return frame.error();
    // Pushed events are asynchronous and can interleave with the reply on
    // a subscribed connection; they are never the answer to a request.
    if (frame.value().type == proto::MsgType::kEvent) continue;
    if (frame.value().trace_id != sent.value()) {
      return make_error(ErrorCode::kInternal,
                        "reply trace id does not match request");
    }
    return frame;
  }
}

}  // namespace surfos::daemon
