// surfosd: the long-running SurfOS control daemon (ROADMAP item 1).
//
// Owns a Fleet (one SurfOS per site, each over a DynamicEnvironment with a
// moving human blocker), a ServiceBroker per site, and two threads:
//
//   - the TICKER runs continuous control epochs: advance the simulated
//     clock, move the blockers (rebuild + re-plan on motion), drain the
//     PR 7 admission queue, step every site, escalate unsatisfied apps, and
//     serialize the FleetReport for get_metrics;
//   - the SERVER poll()s a Unix-domain socket and speaks the versioned TLV
//     protocol (proto/wire.hpp). Every request is handled under a
//     TraceScope of the request frame's trace id, and every reply echoes
//     it — the admit->applied trace join extends across the process
//     boundary.
//
// Both threads share state under one mutex; epochs are short (tens of ms at
// daemon scale) so request latency stays bounded.
//
// Crash/restart drill: SIGTERM (tools/surfosd.cpp) calls save_snapshot();
// a restarted daemon load_snapshot()s, re-creates sessions under their
// original trace ids, re-submits queued demands through admission, and
// serves the pre-restart FleetReport bytes verbatim until its first epoch.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/fleet.hpp"
#include "core/status.hpp"
#include "daemon/slo.hpp"
#include "daemon/subscription.hpp"
#include "em/antenna.hpp"
#include "proto/wire.hpp"
#include "sim/dynamics.hpp"
#include "telemetry/timeseries.hpp"

namespace surfos::daemon {

struct DaemonOptions {
  std::string socket_path;    ///< Unix-domain socket to serve on.
  std::string snapshot_path;  ///< Where save_snapshot() writes.
  std::size_t sites = 1;      ///< Fleet size ("site0", "site1", ...).
  std::size_t grid_n = 3;     ///< Coverage-grid resolution per site.
  /// Control-epoch period in wall milliseconds; 0 = SURFOS_EPOCH_MS knob
  /// (default 20). The simulated clock advances by the same amount.
  std::uint64_t epoch_ms = 0;
  /// Run epochs on the background ticker thread. Tests turn this off and
  /// drive run_epoch() by hand for determinism.
  bool ticker = true;
};

struct DaemonStats {
  std::uint64_t epochs = 0;
  std::uint64_t requests = 0;
  std::uint64_t malformed = 0;      ///< Rejected frames (all close-worthy causes).
  std::uint64_t env_rebuilds = 0;   ///< Blocker motion forced a re-plan.
  double last_epoch_ms = 0.0;       ///< Wall time of the last epoch.
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and starts the server (and, unless options.ticker is
  /// false, the ticker). kIoError when the socket cannot be bound.
  Result<void> start();
  /// Stops threads and closes the socket. Idempotent.
  void stop();
  bool running() const noexcept { return running_.load(); }
  /// Blocks until stop() (a shutdown request or signal handler).
  void wait();

  /// One control epoch (see file comment). The ticker calls this; tests
  /// call it directly with options.ticker = false.
  void run_epoch();

  Result<void> save_snapshot();
  /// Restores sessions/queue/endpoints/trace state from snapshot_path.
  /// Call before start(), on a freshly built daemon.
  Result<void> load_snapshot();

  /// Full request dispatch: one request frame in, one reply frame out (the
  /// reply always echoes the request's trace id). Public so tests and the
  /// loopback bench can exercise the protocol without a socket.
  /// `client_fd` identifies the serving connection for subscription
  /// requests; -1 (loopback callers) makes kSubscribe answer kUnavailable.
  proto::WireFrame handle_request(const proto::WireFrame& request,
                                  int client_fd = -1);

  DaemonStats stats() const;
  const DaemonOptions& options() const noexcept { return options_; }
  /// The serialized last FleetReport (what get_metrics serves).
  std::vector<std::uint8_t> last_report_wire() const;

  /// The SLO watchdog's verdicts from the last completed epoch.
  std::vector<SiteHealth> health() const;
  /// Live subscription/outbox accounting (published / dropped events).
  SubscriptionStats subscription_stats() const { return subs_.stats(); }
  /// The streaming registry itself — tests and benches enqueue/drain
  /// directly through it.
  SubscriptionRegistry& subscriptions() noexcept { return subs_; }
  /// The per-epoch metric time-series (guarded by the epoch mutex; callers
  /// outside the daemon's own threads should prefer the wire protocol).
  const telemetry::Timeseries& timeseries() const noexcept { return series_; }

 private:
  struct Site {
    std::string id;
    std::unique_ptr<em::AntennaPattern> antenna;
    std::unique_ptr<sim::DynamicEnvironment> world;
    SurfOS* os = nullptr;  ///< Owned by fleet_.
    std::set<std::string> auto_endpoints;  ///< Registered on demand.
  };

  void build_world();
  Site* find_site_entry(const std::string& site_id);
  /// Registers an unknown endpoint at a deterministic in-room position
  /// derived from its name (the "arriving endpoints" path).
  void ensure_endpoint(Site& site, const std::string& endpoint_id);
  /// Deregisters auto-registered endpoints no session references anymore
  /// (the "departing endpoints" path; runs at the end of every epoch).
  void gc_endpoints(Site& site);

  // Per-command handlers; all run under mu_ with the request TraceScope.
  proto::WireFrame handle_hello(const proto::WireFrame& request);
  proto::WireFrame handle_submit(const proto::WireFrame& request);
  proto::WireFrame handle_stop_resume(const proto::WireFrame& request,
                                      bool resume);
  proto::WireFrame handle_status(const proto::WireFrame& request);
  proto::WireFrame handle_metrics(const proto::WireFrame& request);
  proto::WireFrame handle_traces(const proto::WireFrame& request);
  proto::WireFrame handle_snapshot(const proto::WireFrame& request);
  proto::WireFrame handle_restore(const proto::WireFrame& request);
  proto::WireFrame handle_set_knob(const proto::WireFrame& request);
  proto::WireFrame handle_get_knobs(const proto::WireFrame& request);
  proto::WireFrame handle_subscribe(const proto::WireFrame& request,
                                    int client_fd);
  proto::WireFrame handle_unsubscribe(const proto::WireFrame& request,
                                      int client_fd);

  /// Applies a parsed snapshot under mu_ (shared by load_snapshot and the
  /// wire-level kRestore).
  Result<void> apply_snapshot(const struct DaemonSnapshot& snapshot);

  void ticker_main();
  void server_main();
  /// Drains complete frames from a connection buffer; returns false when
  /// the connection must close (fatal frame error).
  bool service_connection(int fd, std::vector<std::uint8_t>& buffer);

  DaemonOptions options_;
  em::LinkBudget budget_;

  mutable std::mutex mu_;
  Fleet fleet_;
  std::vector<Site> sites_;
  std::vector<std::uint8_t> last_report_wire_;
  DaemonStats stats_;
  std::uint64_t sim_now_us_ = 0;

  // Streaming observability (all under mu_ except subs_, which has its own
  // lock; lock order is mu_ -> subs_ internal mutex).
  telemetry::Timeseries series_;
  SloWatchdog watchdog_;
  std::vector<SiteHealth> latest_health_;
  /// (site, app) -> submit wall time, resolved into the admit->applied
  /// histogram when the session is first seen running.
  std::map<std::pair<std::string, std::string>,
           std::chrono::steady_clock::time_point>
      pending_admit_;
  SubscriptionRegistry subs_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread ticker_;
  std::thread server_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
};

}  // namespace surfos::daemon
