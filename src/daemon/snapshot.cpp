#include "daemon/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "proto/serialize.hpp"
#include "proto/wire.hpp"

namespace surfos::daemon {

namespace {

namespace tag {
constexpr std::uint16_t kVersion = 1;

// DaemonSnapshot
constexpr std::uint16_t kSimNowUs = 2;
constexpr std::uint16_t kEpochs = 3;
constexpr std::uint16_t kSession = 4;   // repeated, nested SessionRecord
constexpr std::uint16_t kQueued = 5;    // repeated, nested QueuedRecord
constexpr std::uint16_t kSeq = 6;       // repeated, nested SeqRecord
constexpr std::uint16_t kEndpoint = 7;  // repeated, nested EndpointRecord
constexpr std::uint16_t kLastReport = 8;

// SessionRecord / QueuedRecord / SeqRecord / EndpointRecord
constexpr std::uint16_t kSiteId = 2;
constexpr std::uint16_t kAppId = 3;
constexpr std::uint16_t kRunning = 4;
constexpr std::uint16_t kTraceId = 5;
constexpr std::uint16_t kDemand = 6;  // nested AppDemand
constexpr std::uint16_t kPriority = 7;
constexpr std::uint16_t kTraceSeq = 3;
constexpr std::uint16_t kEndpointId = 3;
constexpr std::uint16_t kKind = 4;
constexpr std::uint16_t kPosX = 5;
constexpr std::uint16_t kPosY = 6;
constexpr std::uint16_t kPosZ = 7;
}  // namespace tag

Error malformed(const char* what) {
  return make_error(ErrorCode::kMalformedFrame, what);
}

std::uint16_t take_version(const proto::Tlv& tlv) {
  if (tlv.tag != tag::kVersion) return 0;
  return proto::tlv_u16(tlv).value_or(0);
}

void session_to_wire(const SessionRecord& record,
                     std::vector<std::uint8_t>& out) {
  proto::TlvWriter w(out);
  w.put_u16(tag::kVersion, proto::kStructVersion);
  w.put_string(tag::kSiteId, record.site_id);
  w.put_string(tag::kAppId, record.app_id);
  w.put_u8(tag::kRunning, record.running ? 1 : 0);
  w.put_u64(tag::kTraceId, record.trace_id);
  w.put_bytes(tag::kDemand, proto::to_wire(record.demand));
}

Result<void> session_from_wire(std::span<const std::uint8_t> bytes,
                               SessionRecord& out) {
  proto::TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("SessionRecord: missing version");
  }
  while (const auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kSiteId: out.site_id = proto::tlv_string(*tlv); break;
      case tag::kAppId: out.app_id = proto::tlv_string(*tlv); break;
      case tag::kRunning: {
        const auto v = proto::tlv_u8(*tlv);
        if (!v) return malformed("SessionRecord: running");
        out.running = *v != 0;
        break;
      }
      case tag::kTraceId: {
        const auto v = proto::tlv_u64(*tlv);
        if (!v) return malformed("SessionRecord: trace id");
        out.trace_id = *v;
        break;
      }
      case tag::kDemand: {
        if (auto parsed = proto::from_wire(tlv->value, out.demand);
            !parsed.ok()) {
          return parsed;
        }
        break;
      }
      default: break;  // unknown tag: skip
    }
  }
  if (r.truncated()) return malformed("SessionRecord: truncated");
  return ok_result();
}

void queued_to_wire(const QueuedRecord& record,
                    std::vector<std::uint8_t>& out) {
  proto::TlvWriter w(out);
  w.put_u16(tag::kVersion, proto::kStructVersion);
  w.put_string(tag::kSiteId, record.site_id);
  w.put_string(tag::kAppId, record.app_id);
  w.put_u64(tag::kPriority, record.priority);
  w.put_bytes(tag::kDemand, proto::to_wire(record.demand));
}

Result<void> queued_from_wire(std::span<const std::uint8_t> bytes,
                              QueuedRecord& out) {
  proto::TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("QueuedRecord: missing version");
  }
  while (const auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kSiteId: out.site_id = proto::tlv_string(*tlv); break;
      case tag::kAppId: out.app_id = proto::tlv_string(*tlv); break;
      case tag::kPriority: {
        const auto v = proto::tlv_u64(*tlv);
        if (!v) return malformed("QueuedRecord: priority");
        out.priority = *v;
        break;
      }
      case tag::kDemand: {
        if (auto parsed = proto::from_wire(tlv->value, out.demand);
            !parsed.ok()) {
          return parsed;
        }
        break;
      }
      default: break;
    }
  }
  if (r.truncated()) return malformed("QueuedRecord: truncated");
  return ok_result();
}

void seq_to_wire(const SeqRecord& record, std::vector<std::uint8_t>& out) {
  proto::TlvWriter w(out);
  w.put_u16(tag::kVersion, proto::kStructVersion);
  w.put_string(tag::kSiteId, record.site_id);
  w.put_u64(tag::kTraceSeq, record.trace_seq);
}

Result<void> seq_from_wire(std::span<const std::uint8_t> bytes,
                           SeqRecord& out) {
  proto::TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("SeqRecord: missing version");
  }
  while (const auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kSiteId: out.site_id = proto::tlv_string(*tlv); break;
      case tag::kTraceSeq: {
        const auto v = proto::tlv_u64(*tlv);
        if (!v) return malformed("SeqRecord: trace seq");
        out.trace_seq = *v;
        break;
      }
      default: break;
    }
  }
  if (r.truncated()) return malformed("SeqRecord: truncated");
  return ok_result();
}

void endpoint_to_wire(const EndpointRecord& record,
                      std::vector<std::uint8_t>& out) {
  proto::TlvWriter w(out);
  w.put_u16(tag::kVersion, proto::kStructVersion);
  w.put_string(tag::kSiteId, record.site_id);
  w.put_string(tag::kEndpointId, record.endpoint_id);
  w.put_u8(tag::kKind, record.kind);
  w.put_f64(tag::kPosX, record.x);
  w.put_f64(tag::kPosY, record.y);
  w.put_f64(tag::kPosZ, record.z);
}

Result<void> endpoint_from_wire(std::span<const std::uint8_t> bytes,
                                EndpointRecord& out) {
  proto::TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("EndpointRecord: missing version");
  }
  while (const auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kSiteId: out.site_id = proto::tlv_string(*tlv); break;
      case tag::kEndpointId:
        out.endpoint_id = proto::tlv_string(*tlv);
        break;
      case tag::kKind: {
        const auto v = proto::tlv_u8(*tlv);
        if (!v) return malformed("EndpointRecord: kind");
        out.kind = *v;
        break;
      }
      case tag::kPosX:
      case tag::kPosY:
      case tag::kPosZ: {
        const auto v = proto::tlv_f64(*tlv);
        if (!v) return malformed("EndpointRecord: position");
        (tlv->tag == tag::kPosX ? out.x
                                : tlv->tag == tag::kPosY ? out.y : out.z) = *v;
        break;
      }
      default: break;
    }
  }
  if (r.truncated()) return malformed("EndpointRecord: truncated");
  return ok_result();
}

template <typename Record, typename Encode>
void put_nested(proto::TlvWriter& w, std::uint16_t tag_id,
                const Record& record, Encode encode) {
  std::vector<std::uint8_t> nested;
  encode(record, nested);
  w.put_bytes(tag_id, nested);
}

}  // namespace

void to_wire(const DaemonSnapshot& snapshot, std::vector<std::uint8_t>& out) {
  proto::TlvWriter w(out);
  w.put_u16(tag::kVersion, proto::kStructVersion);
  w.put_u64(tag::kSimNowUs, snapshot.sim_now_us);
  w.put_u64(tag::kEpochs, snapshot.epochs);
  for (const auto& s : snapshot.sessions) {
    put_nested(w, tag::kSession, s, session_to_wire);
  }
  for (const auto& q : snapshot.queued) {
    put_nested(w, tag::kQueued, q, queued_to_wire);
  }
  for (const auto& s : snapshot.trace_seqs) {
    put_nested(w, tag::kSeq, s, seq_to_wire);
  }
  for (const auto& e : snapshot.endpoints) {
    put_nested(w, tag::kEndpoint, e, endpoint_to_wire);
  }
  w.put_bytes(tag::kLastReport, snapshot.last_report_wire);
}

std::vector<std::uint8_t> to_wire(const DaemonSnapshot& snapshot) {
  std::vector<std::uint8_t> out;
  to_wire(snapshot, out);
  return out;
}

Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       DaemonSnapshot& out) {
  proto::TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("DaemonSnapshot: missing version");
  }
  while (const auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kSimNowUs: {
        const auto v = proto::tlv_u64(*tlv);
        if (!v) return malformed("DaemonSnapshot: sim clock");
        out.sim_now_us = *v;
        break;
      }
      case tag::kEpochs: {
        const auto v = proto::tlv_u64(*tlv);
        if (!v) return malformed("DaemonSnapshot: epochs");
        out.epochs = *v;
        break;
      }
      case tag::kSession: {
        SessionRecord record;
        if (auto parsed = session_from_wire(tlv->value, record); !parsed.ok()) {
          return parsed;
        }
        out.sessions.push_back(std::move(record));
        break;
      }
      case tag::kQueued: {
        QueuedRecord record;
        if (auto parsed = queued_from_wire(tlv->value, record); !parsed.ok()) {
          return parsed;
        }
        out.queued.push_back(std::move(record));
        break;
      }
      case tag::kSeq: {
        SeqRecord record;
        if (auto parsed = seq_from_wire(tlv->value, record); !parsed.ok()) {
          return parsed;
        }
        out.trace_seqs.push_back(std::move(record));
        break;
      }
      case tag::kEndpoint: {
        EndpointRecord record;
        if (auto parsed = endpoint_from_wire(tlv->value, record);
            !parsed.ok()) {
          return parsed;
        }
        out.endpoints.push_back(std::move(record));
        break;
      }
      case tag::kLastReport:
        out.last_report_wire.assign(tlv->value.begin(), tlv->value.end());
        break;
      default: break;  // forward compat: skip unknown tags
    }
  }
  if (r.truncated()) return malformed("DaemonSnapshot: truncated");
  return ok_result();
}

Result<void> save_snapshot_file(const DaemonSnapshot& snapshot,
                                const std::string& path) {
  const std::vector<std::uint8_t> bytes = to_wire(snapshot);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return make_error(ErrorCode::kIoError,
                      "snapshot: cannot open " + tmp + ": " +
                          std::strerror(errno));
  }
  const std::size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return make_error(ErrorCode::kIoError, "snapshot: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return make_error(ErrorCode::kIoError,
                      "snapshot: rename to " + path + " failed: " +
                          std::strerror(errno));
  }
  return ok_result();
}

Result<DaemonSnapshot> load_snapshot_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return make_error(ErrorCode::kIoError,
                      "snapshot: cannot open " + path + ": " +
                          std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return make_error(ErrorCode::kIoError, "snapshot: read of " + path +
                                               " failed");
  }
  DaemonSnapshot snapshot;
  if (auto parsed = from_wire(bytes, snapshot); !parsed.ok()) {
    return parsed.error();
  }
  return snapshot;
}

}  // namespace surfos::daemon
