// Payload TLV tags of the surfosd request/reply messages (proto/wire.hpp
// frames them; these are the per-message tag namespaces inside the payload).
// Shared by the daemon's handlers and the CLI clients. Wire-stable: append
// only, never renumber; readers skip unknown tags.
#pragma once

#include <cstdint>

namespace surfos::daemon::tag {

// Requests (kSubmitDemand / kStopApp / kResumeApp / kGetStatus): which app,
// where, what demand.
inline constexpr std::uint16_t kAppId = 2;
inline constexpr std::uint16_t kSiteId = 3;
inline constexpr std::uint16_t kDemand = 4;  ///< Nested AppDemand TLVs.
inline constexpr std::uint16_t kPriority = 5;

// kError replies.
inline constexpr std::uint16_t kErrorCode = 2;
inline constexpr std::uint16_t kErrorMessage = 3;

// kHello / kHelloAck.
inline constexpr std::uint16_t kMaxVersion = 2;
inline constexpr std::uint16_t kChosenVersion = 2;
inline constexpr std::uint16_t kServerName = 3;

// kStatusReply.
inline constexpr std::uint16_t kSession = 2;  ///< Repeated, nested (below).
inline constexpr std::uint16_t kQueueDepth = 3;
inline constexpr std::uint16_t kStatusEpochs = 4;
inline constexpr std::uint16_t kSiteHealth = 5;   ///< Repeated, nested (below).
inline constexpr std::uint16_t kFleetHealth = 6;  ///< u8 SloState (worst site).
// ... nested session record:
inline constexpr std::uint16_t kSessionApp = 2;
inline constexpr std::uint16_t kSessionSite = 3;
inline constexpr std::uint16_t kSessionRunning = 4;
inline constexpr std::uint16_t kSessionTrace = 5;
inline constexpr std::uint16_t kSessionSatisfied = 6;
inline constexpr std::uint16_t kSessionTasksTotal = 7;
inline constexpr std::uint16_t kSessionTasksMet = 8;

// kMetricsReply.
inline constexpr std::uint16_t kReport = 2;  ///< Serialized FleetReport.
inline constexpr std::uint16_t kEpochs = 3;
inline constexpr std::uint16_t kRebuilds = 4;
inline constexpr std::uint16_t kLastEpochMs = 5;
inline constexpr std::uint16_t kRequests = 6;
// Precompute-store snapshot (appended in PR 10; old clients skip unknown
// tags, old servers simply omit them).
inline constexpr std::uint16_t kPrecomputeHits = 7;       ///< u64.
inline constexpr std::uint16_t kPrecomputeMisses = 8;     ///< u64.
inline constexpr std::uint16_t kPrecomputeBytes = 9;      ///< u64 resident.
inline constexpr std::uint16_t kPrecomputeEvictions = 10; ///< u64.

// kStreamTraces request: cursor-based pagination (see proto/wire.hpp for
// the semantics). A request with none of these tags gets the legacy
// one-shot kTraceJson reply.
inline constexpr std::uint16_t kTraceCursorTs = 2;    ///< u64 ts_ns.
inline constexpr std::uint16_t kTraceCursorSpan = 3;  ///< u64 span id.
inline constexpr std::uint16_t kTraceLimit = 4;       ///< u32 page size.

// kTraceChunk.
inline constexpr std::uint16_t kTraceJson = 2;
inline constexpr std::uint16_t kEventCount = 3;
inline constexpr std::uint16_t kTraceEvent = 4;   ///< Repeated, nested (below).
inline constexpr std::uint16_t kTraceNextTs = 5;  ///< Cursor for next page.
inline constexpr std::uint16_t kTraceNextSpan = 6;
inline constexpr std::uint16_t kTraceDone = 7;  ///< u8: 1 = buffer drained.
// ... nested trace-event record (kTraceChunk pages and kEvent trace topic):
inline constexpr std::uint16_t kEvTs = 2;
inline constexpr std::uint16_t kEvDur = 3;
inline constexpr std::uint16_t kEvTrace = 4;
inline constexpr std::uint16_t kEvSpan = 5;
inline constexpr std::uint16_t kEvParent = 6;
inline constexpr std::uint16_t kEvName = 7;
inline constexpr std::uint16_t kEvKind = 8;  ///< u8 TraceEvent::Kind.
inline constexpr std::uint16_t kEvArg = 9;
inline constexpr std::uint16_t kEvTid = 10;

// kSnapshot success payload.
inline constexpr std::uint16_t kPath = 2;
inline constexpr std::uint16_t kBytes = 3;

// kSetKnob request / kKnobsReply.
inline constexpr std::uint16_t kKnobName = 2;
inline constexpr std::uint16_t kKnobValue = 3;
inline constexpr std::uint16_t kKnob = 2;  ///< Repeated nested in kKnobsReply.
inline constexpr std::uint16_t kKnobHasValue = 4;
inline constexpr std::uint16_t kKnobDoc = 5;

// kSubscribe / kSubscribeAck / kUnsubscribe / kEvent (one shared
// subscription namespace; kEvent frames always carry kSubId + kSubTopic so
// a client multiplexing several subscriptions on one connection can route).
inline constexpr std::uint16_t kSubTopic = 2;     ///< u8 SubTopic.
inline constexpr std::uint16_t kSubInterval = 3;  ///< u32 epochs between events.
inline constexpr std::uint16_t kSubSite = 4;      ///< Site filter (health).
inline constexpr std::uint16_t kSubPrefix = 5;    ///< Name-prefix filter.
inline constexpr std::uint16_t kSubId = 6;        ///< u64 subscription id.
inline constexpr std::uint16_t kEventEpoch = 7;   ///< Epoch of this event.
inline constexpr std::uint16_t kEventSeq = 8;     ///< Per-sub sequence number.
inline constexpr std::uint16_t kDroppedEvents = 9;  ///< Cumulative drops.
inline constexpr std::uint16_t kEventBaseline = 10;  ///< u8: full resync.
inline constexpr std::uint16_t kEventEpochMs = 11;   ///< f64 epoch wall ms.
inline constexpr std::uint16_t kEventFlushUs = 12;   ///< f64 HAL actuate us.
inline constexpr std::uint16_t kEventCounter = 13;  ///< Repeated, nested.
inline constexpr std::uint16_t kEventGauge = 14;    ///< Repeated, nested.
inline constexpr std::uint16_t kEventTrace = 15;  ///< Nested trace-event rec.
inline constexpr std::uint16_t kEventSiteHealth = 16;  ///< Nested (below).
// ... nested metric record (kEventCounter / kEventGauge):
inline constexpr std::uint16_t kMetricName = 2;
inline constexpr std::uint16_t kMetricU64 = 3;  ///< Counter value.
inline constexpr std::uint16_t kMetricF64 = 4;  ///< Gauge value (bit pattern).
// ... nested site-health record (kEventSiteHealth and kStatusReply's
// kSiteHealth):
inline constexpr std::uint16_t kHealthSite = 2;
inline constexpr std::uint16_t kHealthState = 3;   ///< u8 SloState.
inline constexpr std::uint16_t kHealthEpochs = 4;  ///< Epochs in this state.
inline constexpr std::uint16_t kHealthReason = 5;

}  // namespace surfos::daemon::tag
