// Payload TLV tags of the surfosd request/reply messages (proto/wire.hpp
// frames them; these are the per-message tag namespaces inside the payload).
// Shared by the daemon's handlers and the CLI clients. Wire-stable: append
// only, never renumber; readers skip unknown tags.
#pragma once

#include <cstdint>

namespace surfos::daemon::tag {

// Requests (kSubmitDemand / kStopApp / kResumeApp / kGetStatus): which app,
// where, what demand.
inline constexpr std::uint16_t kAppId = 2;
inline constexpr std::uint16_t kSiteId = 3;
inline constexpr std::uint16_t kDemand = 4;  ///< Nested AppDemand TLVs.
inline constexpr std::uint16_t kPriority = 5;

// kError replies.
inline constexpr std::uint16_t kErrorCode = 2;
inline constexpr std::uint16_t kErrorMessage = 3;

// kHello / kHelloAck.
inline constexpr std::uint16_t kMaxVersion = 2;
inline constexpr std::uint16_t kChosenVersion = 2;
inline constexpr std::uint16_t kServerName = 3;

// kStatusReply.
inline constexpr std::uint16_t kSession = 2;  ///< Repeated, nested (below).
inline constexpr std::uint16_t kQueueDepth = 3;
inline constexpr std::uint16_t kStatusEpochs = 4;
// ... nested session record:
inline constexpr std::uint16_t kSessionApp = 2;
inline constexpr std::uint16_t kSessionSite = 3;
inline constexpr std::uint16_t kSessionRunning = 4;
inline constexpr std::uint16_t kSessionTrace = 5;
inline constexpr std::uint16_t kSessionSatisfied = 6;
inline constexpr std::uint16_t kSessionTasksTotal = 7;
inline constexpr std::uint16_t kSessionTasksMet = 8;

// kMetricsReply.
inline constexpr std::uint16_t kReport = 2;  ///< Serialized FleetReport.
inline constexpr std::uint16_t kEpochs = 3;
inline constexpr std::uint16_t kRebuilds = 4;
inline constexpr std::uint16_t kLastEpochMs = 5;
inline constexpr std::uint16_t kRequests = 6;

// kTraceChunk.
inline constexpr std::uint16_t kTraceJson = 2;
inline constexpr std::uint16_t kEventCount = 3;

// kSnapshot success payload.
inline constexpr std::uint16_t kPath = 2;
inline constexpr std::uint16_t kBytes = 3;

// kSetKnob request / kKnobsReply.
inline constexpr std::uint16_t kKnobName = 2;
inline constexpr std::uint16_t kKnobValue = 3;
inline constexpr std::uint16_t kKnob = 2;  ///< Repeated nested in kKnobsReply.
inline constexpr std::uint16_t kKnobHasValue = 4;
inline constexpr std::uint16_t kKnobDoc = 5;

}  // namespace surfos::daemon::tag
