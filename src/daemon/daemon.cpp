#include "daemon/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <optional>

#include "broker/admission.hpp"
#include "core/config.hpp"
#include "daemon/snapshot.hpp"
#include "daemon/tags.hpp"
#include "em/material.hpp"
#include "proto/serialize.hpp"
#include "sim/precompute_store.hpp"
#include "surface/catalog.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/log.hpp"

namespace surfos::daemon {

namespace {

constexpr const char* kLog = "surfosd";

/// Stable string hash (FNV-1a) for deterministic endpoint placement — the
/// same endpoint name lands at the same spot on every run and after every
/// restart (std::hash makes no such promise).
std::uint64_t stable_hash(const std::string& s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

proto::WireFrame reply_frame(proto::MsgType type, std::uint64_t trace_id) {
  proto::WireFrame frame;
  frame.type = type;
  frame.trace_id = trace_id;
  return frame;
}

proto::WireFrame error_reply(std::uint64_t trace_id, const Error& error) {
  proto::WireFrame frame = reply_frame(proto::MsgType::kError, trace_id);
  proto::TlvWriter w(frame.payload);
  w.put_u32(tag::kErrorCode, static_cast<std::uint32_t>(error.code));
  w.put_string(tag::kErrorMessage, error.message);
  return frame;
}

proto::WireFrame error_reply(std::uint64_t trace_id, ErrorCode code,
                             const std::string& message) {
  return error_reply(trace_id, Error{code, message});
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  if (options_.sites == 0) options_.sites = 1;
  if (options_.grid_n < 2) options_.grid_n = 2;
  build_world();
}

Daemon::~Daemon() { stop(); }

void Daemon::build_world() {
  // One 4 m room per site with a surface on the east wall, the AP high in
  // the west, and a person walking a diagonal track — the dynamic world the
  // ticker advances every epoch.
  budget_ = em::LinkBudget{10.0, em::band_bandwidth(em::Band::k28GHz), 7.0};
  const surface::Catalog catalog = surface::Catalog::standard();
  const surface::CatalogEntry* design = catalog.find("NR-Surface");

  sites_.resize(options_.sites);
  for (std::size_t i = 0; i < options_.sites; ++i) {
    Site& site = sites_[i];
    site.id = "site" + std::to_string(i);

    em::MaterialDb materials = em::MaterialDb::standard();
    const int body = sim::add_body_material(materials);
    site.world = std::make_unique<sim::DynamicEnvironment>(
        std::move(materials), [](sim::Environment& env) {
          constexpr double kH = 3.0;
          env.add_vertical_wall(0.0, 4.0, 4.0, 4.0, 0.0, kH, em::kMatConcrete);
          env.add_vertical_wall(0.0, 0.0, 0.0, 4.0, 0.0, kH, em::kMatConcrete);
          env.add_vertical_wall(4.0, 0.0, 4.0, 4.0, 0.0, kH, em::kMatConcrete);
          env.add_vertical_wall(0.0, 0.0, 4.0, 0.0, 0.0, kH, em::kMatConcrete);
          env.add_horizontal_slab(0.0, 4.0, 0.0, 4.0, 0.0, em::kMatFloor);
        });
    sim::MovingBlocker person;
    person.id = "walker";
    person.waypoints = {{0.8, 0.8, 0.0}, {3.2, 3.2, 0.0}};
    person.speed_mps = 0.8;
    person.material_id = body;
    site.world->add_blocker(std::move(person));

    const geom::Frame surface_pose({3.92, 2.0, 1.8}, {-1.0, 0.0, 0.0});
    const geom::Vec3 ap_position{0.4, 2.0, 2.2};
    const geom::Vec3 boresight =
        (surface_pose.origin() - ap_position).normalized();
    site.antenna = std::make_unique<em::SectorAntenna>(boresight, 35.0);

    auto os = std::make_unique<SurfOS>(&site.world->environment(),
                                       sim::TxSpec{ap_position,
                                                   site.antenna.get()},
                                       em::Band::k28GHz, budget_);
    os->install_programmable(*design, surface_pose, 8, 8,
                             site.id + "-wall");
    os->broker().add_region(
        "room", geom::SampleGrid(0.5, 3.5, 0.5, 3.5, 1.0, options_.grid_n,
                                 options_.grid_n));
    site.os = &fleet_.add_site(site.id, std::move(os));
  }
}

Daemon::Site* Daemon::find_site_entry(const std::string& site_id) {
  if (site_id.empty()) return sites_.empty() ? nullptr : &sites_.front();
  for (Site& site : sites_) {
    if (site.id == site_id) return &site;
  }
  return nullptr;
}

void Daemon::ensure_endpoint(Site& site, const std::string& endpoint_id) {
  if (endpoint_id.empty()) return;
  if (site.os->registry().find_endpoint(endpoint_id) != nullptr) return;
  const std::uint64_t h = stable_hash(endpoint_id);
  const double x = 0.6 + static_cast<double>(h % 1024) / 1023.0 * 2.8;
  const double y = 0.6 + static_cast<double>((h >> 10) % 1024) / 1023.0 * 2.8;
  site.os->register_endpoint(endpoint_id, hal::EndpointKind::kClient,
                             {x, y, 1.1});
  site.auto_endpoints.insert(endpoint_id);
  SURFOS_INFO(kLog) << "endpoint " << endpoint_id << " arrived at "
                    << site.id;
}

void Daemon::gc_endpoints(Site& site) {
  for (auto it = site.auto_endpoints.begin();
       it != site.auto_endpoints.end();) {
    bool referenced = false;
    for (const auto& [app_id, session] : site.os->broker().sessions()) {
      if (session.demand.endpoint_id == *it) {
        referenced = true;
        break;
      }
    }
    // Also keep endpoints queued demands still name.
    if (!referenced) {
      for (const auto& queued : site.os->broker().admission().pending()) {
        if (queued.demand.endpoint_id == *it) {
          referenced = true;
          break;
        }
      }
    }
    if (referenced) {
      ++it;
    } else {
      SURFOS_INFO(kLog) << "endpoint " << *it << " departed from " << site.id;
      site.os->registry().remove_endpoint(*it);
      it = site.auto_endpoints.erase(it);
    }
  }
}

void Daemon::run_epoch() {
  const auto wall_start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t epoch_ms =
      options_.epoch_ms != 0 ? options_.epoch_ms
                             : core::knob("SURFOS_EPOCH_MS", 20, 1);
  const std::uint64_t pump_max = core::knob("SURFOS_PUMP_MAX", 8, 1);
  sim_now_us_ += epoch_ms * 1000;

  for (Site& site : sites_) {
    site.os->clock().advance_to(sim_now_us_);
    if (site.world->advance_to(sim_now_us_)) {
      // The rebuild replaced the Environment object; repoint the control
      // plane and drop its cached channels.
      site.os->orchestrator().set_environment(&site.world->environment());
      ++stats_.env_rebuilds;
    }
    site.os->broker().pump_admissions(pump_max);
  }

  const FleetReport report = fleet_.step_all();

  for (Site& site : sites_) {
    site.os->broker().escalate_unsatisfied();
    gc_endpoints(site);
  }

  last_report_wire_ = proto::to_wire(report);
  ++stats_.epochs;

  // Resolve admit->applied latencies: a submitted app first seen running
  // completes its trace in the mergeable histogram. Entries whose app
  // vanished (shed, stopped before admission) are garbage-collected.
  const auto wall_now = std::chrono::steady_clock::now();
  for (auto it = pending_admit_.begin(); it != pending_admit_.end();) {
    const auto& [site_id, app_id] = it->first;
    Site* site = find_site_entry(site_id);
    bool resolved = false;
    bool alive = false;
    if (site != nullptr) {
      const auto& sessions = site->os->broker().sessions();
      if (const auto sit = sessions.find(app_id); sit != sessions.end()) {
        alive = true;
        if (sit->second.running) {
          series_.record_admit_latency_ms(
              std::chrono::duration<double, std::milli>(wall_now - it->second)
                  .count());
          resolved = true;
        }
      } else {
        for (const auto& queued : site->os->broker().admission().pending()) {
          if (queued.app_id == app_id) {
            alive = true;
            break;
          }
        }
      }
    }
    it = resolved || !alive ? pending_admit_.erase(it) : std::next(it);
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(wall_now - wall_start)
          .count();
  stats_.last_epoch_ms = wall_ms;

  // SLO watchdog: one verdict per site, from this epoch's signals.
  const SloThresholds thresholds = SloThresholds::from_knobs();
  auto& metrics = telemetry::MetricsRegistry::instance();
  const std::uint64_t arq_retries =
      metrics.counter("hal.arq.retransmissions").value();
  const std::uint64_t arq_sends = metrics.counter("hal.arq.sends").value();
  latest_health_.clear();
  for (Site& site : sites_) {
    const auto& admission = site.os->broker().admission();
    SloInputs inputs;
    inputs.queue_depth = admission.depth();
    inputs.queue_capacity =
        core::knob("SURFOS_ADMIT_QUEUE", admission.options().capacity, 1);
    inputs.shed_total = admission.stats().shed;
    inputs.arq_retry_total = arq_retries;
    inputs.arq_send_total = arq_sends;
    inputs.epoch_overrun = wall_ms > static_cast<double>(epoch_ms);
    latest_health_.push_back(watchdog_.evaluate(site.id, inputs, thresholds));
  }

  // Record the epoch sample and push events to every due subscriber.
  // Publication only enqueues into bounded outboxes — a stalled reader
  // costs this thread nothing beyond the wake-pipe poke below.
  series_.record(stats_.epochs, metrics.snapshot(), wall_ms,
                 report.trace.actuate_us);
  SubscriptionRegistry::EpochContext ctx;
  ctx.epoch = stats_.epochs;
  ctx.series = &series_;
  ctx.health = &latest_health_;
  std::vector<telemetry::TraceEvent> trace_events;
  if (subs_.wants_traces()) {
    trace_events = telemetry::Recorder::instance().events();
    ctx.trace_events = &trace_events;
  }
  subs_.publish(ctx);
  if (wake_pipe_[1] >= 0 && running_.load()) {
    const char byte = 'p';  // wake poll() so it registers POLLOUT interest
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
}

std::vector<SiteHealth> Daemon::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_health_;
}

// --- Request dispatch --------------------------------------------------------

proto::WireFrame Daemon::handle_request(const proto::WireFrame& request,
                                        int client_fd) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.requests;
  // Resolve the request's causal trace: client-minted id, or daemon-minted
  // for trace-less clients. Everything the handler does — broker calls,
  // flight-recorder spans — runs under this id, and the reply echoes it.
  proto::WireFrame traced = request;
  if (traced.trace_id == 0) {
    traced.trace_id = telemetry::make_trace_id(
        telemetry::trace_domain("surfosd.request"), stats_.requests);
  }
  const telemetry::TraceScope scope({traced.trace_id, 0});
  SURFOS_TRACE_SPAN("surfosd.request");

  switch (traced.type) {
    case proto::MsgType::kHello: return handle_hello(traced);
    case proto::MsgType::kSubmitDemand: return handle_submit(traced);
    case proto::MsgType::kStopApp: return handle_stop_resume(traced, false);
    case proto::MsgType::kResumeApp: return handle_stop_resume(traced, true);
    case proto::MsgType::kGetStatus: return handle_status(traced);
    case proto::MsgType::kGetMetrics: return handle_metrics(traced);
    case proto::MsgType::kStreamTraces: return handle_traces(traced);
    case proto::MsgType::kSnapshot: return handle_snapshot(traced);
    case proto::MsgType::kRestore: return handle_restore(traced);
    case proto::MsgType::kSetKnob: return handle_set_knob(traced);
    case proto::MsgType::kGetKnobs: return handle_get_knobs(traced);
    case proto::MsgType::kSubscribe:
      return handle_subscribe(traced, client_fd);
    case proto::MsgType::kUnsubscribe:
      return handle_unsubscribe(traced, client_fd);
    case proto::MsgType::kShutdown: {
      SURFOS_INFO(kLog) << "shutdown requested over the wire";
      running_.store(false);
      stop_cv_.notify_all();
      if (wake_pipe_[1] >= 0) {
        const char byte = 's';
        (void)!::write(wake_pipe_[1], &byte, 1);
      }
      return reply_frame(proto::MsgType::kOk, traced.trace_id);
    }
    default:
      return error_reply(traced.trace_id, ErrorCode::kUnknownCommand,
                         "not a request message type");
  }
}

proto::WireFrame Daemon::handle_hello(const proto::WireFrame& request) {
  std::uint16_t client_max = proto::kProtoVersion;
  proto::TlvReader r(request.payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kMaxVersion) {
      client_max = proto::tlv_u16(*tlv).value_or(proto::kProtoVersion);
    }
  }
  proto::WireFrame reply =
      reply_frame(proto::MsgType::kHelloAck, request.trace_id);
  proto::TlvWriter w(reply.payload);
  w.put_u16(tag::kChosenVersion,
            std::min<std::uint16_t>(client_max, proto::kProtoVersion));
  w.put_string(tag::kServerName, "surfosd");
  return reply;
}

proto::WireFrame Daemon::handle_submit(const proto::WireFrame& request) {
  std::string app_id;
  std::string site_id;
  broker::AppDemand demand;
  bool have_demand = false;
  std::optional<orch::Priority> priority;
  proto::TlvReader r(request.payload);
  while (const auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kAppId: app_id = proto::tlv_string(*tlv); break;
      case tag::kSiteId: site_id = proto::tlv_string(*tlv); break;
      case tag::kDemand: {
        if (auto parsed = proto::from_wire(tlv->value, demand);
            !parsed.ok()) {
          return error_reply(request.trace_id, parsed.error());
        }
        have_demand = true;
        break;
      }
      case tag::kPriority: {
        if (const auto v = proto::tlv_u64(*tlv)) {
          priority = static_cast<orch::Priority>(*v);
        }
        break;
      }
      default: break;
    }
  }
  if (r.truncated() || app_id.empty() || !have_demand) {
    return error_reply(request.trace_id, ErrorCode::kMalformedFrame,
                       "submit_demand needs app id and demand");
  }
  Site* site = find_site_entry(site_id);
  if (site == nullptr) {
    return error_reply(request.trace_id, ErrorCode::kNotFound,
                       "unknown site: " + site_id);
  }
  ensure_endpoint(*site, demand.endpoint_id);
  if (auto submitted =
          site->os->broker().submit_demand(app_id, std::move(demand),
                                           priority);
      !submitted.ok()) {
    return error_reply(request.trace_id, submitted.error());
  }
  // Start the admit->applied clock: resolved in run_epoch when the session
  // is first observed running.
  pending_admit_[{site->id, app_id}] = std::chrono::steady_clock::now();
  proto::WireFrame reply = reply_frame(proto::MsgType::kOk, request.trace_id);
  proto::TlvWriter w(reply.payload);
  w.put_u64(tag::kQueueDepth, site->os->broker().admission().depth());
  return reply;
}

proto::WireFrame Daemon::handle_stop_resume(const proto::WireFrame& request,
                                            bool resume) {
  std::string app_id;
  std::string site_id;
  proto::TlvReader r(request.payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kAppId) app_id = proto::tlv_string(*tlv);
    if (tlv->tag == tag::kSiteId) site_id = proto::tlv_string(*tlv);
  }
  if (r.truncated() || app_id.empty()) {
    return error_reply(request.trace_id, ErrorCode::kMalformedFrame,
                       "stop/resume needs an app id");
  }
  Site* site = find_site_entry(site_id);
  if (site == nullptr) {
    return error_reply(request.trace_id, ErrorCode::kNotFound,
                       "unknown site: " + site_id);
  }
  const Result<void> result = resume ? site->os->broker().resume_app(app_id)
                                     : site->os->broker().stop_app(app_id);
  if (!result.ok()) return error_reply(request.trace_id, result.error());
  return reply_frame(proto::MsgType::kOk, request.trace_id);
}

proto::WireFrame Daemon::handle_status(const proto::WireFrame& request) {
  std::string app_filter;
  std::string site_filter;
  proto::TlvReader r(request.payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kAppId) app_filter = proto::tlv_string(*tlv);
    if (tlv->tag == tag::kSiteId) site_filter = proto::tlv_string(*tlv);
  }
  proto::WireFrame reply =
      reply_frame(proto::MsgType::kStatusReply, request.trace_id);
  proto::TlvWriter w(reply.payload);
  std::uint64_t queue_depth = 0;
  for (Site& site : sites_) {
    if (!site_filter.empty() && site.id != site_filter) continue;
    queue_depth += site.os->broker().admission().depth();
    for (const auto& [app_id, session] : site.os->broker().sessions()) {
      if (!app_filter.empty() && app_id != app_filter) continue;
      const broker::AppStatus status = site.os->broker().status(app_id);
      std::vector<std::uint8_t> nested;
      proto::TlvWriter n(nested);
      n.put_u16(1, proto::kStructVersion);
      n.put_string(tag::kSessionApp, app_id);
      n.put_string(tag::kSessionSite, site.id);
      n.put_u8(tag::kSessionRunning, session.running ? 1 : 0);
      n.put_u64(tag::kSessionTrace, session.trace_id);
      n.put_u8(tag::kSessionSatisfied, status.satisfied ? 1 : 0);
      n.put_u64(tag::kSessionTasksTotal, status.tasks_total);
      n.put_u64(tag::kSessionTasksMet, status.tasks_met);
      w.put_bytes(tag::kSession, nested);
    }
  }
  w.put_u64(tag::kQueueDepth, queue_depth);
  w.put_u64(tag::kStatusEpochs, stats_.epochs);
  for (const SiteHealth& site : latest_health_) {
    if (!site_filter.empty() && site.site_id != site_filter) continue;
    put_site_health(w, tag::kSiteHealth, site);
  }
  w.put_u8(tag::kFleetHealth,
           static_cast<std::uint8_t>(SloWatchdog::fleet_state(latest_health_)));
  return reply;
}

proto::WireFrame Daemon::handle_metrics(const proto::WireFrame& request) {
  proto::WireFrame reply =
      reply_frame(proto::MsgType::kMetricsReply, request.trace_id);
  proto::TlvWriter w(reply.payload);
  w.put_bytes(tag::kReport, last_report_wire_);
  w.put_u64(tag::kEpochs, stats_.epochs);
  w.put_u64(tag::kRebuilds, stats_.env_rebuilds);
  w.put_f64(tag::kLastEpochMs, stats_.last_epoch_ms);
  w.put_u64(tag::kRequests, stats_.requests);
  const sim::PrecomputeStore::Stats pre = sim::PrecomputeStore::instance().stats();
  w.put_u64(tag::kPrecomputeHits, pre.hits);
  w.put_u64(tag::kPrecomputeMisses, pre.misses);
  w.put_u64(tag::kPrecomputeBytes, pre.bytes);
  w.put_u64(tag::kPrecomputeEvictions, pre.evictions);
  return reply;
}

proto::WireFrame Daemon::handle_traces(const proto::WireFrame& request) {
  std::optional<std::uint64_t> cursor_ts;
  std::optional<std::uint64_t> cursor_span;
  std::optional<std::uint32_t> limit;
  proto::TlvReader r(request.payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kTraceCursorTs) cursor_ts = proto::tlv_u64(*tlv);
    if (tlv->tag == tag::kTraceCursorSpan) cursor_span = proto::tlv_u64(*tlv);
    if (tlv->tag == tag::kTraceLimit) limit = proto::tlv_u32(*tlv);
  }
  if (r.truncated()) {
    return error_reply(request.trace_id, ErrorCode::kMalformedFrame,
                       "truncated stream-traces request");
  }
  const auto events = telemetry::Recorder::instance().events();
  proto::WireFrame reply =
      reply_frame(proto::MsgType::kTraceChunk, request.trace_id);
  proto::TlvWriter w(reply.payload);
  if (!cursor_ts && !cursor_span && !limit) {
    // Legacy one-shot dump: the whole (ring-truncated) buffer as Chrome
    // JSON, for old clients that never learned the cursor tags.
    w.put_string(tag::kTraceJson, telemetry::chrome_trace_json(events));
    w.put_u64(tag::kEventCount, events.size());
    return reply;
  }
  const std::size_t page =
      std::clamp<std::size_t>(limit.value_or(512), 1, 4096);
  const auto slice = telemetry::events_after(
      events, cursor_ts.value_or(0), cursor_span.value_or(0), page);
  for (const auto& event : slice) {
    put_trace_event(w, tag::kTraceEvent, event);
  }
  w.put_u64(tag::kEventCount, slice.size());
  const std::uint64_t next_ts =
      slice.empty() ? cursor_ts.value_or(0) : slice.back().ts_ns;
  const std::uint64_t next_span =
      slice.empty() ? cursor_span.value_or(0) : slice.back().span_id;
  w.put_u64(tag::kTraceNextTs, next_ts);
  w.put_u64(tag::kTraceNextSpan, next_span);
  w.put_u8(tag::kTraceDone, slice.size() < page ? 1 : 0);
  return reply;
}

proto::WireFrame Daemon::handle_subscribe(const proto::WireFrame& request,
                                          int client_fd) {
  SubscriptionSpec spec;
  bool have_topic = false;
  proto::TlvReader r(request.payload);
  while (const auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kSubTopic: {
        if (const auto v = proto::tlv_u8(*tlv);
            v && *v >= static_cast<std::uint8_t>(SubTopic::kMetrics) &&
            *v <= static_cast<std::uint8_t>(SubTopic::kHealth)) {
          spec.topic = static_cast<SubTopic>(*v);
          have_topic = true;
        }
        break;
      }
      case tag::kSubInterval:
        spec.interval = proto::tlv_u32(*tlv).value_or(1);
        break;
      case tag::kSubSite: spec.site_filter = proto::tlv_string(*tlv); break;
      case tag::kSubPrefix: spec.prefix = proto::tlv_string(*tlv); break;
      default: break;
    }
  }
  if (r.truncated() || !have_topic) {
    return error_reply(request.trace_id, ErrorCode::kMalformedFrame,
                       "subscribe needs a topic (metrics|traces|health)");
  }
  if (client_fd < 0) {
    return error_reply(request.trace_id, ErrorCode::kUnavailable,
                       "subscriptions need a streaming connection");
  }
  spec.interval = std::max<std::uint32_t>(1, spec.interval);
  const auto subscribed = subs_.subscribe(client_fd, spec);
  if (!subscribed.ok()) {
    return error_reply(request.trace_id, subscribed.error());
  }
  SURFOS_INFO(kLog) << "subscription " << subscribed.value() << " opened: "
                    << sub_topic_name(spec.topic) << " every "
                    << spec.interval << " epoch(s)";
  proto::WireFrame reply =
      reply_frame(proto::MsgType::kSubscribeAck, request.trace_id);
  proto::TlvWriter w(reply.payload);
  w.put_u64(tag::kSubId, subscribed.value());
  w.put_u8(tag::kSubTopic, static_cast<std::uint8_t>(spec.topic));
  w.put_u32(tag::kSubInterval, spec.interval);
  return reply;
}

proto::WireFrame Daemon::handle_unsubscribe(const proto::WireFrame& request,
                                            int client_fd) {
  std::optional<std::uint64_t> sub_id;
  proto::TlvReader r(request.payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kSubId) sub_id = proto::tlv_u64(*tlv);
  }
  if (r.truncated() || !sub_id) {
    return error_reply(request.trace_id, ErrorCode::kMalformedFrame,
                       "unsubscribe needs a subscription id");
  }
  if (client_fd < 0) {
    return error_reply(request.trace_id, ErrorCode::kUnavailable,
                       "subscriptions need a streaming connection");
  }
  if (auto removed = subs_.unsubscribe(client_fd, *sub_id); !removed.ok()) {
    return error_reply(request.trace_id, removed.error());
  }
  return reply_frame(proto::MsgType::kOk, request.trace_id);
}

proto::WireFrame Daemon::handle_snapshot(const proto::WireFrame& request) {
  if (options_.snapshot_path.empty()) {
    return error_reply(request.trace_id, ErrorCode::kUnavailable,
                       "daemon started without a snapshot path");
  }
  DaemonSnapshot snapshot;
  snapshot.sim_now_us = sim_now_us_;
  snapshot.epochs = stats_.epochs;
  snapshot.last_report_wire = last_report_wire_;
  for (Site& site : sites_) {
    for (const auto& [app_id, session] : site.os->broker().sessions()) {
      SessionRecord record;
      record.site_id = site.id;
      record.app_id = app_id;
      record.running = session.running;
      record.trace_id = session.trace_id;
      record.demand = session.demand;
      snapshot.sessions.push_back(std::move(record));
    }
    for (const auto& queued : site.os->broker().admission().pending()) {
      QueuedRecord record;
      record.site_id = site.id;
      record.app_id = queued.app_id;
      record.priority = static_cast<std::uint64_t>(queued.priority);
      record.demand = queued.demand;
      snapshot.queued.push_back(std::move(record));
    }
    snapshot.trace_seqs.push_back(
        SeqRecord{site.id, site.os->broker().trace_seq()});
    for (const std::string& endpoint_id : site.auto_endpoints) {
      const auto* endpoint =
          site.os->registry().find_endpoint(endpoint_id);
      if (endpoint == nullptr) continue;
      EndpointRecord record;
      record.site_id = site.id;
      record.endpoint_id = endpoint_id;
      record.kind = static_cast<std::uint8_t>(endpoint->kind);
      record.x = endpoint->position.x;
      record.y = endpoint->position.y;
      record.z = endpoint->position.z;
      snapshot.endpoints.push_back(std::move(record));
    }
  }
  if (auto saved = save_snapshot_file(snapshot, options_.snapshot_path);
      !saved.ok()) {
    return error_reply(request.trace_id, saved.error());
  }
  SURFOS_INFO(kLog) << "snapshot written to " << options_.snapshot_path
                    << " (" << snapshot.sessions.size() << " session(s), "
                    << snapshot.queued.size() << " queued)";
  proto::WireFrame reply = reply_frame(proto::MsgType::kOk, request.trace_id);
  proto::TlvWriter w(reply.payload);
  w.put_string(tag::kPath, options_.snapshot_path);
  w.put_u64(tag::kBytes, to_wire(snapshot).size());
  return reply;
}

proto::WireFrame Daemon::handle_restore(const proto::WireFrame& request) {
  for (Site& site : sites_) {
    if (!site.os->broker().sessions().empty()) {
      return error_reply(request.trace_id, ErrorCode::kUnavailable,
                         "restore requires a fresh daemon (sessions exist)");
    }
  }
  auto loaded = load_snapshot_file(options_.snapshot_path);
  if (!loaded.ok()) return error_reply(request.trace_id, loaded.error());
  if (auto applied = apply_snapshot(loaded.value()); !applied.ok()) {
    return error_reply(request.trace_id, applied.error());
  }
  return reply_frame(proto::MsgType::kOk, request.trace_id);
}

proto::WireFrame Daemon::handle_set_knob(const proto::WireFrame& request) {
  std::string name;
  std::optional<std::uint64_t> value;
  proto::TlvReader r(request.payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kKnobName) name = proto::tlv_string(*tlv);
    if (tlv->tag == tag::kKnobValue) value = proto::tlv_u64(*tlv);
  }
  if (r.truncated() || name.empty() || !value) {
    return error_reply(request.trace_id, ErrorCode::kMalformedFrame,
                       "set-knob needs a name and a value");
  }
  if (auto set = core::set_config_knob(name, *value); !set.ok()) {
    return error_reply(request.trace_id, set.error());
  }
  SURFOS_INFO(kLog) << "knob " << name << " set to " << *value;
  return reply_frame(proto::MsgType::kOk, request.trace_id);
}

proto::WireFrame Daemon::handle_get_knobs(const proto::WireFrame& request) {
  proto::WireFrame reply =
      reply_frame(proto::MsgType::kKnobsReply, request.trace_id);
  proto::TlvWriter w(reply.payload);
  const auto snapshot = core::config_snapshot();
  for (const core::KnobSpec& spec : core::kKnobRegistry) {
    std::vector<std::uint8_t> nested;
    proto::TlvWriter n(nested);
    n.put_u16(1, proto::kStructVersion);
    n.put_string(tag::kKnobName, spec.name);
    const auto value = snapshot ? snapshot->lookup(spec.name) : std::nullopt;
    n.put_u8(tag::kKnobHasValue, value ? 1 : 0);
    if (value) n.put_u64(tag::kKnobValue, *value);
    n.put_string(tag::kKnobDoc, spec.doc);
    w.put_bytes(tag::kKnob, nested);
  }
  return reply;
}

// --- Snapshot / restore ------------------------------------------------------

Result<void> Daemon::save_snapshot() {
  // Reuse the wire handler so the SIGTERM path and `surfos-ctl snapshot`
  // are byte-identical. A synthetic trace-less request keeps the flight
  // recorder's causal story honest ("snapshot requested").
  proto::WireFrame request;
  request.type = proto::MsgType::kSnapshot;
  const proto::WireFrame reply = handle_request(request);
  if (reply.type == proto::MsgType::kError) {
    ErrorCode code = ErrorCode::kInternal;
    std::string message = "snapshot failed";
    proto::TlvReader r(reply.payload);
    while (const auto tlv = r.next()) {
      if (tlv->tag == tag::kErrorCode) {
        if (const auto v = proto::tlv_u32(*tlv)) {
          code = static_cast<ErrorCode>(*v);
        }
      }
      if (tlv->tag == tag::kErrorMessage) message = proto::tlv_string(*tlv);
    }
    return make_error(code, message);
  }
  return ok_result();
}

Result<void> Daemon::load_snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  auto loaded = load_snapshot_file(options_.snapshot_path);
  if (!loaded.ok()) return loaded.error();
  return apply_snapshot(loaded.value());
}

Result<void> Daemon::apply_snapshot(const DaemonSnapshot& snapshot) {
  sim_now_us_ = snapshot.sim_now_us;
  stats_.epochs = snapshot.epochs;
  last_report_wire_ = snapshot.last_report_wire;
  for (Site& site : sites_) {
    site.os->clock().advance_to(sim_now_us_);
    if (site.world->advance_to(sim_now_us_)) {
      site.os->orchestrator().set_environment(&site.world->environment());
    }
  }
  // Endpoints before sessions: a restored demand must find the endpoint it
  // names, at its original (snapshotted) position.
  for (const EndpointRecord& record : snapshot.endpoints) {
    Site* site = find_site_entry(record.site_id);
    if (site == nullptr) continue;
    if (site->os->registry().find_endpoint(record.endpoint_id) == nullptr) {
      site->os->register_endpoint(
          record.endpoint_id, static_cast<hal::EndpointKind>(record.kind),
          {record.x, record.y, record.z});
    }
    site->auto_endpoints.insert(record.endpoint_id);
  }
  for (const SessionRecord& record : snapshot.sessions) {
    Site* site = find_site_entry(record.site_id);
    if (site == nullptr) {
      return make_error(ErrorCode::kNotFound,
                        "snapshot names unknown site: " + record.site_id);
    }
    if (auto restored = site->os->broker().restore_session(
            record.app_id, record.demand, record.running, record.trace_id);
        !restored.ok()) {
      return restored.error();
    }
  }
  // In-flight demands go back through the weighted-fair admission queue —
  // restore never skips admission control.
  for (const QueuedRecord& record : snapshot.queued) {
    Site* site = find_site_entry(record.site_id);
    if (site == nullptr) continue;
    (void)site->os->broker().submit_demand(
        record.app_id, record.demand,
        static_cast<orch::Priority>(record.priority));
  }
  for (const SeqRecord& record : snapshot.trace_seqs) {
    if (Site* site = find_site_entry(record.site_id)) {
      site->os->broker().set_trace_seq(record.trace_seq);
    }
  }
  SURFOS_INFO(kLog) << "restored " << snapshot.sessions.size()
                    << " session(s), " << snapshot.queued.size()
                    << " queued demand(s) at epoch " << snapshot.epochs;
  return ok_result();
}

// --- Threads / socket --------------------------------------------------------

Result<void> Daemon::start() {
  if (running_.load()) return ok_result();
  if (options_.socket_path.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty socket path");
  }
  if (options_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "socket path too long: " + options_.socket_path);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return make_error(ErrorCode::kIoError,
                      std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return make_error(ErrorCode::kIoError,
                      "bind/listen " + options_.socket_path + ": " + what);
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return make_error(ErrorCode::kIoError,
                      std::string("pipe: ") + std::strerror(errno));
  }
  running_.store(true);
  server_ = std::thread([this] { server_main(); });
  if (options_.ticker) {
    ticker_ = std::thread([this] { ticker_main(); });
  }
  SURFOS_INFO(kLog) << "serving on " << options_.socket_path << " ("
                    << sites_.size() << " site(s))";
  return ok_result();
}

void Daemon::stop() {
  running_.store(false);
  stop_cv_.notify_all();
  if (wake_pipe_[1] >= 0) {
    const char byte = 'q';
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (ticker_.joinable()) ticker_.join();
  if (server_.joinable()) server_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void Daemon::wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return !running_.load(); });
}

void Daemon::ticker_main() {
  while (running_.load()) {
    run_epoch();
    const std::uint64_t epoch_ms =
        options_.epoch_ms != 0 ? options_.epoch_ms
                               : core::knob("SURFOS_EPOCH_MS", 20, 1);
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait_for(lock, std::chrono::milliseconds(epoch_ms),
                      [this] { return !running_.load(); });
  }
}

bool Daemon::service_connection(int fd, std::vector<std::uint8_t>& buffer) {
  std::uint8_t chunk[4096];
  const ssize_t n = ::read(fd, chunk, sizeof chunk);
  if (n < 0) {
    // Sockets are non-blocking: a spurious wakeup is not a dead peer.
    return errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK;
  }
  if (n == 0) return false;  // closed peer
  buffer.insert(buffer.end(), chunk, chunk + n);
  while (true) {
    const proto::FrameDecode decode = proto::try_decode_frame(buffer);
    if (decode.consumed == 0 && !decode.error) return true;  // need more
    if (decode.error) {
      // Malformed / oversized / wrong-version frame: answer with a proper
      // error reply, then close — the stream offset is no longer trusted.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.malformed;
      }
      const proto::WireFrame reply = error_reply(0, *decode.error);
      if (const auto encoded = proto::encode_frame(reply); encoded.ok()) {
        subs_.enqueue_reply(fd, encoded.value());
        (void)subs_.flush_to_fd(fd);  // best effort before the close
      }
      return false;
    }
    buffer.erase(buffer.begin(),
                 buffer.begin() + static_cast<std::ptrdiff_t>(decode.consumed));
    const proto::WireFrame reply = handle_request(*decode.frame, fd);
    const auto encoded = proto::encode_frame(reply);
    if (!encoded.ok()) return false;
    // Replies ride the same per-connection outbox as pushed events (order
    // preserved); whatever the socket does not take now goes out on the
    // next POLLOUT.
    subs_.enqueue_reply(fd, encoded.value());
    if (!subs_.flush_to_fd(fd)) return false;
    if (buffer.empty()) return true;
  }
}

void Daemon::server_main() {
  std::map<int, std::vector<std::uint8_t>> connections;
  while (running_.load()) {
    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, buffer] : connections) {
      short events = POLLIN;
      if (subs_.has_output(fd)) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents & POLLIN) {
      char drain[16];
      (void)!::read(wake_pipe_[0], drain, sizeof drain);
      continue;  // running_ re-checked; POLLOUT interest recomputed
    }
    if (fds[1].revents & POLLIN) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client >= 0) {
        // Non-blocking from birth: the ticker must never be able to stall
        // behind a slow reader, and neither may this thread.
        if (const int flags = ::fcntl(client, F_GETFL, 0); flags >= 0) {
          (void)::fcntl(client, F_SETFL, flags | O_NONBLOCK);
        }
        connections.emplace(client, std::vector<std::uint8_t>());
        subs_.add_connection(client);
      }
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      bool alive = true;
      if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
        alive = service_connection(fd, connections[fd]);
      }
      if (alive && (fds[i].revents & POLLOUT)) {
        alive = subs_.flush_to_fd(fd);
      }
      if (!alive) {
        ::close(fd);
        connections.erase(fd);
        subs_.drop_connection(fd);
      }
    }
  }
  for (const auto& [fd, buffer] : connections) {
    ::close(fd);
    subs_.drop_connection(fd);
  }
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<std::uint8_t> Daemon::last_report_wire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_report_wire_;
}

}  // namespace surfos::daemon
