// Fleet SLO watchdog: per-site health classification for the streaming
// observability plane.
//
// Every control epoch the daemon feeds each site's load signals into the
// watchdog, which folds them into a three-state health verdict:
//
//   kHealthy   — all signals under their thresholds.
//   kDegraded  — at least one SLO signal fired this epoch: an epoch-budget
//                overrun streak, admission-queue depth vs SURFOS_ADMIT_QUEUE,
//                ARQ retransmission rate, or demand shedding.
//   kUnhealthy — a degraded condition has persisted for at least twice the
//                overrun-streak threshold (sustained, not transient).
//
// Thresholds come from the SURFOS_SLO_* knobs (hot-reloadable per epoch via
// set-knob, like every other kPerEpoch knob). States are published on the
// `health` subscription topic and summarized in every kStatusReply, so both
// a live `surfos-top` and a one-shot `surfos-ctl status` see the same
// verdicts.
//
// Caveat: ARQ counters are process-wide (the HAL reliability layer counts
// per process, not per site), so the retransmission-rate signal fires for
// every site at once; queue depth and shed counts are genuinely per-site.
//
// Thread-compatibility: not internally synchronized — the daemon evaluates
// under its epoch mutex.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace surfos::daemon {

/// Wire-stable health states (kHealthState tag): append only.
enum class SloState : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kUnhealthy = 2,
};

const char* slo_state_name(SloState state) noexcept;

/// Thresholds, one knob each. Defaults are deliberately forgiving: a
/// healthy demo fleet should sit at kHealthy without tuning.
struct SloThresholds {
  /// Consecutive epochs over the SURFOS_EPOCH_MS wall budget that degrade.
  std::uint64_t overrun_streak = 3;
  /// Queue depth as a percentage of capacity that degrades.
  std::uint64_t queue_pct = 80;
  /// ARQ retransmissions as a percentage of sends (per epoch) that degrade.
  std::uint64_t retry_pct = 30;
  /// Demands shed in a single epoch that degrade.
  std::uint64_t shed = 1;

  /// Reads the SURFOS_SLO_* knobs through core::knob (snapshot-aware).
  static SloThresholds from_knobs();
};

/// One epoch's raw signals for one site. Counter-style fields are
/// *cumulative* totals; the watchdog differences them against the previous
/// epoch internally.
struct SloInputs {
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 1;
  std::uint64_t shed_total = 0;       ///< Cumulative demands shed.
  std::uint64_t arq_retry_total = 0;  ///< Cumulative retransmissions.
  std::uint64_t arq_send_total = 0;   ///< Cumulative ARQ sends.
  bool epoch_overrun = false;  ///< This epoch exceeded its wall budget.
};

struct SiteHealth {
  std::string site_id;
  SloState state = SloState::kHealthy;
  std::uint64_t epochs_in_state = 1;  ///< Consecutive epochs at `state`.
  std::string reason;  ///< Human-readable cause, empty when healthy.
};

class SloWatchdog {
 public:
  /// Folds one epoch of signals into the site's health state and returns
  /// the verdict. Call once per site per epoch.
  SiteHealth evaluate(const std::string& site_id, const SloInputs& inputs,
                      const SloThresholds& thresholds);

  /// Drops state for sites not evaluated since the last call (none today —
  /// sites are static — but keeps the map bounded if that changes).
  void forget(const std::string& site_id) { states_.erase(site_id); }

  /// Worst state across the given verdicts (kHealthy when empty).
  static SloState fleet_state(const std::vector<SiteHealth>& sites) noexcept;

 private:
  struct State {
    SloState state = SloState::kHealthy;
    std::uint64_t epochs_in_state = 0;
    std::uint64_t overrun_streak = 0;
    std::uint64_t bad_streak = 0;  ///< Consecutive degraded-or-worse epochs.
    std::uint64_t prev_shed = 0;
    std::uint64_t prev_retry = 0;
    std::uint64_t prev_send = 0;
  };

  std::map<std::string, State> states_;
};

}  // namespace surfos::daemon
