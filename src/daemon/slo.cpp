#include "daemon/slo.hpp"

#include <algorithm>

#include "core/config.hpp"

namespace surfos::daemon {

const char* slo_state_name(SloState state) noexcept {
  switch (state) {
    case SloState::kHealthy: return "healthy";
    case SloState::kDegraded: return "degraded";
    case SloState::kUnhealthy: return "unhealthy";
  }
  return "?";
}

SloThresholds SloThresholds::from_knobs() {
  SloThresholds t;
  t.overrun_streak = core::knob("SURFOS_SLO_OVERRUN_STREAK", 3, 1);
  t.queue_pct = core::knob("SURFOS_SLO_QUEUE_PCT", 80, 1);
  t.retry_pct = core::knob("SURFOS_SLO_RETRY_PCT", 30, 1);
  t.shed = core::knob("SURFOS_SLO_SHED", 1, 1);
  return t;
}

SloState SloWatchdog::fleet_state(
    const std::vector<SiteHealth>& sites) noexcept {
  SloState worst = SloState::kHealthy;
  for (const SiteHealth& site : sites) {
    worst = std::max(worst, site.state);
  }
  return worst;
}

SiteHealth SloWatchdog::evaluate(const std::string& site_id,
                                 const SloInputs& inputs,
                                 const SloThresholds& thresholds) {
  State& s = states_[site_id];

  // Per-epoch deltas from the cumulative inputs. A first evaluation
  // differences against zero, i.e. counts everything since daemon start —
  // correct for a fresh process, conservative after a restore.
  const std::uint64_t shed_delta = inputs.shed_total - s.prev_shed;
  const std::uint64_t retry_delta = inputs.arq_retry_total - s.prev_retry;
  const std::uint64_t send_delta = inputs.arq_send_total - s.prev_send;
  s.prev_shed = inputs.shed_total;
  s.prev_retry = inputs.arq_retry_total;
  s.prev_send = inputs.arq_send_total;

  s.overrun_streak = inputs.epoch_overrun ? s.overrun_streak + 1 : 0;

  std::string reason;
  const std::uint64_t capacity = std::max<std::uint64_t>(1,
                                                         inputs.queue_capacity);
  const std::uint64_t queue_pct = inputs.queue_depth * 100 / capacity;
  if (queue_pct >= thresholds.queue_pct) {
    reason = "queue " + std::to_string(inputs.queue_depth) + "/" +
             std::to_string(capacity);
  } else if (shed_delta >= thresholds.shed) {
    reason = "shed " + std::to_string(shed_delta) + " demand(s)";
  } else if (send_delta > 0 &&
             retry_delta * 100 >= thresholds.retry_pct * send_delta) {
    reason = "arq retry " + std::to_string(retry_delta) + "/" +
             std::to_string(send_delta) + " sends";
  } else if (s.overrun_streak >= thresholds.overrun_streak) {
    reason = "epoch overrun x" + std::to_string(s.overrun_streak);
  }

  SloState next = SloState::kHealthy;
  if (!reason.empty()) {
    s.bad_streak += 1;
    // Sustained degradation escalates: twice the overrun-streak threshold
    // of consecutive bad epochs means the site is not recovering on its own.
    next = s.bad_streak >= 2 * thresholds.overrun_streak
               ? SloState::kUnhealthy
               : SloState::kDegraded;
    if (next == SloState::kUnhealthy) {
      reason += " (sustained x" + std::to_string(s.bad_streak) + ")";
    }
  } else {
    s.bad_streak = 0;
  }

  s.epochs_in_state = next == s.state ? s.epochs_in_state + 1 : 1;
  s.state = next;

  SiteHealth health;
  health.site_id = site_id;
  health.state = s.state;
  health.epochs_in_state = s.epochs_in_state;
  health.reason = reason;
  return health;
}

}  // namespace surfos::daemon
