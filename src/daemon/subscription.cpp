#include "daemon/subscription.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "core/config.hpp"
#include "daemon/tags.hpp"
#include "proto/wire.hpp"
#include "telemetry/telemetry.hpp"

namespace surfos::daemon {

namespace {

bool has_prefix(std::string_view name, const std::string& prefix) {
  return prefix.empty() ||
         (name.size() >= prefix.size() &&
          name.compare(0, prefix.size(), prefix) == 0);
}

}  // namespace

void put_site_health(proto::TlvWriter& w, std::uint16_t outer_tag,
                     const SiteHealth& health) {
  std::vector<std::uint8_t> nested;
  proto::TlvWriter n(nested);
  n.put_string(tag::kHealthSite, health.site_id);
  n.put_u8(tag::kHealthState, static_cast<std::uint8_t>(health.state));
  n.put_u64(tag::kHealthEpochs, health.epochs_in_state);
  n.put_string(tag::kHealthReason, health.reason);
  w.put_bytes(outer_tag, nested);
}

void put_trace_event(proto::TlvWriter& w, std::uint16_t outer_tag,
                     const telemetry::TraceEvent& event) {
  std::vector<std::uint8_t> nested;
  proto::TlvWriter n(nested);
  n.put_u64(tag::kEvTs, event.ts_ns);
  n.put_u64(tag::kEvDur, event.dur_ns);
  n.put_u64(tag::kEvTrace, event.trace_id);
  n.put_u64(tag::kEvSpan, event.span_id);
  n.put_u64(tag::kEvParent, event.parent_span_id);
  n.put_string(tag::kEvName, event.name != nullptr ? event.name : "");
  n.put_u8(tag::kEvKind, static_cast<std::uint8_t>(event.kind));
  n.put_u64(tag::kEvArg, event.arg);
  n.put_u32(tag::kEvTid, event.thread_index);
  w.put_bytes(outer_tag, nested);
}

const char* sub_topic_name(SubTopic topic) noexcept {
  switch (topic) {
    case SubTopic::kMetrics: return "metrics";
    case SubTopic::kTraces: return "traces";
    case SubTopic::kHealth: return "health";
  }
  return "?";
}

std::uint8_t parse_sub_topic(const std::string& name) noexcept {
  if (name == "metrics") return static_cast<std::uint8_t>(SubTopic::kMetrics);
  if (name == "traces") return static_cast<std::uint8_t>(SubTopic::kTraces);
  if (name == "health") return static_cast<std::uint8_t>(SubTopic::kHealth);
  return 0;
}

void SubscriptionRegistry::add_connection(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  conns_[fd];  // default-constructed connection
}

void SubscriptionRegistry::drop_connection(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  conns_.erase(fd);
}

Result<std::uint64_t> SubscriptionRegistry::subscribe(int fd,
                                                      SubscriptionSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = conns_.find(fd);
  if (it == conns_.end()) {
    return {ErrorCode::kUnavailable,
            "subscriptions need a streaming connection"};
  }
  spec.interval = std::max<std::uint32_t>(1, spec.interval);
  Subscription sub;
  sub.id = next_sub_id_++;
  sub.spec = std::move(spec);
  const std::uint64_t id = sub.id;
  it->second.subs.emplace(id, std::move(sub));
  SURFOS_COUNT_SCHED("daemon.subs.opened", 1);
  return id;
}

Result<void> SubscriptionRegistry::unsubscribe(int fd, std::uint64_t sub_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = conns_.find(fd);
  if (it == conns_.end() || it->second.subs.erase(sub_id) == 0) {
    return {ErrorCode::kNotFound,
            "no subscription " + std::to_string(sub_id) +
                " on this connection"};
  }
  return {};
}

void SubscriptionRegistry::enqueue_reply(int fd,
                                         std::vector<std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  it->second.total_bytes += bytes.size();
  it->second.outbox.push_back(Outgoing{std::move(bytes), 0});
  if (it->second.total_bytes > kMaxOutboxBytes) it->second.dead = true;
}

bool SubscriptionRegistry::has_output(int fd) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = conns_.find(fd);
  return it != conns_.end() &&
         (!it->second.outbox.empty() || it->second.dead);
}

bool SubscriptionRegistry::flush_to_fd(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return false;
  Connection& conn = it->second;
  while (!conn.outbox.empty()) {
    const Outgoing& front = conn.outbox.front();
    const std::size_t remaining = front.bytes.size() - conn.front_offset;
    const ssize_t n =
        ::write(fd, front.bytes.data() + conn.front_offset, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // socket full
      return false;  // peer gone
    }
    conn.front_offset += static_cast<std::size_t>(n);
    if (conn.front_offset == front.bytes.size()) {
      conn.total_bytes -= front.bytes.size();
      conn.outbox.pop_front();
      conn.front_offset = 0;
    }
  }
  return !conn.dead;
}

std::vector<std::vector<std::uint8_t>> SubscriptionRegistry::take_output(
    int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<std::uint8_t>> out;
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return out;
  for (Outgoing& entry : it->second.outbox) {
    out.push_back(std::move(entry.bytes));
  }
  it->second.outbox.clear();
  it->second.front_offset = 0;
  it->second.total_bytes = 0;
  return out;
}

bool SubscriptionRegistry::wants_traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [fd, conn] : conns_) {
    for (const auto& [id, sub] : conn.subs) {
      if (sub.spec.topic == SubTopic::kTraces) return true;
    }
  }
  return false;
}

SubscriptionStats SubscriptionRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SubscriptionStats stats;
  stats.connections = conns_.size();
  for (const auto& [fd, conn] : conns_) {
    stats.subscriptions += conn.subs.size();
  }
  stats.published = published_total_;
  stats.dropped = dropped_total_;
  return stats;
}

void SubscriptionRegistry::enqueue_event(Connection& conn, Subscription& sub,
                                         std::vector<std::uint8_t> bytes,
                                         std::size_t outbox_cap) {
  // Count droppable (event) frames already queued; replies never count
  // against the event bound.
  std::size_t events_queued = 0;
  for (const Outgoing& entry : conn.outbox) {
    if (entry.sub_id != 0) ++events_queued;
  }
  if (events_queued >= outbox_cap) {
    // Drop the OLDEST queued event. A partially-written front frame is
    // already on the wire and cannot be torn — start past it.
    const std::size_t first =
        conn.front_offset > 0 && !conn.outbox.empty() ? 1 : 0;
    for (std::size_t i = first; i < conn.outbox.size(); ++i) {
      if (conn.outbox[i].sub_id == 0) continue;
      // The dropped frame's subscription now has a hole in its delivered
      // stream: force its next metrics event to resync from a baseline.
      const std::uint64_t victim_sub = conn.outbox[i].sub_id;
      if (const auto vit = conn.subs.find(victim_sub);
          vit != conn.subs.end()) {
        vit->second.dropped += 1;
        vit->second.needs_baseline = true;
      }
      conn.total_bytes -= conn.outbox[i].bytes.size();
      conn.outbox.erase(conn.outbox.begin() +
                        static_cast<std::ptrdiff_t>(i));
      dropped_total_ += 1;
      SURFOS_COUNT_SCHED("daemon.subs.dropped_events", 1);
      break;
    }
  }
  conn.total_bytes += bytes.size();
  conn.outbox.push_back(Outgoing{std::move(bytes), sub.id});
  sub.published += 1;
  published_total_ += 1;
  SURFOS_COUNT_SCHED("daemon.subs.published_events", 1);
}

void SubscriptionRegistry::publish(const EpochContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t outbox_cap = core::knob("SURFOS_SUB_OUTBOX", 64, 1);
  for (auto& [fd, conn] : conns_) {
    if (conn.dead) continue;
    for (auto& [id, sub] : conn.subs) {
      if (sub.last_pub_epoch != 0 &&
          ctx.epoch < sub.last_pub_epoch + sub.spec.interval) {
        continue;  // not due yet
      }

      proto::WireFrame frame;
      frame.type = proto::MsgType::kEvent;
      frame.trace_id = 0;  // events are not replies; no request to echo
      proto::TlvWriter w(frame.payload);
      w.put_u64(tag::kSubId, sub.id);
      w.put_u8(tag::kSubTopic, static_cast<std::uint8_t>(sub.spec.topic));
      w.put_u64(tag::kEventEpoch, ctx.epoch);
      w.put_u64(tag::kDroppedEvents, sub.dropped);

      bool emit = true;
      switch (sub.spec.topic) {
        case SubTopic::kMetrics: {
          if (ctx.series == nullptr) { emit = false; break; }
          const auto delta = ctx.series->delta_since(
              sub.needs_baseline ? 0 : sub.anchor_epoch);
          if (!delta) { emit = false; break; }
          w.put_u8(tag::kEventBaseline, delta->baseline ? 1 : 0);
          w.put_f64(tag::kEventEpochMs, delta->epoch_ms);
          w.put_f64(tag::kEventFlushUs, delta->flush_us);
          for (const auto& c : delta->counters) {
            if (!has_prefix(c.name, sub.spec.prefix)) continue;
            std::vector<std::uint8_t> nested;
            proto::TlvWriter n(nested);
            n.put_string(tag::kMetricName, c.name);
            n.put_u64(tag::kMetricU64, c.value);
            w.put_bytes(tag::kEventCounter, nested);
          }
          for (const auto& g : delta->gauges) {
            if (!has_prefix(g.name, sub.spec.prefix)) continue;
            std::vector<std::uint8_t> nested;
            proto::TlvWriter n(nested);
            n.put_string(tag::kMetricName, g.name);
            n.put_f64(tag::kMetricF64, g.value);
            w.put_bytes(tag::kEventGauge, nested);
          }
          sub.anchor_epoch = delta->to_epoch;
          sub.needs_baseline = false;
          break;
        }
        case SubTopic::kTraces: {
          if (ctx.trace_events == nullptr) { emit = false; break; }
          // Per-frame page bound keeps any one event frame small enough
          // for the 1 MiB payload cap even on a busy recorder.
          constexpr std::size_t kPage = 512;
          const auto page = telemetry::events_after(
              *ctx.trace_events, sub.trace_ts, sub.trace_span, kPage);
          if (page.empty()) { emit = false; break; }
          std::size_t written = 0;
          for (const auto& event : page) {
            if (!has_prefix(event.name != nullptr ? event.name : "",
                            sub.spec.prefix)) {
              continue;
            }
            put_trace_event(w, tag::kEventTrace, event);
            ++written;
          }
          sub.trace_ts = page.back().ts_ns;
          sub.trace_span = page.back().span_id;
          if (written == 0) emit = false;  // everything filtered out
          break;
        }
        case SubTopic::kHealth: {
          if (ctx.health == nullptr) { emit = false; break; }
          for (const SiteHealth& site : *ctx.health) {
            if (!sub.spec.site_filter.empty() &&
                site.site_id != sub.spec.site_filter) {
              continue;
            }
            put_site_health(w, tag::kEventSiteHealth, site);
          }
          break;
        }
      }
      if (!emit) continue;
      sub.last_pub_epoch = ctx.epoch;
      sub.seq += 1;
      w.put_u64(tag::kEventSeq, sub.seq);

      const auto encoded = proto::encode_frame(frame);
      if (!encoded.ok()) continue;  // oversized event frame: skip, not fatal
      enqueue_event(conn, sub, encoded.value(), outbox_cap);
    }
  }
}

}  // namespace surfos::daemon
