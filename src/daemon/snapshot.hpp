// Crash/restart snapshot for surfosd (daemon/daemon.hpp).
//
// On SIGTERM (or an explicit `surfos-ctl snapshot`) the daemon serializes
// enough state to resume service after a restart:
//   - every app session with its ORIGINAL deterministic trace id and demand,
//     so the restarted broker re-creates the same causal chains;
//   - the admission queue's in-flight demands, re-submitted through the
//     weighted-fair queue on restore (never silently admitted);
//   - per-site broker trace sequence counters (the id stream continues
//     instead of reusing ids);
//   - dynamically registered endpoints (a restored demand must find the
//     endpoint it names);
//   - the serialized last FleetReport, restored verbatim — the byte-identity
//     guarantee the restart drill checks via get_metrics.
//
// The file is one TLV stream with the same versioned, unknown-tag-skipping
// encoding as the wire protocol (proto/serialize.hpp), written atomically
// (temp file + rename).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "broker/demand.hpp"
#include "core/status.hpp"

namespace surfos::daemon {

struct SessionRecord {
  std::string site_id;
  std::string app_id;
  bool running = true;
  std::uint64_t trace_id = 0;
  broker::AppDemand demand;
};

struct QueuedRecord {
  std::string site_id;
  std::string app_id;
  std::uint64_t priority = 0;
  broker::AppDemand demand;
};

struct SeqRecord {
  std::string site_id;
  std::uint64_t trace_seq = 0;
};

struct EndpointRecord {
  std::string site_id;
  std::string endpoint_id;
  std::uint8_t kind = 0;  ///< hal::EndpointKind numeric value.
  double x = 0.0, y = 0.0, z = 0.0;
};

struct DaemonSnapshot {
  std::uint64_t sim_now_us = 0;  ///< Simulated clock at snapshot time.
  std::uint64_t epochs = 0;      ///< Control epochs completed.
  std::vector<SessionRecord> sessions;
  std::vector<QueuedRecord> queued;
  std::vector<SeqRecord> trace_seqs;
  std::vector<EndpointRecord> endpoints;
  std::vector<std::uint8_t> last_report_wire;  ///< Serialized FleetReport.
};

void to_wire(const DaemonSnapshot& snapshot, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> to_wire(const DaemonSnapshot& snapshot);
Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       DaemonSnapshot& out);

/// Atomic write (temp + rename) / whole-file read. kIoError on filesystem
/// failure, kMalformedFrame on a damaged file.
Result<void> save_snapshot_file(const DaemonSnapshot& snapshot,
                                const std::string& path);
Result<DaemonSnapshot> load_snapshot_file(const std::string& path);

}  // namespace surfos::daemon
