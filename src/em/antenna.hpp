// Antenna radiation patterns.
//
// The simulator weights every ray departure/arrival by the endpoint's
// pattern gain. APs in the mmWave scenarios use sectored horn-like patterns;
// clients are near-isotropic; surface elements use the canonical cos(theta)
// element factor.
#pragma once

#include <cmath>
#include <memory>
#include <string>

#include "geom/vec3.hpp"

namespace surfos::em {

/// Interface: directional amplitude gain (sqrt of power gain) for a world
/// direction, given the antenna's boresight.
class AntennaPattern {
 public:
  virtual ~AntennaPattern() = default;

  /// Amplitude gain in the given unit direction (departing for TX, arriving
  /// reversed for RX). Must be >= 0.
  virtual double amplitude_gain(const geom::Vec3& direction) const noexcept = 0;

  /// Batched amplitude gain over n unit directions stored as SoA planes.
  /// `sign` (+1 or -1) flips the direction, so arrival gains can be
  /// evaluated without materializing reversed vectors (the flip is exact
  /// in floating point). Directions must be unit length: vectorized
  /// overrides may skip the renormalization amplitude_gain performs, which
  /// is the identity for unit input up to 1 ulp.
  /// Default implementation loops over amplitude_gain.
  virtual void amplitude_gain_batch(const double* ux, const double* uy,
                                    const double* uz, double sign, double* out,
                                    std::size_t n) const noexcept;

  /// Peak power gain (linear), for link-budget reporting.
  virtual double peak_power_gain() const noexcept = 0;

  virtual std::string name() const = 0;
};

/// 0 dBi isotropic radiator.
class IsotropicAntenna final : public AntennaPattern {
 public:
  double amplitude_gain(const geom::Vec3&) const noexcept override { return 1.0; }
  void amplitude_gain_batch(const double*, const double*, const double*,
                            double, double* out,
                            std::size_t n) const noexcept override {
    for (std::size_t i = 0; i < n; ++i) out[i] = 1.0;
  }
  double peak_power_gain() const noexcept override { return 1.0; }
  std::string name() const override { return "isotropic"; }
};

/// cos^q(theta) pattern about a boresight, normalized so total radiated power
/// matches an ideal directivity of 2(q+1) (standard element-factor model).
class CosinePowerAntenna final : public AntennaPattern {
 public:
  CosinePowerAntenna(const geom::Vec3& boresight, double exponent);

  double amplitude_gain(const geom::Vec3& direction) const noexcept override;
  double peak_power_gain() const noexcept override { return 2.0 * (q_ + 1.0); }
  std::string name() const override;

  const geom::Vec3& boresight() const noexcept { return boresight_; }

 private:
  geom::Vec3 boresight_;
  double q_;
};

/// Sectored horn: flat gain inside a half-power cone, strong rolloff outside.
class SectorAntenna final : public AntennaPattern {
 public:
  /// `beamwidth_deg` is the full cone angle; gain follows from the beam solid
  /// angle; sidelobes sit `sidelobe_db` below the main lobe.
  SectorAntenna(const geom::Vec3& boresight, double beamwidth_deg,
                double sidelobe_db = 20.0);

  double amplitude_gain(const geom::Vec3& direction) const noexcept override;
  void amplitude_gain_batch(const double* ux, const double* uy,
                            const double* uz, double sign, double* out,
                            std::size_t n) const noexcept override;
  double peak_power_gain() const noexcept override { return peak_gain_; }
  std::string name() const override;

 private:
  geom::Vec3 boresight_;
  double cos_half_;
  double peak_gain_;
  double sidelobe_amplitude_;
};

}  // namespace surfos::em
