// Scalar complex-gain propagation primitives.
//
// Model: narrowband complex channel amplitudes. A free-space leg of length d
// contributes amplitude lambda/(4*pi*d) and phase -k*d; wall interactions
// multiply Fresnel coefficients; surface elements multiply their coefficient
// c_i and the element capture/re-radiation factor (A_e / (4*pi*d1*d2) form,
// the standard RIS "product-distance" path loss).
#pragma once

#include <complex>

#include "em/band.hpp"
#include "em/cx.hpp"
#include "geom/vec3.hpp"

namespace surfos::em {

/// Free-space wavenumber k = 2*pi / lambda.
inline double wavenumber(double frequency_hz) noexcept {
  return 2.0 * M_PI * frequency_hz / kSpeedOfLight;
}

/// Friis amplitude factor for a free-space leg: lambda / (4*pi*d).
/// Squared, this is the free-space power path gain between isotropic
/// antennas.
inline double friis_amplitude(double frequency_hz, double distance_m) noexcept {
  return wavelength(frequency_hz) / (4.0 * M_PI * distance_m);
}

/// Complex gain of a direct free-space leg including propagation phase.
inline Cx free_space_gain(double frequency_hz, double distance_m) noexcept {
  return std::polar(friis_amplitude(frequency_hz, distance_m),
                    -wavenumber(frequency_hz) * distance_m);
}

/// Effective aperture of a surface element with physical area `area_m2` and
/// incidence/emission angle cosines. Element amplitude factor for the
/// cascaded TX -> element -> RX hop (excluding the element's own coefficient
/// and the endpoint antenna gains):
///   area * sqrt(cos_in * cos_out) / (4*pi*d1*d2) * exp(-jk(d1+d2))
Cx element_cascade_gain(double frequency_hz, double element_area_m2,
                        double cos_in, double cos_out, double d1_m,
                        double d2_m) noexcept;

/// One-hop gain used when composing surface-to-surface cascade matrices:
/// the receiving element's capture factor * free-space leg. The emitting
/// element's re-radiation factor is accounted on its own hop, so chaining
/// hop gains reproduces element_cascade_gain for the two-hop case.
Cx element_hop_gain(double frequency_hz, double element_area_m2,
                    double cos_angle, double distance_m) noexcept;

/// Element-to-element hop for surface-to-surface cascades. From the aperture
/// formalism: the emitting element re-radiates with gain 4*pi*A_p*cos_p /
/// lambda^2 and the receiving element captures with aperture A_q*cos_q,
/// giving amplitude sqrt(A_p*cos_p) * sqrt(A_q*cos_q) / (lambda * d).
Cx element_to_element_gain(double frequency_hz, double area_p_m2, double cos_p,
                           double area_q_m2, double cos_q,
                           double distance_m) noexcept;

/// Thermal noise power [dBm] in `bandwidth_hz` with a receiver noise figure.
double noise_floor_dbm(double bandwidth_hz, double noise_figure_db) noexcept;

/// Shannon capacity [bit/s] for a given SNR (linear) and bandwidth.
double shannon_capacity(double bandwidth_hz, double snr_linear) noexcept;

/// Link-budget context: converts channel amplitude |h| to RSS / SNR /
/// capacity. Immutable value type shared by the simulator and orchestrator.
struct LinkBudget {
  double tx_power_dbm = 20.0;
  double bandwidth_hz = 400.0 * kMHz;
  double noise_figure_db = 7.0;

  double noise_dbm() const noexcept {
    return noise_floor_dbm(bandwidth_hz, noise_figure_db);
  }
  /// Received signal strength [dBm] for channel power gain |h|^2.
  double rss_dbm(double channel_power_gain) const noexcept;
  /// Linear SNR for channel power gain |h|^2.
  double snr(double channel_power_gain) const noexcept;
  double snr_db(double channel_power_gain) const noexcept;
  /// Capacity [bit/s] for channel power gain |h|^2.
  double capacity(double channel_power_gain) const noexcept;
};

}  // namespace surfos::em
