// Complex scalar/vector/matrix primitives for channel math.
//
// Channels, surface coefficient vectors, and cascade matrices are all dense
// complex arrays; a small purpose-built matrix type keeps the hot loops
// simple and dependency-free. Matrices are row-major.
#pragma once

#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace surfos::em {

using Cx = std::complex<double>;
using CVec = std::vector<Cx>;

inline Cx expj(double phase) noexcept {
  return {std::cos(phase), std::sin(phase)};
}

/// |v|^2 summed over a complex vector.
inline double power(const CVec& v) noexcept {
  double sum = 0.0;
  for (const Cx& c : v) sum += std::norm(c);
  return sum;
}

/// Inner product a^H b (conjugate-linear in the first argument).
inline Cx inner(const CVec& a, const CVec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("inner: size mismatch");
  Cx sum{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::conj(a[i]) * b[i];
  return sum;
}

/// Plain dot product sum_i a_i * b_i (no conjugation) — used when composing
/// propagation vectors with surface coefficients.
inline Cx dot(const CVec& a, const CVec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  Cx sum{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

/// Dense row-major complex matrix.
class CMat {
 public:
  CMat() = default;
  CMat(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  Cx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const Cx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const CVec& data() const noexcept { return data_; }
  CVec& data() noexcept { return data_; }

  /// y = M x.
  CVec mul(const CVec& x) const {
    if (x.size() != cols_) throw std::invalid_argument("CMat::mul: size");
    CVec y(rows_, Cx{});
    for (std::size_t r = 0; r < rows_; ++r) {
      Cx sum{};
      const Cx* row = &data_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
      y[r] = sum;
    }
    return y;
  }

  /// y = M^T x (no conjugation).
  CVec mul_transpose(const CVec& x) const {
    if (x.size() != rows_) throw std::invalid_argument("CMat::mul_transpose: size");
    CVec y(cols_, Cx{});
    for (std::size_t r = 0; r < rows_; ++r) {
      const Cx* row = &data_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * x[r];
    }
    return y;
  }

  /// Element-wise scale of a column vector then multiply: y = M diag(d) x.
  CVec mul_diag(const CVec& d, const CVec& x) const {
    if (d.size() != cols_ || x.size() != cols_) {
      throw std::invalid_argument("CMat::mul_diag: size");
    }
    CVec y(rows_, Cx{});
    for (std::size_t r = 0; r < rows_; ++r) {
      Cx sum{};
      const Cx* row = &data_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * d[c] * x[c];
      y[r] = sum;
    }
    return y;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  CVec data_;
};

}  // namespace surfos::em
