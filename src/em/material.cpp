#include "em/material.hpp"

#include <cmath>
#include <stdexcept>

#include "em/band.hpp"

namespace surfos::em {

namespace {
constexpr double kEps0 = 8.8541878128e-12;  // vacuum permittivity [F/m]

struct FresnelAmplitudes {
  std::complex<double> te;  // perpendicular (s) polarization
  std::complex<double> tm;  // parallel (p) polarization
  std::complex<double> te_t;
  std::complex<double> tm_t;
};

// Fresnel coefficients at a half-space boundary air -> material.
FresnelAmplitudes fresnel(std::complex<double> eps_r, double cos_i) {
  const double sin_i2 = 1.0 - cos_i * cos_i;
  const std::complex<double> root = std::sqrt(eps_r - sin_i2);
  FresnelAmplitudes out;
  out.te = (cos_i - root) / (cos_i + root);
  out.tm = (eps_r * cos_i - root) / (eps_r * cos_i + root);
  out.te_t = 2.0 * cos_i / (cos_i + root);
  out.tm_t = 2.0 * std::sqrt(eps_r) * cos_i / (eps_r * cos_i + root);
  return out;
}

// Field attenuation through `thickness` of lossy material at frequency f.
std::complex<double> internal_propagation(std::complex<double> eps_r,
                                          double frequency_hz,
                                          double thickness_m, double cos_i) {
  const double k0 = 2.0 * M_PI * frequency_hz / kSpeedOfLight;
  const double sin_i2 = 1.0 - cos_i * cos_i;
  // Longitudinal wavenumber inside the slab.
  const std::complex<double> kz = k0 * std::sqrt(eps_r - sin_i2);
  // exp(-j kz d): the imaginary part of kz (negative for our convention
  // Im(eps) < 0) yields exponential decay.
  const std::complex<double> j{0.0, 1.0};
  return std::exp(-j * kz * thickness_m);
}
}  // namespace

std::complex<double> Material::permittivity(double frequency_hz) const noexcept {
  const double f_ghz = frequency_hz / 1e9;
  const double sigma = conductivity_a * std::pow(f_ghz, conductivity_b);
  const double imag = sigma / (2.0 * M_PI * frequency_hz * kEps0);
  return {rel_permittivity, -imag};
}

SlabResponse slab_response(const Material& material, double frequency_hz,
                           double incidence_rad) noexcept {
  const double cos_i = std::cos(incidence_rad);
  const auto eps = material.permittivity(frequency_hz);
  const auto fr = fresnel(eps, cos_i);
  const auto decay =
      internal_propagation(eps, frequency_hz, material.thickness_m, cos_i);
  SlabResponse out;
  out.reflection = 0.5 * (std::norm(fr.te) + std::norm(fr.tm));
  // Single-pass slab transmission: entry * internal decay * exit. Exit
  // coefficients follow from reciprocity (1 + Gamma on each side); we use the
  // standard slab formula without multiple internal bounces, which lossy
  // building materials suppress.
  const std::complex<double> t_te = (1.0 - fr.te * fr.te) * decay;
  const std::complex<double> t_tm = (1.0 - fr.tm * fr.tm) * decay;
  out.transmission = 0.5 * (std::norm(t_te) + std::norm(t_tm));
  if (out.transmission > 1.0) out.transmission = 1.0;
  if (out.reflection > 1.0) out.reflection = 1.0;
  return out;
}

std::complex<double> reflection_coefficient(const Material& material,
                                            double frequency_hz,
                                            double incidence_rad) noexcept {
  const double cos_i = std::cos(incidence_rad);
  const auto fr = fresnel(material.permittivity(frequency_hz), cos_i);
  // Unpolarized power magnitude with TE phase (scalar ray approximation).
  const double mag =
      std::sqrt(0.5 * (std::norm(fr.te) + std::norm(fr.tm)));
  const double phase = std::arg(fr.te);
  return std::polar(mag, phase);
}

std::complex<double> transmission_coefficient(const Material& material,
                                              double frequency_hz,
                                              double incidence_rad) noexcept {
  const double cos_i = std::cos(incidence_rad);
  const auto eps = material.permittivity(frequency_hz);
  const auto fr = fresnel(eps, cos_i);
  const auto decay =
      internal_propagation(eps, frequency_hz, material.thickness_m, cos_i);
  const std::complex<double> t_te = (1.0 - fr.te * fr.te) * decay;
  const std::complex<double> t_tm = (1.0 - fr.tm * fr.tm) * decay;
  const double mag = std::sqrt(0.5 * (std::norm(t_te) + std::norm(t_tm)));
  return std::polar(std::fmin(mag, 1.0), std::arg(t_te));
}

util::simd::SlabConsts slab_consts(const Material& material,
                                   double frequency_hz) noexcept {
  const auto eps = material.permittivity(frequency_hz);
  const double k0 = 2.0 * M_PI * frequency_hz / kSpeedOfLight;
  return {eps.real(), eps.imag(), k0 * material.thickness_m};
}

int MaterialDb::add(Material material) {
  materials_.push_back(std::move(material));
  return static_cast<int>(materials_.size()) - 1;
}

const Material& MaterialDb::get(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= materials_.size()) {
    throw std::out_of_range("MaterialDb: unknown material id");
  }
  return materials_[static_cast<std::size_t>(id)];
}

MaterialDb MaterialDb::standard() {
  // Parameters follow ITU-R P.2040-1 Table 3 (a, b for sigma = a f^b).
  MaterialDb db;
  db.add({"concrete", 5.31, 0.0326, 0.8095, 0.20});      // kMatConcrete
  db.add({"brick", 3.75, 0.038, 0.0, 0.15});              // kMatBrick
  db.add({"plasterboard", 2.94, 0.0116, 0.7076, 0.03});   // kMatPlasterboard
  db.add({"wood", 1.99, 0.0047, 1.0718, 0.04});           // kMatWood
  db.add({"glass", 6.27, 0.0043, 1.1925, 0.006});         // kMatGlass
  db.add({"metal", 1.0, 1e7, 0.0, 0.002});                // kMatMetal
  db.add({"floor", 5.31, 0.0326, 0.8095, 0.30});          // kMatFloor
  return db;
}

}  // namespace surfos::em
