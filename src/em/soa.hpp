// Structure-of-arrays complex storage for the vectorized channel math.
//
// CxPlanes holds one complex vector as two 64-byte-aligned double planes
// (re, im), zero-padded up to a multiple of the SIMD virtual lane width so
// kernels can always run full blocks: padded lanes hold exactly +0.0 and
// contribute +0 products to every reduction, which keeps results
// independent of the padding. CxPlaneMat is the row-major matrix variant
// with a padded row stride. The invariant "padding is zero" is maintained
// by resize/zero and by every kernel that writes rows (tails only store
// live lanes).
#pragma once

#include <algorithm>
#include <cstddef>

#include "em/cx.hpp"
#include "util/simd.hpp"

namespace surfos::em {

/// Rounds a logical length up to a whole number of SIMD lanes.
inline std::size_t padded_len(std::size_t n) noexcept {
  const std::size_t w = util::simd::kWidth;
  return (n + w - 1) / w * w;
}

class CxPlanes {
 public:
  CxPlanes() = default;
  explicit CxPlanes(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    n_ = n;
    re_.assign(padded_len(n), 0.0);
    im_.assign(padded_len(n), 0.0);
  }
  void zero() {
    std::fill(re_.begin(), re_.end(), 0.0);
    std::fill(im_.begin(), im_.end(), 0.0);
  }

  std::size_t size() const noexcept { return n_; }
  std::size_t padded_size() const noexcept { return re_.size(); }
  /// Heap bytes held by the two planes (precompute-store accounting).
  std::size_t bytes() const noexcept {
    return (re_.capacity() + im_.capacity()) * sizeof(double);
  }

  double* re() noexcept { return re_.data(); }
  double* im() noexcept { return im_.data(); }
  const double* re() const noexcept { return re_.data(); }
  const double* im() const noexcept { return im_.data(); }

  Cx at(std::size_t i) const noexcept { return {re_[i], im_[i]}; }
  void set(std::size_t i, Cx v) noexcept {
    re_[i] = v.real();
    im_[i] = v.imag();
  }

  void assign(const CVec& v) {
    resize(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) set(i, v[i]);
  }
  CVec to_cvec() const {
    CVec out(n_);
    for (std::size_t i = 0; i < n_; ++i) out[i] = at(i);
    return out;
  }

 private:
  std::size_t n_ = 0;
  util::simd::AlignedVec re_, im_;
};

/// Row-major complex matrix as SoA planes; each row starts at a 64-byte
/// boundary (stride = padded cols) and its padding lanes are zero.
class CxPlaneMat {
 public:
  CxPlaneMat() = default;
  CxPlaneMat(std::size_t rows, std::size_t cols) { resize(rows, cols); }

  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    stride_ = padded_len(cols);
    re_.assign(rows * stride_, 0.0);
    im_.assign(rows * stride_, 0.0);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t stride() const noexcept { return stride_; }
  /// Heap bytes held by the two planes (precompute-store accounting).
  std::size_t bytes() const noexcept {
    return (re_.capacity() + im_.capacity()) * sizeof(double);
  }

  double* row_re(std::size_t r) noexcept { return re_.data() + r * stride_; }
  double* row_im(std::size_t r) noexcept { return im_.data() + r * stride_; }
  const double* row_re(std::size_t r) const noexcept {
    return re_.data() + r * stride_;
  }
  const double* row_im(std::size_t r) const noexcept {
    return im_.data() + r * stride_;
  }
  const double* re() const noexcept { return re_.data(); }
  const double* im() const noexcept { return im_.data(); }

  Cx at(std::size_t r, std::size_t c) const noexcept {
    return {row_re(r)[c], row_im(r)[c]};
  }
  void set(std::size_t r, std::size_t c, Cx v) noexcept {
    row_re(r)[c] = v.real();
    row_im(r)[c] = v.imag();
  }

  CVec row_cvec(std::size_t r) const {
    CVec out(cols_);
    for (std::size_t c = 0; c < cols_; ++c) out[c] = at(r, c);
    return out;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0, stride_ = 0;
  util::simd::AlignedVec re_, im_;
};

}  // namespace surfos::em
