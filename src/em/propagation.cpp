#include "em/propagation.hpp"

#include <cmath>

#include "util/units.hpp"

namespace surfos::em {

Cx element_cascade_gain(double frequency_hz, double element_area_m2,
                        double cos_in, double cos_out, double d1_m,
                        double d2_m) noexcept {
  if (cos_in <= 0.0 || cos_out <= 0.0) return {};
  const double amplitude = element_area_m2 *
                           std::sqrt(cos_in * cos_out) /
                           (4.0 * M_PI * d1_m * d2_m);
  const double phase = -wavenumber(frequency_hz) * (d1_m + d2_m);
  return std::polar(amplitude, phase);
}

Cx element_hop_gain(double frequency_hz, double element_area_m2,
                    double cos_angle, double distance_m) noexcept {
  if (cos_angle <= 0.0) return {};
  // Split the cascade symmetrically: each hop carries
  // sqrt(area * cos) / (sqrt(4*pi) * d), so a two-hop product reproduces
  // element_cascade_gain exactly: area*sqrt(cos_in*cos_out)/(4*pi*d1*d2).
  const double amplitude = std::sqrt(element_area_m2 * cos_angle) /
                           (std::sqrt(4.0 * M_PI) * distance_m);
  const double phase = -wavenumber(frequency_hz) * distance_m;
  return std::polar(amplitude, phase);
}

Cx element_to_element_gain(double frequency_hz, double area_p_m2, double cos_p,
                           double area_q_m2, double cos_q,
                           double distance_m) noexcept {
  if (cos_p <= 0.0 || cos_q <= 0.0) return {};
  const double amplitude = std::sqrt(area_p_m2 * cos_p) *
                           std::sqrt(area_q_m2 * cos_q) /
                           (wavelength(frequency_hz) * distance_m);
  return std::polar(amplitude, -wavenumber(frequency_hz) * distance_m);
}

double noise_floor_dbm(double bandwidth_hz, double noise_figure_db) noexcept {
  // kT at 290 K is -174 dBm/Hz.
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

double shannon_capacity(double bandwidth_hz, double snr_linear) noexcept {
  return bandwidth_hz * std::log2(1.0 + snr_linear);
}

double LinkBudget::rss_dbm(double channel_power_gain) const noexcept {
  if (channel_power_gain <= 0.0) return -300.0;  // floor for "no path"
  return tx_power_dbm + util::to_db(channel_power_gain);
}

double LinkBudget::snr(double channel_power_gain) const noexcept {
  return util::from_db(rss_dbm(channel_power_gain) - noise_dbm());
}

double LinkBudget::snr_db(double channel_power_gain) const noexcept {
  return rss_dbm(channel_power_gain) - noise_dbm();
}

double LinkBudget::capacity(double channel_power_gain) const noexcept {
  return shannon_capacity(bandwidth_hz, snr(channel_power_gain));
}

}  // namespace surfos::em
