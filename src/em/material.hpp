// Building materials and their electromagnetic behaviour.
//
// Reflection and transmission follow the Fresnel equations for a lossy
// dielectric slab, with material parameters (relative permittivity,
// conductivity, thickness) taken from ITU-R P.2040 building-material tables.
// The ray tracer consults this to weight specular reflections and to
// accumulate through-wall penetration loss — the effect that makes mmWave
// coverage collapse behind walls and motivates surfaces in the first place.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "util/simd.hpp"

namespace surfos::em {

struct Material {
  std::string name;
  double rel_permittivity = 1.0;   ///< Real part of epsilon_r.
  double conductivity_a = 0.0;     ///< ITU-R P.2040 sigma = a * f_GHz^b [S/m].
  double conductivity_b = 0.0;
  double thickness_m = 0.1;        ///< Slab thickness for transmission loss.

  /// Complex relative permittivity at a frequency.
  std::complex<double> permittivity(double frequency_hz) const noexcept;
};

/// Power reflection / transmission coefficients for a slab at an incidence
/// angle (radians from normal). Unpolarized: average of TE and TM.
struct SlabResponse {
  double reflection = 0.0;    ///< |Gamma|^2 in [0, 1].
  double transmission = 0.0;  ///< |T|^2 through the slab in [0, 1].
};

SlabResponse slab_response(const Material& material, double frequency_hz,
                           double incidence_rad) noexcept;

/// Amplitude (field) reflection coefficient, unpolarized magnitude with the
/// phase of the TE component (adequate for our scalar ray model).
std::complex<double> reflection_coefficient(const Material& material,
                                            double frequency_hz,
                                            double incidence_rad) noexcept;

/// Amplitude transmission coefficient through the slab, including internal
/// attenuation.
std::complex<double> transmission_coefficient(const Material& material,
                                              double frequency_hz,
                                              double incidence_rad) noexcept;

/// Precomputed per-(material, frequency) constants for the SIMD Fresnel
/// kernels: complex relative permittivity and k0 * thickness. Hoists the
/// std::pow in Material::permittivity out of the per-segment hot path.
util::simd::SlabConsts slab_consts(const Material& material,
                                   double frequency_hz) noexcept;

/// Material database keyed by a small id (stored per-triangle in meshes).
class MaterialDb {
 public:
  /// Registers a material; returns its id.
  int add(Material material);

  const Material& get(int id) const;
  std::size_t size() const noexcept { return materials_.size(); }

  /// Pre-populated database with ITU-R P.2040-style defaults. Ids are stable:
  /// see the k* constants below.
  static MaterialDb standard();

 private:
  std::vector<Material> materials_;
};

// Stable ids within MaterialDb::standard().
inline constexpr int kMatConcrete = 0;
inline constexpr int kMatBrick = 1;
inline constexpr int kMatPlasterboard = 2;
inline constexpr int kMatWood = 3;
inline constexpr int kMatGlass = 4;
inline constexpr int kMatMetal = 5;
inline constexpr int kMatFloor = 6;

}  // namespace surfos::em
