#include "em/antenna.hpp"

#include <stdexcept>

#include "util/simd.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace surfos::em {

void AntennaPattern::amplitude_gain_batch(const double* ux, const double* uy,
                                          const double* uz, double sign,
                                          double* out,
                                          std::size_t n) const noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = amplitude_gain({sign * ux[i], sign * uy[i], sign * uz[i]});
  }
}

CosinePowerAntenna::CosinePowerAntenna(const geom::Vec3& boresight,
                                       double exponent)
    : boresight_(boresight.normalized()), q_(exponent) {
  if (exponent < 0.0) {
    throw std::invalid_argument("CosinePowerAntenna: exponent must be >= 0");
  }
}

double CosinePowerAntenna::amplitude_gain(
    const geom::Vec3& direction) const noexcept {
  const double c = boresight_.dot(direction.normalized());
  if (c <= 0.0) return 0.0;
  // Power gain: 2(q+1) cos^q(theta); amplitude gain is its square root.
  return std::sqrt(2.0 * (q_ + 1.0) * std::pow(c, q_));
}

std::string CosinePowerAntenna::name() const {
  return util::format("cos^%.1f", q_);
}

SectorAntenna::SectorAntenna(const geom::Vec3& boresight, double beamwidth_deg,
                             double sidelobe_db)
    : boresight_(boresight.normalized()) {
  if (beamwidth_deg <= 0.0 || beamwidth_deg > 360.0) {
    throw std::invalid_argument("SectorAntenna: bad beamwidth");
  }
  const double half_rad = util::deg_to_rad(beamwidth_deg / 2.0);
  cos_half_ = std::cos(half_rad);
  // Gain from the beam solid angle of a cone: G = 2 / (1 - cos(half)).
  peak_gain_ = 2.0 / std::max(1e-9, 1.0 - cos_half_);
  sidelobe_amplitude_ =
      std::sqrt(peak_gain_ * util::from_db(-sidelobe_db));
}

double SectorAntenna::amplitude_gain(const geom::Vec3& direction) const noexcept {
  const double c = boresight_.dot(direction.normalized());
  if (c >= cos_half_) return std::sqrt(peak_gain_);
  return sidelobe_amplitude_;
}

void SectorAntenna::amplitude_gain_batch(const double* ux, const double* uy,
                                         const double* uz, double sign,
                                         double* out,
                                         std::size_t n) const noexcept {
  // Directions are unit length by contract, so the renormalization in the
  // scalar path is skipped here (<= 1 ulp on the dot product, and the
  // threshold compare is a step function of a continuous quantity).
  util::simd::ops().sector_gain(boresight_.x, boresight_.y, boresight_.z, sign,
                                cos_half_, std::sqrt(peak_gain_),
                                sidelobe_amplitude_, ux, uy, uz, out, n);
}

std::string SectorAntenna::name() const {
  return util::format("sector(G=%.1f dBi)", util::to_db(peak_gain_));
}

}  // namespace surfos::em
