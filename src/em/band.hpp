// Frequency bands. The paper's hardware catalog (Table 1) spans 0.9 GHz
// through 60 GHz; SurfOS schedules services per band (frequency-division
// multiplexing across surfaces, Section 3.2).
#pragma once

#include <string_view>

namespace surfos::em {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

inline constexpr double wavelength(double frequency_hz) noexcept {
  return kSpeedOfLight / frequency_hz;
}

inline constexpr double kGHz = 1e9;
inline constexpr double kMHz = 1e6;

/// Canonical bands used by the catalog and the orchestrator's FDM planner.
enum class Band {
  kSub1GHz,    // 0.9 GHz (Scrolls lower edge)
  k2_4GHz,     // 2.4 GHz ISM (LAIA, RFocus, LLAMA, LAVA)
  k5GHz,       // 5 GHz Wi-Fi (ScatterMIMO, RFlens, Diffract)
  k24GHz,      // 24 GHz (mmWall, NR-Surface)
  k28GHz,      // 28 GHz 5G NR FR2
  k60GHz,      // 60 GHz WiGig (MilliMirror, AutoMS)
};

/// Representative carrier frequency for a band [Hz].
constexpr double band_center(Band band) noexcept {
  switch (band) {
    case Band::kSub1GHz: return 0.9 * kGHz;
    case Band::k2_4GHz: return 2.4 * kGHz;
    case Band::k5GHz: return 5.2 * kGHz;
    case Band::k24GHz: return 24.0 * kGHz;
    case Band::k28GHz: return 28.0 * kGHz;
    case Band::k60GHz: return 60.0 * kGHz;
  }
  return 0.0;
}

/// Typical channel bandwidth for a band [Hz] (used in noise/capacity math).
constexpr double band_bandwidth(Band band) noexcept {
  switch (band) {
    case Band::kSub1GHz: return 20.0 * kMHz;
    case Band::k2_4GHz: return 20.0 * kMHz;
    case Band::k5GHz: return 80.0 * kMHz;
    case Band::k24GHz: return 400.0 * kMHz;
    case Band::k28GHz: return 400.0 * kMHz;
    case Band::k60GHz: return 2160.0 * kMHz;
  }
  return 0.0;
}

constexpr std::string_view band_name(Band band) noexcept {
  switch (band) {
    case Band::kSub1GHz: return "0.9 GHz";
    case Band::k2_4GHz: return "2.4 GHz";
    case Band::k5GHz: return "5 GHz";
    case Band::k24GHz: return "24 GHz";
    case Band::k28GHz: return "28 GHz";
    case Band::k60GHz: return "60 GHz";
  }
  return "?";
}

/// True when two bands overlap enough that a surface resonant on `a` affects
/// signals on `b` (first-order adjacency model for the interference checks
/// the paper raises in Section 2.1, e.g. a 2.4 GHz surface blocking 3 GHz).
constexpr bool bands_adjacent(Band a, Band b) noexcept {
  if (a == b) return true;
  const double fa = band_center(a);
  const double fb = band_center(b);
  const double lo = fa < fb ? fa : fb;
  const double hi = fa < fb ? fb : fa;
  return hi / lo < 1.6;  // within ~60% fractional separation
}

}  // namespace surfos::em
