// Multi-site fleet management (paper Section 1: SurfOS "should effortlessly
// scale to multiple services atop one or multiple nearby surfaces, or even
// across sites. SurfOS can be a service from ISPs, a module of Cloud RAN, or
// a standalone system from a new service provider").
//
// A Fleet owns one SurfOS instance per site (apartment, office floor,
// venue), routes application requests to the right site, steps every site's
// control plane, and aggregates inventory/health for the operator's view.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/surfos.hpp"
#include "sim/precompute_store.hpp"

namespace surfos {

struct SiteReport {
  std::string site_id;
  orch::StepReport step;
};

struct FleetReport {
  std::vector<SiteReport> sites;
  std::size_t total_assignments = 0;
  std::size_t total_optimizations = 0;
  std::size_t total_starved = 0;
  /// Fleet-wide control-cycle trace: per-site StepTraces summed (timings
  /// accumulate; counts are exact and deterministic).
  orch::StepTrace trace;
};

struct FleetInventory {
  std::size_t sites = 0;
  std::size_t surfaces = 0;
  std::size_t endpoints = 0;
  std::size_t active_tasks = 0;
  std::size_t tasks_meeting_goals = 0;
};

class Fleet {
 public:
  /// Registers a site. The environment behind the SurfOS instance must
  /// outlive the fleet. Throws on duplicate ids.
  SurfOS& add_site(std::string site_id, std::unique_ptr<SurfOS> os);

  /// Throws std::invalid_argument naming the site id when unknown.
  SurfOS& site(const std::string& site_id);
  SurfOS* find_site(const std::string& site_id) noexcept;
  const SurfOS* find_site(const std::string& site_id) const noexcept;
  std::vector<std::string> site_ids() const;
  std::size_t size() const noexcept { return sites_.size(); }

  /// Routes a user utterance to one site's broker.
  broker::IntentResult handle_utterance(const std::string& site_id,
                                        const std::string& text);

  /// Runs one control-plane cycle on every site. Sites step concurrently on
  /// the process-wide thread pool in SURFOS_FLEET_SHARDS contiguous shards
  /// (0 = one shard per pool thread); the report is assembled by a serial
  /// site-index-order reduction, so it is bit-identical for any
  /// SURFOS_THREADS / shard count.
  FleetReport step_all();

  /// Cross-site inventory for the operator's dashboard.
  FleetInventory inventory() const;

  /// Snapshot of the process-wide precompute store the fleet's sites share
  /// (hits/misses/evictions, resident bytes and entries). Convenience for
  /// dashboards; identical to PrecomputeStore::instance().stats().
  static sim::PrecomputeStore::Stats precompute_stats() {
    return sim::PrecomputeStore::instance().stats();
  }

 private:
  /// Resolved shard count for `site_count` sites (SURFOS_FLEET_SHARDS knob).
  static std::size_t shard_count(std::size_t site_count);

  std::map<std::string, std::unique_ptr<SurfOS>> sites_;
};

}  // namespace surfos
