// Library version constants.
#pragma once

namespace surfos {

inline constexpr int kVersionMajor = 0;
inline constexpr int kVersionMinor = 1;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "0.1.0";

}  // namespace surfos
