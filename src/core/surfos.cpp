#include "core/surfos.hpp"

#include <stdexcept>

#include "hal/driver.hpp"
#include "telemetry/telemetry.hpp"

namespace surfos {

SurfOS::SurfOS(const sim::Environment* environment, sim::TxSpec ap,
               em::Band band, em::LinkBudget budget,
               orch::OrchestratorOptions options)
    : band_(band) {
  orch::OrchestratorContext context;
  context.environment = environment;
  context.ap = ap;
  context.default_band = band;
  context.budget = budget;
  orchestrator_ = std::make_unique<orch::Orchestrator>(&registry_, &clock_,
                                                       context, options);
  // Default broker region: a 1 m patch at the AP until callers add regions.
  geom::SampleGrid default_region(ap.position.x - 0.5, ap.position.x + 0.5,
                                  ap.position.y - 0.5, ap.position.y + 0.5,
                                  1.0, 3, 3);
  broker_ = std::make_unique<broker::ServiceBroker>(orchestrator_.get(),
                                                    default_region);
}

const std::string& SurfOS::install_programmable(
    const surface::CatalogEntry& entry, const geom::Frame& pose,
    std::size_t rows, std::size_t cols, std::string device_id) {
  if (entry.reconfigurability != surface::Reconfigurability::kProgrammable) {
    throw std::invalid_argument("install_programmable: passive design " +
                                entry.name);
  }
  panels_.push_back(std::make_unique<surface::SurfacePanel>(
      surface::instantiate(entry, pose, rows, cols)));
  auto spec = hal::spec_for_panel(*panels_.back(), band_);
  auto driver = std::make_unique<hal::ProgrammableSurfaceDriver>(
      std::move(device_id), panels_.back().get(), std::move(spec), &clock_);
  SURFOS_COUNT("core.surfaces.installed");
  return registry_.add_surface(std::move(driver));
}

const std::string& SurfOS::install_passive(
    const surface::CatalogEntry& entry, const geom::Frame& pose,
    std::size_t rows, std::size_t cols, std::string device_id,
    const surface::SurfaceConfig& fabricated_config) {
  panels_.push_back(std::make_unique<surface::SurfacePanel>(
      surface::instantiate(entry, pose, rows, cols)));
  auto spec = hal::spec_for_panel(*panels_.back(), band_);
  auto driver = std::make_unique<hal::PassiveSurfaceDriver>(
      std::move(device_id), panels_.back().get(), std::move(spec));
  if (!fabricated_config.empty()) {
    const auto status = driver->fabricate(fabricated_config);
    if (status != hal::DriverStatus::kOk) {
      throw std::invalid_argument(std::string("install_passive: ") +
                                  hal::to_string(status));
    }
  }
  SURFOS_COUNT("core.surfaces.installed");
  return registry_.add_surface(std::move(driver));
}

Result<InstallReport> SurfOS::install_from_datasheet(
    const std::string& datasheet_text, const geom::Frame& pose,
    std::string device_id) {
  auto parsed = broker::parse_datasheet(datasheet_text);
  if (!parsed.blueprint) {
    return make_error(ErrorCode::kParseError,
                      "install_from_datasheet: unusable datasheet");
  }
  panels_.push_back(std::make_unique<surface::SurfacePanel>(
      broker::build_panel(*parsed.blueprint, pose)));
  auto driver = broker::synthesize_driver(*parsed.blueprint,
                                          panels_.back().get(),
                                          std::move(device_id), &clock_);
  InstallReport report;
  report.device_id = registry_.add_surface(std::move(driver));
  report.warnings = std::move(parsed.warnings);
  SURFOS_COUNT("core.surfaces.installed");
  return report;
}

void SurfOS::register_endpoint(std::string id, hal::EndpointKind kind,
                               const geom::Vec3& position) {
  hal::EndpointDevice endpoint;
  endpoint.id = std::move(id);
  endpoint.kind = kind;
  endpoint.position = position;
  endpoint.band = band_;
  registry_.add_endpoint(std::move(endpoint));
}

const surface::SurfacePanel& SurfOS::panel_of(
    const std::string& device_id) const {
  const auto* driver = registry_.find_surface(device_id);
  if (driver == nullptr) {
    throw std::invalid_argument("panel_of: unknown device " + device_id);
  }
  return driver->panel();
}

}  // namespace surfos
