// Result-based service API status codes (the PR 8 API redesign).
//
// The pre-daemon service surface reported failure by throwing
// std::invalid_argument — fine inside one process, useless across a socket:
// an exception has no stable numeric identity, so a remote client can only
// pattern-match message strings. Every public service entry point
// (ServiceBroker::start_app/submit_demand/stop_app/resume_app,
// SurfOS::install_from_datasheet, the daemon request handlers) now returns
// surfos::Result<T>: either a value or an Error carrying an ErrorCode whose
// numeric value is *wire-stable* — it round-trips through the surfosd
// protocol unchanged, and old clients can interpret codes minted by newer
// daemons (new codes only ever append).
//
// Header-only so every layer (telemetry included, which links nothing) can
// use it without a dependency edge.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace surfos {

/// Wire-stable error identities. Values are part of the surfosd protocol:
/// never renumber or remove an entry; append new codes before kInternal and
/// bump kErrorCodeCount. (DESIGN.md "Daemon & wire protocol" carries the
/// registry table.)
enum class ErrorCode : std::uint16_t {
  kOk = 0,                  ///< Success sentinel (never carried by an Error).
  kInvalidArgument = 1,     ///< Caller passed something structurally wrong.
  kNotFound = 2,            ///< Unknown app / task / site / device id.
  kAlreadyExists = 3,       ///< App id already running, duplicate site, ...
  kAdmissionShed = 4,       ///< Demand refused by the bounded admission queue.
  kParseError = 5,          ///< Datasheet / payload text did not parse.
  kUnsupportedVersion = 6,  ///< Wire protocol version not spoken here.
  kMalformedFrame = 7,      ///< Frame/TLV structure damaged or truncated.
  kUnknownCommand = 8,      ///< Message type the daemon does not implement.
  kOutOfRange = 9,          ///< Oversized frame, knob value below minimum, ...
  kUnavailable = 10,        ///< Daemon draining / no site ready to serve.
  kIoError = 11,            ///< Socket or snapshot-file I/O failed.
  kInternal = 12,           ///< Invariant violation; a bug, not an input.
};

/// One past the largest assigned code — the first value a *newer* protocol
/// peer could legitimately send us that we cannot name.
inline constexpr std::uint16_t kErrorCodeCount = 13;

constexpr const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kAlreadyExists: return "already-exists";
    case ErrorCode::kAdmissionShed: return "admission-shed";
    case ErrorCode::kParseError: return "parse-error";
    case ErrorCode::kUnsupportedVersion: return "unsupported-version";
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kUnknownCommand: return "unknown-command";
    case ErrorCode::kOutOfRange: return "out-of-range";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown-error";  // A newer peer's code: identity preserved by value.
}

/// A failed operation: stable code plus a human diagnostic. The message is
/// advisory (it crosses the wire but clients must branch on `code` only).
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

inline Error make_error(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

/// Value-or-Error return for the service API. Access discipline:
///
///   auto r = broker.start_app("vr", demand);
///   if (!r.ok()) return r.error().code;   // or propagate: r.error()
///   use(r.value());
///
/// value() on a failed Result (and error() on a successful one) throws
/// std::logic_error — that is a caller bug, not a runtime condition, and it
/// must never be reachable from wire input.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : state_(std::in_place_index<1>, std::move(error)) {}
  Result(ErrorCode code, std::string message)
      : state_(std::in_place_index<1>, Error{code, std::move(message)}) {}

  bool ok() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  /// kOk on success, the error's code otherwise.
  ErrorCode code() const noexcept {
    return ok() ? ErrorCode::kOk : std::get<1>(state_).code;
  }

  const T& value() const& {
    require(ok(), "Result::value() on error");
    return std::get<0>(state_);
  }
  T& value() & {
    require(ok(), "Result::value() on error");
    return std::get<0>(state_);
  }
  T&& value() && {
    require(ok(), "Result::value() on error");
    return std::get<0>(std::move(state_));
  }
  T value_or(T fallback) const& {
    return ok() ? std::get<0>(state_) : std::move(fallback);
  }

  const Error& error() const& {
    require(!ok(), "Result::error() on success");
    return std::get<1>(state_);
  }
  Error&& error() && {
    require(!ok(), "Result::error() on success");
    return std::get<1>(std::move(state_));
  }

 private:
  static void require(bool condition, const char* what) {
    if (!condition) throw std::logic_error(what);
  }

  std::variant<T, Error> state_;
};

/// Result<void>: success carries nothing; the same error discipline.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::in_place, std::move(error)) {}
  Result(ErrorCode code, std::string message)
      : error_(std::in_place, Error{code, std::move(message)}) {}

  bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }
  ErrorCode code() const noexcept {
    return ok() ? ErrorCode::kOk : error_->code;
  }
  const Error& error() const& {
    if (ok()) throw std::logic_error("Result::error() on success");
    return *error_;
  }
  Error&& error() && {
    if (ok()) throw std::logic_error("Result::error() on success");
    return std::move(*error_);
  }

 private:
  std::optional<Error> error_;
};

/// Success for Result<void> call sites that want to be explicit.
inline Result<void> ok_result() { return Result<void>(); }

/// Bridges the deprecated throwing shims: converts an error Result back into
/// the exception the pre-redesign API threw at that site.
template <typename T>
T unwrap_or_throw(Result<T> result) {
  if (!result.ok()) {
    throw std::invalid_argument(std::move(result).error().message);
  }
  return std::move(result).value();
}

inline void unwrap_or_throw(Result<void> result) {
  if (!result.ok()) {
    throw std::invalid_argument(std::move(result).error().message);
  }
}

}  // namespace surfos
