// Runtime knob configuration: one snapshot, hot-reloadable between epochs.
//
// Before PR 8 every SURFOS_* size knob was read straight from the process
// environment, several of them once at construction time (admission queue
// capacity, trace-ring size, eval-cache size) — so a long-running surfosd
// could never retune them without a restart, and `putenv` mid-run is not a
// control plane. Config fixes the plumbing:
//
//   - `Config::from_env()` captures every registered SURFOS_* knob once (the
//     daemon does this at startup, before any thread exists).
//   - `install_config()` publishes the snapshot process-wide; `surfos-ctl
//     set-knob` lands in `set_config_knob()`, which swaps in an updated copy
//     atomically (readers hold a shared_ptr; no torn reads).
//   - Knob *readers* call `core::knob(name, fallback, min)` instead of
//     util::env_size directly: with a snapshot installed the snapshot wins,
//     otherwise behavior is byte-for-byte the old env read — library users
//     and tests see no change.
//
// Hot-reload granularity is the reader's re-read cadence: per control epoch
// (fleet shards, daemon epoch period), per submit (admission capacity), or
// construction-only (thread count, trace ring) — the registry below records
// which, and DESIGN.md documents it per knob.
//
// Header-only for the same reason as util/env.hpp: telemetry and util sit
// below surfos_core in the link order but still own knobs.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.hpp"
#include "util/env.hpp"

namespace surfos::core {

/// When a knob's new value actually takes effect after a set-knob.
enum class KnobReload : std::uint8_t {
  kPerEpoch,       ///< Re-read every control epoch / call.
  kPerSubmit,      ///< Re-read on every admission submit.
  kConstruction,   ///< Read once when the owning object is built.
};

struct KnobSpec {
  const char* name;        ///< Environment-variable spelling (the knob's id).
  std::size_t min_value;   ///< env_size minimum; set-knob rejects below this.
  KnobReload reload;
  const char* doc;
};

/// Every size knob the daemon can snapshot and surfos-ctl can set. Names
/// are the single source of truth for set-knob validation.
inline constexpr KnobSpec kKnobRegistry[] = {
    {"SURFOS_THREADS", 1, KnobReload::kConstruction,
     "worker threads in the process-wide pool"},
    {"SURFOS_FLEET_SHARDS", 0, KnobReload::kPerEpoch,
     "concurrent shards in Fleet::step_all (0 = one per pool thread)"},
    {"SURFOS_ADMIT_QUEUE", 1, KnobReload::kPerSubmit,
     "bounded admission-queue capacity per broker"},
    {"SURFOS_EVAL_CACHE", 0, KnobReload::kConstruction,
     "incremental channel-eval memo entries (0 = off)"},
    {"SURFOS_TRACE_BUFFER", 1, KnobReload::kConstruction,
     "flight-recorder ring capacity in events"},
    {"SURFOS_HAL_BATCH", 0, KnobReload::kConstruction,
     "epoch-batched HAL writes (0 = per-element baseline)"},
    {"SURFOS_EPOCH_MS", 1, KnobReload::kPerEpoch,
     "surfosd control-epoch period in milliseconds"},
    {"SURFOS_PUMP_MAX", 1, KnobReload::kPerEpoch,
     "max demands admitted per control epoch per site"},
    {"SURFOS_SUB_OUTBOX", 1, KnobReload::kPerEpoch,
     "per-subscriber outbox depth in frames before drop-oldest"},
    {"SURFOS_SLO_OVERRUN_STREAK", 1, KnobReload::kPerEpoch,
     "consecutive epoch-budget overruns before a site degrades"},
    {"SURFOS_SLO_QUEUE_PCT", 1, KnobReload::kPerEpoch,
     "admission-queue depth as % of SURFOS_ADMIT_QUEUE that degrades"},
    {"SURFOS_SLO_RETRY_PCT", 1, KnobReload::kPerEpoch,
     "ARQ retransmissions as % of sends per epoch that degrades"},
    {"SURFOS_SLO_SHED", 1, KnobReload::kPerEpoch,
     "demands shed in one epoch that degrades a site"},
    {"SURFOS_PRECOMPUTE", 0, KnobReload::kConstruction,
     "content-addressed precompute sharing (0 = private dense artifacts)"},
    {"SURFOS_PRECOMPUTE_CACHE", 0, KnobReload::kPerEpoch,
     "precompute-store byte budget (LRU; 0 = keep only pinned artifacts)"},
};

inline const KnobSpec* find_knob(std::string_view name) noexcept {
  for (const KnobSpec& spec : kKnobRegistry) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

/// An immutable snapshot of knob values. A knob with no entry falls back to
/// the reader's built-in default (same rule as an unset env var).
class Config {
 public:
  Config() = default;

  /// Captures every registered knob from the process environment, parsing
  /// with the same rejection rules as util::env_size (junk falls back to
  /// "unset", never to a wrong number).
  static Config from_env() {
    Config config;
    for (const KnobSpec& spec : kKnobRegistry) {
      // Sentinel fallback: env_size cannot return npos-1 for a real knob, so
      // two probes distinguish "unset/invalid" from any parsed value.
      constexpr std::size_t kProbeA = static_cast<std::size_t>(-2);
      constexpr std::size_t kProbeB = static_cast<std::size_t>(-3);
      const std::size_t a = util::env_size(spec.name, kProbeA, spec.min_value);
      if (a == kProbeA &&
          util::env_size(spec.name, kProbeB, spec.min_value) == kProbeB) {
        continue;  // unset or rejected: leave the reader's default in force
      }
      config.values_[spec.name] = a;
    }
    return config;
  }

  /// Sets a knob, validating the name against the registry and the value
  /// against the knob's minimum.
  Result<void> set(std::string_view name, std::size_t value) {
    const KnobSpec* spec = find_knob(name);
    if (spec == nullptr) {
      return {ErrorCode::kNotFound,
              "unknown knob: " + std::string(name)};
    }
    if (value < spec->min_value) {
      return {ErrorCode::kOutOfRange,
              std::string(name) + " must be >= " +
                  std::to_string(spec->min_value)};
    }
    values_[std::string(name)] = value;
    return {};
  }

  std::optional<std::size_t> lookup(std::string_view name) const {
    const auto it = values_.find(std::string(name));
    return it == values_.end() ? std::nullopt
                               : std::optional<std::size_t>(it->second);
  }

  /// Registry order, with the snapshot's value where one is set.
  std::vector<std::pair<std::string, std::optional<std::size_t>>> entries()
      const {
    std::vector<std::pair<std::string, std::optional<std::size_t>>> out;
    out.reserve(std::size(kKnobRegistry));
    for (const KnobSpec& spec : kKnobRegistry) {
      out.emplace_back(spec.name, lookup(spec.name));
    }
    return out;
  }

 private:
  std::map<std::string, std::size_t, std::less<>> values_;
};

namespace detail {
struct ConfigSlot {
  std::mutex mutex;
  std::shared_ptr<const Config> snapshot;  ///< nullptr = library mode.
};
inline ConfigSlot& config_slot() {
  static ConfigSlot slot;
  return slot;
}
}  // namespace detail

/// Publishes `snapshot` as the process-wide knob source (the daemon calls
/// this once at startup, then again per set-knob via set_config_knob).
inline void install_config(Config snapshot) {
  auto& slot = detail::config_slot();
  const std::lock_guard<std::mutex> lock(slot.mutex);
  slot.snapshot = std::make_shared<const Config>(std::move(snapshot));
}

/// Removes the installed snapshot: knob reads fall back to the environment
/// (tests use this to restore library mode).
inline void clear_config() {
  auto& slot = detail::config_slot();
  const std::lock_guard<std::mutex> lock(slot.mutex);
  slot.snapshot.reset();
}

/// The current snapshot (nullptr when none installed).
inline std::shared_ptr<const Config> config_snapshot() {
  auto& slot = detail::config_slot();
  const std::lock_guard<std::mutex> lock(slot.mutex);
  return slot.snapshot;
}

/// Copy-update-swap: readers holding the old snapshot finish with old
/// values; the next knob() sees the new one. No snapshot installed is an
/// error — set-knob only makes sense under a daemon.
inline Result<void> set_config_knob(std::string_view name, std::size_t value) {
  auto& slot = detail::config_slot();
  const std::lock_guard<std::mutex> lock(slot.mutex);
  if (!slot.snapshot) {
    return {ErrorCode::kUnavailable, "no config snapshot installed"};
  }
  Config updated = *slot.snapshot;
  if (Result<void> set = updated.set(name, value); !set.ok()) {
    return set;
  }
  slot.snapshot = std::make_shared<const Config>(std::move(updated));
  return {};
}

/// The knob read every SURFOS_* size-knob site routes through: installed
/// snapshot first, environment otherwise. `fallback`/`min_value` have the
/// util::env_size semantics.
inline std::size_t knob(const char* name, std::size_t fallback,
                        std::size_t min_value) {
  if (const auto snapshot = config_snapshot()) {
    if (const auto value = snapshot->lookup(name)) {
      return *value < min_value ? fallback : *value;
    }
    return fallback;  // snapshot installed, knob unset: daemon-start default
  }
  return util::env_size(name, fallback, min_value);
}

}  // namespace surfos::core
