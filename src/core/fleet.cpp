#include "core/fleet.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace surfos {

SurfOS& Fleet::add_site(std::string site_id, std::unique_ptr<SurfOS> os) {
  if (!os) throw std::invalid_argument("Fleet: null site");
  if (site_id.empty()) throw std::invalid_argument("Fleet: empty site id");
  const auto [it, inserted] = sites_.emplace(std::move(site_id), std::move(os));
  if (!inserted) {
    throw std::invalid_argument("Fleet: duplicate site id " + it->first);
  }
  return *it->second;
}

SurfOS& Fleet::site(const std::string& site_id) {
  const auto it = sites_.find(site_id);
  if (it == sites_.end()) {
    throw std::invalid_argument("Fleet: unknown site " + site_id);
  }
  return *it->second;
}

SurfOS* Fleet::find_site(const std::string& site_id) noexcept {
  const auto it = sites_.find(site_id);
  return it == sites_.end() ? nullptr : it->second.get();
}

const SurfOS* Fleet::find_site(const std::string& site_id) const noexcept {
  const auto it = sites_.find(site_id);
  return it == sites_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Fleet::site_ids() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [id, os] : sites_) out.push_back(id);
  return out;
}

broker::IntentResult Fleet::handle_utterance(const std::string& site_id,
                                             const std::string& text) {
  return site(site_id).broker().handle_utterance(text);
}

FleetReport Fleet::step_all() {
  FleetReport report;
  telemetry::TraceSpan span("core.fleet.step_all");
  SURFOS_COUNT("core.fleet.step_alls");
  for (auto& [id, os] : sites_) {
    SiteReport site_report;
    site_report.site_id = id;
    site_report.step = os->step();
    report.total_assignments += site_report.step.assignment_count;
    report.total_optimizations += site_report.step.optimizations_run;
    report.total_starved += site_report.step.starved.size();
    const orch::StepTrace& trace = site_report.step.trace;
    report.trace.schedule_us += trace.schedule_us;
    report.trace.optimize_us += trace.optimize_us;
    report.trace.actuate_us += trace.actuate_us;
    report.trace.measure_us += trace.measure_us;
    report.trace.total_us += trace.total_us;
    report.trace.plans_fresh += trace.plans_fresh;
    report.trace.plans_reused += trace.plans_reused;
    report.trace.objective_evaluations += trace.objective_evaluations;
    report.trace.config_writes += trace.config_writes;
    report.trace.trace_ids.insert(report.trace.trace_ids.end(),
                                  trace.trace_ids.begin(),
                                  trace.trace_ids.end());
    report.sites.push_back(std::move(site_report));
  }
  return report;
}

FleetInventory Fleet::inventory() const {
  FleetInventory inventory;
  inventory.sites = sites_.size();
  for (const auto& [id, os] : sites_) {
    inventory.surfaces += os->registry().surface_count();
    inventory.endpoints += os->registry().endpoints().size();
    for (const auto* task : os->orchestrator().tasks()) {
      if (task->active()) {
        ++inventory.active_tasks;
        if (task->goal_met) ++inventory.tasks_meeting_goals;
      }
    }
  }
  return inventory;
}

}  // namespace surfos
