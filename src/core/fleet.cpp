#include "core/fleet.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/config.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace surfos {

SurfOS& Fleet::add_site(std::string site_id, std::unique_ptr<SurfOS> os) {
  if (!os) throw std::invalid_argument("Fleet: null site");
  if (site_id.empty()) throw std::invalid_argument("Fleet: empty site id");
  const auto [it, inserted] = sites_.emplace(std::move(site_id), std::move(os));
  if (!inserted) {
    throw std::invalid_argument("Fleet: duplicate site id " + it->first);
  }
  return *it->second;
}

SurfOS& Fleet::site(const std::string& site_id) {
  const auto it = sites_.find(site_id);
  if (it == sites_.end()) {
    throw std::invalid_argument("Fleet: unknown site " + site_id);
  }
  return *it->second;
}

SurfOS* Fleet::find_site(const std::string& site_id) noexcept {
  const auto it = sites_.find(site_id);
  return it == sites_.end() ? nullptr : it->second.get();
}

const SurfOS* Fleet::find_site(const std::string& site_id) const noexcept {
  const auto it = sites_.find(site_id);
  return it == sites_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Fleet::site_ids() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [id, os] : sites_) out.push_back(id);
  return out;
}

broker::IntentResult Fleet::handle_utterance(const std::string& site_id,
                                             const std::string& text) {
  return site(site_id).broker().handle_utterance(text);
}

std::size_t Fleet::shard_count(std::size_t site_count) {
  if (site_count == 0) return 0;
  // SURFOS_FLEET_SHARDS: 0 (the default) means auto — one shard per pool
  // thread, so the shard count tracks SURFOS_THREADS. Explicit values cap
  // the stepping concurrency without touching the shared pool. Read through
  // the config snapshot per step_all, so `surfos-ctl set-knob` retunes the
  // stepping concurrency between epochs without a restart.
  std::size_t shards = core::knob("SURFOS_FLEET_SHARDS", 0, 0);
  if (shards == 0) shards = util::global_pool().thread_count();
  return std::clamp<std::size_t>(shards, 1, site_count);
}

FleetReport Fleet::step_all() {
  FleetReport report;
  telemetry::TraceSpan span("core.fleet.step_all", sites_.size());
  SURFOS_COUNT("core.fleet.step_alls");

  // Snapshot the sites in map (site-id) order: index i is site i for every
  // thread count, which the determinism contract below leans on.
  std::vector<std::pair<const std::string*, SurfOS*>> sites;
  sites.reserve(sites_.size());
  for (auto& [id, os] : sites_) sites.emplace_back(&id, os.get());

  // Sharded step: each shard owns a contiguous site range and steps it
  // serially; shards run concurrently on the process-wide pool. Every site
  // writes into its own pre-sized slot and all aggregation happens *after*
  // the parallel region, serially and in site-index order — so a
  // FleetReport is bit-identical for any SURFOS_THREADS / shard count
  // (sites share no mutable state: each SurfOS owns its clock, registry,
  // orchestrator, and broker).
  std::vector<SiteReport> slots(sites.size());
  const std::size_t shards = shard_count(sites.size());
  util::global_pool().parallel_for(0, shards, [&](std::size_t shard) {
    const std::size_t begin = shard * sites.size() / shards;
    const std::size_t end = (shard + 1) * sites.size() / shards;
    for (std::size_t i = begin; i < end; ++i) {
      // Per-site deterministic trace context (site-index-derived, never
      // wall-clock) so each site's step spans land in the flight recorder
      // joined to one id; the span arg carries the 1-based site index.
      telemetry::TraceScope scope(telemetry::TraceContext{
          telemetry::make_trace_id(telemetry::trace_domain("core.fleet.site"),
                                   i + 1),
          0});
      telemetry::TraceSpan site_span("core.fleet.site.step", i + 1);
      slots[i].site_id = *sites[i].first;
      slots[i].step = sites[i].second->step();
    }
  });

  for (SiteReport& site_report : slots) {
    report.total_assignments += site_report.step.assignment_count;
    report.total_optimizations += site_report.step.optimizations_run;
    report.total_starved += site_report.step.starved.size();
    const orch::StepTrace& trace = site_report.step.trace;
    report.trace.schedule_us += trace.schedule_us;
    report.trace.optimize_us += trace.optimize_us;
    report.trace.actuate_us += trace.actuate_us;
    report.trace.measure_us += trace.measure_us;
    report.trace.total_us += trace.total_us;
    report.trace.plans_fresh += trace.plans_fresh;
    report.trace.plans_reused += trace.plans_reused;
    report.trace.objective_evaluations += trace.objective_evaluations;
    report.trace.config_writes += trace.config_writes;
    report.trace.element_updates += trace.element_updates;
    report.trace.writes_staged += trace.writes_staged;
    report.trace.writes_coalesced += trace.writes_coalesced;
    report.trace.writes_elided += trace.writes_elided;
    report.trace.trace_ids.insert(report.trace.trace_ids.end(),
                                  trace.trace_ids.begin(),
                                  trace.trace_ids.end());
    report.trace.task_trace_ids.insert(report.trace.task_trace_ids.end(),
                                       trace.task_trace_ids.begin(),
                                       trace.task_trace_ids.end());
    report.sites.push_back(std::move(site_report));
  }
  return report;
}

FleetInventory Fleet::inventory() const {
  FleetInventory inventory;
  inventory.sites = sites_.size();
  for (const auto& [id, os] : sites_) {
    inventory.surfaces += os->registry().surface_count();
    inventory.endpoints += os->registry().endpoints().size();
    for (const auto* task : os->orchestrator().tasks()) {
      if (task->active()) {
        ++inventory.active_tasks;
        if (task->goal_met) ++inventory.tasks_meeting_goals;
      }
    }
  }
  return inventory;
}

}  // namespace surfos
