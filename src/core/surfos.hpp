// SurfOS — the public facade.
//
// One object wires the full stack for a managed radio environment:
//
//   SurfOS os(environment, ap, band, budget);
//   os.install_programmable(*catalog.find("NR-Surface"), pose, 16, 16, "s0");
//   os.register_client("VR_headset", position);
//   auto task = os.orchestrator().enhance_link({"VR_headset", 30.0, 10.0});
//   os.step();
//
// The facade owns the simulated clock, the device registry, every installed
// panel (drivers hold non-owning pointers), the orchestrator, and the
// service broker. Hardware can be installed from the Table-1 catalog or
// synthesized from datasheet text (the Section 3.4 automation path).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "broker/specgen.hpp"
#include "core/status.hpp"
#include "hal/registry.hpp"
#include "orch/orchestrator.hpp"
#include "sim/environment.hpp"
#include "surface/catalog.hpp"

namespace surfos {

/// Result of a datasheet-driven install: the registered device id plus any
/// non-fatal parse warnings. Replaces the old `std::vector<std::string>*`
/// warnings out-parameter.
struct InstallReport {
  std::string device_id;
  std::vector<std::string> warnings;
};

class SurfOS {
 public:
  /// `environment` must be finalized and outlive the SurfOS instance.
  SurfOS(const sim::Environment* environment, sim::TxSpec ap, em::Band band,
         em::LinkBudget budget, orch::OrchestratorOptions options = {});

  // --- Hardware installation ----------------------------------------------

  /// Installs a programmable surface of a catalog design at a pose.
  const std::string& install_programmable(const surface::CatalogEntry& entry,
                                          const geom::Frame& pose,
                                          std::size_t rows, std::size_t cols,
                                          std::string device_id);

  /// Installs a passive surface; `fabricated_config` (if non-empty) is the
  /// one-time fabrication pattern.
  const std::string& install_passive(
      const surface::CatalogEntry& entry, const geom::Frame& pose,
      std::size_t rows, std::size_t cols, std::string device_id,
      const surface::SurfaceConfig& fabricated_config = {});

  /// Parses a datasheet and installs the described surface (driver
  /// generation workflow). kParseError on a fatally unusable datasheet;
  /// non-fatal parse warnings come back in the report.
  Result<InstallReport> install_from_datasheet(
      const std::string& datasheet_text, const geom::Frame& pose,
      std::string device_id);

  /// Registers a client/sensor endpoint the orchestrator can target.
  void register_endpoint(std::string id, hal::EndpointKind kind,
                         const geom::Vec3& position);

  // --- Layers ---------------------------------------------------------------

  hal::SimClock& clock() noexcept { return clock_; }
  hal::DeviceRegistry& registry() noexcept { return registry_; }
  const hal::DeviceRegistry& registry() const noexcept { return registry_; }
  orch::Orchestrator& orchestrator() noexcept { return *orchestrator_; }
  const orch::Orchestrator& orchestrator() const noexcept {
    return *orchestrator_;
  }
  broker::ServiceBroker& broker() noexcept { return *broker_; }

  const surface::SurfacePanel& panel_of(const std::string& device_id) const;

  /// One control-plane cycle (schedule -> optimize -> actuate -> measure).
  orch::StepReport step() { return orchestrator_->step(); }

 private:
  hal::SimClock clock_;
  hal::DeviceRegistry registry_;
  std::vector<std::unique_ptr<surface::SurfacePanel>> panels_;
  std::unique_ptr<orch::Orchestrator> orchestrator_;
  std::unique_ptr<broker::ServiceBroker> broker_;
  em::Band band_;
};

}  // namespace surfos
