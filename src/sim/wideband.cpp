#include "sim/wideband.hpp"

#include <cmath>
#include <stdexcept>

namespace surfos::sim {

WidebandChannel::WidebandChannel(
    const Environment* environment, double center_hz, double bandwidth_hz,
    std::size_t subcarriers, TxSpec tx,
    std::vector<const surface::SurfacePanel*> panels,
    std::vector<geom::Vec3> rx_points, const em::AntennaPattern* rx_antenna,
    ChannelOptions options) {
  if (subcarriers < 2 || bandwidth_hz <= 0.0 ||
      center_hz <= bandwidth_hz / 2.0) {
    throw std::invalid_argument("WidebandChannel: bad frequency plan");
  }
  frequencies_.resize(subcarriers);
  channels_.reserve(subcarriers);
  for (std::size_t k = 0; k < subcarriers; ++k) {
    frequencies_[k] = center_hz - bandwidth_hz / 2.0 +
                      bandwidth_hz * static_cast<double>(k) /
                          static_cast<double>(subcarriers - 1);
    channels_.push_back(std::make_unique<SceneChannel>(
        environment, frequencies_[k], tx, panels, rx_points, rx_antenna,
        options));
  }
}

std::vector<double> WidebandChannel::snr_per_subcarrier(
    std::size_t j, std::span<const surface::SurfaceConfig> configs,
    const em::LinkBudget& budget) const {
  std::vector<double> out;
  out.reserve(channels_.size());
  for (const auto& channel : channels_) {
    const auto coeffs = channel->coefficients_for(configs);
    out.push_back(budget.snr_db(std::norm(channel->evaluate(j, coeffs))));
  }
  return out;
}

double WidebandChannel::wideband_capacity(
    std::size_t j, std::span<const surface::SurfaceConfig> configs,
    const em::LinkBudget& budget) const {
  double sum = 0.0;
  for (const auto& channel : channels_) {
    const auto coeffs = channel->coefficients_for(configs);
    const double power = std::norm(channel->evaluate(j, coeffs));
    sum += budget.capacity(power);
  }
  return sum / static_cast<double>(channels_.size());
}

}  // namespace surfos::sim
