// Batched image-method tracer for the direct (non-surface) channel
// component: the same deterministic path set as RayTracer, evaluated for
// util::simd::kWidth receivers per SIMD block.
//
// The expensive per-receiver-independent work — bounce-sequence
// enumeration, the TX-side forward image cascade, per-(material, frequency)
// slab constants, and the triangle-pair scene layout the transmission
// kernel consumes — is hoisted to construction / the start of a trace, so
// the per-receiver cost is just the backward plane clips, per-leg
// transmission products, and Fresnel bounces, all in SIMD.
//
// Numerical note: path gains agree with RayTracer to ULP-level, not
// bitwise (no acos/cos round trip on incidence angles, kernel sincos
// instead of libm, block-wise product order). They ARE bit-identical
// across SIMD backends — see DESIGN.md "Vectorized dense kernel".
#pragma once

#include <span>
#include <vector>

#include "em/antenna.hpp"
#include "em/cx.hpp"
#include "geom/vec3.hpp"
#include "sim/environment.hpp"
#include "sim/raytracer.hpp"
#include "util/simd.hpp"

namespace surfos::sim {

class BatchTracer {
 public:
  /// Same validation as RayTracer (throws on null/unfinalized environment
  /// or non-positive frequency).
  BatchTracer(const Environment* environment, double frequency_hz,
              TracerOptions options = {});

  /// h_out[j] = sum over propagation paths tx -> rx_points[j] of
  /// path.gain * tx_gain(departure) * rx_gain(-arrival), i.e. the
  /// antenna-weighted coherent sum SceneChannel::precompute needs.
  /// Parallel over receiver blocks; deterministic under any thread count
  /// and bit-identical across SIMD backends.
  void trace_weighted(const geom::Vec3& tx,
                      std::span<const geom::Vec3> rx_points,
                      const em::AntennaPattern& tx_pattern,
                      const em::AntennaPattern& rx_pattern,
                      std::span<em::Cx> h_out) const;

  double frequency_hz() const noexcept { return frequency_hz_; }

 private:
  void trace_block(const geom::Vec3& tx,
                   std::span<const geom::Vec3> rx_points, std::size_t base,
                   std::span<const std::vector<geom::Vec3>> images,
                   const em::AntennaPattern& tx_pattern,
                   const em::AntennaPattern& rx_pattern,
                   std::span<em::Cx> h_out) const;

  const Environment* environment_;
  double frequency_hz_;
  TracerOptions options_;

  util::simd::TriPairs tris_;                   ///< Scene occluders, paired.
  std::vector<util::simd::PlaneRect> planes_;   ///< Reflector rectangles.
  std::vector<util::simd::SlabConsts> reflector_slab_;  ///< Per reflector.
  /// Bounce sequences in RayTracer's enumeration order (order ascending,
  /// code ascending, immediate repeats skipped).
  std::vector<std::vector<int>> sequences_;
};

}  // namespace surfos::sim
