// Content-addressed precompute store: cross-site / cross-epoch sharing of
// SceneChannel's precomputed SoA artifacts.
//
// A SceneChannel's precompute splits cleanly into an RX-independent part
// (the per-panel TX->element vectors f and the panel->panel cascade
// matrices) and a per-RX part (the element->RX vectors g plus the direct
// component h_dir), and every value is bit-deterministic in the scene
// inputs: geometry, materials, panel layout, TX placement, antenna
// patterns, frequency, and channel options (PR 4/6 determinism
// guarantees). That makes the artifacts content-addressable — a structural
// 128-bit digest (util/digest.hpp) over those inputs keys an immutable,
// refcounted artifact that any number of channels across any number of
// Fleet sites share by shared_ptr instead of recomputing. A 100-site fleet
// of identical rooms precomputes once; a daemon endpoint arriving at a
// position any site has seen before costs a cache hit.
//
// The store is process-global (like the thread pool and the telemetry
// registry), mutex-guarded, and bounded by a byte-budget LRU
// (SURFOS_PRECOMPUTE_CACHE, default 256 MiB). Eviction skips pinned
// entries: an artifact some live channel still references (use_count > 1
// under the store lock) is never dropped, so a hit can never invalidate a
// channel out from under its owner. Concurrent misses of the same key may
// build duplicates; the first publish wins and later builders adopt it, so
// shards racing on one store stay value-identical.
//
// Ablation: SURFOS_PRECOMPUTE=0 (or set_precompute_enabled(false)) bypasses
// the store entirely — SceneChannel builds private, dense artifacts through
// the exact same fill code, so results are byte-identical either way.
// Telemetry: sim.precompute.{hits,misses,evictions} counters (scheduling-
// dependent across threads, hence _SCHED) and the sim.precompute.bytes
// gauge.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "em/cx.hpp"
#include "em/soa.hpp"
#include "util/digest.hpp"

namespace surfos::sim {

/// Process-wide precompute-store switch, initialized from SURFOS_PRECOMPUTE
/// (0 disables; unset/non-zero enables).
bool precompute_enabled() noexcept;
/// Overrides the switch at runtime (tests / equivalence benches).
void set_precompute_enabled(bool on) noexcept;

/// The store's byte budget, from SURFOS_PRECOMPUTE_CACHE (bytes; 0 = no
/// caching beyond pinned entries). Re-read per insert, so surfos-ctl
/// set-knob takes effect at the next publish.
std::size_t precompute_cache_bytes() noexcept;
/// Overrides the budget at runtime (tests; takes precedence over the knob).
void set_precompute_cache_bytes(std::size_t bytes) noexcept;
/// Removes the runtime override (knob/env rules apply again).
void clear_precompute_cache_override() noexcept;

/// RX-independent precompute for one scene digest: TX->element vectors and
/// panel->panel cascades. Immutable once published.
struct ScenePrecompute {
  std::vector<em::CxPlanes> f;                         ///< [panel]
  std::vector<std::vector<em::CxPlaneMat>> cascades;   ///< [q][p]
  std::size_t bytes = 0;  ///< Set by finalize_bytes() before publishing.

  void finalize_bytes() noexcept {
    std::size_t total = sizeof(*this);
    for (const em::CxPlanes& p : f) total += p.bytes();
    for (const auto& row : cascades) {
      for (const em::CxPlaneMat& m : row) total += m.bytes();
    }
    bytes = total;
  }
};

/// Per-RX-point precompute under one scene digest: element->RX vectors for
/// every panel plus the direct component. Immutable once published.
struct RxRowPrecompute {
  std::vector<em::CxPlanes> g;  ///< [panel]
  em::Cx h_dir{};
  std::size_t bytes = 0;

  void finalize_bytes() noexcept {
    std::size_t total = sizeof(*this);
    for (const em::CxPlanes& p : g) total += p.bytes();
    bytes = total;
  }
};

class PrecomputeStore {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;    ///< Current resident artifact bytes.
    std::size_t entries = 0;  ///< Current resident artifact count.
  };

  /// The process-wide store every SceneChannel shares.
  static PrecomputeStore& instance();

  /// Returns the scene artifact for `key`, building (outside the lock) and
  /// publishing it on a miss. When concurrent callers race on one key, the
  /// first publish wins and the others adopt it.
  std::shared_ptr<const ScenePrecompute> acquire_scene(
      const util::ConfigDigest& key,
      const std::function<std::shared_ptr<ScenePrecompute>()>& build);

  /// The row artifact for `key`, or nullptr on a miss (counted).
  std::shared_ptr<const RxRowPrecompute> lookup_row(
      const util::ConfigDigest& key);

  /// Publishes a freshly built row; returns the resident artifact (the
  /// published one, or an earlier concurrent publisher's — first wins).
  std::shared_ptr<const RxRowPrecompute> publish_row(
      const util::ConfigDigest& key,
      std::shared_ptr<const RxRowPrecompute> row);

  Stats stats() const;
  std::size_t bytes() const;
  /// Drops every resident entry (live channels keep their shared_ptrs;
  /// the store just forgets). Counters are monotonic and survive.
  void clear();

 private:
  enum class Kind : std::uint8_t { kScene, kRow };

  struct Key {
    Kind kind = Kind::kScene;
    util::ConfigDigest digest;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(
          (k.digest.lo ^ (k.digest.hi * 0x9e3779b97f4a7c15ull)) +
          static_cast<std::uint64_t>(k.kind));
    }
  };
  struct Entry {
    std::shared_ptr<const void> ptr;
    std::size_t bytes = 0;
    std::list<Key>::iterator lru;  ///< Position in lru_ (front = recent).
  };

  PrecomputeStore() = default;

  std::shared_ptr<const void> get(const Key& key);
  /// Inserts (or adopts the resident entry on a publish race) and enforces
  /// the byte budget. Returns the resident pointer.
  std::shared_ptr<const void> put(const Key& key,
                                  std::shared_ptr<const void> ptr,
                                  std::size_t artifact_bytes);
  void enforce_budget_locked();

  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> map_;
  std::list<Key> lru_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace surfos::sim
