// Environment dynamics: the "unknown and dynamic external events such as
// human movement" (paper 3) that make surfaces an OS problem rather than a
// compile-time library (paper 5: "events such as furniture movement and
// people walking can require dynamic reconfiguration of surface states").
//
// A DynamicEnvironment wraps a static floorplan plus a set of moving
// occluders (people modeled as absorbing boxes on waypoint tracks). Each
// advance() rebuilds the environment mesh at the new positions and reports
// whether anything moved — the trigger for the orchestrator's
// notify_environment_changed().
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "geom/vec3.hpp"
#include "hal/clock.hpp"
#include "sim/environment.hpp"

namespace surfos::sim {

/// A mobile absorbing body (person, cart) following waypoints at a constant
/// speed, looping over its track.
struct MovingBlocker {
  std::string id;
  std::vector<geom::Vec3> waypoints;  ///< Ground-level track (z ignored).
  double speed_mps = 1.0;
  double width_m = 0.5;   ///< Footprint side length.
  double height_m = 1.75;
  int material_id = 0;    ///< Typically an absorbing "body" material.

  /// Position along the looped track after `elapsed` seconds.
  geom::Vec3 position_at(double elapsed_s) const;
};

/// Rebuilds a scene's Environment as its blockers move.
class DynamicEnvironment {
 public:
  /// `build_static` adds the immutable geometry (walls, furniture) into a
  /// fresh Environment; it is re-invoked on every rebuild.
  using StaticBuilder = std::function<void(Environment&)>;

  DynamicEnvironment(em::MaterialDb materials, StaticBuilder build_static);

  void add_blocker(MovingBlocker blocker);
  std::size_t blocker_count() const noexcept { return blockers_.size(); }

  /// Advances simulated time and rebuilds the environment when any blocker
  /// moved more than `rebuild_threshold_m`. Returns true when a rebuild
  /// happened (callers should invalidate cached channels then).
  bool advance_to(hal::Micros now, double rebuild_threshold_m = 0.05);

  /// Current environment snapshot (finalized). Stable pointer between
  /// rebuilds only; re-fetch after every advance_to() that returned true.
  const Environment& environment() const noexcept { return *current_; }

  /// Current position of a blocker by id (throws for unknown ids).
  geom::Vec3 blocker_position(const std::string& id) const;

  std::size_t rebuild_count() const noexcept { return rebuilds_; }

 private:
  void rebuild();

  em::MaterialDb materials_;
  StaticBuilder build_static_;
  std::vector<MovingBlocker> blockers_;
  std::vector<geom::Vec3> last_built_positions_;
  std::unique_ptr<Environment> current_;
  double elapsed_s_ = 0.0;
  std::size_t rebuilds_ = 0;
};

/// Registers the standard absorbing "human body" material in a database and
/// returns its id (mostly water: high permittivity, very lossy).
int add_body_material(em::MaterialDb& materials);

}  // namespace surfos::sim
