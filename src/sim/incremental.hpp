// Incremental channel evaluation: linear-response caching, rank-1 probe
// updates, and config-digest memoization.
//
// The composed channel h(rx) is *linear* in panel p's per-element
// coefficients once every other panel is held fixed (channel.hpp): changing
// one element — or one shared control group, since grouped elements share a
// coefficient — moves h by
//
//   delta h(rx) = (c' - c) * sum_{e in group} w_e(rx),   w_e = dh/dc_e,
//
// where the effective weights w_e fold the direct term and every cascade
// contribution of the *other* panels' frozen coefficients. ChannelEvalCache
// precomputes, per RX point, the baseline h and the per-control-group weight
// sums, turning each single-coordinate probe (finite-difference gradients,
// annealing moves) from O(elements + cascades) into O(1).
//
// DigestMemo is the companion full-evaluation cache: bounded, digest-keyed
// (util/digest.hpp) result vectors for configurations the orchestrator
// replays across optimizer restarts and re-scheduling. A memo hit returns
// the stored vector, so memoized results are byte-identical to recomputation
// by construction.
//
// Both layers sit behind the SURFOS_INCREMENTAL switch (on by default; set
// to 0/off/false for the dense fallback) and report hit/miss/delta counters
// into the telemetry registry. The rank-1 path is mathematically exact but
// reassociates floating-point sums, so probe values agree with the dense
// path to ~1e-12 relative; everything digest-memoized is bit-exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "em/cx.hpp"
#include "em/soa.hpp"
#include "util/digest.hpp"

namespace surfos::sim {

class SceneChannel;

/// Process-wide incremental-evaluation switch, initialized from the
/// SURFOS_INCREMENTAL environment variable ("0"/"off"/"false" disable it,
/// anything else — including unset — enables it).
bool incremental_enabled() noexcept;
/// Overrides the switch at runtime (tests / equivalence benches).
void set_incremental_enabled(bool on) noexcept;

/// Default DigestMemo capacity (entries), from SURFOS_EVAL_CACHE (>= 0;
/// 0 disables memoization; unset/invalid -> 64).
std::size_t eval_cache_capacity() noexcept;
/// Overrides the default capacity at runtime (applies to memos constructed
/// afterwards; tests).
void set_eval_cache_capacity(std::size_t entries) noexcept;

/// Bounded, thread-safe digest -> value-vector memo with FIFO eviction.
/// Scalars are stored as size-1 vectors. Capacity 0 disables storage.
class DigestMemo {
 public:
  explicit DigestMemo(std::size_t capacity = eval_cache_capacity());

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const;

  /// On hit, copies the stored vector into `out` and returns true.
  bool lookup(const util::ConfigDigest& key, std::vector<double>& out) const;
  /// Scalar convenience: returns the stored value on hit.
  bool lookup(const util::ConfigDigest& key, double& out) const;

  void store(const util::ConfigDigest& key, std::span<const double> values);
  void store(const util::ConfigDigest& key, double value);

  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;

 private:
  struct KeyHash {
    std::size_t operator()(const util::ConfigDigest& d) const noexcept {
      return static_cast<std::size_t>(d.lo ^ (d.hi * 0x9e3779b97f4a7c15ull));
    }
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<util::ConfigDigest, std::vector<double>, KeyHash> map_;
  std::deque<util::ConfigDigest> order_;  ///< Insertion order for eviction.
  mutable Stats stats_;
};

/// Linear-response cache over one SceneChannel: baseline values plus
/// per-control-group effective-weight sums for O(1) rank-1 probe updates.
///
/// Concurrency contract: `rebase`/`based_on` and every evaluation may be
/// called concurrently (finite-difference probes fan out on the thread
/// pool). A rebase under a key the cache already holds is a no-op, so
/// parallel probes sharing one base race benignly; rebasing to a *different*
/// base concurrently with evaluations against the old one is a caller bug
/// (probes of one gradient always share their base).
class ChannelEvalCache {
 public:
  /// `channel` is non-owning and must outlive the cache.
  explicit ChannelEvalCache(const SceneChannel* channel,
                            std::size_t memo_capacity = eval_cache_capacity());
  ~ChannelEvalCache();

  ChannelEvalCache(const ChannelEvalCache&) = delete;
  ChannelEvalCache& operator=(const ChannelEvalCache&) = delete;

  /// Declares panel p's element -> control-group mapping (from the
  /// optimizer's granularity reduction). Without a grouping, every element
  /// is its own group. Must be called before the first rebase.
  void set_grouping(std::size_t p, std::vector<std::uint32_t> group_of_element,
                    std::size_t group_count);

  /// True when the current baseline was established under `key` (the
  /// caller's digest of whatever the coefficients were derived from, e.g.
  /// the optimizer's flat x vector).
  bool based_on(const util::ConfigDigest& key) const;

  /// Sets the baseline coefficients (copied; one CVec per panel). No-op when
  /// already based on `key`. Invalidates cached per-RX values and weights.
  void rebase(const util::ConfigDigest& key,
              std::span<const em::CVec> coefficients);

  /// Baseline h at RX j — bit-identical to SceneChannel::evaluate at the
  /// baseline coefficients. Lazily filled (with the weights) per RX.
  em::Cx base_value(std::size_t j);

  /// h at RX j when every element of panel p's control group `group` takes
  /// coefficient `new_c` and everything else stays at the baseline. Exact
  /// linear response; O(1) after the per-RX fill. Returns base_value(j)
  /// bit-exactly when `new_c` equals the group's (homogeneous) baseline
  /// coefficient.
  em::Cx evaluate_delta(std::size_t j, std::size_t p, std::size_t group,
                        em::Cx new_c);

  /// The companion full-evaluation memo (objective values, power maps).
  DigestMemo& memo() noexcept { return memo_; }
  const DigestMemo& memo() const noexcept { return memo_; }

  struct Stats {
    std::uint64_t rebases = 0;
    std::uint64_t rx_fills = 0;     ///< Per-RX weight computations.
    std::uint64_t delta_evals = 0;  ///< O(1) rank-1 evaluations served.
  };
  Stats stats() const;

 private:
  struct RxEntry;

  const RxEntry& ensure_rx(std::size_t j);

  const SceneChannel* channel_;
  DigestMemo memo_;

  struct Grouping {
    std::vector<std::uint32_t> group_of_element;
    std::size_t group_count = 0;
  };
  std::vector<Grouping> groupings_;  ///< Per panel; empty vector = identity.

  /// Guards the baseline (shared: evaluations; unique: rebase).
  mutable std::shared_mutex base_mutex_;
  bool based_ = false;
  util::ConfigDigest base_key_;
  std::vector<em::CVec> base_;  ///< Per-panel baseline coefficients.
  /// SoA mirror of base_ (bit-exact copy), fed to the vectorized
  /// evaluate_with_partials_planes on every RX fill.
  std::vector<em::CxPlanes> base_planes_;
  /// Per panel, per group: the baseline coefficient when every element in
  /// the group shares one bit-identical value (the optimizer path always
  /// does); heterogeneous groups fall back to the sum form.
  std::vector<em::CVec> group_coeff_;
  std::vector<std::vector<char>> group_homogeneous_;
  std::uint64_t epoch_ = 0;  ///< Bumped per rebase; invalidates RxEntry fills.
  /// Channel rx_revision() this cache last synced to. A rebase_rx /
  /// precompute_delta on the channel renumbers RX indices, so rebase()
  /// re-sizes rx_ and drops the baseline when the revision moved.
  std::uint64_t rx_seen_revision_ = 0;

  std::vector<std::unique_ptr<RxEntry>> rx_;
  std::unique_ptr<std::mutex[]> rx_fill_mutexes_;  ///< Striped fill locks.

  // Lock-free counters: delta_evals_ sits on the per-probe hot path.
  std::atomic<std::uint64_t> rebases_{0};
  std::atomic<std::uint64_t> rx_fills_{0};
  std::atomic<std::uint64_t> delta_evals_{0};
};

}  // namespace surfos::sim
