#include "sim/precompute_store.hpp"

#include "core/config.hpp"
#include "telemetry/telemetry.hpp"

namespace surfos::sim {

namespace {

/// 256 MiB default budget: ~2000 64-element rows or a few dozen multi-panel
/// scene statics — generous for a fleet of distinct rooms, bounded for a
/// long-running daemon.
constexpr std::size_t kDefaultCacheBytes = 256u << 20;
constexpr std::size_t kNoOverride = static_cast<std::size_t>(-1);

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{core::knob("SURFOS_PRECOMPUTE", 1, 0) != 0};
  return flag;
}

std::atomic<std::size_t>& cache_override() noexcept {
  static std::atomic<std::size_t> slot{kNoOverride};
  return slot;
}

}  // namespace

bool precompute_enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_precompute_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::size_t precompute_cache_bytes() noexcept {
  const std::size_t override_bytes =
      cache_override().load(std::memory_order_relaxed);
  if (override_bytes != kNoOverride) return override_bytes;
  return core::knob("SURFOS_PRECOMPUTE_CACHE", kDefaultCacheBytes, 0);
}

void set_precompute_cache_bytes(std::size_t bytes) noexcept {
  cache_override().store(bytes, std::memory_order_relaxed);
}

void clear_precompute_cache_override() noexcept {
  cache_override().store(kNoOverride, std::memory_order_relaxed);
}

PrecomputeStore& PrecomputeStore::instance() {
  static PrecomputeStore store;
  return store;
}

std::shared_ptr<const void> PrecomputeStore::get(const Key& key) {
  std::lock_guard lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    SURFOS_COUNT_SCHED("sim.precompute.misses", 1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  ++hits_;
  SURFOS_COUNT_SCHED("sim.precompute.hits", 1);
  return it->second.ptr;
}

std::shared_ptr<const void> PrecomputeStore::put(const Key& key,
                                                 std::shared_ptr<const void> ptr,
                                                 std::size_t artifact_bytes) {
  std::lock_guard lock(mutex_);
  if (const auto it = map_.find(key); it != map_.end()) {
    // Publish race: an earlier builder won. Adopt its artifact so every
    // racer shares one copy (values are digest-determined, so which build
    // survives is value-neutral).
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return it->second.ptr;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{ptr, artifact_bytes, lru_.begin()});
  bytes_ += artifact_bytes;
  enforce_budget_locked();
  SURFOS_GAUGE_SET("sim.precompute.bytes", static_cast<double>(bytes_));
  return ptr;
}

void PrecomputeStore::enforce_budget_locked() {
  const std::size_t budget = precompute_cache_bytes();
  if (bytes_ <= budget) return;
  // Walk from least-recent, skipping pinned entries (use_count > 1 means a
  // live channel still holds the artifact — the freshly inserted entry is
  // always pinned by its publisher's copy, so it can never evict itself).
  auto it = lru_.end();
  while (bytes_ > budget && it != lru_.begin()) {
    --it;
    const auto map_it = map_.find(*it);
    if (map_it->second.ptr.use_count() > 1) continue;
    bytes_ -= map_it->second.bytes;
    map_.erase(map_it);
    it = lru_.erase(it);
    ++evictions_;
    SURFOS_COUNT_SCHED("sim.precompute.evictions", 1);
  }
}

std::shared_ptr<const ScenePrecompute> PrecomputeStore::acquire_scene(
    const util::ConfigDigest& key,
    const std::function<std::shared_ptr<ScenePrecompute>()>& build) {
  const Key k{Kind::kScene, key};
  if (auto hit = get(k)) {
    return std::static_pointer_cast<const ScenePrecompute>(hit);
  }
  // Build outside the lock: scene fills are the expensive path and distinct
  // scenes must not serialize on each other.
  std::shared_ptr<ScenePrecompute> built = build();
  built->finalize_bytes();
  const std::size_t artifact_bytes = built->bytes;
  return std::static_pointer_cast<const ScenePrecompute>(
      put(k, std::shared_ptr<const ScenePrecompute>(std::move(built)),
          artifact_bytes));
}

std::shared_ptr<const RxRowPrecompute> PrecomputeStore::lookup_row(
    const util::ConfigDigest& key) {
  if (auto hit = get(Key{Kind::kRow, key})) {
    return std::static_pointer_cast<const RxRowPrecompute>(hit);
  }
  return nullptr;
}

std::shared_ptr<const RxRowPrecompute> PrecomputeStore::publish_row(
    const util::ConfigDigest& key, std::shared_ptr<const RxRowPrecompute> row) {
  const std::size_t artifact_bytes = row->bytes;
  return std::static_pointer_cast<const RxRowPrecompute>(
      put(Key{Kind::kRow, key}, std::move(row), artifact_bytes));
}

PrecomputeStore::Stats PrecomputeStore::stats() const {
  std::lock_guard lock(mutex_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.bytes = bytes_;
  out.entries = map_.size();
  return out;
}

std::size_t PrecomputeStore::bytes() const {
  std::lock_guard lock(mutex_);
  return bytes_;
}

void PrecomputeStore::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
  SURFOS_GAUGE_SET("sim.precompute.bytes", 0.0);
}

}  // namespace surfos::sim
