#include "sim/raytracer.hpp"

#include <cmath>
#include <stdexcept>

#include "em/band.hpp"
#include "em/propagation.hpp"
#include "telemetry/telemetry.hpp"

namespace surfos::sim {

double PropPath::delay_s() const { return length_m / em::kSpeedOfLight; }

RayTracer::RayTracer(const Environment* environment, double frequency_hz,
                     TracerOptions options)
    : environment_(environment),
      frequency_hz_(frequency_hz),
      options_(options) {
  if (environment_ == nullptr) {
    throw std::invalid_argument("RayTracer: null environment");
  }
  if (!environment_->finalized()) {
    throw std::logic_error("RayTracer: environment not finalized");
  }
  if (frequency_hz_ <= 0.0) {
    throw std::invalid_argument("RayTracer: non-positive frequency");
  }
}

std::vector<PropPath> RayTracer::trace(const geom::Vec3& a,
                                       const geom::Vec3& b) const {
  std::vector<PropPath> paths;
  direct_path(a, b, paths);
  for (int order = 1; order <= options_.max_reflection_order; ++order) {
    reflected_paths(a, b, order, paths);
  }
  SURFOS_COUNT("sim.rays.traces");
  SURFOS_COUNT_N("sim.rays.paths", paths.size());
  return paths;
}

em::Cx RayTracer::total_gain(const geom::Vec3& a, const geom::Vec3& b) const {
  em::Cx sum{};
  for (const PropPath& path : trace(a, b)) sum += path.gain;
  return sum;
}

void RayTracer::direct_path(const geom::Vec3& a, const geom::Vec3& b,
                            std::vector<PropPath>& out) const {
  const double distance = a.distance_to(b);
  if (distance < 1e-6) return;
  const em::Cx transmission =
      environment_->segment_transmission(a, b, frequency_hz_);
  if (std::norm(transmission) < 1e-30) return;
  PropPath path;
  path.points = {a, b};
  path.length_m = distance;
  path.bounce_count = 0;
  path.gain = em::free_space_gain(frequency_hz_, distance) * transmission;
  if (std::abs(path.gain) >= options_.min_path_gain) out.push_back(std::move(path));
}

void RayTracer::reflected_paths(const geom::Vec3& a, const geom::Vec3& b,
                                int order, std::vector<PropPath>& out) const {
  const auto reflectors = environment_->reflectors();
  const int n = static_cast<int>(reflectors.size());
  // Enumerate bounce sequences without immediate repeats. Order is small
  // (<= 3 in practice) and n is tens of walls, so exhaustive enumeration is
  // fine and keeps the tracer deterministic.
  std::vector<int> sequence(static_cast<std::size_t>(order), 0);
  const auto total = [&]() {
    double count = n;
    for (int i = 1; i < order; ++i) count *= (n - 1);
    return static_cast<long long>(count);
  }();
  if (n == 0) return;
  for (long long code = 0; code < total; ++code) {
    long long rest = code;
    sequence[0] = static_cast<int>(rest % n);
    rest /= n;
    bool valid = true;
    for (int i = 1; i < order; ++i) {
      int pick = static_cast<int>(rest % (n - 1));
      rest /= (n - 1);
      if (pick >= sequence[i - 1]) ++pick;  // skip immediate repeat
      sequence[static_cast<std::size_t>(i)] = pick;
      if (pick == sequence[static_cast<std::size_t>(i - 1)]) {
        valid = false;
        break;
      }
    }
    if (!valid) continue;
    PropPath path;
    if (build_path(a, b, sequence, path)) {
      if (std::abs(path.gain) >= options_.min_path_gain) {
        out.push_back(std::move(path));
      }
    }
  }
}

bool RayTracer::build_path(const geom::Vec3& a, const geom::Vec3& b,
                           const std::vector<int>& reflector_sequence,
                           PropPath& out) const {
  const auto reflectors = environment_->reflectors();
  const int order = static_cast<int>(reflector_sequence.size());

  // Forward image cascade: images[i] is `a` mirrored across reflectors
  // 0..i of the sequence.
  std::vector<geom::Vec3> images(static_cast<std::size_t>(order));
  geom::Vec3 current = a;
  for (int i = 0; i < order; ++i) {
    current = reflectors[static_cast<std::size_t>(reflector_sequence[i])].mirror(current);
    images[static_cast<std::size_t>(i)] = current;
  }

  // Backward pass: find bounce points from the last reflector to the first.
  std::vector<geom::Vec3> bounces(static_cast<std::size_t>(order));
  geom::Vec3 target = b;
  for (int i = order - 1; i >= 0; --i) {
    const Reflector& reflector =
        reflectors[static_cast<std::size_t>(reflector_sequence[i])];
    const auto point = reflector.segment_plane_point(
        images[static_cast<std::size_t>(i)], target);
    if (!point) return false;
    bounces[static_cast<std::size_t>(i)] = *point;
    target = *point;
  }

  out.points.clear();
  out.points.push_back(a);
  for (const auto& p : bounces) out.points.push_back(p);
  out.points.push_back(b);

  // Geometry is valid; accumulate length, reflection coefficients, and
  // per-leg transmission (excluding the reflecting walls at their own
  // bounce points so the mesh crossing there isn't double-counted as a
  // wall penetration).
  double length = 0.0;
  em::Cx gain{1.0, 0.0};
  for (std::size_t leg = 0; leg + 1 < out.points.size(); ++leg) {
    const geom::Vec3& from = out.points[leg];
    const geom::Vec3& to = out.points[leg + 1];
    length += from.distance_to(to);
    const em::Cx transmission = environment_->segment_transmission(
        from, to, frequency_hz_, bounces);
    if (std::norm(transmission) < 1e-30) return false;
    gain *= transmission;
  }
  for (int i = 0; i < order; ++i) {
    const Reflector& reflector =
        reflectors[static_cast<std::size_t>(reflector_sequence[i])];
    const geom::Vec3& bounce = bounces[static_cast<std::size_t>(i)];
    const geom::Vec3& prev = out.points[static_cast<std::size_t>(i)];
    const geom::Vec3 incoming = (bounce - prev).normalized();
    const double cos_i =
        std::fmin(1.0, std::fabs(incoming.dot(reflector.frame.normal())));
    const double incidence = std::acos(cos_i);
    gain *= em::reflection_coefficient(
        environment_->materials().get(reflector.material_id), frequency_hz_,
        incidence);
  }
  out.length_m = length;
  out.bounce_count = order;
  out.gain = gain * em::free_space_gain(frequency_hz_, length);
  return true;
}

}  // namespace surfos::sim
