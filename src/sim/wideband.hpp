// Wideband (multi-subcarrier) channel evaluation.
//
// A surface configuration is a set of *phase shifts*, which are exact only
// at the frequency they were computed for: across a wide channel the beam
// squints and the co-phasing decays toward the band edges. SurfOS's
// orchestrator optimizes at the carrier; this module measures what that
// configuration actually delivers across the whole bandwidth — per-
// subcarrier SNR and the OFDM-style average capacity — and quantifies the
// squint penalty that motivates frequency-aware hardware (Table 1's Scrolls)
// and per-band scheduling.
#pragma once

#include <memory>
#include <vector>

#include "em/propagation.hpp"
#include "sim/channel.hpp"

namespace surfos::sim {

class WidebandChannel {
 public:
  /// Builds one SceneChannel per subcarrier (uniform grid across
  /// [center - bw/2, center + bw/2]). Panels/points as in SceneChannel.
  WidebandChannel(const Environment* environment, double center_hz,
                  double bandwidth_hz, std::size_t subcarriers, TxSpec tx,
                  std::vector<const surface::SurfacePanel*> panels,
                  std::vector<geom::Vec3> rx_points,
                  const em::AntennaPattern* rx_antenna = nullptr,
                  ChannelOptions options = {});

  std::size_t subcarrier_count() const noexcept { return channels_.size(); }
  double subcarrier_hz(std::size_t k) const { return frequencies_.at(k); }
  const SceneChannel& subcarrier(std::size_t k) const { return *channels_.at(k); }

  /// Per-subcarrier SNR (dB) at RX j for fixed element-wise configs. The
  /// configs are realized by each panel once; the same element phases apply
  /// at every subcarrier (hardware phase shifters are set, not re-tuned).
  std::vector<double> snr_per_subcarrier(
      std::size_t j, std::span<const surface::SurfaceConfig> configs,
      const em::LinkBudget& budget) const;

  /// OFDM-style capacity [bit/s]: mean over subcarriers of
  /// B * log2(1 + snr_k). Uses the budget's bandwidth as B.
  double wideband_capacity(std::size_t j,
                           std::span<const surface::SurfaceConfig> configs,
                           const em::LinkBudget& budget) const;

 private:
  std::vector<double> frequencies_;
  std::vector<std::unique_ptr<SceneChannel>> channels_;
};

}  // namespace surfos::sim
