// Deployment environment: the 3-D scene the channel simulator traces
// against. Walls are thin planar quads that both occlude/attenuate rays
// (via the triangle mesh) and act as specular reflectors (via the planar
// reflector list the image method consumes). Furniture boxes occlude and
// attenuate but are not specular reflectors — their faces are small and
// cluttered, so their specular contribution is treated as diffuse loss.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "em/cx.hpp"
#include "em/material.hpp"
#include "geom/frame.hpp"
#include "geom/mesh.hpp"
#include "geom/vec3.hpp"

namespace surfos::sim {

/// Finite planar rectangle reflector for the image method.
struct Reflector {
  geom::Frame frame;   ///< Origin at rectangle center, normal out of plane.
  double half_u = 0.0; ///< Half extent along frame.u().
  double half_v = 0.0; ///< Half extent along frame.v().
  int material_id = 0;

  /// Mirror a point across the (infinite) plane of this reflector.
  geom::Vec3 mirror(const geom::Vec3& p) const noexcept;

  /// Intersection of the segment a->b with the plane, if it lies within the
  /// rectangle bounds; nullopt otherwise.
  std::optional<geom::Vec3> segment_plane_point(const geom::Vec3& a,
                                                const geom::Vec3& b) const;
};

class Environment {
 public:
  explicit Environment(em::MaterialDb materials);

  /// Adds a wall quad (corners in perimeter order) as both occluder and
  /// specular reflector.
  void add_wall(const geom::Vec3& a, const geom::Vec3& b, const geom::Vec3& c,
                const geom::Vec3& d, int material_id);

  /// Adds a vertical wall from a 2-D segment (x0,y0)-(x1,y1) spanning
  /// [z0, z1], the common case when building floor plans.
  void add_vertical_wall(double x0, double y0, double x1, double y1, double z0,
                         double z1, int material_id);

  /// Adds a horizontal slab (floor/ceiling) over [x0,x1] x [y0,y1] at height z.
  void add_horizontal_slab(double x0, double x1, double y0, double y1, double z,
                           int material_id);

  /// Adds an occluding box (furniture). Not a specular reflector.
  void add_obstacle_box(const geom::Vec3& lo, const geom::Vec3& hi,
                        int material_id);

  /// Builds acceleration structures; must be called before queries.
  void finalize();
  bool finalized() const noexcept { return mesh_.index_built(); }

  const geom::TriangleMesh& mesh() const noexcept { return mesh_; }
  const em::MaterialDb& materials() const noexcept { return materials_; }
  std::span<const Reflector> reflectors() const noexcept { return reflectors_; }

  /// Complex amplitude transmission factor along the open segment from->to:
  /// the product of slab transmission coefficients of every wall/obstacle
  /// face crossed. Crossings closer than `exclude_radius` to a point in
  /// `exclude_near` are skipped (used to ignore the reflecting wall at its
  /// own bounce point). Returns 0 when a metal face blocks the segment.
  em::Cx segment_transmission(const geom::Vec3& from, const geom::Vec3& to,
                              double frequency_hz,
                              std::span<const geom::Vec3> exclude_near = {},
                              double exclude_radius = 1e-3) const;

 private:
  em::MaterialDb materials_;
  geom::TriangleMesh mesh_;
  std::vector<Reflector> reflectors_;
};

}  // namespace surfos::sim
