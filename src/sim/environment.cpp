#include "sim/environment.hpp"

#include <cmath>
#include <optional>

namespace surfos::sim {

geom::Vec3 Reflector::mirror(const geom::Vec3& p) const noexcept {
  const double side = (p - frame.origin()).dot(frame.normal());
  return p - 2.0 * side * frame.normal();
}

std::optional<geom::Vec3> Reflector::segment_plane_point(
    const geom::Vec3& a, const geom::Vec3& b) const {
  const double da = (a - frame.origin()).dot(frame.normal());
  const double db = (b - frame.origin()).dot(frame.normal());
  if (da * db >= 0.0) return std::nullopt;  // same side or touching
  const double t = da / (da - db);
  const geom::Vec3 p = a + (b - a) * t;
  const geom::Vec3 local = frame.to_local(p);
  if (std::fabs(local.x) > half_u || std::fabs(local.y) > half_v) {
    return std::nullopt;
  }
  return p;
}

Environment::Environment(em::MaterialDb materials)
    : materials_(std::move(materials)) {}

void Environment::add_wall(const geom::Vec3& a, const geom::Vec3& b,
                           const geom::Vec3& c, const geom::Vec3& d,
                           int material_id) {
  materials_.get(material_id);  // validate id early
  mesh_.add_quad(a, b, c, d, material_id);
  const geom::Vec3 center = (a + b + c + d) * 0.25;
  const geom::Vec3 edge_u = (b - a) * 0.5;
  const geom::Vec3 edge_v = (d - a) * 0.5;
  const geom::Vec3 normal = (b - a).cross(d - a).normalized();
  Reflector reflector;
  reflector.frame = geom::Frame(center, normal, edge_u);
  reflector.half_u = edge_u.norm();
  reflector.half_v = edge_v.norm();
  reflector.material_id = material_id;
  reflectors_.push_back(reflector);
}

void Environment::add_vertical_wall(double x0, double y0, double x1, double y1,
                                    double z0, double z1, int material_id) {
  add_wall({x0, y0, z0}, {x1, y1, z0}, {x1, y1, z1}, {x0, y0, z1}, material_id);
}

void Environment::add_horizontal_slab(double x0, double x1, double y0,
                                      double y1, double z, int material_id) {
  add_wall({x0, y0, z}, {x1, y0, z}, {x1, y1, z}, {x0, y1, z}, material_id);
}

void Environment::add_obstacle_box(const geom::Vec3& lo, const geom::Vec3& hi,
                                   int material_id) {
  materials_.get(material_id);
  mesh_.add_box(lo, hi, material_id);
}

void Environment::finalize() { mesh_.build_index(); }

em::Cx Environment::segment_transmission(
    const geom::Vec3& from, const geom::Vec3& to, double frequency_hz,
    std::span<const geom::Vec3> exclude_near, double exclude_radius) const {
  const auto hits = mesh_.all_hits_on_segment(from, to);
  em::Cx product{1.0, 0.0};
  const geom::Vec3 dir = (to - from).normalized();
  for (const auto& hit : hits) {
    bool excluded = false;
    for (const geom::Vec3& p : exclude_near) {
      if (hit.point.distance_to(p) < exclude_radius) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;
    const em::Material& mat = materials_.get(hit.material_id);
    const double cos_i = std::fabs(dir.dot(hit.normal));
    const double incidence = std::acos(std::fmin(1.0, cos_i));
    product *= em::transmission_coefficient(mat, frequency_hz, incidence);
    if (std::norm(product) < 1e-30) return {};  // fully blocked
  }
  return product;
}

}  // namespace surfos::sim
