// Surface-aware channel model.
//
// For fixed geometry, the end-to-end narrowband channel between a TX and an
// RX is *linear in each surface's per-element coefficients*:
//
//   h(rx) = h_dir(rx)
//         + sum_p   g_p(rx)^T diag(c_p) f_p                     (one bounce)
//         + sum_{q!=p} g_q(rx)^T diag(c_q) G_qp diag(c_p) f_p   (two bounces)
//
// where f_p is the TX->panel-p propagation vector, g_p(rx) the panel-p->RX
// vector, and G_qp the panel-p->panel-q cascade matrix. SceneChannel
// precomputes f, g, G and h_dir once per scenario so that the orchestrator's
// optimizer can re-evaluate h (and its gradient w.r.t. element phases) in
// microseconds per candidate configuration — the property that makes joint
// multi-task optimization (paper Fig 5) tractable.
//
// Storage is structure-of-arrays: f, g and the cascade matrices live as
// aligned re/im double planes (em::CxPlanes / em::CxPlaneMat) so evaluate /
// evaluate_with_partials run on the util::simd kernel layer. The *_planes
// entry points are the native SoA hot path; the CVec-based overloads remain
// for callers and convert at the boundary (bit-exact copies).
//
// The artifacts themselves are immutable and refcounted: the RX-independent
// part (f + cascades) and each per-RX row (g + h_dir) are shared_ptrs,
// content-addressed by a structural scene digest and shared across channels
// through the process-wide sim::PrecomputeStore (precompute_store.hpp).
// rebase_rx / precompute_delta re-point the row set in O(changed RX) —
// survivors keep their rows — which is what makes daemon endpoint churn
// cheap. SURFOS_PRECOMPUTE=0 restores private dense artifacts built by the
// same fill code (byte-identical values).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "em/antenna.hpp"
#include "em/cx.hpp"
#include "em/propagation.hpp"
#include "em/soa.hpp"
#include "geom/vec3.hpp"
#include "sim/precompute_store.hpp"
#include "sim/raytracer.hpp"
#include "surface/panel.hpp"
#include "util/digest.hpp"

namespace surfos::sim {

class DigestMemo;

struct ChannelOptions {
  TracerOptions tracer;          ///< Direct-component ray tracing options.
  bool include_surface_cascades = true;  ///< Panel-to-panel double bounces.
  /// When true, occlusion/penetration between an endpoint and a panel is
  /// evaluated per element (slow, exact); when false, once per panel center
  /// and applied to all elements (fast; exact phases/distances either way).
  bool per_element_blockage = false;
};

/// Transmitter description.
struct TxSpec {
  geom::Vec3 position;
  const em::AntennaPattern* antenna = nullptr;  ///< Non-owning; may be null (isotropic).
};

/// Precomputed channel structure for one TX, one frequency, a fixed set of
/// panels, and a list of RX probe points.
class SceneChannel {
 public:
  /// `panels` are non-owning and must outlive the SceneChannel.
  SceneChannel(const Environment* environment, double frequency_hz,
               TxSpec tx, std::vector<const surface::SurfacePanel*> panels,
               std::vector<geom::Vec3> rx_points,
               const em::AntennaPattern* rx_antenna = nullptr,
               ChannelOptions options = {});
  ~SceneChannel();

  std::size_t panel_count() const noexcept { return panels_.size(); }
  std::size_t rx_count() const noexcept { return rx_points_.size(); }
  double frequency_hz() const noexcept { return frequency_hz_; }
  const surface::SurfacePanel& panel(std::size_t p) const { return *panels_.at(p); }
  const geom::Vec3& rx_point(std::size_t j) const { return rx_points_.at(j); }
  const TxSpec& tx() const noexcept { return tx_; }

  /// TX -> panel-p element propagation vector (materialized from the SoA
  /// planes; use tx_planes for the zero-copy view).
  em::CVec tx_vector(std::size_t p) const { return statics_->f.at(p).to_cvec(); }
  /// Panel-p elements -> RX j propagation vector.
  em::CVec rx_vector(std::size_t p, std::size_t j) const {
    return rows_.at(j)->g.at(p).to_cvec();
  }
  /// Direct (non-surface) channel to RX j.
  em::Cx direct(std::size_t j) const { return rows_.at(j)->h_dir; }
  /// Panel p -> panel q cascade matrix (rows: q elements, cols: p elements);
  /// empty when cascades are disabled or geometry forbids the hop.
  em::CMat cascade(std::size_t q, std::size_t p) const;

  /// Zero-copy SoA views of the precomputed vectors/matrices.
  const em::CxPlanes& tx_planes(std::size_t p) const { return statics_->f.at(p); }
  const em::CxPlanes& rx_planes(std::size_t p, std::size_t j) const {
    return rows_.at(j)->g.at(p);
  }
  /// Cascade planes; rows() == 0 means "no cascade" (cf. CMat::empty()).
  const em::CxPlaneMat& cascade_planes(std::size_t q, std::size_t p) const {
    return statics_->cascades.at(q).at(p);
  }

  /// Structural digest of everything the precompute output depends on:
  /// geometry, materials, panel layout, TX placement, antenna patterns,
  /// frequency, options, and the active SIMD backend. The content address
  /// under which this channel's artifacts live in the PrecomputeStore.
  const util::ConfigDigest& scene_digest() const noexcept {
    return scene_digest_;
  }

  /// Bumped on every rebase_rx / precompute_delta; RX indices from before a
  /// different revision refer to different points (ChannelEvalCache syncs
  /// on it).
  std::uint64_t rx_revision() const noexcept { return rx_revision_; }

  /// Replaces the RX point set, reusing rows for points that survive (by
  /// exact bit pattern) from this channel and from the store — tracing and
  /// filling only genuinely new rows, O(changed RX). Row order follows
  /// `new_points` exactly, so the result is indistinguishable from fresh
  /// construction with the same list. Under SURFOS_PRECOMPUTE=0 this falls
  /// back to a full dense precompute (the honest ablation). Invalidates the
  /// power memo and bumps rx_revision().
  void rebase_rx(std::vector<geom::Vec3> new_points);

  /// RX-set diff convenience over rebase_rx: drops the rows at
  /// `removed_rx` (indices into the current set, order preserved for
  /// survivors) and appends `added_rx` at the end. Throws when a removal
  /// index is out of range or when the result would be empty.
  void precompute_delta(std::span<const geom::Vec3> added_rx,
                        std::span<const std::size_t> removed_rx);

  /// End-to-end channel at RX j given per-panel element coefficient vectors
  /// (one CVec per panel, sized to that panel's element count).
  em::Cx evaluate(std::size_t j, std::span<const em::CVec> coefficients) const;

  /// SoA-native evaluate: coefficients as one CxPlanes per panel (padding
  /// lanes must be zero, which CxPlanes maintains).
  em::Cx evaluate_planes(std::size_t j,
                         std::span<const em::CxPlanes> coefficients) const;

  /// d h / d c_p[i] at RX j for every panel/element, given the current
  /// coefficients. Output is resized to match. Used for analytic gradients:
  /// d h / d phi_p[i] = j * c_p[i] * (d h / d c_p[i]).
  void evaluate_with_partials(std::size_t j,
                              std::span<const em::CVec> coefficients,
                              em::Cx& h_out,
                              std::vector<em::CVec>& dh_dc_out) const;

  /// SoA-native partials; dh_dc_out is resized to one CxPlanes per panel.
  /// The h_out sum is bit-identical to evaluate_planes on the same inputs.
  void evaluate_with_partials_planes(std::size_t j,
                                     std::span<const em::CxPlanes> coefficients,
                                     em::Cx& h_out,
                                     std::vector<em::CxPlanes>& dh_dc_out) const;

  /// Convenience: channel power |h|^2 at every RX for panel configs.
  /// Memoized by config digest under SURFOS_INCREMENTAL (a hit returns the
  /// stored vector, byte-identical to recomputation).
  std::vector<double> power_map(
      std::span<const surface::SurfaceConfig> configs) const;

  /// |h|^2 at a subset of RX indices for panel configs — the orchestrator's
  /// per-task measurement sweep. Memoized like power_map, keyed by
  /// (config digest, RX-subset digest).
  std::vector<double> powers_at(
      std::span<const std::size_t> rx_indices,
      std::span<const surface::SurfaceConfig> configs) const;

  /// Per-panel coefficients from configs (applies granularity/quantization).
  std::vector<em::CVec> coefficients_for(
      std::span<const surface::SurfaceConfig> configs) const;

  /// Scratch-filling variant: reuses `out`'s per-panel buffers instead of
  /// reallocating (hot path: every power sweep / objective evaluation).
  void coefficients_for(std::span<const surface::SurfaceConfig> configs,
                        std::vector<em::CVec>& out) const;

  /// SoA variant: coefficients generated by the same scalar quantization
  /// path (values bit-identical to coefficients_for), copied into planes.
  void coefficients_planes_for(std::span<const surface::SurfaceConfig> configs,
                               std::vector<em::CxPlanes>& out) const;

  /// The digest memo behind power_map/powers_at (stats; tests).
  const DigestMemo& power_memo() const noexcept { return *power_memo_; }

 private:
  void precompute();
  util::ConfigDigest compute_scene_digest() const;
  /// Content address of one RX point's row under the current scene digest.
  util::ConfigDigest row_key(const geom::Vec3& rx) const;
  /// Dense build of the RX-independent artifact (f + cascades).
  std::shared_ptr<ScenePrecompute> build_statics() const;
  /// Traces and fills rows for the listed RX indices (batch h_dir trace +
  /// parallel per-row g fills), publishing to the store when sharing is on.
  void fill_missing_rows(const std::vector<std::size_t>& missing);
  void check_coefficient_sizes(std::span<const em::CxPlanes> coefficients) const;

  const Environment* environment_;
  double frequency_hz_;
  TxSpec tx_;
  std::vector<const surface::SurfacePanel*> panels_;
  std::vector<geom::Vec3> rx_points_;
  const em::AntennaPattern* rx_antenna_;
  ChannelOptions options_;

  util::ConfigDigest scene_digest_{};
  std::uint64_t rx_revision_ = 0;
  /// RX-independent artifact (f + cascades), shared across channels through
  /// the PrecomputeStore when sharing is on.
  std::shared_ptr<const ScenePrecompute> statics_;
  /// One shared row per RX point: [rx] -> (g[panel], h_dir).
  std::vector<std::shared_ptr<const RxRowPrecompute>> rows_;

  /// Digest-keyed power results for repeated configs (SURFOS_EVAL_CACHE
  /// entries; thread-safe internally).
  std::unique_ptr<DigestMemo> power_memo_;
};

}  // namespace surfos::sim
