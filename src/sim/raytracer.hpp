// Image-method path tracer for the non-surface ("direct") component of a
// channel: line-of-sight plus specular wall reflections up to a configurable
// order, each weighted by Fresnel reflection coefficients and through-wall
// transmission along every leg.
//
// Deterministic by construction — no Monte Carlo — so channel values are
// exactly repeatable and unit-testable against closed-form cases.
#pragma once

#include <vector>

#include "em/cx.hpp"
#include "geom/vec3.hpp"
#include "sim/environment.hpp"

namespace surfos::sim {

/// One propagation path between two points.
struct PropPath {
  std::vector<geom::Vec3> points;  ///< endpoint, bounce(s)..., endpoint.
  em::Cx gain;                     ///< Complex amplitude gain, no antenna gains.
  double length_m = 0.0;           ///< Unfolded geometric length.
  int bounce_count = 0;

  /// Unit departure direction at the first point.
  geom::Vec3 departure_direction() const {
    return (points[1] - points[0]).normalized();
  }
  /// Unit arrival direction into the last point.
  geom::Vec3 arrival_direction() const {
    return (points[points.size() - 1] - points[points.size() - 2]).normalized();
  }
  /// Propagation delay [s].
  double delay_s() const;
};

struct TracerOptions {
  int max_reflection_order = 2;  ///< 0 = direct only.
  double min_path_gain = 1e-12;  ///< Drop paths with |gain| below this.
};

class RayTracer {
 public:
  RayTracer(const Environment* environment, double frequency_hz,
            TracerOptions options = {});

  /// All propagation paths from `a` to `b` (direct first when unblocked).
  std::vector<PropPath> trace(const geom::Vec3& a, const geom::Vec3& b) const;

  /// Coherent sum of path gains (no antenna patterns).
  em::Cx total_gain(const geom::Vec3& a, const geom::Vec3& b) const;

  double frequency_hz() const noexcept { return frequency_hz_; }

 private:
  void direct_path(const geom::Vec3& a, const geom::Vec3& b,
                   std::vector<PropPath>& out) const;
  void reflected_paths(const geom::Vec3& a, const geom::Vec3& b, int order,
                       std::vector<PropPath>& out) const;
  /// Validates bounce sequence geometry and computes the path gain; returns
  /// false when blocked or out of rectangle bounds.
  bool build_path(const geom::Vec3& a, const geom::Vec3& b,
                  const std::vector<int>& reflector_sequence,
                  PropPath& out) const;

  const Environment* environment_;
  double frequency_hz_;
  TracerOptions options_;
};

}  // namespace surfos::sim
