#include "sim/channel.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "sim/incremental.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace surfos::sim {

namespace {

const em::IsotropicAntenna kIsotropic;

/// Digest over per-panel complex coefficient vectors (bit patterns of the
/// real/imag doubles), the memo key for full power evaluations.
util::ConfigDigest digest_coefficients(std::span<const em::CVec> coeffs) {
  util::DigestBuilder builder;
  builder.add_size(coeffs.size());
  for (const em::CVec& c : coeffs) {
    builder.add_size(c.size());
    for (const em::Cx& v : c) {
      builder.add_double(v.real());
      builder.add_double(v.imag());
    }
  }
  return builder.digest();
}

const em::AntennaPattern& pattern_or_isotropic(const em::AntennaPattern* p) {
  return p != nullptr ? *p : kIsotropic;
}

/// |cos| between a panel's normal and the direction from an element to a
/// point.
double element_cos(const surface::SurfacePanel& panel,
                   const geom::Vec3& element_pos, const geom::Vec3& point) {
  const geom::Vec3 d = point - element_pos;
  const double n = d.norm();
  if (n < 1e-9) return 0.0;
  return std::fabs(d.dot(panel.normal())) / n;
}

}  // namespace

SceneChannel::SceneChannel(const Environment* environment, double frequency_hz,
                           TxSpec tx,
                           std::vector<const surface::SurfacePanel*> panels,
                           std::vector<geom::Vec3> rx_points,
                           const em::AntennaPattern* rx_antenna,
                           ChannelOptions options)
    : environment_(environment),
      frequency_hz_(frequency_hz),
      tx_(tx),
      panels_(std::move(panels)),
      rx_points_(std::move(rx_points)),
      rx_antenna_(rx_antenna),
      options_(options) {
  if (environment_ == nullptr) {
    throw std::invalid_argument("SceneChannel: null environment");
  }
  for (const auto* p : panels_) {
    if (p == nullptr) throw std::invalid_argument("SceneChannel: null panel");
  }
  if (rx_points_.empty()) {
    throw std::invalid_argument("SceneChannel: no RX points");
  }
  power_memo_ = std::make_unique<DigestMemo>();
  precompute();
}

SceneChannel::~SceneChannel() = default;

void SceneChannel::precompute() {
  SURFOS_TRACE_SPAN("sim.channel.precompute");
  SURFOS_COUNT("sim.channel.precomputes");
  SURFOS_COUNT_N("sim.channel.precompute_rx_points", rx_points_.size());
  SURFOS_COUNT_N("sim.channel.precompute_panels", panels_.size());
  const auto& tx_pattern = pattern_or_isotropic(tx_.antenna);
  const auto& rx_pattern = pattern_or_isotropic(rx_antenna_);
  const RayTracer tracer(environment_, frequency_hz_, options_.tracer);

  // Direct (non-surface) component, antenna-weighted per path. Each RX point
  // writes only its own slot, so the loop parallelizes deterministically.
  h_dir_.assign(rx_points_.size(), em::Cx{});
  util::parallel_for(0, rx_points_.size(), [&](std::size_t j) {
    em::Cx sum{};
    for (const PropPath& path : tracer.trace(tx_.position, rx_points_[j])) {
      const double gt = tx_pattern.amplitude_gain(path.departure_direction());
      const double gr = rx_pattern.amplitude_gain(-path.arrival_direction());
      sum += path.gain * gt * gr;
    }
    h_dir_[j] = sum;
  });

  // TX -> panel element vectors.
  f_.resize(panels_.size());
  util::parallel_for(0, panels_.size(), [&](std::size_t p) {
    const auto& panel = *panels_[p];
    const double area = panel.design().effective_area();
    const auto& positions = panel.element_positions();
    f_[p].assign(positions.size(), em::Cx{});
    em::Cx center_trans{1.0, 0.0};
    if (!options_.per_element_blockage) {
      center_trans = environment_->segment_transmission(
          tx_.position, panel.center(), frequency_hz_);
    }
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const geom::Vec3& pos = positions[i];
      const double d = tx_.position.distance_to(pos);
      if (d < 1e-6) continue;
      const double cos_in = element_cos(panel, pos, tx_.position);
      const em::Cx hop =
          em::element_hop_gain(frequency_hz_, area, cos_in, d);
      const geom::Vec3 dep = (pos - tx_.position).normalized();
      const double gt = tx_pattern.amplitude_gain(dep);
      const em::Cx trans =
          options_.per_element_blockage
              ? environment_->segment_transmission(tx_.position, pos,
                                                   frequency_hz_)
              : center_trans;
      f_[p][i] = hop * gt * trans;
    }
  });

  // Panel elements -> RX vectors, parallel over RX points.
  g_.resize(rx_points_.size());
  util::parallel_for(0, rx_points_.size(), [&](std::size_t j) {
    g_[j].resize(panels_.size());
    for (std::size_t p = 0; p < panels_.size(); ++p) {
      const auto& panel = *panels_[p];
      const double area = panel.design().effective_area();
      const auto& positions = panel.element_positions();
      g_[j][p].assign(positions.size(), em::Cx{});
      em::Cx center_trans{1.0, 0.0};
      if (!options_.per_element_blockage) {
        center_trans = environment_->segment_transmission(
            panel.center(), rx_points_[j], frequency_hz_);
      }
      for (std::size_t i = 0; i < positions.size(); ++i) {
        const geom::Vec3& pos = positions[i];
        const double d = pos.distance_to(rx_points_[j]);
        if (d < 1e-6) continue;
        const double cos_out = element_cos(panel, pos, rx_points_[j]);
        const em::Cx hop =
            em::element_hop_gain(frequency_hz_, area, cos_out, d);
        // RX pattern is evaluated toward the incoming wave, i.e. from the RX
        // point back toward the element.
        const geom::Vec3 arr = (rx_points_[j] - pos).normalized();
        const double gr = rx_pattern.amplitude_gain(-arr);
        const em::Cx trans =
            options_.per_element_blockage
                ? environment_->segment_transmission(pos, rx_points_[j],
                                                     frequency_hz_)
                : center_trans;
        g_[j][p][i] = hop * gr * trans;
      }
    }
  });

  // Panel -> panel cascade matrices, parallel over the flattened (q, p)
  // pair index — each pair owns one O(N^2) matrix, the dominant cost.
  cascades_.assign(panels_.size(), std::vector<em::CMat>(panels_.size()));
  if (options_.include_surface_cascades) {
    const std::size_t np = panels_.size();
    util::parallel_for(0, np * np, [&](std::size_t pair) {
      const std::size_t q = pair / np;
      const std::size_t p = pair % np;
      if (p == q) return;
      const auto& panel_p = *panels_[p];
      const auto& panel_q = *panels_[q];
      const double area_p = panel_p.design().effective_area();
      const double area_q = panel_q.design().effective_area();
      const em::Cx center_trans = environment_->segment_transmission(
          panel_p.center(), panel_q.center(), frequency_hz_);
      if (std::norm(center_trans) < 1e-30) return;
      em::CMat mat(panel_q.element_count(), panel_p.element_count());
      const auto& pos_p = panel_p.element_positions();
      const auto& pos_q = panel_q.element_positions();
      for (std::size_t m = 0; m < pos_q.size(); ++m) {
        for (std::size_t i = 0; i < pos_p.size(); ++i) {
          const double d = pos_p[i].distance_to(pos_q[m]);
          if (d < 1e-6) continue;
          const double cos_p = element_cos(panel_p, pos_p[i], pos_q[m]);
          const double cos_q = element_cos(panel_q, pos_q[m], pos_p[i]);
          mat(m, i) = em::element_to_element_gain(frequency_hz_, area_p,
                                                  cos_p, area_q, cos_q, d) *
                      center_trans;
        }
      }
      cascades_[q][p] = std::move(mat);
    });
  }
}

em::Cx SceneChannel::evaluate(std::size_t j,
                              std::span<const em::CVec> coefficients) const {
  if (coefficients.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: coefficient count mismatch");
  }
  const geom::Vec3& rx = rx_points_.at(j);
  em::Cx h = h_dir_[j];
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (coefficients[p].size() != panels_[p]->element_count()) {
      throw std::invalid_argument("SceneChannel: coefficient size mismatch");
    }
    if (!panels_[p]->serves(tx_.position, rx)) continue;
    const em::CVec& f = f_[p];
    const em::CVec& g = g_[j][p];
    const em::CVec& c = coefficients[p];
    for (std::size_t i = 0; i < f.size(); ++i) h += g[i] * c[i] * f[i];
  }
  if (options_.include_surface_cascades) {
    for (std::size_t p = 0; p < panels_.size(); ++p) {
      for (std::size_t q = 0; q < panels_.size(); ++q) {
        if (p == q) continue;
        const em::CMat& G = cascades_[q][p];
        if (G.empty()) continue;
        if (!panels_[p]->serves(tx_.position, panels_[q]->center())) continue;
        if (!panels_[q]->serves(panels_[p]->center(), rx)) continue;
        const em::CVec& f = f_[p];
        const em::CVec& g = g_[j][q];
        const em::CVec& cp = coefficients[p];
        const em::CVec& cq = coefficients[q];
        em::CVec u(f.size());
        for (std::size_t i = 0; i < f.size(); ++i) u[i] = cp[i] * f[i];
        const em::CVec v = G.mul(u);
        for (std::size_t m = 0; m < v.size(); ++m) h += g[m] * cq[m] * v[m];
      }
    }
  }
  return h;
}

void SceneChannel::evaluate_with_partials(
    std::size_t j, std::span<const em::CVec> coefficients, em::Cx& h_out,
    std::vector<em::CVec>& dh_dc_out) const {
  if (coefficients.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: coefficient count mismatch");
  }
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (coefficients[p].size() != panels_[p]->element_count()) {
      throw std::invalid_argument("SceneChannel: coefficient size mismatch");
    }
  }
  const geom::Vec3& rx = rx_points_.at(j);

  dh_dc_out.resize(panels_.size());
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    dh_dc_out[p].assign(panels_[p]->element_count(), em::Cx{});
  }

  em::Cx h = h_dir_[j];

  // Single-bounce terms.
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (!panels_[p]->serves(tx_.position, rx)) continue;
    const em::CVec& f = f_[p];
    const em::CVec& g = g_[j][p];
    const em::CVec& c = coefficients[p];
    for (std::size_t i = 0; i < f.size(); ++i) {
      h += g[i] * c[i] * f[i];
      dh_dc_out[p][i] += g[i] * f[i];
    }
  }

  // Double-bounce terms p -> q.
  if (options_.include_surface_cascades) {
    for (std::size_t p = 0; p < panels_.size(); ++p) {
      for (std::size_t q = 0; q < panels_.size(); ++q) {
        if (p == q) continue;
        const em::CMat& G = cascades_[q][p];
        if (G.empty()) continue;
        if (!panels_[p]->serves(tx_.position, panels_[q]->center())) continue;
        if (!panels_[q]->serves(panels_[p]->center(), rx)) continue;
        const em::CVec& f = f_[p];
        const em::CVec& g = g_[j][q];
        const em::CVec& cp = coefficients[p];
        const em::CVec& cq = coefficients[q];
        // u = diag(cp) f ; v = G u ; term = (g .* cq)^T v.
        em::CVec u(f.size());
        for (std::size_t i = 0; i < f.size(); ++i) u[i] = cp[i] * f[i];
        const em::CVec v = G.mul(u);
        for (std::size_t m = 0; m < v.size(); ++m) {
          h += g[m] * cq[m] * v[m];
          dh_dc_out[q][m] += g[m] * v[m];
        }
        // w = G^T (g .* cq): partials w.r.t. the first surface p.
        em::CVec gq(g.size());
        for (std::size_t m = 0; m < g.size(); ++m) gq[m] = g[m] * cq[m];
        const em::CVec w = G.mul_transpose(gq);
        for (std::size_t i = 0; i < f.size(); ++i) {
          dh_dc_out[p][i] += w[i] * f[i];
        }
      }
    }
  }

  h_out = h;
}

std::vector<em::CVec> SceneChannel::coefficients_for(
    std::span<const surface::SurfaceConfig> configs) const {
  std::vector<em::CVec> out;
  coefficients_for(configs, out);
  return out;
}

void SceneChannel::coefficients_for(
    std::span<const surface::SurfaceConfig> configs,
    std::vector<em::CVec>& out) const {
  if (configs.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: config count mismatch");
  }
  out.resize(panels_.size());
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    panels_[p]->coefficients_into(configs[p], out[p]);
  }
}

std::vector<double> SceneChannel::power_map(
    std::span<const surface::SurfaceConfig> configs) const {
  SURFOS_TRACE_SPAN("sim.channel.power_map");
  SURFOS_COUNT("sim.channel.power_maps");
  thread_local std::vector<std::size_t> all_rx;
  all_rx.resize(rx_points_.size());
  std::iota(all_rx.begin(), all_rx.end(), std::size_t{0});
  return powers_at(all_rx, configs);
}

std::vector<double> SceneChannel::powers_at(
    std::span<const std::size_t> rx_indices,
    std::span<const surface::SurfaceConfig> configs) const {
  for (const std::size_t j : rx_indices) {
    if (j >= rx_points_.size()) {
      throw std::invalid_argument("SceneChannel: RX index out of range");
    }
  }
  thread_local std::vector<em::CVec> coeff_scratch_tls;
  // Local reference so the parallel lambda below captures *this* thread's
  // scratch (thread_locals are never captured; workers would see their own).
  std::vector<em::CVec>& coeff_scratch = coeff_scratch_tls;
  coefficients_for(configs, coeff_scratch);

  const bool memoize =
      incremental_enabled() && power_memo_->capacity() > 0;
  util::ConfigDigest key;
  std::vector<double> out;
  if (memoize) {
    key = util::combine(digest_coefficients(coeff_scratch),
                        util::digest_indices(rx_indices));
    if (power_memo_->lookup(key, out)) return out;
  }

  out.resize(rx_indices.size());
  // Each RX index owns one output slot; deterministic under any thread count.
  util::parallel_for(0, rx_indices.size(), [&](std::size_t k) {
    out[k] = std::norm(evaluate(rx_indices[k], coeff_scratch));
  });
  if (memoize) power_memo_->store(key, out);
  return out;
}

}  // namespace surfos::sim
