#include "sim/channel.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "em/band.hpp"
#include "sim/incremental.hpp"
#include "sim/trace_batch.hpp"
#include "telemetry/telemetry.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace surfos::sim {

namespace {

const em::IsotropicAntenna kIsotropic;

/// Digest over per-panel complex coefficient planes (bit patterns of the
/// real/imag doubles), the memo key for full power evaluations.
util::ConfigDigest digest_coefficients(std::span<const em::CxPlanes> coeffs) {
  util::DigestBuilder builder;
  builder.add_size(coeffs.size());
  for (const em::CxPlanes& c : coeffs) {
    builder.add_size(c.size());
    for (std::size_t i = 0; i < c.size(); ++i) {
      builder.add_double(c.re()[i]);
      builder.add_double(c.im()[i]);
    }
  }
  return builder.digest();
}

const em::AntennaPattern& pattern_or_isotropic(const em::AntennaPattern* p) {
  return p != nullptr ? *p : kIsotropic;
}

void digest_vec3(util::DigestBuilder& b, const geom::Vec3& v) {
  b.add_double(v.x);
  b.add_double(v.y);
  b.add_double(v.z);
}

/// Structural fingerprint of an antenna pattern: its name bytes, peak gain,
/// and the amplitude response sampled on a fixed set of unit directions
/// ({-1,0,1}^3 \ {0}, normalized — 26 probes cover every octant and axis).
/// Patterns are value types constructed from a handful of parameters, so
/// matching samples + name pins down matching responses everywhere.
void digest_pattern(util::DigestBuilder& b, const em::AntennaPattern& pattern) {
  const std::string name = pattern.name();
  b.add_size(name.size());
  for (const char c : name) b.add_word(static_cast<std::uint64_t>(
      static_cast<unsigned char>(c)));
  b.add_double(pattern.peak_power_gain());
  for (int ix = -1; ix <= 1; ++ix) {
    for (int iy = -1; iy <= 1; ++iy) {
      for (int iz = -1; iz <= 1; ++iz) {
        if (ix == 0 && iy == 0 && iz == 0) continue;
        const geom::Vec3 dir = geom::Vec3{static_cast<double>(ix),
                                          static_cast<double>(iy),
                                          static_cast<double>(iz)}
                                   .normalized();
        b.add_double(pattern.amplitude_gain(dir));
      }
    }
  }
}

/// |cos| between a panel's normal and the direction from an element to a
/// point (scalar path; the SIMD fills use hop_gain/pair_gain instead).
double element_cos(const surface::SurfacePanel& panel,
                   const geom::Vec3& element_pos, const geom::Vec3& point) {
  const geom::Vec3 d = point - element_pos;
  const double n = d.norm();
  if (n < 1e-9) return 0.0;
  return std::fabs(d.dot(panel.normal())) / n;
}

/// Per-panel element positions as zero-padded SoA planes for the kernels.
struct PosPlanes {
  util::simd::AlignedVec x, y, z;
  void fill(const std::vector<geom::Vec3>& positions) {
    const std::size_t pad = em::padded_len(positions.size());
    x.assign(pad, 0.0);
    y.assign(pad, 0.0);
    z.assign(pad, 0.0);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      x[i] = positions[i].x;
      y[i] = positions[i].y;
      z[i] = positions[i].z;
    }
  }
};

std::vector<PosPlanes> make_pos_planes(
    const std::vector<const surface::SurfacePanel*>& panels) {
  std::vector<PosPlanes> pos(panels.size());
  for (std::size_t p = 0; p < panels.size(); ++p) {
    pos[p].fill(panels[p]->element_positions());
  }
  return pos;
}

struct DigestHash {
  std::size_t operator()(const util::ConfigDigest& d) const noexcept {
    return static_cast<std::size_t>(d.lo ^ (d.hi * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace

SceneChannel::SceneChannel(const Environment* environment, double frequency_hz,
                           TxSpec tx,
                           std::vector<const surface::SurfacePanel*> panels,
                           std::vector<geom::Vec3> rx_points,
                           const em::AntennaPattern* rx_antenna,
                           ChannelOptions options)
    : environment_(environment),
      frequency_hz_(frequency_hz),
      tx_(tx),
      panels_(std::move(panels)),
      rx_points_(std::move(rx_points)),
      rx_antenna_(rx_antenna),
      options_(options) {
  if (environment_ == nullptr) {
    throw std::invalid_argument("SceneChannel: null environment");
  }
  for (const auto* p : panels_) {
    if (p == nullptr) throw std::invalid_argument("SceneChannel: null panel");
  }
  if (rx_points_.empty()) {
    throw std::invalid_argument("SceneChannel: no RX points");
  }
  power_memo_ = std::make_unique<DigestMemo>();
  precompute();
}

SceneChannel::~SceneChannel() = default;

util::ConfigDigest SceneChannel::compute_scene_digest() const {
  util::DigestBuilder b;
  b.add_word(0x5352464f50433130ull);  // "SRFOPC10": scene-artifact salt
  b.add_double(frequency_hz_);
  digest_vec3(b, tx_.position);
  digest_pattern(b, pattern_or_isotropic(tx_.antenna));
  digest_pattern(b, pattern_or_isotropic(rx_antenna_));
  b.add_word(options_.per_element_blockage ? 1 : 0);
  b.add_word(options_.include_surface_cascades ? 1 : 0);
  b.add_word(static_cast<std::uint64_t>(options_.tracer.max_reflection_order));
  b.add_double(options_.tracer.min_path_gain);
  // Kernels are bit-identical across SIMD backends (PR 6), but the digest
  // stays conservative: tests that switch backends mid-process must compare
  // genuinely recomputed artifacts, not cache hits. One backend per process
  // in production, so this never splits real sharing.
  b.add_word(static_cast<std::uint64_t>(util::simd::active_backend()));

  b.add_size(panels_.size());
  for (const auto* panel : panels_) {
    b.add_size(panel->element_count());
    b.add_double(panel->design().effective_area());
    digest_vec3(b, panel->normal());
    digest_vec3(b, panel->center());
    for (const geom::Vec3& ep : panel->element_positions()) digest_vec3(b, ep);
  }

  const auto& mesh = environment_->mesh();
  b.add_size(mesh.triangle_count());
  for (const geom::Triangle& t : mesh.triangles()) {
    digest_vec3(b, t.a);
    digest_vec3(b, t.b);
    digest_vec3(b, t.c);
    b.add_word(static_cast<std::uint64_t>(t.material_id));
  }
  const auto reflectors = environment_->reflectors();
  b.add_size(reflectors.size());
  for (const Reflector& r : reflectors) {
    digest_vec3(b, r.frame.origin());
    digest_vec3(b, r.frame.u());
    digest_vec3(b, r.frame.v());
    b.add_double(r.half_u);
    b.add_double(r.half_v);
    b.add_word(static_cast<std::uint64_t>(r.material_id));
  }
  const auto& materials = environment_->materials();
  b.add_size(materials.size());
  for (std::size_t i = 0; i < materials.size(); ++i) {
    const em::Material& m = materials.get(static_cast<int>(i));
    b.add_double(m.rel_permittivity);
    b.add_double(m.conductivity_a);
    b.add_double(m.conductivity_b);
    b.add_double(m.thickness_m);
  }
  return b.digest();
}

util::ConfigDigest SceneChannel::row_key(const geom::Vec3& rx) const {
  util::DigestBuilder b;
  b.add_word(0x5352464f524f5731ull);  // "SRFORW1": row-artifact salt
  digest_vec3(b, rx);
  return util::combine(scene_digest_, b.digest());
}

std::shared_ptr<ScenePrecompute> SceneChannel::build_statics() const {
  const auto& tx_pattern = pattern_or_isotropic(tx_.antenna);
  const auto& kn = util::simd::ops();
  const double wavenum = em::wavenumber(frequency_hz_);
  const double lambda = em::wavelength(frequency_hz_);
  const double sqrt4pi = std::sqrt(4.0 * M_PI);

  auto out = std::make_shared<ScenePrecompute>();
  const std::vector<PosPlanes> pos = make_pos_planes(panels_);

  // TX -> panel element vectors: hop gains + departure directions from the
  // hop_gain kernel, antenna weights from the batched pattern, and the
  // panel-center transmission applied as one complex scale.
  out->f.resize(panels_.size());
  util::parallel_for(0, panels_.size(), [&](std::size_t p) {
    const auto& panel = *panels_[p];
    const double area = panel.design().effective_area();
    const auto& positions = panel.element_positions();
    const std::size_t n = positions.size();
    em::CxPlanes& f = out->f[p];
    f.resize(n);
    if (options_.per_element_blockage) {
      // Slow exact path: per-element occlusion, scalar formulas.
      for (std::size_t i = 0; i < n; ++i) {
        const geom::Vec3& ep = positions[i];
        const double d = tx_.position.distance_to(ep);
        if (d < 1e-6) continue;
        const double cos_in = element_cos(panel, ep, tx_.position);
        const em::Cx hop = em::element_hop_gain(frequency_hz_, area, cos_in, d);
        const geom::Vec3 dep = (ep - tx_.position).normalized();
        const double gt = tx_pattern.amplitude_gain(dep);
        const em::Cx trans = environment_->segment_transmission(
            tx_.position, ep, frequency_hz_);
        f.set(i, hop * gt * trans);
      }
      return;
    }
    const em::Cx center_trans = environment_->segment_transmission(
        tx_.position, panel.center(), frequency_hz_);
    const std::size_t pad = em::padded_len(n);
    util::simd::AlignedVec ux(pad, 0.0), uy(pad, 0.0), uz(pad, 0.0),
        w(pad, 0.0);
    const geom::Vec3 nrm = panel.normal();
    // hop = sqrt(area cos)/(sqrt(4pi) d) e^{-jkd}; u = element -> TX.
    kn.hop_gain(pos[p].x.data(), pos[p].y.data(), pos[p].z.data(),
                tx_.position.x, tx_.position.y, tx_.position.z, nrm.x, nrm.y,
                nrm.z, wavenum, area, sqrt4pi, f.re(), f.im(), ux.data(),
                uy.data(), uz.data(), n);
    // The TX pattern is evaluated on the departure direction TX -> element,
    // which is -u, hence sign = -1 (an exact flip).
    tx_pattern.amplitude_gain_batch(ux.data(), uy.data(), uz.data(), -1.0,
                                    w.data(), n);
    kn.rscale_mul(f.re(), f.im(), w.data(), pad);
    kn.cscale(f.re(), f.im(), center_trans.real(), center_trans.imag(), pad);
  });

  // Panel -> panel cascade matrices, parallel over the flattened (q, p)
  // pair index — each pair owns one O(N^2) matrix, the dominant cost.
  out->cascades.assign(panels_.size(),
                       std::vector<em::CxPlaneMat>(panels_.size()));
  if (options_.include_surface_cascades) {
    const std::size_t np = panels_.size();
    util::parallel_for(0, np * np, [&](std::size_t pair) {
      const std::size_t q = pair / np;
      const std::size_t p = pair % np;
      if (p == q) return;
      const auto& panel_p = *panels_[p];
      const auto& panel_q = *panels_[q];
      const double area_p = panel_p.design().effective_area();
      const double area_q = panel_q.design().effective_area();
      const em::Cx center_trans = environment_->segment_transmission(
          panel_p.center(), panel_q.center(), frequency_hz_);
      if (std::norm(center_trans) < 1e-30) return;  // rows() == 0: no hop
      const auto& pos_q = panel_q.element_positions();
      const geom::Vec3 np_n = panel_p.normal();
      const geom::Vec3 nq_n = panel_q.normal();
      em::CxPlaneMat mat(pos_q.size(), panel_p.element_count());
      for (std::size_t m = 0; m < pos_q.size(); ++m) {
        kn.pair_gain(pos[p].x.data(), pos[p].y.data(), pos[p].z.data(),
                     pos_q[m].x, pos_q[m].y, pos_q[m].z, np_n.x, np_n.y,
                     np_n.z, nq_n.x, nq_n.y, nq_n.z, wavenum, lambda, area_p,
                     area_q, mat.row_re(m), mat.row_im(m), mat.cols());
      }
      // One complex scale over the whole matrix (rows * stride, padding
      // lanes stay zero under scaling).
      kn.cscale(mat.row_re(0), mat.row_im(0), center_trans.real(),
                center_trans.imag(), mat.rows() * mat.stride());
      out->cascades[q][p] = std::move(mat);
    });
  }
  return out;
}

void SceneChannel::fill_missing_rows(const std::vector<std::size_t>& missing) {
  if (missing.empty()) return;
  const auto& tx_pattern = pattern_or_isotropic(tx_.antenna);
  const auto& rx_pattern = pattern_or_isotropic(rx_antenna_);
  const auto& kn = util::simd::ops();
  const double wavenum = em::wavenumber(frequency_hz_);
  const double sqrt4pi = std::sqrt(4.0 * M_PI);

  // Direct (non-surface) component, antenna-weighted per path, traced in
  // SIMD blocks of kWidth receivers — only for the rows actually missing.
  // Per-receiver values are lane-independent, so tracing a subset yields
  // bits identical to tracing the full set (trace_batch.hpp).
  std::vector<geom::Vec3> points(missing.size());
  for (std::size_t k = 0; k < missing.size(); ++k) {
    points[k] = rx_points_[missing[k]];
  }
  std::vector<em::Cx> h(points.size(), em::Cx{});
  const BatchTracer tracer(environment_, frequency_hz_, options_.tracer);
  tracer.trace_weighted(tx_.position, points, tx_pattern, rx_pattern, h);

  const std::vector<PosPlanes> pos = make_pos_planes(panels_);

  // Panel elements -> RX vectors, parallel over the missing rows.
  std::vector<std::shared_ptr<RxRowPrecompute>> built(missing.size());
  util::parallel_for(0, missing.size(), [&](std::size_t k) {
    const geom::Vec3& rx = points[k];
    auto row = std::make_shared<RxRowPrecompute>();
    row->h_dir = h[k];
    row->g.resize(panels_.size());
    for (std::size_t p = 0; p < panels_.size(); ++p) {
      const auto& panel = *panels_[p];
      const double area = panel.design().effective_area();
      const auto& positions = panel.element_positions();
      const std::size_t n = positions.size();
      em::CxPlanes& g = row->g[p];
      g.resize(n);
      if (options_.per_element_blockage) {
        for (std::size_t i = 0; i < n; ++i) {
          const geom::Vec3& ep = positions[i];
          const double d = ep.distance_to(rx);
          if (d < 1e-6) continue;
          const double cos_out =
              element_cos(panel, ep, rx);
          const em::Cx hop =
              em::element_hop_gain(frequency_hz_, area, cos_out, d);
          // RX pattern is evaluated toward the incoming wave, i.e. from the
          // RX point back toward the element.
          const geom::Vec3 arr = (rx - ep).normalized();
          const double gr = rx_pattern.amplitude_gain(-arr);
          const em::Cx trans =
              environment_->segment_transmission(ep, rx, frequency_hz_);
          g.set(i, hop * gr * trans);
        }
        continue;
      }
      const em::Cx center_trans = environment_->segment_transmission(
          panel.center(), rx, frequency_hz_);
      const std::size_t pad = em::padded_len(n);
      util::simd::AlignedVec ux(pad, 0.0), uy(pad, 0.0), uz(pad, 0.0),
          w(pad, 0.0);
      const geom::Vec3 nrm = panel.normal();
      kn.hop_gain(pos[p].x.data(), pos[p].y.data(), pos[p].z.data(), rx.x,
                  rx.y, rx.z, nrm.x, nrm.y, nrm.z, wavenum, area, sqrt4pi,
                  g.re(), g.im(), ux.data(), uy.data(), uz.data(), n);
      // u = element -> RX is the arrival direction; the RX pattern looks
      // back along it, hence sign = -1.
      rx_pattern.amplitude_gain_batch(ux.data(), uy.data(), uz.data(), -1.0,
                                      w.data(), n);
      kn.rscale_mul(g.re(), g.im(), w.data(), pad);
      kn.cscale(g.re(), g.im(), center_trans.real(), center_trans.imag(),
                pad);
    }
    row->finalize_bytes();
    built[k] = std::move(row);
  });

  if (precompute_enabled()) {
    auto& store = PrecomputeStore::instance();
    for (std::size_t k = 0; k < missing.size(); ++k) {
      rows_[missing[k]] = store.publish_row(row_key(points[k]),
                                            std::move(built[k]));
    }
  } else {
    for (std::size_t k = 0; k < missing.size(); ++k) {
      rows_[missing[k]] = std::move(built[k]);
    }
  }
}

void SceneChannel::precompute() {
  SURFOS_TRACE_SPAN("sim.channel.precompute");
  SURFOS_COUNT("sim.channel.precomputes");
  SURFOS_COUNT_N("sim.channel.precompute_rx_points", rx_points_.size());
  SURFOS_COUNT_N("sim.channel.precompute_panels", panels_.size());

  scene_digest_ = compute_scene_digest();
  const bool share = precompute_enabled();
  if (share) {
    statics_ = PrecomputeStore::instance().acquire_scene(
        scene_digest_, [this] { return build_statics(); });
  } else {
    statics_ = build_statics();
  }

  rows_.assign(rx_points_.size(), nullptr);
  std::vector<std::size_t> missing;
  if (share) {
    auto& store = PrecomputeStore::instance();
    for (std::size_t j = 0; j < rx_points_.size(); ++j) {
      if (auto row = store.lookup_row(row_key(rx_points_[j]))) {
        rows_[j] = std::move(row);
      } else {
        missing.push_back(j);
      }
    }
  } else {
    missing.resize(rx_points_.size());
    std::iota(missing.begin(), missing.end(), std::size_t{0});
  }
  fill_missing_rows(missing);
}

void SceneChannel::rebase_rx(std::vector<geom::Vec3> new_points) {
  if (new_points.empty()) {
    throw std::invalid_argument("SceneChannel: no RX points");
  }
  SURFOS_TRACE_SPAN("sim.channel.rebase_rx");
  SURFOS_COUNT("sim.channel.rebases");
  ++rx_revision_;
  // Memo keys embed RX indices, which mean different points after a rebase.
  power_memo_->clear();

  if (!precompute_enabled()) {
    // Honest ablation: without the store, a changed RX set costs a full
    // dense precompute — exactly what fresh construction would do.
    rx_points_ = std::move(new_points);
    precompute();
    return;
  }

  // Survivor rows come from this channel itself (exact point-bit match),
  // immune to store eviction pressure; everything else tries the store,
  // then gets traced. Row order follows new_points, so the result is
  // indistinguishable from fresh construction.
  std::unordered_map<util::ConfigDigest,
                     std::shared_ptr<const RxRowPrecompute>, DigestHash>
      local;
  local.reserve(rx_points_.size());
  for (std::size_t j = 0; j < rx_points_.size(); ++j) {
    local.emplace(row_key(rx_points_[j]), rows_[j]);
  }

  rx_points_ = std::move(new_points);
  rows_.assign(rx_points_.size(), nullptr);
  auto& store = PrecomputeStore::instance();
  std::vector<std::size_t> missing;
  std::size_t reused = 0;
  for (std::size_t j = 0; j < rx_points_.size(); ++j) {
    const util::ConfigDigest key = row_key(rx_points_[j]);
    if (const auto it = local.find(key); it != local.end()) {
      rows_[j] = it->second;
      ++reused;
      continue;
    }
    if (auto row = store.lookup_row(key)) {
      rows_[j] = std::move(row);
      continue;
    }
    missing.push_back(j);
  }
  SURFOS_COUNT_N("sim.channel.rebase_rows_reused", reused);
  SURFOS_COUNT_N("sim.channel.rebase_rows_filled", missing.size());
  fill_missing_rows(missing);
}

void SceneChannel::precompute_delta(std::span<const geom::Vec3> added_rx,
                                    std::span<const std::size_t> removed_rx) {
  std::vector<char> drop(rx_points_.size(), 0);
  for (const std::size_t idx : removed_rx) {
    if (idx >= rx_points_.size()) {
      throw std::invalid_argument("SceneChannel: removal index out of range");
    }
    drop[idx] = 1;
  }
  std::vector<geom::Vec3> next;
  next.reserve(rx_points_.size() + added_rx.size());
  for (std::size_t j = 0; j < rx_points_.size(); ++j) {
    if (!drop[j]) next.push_back(rx_points_[j]);
  }
  next.insert(next.end(), added_rx.begin(), added_rx.end());
  rebase_rx(std::move(next));
}

em::CMat SceneChannel::cascade(std::size_t q, std::size_t p) const {
  const em::CxPlaneMat& m = statics_->cascades.at(q).at(p);
  if (m.rows() == 0) return {};
  em::CMat out(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) out(r, c) = m.at(r, c);
  }
  return out;
}

void SceneChannel::check_coefficient_sizes(
    std::span<const em::CxPlanes> coefficients) const {
  if (coefficients.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: coefficient count mismatch");
  }
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (coefficients[p].size() != panels_[p]->element_count()) {
      throw std::invalid_argument("SceneChannel: coefficient size mismatch");
    }
  }
}

em::Cx SceneChannel::evaluate(std::size_t j,
                              std::span<const em::CVec> coefficients) const {
  if (coefficients.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: coefficient count mismatch");
  }
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (coefficients[p].size() != panels_[p]->element_count()) {
      throw std::invalid_argument("SceneChannel: coefficient size mismatch");
    }
  }
  thread_local std::vector<em::CxPlanes> planes_tls;
  std::vector<em::CxPlanes>& planes = planes_tls;
  planes.resize(coefficients.size());
  for (std::size_t p = 0; p < coefficients.size(); ++p) {
    planes[p].assign(coefficients[p]);
  }
  return evaluate_planes(j, planes);
}

em::Cx SceneChannel::evaluate_planes(
    std::size_t j, std::span<const em::CxPlanes> coefficients) const {
  check_coefficient_sizes(coefficients);
  const geom::Vec3& rx = rx_points_.at(j);
  const RxRowPrecompute& row = *rows_.at(j);
  const auto& kn = util::simd::ops();
  em::Cx h = row.h_dir;
  double acc[2];
  // Single-bounce terms: sum_i (g_i f_i) c_i, canonical product order
  // shared with the partials kernel.
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (!panels_[p]->serves(tx_.position, rx)) continue;
    const em::CxPlanes& f = statics_->f[p];
    const em::CxPlanes& g = row.g[p];
    const em::CxPlanes& c = coefficients[p];
    kn.cdot3(g.re(), g.im(), f.re(), f.im(), c.re(), c.im(), f.padded_size(),
             acc);
    h += em::Cx{acc[0], acc[1]};
  }
  if (options_.include_surface_cascades) {
    thread_local em::CxPlanes u_tls, v_tls;
    em::CxPlanes& u = u_tls;
    em::CxPlanes& v = v_tls;
    for (std::size_t p = 0; p < panels_.size(); ++p) {
      for (std::size_t q = 0; q < panels_.size(); ++q) {
        if (p == q) continue;
        const em::CxPlaneMat& G = statics_->cascades[q][p];
        if (G.rows() == 0) continue;
        if (!panels_[p]->serves(tx_.position, panels_[q]->center())) continue;
        if (!panels_[q]->serves(panels_[p]->center(), rx)) continue;
        const em::CxPlanes& f = statics_->f[p];
        const em::CxPlanes& g = row.g[q];
        const em::CxPlanes& cp = coefficients[p];
        const em::CxPlanes& cq = coefficients[q];
        // u = diag(cp) f ; v = G u ; term = sum_m (g_m v_m) cq_m.
        u.resize(f.size());
        kn.cmul(cp.re(), cp.im(), f.re(), f.im(), u.re(), u.im(),
                f.padded_size());
        v.resize(G.rows());
        kn.cmatvec(G.re(), G.im(), G.rows(), G.stride(), G.stride(), u.re(),
                   u.im(), v.re(), v.im());
        kn.cdot3(g.re(), g.im(), v.re(), v.im(), cq.re(), cq.im(),
                 v.padded_size(), acc);
        h += em::Cx{acc[0], acc[1]};
      }
    }
  }
  return h;
}

void SceneChannel::evaluate_with_partials(
    std::size_t j, std::span<const em::CVec> coefficients, em::Cx& h_out,
    std::vector<em::CVec>& dh_dc_out) const {
  if (coefficients.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: coefficient count mismatch");
  }
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (coefficients[p].size() != panels_[p]->element_count()) {
      throw std::invalid_argument("SceneChannel: coefficient size mismatch");
    }
  }
  thread_local std::vector<em::CxPlanes> planes_tls;
  thread_local std::vector<em::CxPlanes> dh_tls;
  std::vector<em::CxPlanes>& planes = planes_tls;
  std::vector<em::CxPlanes>& dh = dh_tls;
  planes.resize(coefficients.size());
  for (std::size_t p = 0; p < coefficients.size(); ++p) {
    planes[p].assign(coefficients[p]);
  }
  evaluate_with_partials_planes(j, planes, h_out, dh);
  dh_dc_out.resize(dh.size());
  for (std::size_t p = 0; p < dh.size(); ++p) {
    dh_dc_out[p].resize(dh[p].size());
    for (std::size_t i = 0; i < dh[p].size(); ++i) {
      dh_dc_out[p][i] = dh[p].at(i);
    }
  }
}

void SceneChannel::evaluate_with_partials_planes(
    std::size_t j, std::span<const em::CxPlanes> coefficients, em::Cx& h_out,
    std::vector<em::CxPlanes>& dh_dc_out) const {
  check_coefficient_sizes(coefficients);
  const geom::Vec3& rx = rx_points_.at(j);
  const RxRowPrecompute& row = *rows_.at(j);
  const auto& kn = util::simd::ops();

  dh_dc_out.resize(panels_.size());
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    dh_dc_out[p].resize(panels_[p]->element_count());  // zero-fills
  }

  em::Cx h = row.h_dir;
  double acc[2];

  // Single-bounce terms: dh_p = g .* f is exactly the product the sum
  // reduces, so cdot3_partials emits both without recomputation.
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (!panels_[p]->serves(tx_.position, rx)) continue;
    const em::CxPlanes& f = statics_->f[p];
    const em::CxPlanes& g = row.g[p];
    const em::CxPlanes& c = coefficients[p];
    kn.cdot3_partials(g.re(), g.im(), f.re(), f.im(), c.re(), c.im(),
                      dh_dc_out[p].re(), dh_dc_out[p].im(),
                      /*accumulate_w=*/1, f.padded_size(), acc);
    h += em::Cx{acc[0], acc[1]};
  }

  // Double-bounce terms p -> q.
  if (options_.include_surface_cascades) {
    thread_local em::CxPlanes u_tls, v_tls, gq_tls, w_tls;
    em::CxPlanes& u = u_tls;
    em::CxPlanes& v = v_tls;
    em::CxPlanes& gq = gq_tls;
    em::CxPlanes& w = w_tls;
    for (std::size_t p = 0; p < panels_.size(); ++p) {
      for (std::size_t q = 0; q < panels_.size(); ++q) {
        if (p == q) continue;
        const em::CxPlaneMat& G = statics_->cascades[q][p];
        if (G.rows() == 0) continue;
        if (!panels_[p]->serves(tx_.position, panels_[q]->center())) continue;
        if (!panels_[q]->serves(panels_[p]->center(), rx)) continue;
        const em::CxPlanes& f = statics_->f[p];
        const em::CxPlanes& g = row.g[q];
        const em::CxPlanes& cp = coefficients[p];
        const em::CxPlanes& cq = coefficients[q];
        // u = diag(cp) f ; v = G u ; term = sum_m (g_m v_m) cq_m and
        // dh_q += g .* v.
        u.resize(f.size());
        kn.cmul(cp.re(), cp.im(), f.re(), f.im(), u.re(), u.im(),
                f.padded_size());
        v.resize(G.rows());
        kn.cmatvec(G.re(), G.im(), G.rows(), G.stride(), G.stride(), u.re(),
                   u.im(), v.re(), v.im());
        kn.cdot3_partials(g.re(), g.im(), v.re(), v.im(), cq.re(), cq.im(),
                          dh_dc_out[q].re(), dh_dc_out[q].im(),
                          /*accumulate_w=*/1, v.padded_size(), acc);
        h += em::Cx{acc[0], acc[1]};
        // w = G^T (g .* cq): partials w.r.t. the first surface p.
        gq.resize(g.size());
        kn.cmul(g.re(), g.im(), cq.re(), cq.im(), gq.re(), gq.im(),
                g.padded_size());
        w.resize(f.size());
        kn.cmatvec_t(G.re(), G.im(), G.rows(), G.stride(), G.stride(),
                     gq.re(), gq.im(), w.re(), w.im());
        kn.cmul_accum(w.re(), w.im(), f.re(), f.im(), dh_dc_out[p].re(),
                      dh_dc_out[p].im(), f.padded_size());
      }
    }
  }

  h_out = h;
}

std::vector<em::CVec> SceneChannel::coefficients_for(
    std::span<const surface::SurfaceConfig> configs) const {
  std::vector<em::CVec> out;
  coefficients_for(configs, out);
  return out;
}

void SceneChannel::coefficients_for(
    std::span<const surface::SurfaceConfig> configs,
    std::vector<em::CVec>& out) const {
  if (configs.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: config count mismatch");
  }
  out.resize(panels_.size());
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    panels_[p]->coefficients_into(configs[p], out[p]);
  }
}

void SceneChannel::coefficients_planes_for(
    std::span<const surface::SurfaceConfig> configs,
    std::vector<em::CxPlanes>& out) const {
  if (configs.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: config count mismatch");
  }
  // Generation stays on the scalar quantization path so coefficient values
  // are bit-identical to coefficients_for; the copy into planes is exact.
  thread_local em::CVec scratch_tls;
  em::CVec& scratch = scratch_tls;
  out.resize(panels_.size());
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    panels_[p]->coefficients_into(configs[p], scratch);
    out[p].assign(scratch);
  }
}

std::vector<double> SceneChannel::power_map(
    std::span<const surface::SurfaceConfig> configs) const {
  SURFOS_TRACE_SPAN("sim.channel.power_map");
  SURFOS_COUNT("sim.channel.power_maps");
  thread_local std::vector<std::size_t> all_rx;
  all_rx.resize(rx_points_.size());
  std::iota(all_rx.begin(), all_rx.end(), std::size_t{0});
  return powers_at(all_rx, configs);
}

std::vector<double> SceneChannel::powers_at(
    std::span<const std::size_t> rx_indices,
    std::span<const surface::SurfaceConfig> configs) const {
  for (const std::size_t j : rx_indices) {
    if (j >= rx_points_.size()) {
      throw std::invalid_argument("SceneChannel: RX index out of range");
    }
  }
  thread_local std::vector<em::CxPlanes> coeff_scratch_tls;
  // Local reference so the parallel lambda below captures *this* thread's
  // scratch (thread_locals are never captured; workers would see their own).
  std::vector<em::CxPlanes>& coeff_scratch = coeff_scratch_tls;
  coefficients_planes_for(configs, coeff_scratch);

  const bool memoize =
      incremental_enabled() && power_memo_->capacity() > 0;
  util::ConfigDigest key;
  std::vector<double> out;
  if (memoize) {
    key = util::combine(digest_coefficients(coeff_scratch),
                        util::digest_indices(rx_indices));
    if (power_memo_->lookup(key, out)) return out;
  }

  out.resize(rx_indices.size());
  // Each RX index owns one output slot; deterministic under any thread count.
  util::parallel_for(0, rx_indices.size(), [&](std::size_t k) {
    out[k] = std::norm(evaluate_planes(rx_indices[k], coeff_scratch));
  });
  if (memoize) power_memo_->store(key, out);
  return out;
}

}  // namespace surfos::sim
