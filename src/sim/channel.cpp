#include "sim/channel.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "em/band.hpp"
#include "sim/incremental.hpp"
#include "sim/trace_batch.hpp"
#include "telemetry/telemetry.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace surfos::sim {

namespace {

const em::IsotropicAntenna kIsotropic;

/// Digest over per-panel complex coefficient planes (bit patterns of the
/// real/imag doubles), the memo key for full power evaluations.
util::ConfigDigest digest_coefficients(std::span<const em::CxPlanes> coeffs) {
  util::DigestBuilder builder;
  builder.add_size(coeffs.size());
  for (const em::CxPlanes& c : coeffs) {
    builder.add_size(c.size());
    for (std::size_t i = 0; i < c.size(); ++i) {
      builder.add_double(c.re()[i]);
      builder.add_double(c.im()[i]);
    }
  }
  return builder.digest();
}

const em::AntennaPattern& pattern_or_isotropic(const em::AntennaPattern* p) {
  return p != nullptr ? *p : kIsotropic;
}

/// |cos| between a panel's normal and the direction from an element to a
/// point (scalar path; the SIMD fills use hop_gain/pair_gain instead).
double element_cos(const surface::SurfacePanel& panel,
                   const geom::Vec3& element_pos, const geom::Vec3& point) {
  const geom::Vec3 d = point - element_pos;
  const double n = d.norm();
  if (n < 1e-9) return 0.0;
  return std::fabs(d.dot(panel.normal())) / n;
}

/// Per-panel element positions as zero-padded SoA planes for the kernels.
struct PosPlanes {
  util::simd::AlignedVec x, y, z;
  void fill(const std::vector<geom::Vec3>& positions) {
    const std::size_t pad = em::padded_len(positions.size());
    x.assign(pad, 0.0);
    y.assign(pad, 0.0);
    z.assign(pad, 0.0);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      x[i] = positions[i].x;
      y[i] = positions[i].y;
      z[i] = positions[i].z;
    }
  }
};

}  // namespace

SceneChannel::SceneChannel(const Environment* environment, double frequency_hz,
                           TxSpec tx,
                           std::vector<const surface::SurfacePanel*> panels,
                           std::vector<geom::Vec3> rx_points,
                           const em::AntennaPattern* rx_antenna,
                           ChannelOptions options)
    : environment_(environment),
      frequency_hz_(frequency_hz),
      tx_(tx),
      panels_(std::move(panels)),
      rx_points_(std::move(rx_points)),
      rx_antenna_(rx_antenna),
      options_(options) {
  if (environment_ == nullptr) {
    throw std::invalid_argument("SceneChannel: null environment");
  }
  for (const auto* p : panels_) {
    if (p == nullptr) throw std::invalid_argument("SceneChannel: null panel");
  }
  if (rx_points_.empty()) {
    throw std::invalid_argument("SceneChannel: no RX points");
  }
  power_memo_ = std::make_unique<DigestMemo>();
  precompute();
}

SceneChannel::~SceneChannel() = default;

void SceneChannel::precompute() {
  SURFOS_TRACE_SPAN("sim.channel.precompute");
  SURFOS_COUNT("sim.channel.precomputes");
  SURFOS_COUNT_N("sim.channel.precompute_rx_points", rx_points_.size());
  SURFOS_COUNT_N("sim.channel.precompute_panels", panels_.size());
  const auto& tx_pattern = pattern_or_isotropic(tx_.antenna);
  const auto& rx_pattern = pattern_or_isotropic(rx_antenna_);
  const auto& kn = util::simd::ops();
  const double wavenum = em::wavenumber(frequency_hz_);
  const double lambda = em::wavelength(frequency_hz_);
  const double sqrt4pi = std::sqrt(4.0 * M_PI);

  // Direct (non-surface) component, antenna-weighted per path, traced in
  // SIMD blocks of kWidth receivers.
  const BatchTracer tracer(environment_, frequency_hz_, options_.tracer);
  h_dir_.assign(rx_points_.size(), em::Cx{});
  tracer.trace_weighted(tx_.position, rx_points_, tx_pattern, rx_pattern,
                        h_dir_);

  std::vector<PosPlanes> pos(panels_.size());
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    pos[p].fill(panels_[p]->element_positions());
  }

  // TX -> panel element vectors: hop gains + departure directions from the
  // hop_gain kernel, antenna weights from the batched pattern, and the
  // panel-center transmission applied as one complex scale.
  f_.resize(panels_.size());
  util::parallel_for(0, panels_.size(), [&](std::size_t p) {
    const auto& panel = *panels_[p];
    const double area = panel.design().effective_area();
    const auto& positions = panel.element_positions();
    const std::size_t n = positions.size();
    f_[p].resize(n);
    if (options_.per_element_blockage) {
      // Slow exact path: per-element occlusion, scalar formulas.
      for (std::size_t i = 0; i < n; ++i) {
        const geom::Vec3& ep = positions[i];
        const double d = tx_.position.distance_to(ep);
        if (d < 1e-6) continue;
        const double cos_in = element_cos(panel, ep, tx_.position);
        const em::Cx hop = em::element_hop_gain(frequency_hz_, area, cos_in, d);
        const geom::Vec3 dep = (ep - tx_.position).normalized();
        const double gt = tx_pattern.amplitude_gain(dep);
        const em::Cx trans = environment_->segment_transmission(
            tx_.position, ep, frequency_hz_);
        f_[p].set(i, hop * gt * trans);
      }
      return;
    }
    const em::Cx center_trans = environment_->segment_transmission(
        tx_.position, panel.center(), frequency_hz_);
    const std::size_t pad = em::padded_len(n);
    util::simd::AlignedVec ux(pad, 0.0), uy(pad, 0.0), uz(pad, 0.0),
        w(pad, 0.0);
    const geom::Vec3 nrm = panel.normal();
    // hop = sqrt(area cos)/(sqrt(4pi) d) e^{-jkd}; u = element -> TX.
    kn.hop_gain(pos[p].x.data(), pos[p].y.data(), pos[p].z.data(),
                tx_.position.x, tx_.position.y, tx_.position.z, nrm.x, nrm.y,
                nrm.z, wavenum, area, sqrt4pi, f_[p].re(), f_[p].im(),
                ux.data(), uy.data(), uz.data(), n);
    // The TX pattern is evaluated on the departure direction TX -> element,
    // which is -u, hence sign = -1 (an exact flip).
    tx_pattern.amplitude_gain_batch(ux.data(), uy.data(), uz.data(), -1.0,
                                    w.data(), n);
    kn.rscale_mul(f_[p].re(), f_[p].im(), w.data(), pad);
    kn.cscale(f_[p].re(), f_[p].im(), center_trans.real(), center_trans.imag(),
              pad);
  });

  // Panel elements -> RX vectors, parallel over RX points.
  g_.resize(rx_points_.size());
  util::parallel_for(0, rx_points_.size(), [&](std::size_t j) {
    const geom::Vec3& rx = rx_points_[j];
    g_[j].resize(panels_.size());
    for (std::size_t p = 0; p < panels_.size(); ++p) {
      const auto& panel = *panels_[p];
      const double area = panel.design().effective_area();
      const auto& positions = panel.element_positions();
      const std::size_t n = positions.size();
      g_[j][p].resize(n);
      if (options_.per_element_blockage) {
        for (std::size_t i = 0; i < n; ++i) {
          const geom::Vec3& ep = positions[i];
          const double d = ep.distance_to(rx);
          if (d < 1e-6) continue;
          const double cos_out = element_cos(panel, ep, rx);
          const em::Cx hop =
              em::element_hop_gain(frequency_hz_, area, cos_out, d);
          // RX pattern is evaluated toward the incoming wave, i.e. from the
          // RX point back toward the element.
          const geom::Vec3 arr = (rx - ep).normalized();
          const double gr = rx_pattern.amplitude_gain(-arr);
          const em::Cx trans =
              environment_->segment_transmission(ep, rx, frequency_hz_);
          g_[j][p].set(i, hop * gr * trans);
        }
        continue;
      }
      const em::Cx center_trans = environment_->segment_transmission(
          panel.center(), rx, frequency_hz_);
      const std::size_t pad = em::padded_len(n);
      util::simd::AlignedVec ux(pad, 0.0), uy(pad, 0.0), uz(pad, 0.0),
          w(pad, 0.0);
      const geom::Vec3 nrm = panel.normal();
      kn.hop_gain(pos[p].x.data(), pos[p].y.data(), pos[p].z.data(), rx.x,
                  rx.y, rx.z, nrm.x, nrm.y, nrm.z, wavenum, area, sqrt4pi,
                  g_[j][p].re(), g_[j][p].im(), ux.data(), uy.data(),
                  uz.data(), n);
      // u = element -> RX is the arrival direction; the RX pattern looks
      // back along it, hence sign = -1.
      rx_pattern.amplitude_gain_batch(ux.data(), uy.data(), uz.data(), -1.0,
                                      w.data(), n);
      kn.rscale_mul(g_[j][p].re(), g_[j][p].im(), w.data(), pad);
      kn.cscale(g_[j][p].re(), g_[j][p].im(), center_trans.real(),
                center_trans.imag(), pad);
    }
  });

  // Panel -> panel cascade matrices, parallel over the flattened (q, p)
  // pair index — each pair owns one O(N^2) matrix, the dominant cost.
  cascades_.assign(panels_.size(),
                   std::vector<em::CxPlaneMat>(panels_.size()));
  if (options_.include_surface_cascades) {
    const std::size_t np = panels_.size();
    util::parallel_for(0, np * np, [&](std::size_t pair) {
      const std::size_t q = pair / np;
      const std::size_t p = pair % np;
      if (p == q) return;
      const auto& panel_p = *panels_[p];
      const auto& panel_q = *panels_[q];
      const double area_p = panel_p.design().effective_area();
      const double area_q = panel_q.design().effective_area();
      const em::Cx center_trans = environment_->segment_transmission(
          panel_p.center(), panel_q.center(), frequency_hz_);
      if (std::norm(center_trans) < 1e-30) return;  // rows() == 0: no hop
      const auto& pos_q = panel_q.element_positions();
      const geom::Vec3 np_n = panel_p.normal();
      const geom::Vec3 nq_n = panel_q.normal();
      em::CxPlaneMat mat(pos_q.size(), panel_p.element_count());
      for (std::size_t m = 0; m < pos_q.size(); ++m) {
        kn.pair_gain(pos[p].x.data(), pos[p].y.data(), pos[p].z.data(),
                     pos_q[m].x, pos_q[m].y, pos_q[m].z, np_n.x, np_n.y,
                     np_n.z, nq_n.x, nq_n.y, nq_n.z, wavenum, lambda, area_p,
                     area_q, mat.row_re(m), mat.row_im(m), mat.cols());
      }
      // One complex scale over the whole matrix (rows * stride, padding
      // lanes stay zero under scaling).
      kn.cscale(mat.row_re(0), mat.row_im(0), center_trans.real(),
                center_trans.imag(), mat.rows() * mat.stride());
      cascades_[q][p] = std::move(mat);
    });
  }
}

em::CMat SceneChannel::cascade(std::size_t q, std::size_t p) const {
  const em::CxPlaneMat& m = cascades_.at(q).at(p);
  if (m.rows() == 0) return {};
  em::CMat out(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) out(r, c) = m.at(r, c);
  }
  return out;
}

void SceneChannel::check_coefficient_sizes(
    std::span<const em::CxPlanes> coefficients) const {
  if (coefficients.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: coefficient count mismatch");
  }
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (coefficients[p].size() != panels_[p]->element_count()) {
      throw std::invalid_argument("SceneChannel: coefficient size mismatch");
    }
  }
}

em::Cx SceneChannel::evaluate(std::size_t j,
                              std::span<const em::CVec> coefficients) const {
  if (coefficients.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: coefficient count mismatch");
  }
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (coefficients[p].size() != panels_[p]->element_count()) {
      throw std::invalid_argument("SceneChannel: coefficient size mismatch");
    }
  }
  thread_local std::vector<em::CxPlanes> planes_tls;
  std::vector<em::CxPlanes>& planes = planes_tls;
  planes.resize(coefficients.size());
  for (std::size_t p = 0; p < coefficients.size(); ++p) {
    planes[p].assign(coefficients[p]);
  }
  return evaluate_planes(j, planes);
}

em::Cx SceneChannel::evaluate_planes(
    std::size_t j, std::span<const em::CxPlanes> coefficients) const {
  check_coefficient_sizes(coefficients);
  const geom::Vec3& rx = rx_points_.at(j);
  const auto& kn = util::simd::ops();
  em::Cx h = h_dir_[j];
  double acc[2];
  // Single-bounce terms: sum_i (g_i f_i) c_i, canonical product order
  // shared with the partials kernel.
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (!panels_[p]->serves(tx_.position, rx)) continue;
    const em::CxPlanes& f = f_[p];
    const em::CxPlanes& g = g_[j][p];
    const em::CxPlanes& c = coefficients[p];
    kn.cdot3(g.re(), g.im(), f.re(), f.im(), c.re(), c.im(), f.padded_size(),
             acc);
    h += em::Cx{acc[0], acc[1]};
  }
  if (options_.include_surface_cascades) {
    thread_local em::CxPlanes u_tls, v_tls;
    em::CxPlanes& u = u_tls;
    em::CxPlanes& v = v_tls;
    for (std::size_t p = 0; p < panels_.size(); ++p) {
      for (std::size_t q = 0; q < panels_.size(); ++q) {
        if (p == q) continue;
        const em::CxPlaneMat& G = cascades_[q][p];
        if (G.rows() == 0) continue;
        if (!panels_[p]->serves(tx_.position, panels_[q]->center())) continue;
        if (!panels_[q]->serves(panels_[p]->center(), rx)) continue;
        const em::CxPlanes& f = f_[p];
        const em::CxPlanes& g = g_[j][q];
        const em::CxPlanes& cp = coefficients[p];
        const em::CxPlanes& cq = coefficients[q];
        // u = diag(cp) f ; v = G u ; term = sum_m (g_m v_m) cq_m.
        u.resize(f.size());
        kn.cmul(cp.re(), cp.im(), f.re(), f.im(), u.re(), u.im(),
                f.padded_size());
        v.resize(G.rows());
        kn.cmatvec(G.re(), G.im(), G.rows(), G.stride(), G.stride(), u.re(),
                   u.im(), v.re(), v.im());
        kn.cdot3(g.re(), g.im(), v.re(), v.im(), cq.re(), cq.im(),
                 v.padded_size(), acc);
        h += em::Cx{acc[0], acc[1]};
      }
    }
  }
  return h;
}

void SceneChannel::evaluate_with_partials(
    std::size_t j, std::span<const em::CVec> coefficients, em::Cx& h_out,
    std::vector<em::CVec>& dh_dc_out) const {
  if (coefficients.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: coefficient count mismatch");
  }
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (coefficients[p].size() != panels_[p]->element_count()) {
      throw std::invalid_argument("SceneChannel: coefficient size mismatch");
    }
  }
  thread_local std::vector<em::CxPlanes> planes_tls;
  thread_local std::vector<em::CxPlanes> dh_tls;
  std::vector<em::CxPlanes>& planes = planes_tls;
  std::vector<em::CxPlanes>& dh = dh_tls;
  planes.resize(coefficients.size());
  for (std::size_t p = 0; p < coefficients.size(); ++p) {
    planes[p].assign(coefficients[p]);
  }
  evaluate_with_partials_planes(j, planes, h_out, dh);
  dh_dc_out.resize(dh.size());
  for (std::size_t p = 0; p < dh.size(); ++p) {
    dh_dc_out[p].resize(dh[p].size());
    for (std::size_t i = 0; i < dh[p].size(); ++i) {
      dh_dc_out[p][i] = dh[p].at(i);
    }
  }
}

void SceneChannel::evaluate_with_partials_planes(
    std::size_t j, std::span<const em::CxPlanes> coefficients, em::Cx& h_out,
    std::vector<em::CxPlanes>& dh_dc_out) const {
  check_coefficient_sizes(coefficients);
  const geom::Vec3& rx = rx_points_.at(j);
  const auto& kn = util::simd::ops();

  dh_dc_out.resize(panels_.size());
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    dh_dc_out[p].resize(panels_[p]->element_count());  // zero-fills
  }

  em::Cx h = h_dir_[j];
  double acc[2];

  // Single-bounce terms: dh_p = g .* f is exactly the product the sum
  // reduces, so cdot3_partials emits both without recomputation.
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    if (!panels_[p]->serves(tx_.position, rx)) continue;
    const em::CxPlanes& f = f_[p];
    const em::CxPlanes& g = g_[j][p];
    const em::CxPlanes& c = coefficients[p];
    kn.cdot3_partials(g.re(), g.im(), f.re(), f.im(), c.re(), c.im(),
                      dh_dc_out[p].re(), dh_dc_out[p].im(),
                      /*accumulate_w=*/1, f.padded_size(), acc);
    h += em::Cx{acc[0], acc[1]};
  }

  // Double-bounce terms p -> q.
  if (options_.include_surface_cascades) {
    thread_local em::CxPlanes u_tls, v_tls, gq_tls, w_tls;
    em::CxPlanes& u = u_tls;
    em::CxPlanes& v = v_tls;
    em::CxPlanes& gq = gq_tls;
    em::CxPlanes& w = w_tls;
    for (std::size_t p = 0; p < panels_.size(); ++p) {
      for (std::size_t q = 0; q < panels_.size(); ++q) {
        if (p == q) continue;
        const em::CxPlaneMat& G = cascades_[q][p];
        if (G.rows() == 0) continue;
        if (!panels_[p]->serves(tx_.position, panels_[q]->center())) continue;
        if (!panels_[q]->serves(panels_[p]->center(), rx)) continue;
        const em::CxPlanes& f = f_[p];
        const em::CxPlanes& g = g_[j][q];
        const em::CxPlanes& cp = coefficients[p];
        const em::CxPlanes& cq = coefficients[q];
        // u = diag(cp) f ; v = G u ; term = sum_m (g_m v_m) cq_m and
        // dh_q += g .* v.
        u.resize(f.size());
        kn.cmul(cp.re(), cp.im(), f.re(), f.im(), u.re(), u.im(),
                f.padded_size());
        v.resize(G.rows());
        kn.cmatvec(G.re(), G.im(), G.rows(), G.stride(), G.stride(), u.re(),
                   u.im(), v.re(), v.im());
        kn.cdot3_partials(g.re(), g.im(), v.re(), v.im(), cq.re(), cq.im(),
                          dh_dc_out[q].re(), dh_dc_out[q].im(),
                          /*accumulate_w=*/1, v.padded_size(), acc);
        h += em::Cx{acc[0], acc[1]};
        // w = G^T (g .* cq): partials w.r.t. the first surface p.
        gq.resize(g.size());
        kn.cmul(g.re(), g.im(), cq.re(), cq.im(), gq.re(), gq.im(),
                g.padded_size());
        w.resize(f.size());
        kn.cmatvec_t(G.re(), G.im(), G.rows(), G.stride(), G.stride(),
                     gq.re(), gq.im(), w.re(), w.im());
        kn.cmul_accum(w.re(), w.im(), f.re(), f.im(), dh_dc_out[p].re(),
                      dh_dc_out[p].im(), f.padded_size());
      }
    }
  }

  h_out = h;
}

std::vector<em::CVec> SceneChannel::coefficients_for(
    std::span<const surface::SurfaceConfig> configs) const {
  std::vector<em::CVec> out;
  coefficients_for(configs, out);
  return out;
}

void SceneChannel::coefficients_for(
    std::span<const surface::SurfaceConfig> configs,
    std::vector<em::CVec>& out) const {
  if (configs.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: config count mismatch");
  }
  out.resize(panels_.size());
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    panels_[p]->coefficients_into(configs[p], out[p]);
  }
}

void SceneChannel::coefficients_planes_for(
    std::span<const surface::SurfaceConfig> configs,
    std::vector<em::CxPlanes>& out) const {
  if (configs.size() != panels_.size()) {
    throw std::invalid_argument("SceneChannel: config count mismatch");
  }
  // Generation stays on the scalar quantization path so coefficient values
  // are bit-identical to coefficients_for; the copy into planes is exact.
  thread_local em::CVec scratch_tls;
  em::CVec& scratch = scratch_tls;
  out.resize(panels_.size());
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    panels_[p]->coefficients_into(configs[p], scratch);
    out[p].assign(scratch);
  }
}

std::vector<double> SceneChannel::power_map(
    std::span<const surface::SurfaceConfig> configs) const {
  SURFOS_TRACE_SPAN("sim.channel.power_map");
  SURFOS_COUNT("sim.channel.power_maps");
  thread_local std::vector<std::size_t> all_rx;
  all_rx.resize(rx_points_.size());
  std::iota(all_rx.begin(), all_rx.end(), std::size_t{0});
  return powers_at(all_rx, configs);
}

std::vector<double> SceneChannel::powers_at(
    std::span<const std::size_t> rx_indices,
    std::span<const surface::SurfaceConfig> configs) const {
  for (const std::size_t j : rx_indices) {
    if (j >= rx_points_.size()) {
      throw std::invalid_argument("SceneChannel: RX index out of range");
    }
  }
  thread_local std::vector<em::CxPlanes> coeff_scratch_tls;
  // Local reference so the parallel lambda below captures *this* thread's
  // scratch (thread_locals are never captured; workers would see their own).
  std::vector<em::CxPlanes>& coeff_scratch = coeff_scratch_tls;
  coefficients_planes_for(configs, coeff_scratch);

  const bool memoize =
      incremental_enabled() && power_memo_->capacity() > 0;
  util::ConfigDigest key;
  std::vector<double> out;
  if (memoize) {
    key = util::combine(digest_coefficients(coeff_scratch),
                        util::digest_indices(rx_indices));
    if (power_memo_->lookup(key, out)) return out;
  }

  out.resize(rx_indices.size());
  // Each RX index owns one output slot; deterministic under any thread count.
  util::parallel_for(0, rx_indices.size(), [&](std::size_t k) {
    out[k] = std::norm(evaluate_planes(rx_indices[k], coeff_scratch));
  });
  if (memoize) power_memo_->store(key, out);
  return out;
}

}  // namespace surfos::sim
