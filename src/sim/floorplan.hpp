// Canonical evaluation scenarios.
//
// Two scenes mirror the paper's exploratory studies:
//  - CoverageRoom: a 3.5 m target room whose only mmWave ingress is a door
//    gap; a reflective surface inside the room relays the AP's beam
//    (Figures 2 and 5).
//  - Apartment: "two rooms of a furnished apartment" with an AP near the
//    living-room wall and two candidate surface mounts: a transmissive
//    "surface window" embedded in the interior wall (the only controlled
//    mmWave ingress into the bedroom — the room's actual door sits on the
//    far west side, outside the AP beam), and a reflective steering mount
//    on the bedroom's north wall — the Figure 4 hybrid-deployment scene.
#pragma once

#include <memory>

#include "em/antenna.hpp"
#include "em/band.hpp"
#include "em/propagation.hpp"
#include "geom/frame.hpp"
#include "geom/grid.hpp"
#include "sim/channel.hpp"
#include "sim/environment.hpp"

namespace surfos::sim {

struct CoverageRoomScenario {
  std::unique_ptr<Environment> environment;
  em::Band band = em::Band::k28GHz;
  em::LinkBudget budget;
  std::unique_ptr<em::AntennaPattern> ap_antenna;
  geom::Vec3 ap_position;
  geom::Frame surface_pose;  ///< Wall mount for the room's surface.
  geom::SampleGrid room_grid{0.0, 1.0, 0.0, 1.0, 0.0, 1, 1};

  TxSpec ap() const { return {ap_position, ap_antenna.get()}; }
};

/// Builds the 3.5 m coverage/localization room (Figs 2 and 5).
/// `grid_n` controls evaluation resolution (grid_n x grid_n points).
CoverageRoomScenario make_coverage_room(std::size_t grid_n = 14);

struct ApartmentScenario {
  std::unique_ptr<Environment> environment;
  em::Band band = em::Band::k28GHz;
  em::LinkBudget budget;
  std::unique_ptr<em::AntennaPattern> ap_antenna;
  geom::Vec3 ap_position;
  /// In-wall transmissive mount ("surface window"), normal facing the
  /// bedroom; its front half-space is the bedroom, its back the living room.
  geom::Frame window_mount;
  geom::Frame bedroom_mount;  ///< Reflective steering mount, bedroom north wall.
  geom::SampleGrid bedroom_grid{0.0, 1.0, 0.0, 1.0, 0.0, 1, 1};  ///< Target-room points.

  TxSpec ap() const { return {ap_position, ap_antenna.get()}; }
};

/// Builds the two-room apartment (Fig 4a). `grid_n` as above.
ApartmentScenario make_apartment(std::size_t grid_n = 12);

}  // namespace surfos::sim
