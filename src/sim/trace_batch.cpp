#include "sim/trace_batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "em/band.hpp"
#include "em/material.hpp"
#include "em/propagation.hpp"
#include "geom/triangle.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace surfos::sim {

namespace {

constexpr std::size_t W = util::simd::kWidth;

/// One SIMD block worth of doubles, aligned for the block kernels.
struct Lanes {
  alignas(64) double v[W] = {};
};
struct Lanes3 {
  Lanes x, y, z;
};

/// All-ones bit pattern: the in-memory "true" of the kernel mask convention.
double mask_true() {
  const std::uint64_t bits = ~std::uint64_t{0};
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Host-side any(): mask lanes are 0.0 (false) or all-ones (a NaN pattern,
/// which compares != 0.0). Identical on every backend, so the per-sequence
/// early-outs below are deterministic.
bool any_live(const double* m) {
  for (std::size_t l = 0; l < W; ++l) {
    if (m[l] != 0.0) return true;
  }
  return false;
}

}  // namespace

BatchTracer::BatchTracer(const Environment* environment, double frequency_hz,
                         TracerOptions options)
    : environment_(environment),
      frequency_hz_(frequency_hz),
      options_(options) {
  if (environment_ == nullptr) {
    throw std::invalid_argument("BatchTracer: null environment");
  }
  if (!environment_->finalized()) {
    throw std::logic_error("BatchTracer: environment not finalized");
  }
  if (frequency_hz_ <= 0.0) {
    throw std::invalid_argument("BatchTracer: non-positive frequency");
  }

  // Scene triangles as coplanar pairs. Environment geometry is built
  // exclusively from add_quad/add_box, which emit two consecutive
  // triangles per planar face sharing plane and material.
  const auto& triangles = environment_->mesh().triangles();
  if (triangles.size() % 2 != 0) {
    throw std::logic_error(
        "BatchTracer: scene triangles must form coplanar quad pairs");
  }
  const std::size_t pairs = triangles.size() / 2;
  tris_.pair_count = pairs;
  tris_.v0x.resize(2 * pairs);
  tris_.v0y.resize(2 * pairs);
  tris_.v0z.resize(2 * pairs);
  tris_.e1x.resize(2 * pairs);
  tris_.e1y.resize(2 * pairs);
  tris_.e1z.resize(2 * pairs);
  tris_.e2x.resize(2 * pairs);
  tris_.e2y.resize(2 * pairs);
  tris_.e2z.resize(2 * pairs);
  tris_.nx.resize(pairs);
  tris_.ny.resize(pairs);
  tris_.nz.resize(pairs);
  tris_.mat.resize(pairs);
  tris_.slab.resize(pairs);
  for (std::size_t t = 0; t < triangles.size(); ++t) {
    const geom::Triangle& tri = triangles[t];
    tris_.v0x[t] = tri.a.x;
    tris_.v0y[t] = tri.a.y;
    tris_.v0z[t] = tri.a.z;
    const geom::Vec3 e1 = tri.b - tri.a;
    const geom::Vec3 e2 = tri.c - tri.a;
    tris_.e1x[t] = e1.x;
    tris_.e1y[t] = e1.y;
    tris_.e1z[t] = e1.z;
    tris_.e2x[t] = e2.x;
    tris_.e2y[t] = e2.y;
    tris_.e2z[t] = e2.z;
  }
  for (std::size_t pr = 0; pr < pairs; ++pr) {
    const geom::Triangle& tri = triangles[2 * pr];
    const geom::Vec3 n = tri.geometric_normal();
    tris_.nx[pr] = n.x;
    tris_.ny[pr] = n.y;
    tris_.nz[pr] = n.z;
    tris_.mat[pr] = tri.material_id;
    tris_.slab[pr] = em::slab_consts(
        environment_->materials().get(tri.material_id), frequency_hz_);
  }

  // Reflector rectangles + their slab constants for the Fresnel kernel.
  const auto reflectors = environment_->reflectors();
  planes_.resize(reflectors.size());
  reflector_slab_.resize(reflectors.size());
  for (std::size_t i = 0; i < reflectors.size(); ++i) {
    const Reflector& r = reflectors[i];
    util::simd::PlaneRect& pl = planes_[i];
    const geom::Vec3& o = r.frame.origin();
    const geom::Vec3& n = r.frame.normal();
    const geom::Vec3& u = r.frame.u();
    const geom::Vec3& v = r.frame.v();
    pl.ox = o.x; pl.oy = o.y; pl.oz = o.z;
    pl.nx = n.x; pl.ny = n.y; pl.nz = n.z;
    pl.ux = u.x; pl.uy = u.y; pl.uz = u.z;
    pl.vx = v.x; pl.vy = v.y; pl.vz = v.z;
    pl.half_u = r.half_u;
    pl.half_v = r.half_v;
    reflector_slab_[i] = em::slab_consts(
        environment_->materials().get(r.material_id), frequency_hz_);
  }

  // Bounce-sequence enumeration, byte-for-byte the RayTracer scheme so the
  // path set and accumulation order match.
  const int n = static_cast<int>(reflectors.size());
  if (n > 0) {
    for (int order = 1; order <= options_.max_reflection_order; ++order) {
      std::vector<int> sequence(static_cast<std::size_t>(order), 0);
      const auto total = [&]() {
        double count = n;
        for (int i = 1; i < order; ++i) count *= (n - 1);
        return static_cast<long long>(count);
      }();
      for (long long code = 0; code < total; ++code) {
        long long rest = code;
        sequence[0] = static_cast<int>(rest % n);
        rest /= n;
        bool valid = true;
        for (int i = 1; i < order; ++i) {
          int pick = static_cast<int>(rest % (n - 1));
          rest /= (n - 1);
          if (pick >= sequence[static_cast<std::size_t>(i - 1)]) ++pick;
          sequence[static_cast<std::size_t>(i)] = pick;
          if (pick == sequence[static_cast<std::size_t>(i - 1)]) {
            valid = false;
            break;
          }
        }
        if (valid) sequences_.push_back(sequence);
      }
    }
  }
}

void BatchTracer::trace_weighted(const geom::Vec3& tx,
                                 std::span<const geom::Vec3> rx_points,
                                 const em::AntennaPattern& tx_pattern,
                                 const em::AntennaPattern& rx_pattern,
                                 std::span<em::Cx> h_out) const {
  if (h_out.size() != rx_points.size()) {
    throw std::invalid_argument("BatchTracer: output size mismatch");
  }
  if (rx_points.empty()) return;
  SURFOS_TRACE_SPAN("sim.trace_batch.weighted");
  SURFOS_COUNT_N("sim.rays.traces", rx_points.size());

  // Forward image cascade per sequence: receiver-independent, computed
  // once per trace with the exact Reflector::mirror arithmetic.
  const auto reflectors = environment_->reflectors();
  std::vector<std::vector<geom::Vec3>> images(sequences_.size());
  for (std::size_t s = 0; s < sequences_.size(); ++s) {
    const auto& seq = sequences_[s];
    images[s].resize(seq.size());
    geom::Vec3 current = tx;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      current = reflectors[static_cast<std::size_t>(seq[i])].mirror(current);
      images[s][i] = current;
    }
  }

  const std::size_t blocks = (rx_points.size() + W - 1) / W;
  util::parallel_for(0, blocks, [&](std::size_t b) {
    trace_block(tx, rx_points, b * W, images, tx_pattern, rx_pattern, h_out);
  });
}

void BatchTracer::trace_block(
    const geom::Vec3& tx, std::span<const geom::Vec3> rx_points,
    std::size_t base, std::span<const std::vector<geom::Vec3>> images,
    const em::AntennaPattern& tx_pattern, const em::AntennaPattern& rx_pattern,
    std::span<em::Cx> h_out) const {
  const auto& kn = util::simd::ops();
  const std::size_t live = std::min(W, rx_points.size() - base);
  const double kTrue = mask_true();
  const double min2 = options_.min_path_gain * options_.min_path_gain;
  const double k = em::wavenumber(frequency_hz_);
  const double lam4pi = em::wavelength(frequency_hz_) / (4.0 * M_PI);

  // Pad dead lanes with the block's first receiver: finite geometry, the
  // results are simply never written back.
  Lanes3 txl, rxl;
  for (std::size_t l = 0; l < W; ++l) {
    txl.x.v[l] = tx.x;
    txl.y.v[l] = tx.y;
    txl.z.v[l] = tx.z;
    const geom::Vec3& rx = rx_points[base + (l < live ? l : 0)];
    rxl.x.v[l] = rx.x;
    rxl.y.v[l] = rx.y;
    rxl.z.v[l] = rx.z;
  }

  std::size_t max_order = 0;
  for (const auto& seq : sequences_) max_order = std::max(max_order, seq.size());
  std::vector<Lanes3> bounce(max_order);
  std::vector<Lanes3> legdir(max_order + 1);
  std::vector<double> ex(max_order * W), ey(max_order * W), ez(max_order * W);

  Lanes acc_re, acc_im, zeros;
  Lanes mask, d, len, t_re, t_im, g_re, g_im, gt, gr, wgt, cosi, r_re, r_im;
  Lanes3 u;

  // --- direct path ---------------------------------------------------------
  for (std::size_t l = 0; l < W; ++l) mask.v[l] = kTrue;
  kn.dist_dirs(txl.x.v, txl.y.v, txl.z.v, rxl.x.v, rxl.y.v, rxl.z.v, d.v,
               u.x.v, u.y.v, u.z.v, W);
  // d >= 1e-6 as d^2 >= 1e-12 (mask_norm_ge is a complex-norm compare).
  kn.mask_norm_ge(d.v, zeros.v, 1e-12, mask.v);
  kn.seg_transmission(&tris_, txl.x.v, txl.y.v, txl.z.v, rxl.x.v, rxl.y.v,
                      rxl.z.v, zeros.v, zeros.v, zeros.v, 0, 1e-3, t_re.v,
                      t_im.v);
  kn.mask_norm_ge(t_re.v, t_im.v, 1e-30, mask.v);
  kn.freespace_mul(lam4pi, k, d.v, t_re.v, t_im.v);
  kn.mask_norm_ge(t_re.v, t_im.v, min2, mask.v);
  // u = (rx - tx)/d is both the departure and the arrival direction.
  tx_pattern.amplitude_gain_batch(u.x.v, u.y.v, u.z.v, 1.0, gt.v, W);
  rx_pattern.amplitude_gain_batch(u.x.v, u.y.v, u.z.v, -1.0, gr.v, W);
  for (std::size_t l = 0; l < W; ++l) wgt.v[l] = gt.v[l] * gr.v[l];
  kn.masked_accum(mask.v, t_re.v, t_im.v, wgt.v, acc_re.v, acc_im.v);

  // --- reflected paths -----------------------------------------------------
  for (std::size_t s = 0; s < sequences_.size(); ++s) {
    const auto& seq = sequences_[s];
    const std::size_t o = seq.size();
    for (std::size_t l = 0; l < W; ++l) mask.v[l] = kTrue;

    // Backward pass: clip last reflector toward the receivers, then chain.
    const double* tgx = rxl.x.v;
    const double* tgy = rxl.y.v;
    const double* tgz = rxl.z.v;
    for (std::size_t i = o; i-- > 0;) {
      const geom::Vec3& img = images[s][i];
      const auto& pl = planes_[static_cast<std::size_t>(seq[i])];
      kn.plane_clip(&pl, img.x, img.y, img.z, tgx, tgy, tgz, bounce[i].x.v,
                    bounce[i].y.v, bounce[i].z.v, mask.v);
      tgx = bounce[i].x.v;
      tgy = bounce[i].y.v;
      tgz = bounce[i].z.v;
    }
    if (!any_live(mask.v)) continue;

    // Exclusion points (point-major): every bounce of this sequence, so
    // the reflecting walls are not double-counted as penetrations.
    for (std::size_t e = 0; e < o; ++e) {
      for (std::size_t l = 0; l < W; ++l) {
        ex[e * W + l] = bounce[e].x.v[l];
        ey[e * W + l] = bounce[e].y.v[l];
        ez[e * W + l] = bounce[e].z.v[l];
      }
    }

    // Legs: tx -> b0 -> ... -> b_{o-1} -> rx. Accumulate unfolded length
    // and the per-leg transmission product.
    for (std::size_t l = 0; l < W; ++l) {
      len.v[l] = 0.0;
      g_re.v[l] = 1.0;
      g_im.v[l] = 0.0;
    }
    for (std::size_t leg = 0; leg <= o; ++leg) {
      const double* fx = leg == 0 ? txl.x.v : bounce[leg - 1].x.v;
      const double* fy = leg == 0 ? txl.y.v : bounce[leg - 1].y.v;
      const double* fz = leg == 0 ? txl.z.v : bounce[leg - 1].z.v;
      const double* ox = leg == o ? rxl.x.v : bounce[leg].x.v;
      const double* oy = leg == o ? rxl.y.v : bounce[leg].y.v;
      const double* oz = leg == o ? rxl.z.v : bounce[leg].z.v;
      kn.dist_dirs(fx, fy, fz, ox, oy, oz, d.v, legdir[leg].x.v,
                   legdir[leg].y.v, legdir[leg].z.v, W);
      for (std::size_t l = 0; l < W; ++l) len.v[l] += d.v[l];
      kn.seg_transmission(&tris_, fx, fy, fz, ox, oy, oz, ex.data(),
                          ey.data(), ez.data(), o, 1e-3, t_re.v, t_im.v);
      kn.mask_norm_ge(t_re.v, t_im.v, 1e-30, mask.v);
      for (std::size_t l = 0; l < W; ++l) {
        const double pr = g_re.v[l], pi = g_im.v[l];
        g_re.v[l] = pr * t_re.v[l] - pi * t_im.v[l];
        g_im.v[l] = pr * t_im.v[l] + pi * t_re.v[l];
      }
    }

    // Fresnel reflection coefficient per bounce; the incidence cosine is
    // taken directly (no acos/cos round trip, see header note).
    for (std::size_t i = 0; i < o; ++i) {
      const auto& pl = planes_[static_cast<std::size_t>(seq[i])];
      for (std::size_t l = 0; l < W; ++l) {
        const double dn = legdir[i].x.v[l] * pl.nx + legdir[i].y.v[l] * pl.ny +
                          legdir[i].z.v[l] * pl.nz;
        cosi.v[l] = std::fmin(1.0, std::fabs(dn));
      }
      kn.fresnel_reflect(&reflector_slab_[static_cast<std::size_t>(seq[i])],
                         cosi.v, r_re.v, r_im.v, W);
      for (std::size_t l = 0; l < W; ++l) {
        const double pr = g_re.v[l], pi = g_im.v[l];
        g_re.v[l] = pr * r_re.v[l] - pi * r_im.v[l];
        g_im.v[l] = pr * r_im.v[l] + pi * r_re.v[l];
      }
    }

    kn.freespace_mul(lam4pi, k, len.v, g_re.v, g_im.v);
    kn.mask_norm_ge(g_re.v, g_im.v, min2, mask.v);
    if (!any_live(mask.v)) continue;

    tx_pattern.amplitude_gain_batch(legdir[0].x.v, legdir[0].y.v,
                                    legdir[0].z.v, 1.0, gt.v, W);
    rx_pattern.amplitude_gain_batch(legdir[o].x.v, legdir[o].y.v,
                                    legdir[o].z.v, -1.0, gr.v, W);
    for (std::size_t l = 0; l < W; ++l) wgt.v[l] = gt.v[l] * gr.v[l];
    kn.masked_accum(mask.v, g_re.v, g_im.v, wgt.v, acc_re.v, acc_im.v);
  }

  for (std::size_t l = 0; l < live; ++l) {
    h_out[base + l] = em::Cx{acc_re.v[l], acc_im.v[l]};
  }
}

}  // namespace surfos::sim
