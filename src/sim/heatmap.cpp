#include "sim/heatmap.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace surfos::sim {

double Heatmap::min_value() const {
  if (values.empty()) throw std::logic_error("Heatmap::min_value: empty map");
  return *std::min_element(values.begin(), values.end());
}
double Heatmap::max_value() const {
  if (values.empty()) throw std::logic_error("Heatmap::max_value: empty map");
  return *std::max_element(values.begin(), values.end());
}
double Heatmap::median_value() const { return util::median(values); }

Heatmap rss_heatmap(const SceneChannel& channel, const geom::SampleGrid& grid,
                    const em::LinkBudget& budget,
                    std::span<const surface::SurfaceConfig> configs) {
  if (channel.rx_count() != grid.size()) {
    throw std::invalid_argument("rss_heatmap: channel RX count != grid size");
  }
  const std::vector<double> power = channel.power_map(configs);
  Heatmap map{grid, {}};
  map.values.reserve(power.size());
  for (double p : power) map.values.push_back(budget.rss_dbm(p));
  return map;
}

Heatmap map_over_grid(const geom::SampleGrid& grid,
                      const std::function<double(std::size_t)>& value_of) {
  Heatmap map{grid, std::vector<double>(grid.size())};
  // Grid cells are independent; value_of must be safe to call concurrently
  // (see the header). Slot writes keep the result order-deterministic.
  util::parallel_for(0, grid.size(),
                     [&](std::size_t i) { map.values[i] = value_of(i); });
  return map;
}

std::string render_ascii(const Heatmap& map, double lo, double hi) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof(kRamp)) - 2;
  if (hi <= lo) throw std::invalid_argument("render_ascii: hi <= lo");
  std::string out;
  const std::size_t nx = map.grid.nx();
  const std::size_t ny = map.grid.ny();
  out.reserve((nx + 1) * ny);
  for (std::size_t row = 0; row < ny; ++row) {
    const std::size_t iy = ny - 1 - row;  // top-down
    for (std::size_t ix = 0; ix < nx; ++ix) {
      double t = (map.at(ix, iy) - lo) / (hi - lo);
      t = std::clamp(t, 0.0, 1.0);
      out.push_back(kRamp[static_cast<int>(t * kLevels + 0.5)]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace surfos::sim
