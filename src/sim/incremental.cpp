#include "sim/incremental.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/channel.hpp"
#include "telemetry/telemetry.hpp"
#include "core/config.hpp"

namespace surfos::sim {

namespace {

bool incremental_from_env() noexcept {
  const char* env = std::getenv("SURFOS_INCREMENTAL");
  if (env == nullptr) return true;
  const std::string value(env);
  return !(value == "0" || value == "off" || value == "false");
}

std::atomic<bool>& incremental_flag() noexcept {
  static std::atomic<bool> flag{incremental_from_env()};
  return flag;
}

std::size_t capacity_from_env() noexcept {
  // 0 is a valid setting and means "memoization disabled"; negatives and
  // junk fall back to the default instead of wrapping (SURFOS_EVAL_CACHE=-1
  // used to become ULONG_MAX through strtoul).
  return core::knob("SURFOS_EVAL_CACHE", 64, 0);
}

std::atomic<std::size_t>& capacity_slot() noexcept {
  static std::atomic<std::size_t> slot{capacity_from_env()};
  return slot;
}

constexpr std::size_t kFillStripes = 64;

}  // namespace

bool incremental_enabled() noexcept {
  return incremental_flag().load(std::memory_order_relaxed);
}

void set_incremental_enabled(bool on) noexcept {
  incremental_flag().store(on, std::memory_order_relaxed);
}

std::size_t eval_cache_capacity() noexcept {
  return capacity_slot().load(std::memory_order_relaxed);
}

void set_eval_cache_capacity(std::size_t entries) noexcept {
  capacity_slot().store(entries, std::memory_order_relaxed);
}

// --- DigestMemo --------------------------------------------------------------

DigestMemo::DigestMemo(std::size_t capacity) : capacity_(capacity) {}

std::size_t DigestMemo::size() const {
  std::lock_guard lock(mutex_);
  return map_.size();
}

bool DigestMemo::lookup(const util::ConfigDigest& key,
                        std::vector<double>& out) const {
  if (capacity_ == 0) return false;
  std::lock_guard lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    SURFOS_COUNT_SCHED("sim.incremental.memo_misses", 1);
    return false;
  }
  ++stats_.hits;
  SURFOS_COUNT_SCHED("sim.incremental.memo_hits", 1);
  out.assign(it->second.begin(), it->second.end());
  return true;
}

bool DigestMemo::lookup(const util::ConfigDigest& key, double& out) const {
  if (capacity_ == 0) return false;
  std::lock_guard lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end() || it->second.size() != 1) {
    ++stats_.misses;
    SURFOS_COUNT_SCHED("sim.incremental.memo_misses", 1);
    return false;
  }
  ++stats_.hits;
  SURFOS_COUNT_SCHED("sim.incremental.memo_hits", 1);
  out = it->second.front();
  return true;
}

void DigestMemo::store(const util::ConfigDigest& key,
                       std::span<const double> values) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Concurrent evaluators of the same config both store; results are
    // deterministic per key, so overwriting is value-neutral.
    it->second.assign(values.begin(), values.end());
    return;
  }
  while (map_.size() >= capacity_ && !order_.empty()) {
    map_.erase(order_.front());
    order_.pop_front();
    ++stats_.evictions;
    SURFOS_COUNT_SCHED("sim.incremental.memo_evictions", 1);
  }
  map_.emplace(key, std::vector<double>(values.begin(), values.end()));
  order_.push_back(key);
}

void DigestMemo::store(const util::ConfigDigest& key, double value) {
  store(key, std::span<const double>(&value, 1));
}

void DigestMemo::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
  order_.clear();
}

DigestMemo::Stats DigestMemo::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

// --- ChannelEvalCache --------------------------------------------------------

struct ChannelEvalCache::RxEntry {
  /// Valid when equal to the cache's current epoch (0 = never filled).
  std::atomic<std::uint64_t> epoch{0};
  em::Cx h;  ///< Baseline channel value, bit-identical to the dense path.
  /// Per panel, per control group: W = sum of dh/dc_e over the group and
  /// B = sum of c_e * dh/dc_e at the baseline (heterogeneous fallback).
  std::vector<em::CVec> weight_sum;
  std::vector<em::CVec> base_dot;
};

ChannelEvalCache::ChannelEvalCache(const SceneChannel* channel,
                                   std::size_t memo_capacity)
    : channel_(channel), memo_(memo_capacity) {
  if (channel_ == nullptr) {
    throw std::invalid_argument("ChannelEvalCache: null channel");
  }
  groupings_.resize(channel_->panel_count());
  rx_.resize(channel_->rx_count());
  for (auto& entry : rx_) entry = std::make_unique<RxEntry>();
  rx_fill_mutexes_ = std::make_unique<std::mutex[]>(kFillStripes);
}

ChannelEvalCache::~ChannelEvalCache() = default;

void ChannelEvalCache::set_grouping(std::size_t p,
                                    std::vector<std::uint32_t> group_of_element,
                                    std::size_t group_count) {
  std::unique_lock lock(base_mutex_);
  if (based_) {
    throw std::logic_error("ChannelEvalCache: set_grouping after rebase");
  }
  if (p >= groupings_.size()) {
    throw std::invalid_argument("ChannelEvalCache: bad panel index");
  }
  if (group_of_element.size() != channel_->panel(p).element_count()) {
    throw std::invalid_argument("ChannelEvalCache: grouping size mismatch");
  }
  for (const std::uint32_t g : group_of_element) {
    if (g >= group_count) {
      throw std::invalid_argument("ChannelEvalCache: group out of range");
    }
  }
  groupings_[p] = {std::move(group_of_element), group_count};
}

bool ChannelEvalCache::based_on(const util::ConfigDigest& key) const {
  std::shared_lock lock(base_mutex_);
  return based_ && base_key_ == key;
}

void ChannelEvalCache::rebase(const util::ConfigDigest& key,
                              std::span<const em::CVec> coefficients) {
  std::unique_lock lock(base_mutex_);
  if (const std::uint64_t rev = channel_->rx_revision();
      rev != rx_seen_revision_) {
    // The channel's RX set was rebased: indices now name different points,
    // so every cached per-RX fill (and the baseline keyed to them) is stale.
    rx_.resize(channel_->rx_count());
    for (auto& entry : rx_) entry = std::make_unique<RxEntry>();
    ++epoch_;
    based_ = false;
    rx_seen_revision_ = rev;
  }
  if (based_ && base_key_ == key) return;  // benign concurrent duplicate
  if (coefficients.size() != channel_->panel_count()) {
    throw std::invalid_argument("ChannelEvalCache: coefficient count mismatch");
  }
  for (std::size_t p = 0; p < coefficients.size(); ++p) {
    if (coefficients[p].size() != channel_->panel(p).element_count()) {
      throw std::invalid_argument("ChannelEvalCache: coefficient size mismatch");
    }
  }
  base_.assign(coefficients.begin(), coefficients.end());
  base_planes_.resize(base_.size());
  for (std::size_t p = 0; p < base_.size(); ++p) {
    base_planes_[p].assign(base_[p]);
  }

  // Reduce each panel's baseline to per-group representatives. A group is
  // homogeneous when every member shares one bit-identical coefficient (the
  // granularity mapping guarantees this on the optimizer path); only then can
  // the delta use the (new_c - c0) * W form that is exactly zero at new_c ==
  // c0.
  group_coeff_.assign(base_.size(), {});
  group_homogeneous_.assign(base_.size(), {});
  for (std::size_t p = 0; p < base_.size(); ++p) {
    const Grouping& grouping = groupings_[p];
    const std::size_t groups = grouping.group_of_element.empty()
                                   ? base_[p].size()
                                   : grouping.group_count;
    group_coeff_[p].assign(groups, em::Cx{});
    group_homogeneous_[p].assign(groups, 0);
    std::vector<char> seen(groups, 0);
    for (std::size_t e = 0; e < base_[p].size(); ++e) {
      const std::size_t g = grouping.group_of_element.empty()
                                ? e
                                : grouping.group_of_element[e];
      if (!seen[g]) {
        seen[g] = 1;
        group_coeff_[p][g] = base_[p][e];
        group_homogeneous_[p][g] = 1;
      } else if (group_homogeneous_[p][g] && group_coeff_[p][g] != base_[p][e]) {
        group_homogeneous_[p][g] = 0;
      }
    }
  }

  ++epoch_;  // invalidates every RxEntry fill
  based_ = true;
  base_key_ = key;
  rebases_.fetch_add(1, std::memory_order_relaxed);
  SURFOS_COUNT("sim.incremental.rebases");
}

const ChannelEvalCache::RxEntry& ChannelEvalCache::ensure_rx(std::size_t j) {
  RxEntry& entry = *rx_.at(j);
  if (entry.epoch.load(std::memory_order_acquire) == epoch_) return entry;
  std::lock_guard fill_lock(rx_fill_mutexes_[j % kFillStripes]);
  if (entry.epoch.load(std::memory_order_acquire) == epoch_) return entry;

  // One dense pass yields both the baseline h (bit-identical to
  // SceneChannel::evaluate — same summation order) and every panel's
  // effective weights dh/dc, which the grouping then reduces to per-control
  // sums. Amortized over the 2n probes of one finite-difference gradient.
  thread_local std::vector<em::CxPlanes> dh_scratch;
  em::Cx h{};
  channel_->evaluate_with_partials_planes(j, base_planes_, h, dh_scratch);
  entry.h = h;
  entry.weight_sum.assign(base_.size(), {});
  entry.base_dot.assign(base_.size(), {});
  for (std::size_t p = 0; p < base_.size(); ++p) {
    const Grouping& grouping = groupings_[p];
    const std::size_t groups = grouping.group_of_element.empty()
                                   ? base_[p].size()
                                   : grouping.group_count;
    entry.weight_sum[p].assign(groups, em::Cx{});
    entry.base_dot[p].assign(groups, em::Cx{});
    for (std::size_t e = 0; e < base_[p].size(); ++e) {
      const std::size_t g = grouping.group_of_element.empty()
                                ? e
                                : grouping.group_of_element[e];
      const em::Cx dh = dh_scratch[p].at(e);
      entry.weight_sum[p][g] += dh;
      entry.base_dot[p][g] += base_[p][e] * dh;
    }
  }
  rx_fills_.fetch_add(1, std::memory_order_relaxed);
  SURFOS_COUNT("sim.incremental.rx_fills");
  entry.epoch.store(epoch_, std::memory_order_release);
  return entry;
}

em::Cx ChannelEvalCache::base_value(std::size_t j) {
  std::shared_lock lock(base_mutex_);
  if (!based_) throw std::logic_error("ChannelEvalCache: no baseline");
  return ensure_rx(j).h;
}

em::Cx ChannelEvalCache::evaluate_delta(std::size_t j, std::size_t p,
                                        std::size_t group, em::Cx new_c) {
  std::shared_lock lock(base_mutex_);
  if (!based_) throw std::logic_error("ChannelEvalCache: no baseline");
  const RxEntry& entry = ensure_rx(j);
  delta_evals_.fetch_add(1, std::memory_order_relaxed);
  SURFOS_COUNT("sim.incremental.delta_evals");
  const em::Cx w = entry.weight_sum.at(p).at(group);
  if (group_homogeneous_[p][group]) {
    return entry.h + (new_c - group_coeff_[p][group]) * w;
  }
  return entry.h + (new_c * w - entry.base_dot[p][group]);
}

ChannelEvalCache::Stats ChannelEvalCache::stats() const {
  Stats out;
  out.rebases = rebases_.load(std::memory_order_relaxed);
  out.rx_fills = rx_fills_.load(std::memory_order_relaxed);
  out.delta_evals = delta_evals_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace surfos::sim
