// Coverage / error heatmaps over a room grid, and an ASCII renderer so the
// bench binaries can "draw" the paper's Figure 2 / Figure 4a panels in text.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "em/propagation.hpp"
#include "geom/grid.hpp"
#include "sim/channel.hpp"
#include "surface/config.hpp"

namespace surfos::sim {

struct Heatmap {
  geom::SampleGrid grid;
  std::vector<double> values;  ///< Row-major, iy * nx + ix.

  double at(std::size_t ix, std::size_t iy) const {
    return values.at(iy * grid.nx() + ix);
  }
  /// Throw std::logic_error when the map has no values.
  double min_value() const;
  double max_value() const;
  double median_value() const;
  std::vector<double> samples() const { return values; }
};

/// RSS heatmap [dBm] for a channel whose RX points are exactly grid.points().
Heatmap rss_heatmap(const SceneChannel& channel, const geom::SampleGrid& grid,
                    const em::LinkBudget& budget,
                    std::span<const surface::SurfaceConfig> configs);

/// Generic heatmap from a per-grid-point function. Cells are evaluated on
/// the process-wide thread pool, so `value_of` must be safe to call
/// concurrently from multiple threads (pure functions of the index, or
/// const queries against immutable state; set SURFOS_THREADS=1 otherwise).
Heatmap map_over_grid(const geom::SampleGrid& grid,
                      const std::function<double(std::size_t)>& value_of);

/// Renders with a shade ramp (' ' low .. '@' high) between lo and hi; one
/// character per cell, row iy printed top-down.
std::string render_ascii(const Heatmap& map, double lo, double hi);

}  // namespace surfos::sim
