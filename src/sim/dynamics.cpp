#include "sim/dynamics.hpp"

#include <cmath>
#include <stdexcept>

namespace surfos::sim {

geom::Vec3 MovingBlocker::position_at(double elapsed_s) const {
  if (waypoints.empty()) {
    throw std::logic_error("MovingBlocker: no waypoints");
  }
  if (waypoints.size() == 1 || speed_mps <= 0.0) return waypoints.front();

  // Total loop length (closing the loop back to the first waypoint).
  double total = 0.0;
  std::vector<double> leg_lengths;
  leg_lengths.reserve(waypoints.size());
  for (std::size_t i = 0; i < waypoints.size(); ++i) {
    const geom::Vec3& a = waypoints[i];
    const geom::Vec3& b = waypoints[(i + 1) % waypoints.size()];
    leg_lengths.push_back(a.distance_to(b));
    total += leg_lengths.back();
  }
  if (total < 1e-9) return waypoints.front();

  double walked = std::fmod(elapsed_s * speed_mps, total);
  for (std::size_t i = 0; i < waypoints.size(); ++i) {
    if (walked <= leg_lengths[i]) {
      const geom::Vec3& a = waypoints[i];
      const geom::Vec3& b = waypoints[(i + 1) % waypoints.size()];
      const double t = leg_lengths[i] < 1e-12 ? 0.0 : walked / leg_lengths[i];
      return a + (b - a) * t;
    }
    walked -= leg_lengths[i];
  }
  return waypoints.front();
}

DynamicEnvironment::DynamicEnvironment(em::MaterialDb materials,
                                       StaticBuilder build_static)
    : materials_(std::move(materials)), build_static_(std::move(build_static)) {
  if (!build_static_) {
    throw std::invalid_argument("DynamicEnvironment: null static builder");
  }
  rebuild();
}

void DynamicEnvironment::add_blocker(MovingBlocker blocker) {
  if (blocker.waypoints.empty()) {
    throw std::invalid_argument("DynamicEnvironment: blocker without track");
  }
  materials_.get(blocker.material_id);  // validate early
  blockers_.push_back(std::move(blocker));
  rebuild();
}

bool DynamicEnvironment::advance_to(hal::Micros now,
                                    double rebuild_threshold_m) {
  elapsed_s_ = static_cast<double>(now) / 1e6;
  bool moved = false;
  for (std::size_t i = 0; i < blockers_.size(); ++i) {
    const geom::Vec3 p = blockers_[i].position_at(elapsed_s_);
    if (p.distance_to(last_built_positions_[i]) > rebuild_threshold_m) {
      moved = true;
      break;
    }
  }
  if (!moved) return false;
  rebuild();
  return true;
}

geom::Vec3 DynamicEnvironment::blocker_position(const std::string& id) const {
  for (const auto& blocker : blockers_) {
    if (blocker.id == id) return blocker.position_at(elapsed_s_);
  }
  throw std::invalid_argument("DynamicEnvironment: unknown blocker " + id);
}

void DynamicEnvironment::rebuild() {
  auto env = std::make_unique<Environment>(materials_);
  build_static_(*env);
  last_built_positions_.clear();
  for (const auto& blocker : blockers_) {
    const geom::Vec3 p = blocker.position_at(elapsed_s_);
    const double half = blocker.width_m / 2.0;
    env->add_obstacle_box({p.x - half, p.y - half, 0.0},
                          {p.x + half, p.y + half, blocker.height_m},
                          blocker.material_id);
    last_built_positions_.push_back(p);
  }
  env->finalize();
  current_ = std::move(env);
  ++rebuilds_;
}

int add_body_material(em::MaterialDb& materials) {
  // Human tissue at mmWave: effectively an absorber (ITU-R P.1238 treats
  // bodies as ~15-20 dB obstructions; we model a thick very lossy slab).
  return materials.add({"body", 50.0, 1.5, 0.4, 0.25});
}

}  // namespace surfos::sim
