#include "sim/floorplan.hpp"

#include "em/material.hpp"

namespace surfos::sim {

namespace {

/// Interior wall along y = wall_y for x in [x0, x1] with a door gap
/// [door_x0, door_x1] spanning floor..door_height, plus a lintel above.
void add_wall_with_door(Environment& env, double wall_y, double x0, double x1,
                        double door_x0, double door_x1, double wall_height,
                        double door_height, int material) {
  env.add_vertical_wall(x0, wall_y, door_x0, wall_y, 0.0, wall_height, material);
  env.add_vertical_wall(door_x1, wall_y, x1, wall_y, 0.0, wall_height, material);
  env.add_vertical_wall(door_x0, wall_y, door_x1, wall_y, door_height,
                        wall_height, material);
}

}  // namespace

CoverageRoomScenario make_coverage_room(std::size_t grid_n) {
  CoverageRoomScenario s;
  s.band = em::Band::k28GHz;
  s.budget = em::LinkBudget{10.0, em::band_bandwidth(s.band), 7.0};

  auto env = std::make_unique<Environment>(em::MaterialDb::standard());
  constexpr double kH = 3.0;  // wall height
  // Room x:[0,3.5] y:[0,3.5]; corridor below y:[-1.5,0).
  env->add_vertical_wall(0.0, 3.5, 3.5, 3.5, 0.0, kH, em::kMatConcrete);   // north
  env->add_vertical_wall(0.0, -1.5, 0.0, 3.5, 0.0, kH, em::kMatConcrete);  // west
  env->add_vertical_wall(3.5, -1.5, 3.5, 3.5, 0.0, kH, em::kMatConcrete);  // east
  env->add_vertical_wall(0.0, -1.5, 3.5, -1.5, 0.0, kH, em::kMatConcrete); // south
  // Interior wall with door gap x:[2.6, 3.4].
  add_wall_with_door(*env, 0.0, 0.0, 3.5, 2.6, 3.4, kH, 2.1, em::kMatConcrete);
  // Floor and ceiling.
  env->add_horizontal_slab(0.0, 3.5, -1.5, 3.5, 0.0, em::kMatFloor);
  env->add_horizontal_slab(0.0, 3.5, -1.5, 3.5, kH, em::kMatConcrete);
  // Furnishing.
  env->add_obstacle_box({0.8, 1.8, 0.0}, {1.6, 2.4, 0.75}, em::kMatWood);   // table
  env->add_obstacle_box({0.0, 2.9, 0.0}, {0.6, 3.45, 2.0}, em::kMatWood);   // wardrobe
  env->finalize();
  s.environment = std::move(env);

  s.ap_position = {3.0, -0.8, 2.0};
  // Surface mounted on the room's east wall, slightly off the wall plane.
  s.surface_pose = geom::Frame({3.42, 1.2, 1.8}, {-1.0, 0.0, 0.0});
  // AP beam aimed at the surface through the door.
  const geom::Vec3 boresight =
      (s.surface_pose.origin() - s.ap_position).normalized();
  s.ap_antenna = std::make_unique<em::SectorAntenna>(boresight, 30.0);

  s.room_grid = geom::SampleGrid(0.25, 3.25, 0.3, 3.3, 1.0, grid_n, grid_n);
  return s;
}

ApartmentScenario make_apartment(std::size_t grid_n) {
  ApartmentScenario s;
  s.band = em::Band::k28GHz;
  s.budget = em::LinkBudget{10.0, em::band_bandwidth(s.band), 7.0};

  auto env = std::make_unique<Environment>(em::MaterialDb::standard());
  constexpr double kH = 3.0;
  // Outer shell x:[0,7] y:[0,7].
  env->add_vertical_wall(0.0, 0.0, 7.0, 0.0, 0.0, kH, em::kMatConcrete);  // south
  env->add_vertical_wall(0.0, 7.0, 7.0, 7.0, 0.0, kH, em::kMatConcrete);  // north
  env->add_vertical_wall(0.0, 0.0, 0.0, 7.0, 0.0, kH, em::kMatConcrete);  // west
  env->add_vertical_wall(7.0, 0.0, 7.0, 7.0, 0.0, kH, em::kMatConcrete);  // east
  // Interior wall between living room (y < 3.5) and bedroom. The room's
  // door sits on the far west side, well outside the AP beam; the east
  // section of the wall is solid concrete — the "surface window" mount is
  // the only controlled mmWave path into the bedroom.
  add_wall_with_door(*env, 3.5, 0.0, 7.0, 0.3, 1.2, kH, 2.1, em::kMatConcrete);
  // Floor / ceiling.
  env->add_horizontal_slab(0.0, 7.0, 0.0, 7.0, 0.0, em::kMatFloor);
  env->add_horizontal_slab(0.0, 7.0, 0.0, 7.0, kH, em::kMatConcrete);
  // Furnishing: sofa + coffee table in the living room, bed + desk in the
  // bedroom (the paper's scene is "a furnished apartment").
  env->add_obstacle_box({2.0, 0.2, 0.0}, {3.6, 1.0, 0.8}, em::kMatWood);
  env->add_obstacle_box({4.5, 2.0, 0.0}, {5.3, 2.8, 0.75}, em::kMatWood);
  env->add_obstacle_box({0.3, 5.2, 0.0}, {2.1, 6.8, 0.5}, em::kMatWood);
  env->add_obstacle_box({3.8, 6.2, 0.0}, {4.6, 6.85, 0.75}, em::kMatWood);
  env->finalize();
  s.environment = std::move(env);

  s.ap_position = {0.4, 1.2, 1.8};
  // Surface window: a transmissive panel embedded in the interior wall
  // plane, front (normal) facing the bedroom. Elements sit exactly in the
  // wall plane, so their propagation legs start at — not through — the wall.
  s.window_mount = geom::Frame({5.9, 3.5, 1.6}, {0.0, 1.0, 0.0});
  // Steering mount: bedroom north wall, facing the room.
  s.bedroom_mount = geom::Frame({4.0, 6.93, 1.9}, {0.0, -1.0, 0.0});
  // The AP beam is aimed at the surface window; deep sidelobes keep the
  // west door spill negligible.
  const geom::Vec3 boresight =
      (s.window_mount.origin() - s.ap_position).normalized();
  s.ap_antenna = std::make_unique<em::SectorAntenna>(boresight, 25.0, 30.0);

  s.bedroom_grid = geom::SampleGrid(0.4, 4.6, 4.0, 6.6, 1.0, grid_n, grid_n);
  return s;
}

}  // namespace surfos::sim
